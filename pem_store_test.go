package pem_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/pem-go/pem"
)

// storeLiveConfig is the durable variant of testLiveGrid's fixture: same
// seeded market, coalitions and churn, with a Store attached.
func storeLiveConfig(st pem.Store) (pem.LiveGridConfig, pem.FleetConfig) {
	return pem.LiveGridConfig{
			Market:                  pem.Config{KeyBits: 256, Seed: seedPtr(41)},
			Coalitions:              2,
			Partition:               pem.PartitionBalanced,
			MaxConcurrentCoalitions: 0,
			Epochs:                  3,
			Churn:                   pem.ChurnConfig{JoinRate: 0.25, DepartRate: 0.15, FailRate: 0.1},
			Store:                   st,
		}, pem.FleetConfig{
			Coalitions:        2,
			HomesPerCoalition: 4,
			Windows:           2,
			Seed:              7,
		}
}

// TestMarketStorePersistsLedger: a durable market writes its provisioning
// fingerprints and every settlement block through the store as windows
// clear, and the persisted chain survives a reopen, rebuilds through
// LedgerFromBlocks, and matches the in-memory ledger block for block.
func TestMarketStorePersistsLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "market.wal")
	wal, err := pem.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	agents := []pem.Agent{
		{ID: "solar-roof", K: 85, Epsilon: 0.9},
		{ID: "townhouse", K: 75, Epsilon: 0.85},
		{ID: "ev-garage", K: 95, Epsilon: 0.9},
	}
	m, err := pem.NewMarket(pem.Config{KeyBits: 256, Seed: seedPtr(8), Store: wal}, agents)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	inputs := [][]pem.WindowInput{
		{{Generation: 0.40, Load: 0.10}, {Generation: 0, Load: 0.25}, {Generation: 0.05, Load: 0.30}},
		{{Generation: 0.10, Load: 0.20}, {Generation: 0.35, Load: 0.05}, {Generation: 0, Load: 0.15}},
	}
	if _, err := m.RunWindows(ctx, inputs); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := pem.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if rec := reopened.Recovered(); rec.Truncated {
		t.Fatalf("clean market segment reported truncation: %+v", rec)
	}
	blocks, err := reopened.Blocks("market")
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Ledger().Len(); len(blocks) != want {
		t.Fatalf("persisted %d blocks, ledger has %d", len(blocks), want)
	}
	rebuilt, err := pem.LedgerFromBlocks(blocks)
	if err != nil {
		t.Fatalf("persisted chain does not rebuild: %v", err)
	}
	for i := range blocks {
		live, err := m.Ledger().Block(i)
		if err != nil {
			t.Fatal(err)
		}
		if blocks[i].Hash != live.Hash {
			t.Fatalf("block %d hash diverged between store and ledger", i)
		}
	}
	if rebuilt.Head().Hash != m.Ledger().Head().Hash {
		t.Fatal("rebuilt chain head diverged from the live ledger")
	}
	keys, err := reopened.KeyMaterial()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(agents) {
		t.Fatalf("%d key records for %d agents", len(keys), len(agents))
	}
	parties := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k.Scope != "market" {
			t.Errorf("key record in scope %s", k.Scope)
		}
		parties[k.Party] = true
	}
	for _, a := range agents {
		if !parties[a.ID] {
			t.Errorf("no key record for %s", a.ID)
		}
	}
}

// crashStore wraps a Store through the public interface and fails the run
// right after the killAt-th block append lands, simulating a process that
// died with its WAL mid-epoch.
type crashStore struct {
	pem.Store
	appends int
	killAt  int
}

var errCrashed = errors.New("injected crash")

func (c *crashStore) AppendBlock(scope string, blk pem.Block) error {
	if err := c.Store.AppendBlock(scope, blk); err != nil {
		return err
	}
	c.appends++
	if c.appends == c.killAt {
		return errCrashed
	}
	return nil
}

func (c *crashStore) PutCheckpoint(cp pem.Checkpoint) error {
	return c.Store.PutCheckpoint(cp)
}

// TestLiveGridResumeAfterCrash is the end-to-end crash drill on the public
// surface: a durable live run is killed mid-epoch, its WAL tail is sheared
// by a few extra bytes (the torn final write), and pem.Resume must rebuild
// the simulation from the file alone and finish with positions bit-identical
// to an uninterrupted reference run.
func TestLiveGridResumeAfterCrash(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
	defer cancel()

	// Reference: the same simulation, uninterrupted, with a counting store
	// so the kill point can be seeded inside the checkpointed region.
	counter := &crashStore{Store: pem.NewMemStore()}
	lcfg, fleet := storeLiveConfig(counter)
	ref, err := mustLiveGrid(t, lcfg, fleet).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if counter.appends < 4 {
		t.Fatalf("fixture too small: %d block appends", counter.appends)
	}

	// Crash: kill after a seeded append in the back half of the run, then
	// shear a few bytes off the segment tail to model the torn last write.
	rng := rand.New(rand.NewSource(99))
	killAt := counter.appends/2 + 1 + rng.Intn(counter.appends/2-1)
	path := filepath.Join(t.TempDir(), "live.wal")
	wal, err := pem.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	kcfg, kfleet := storeLiveConfig(&crashStore{Store: wal, killAt: killAt})
	if _, err := mustLiveGrid(t, kcfg, kfleet).Run(ctx); !errors.Is(err, errCrashed) {
		t.Fatalf("kill after append %d did not surface: %v", killAt, err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	shear := rng.Intn(41)
	if err := os.WriteFile(path, raw[:len(raw)-shear], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume from the file alone: no config, no fleet — the checkpoint
	// carries both. The resumed run finishes the simulation.
	lg, err := pem.Resume(path)
	if err != nil {
		t.Fatalf("resume (shear %d): %v", shear, err)
	}
	defer lg.Close()
	if lg.ResumedEpoch() < 0 {
		t.Fatal("resumed grid does not report a resume epoch")
	}
	res, err := lg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != len(ref.Positions) {
		t.Fatalf("position counts diverge: %d vs %d", len(res.Positions), len(ref.Positions))
	}
	for i := range ref.Positions {
		if res.Positions[i] != ref.Positions[i] {
			t.Fatalf("position %s diverged after crash+resume:\n%+v\nvs\n%+v",
				ref.Positions[i].ID, res.Positions[i], ref.Positions[i])
		}
	}
	if res.EnergyImbalanceKWh != ref.EnergyImbalanceKWh ||
		res.PaymentImbalanceCents != ref.PaymentImbalanceCents {
		t.Error("conservation figures diverged after crash+resume")
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustLiveGrid(t *testing.T, cfg pem.LiveGridConfig, fleet pem.FleetConfig) *pem.LiveGrid {
	t.Helper()
	lg, err := pem.NewLiveGrid(cfg, fleet)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// TestResumeRejects: Resume fails typed and loud — a WAL with no completed
// epoch has nothing to resume from, and a file that is not a WAL at all is
// never silently reinitialized.
func TestResumeRejects(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.wal")
	w, err := pem.OpenWAL(empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pem.Resume(empty); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("resume of checkpoint-less WAL = %v", err)
	}

	foreign := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(foreign, []byte("definitely not a WAL segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pem.Resume(foreign); !errors.Is(err, pem.ErrNotWAL) {
		t.Errorf("resume of foreign file = %v", err)
	}
}
