package pem

import (
	"fmt"

	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/store"
)

// This file is the public face of the durability layer: a pluggable Store
// the market and grid stacks write their committed artifacts through —
// ledger blocks, settlement aggregates, key-material fingerprints, agent
// positions and live-grid epoch checkpoints — with an in-memory default and
// an append-only, CRC-checked write-ahead log whose replay-on-open recovery
// survives crashes and torn writes. See DESIGN.md §15 for the record format
// and resume semantics.

// Re-exported durability model types.
type (
	// Store is the persistence interface the stack writes through. All
	// methods are safe for concurrent use; writes are durable in order.
	Store = store.Store
	// StoreAggregate is one coalition-day's persisted settlement fold.
	StoreAggregate = store.Aggregate
	// KeyRecord fingerprints one party's per-(epoch, coalition) key
	// material — the SHA-256 of its Paillier public modulus, never the key.
	KeyRecord = store.KeyRecord
	// ChainHead pairs a coalition scope with its ledger head hash inside a
	// Checkpoint.
	ChainHead = store.ChainHead
	// Checkpoint is a live-grid resume point, written after each completed
	// epoch; Resume restarts a simulation from the newest one.
	Checkpoint = store.Checkpoint
	// WALStore is the file-backed Store: an append-only, CRC-checked
	// write-ahead log with torn-tail recovery. Open one with OpenWAL.
	WALStore = store.WAL
	// WALRecovery describes what a WAL replay recovered and dropped.
	WALRecovery = store.RecoveryInfo
	// Block is one hash-chained settlement ledger block, as persisted per
	// scope by a Store and returned by Store.Blocks.
	Block = ledger.Block
)

// Durability errors.
var (
	// ErrStoreClosed is returned by operations on a closed store.
	ErrStoreClosed = store.ErrClosed
	// ErrNotWAL is returned by OpenWAL for a file that is not a PEM WAL.
	ErrNotWAL = store.ErrNotWAL
	// ErrStoreCorrupt is returned when a persisted record decodes but its
	// contents are not usable (e.g. an undecodable checkpoint payload).
	ErrStoreCorrupt = store.ErrCorrupt
)

// NewMemStore returns the in-memory Store: full interface semantics, no
// durability. It is the reference implementation the WAL is tested against
// and the right default for simulations that only need the accounting.
func NewMemStore() Store { return store.NewMem() }

// LedgerFromBlocks rebuilds a settlement ledger from blocks persisted by a
// Store, re-verifying the whole hash chain — the audit path for durable
// runs: read Store.Blocks for a scope, rebuild, and every link is checked.
func LedgerFromBlocks(blocks []Block) (*Ledger, error) {
	l, err := ledger.FromBlocks(blocks)
	if err != nil {
		return nil, fmt.Errorf("pem: %w", err)
	}
	return l, nil
}

// OpenWAL opens (or creates) the append-only file store at path, replaying
// the log to recover its state. A torn tail — a crash mid-write — is
// truncated back to the longest valid prefix; Recovered on the returned
// store reports what was dropped. A file that is not a PEM WAL fails with
// ErrNotWAL rather than being overwritten.
func OpenWAL(path string) (*WALStore, error) {
	w, err := store.OpenWAL(path)
	if err != nil {
		return nil, fmt.Errorf("pem: %w", err)
	}
	return w, nil
}
