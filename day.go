package pem

import (
	"context"
	"fmt"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/market"
)

// DaySeries holds per-window series for a full trading day — the data
// behind Fig. 4 (coalition sizes), Fig. 6(a) (price), Fig. 6(c) (buyer
// coalition cost) and Fig. 6(d) (grid interaction).
type DaySeries struct {
	// Windows is the number of trading windows in the day.
	Windows int
	// Kind per window.
	Kind []Kind
	// Price is the effective PEM trading price (cents/kWh); equals the
	// grid retail price in seller-less windows.
	Price []float64
	// PHat is the unclamped Stackelberg price (0 where pricing didn't run).
	PHat []float64
	// SellerCount and BuyerCount are the coalition sizes.
	SellerCount, BuyerCount []int
	// BuyerCostPEM and BuyerCostBase are the buyer coalition's total cost
	// with PEM and with grid-only trading (cents).
	BuyerCostPEM, BuyerCostBase []float64
	// GridPEM and GridBase are the total energy exchanged with the main
	// grid (kWh).
	GridPEM, GridBase []float64
}

// SimulateDay runs the plaintext market over every window of the trace.
// It is the fast path used to regenerate the trading-performance figures;
// the cryptographic engine produces identical outcomes (asserted by the
// integration tests) but pays the full protocol cost per window.
func SimulateDay(trace *Trace, params Params) (*DaySeries, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	agents := trace.Agents()
	ds := &DaySeries{
		Windows:       trace.Windows,
		Kind:          make([]Kind, trace.Windows),
		Price:         make([]float64, trace.Windows),
		PHat:          make([]float64, trace.Windows),
		SellerCount:   make([]int, trace.Windows),
		BuyerCount:    make([]int, trace.Windows),
		BuyerCostPEM:  make([]float64, trace.Windows),
		BuyerCostBase: make([]float64, trace.Windows),
		GridPEM:       make([]float64, trace.Windows),
		GridBase:      make([]float64, trace.Windows),
	}
	for w := 0; w < trace.Windows; w++ {
		inputs, err := trace.WindowInputs(w)
		if err != nil {
			return nil, err
		}
		clr, err := market.Clear(agents, inputs, params)
		if err != nil {
			return nil, fmt.Errorf("window %d: %w", w, err)
		}
		base, err := market.BaselineClear(agents, inputs, params)
		if err != nil {
			return nil, fmt.Errorf("window %d baseline: %w", w, err)
		}
		ds.Kind[w] = clr.Kind
		ds.Price[w] = clr.Price
		ds.PHat[w] = clr.PHat
		ds.SellerCount[w] = len(clr.SellerIDs)
		ds.BuyerCount[w] = len(clr.BuyerIDs)
		ds.BuyerCostPEM[w] = clr.TotalBuyerCost()
		ds.BuyerCostBase[w] = base.TotalBuyerCost()
		ds.GridPEM[w] = clr.GridInteraction()
		ds.GridBase[w] = base.GridInteraction()
	}
	return ds, nil
}

// SellerUtilitySeries computes the Fig. 6(b) series for one tracked home:
// its per-window utility with the PEM trading price versus the grid-only
// baseline, with the preference parameter overridden to k (the paper fixes
// k = 20 and 40). Windows where the home is not a seller contribute zero.
func SellerUtilitySeries(trace *Trace, homeIndex int, k float64, params Params) (withPEM, withoutPEM []float64, err error) {
	if homeIndex < 0 || homeIndex >= len(trace.Homes) {
		return nil, nil, fmt.Errorf("pem: home index %d out of range", homeIndex)
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("pem: preference k must be positive")
	}
	ds, err := SimulateDay(trace, params)
	if err != nil {
		return nil, nil, err
	}
	home := trace.Homes[homeIndex]
	withPEM = make([]float64, trace.Windows)
	withoutPEM = make([]float64, trace.Windows)
	for w := 0; w < trace.Windows; w++ {
		gen := trace.Gen[homeIndex][w]
		load := trace.Load[homeIndex][w]
		batt := trace.Battery[homeIndex][w]
		if market.ClassifyRole(gen-load-batt) != market.RoleSeller {
			continue
		}
		withPEM[w] = market.SellerUtility(k, home.Epsilon, load, gen, batt, ds.Price[w])
		withoutPEM[w] = market.SellerUtility(k, home.Epsilon, load, gen, batt, params.GridSellPrice)
	}
	return withPEM, withoutPEM, nil
}

// DayResult aggregates a full day executed through the private protocols.
type DayResult struct {
	// Results holds one outcome per window, in window order.
	Results []*WindowResult
	// TotalBytes is the transport traffic of the whole day.
	TotalBytes int64
}

// RunDay executes every window of the trace through the cryptographic
// engine. This is the paper's actual deployment path (Fig. 5 and Table I
// measure it); for trading-performance figures prefer SimulateDay.
//
// The day is pipelined: up to Config.MaxInflightWindows windows run
// concurrently (default 1, the paper's strictly sequential deployment).
// Outcomes and ledger order are identical at any pipeline depth.
func (m *Market) RunDay(ctx context.Context, trace *Trace) (*DayResult, error) {
	return m.StreamDay(ctx, trace, nil)
}

// StreamDay is the streaming form of RunDay: sink (when non-nil) receives
// every window's result in strict window order as soon as that window —
// and every window before it — has completed, while later windows are
// still executing. A sink error aborts the day.
func (m *Market) StreamDay(ctx context.Context, trace *Trace, sink func(*WindowResult) error) (*DayResult, error) {
	if len(trace.Homes) != len(m.agents) {
		return nil, fmt.Errorf("pem: trace has %d homes, market has %d agents", len(trace.Homes), len(m.agents))
	}
	jobs := make([]core.WindowJob, trace.Windows)
	for w := 0; w < trace.Windows; w++ {
		inputs, err := trace.WindowInputs(w)
		if err != nil {
			return nil, err
		}
		jobs[w] = core.WindowJob{Window: w, Inputs: inputs}
	}
	startBytes := m.Metrics().TotalBytes()
	results, err := m.streamWindows(ctx, jobs, sink)
	if err != nil {
		return nil, fmt.Errorf("pem: %w", err)
	}
	return &DayResult{
		Results:    results,
		TotalBytes: m.Metrics().TotalBytes() - startBytes,
	}, nil
}
