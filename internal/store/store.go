// Package store is the durability boundary of the market: a small Store
// interface over the artifacts the protocol stack must not lose across a
// crash — tamper-evident ledger blocks, cross-epoch agent positions,
// per-(epoch, coalition) key-material fingerprints, and live-grid epoch
// checkpoints — with two implementations: an in-memory default (Mem) and
// an append-only, CRC-checked file WAL (WAL) whose replay-on-open recovery
// truncates a torn tail.
//
// The store only ever sees what the settlement harness already observes:
// committed ledger blocks, oracle-derived aggregates and public key
// fingerprints. Protocol-private data (bids, generation, load, secret
// keys) never reaches it, so persistence does not widen the threat model.
//
// Write ordering is the contract that makes crash recovery exact: the grid
// persists each coalition's blocks and aggregates as they stream, and the
// live grid commits a Checkpoint only after every one of the epoch's
// records is down. A resumed run therefore restarts from the last
// checkpoint and replays forward; records from a partially-persisted epoch
// are superseded on replay (appending a genesis block resets its scope's
// chain, aggregates and key records are latest-wins upserts).
package store

import (
	"errors"

	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/market"
)

// Aggregate is one coalition-day's O(1) settlement fold: the residual
// position, window count and ledger chain head that survive the streaming
// payload release. Folded coalitions persist theirs too — a folded roster's
// grid-tariff position is real settlement state.
type Aggregate struct {
	// Scope is the coalition's transport scope ("c00", "e01-c02", …) —
	// unique per (epoch, coalition), which is what makes upserts safe.
	Scope string
	// Windows counts the coalition's completed trading windows.
	Windows int
	// ImportKWh and ExportKWh are the day-aggregate unmatched energy.
	ImportKWh, ExportKWh float64
	// ChainHead is the coalition ledger's final chain hash (empty for
	// folded coalitions, which run no private market).
	ChainHead string
	// Folded marks a coalition settled at the grid tariff instead of
	// running a private market.
	Folded bool
}

// KeyRecord fingerprints one party's per-(epoch, coalition) key material:
// the SHA-256 of its Paillier public modulus. The private key never leaves
// the engine; the fingerprint is enough to audit that every epoch re-keyed
// to fresh material.
type KeyRecord struct {
	// Scope is the coalition's transport scope the key was provisioned for.
	Scope string
	// Party is the key holder's agent ID.
	Party string
	// Fingerprint is the SHA-256 digest of the party's public modulus.
	Fingerprint []byte
}

// ChainHead pairs a coalition scope with its ledger head hash inside a
// Checkpoint (a sorted slice, not a map, so encodings are deterministic).
type ChainHead struct {
	// Scope is the coalition's transport scope.
	Scope string
	// Head is the hex-rendered head hash (ledger.HashString).
	Head string
}

// Checkpoint is a live-grid resume point, written once per completed
// epoch after the epoch's flows, blocks, aggregates and key records are
// all persisted. It carries everything a resumed run needs to replay the
// remaining epochs bit-identically: the position book snapshot, the
// epoch's roster and chain heads for cross-checks, the base seed the
// per-epoch key/partition seeds derive from, and an opaque configuration
// blob (with its hash) so the public layer can rebuild the simulation.
type Checkpoint struct {
	// Epoch is the last completed epoch; a resumed run restarts at Epoch+1.
	Epoch int
	// Roster is the checkpointed epoch's agent IDs, in trace order.
	Roster []string
	// Positions is the full position-book snapshot after the epoch's flows.
	Positions []market.AgentPosition
	// ChainHeads are the checkpointed epoch's per-coalition ledger heads,
	// sorted by scope.
	ChainHeads []ChainHead
	// Seed is the simulation's base engine seed (0 when unseeded; an
	// unseeded run resumes but does not replay bit-identically).
	Seed int64
	// Config is an opaque configuration blob supplied by the caller
	// (the public layer stores its marshaled run configuration here).
	Config []byte
	// ConfigHash is the hex SHA-256 of Config, the guard against resuming
	// a WAL under a different configuration.
	ConfigHash string
}

// Store is the persistence interface the grid stack writes through. All
// methods are safe for concurrent use. Append/Put methods must be durable
// in order: a record is visible to the getters (and, for file-backed
// implementations, to a post-crash reopen) once its call returns.
//
// Replay semantics shared by all implementations: appending a block with
// Index 0 (a genesis) resets its scope's chain — a resumed epoch replays
// over its partial predecessor — and PutAggregate / PutKeyMaterial are
// latest-wins upserts keyed by scope and (scope, party) respectively.
type Store interface {
	// AppendBlock persists one committed ledger block under a coalition
	// scope. Blocks arrive in chain order; a genesis block resets the scope.
	AppendBlock(scope string, blk ledger.Block) error
	// Blocks returns a scope's persisted chain in append order (the latest
	// chain, when a replay reset the scope).
	Blocks(scope string) ([]ledger.Block, error)
	// Scopes lists every scope with at least one persisted block, sorted.
	Scopes() ([]string, error)
	// PutAggregate upserts a coalition-day's settlement fold.
	PutAggregate(agg Aggregate) error
	// Aggregates returns all aggregates, sorted by scope.
	Aggregates() ([]Aggregate, error)
	// UpsertPositions persists the position book's current per-agent state;
	// each position replaces any earlier record for the same agent ID.
	UpsertPositions(positions []market.AgentPosition) error
	// Positions returns the latest persisted position per agent, sorted by
	// agent ID.
	Positions() ([]market.AgentPosition, error)
	// PutKeyMaterial upserts one party's key fingerprint for a scope.
	PutKeyMaterial(rec KeyRecord) error
	// KeyMaterial returns all key records, sorted by (scope, party).
	KeyMaterial() ([]KeyRecord, error)
	// PutCheckpoint persists an epoch checkpoint. Implementations must make
	// it the new resume point atomically: a crash mid-write leaves the
	// previous checkpoint intact.
	PutCheckpoint(cp Checkpoint) error
	// LastCheckpoint returns the newest intact checkpoint, with ok=false
	// when none has been written.
	LastCheckpoint() (cp Checkpoint, ok bool, err error)
	// Sync flushes buffered state to stable storage (no-op for Mem).
	Sync() error
	// Close releases the store. A closed store rejects further writes.
	Close() error
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")
