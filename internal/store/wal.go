package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/market"
)

// WAL is the append-only file Store: every write becomes one
// length-prefixed, CRC-checked record appended to a single segment file,
// and OpenWAL replays the segment, truncating a torn tail back to the
// longest valid prefix — the crash model is "the machine died mid-write",
// and recovery must never lose a record whose append call had returned.
//
// The write path keeps O(1) state in memory (the file offset and the
// cached last checkpoint); the read-side getters scan the segment on
// demand. That asymmetry is deliberate: a streaming grid run appends one
// aggregate per coalition for 10^5 coalitions, and the store must not
// become the memory bound the streaming supervisor just removed.
//
// Record layout, after an 8-byte magic header:
//
//	uint32 big-endian  body length L (1 ≤ L ≤ 16 MiB)
//	uint32 big-endian  CRC-32C (Castagnoli) of the body
//	byte               record type (block / aggregate / positions / key /
//	                   checkpoint)
//	L-1 bytes          JSON payload
//
// Each record is appended with a single write call; a checkpoint append is
// followed by fsync, making checkpoints the durable resume points.
type WAL struct {
	mu         sync.Mutex
	closed     bool
	f          *os.File
	end        int64 // offset past the last valid record
	checkpoint *Checkpoint
	recovery   RecoveryInfo
}

// RecoveryInfo reports what replay-on-open had to do to reach a valid
// prefix.
type RecoveryInfo struct {
	// Truncated is set when the segment ended in a torn or corrupt record
	// and was cut back to the last valid one.
	Truncated bool
	// DroppedBytes is how many trailing bytes the truncation removed.
	DroppedBytes int64
	// Records is the number of valid records the replay accepted.
	Records int
}

// Typed WAL errors.
var (
	// ErrNotWAL marks a file whose header is not a WAL segment's.
	ErrNotWAL = errors.New("store: not a WAL segment")
	// ErrCorrupt marks a record that passed its CRC but failed to decode —
	// a writer bug or format drift, not a torn write, so replay refuses to
	// guess rather than silently dropping committed data.
	ErrCorrupt = errors.New("store: corrupt WAL record")
)

var walMagic = [8]byte{'P', 'E', 'M', 'W', 'A', 'L', '0', '1'}

// Record types. Values are part of the on-disk format; never renumber.
const (
	recBlock      = byte(1)
	recAggregate  = byte(2)
	recPositions  = byte(3)
	recKey        = byte(4)
	recCheckpoint = byte(5)
)

// maxRecordLen bounds a record body (16 MiB): large enough for a
// checkpoint over a very large fleet, small enough that a corrupt length
// prefix cannot drive a multi-gigabyte allocation during replay.
const maxRecordLen = 1 << 24

// walHeaderLen is the per-record prefix: length + CRC.
const walHeaderLen = 8

// blockRecord is the on-disk payload of recBlock.
type blockRecord struct {
	// Scope is the coalition scope the block belongs to.
	Scope string
	// Block is the committed ledger block.
	Block ledger.Block
}

// OpenWAL opens (creating if absent) the segment at path and replays it.
// A torn tail — short record, bad length, CRC mismatch, unknown type — is
// truncated back to the longest valid prefix (see Recovered); a record
// that passes its CRC but fails to decode returns ErrCorrupt, and a file
// that is not a WAL segment at all returns ErrNotWAL.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	w := &WAL{f: f}
	if err := w.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *WAL) lock()   { w.mu.Lock() }
func (w *WAL) unlock() { w.mu.Unlock() }

// replay validates the header, scans the segment for the last valid
// prefix, caches the newest intact checkpoint, and truncates a torn tail.
func (w *WAL) replay() error {
	size, err := w.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: WAL size: %w", err)
	}
	if size < int64(len(walMagic)) {
		// New (or torn-at-birth) segment: start it fresh.
		if err := w.f.Truncate(0); err != nil {
			return fmt.Errorf("store: WAL reset: %w", err)
		}
		if _, err := w.f.WriteAt(walMagic[:], 0); err != nil {
			return fmt.Errorf("store: WAL header: %w", err)
		}
		if size > 0 {
			w.recovery = RecoveryInfo{Truncated: true, DroppedBytes: size}
		}
		w.end = int64(len(walMagic))
		return nil
	}
	var magic [8]byte
	if _, err := w.f.ReadAt(magic[:], 0); err != nil {
		return fmt.Errorf("store: WAL header: %w", err)
	}
	if magic != walMagic {
		return fmt.Errorf("%w: bad magic %q", ErrNotWAL, magic[:])
	}

	off := int64(len(walMagic))
	var header [walHeaderLen]byte
	for {
		if _, err := w.f.ReadAt(header[:], off); err != nil {
			break // short header: torn tail
		}
		l := binary.BigEndian.Uint32(header[0:4])
		if l < 1 || l > maxRecordLen {
			break // nonsense length: torn or flipped prefix
		}
		body := make([]byte, l)
		if _, err := w.f.ReadAt(body, off+walHeaderLen); err != nil {
			break // short body: torn tail
		}
		if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(header[4:8]) {
			break // corruption: everything from here is untrusted
		}
		if body[0] < recBlock || body[0] > recCheckpoint {
			break // unknown type: same treatment as corruption
		}
		if body[0] == recCheckpoint {
			var cp Checkpoint
			if err := json.Unmarshal(body[1:], &cp); err != nil {
				return fmt.Errorf("%w: checkpoint at offset %d: %v", ErrCorrupt, off, err)
			}
			w.checkpoint = &cp
		}
		off += walHeaderLen + int64(l)
		w.recovery.Records++
	}
	w.end = off
	if off < size {
		if err := w.f.Truncate(off); err != nil {
			return fmt.Errorf("store: WAL truncate torn tail: %w", err)
		}
		w.recovery.Truncated = true
		w.recovery.DroppedBytes = size - off
	}
	return nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Recovered reports what the opening replay found and repaired.
func (w *WAL) Recovered() RecoveryInfo {
	w.lock()
	defer w.unlock()
	return w.recovery
}

// Path returns the segment file's name.
func (w *WAL) Path() string { return w.f.Name() }

// append encodes and appends one record, taking the lock.
func (w *WAL) append(typ byte, payload any) error {
	w.lock()
	defer w.unlock()
	return w.appendLocked(typ, payload)
}

// appendLocked encodes and appends one record; the caller holds the lock.
// The whole record — length, CRC, body — goes down in a single write call,
// keeping the torn-write window as small as one syscall allows.
func (w *WAL) appendLocked(typ byte, payload any) error {
	if w.closed {
		return ErrClosed
	}
	body, err := encodeBody(typ, payload)
	if err != nil {
		return err
	}
	rec := make([]byte, walHeaderLen+len(body))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(body, castagnoli))
	copy(rec[walHeaderLen:], body)
	if _, err := w.f.WriteAt(rec, w.end); err != nil {
		return fmt.Errorf("store: WAL append: %w", err)
	}
	w.end += int64(len(rec))
	w.recovery.Records++
	return nil
}

// encodeBody builds a record body: type byte + JSON payload.
func encodeBody(typ byte, payload any) ([]byte, error) {
	js, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("store: encode record type %d: %w", typ, err)
	}
	if len(js)+1 > maxRecordLen {
		return nil, fmt.Errorf("store: record type %d is %d bytes, over the %d cap", typ, len(js)+1, maxRecordLen)
	}
	body := make([]byte, 1+len(js))
	body[0] = typ
	copy(body[1:], js)
	return body, nil
}

// scan walks the valid prefix, handing each record body of the wanted
// type to visit. The caller holds the lock.
func (w *WAL) scan(want byte, visit func(body []byte) error) error {
	off := int64(len(walMagic))
	var header [walHeaderLen]byte
	for off < w.end {
		if _, err := w.f.ReadAt(header[:], off); err != nil {
			return fmt.Errorf("store: WAL scan: %w", err)
		}
		l := binary.BigEndian.Uint32(header[0:4])
		body := make([]byte, l)
		if _, err := w.f.ReadAt(body, off+walHeaderLen); err != nil {
			return fmt.Errorf("store: WAL scan: %w", err)
		}
		if body[0] == want {
			if err := visit(body[1:]); err != nil {
				return err
			}
		}
		off += walHeaderLen + int64(l)
	}
	return nil
}

// AppendBlock implements Store.
func (w *WAL) AppendBlock(scope string, blk ledger.Block) error {
	return w.append(recBlock, blockRecord{Scope: scope, Block: blk})
}

// Blocks implements Store: the scope's latest chain, in append order.
func (w *WAL) Blocks(scope string) ([]ledger.Block, error) {
	w.lock()
	defer w.unlock()
	if w.closed {
		return nil, ErrClosed
	}
	var out []ledger.Block
	err := w.scan(recBlock, func(body []byte) error {
		var br blockRecord
		if err := json.Unmarshal(body, &br); err != nil {
			return fmt.Errorf("%w: block record: %v", ErrCorrupt, err)
		}
		if br.Scope != scope {
			return nil
		}
		if br.Block.Index == 0 {
			out = out[:0] // replayed epoch: the new chain supersedes
		}
		out = append(out, br.Block)
		return nil
	})
	return out, err
}

// Scopes implements Store.
func (w *WAL) Scopes() ([]string, error) {
	w.lock()
	defer w.unlock()
	if w.closed {
		return nil, ErrClosed
	}
	seen := make(map[string]bool)
	err := w.scan(recBlock, func(body []byte) error {
		var br blockRecord
		if err := json.Unmarshal(body, &br); err != nil {
			return fmt.Errorf("%w: block record: %v", ErrCorrupt, err)
		}
		seen[br.Scope] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// PutAggregate implements Store.
func (w *WAL) PutAggregate(agg Aggregate) error {
	return w.append(recAggregate, agg)
}

// Aggregates implements Store: latest record per scope, sorted.
func (w *WAL) Aggregates() ([]Aggregate, error) {
	w.lock()
	defer w.unlock()
	if w.closed {
		return nil, ErrClosed
	}
	latest := make(map[string]Aggregate)
	err := w.scan(recAggregate, func(body []byte) error {
		var a Aggregate
		if err := json.Unmarshal(body, &a); err != nil {
			return fmt.Errorf("%w: aggregate record: %v", ErrCorrupt, err)
		}
		latest[a.Scope] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Aggregate, 0, len(latest))
	for _, a := range latest {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scope < out[j].Scope })
	return out, nil
}

// UpsertPositions implements Store.
func (w *WAL) UpsertPositions(positions []market.AgentPosition) error {
	return w.append(recPositions, positions)
}

// Positions implements Store: latest record per agent ID, sorted.
func (w *WAL) Positions() ([]market.AgentPosition, error) {
	w.lock()
	defer w.unlock()
	if w.closed {
		return nil, ErrClosed
	}
	latest := make(map[string]market.AgentPosition)
	err := w.scan(recPositions, func(body []byte) error {
		var ps []market.AgentPosition
		if err := json.Unmarshal(body, &ps); err != nil {
			return fmt.Errorf("%w: positions record: %v", ErrCorrupt, err)
		}
		for _, p := range ps {
			latest[p.ID] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]market.AgentPosition, 0, len(latest))
	for _, p := range latest {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// PutKeyMaterial implements Store.
func (w *WAL) PutKeyMaterial(rec KeyRecord) error {
	return w.append(recKey, rec)
}

// KeyMaterial implements Store: latest record per (scope, party), sorted.
func (w *WAL) KeyMaterial() ([]KeyRecord, error) {
	w.lock()
	defer w.unlock()
	if w.closed {
		return nil, ErrClosed
	}
	latest := make(map[string]KeyRecord)
	err := w.scan(recKey, func(body []byte) error {
		var k KeyRecord
		if err := json.Unmarshal(body, &k); err != nil {
			return fmt.Errorf("%w: key record: %v", ErrCorrupt, err)
		}
		latest[k.Scope+"\x00"+k.Party] = k
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]KeyRecord, 0, len(latest))
	for _, k := range latest {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Party < out[j].Party
	})
	return out, nil
}

// PutCheckpoint implements Store: append, fsync, then publish — a crash
// at any point leaves either the previous or the new checkpoint intact,
// never a half-written resume point (a torn record is cut by replay).
func (w *WAL) PutCheckpoint(cp Checkpoint) error {
	w.lock()
	defer w.unlock()
	if err := w.appendLocked(recCheckpoint, cp); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: WAL sync: %w", err)
	}
	c := cp
	w.checkpoint = &c
	return nil
}

// LastCheckpoint implements Store.
func (w *WAL) LastCheckpoint() (Checkpoint, bool, error) {
	w.lock()
	defer w.unlock()
	if w.closed {
		return Checkpoint{}, false, ErrClosed
	}
	if w.checkpoint == nil {
		return Checkpoint{}, false, nil
	}
	return *w.checkpoint, true, nil
}

// Sync implements Store.
func (w *WAL) Sync() error {
	w.lock()
	defer w.unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: WAL sync: %w", err)
	}
	return nil
}

// Close implements Store: fsync then close the segment.
func (w *WAL) Close() error {
	w.lock()
	defer w.unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: WAL sync on close: %w", err)
	}
	return w.f.Close()
}
