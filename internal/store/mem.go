package store

import (
	"sort"
	"sync"

	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/market"
)

// Mem is the in-memory Store: the default when no durability is requested,
// and the reference implementation the conformance suite holds the WAL to.
// It retains everything written to it, so unlike the WAL it is not
// memory-bounded over an unbounded run — it trades durability for zero
// I/O, exactly like RetainResults trades memory for auditability.
type Mem struct {
	mu         sync.Mutex
	closed     bool
	blocks     map[string][]ledger.Block
	aggregates map[string]Aggregate
	positions  map[string]market.AgentPosition
	keys       map[string]KeyRecord // keyed by scope+"\x00"+party
	checkpoint *Checkpoint
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		blocks:     make(map[string][]ledger.Block),
		aggregates: make(map[string]Aggregate),
		positions:  make(map[string]market.AgentPosition),
		keys:       make(map[string]KeyRecord),
	}
}

// AppendBlock implements Store. A genesis block resets the scope's chain.
func (m *Mem) AppendBlock(scope string, blk ledger.Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if blk.Index == 0 {
		m.blocks[scope] = nil
	}
	m.blocks[scope] = append(m.blocks[scope], blk)
	return nil
}

// Blocks implements Store.
func (m *Mem) Blocks(scope string) ([]ledger.Block, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	return append([]ledger.Block(nil), m.blocks[scope]...), nil
}

// Scopes implements Store.
func (m *Mem) Scopes() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	out := make([]string, 0, len(m.blocks))
	for s := range m.blocks {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// PutAggregate implements Store (latest-wins per scope).
func (m *Mem) PutAggregate(agg Aggregate) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.aggregates[agg.Scope] = agg
	return nil
}

// Aggregates implements Store.
func (m *Mem) Aggregates() ([]Aggregate, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	out := make([]Aggregate, 0, len(m.aggregates))
	for _, a := range m.aggregates {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scope < out[j].Scope })
	return out, nil
}

// UpsertPositions implements Store (latest-wins per agent ID).
func (m *Mem) UpsertPositions(positions []market.AgentPosition) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, p := range positions {
		m.positions[p.ID] = p
	}
	return nil
}

// Positions implements Store.
func (m *Mem) Positions() ([]market.AgentPosition, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	out := make([]market.AgentPosition, 0, len(m.positions))
	for _, p := range m.positions {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// PutKeyMaterial implements Store (latest-wins per (scope, party)).
func (m *Mem) PutKeyMaterial(rec KeyRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.keys[rec.Scope+"\x00"+rec.Party] = rec
	return nil
}

// KeyMaterial implements Store.
func (m *Mem) KeyMaterial() ([]KeyRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	out := make([]KeyRecord, 0, len(m.keys))
	for _, k := range m.keys {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Party < out[j].Party
	})
	return out, nil
}

// PutCheckpoint implements Store.
func (m *Mem) PutCheckpoint(cp Checkpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	c := cp
	m.checkpoint = &c
	return nil
}

// LastCheckpoint implements Store.
func (m *Mem) LastCheckpoint() (Checkpoint, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Checkpoint{}, false, ErrClosed
	}
	if m.checkpoint == nil {
		return Checkpoint{}, false, nil
	}
	return *m.checkpoint, true, nil
}

// Sync implements Store (no-op: memory is as stable as it gets).
func (m *Mem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
