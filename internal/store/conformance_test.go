package store

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/market"
)

// The conformance suite: one shared test body run against every Store
// implementation, so the in-memory reference and the WAL can never drift
// apart on interface semantics — empty-state behavior, genesis-reset
// replay, latest-wins upserts, checkpoint replacement and closed-store
// errors. The WAL factory reopens the segment file between the write and
// read halves where the suite asks for it, so the same assertions also
// cover recovery-after-restart.

// backend builds a fresh store and a reopen hook: reopen returns a store
// holding the same durable state (for Mem, the same instance — its
// durability is its own lifetime; for WAL, a fresh replay of the segment).
type backend struct {
	open func(t *testing.T) (Store, func(t *testing.T) Store)
}

func backends() map[string]backend {
	return map[string]backend{
		"mem": {open: func(t *testing.T) (Store, func(t *testing.T) Store) {
			m := NewMem()
			return m, func(*testing.T) Store { return m }
		}},
		"wal": {open: func(t *testing.T) (Store, func(t *testing.T) Store) {
			path := filepath.Join(t.TempDir(), "seg.wal")
			w, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			var cur Store = w
			reopen := func(t *testing.T) Store {
				if err := cur.Close(); err != nil {
					t.Fatal(err)
				}
				nw, err := OpenWAL(path)
				if err != nil {
					t.Fatal(err)
				}
				if rec := nw.Recovered(); rec.Truncated {
					t.Fatalf("clean reopen reported truncation: %+v", rec)
				}
				cur = nw
				return nw
			}
			return w, reopen
		}},
	}
}

// testChain builds a verified ledger chain of 1+windows blocks (genesis
// included), with per-window trades derived from the tag so different
// chains never collide.
func testChain(t *testing.T, tag string, windows int) []ledger.Block {
	t.Helper()
	l := ledger.New()
	for w := 0; w < windows; w++ {
		trades := []ledger.TradeRecord{
			{Seller: tag + "-s", Buyer: tag + "-b", EnergyKWh: 1.5 + float64(w), PaymentCents: 150 + float64(w)},
		}
		if _, err := l.Append(w, 100+float64(w), trades); err != nil {
			t.Fatal(err)
		}
	}
	blocks := make([]ledger.Block, l.Len())
	for i := range blocks {
		blk, err := l.Block(i)
		if err != nil {
			t.Fatal(err)
		}
		blocks[i] = blk
	}
	return blocks
}

func appendChain(t *testing.T, st Store, scope string, blocks []ledger.Block) {
	t.Helper()
	for _, blk := range blocks {
		if err := st.AppendBlock(scope, blk); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreConformance(t *testing.T) {
	for name, be := range backends() {
		t.Run(name, func(t *testing.T) {
			st, reopen := be.open(t)

			// Empty store: every getter answers, nothing is there.
			if scopes, err := st.Scopes(); err != nil || len(scopes) != 0 {
				t.Fatalf("empty Scopes = %v, %v", scopes, err)
			}
			if aggs, err := st.Aggregates(); err != nil || len(aggs) != 0 {
				t.Fatalf("empty Aggregates = %v, %v", aggs, err)
			}
			if ps, err := st.Positions(); err != nil || len(ps) != 0 {
				t.Fatalf("empty Positions = %v, %v", ps, err)
			}
			if ks, err := st.KeyMaterial(); err != nil || len(ks) != 0 {
				t.Fatalf("empty KeyMaterial = %v, %v", ks, err)
			}
			if _, ok, err := st.LastCheckpoint(); err != nil || ok {
				t.Fatalf("empty LastCheckpoint ok=%v err=%v", ok, err)
			}
			if blocks, err := st.Blocks("nope"); err != nil || len(blocks) != 0 {
				t.Fatalf("unknown scope Blocks = %v, %v", blocks, err)
			}

			// Chains persist per scope, in append order, and verify end to end.
			chainA := testChain(t, "a", 3)
			chainB := testChain(t, "b", 2)
			appendChain(t, st, "e00-c00", chainA)
			appendChain(t, st, "e00-c01", chainB)
			st = reopen(t)
			scopes, err := st.Scopes()
			if err != nil || !reflect.DeepEqual(scopes, []string{"e00-c00", "e00-c01"}) {
				t.Fatalf("Scopes = %v, %v", scopes, err)
			}
			got, err := st.Blocks("e00-c00")
			if err != nil || !reflect.DeepEqual(got, chainA) {
				t.Fatalf("Blocks(e00-c00) diverged: %v", err)
			}
			if l, err := ledger.FromBlocks(got); err != nil || l.Verify() != nil {
				t.Fatalf("recovered chain does not verify: %v", err)
			}

			// Genesis reset: a resumed epoch replays its chain from scratch and
			// supersedes the partial one.
			replayed := testChain(t, "a2", 2)
			appendChain(t, st, "e00-c00", replayed)
			st = reopen(t)
			if got, err := st.Blocks("e00-c00"); err != nil || !reflect.DeepEqual(got, replayed) {
				t.Fatalf("genesis reset did not supersede: %v, %v", got, err)
			}

			// Aggregates and key material are latest-wins upserts, sorted.
			if err := st.PutAggregate(Aggregate{Scope: "e00-c01", Windows: 1, ImportKWh: 9}); err != nil {
				t.Fatal(err)
			}
			wantAggs := []Aggregate{
				{Scope: "e00-c00", Windows: 2, ImportKWh: 1.25, ExportKWh: 0.5, ChainHead: "beef", Folded: false},
				{Scope: "e00-c01", Windows: 2, Folded: true},
			}
			for _, a := range wantAggs {
				if err := st.PutAggregate(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.PutKeyMaterial(KeyRecord{Scope: "e00-c00", Party: "h1", Fingerprint: []byte{1}}); err != nil {
				t.Fatal(err)
			}
			wantKeys := []KeyRecord{
				{Scope: "e00-c00", Party: "h0", Fingerprint: []byte{9, 9}},
				{Scope: "e00-c00", Party: "h1", Fingerprint: []byte{4, 2}},
				{Scope: "e00-c01", Party: "h0", Fingerprint: []byte{7}},
			}
			for _, k := range []int{1, 0, 2} { // out of order on purpose
				if err := st.PutKeyMaterial(wantKeys[k]); err != nil {
					t.Fatal(err)
				}
			}
			st = reopen(t)
			if aggs, err := st.Aggregates(); err != nil || !reflect.DeepEqual(aggs, wantAggs) {
				t.Fatalf("Aggregates = %+v, %v; want %+v", aggs, err, wantAggs)
			}
			if ks, err := st.KeyMaterial(); err != nil || !reflect.DeepEqual(ks, wantKeys) {
				t.Fatalf("KeyMaterial = %+v, %v; want %+v", ks, err, wantKeys)
			}

			// Positions are latest-wins per agent ID.
			if err := st.UpsertPositions([]market.AgentPosition{
				{ID: "h0", JoinEpoch: 0, ExitEpoch: -1},
				{ID: "h1", JoinEpoch: 0, ExitEpoch: -1},
			}); err != nil {
				t.Fatal(err)
			}
			wantPos := []market.AgentPosition{
				{ID: "h0", Flows: market.AgentFlows{BuyKWh: 2.5, PaidCents: 260}, ExitEpoch: -1},
				{ID: "h1", Flows: market.AgentFlows{SellKWh: 2.5, EarnedCents: 260}, JoinEpoch: 1, ExitEpoch: 2, ExitKind: "depart"},
			}
			if err := st.UpsertPositions(wantPos); err != nil {
				t.Fatal(err)
			}
			st = reopen(t)
			if ps, err := st.Positions(); err != nil || !reflect.DeepEqual(ps, wantPos) {
				t.Fatalf("Positions = %+v, %v; want %+v", ps, err, wantPos)
			}

			// Checkpoints replace each other; the newest intact one wins.
			cp1 := Checkpoint{Epoch: 0, Roster: []string{"h0", "h1"}, Seed: 41, Config: []byte(`{"v":1}`), ConfigHash: "cafe"}
			cp2 := Checkpoint{
				Epoch:      1,
				Roster:     []string{"h0", "h1", "h2"},
				Positions:  wantPos,
				ChainHeads: []ChainHead{{Scope: "e01-c00", Head: "f00d"}},
				Seed:       41,
				Config:     []byte(`{"v":1}`),
				ConfigHash: "cafe",
			}
			if err := st.PutCheckpoint(cp1); err != nil {
				t.Fatal(err)
			}
			if err := st.PutCheckpoint(cp2); err != nil {
				t.Fatal(err)
			}
			st = reopen(t)
			cp, ok, err := st.LastCheckpoint()
			if err != nil || !ok || !reflect.DeepEqual(cp, cp2) {
				t.Fatalf("LastCheckpoint = %+v, %v, %v; want %+v", cp, ok, err, cp2)
			}

			// Sync is available; Close makes every further call ErrClosed.
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if err := st.AppendBlock("x", chainA[0]); !errors.Is(err, ErrClosed) {
				t.Errorf("AppendBlock after Close = %v, want ErrClosed", err)
			}
			if err := st.PutCheckpoint(cp1); !errors.Is(err, ErrClosed) {
				t.Errorf("PutCheckpoint after Close = %v, want ErrClosed", err)
			}
			if _, err := st.Blocks("x"); !errors.Is(err, ErrClosed) {
				t.Errorf("Blocks after Close = %v, want ErrClosed", err)
			}
			if _, _, err := st.LastCheckpoint(); !errors.Is(err, ErrClosed) {
				t.Errorf("LastCheckpoint after Close = %v, want ErrClosed", err)
			}
			if err := st.Close(); err != nil {
				t.Errorf("second Close = %v, want nil", err)
			}
		})
	}
}
