package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/pem-go/pem/internal/market"
)

// walFixture writes a representative segment — two chains, aggregates, key
// material, positions, a first checkpoint, and a final record — then closes
// it and returns the path plus the byte offset where the final record
// starts (so torn-write tests can shear it at every offset).
func walFixture(t *testing.T, final func(*WAL) error) (path string, lastRecStart int64) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "seg.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, w, "e00-c00", testChain(t, "a", 2))
	if err := w.PutKeyMaterial(KeyRecord{Scope: "e00-c00", Party: "h0", Fingerprint: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.PutAggregate(Aggregate{Scope: "e00-c00", Windows: 2, ImportKWh: 3, ChainHead: "beef"}); err != nil {
		t.Fatal(err)
	}
	if err := w.UpsertPositions(testChainPositions()); err != nil {
		t.Fatal(err)
	}
	if err := w.PutCheckpoint(walTestCheckpoint()); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	lastRecStart = w.end
	w.mu.Unlock()
	if err := final(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, lastRecStart
}

func testChainPositions() []market.AgentPosition {
	return []market.AgentPosition{
		{ID: "h0", ExitEpoch: -1},
		{ID: "h1", JoinEpoch: 1, ExitEpoch: -1},
	}
}

func walTestCheckpoint() Checkpoint {
	return Checkpoint{
		Epoch:      0,
		Roster:     []string{"h0", "h1"},
		Positions:  testChainPositions(),
		ChainHeads: []ChainHead{{Scope: "e00-c00", Head: "beef"}},
		Seed:       41,
		Config:     []byte(`{"v":1}`),
		ConfigHash: "cafe",
	}
}

// TestWALTornTailEveryOffset is the torn-write sweep: the segment is cut at
// every byte offset inside its final record (a second checkpoint), and each
// truncation must reopen cleanly with the tail dropped and the previous
// checkpoint — the durable resume point — intact. This is the "crash during
// the commit write" model at byte granularity.
func TestWALTornTailEveryOffset(t *testing.T) {
	path, lastRecStart := walFixture(t, func(w *WAL) error {
		cp := walTestCheckpoint()
		cp.Epoch = 1
		cp.ChainHeads = []ChainHead{{Scope: "e01-c00", Head: "f00d"}}
		return w.PutCheckpoint(cp)
	})
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(whole))
	if lastRecStart <= int64(len(walMagic)) || lastRecStart >= size {
		t.Fatalf("fixture shape: last record at %d of %d", lastRecStart, size)
	}

	for cut := lastRecStart; cut < size; cut++ {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(torn)
		if err != nil {
			t.Fatalf("cut at %d: reopen failed: %v", cut, err)
		}
		rec := w.Recovered()
		if cut == lastRecStart {
			// Nothing of the final record landed: a clean prefix, no repair.
			if rec.Truncated {
				t.Fatalf("cut at %d: clean prefix reported truncation: %+v", cut, rec)
			}
		} else if !rec.Truncated || rec.DroppedBytes != cut-lastRecStart {
			t.Fatalf("cut at %d: recovery = %+v, want %d dropped bytes", cut, rec, cut-lastRecStart)
		}
		cp, ok, err := w.LastCheckpoint()
		if err != nil || !ok {
			t.Fatalf("cut at %d: lost the previous checkpoint: ok=%v err=%v", cut, ok, err)
		}
		if want := walTestCheckpoint(); !reflect.DeepEqual(cp, want) {
			t.Fatalf("cut at %d: checkpoint diverged: %+v", cut, cp)
		}
		// The surviving records still read back whole.
		if blocks, err := w.Blocks("e00-c00"); err != nil || len(blocks) != 3 {
			t.Fatalf("cut at %d: chain lost: %d blocks, %v", cut, len(blocks), err)
		}
		// And the repaired segment accepts new writes where the tear was.
		if err := w.PutAggregate(Aggregate{Scope: "e01-c00", Windows: 1}); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALBitFlips flips seeded random bits across the record region: replay
// must never panic and must come back with a typed outcome — either a clean
// open whose valid prefix simply got shorter, or ErrCorrupt/ErrNotWAL.
func TestWALBitFlips(t *testing.T) {
	path, _ := walFixture(t, func(w *WAL) error {
		return w.PutAggregate(Aggregate{Scope: "e01-c00", Windows: 4})
	})
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20200425))
	for i := 0; i < 200; i++ {
		off := len(walMagic) + rng.Intn(len(whole)-len(walMagic))
		bit := byte(1) << rng.Intn(8)
		flipped := filepath.Join(t.TempDir(), "flip.wal")
		mut := append([]byte(nil), whole...)
		mut[off] ^= bit
		if err := os.WriteFile(flipped, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(flipped)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotWAL) {
				t.Fatalf("flip at %d/%#x: untyped error %v", off, bit, err)
			}
			continue
		}
		// The flipped record and everything after it must be gone; whatever
		// survived must still decode without error.
		if _, err := w.Blocks("e00-c00"); err != nil {
			t.Fatalf("flip at %d/%#x: surviving prefix unreadable: %v", off, bit, err)
		}
		if _, err := w.Aggregates(); err != nil {
			t.Fatalf("flip at %d/%#x: surviving aggregates unreadable: %v", off, bit, err)
		}
		if _, _, err := w.LastCheckpoint(); err != nil {
			t.Fatalf("flip at %d/%#x: checkpoint read: %v", off, bit, err)
		}
		w.Close()
	}
}

// TestWALRejectsForeignFile: a file that is not a WAL segment must fail
// typed, not be silently truncated and overwritten.
func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("definitely not a WAL segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("foreign file opened as WAL: %v", err)
	}
	// A sub-header file is indistinguishable from a segment torn at birth:
	// it is reinitialized, with the recovery report saying so.
	tiny := filepath.Join(t.TempDir(), "tiny.wal")
	if err := os.WriteFile(tiny, []byte("PEM"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(tiny)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rec := w.Recovered(); !rec.Truncated || rec.DroppedBytes != 3 {
		t.Fatalf("torn-at-birth recovery = %+v", rec)
	}
}

// TestWALCorruptCheckpointPayload: a checkpoint record whose CRC is valid
// but whose payload does not decode is a format error, not a torn write —
// replay must refuse with ErrCorrupt instead of silently dropping a resume
// point that was durably committed.
func TestWALCorruptCheckpointPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	body := []byte{recCheckpoint, '{', 'x'} // CRC-valid, JSON-invalid
	rec := make([]byte, walHeaderLen+len(body))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(body, castagnoli))
	copy(rec[walHeaderLen:], body)
	if err := os.WriteFile(path, append(append([]byte(nil), walMagic[:]...), rec...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt checkpoint opened: %v", err)
	}
}
