package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the replay path: whatever is on
// disk, OpenWAL must either recover a valid prefix or fail with a typed
// error — never panic, never allocate unboundedly from a hostile length
// prefix — and a store recovered from garbage must still be fully usable.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PEM"))
	f.Add([]byte("PEMWAL01"))
	f.Add([]byte("PEMWAL01\x00\x00\x00\x03\xde\xad\xbe\xef\x01{}"))
	f.Add([]byte("not a wal segment at all"))
	// A real segment with one of every record type, as a mutation seed.
	seedPath := filepath.Join(f.TempDir(), "seed.wal")
	w, err := OpenWAL(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.PutAggregate(Aggregate{Scope: "c00", Windows: 1, ImportKWh: 2}); err != nil {
		f.Fatal(err)
	}
	if err := w.PutKeyMaterial(KeyRecord{Scope: "c00", Party: "h0", Fingerprint: []byte{1}}); err != nil {
		f.Fatal(err)
	}
	if err := w.UpsertPositions(testChainPositions()); err != nil {
		f.Fatal(err)
	}
	if err := w.PutCheckpoint(walTestCheckpoint()); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(path)
		if err != nil {
			return // typed failure is a valid outcome; panics are the bug
		}
		defer w.Close()
		// Whatever prefix survived must be fully readable and writable.
		scopes, err := w.Scopes()
		if err != nil {
			return // ErrCorrupt on a CRC-colliding record is acceptable
		}
		for _, s := range scopes {
			if _, err := w.Blocks(s); err != nil {
				return
			}
		}
		if _, err := w.Aggregates(); err != nil {
			return
		}
		if _, err := w.Positions(); err != nil {
			return
		}
		if _, err := w.KeyMaterial(); err != nil {
			return
		}
		if _, _, err := w.LastCheckpoint(); err != nil {
			t.Fatalf("cached checkpoint read failed after clean open: %v", err)
		}
		if err := w.PutAggregate(Aggregate{Scope: "post-recovery", Windows: 1}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
