package audit

import (
	mrand "math/rand"
	"testing"

	"github.com/pem-go/pem/internal/market"
)

func scenario() ([]market.Agent, []market.WindowInput) {
	agents := []market.Agent{
		{ID: "s1", K: 85, Epsilon: 0.9},
		{ID: "s2", K: 75, Epsilon: 0.85},
		{ID: "b1", K: 80, Epsilon: 0.9},
		{ID: "b2", K: 90, Epsilon: 0.8},
		{ID: "b3", K: 70, Epsilon: 0.85},
	}
	inputs := []market.WindowInput{
		{Generation: 0.35, Load: 0.10}, // +0.25
		{Generation: 0.30, Load: 0.12}, // +0.18
		{Generation: 0.00, Load: 0.30}, // −0.30
		{Generation: 0.02, Load: 0.25}, // −0.23
		{Generation: 0.00, Load: 0.20}, // −0.20
	}
	return agents, inputs
}

func TestVerifyCleanClearing(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	c, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyClearing(c, params)
	if !rep.OK() {
		t.Fatalf("clean clearing flagged: %v", rep.Violations)
	}
	if rep.Err() != nil {
		t.Fatal("Err on clean report")
	}
}

func TestVerifyDetectsPriceOutOfBand(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	c, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	c.Price = 150 // outside [90, 110]
	rep := VerifyClearing(c, params)
	if rep.OK() {
		t.Fatal("out-of-band price not detected")
	}
}

func TestVerifyDetectsSkimmedPayment(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	c, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	c.Trades[0].Payment *= 0.5
	rep := VerifyClearing(c, params)
	if rep.OK() {
		t.Fatal("skimmed payment not detected")
	}
}

func TestVerifyDetectsMissingTrade(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	c, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	c.Trades = c.Trades[1:] // drop one allocation
	rep := VerifyClearing(c, params)
	if rep.OK() {
		t.Fatal("dropped trade not detected")
	}
}

func TestVerifyDetectsWrongRegime(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	c, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	c.Kind = market.ExtremeMarket // supply < demand, so this lies
	rep := VerifyClearing(c, params)
	if rep.OK() {
		t.Fatal("wrong regime not detected")
	}
}

func TestVerifyDetectsSkewedShares(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	c, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	// Move energy from one buyer to another, keeping totals constant.
	moved := false
	for i := range c.Trades {
		if c.Trades[i].Buyer == "b1" && !moved {
			c.Trades[i].Energy += 0.05
			c.Trades[i].Payment = c.Trades[i].Energy * c.Price
		}
		if c.Trades[i].Buyer == "b2" && !moved {
			c.Trades[i].Energy -= 0.05
			c.Trades[i].Payment = c.Trades[i].Energy * c.Price
			moved = true
		}
	}
	rep := VerifyClearing(c, params)
	if rep.OK() {
		t.Fatal("skewed pro-rata shares not detected")
	}
}

func TestTradesToClearingRoundTrip(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	ref, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	c, err := TradesToClearing(ref.Kind, ref.Price, ref.Trades, agents, inputs)
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyClearing(c, params)
	if !rep.OK() {
		t.Fatalf("reconstructed clearing flagged: %v", rep.Violations)
	}
	if _, err := TradesToClearing(ref.Kind, ref.Price, nil, agents, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBuyerDemandInflationBoundedAndBackfires(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	honest, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	// Deviant: b3, whose demand (0.20) is well below the market supply
	// (0.43), so heavy inflation over-buys far past its true need.
	const deviant = 4
	trueDemand := -inputs[deviant].NetEnergy()
	bound := BuyerInflationBound(honest, agents[deviant].ID, trueDemand, params)

	gains := map[float64]float64{}
	for _, scale := range []float64{1.5, 2, 5, 50} {
		out, err := BuyerDemandInflation(agents, inputs, params, deviant, scale)
		if err != nil {
			t.Fatal(err)
		}
		gains[scale] = out.Gain()
		// The gain can be positive (the documented coverage gap) but never
		// exceeds the bound.
		if out.Gain() > bound+1e-9 {
			t.Errorf("scale %.1f: gain %v exceeds coverage-gap bound %v", scale, out.Gain(), bound)
		}
	}
	// Mild inflation profits (the incentive gap Protocol 4 hides data to
	// blunt)…
	if gains[2] <= 0 {
		t.Errorf("expected positive gain at scale 2, got %v", gains[2])
	}
	// …but over-inflation backfires: phantom demand buys energy at the
	// market price that can only be resold at pbtg.
	if gains[50] >= gains[2] {
		t.Errorf("over-inflation did not backfire: gain(50)=%v ≥ gain(2)=%v", gains[50], gains[2])
	}
}

func TestBuyerDemandInflationErrors(t *testing.T) {
	agents, inputs := scenario()
	params := market.DefaultParams()
	if _, err := BuyerDemandInflation(agents, inputs, params, 0, 2); err == nil {
		t.Error("seller index accepted as buyer")
	}
	if _, err := BuyerDemandInflation(agents, inputs, params, 99, 2); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := BuyerDemandInflation(agents, inputs, params, 2, -1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestSellerSupplyInflationBoundedAndBackfires(t *testing.T) {
	// Extreme market: plenty of supply.
	agents := []market.Agent{
		{ID: "s1", K: 85, Epsilon: 0.9},
		{ID: "s2", K: 75, Epsilon: 0.85},
		{ID: "s3", K: 95, Epsilon: 0.9},
		{ID: "b1", K: 80, Epsilon: 0.9},
	}
	// The buyer's demand (1.0) exceeds the deviant's true surplus (0.30),
	// so heavy inflation forces over-delivery.
	inputs := []market.WindowInput{
		{Generation: 0.40, Load: 0.10}, // +0.30 (deviant)
		{Generation: 0.90, Load: 0.10}, // +0.80
		{Generation: 0.80, Load: 0.10}, // +0.70
		{Generation: 0.00, Load: 1.00}, // −1.00
	}
	params := market.DefaultParams()
	honest, err := market.Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	trueSurplus := inputs[0].NetEnergy()
	bound := SellerInflationBound(honest, agents[0].ID, trueSurplus, params)

	gains := map[float64]float64{}
	for _, scale := range []float64{1.5, 2, 4, 50} {
		out, err := SellerSupplyInflation(agents, inputs, params, 0, scale)
		if err != nil {
			t.Fatal(err)
		}
		gains[scale] = out.Gain()
		if out.Gain() > bound+1e-9 {
			t.Errorf("scale %.1f: gain %v exceeds feed-in-gap bound %v", scale, out.Gain(), bound)
		}
	}
	// Over-inflation backfires: phantom supply must be bought back at
	// retail and sold at the floor price.
	if gains[50] >= gains[1.5] {
		t.Errorf("over-inflation did not backfire: gain(50)=%v ≥ gain(1.5)=%v", gains[50], gains[1.5])
	}
	if _, err := SellerSupplyInflation(agents, inputs, params, 3, 2); err == nil {
		t.Error("buyer index accepted as seller")
	}
	if _, err := SellerSupplyInflation(agents, inputs, params, 0, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestIncentivePropertyRandomized(t *testing.T) {
	params := market.DefaultParams()
	rng := mrand.New(mrand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		agents := make([]market.Agent, n)
		inputs := make([]market.WindowInput, n)
		for i := range agents {
			agents[i] = market.Agent{
				ID:      "h" + string(rune('a'+i)),
				K:       60 + rng.Float64()*60,
				Epsilon: 0.6 + rng.Float64()*0.3,
			}
			inputs[i] = market.WindowInput{
				Generation: rng.Float64() * 0.3,
				Load:       rng.Float64() * 0.3,
			}
		}
		// Individual rationality holds for every agent.
		worse, err := IndividualRationality(agents, inputs, params)
		if err != nil {
			t.Fatal(err)
		}
		if len(worse) > 0 {
			t.Fatalf("trial %d: agents worse off under PEM: %v", trial, worse)
		}
		// Any buyer's inflation gain stays within the coverage-gap bound.
		honest, err := market.Clear(agents, inputs, params)
		if err != nil {
			t.Fatal(err)
		}
		for i := range agents {
			if market.ClassifyRole(inputs[i].NetEnergy()) != market.RoleBuyer {
				continue
			}
			out, err := BuyerDemandInflation(agents, inputs, params, i, 1+rng.Float64()*3)
			if err != nil {
				continue // window may be degenerate for this agent
			}
			bound := BuyerInflationBound(honest, agents[i].ID, -inputs[i].NetEnergy(), params)
			if out.Gain() > bound+1e-6 {
				t.Fatalf("trial %d: buyer %s gain %v exceeds bound %v", trial, agents[i].ID, out.Gain(), bound)
			}
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Check: "price", Detail: "too high"}
	if v.String() != "price: too high" {
		t.Errorf("got %q", v.String())
	}
}
