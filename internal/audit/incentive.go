package audit

import (
	"fmt"

	"github.com/pem-go/pem/internal/market"
)

// DeviationOutcome is the payoff comparison of one misreporting experiment.
type DeviationOutcome struct {
	// AgentID is the deviating agent.
	AgentID string
	// HonestPayoff is the agent's payoff (revenue for sellers, negative
	// cost for buyers) when everyone reports truthfully.
	HonestPayoff float64
	// DeviantPayoff is the payoff under the misreport, evaluated against
	// the agent's TRUE physical position (misreporting does not change
	// how much energy the agent actually has or needs).
	DeviantPayoff float64
}

// Gain is the payoff improvement achieved by cheating (≤ 0 for an
// incentive-compatible mechanism, up to market rounding).
func (d DeviationOutcome) Gain() float64 { return d.DeviantPayoff - d.HonestPayoff }

// BuyerDemandInflation replays a window where buyer agentIdx claims its
// demand is scale× the true value (scale > 1 inflates the claimed |sn| to
// grab a larger pro-rata share, the attack Protocol 4's design calls out).
// The deviant's bill is evaluated against its true demand: energy received
// beyond the true demand is surplus it cannot use and must feed back to
// the grid at pbtg (it was bought at the higher market price).
//
// Reproduction note: the mechanism does NOT make this deviation strictly
// unprofitable — a buyer whose honest allocation leaves part of its true
// demand uncovered can gain up to
//
//	(pstg − p*) · (trueDemand − honestAllocation)
//
// by capturing more of the cheap market supply. This is precisely why
// Protocol 4 hides E_b and |sn_j| from other buyers ("the market demand
// cannot be directly disclosed to the buyers", Section IV-F): without
// those values a rational semi-honest buyer cannot gauge the inflation
// that stops short of over-buying, and over-buying turns the gain into a
// loss (extra units bought at p* ≥ pl return only pbtg). The tests assert
// the gain never exceeds the coverage-gap bound and that over-inflation
// backfires; see EXPERIMENTS.md for the measured curves.
func BuyerDemandInflation(agents []market.Agent, inputs []market.WindowInput, params market.Params, agentIdx int, scale float64) (*DeviationOutcome, error) {
	if agentIdx < 0 || agentIdx >= len(agents) {
		return nil, fmt.Errorf("audit: agent index %d out of range", agentIdx)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("audit: scale must be positive")
	}
	trueNet := inputs[agentIdx].NetEnergy()
	if market.ClassifyRole(trueNet) != market.RoleBuyer {
		return nil, fmt.Errorf("audit: agent %s is not a buyer in this window", agents[agentIdx].ID)
	}
	trueDemand := -trueNet

	honest, err := market.Clear(agents, inputs, params)
	if err != nil {
		return nil, err
	}

	// The deviant claims a scaled load (net = g - l - b, so inflating the
	// claimed load inflates the claimed demand).
	deviantInputs := append([]market.WindowInput(nil), inputs...)
	deviantInputs[agentIdx].Load += (scale - 1) * trueDemand
	deviant, err := market.Clear(agents, deviantInputs, params)
	if err != nil {
		return nil, err
	}

	id := agents[agentIdx].ID
	return &DeviationOutcome{
		AgentID:       id,
		HonestPayoff:  -buyerTrueCost(honest, id, trueDemand, params),
		DeviantPayoff: -buyerTrueCost(deviant, id, trueDemand, params),
	}, nil
}

// buyerTrueCost prices a buyer's clearing against its true demand: market
// energy up to the true demand displaces retail purchases; energy beyond
// it was paid for at the market price but returns only pbtg from the grid.
func buyerTrueCost(c *market.Clearing, id string, trueDemand float64, params market.Params) float64 {
	var bought, paid float64
	for _, tr := range c.Trades {
		if tr.Buyer == id {
			bought += tr.Energy
			paid += tr.Payment
		}
	}
	cost := paid
	if bought < trueDemand {
		cost += (trueDemand - bought) * params.GridRetailPrice
	} else {
		cost -= (bought - trueDemand) * params.GridSellPrice
	}
	return cost
}

// SellerSupplyInflation replays a window where seller agentIdx claims a
// scaled surplus (the extreme-market attack from Theorem 2's proof:
// inflating supply grows the allocated share but the seller must actually
// deliver, buying the shortfall back from the grid at retail).
//
// Analogously to BuyerDemandInflation, the gain is bounded by
// (pl − pbtg) · (trueSurplus − honestSold) — converting grid feed-in into
// market sales — and turns negative once the inflated allocation exceeds
// the seller's real surplus (each phantom unit is bought at pstg and sold
// at pl < pstg).
func SellerSupplyInflation(agents []market.Agent, inputs []market.WindowInput, params market.Params, agentIdx int, scale float64) (*DeviationOutcome, error) {
	if agentIdx < 0 || agentIdx >= len(agents) {
		return nil, fmt.Errorf("audit: agent index %d out of range", agentIdx)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("audit: scale must be positive")
	}
	trueNet := inputs[agentIdx].NetEnergy()
	if market.ClassifyRole(trueNet) != market.RoleSeller {
		return nil, fmt.Errorf("audit: agent %s is not a seller in this window", agents[agentIdx].ID)
	}

	honest, err := market.Clear(agents, inputs, params)
	if err != nil {
		return nil, err
	}

	deviantInputs := append([]market.WindowInput(nil), inputs...)
	deviantInputs[agentIdx].Generation += (scale - 1) * trueNet
	deviant, err := market.Clear(agents, deviantInputs, params)
	if err != nil {
		return nil, err
	}

	id := agents[agentIdx].ID
	return &DeviationOutcome{
		AgentID:       id,
		HonestPayoff:  sellerTrueRevenue(honest, id, trueNet, params),
		DeviantPayoff: sellerTrueRevenue(deviant, id, trueNet, params),
	}, nil
}

// sellerTrueRevenue prices a seller's clearing against its true surplus:
// market sales beyond the real surplus must be covered by retail purchases
// from the grid; unsold real surplus feeds in at pbtg.
func sellerTrueRevenue(c *market.Clearing, id string, trueSurplus float64, params market.Params) float64 {
	var sold, earned float64
	for _, tr := range c.Trades {
		if tr.Seller == id {
			sold += tr.Energy
			earned += tr.Payment
		}
	}
	revenue := earned
	if sold > trueSurplus {
		revenue -= (sold - trueSurplus) * params.GridRetailPrice
	} else {
		revenue += (trueSurplus - sold) * params.GridSellPrice
	}
	return revenue
}

// BuyerInflationBound computes the coverage-gap bound on a buyer's
// cheating gain: (pstg − p*) times the true demand its honest allocation
// left uncovered.
func BuyerInflationBound(honest *market.Clearing, id string, trueDemand float64, params market.Params) float64 {
	var alloc float64
	for _, tr := range honest.Trades {
		if tr.Buyer == id {
			alloc += tr.Energy
		}
	}
	uncovered := trueDemand - alloc
	if uncovered < 0 {
		uncovered = 0
	}
	return (params.GridRetailPrice - honest.Price) * uncovered
}

// SellerInflationBound computes the feed-in-gap bound on a seller's
// cheating gain: (p* − pbtg) times the true surplus its honest allocation
// left unsold on the market.
func SellerInflationBound(honest *market.Clearing, id string, trueSurplus float64, params market.Params) float64 {
	var sold float64
	for _, tr := range honest.Trades {
		if tr.Seller == id {
			sold += tr.Energy
		}
	}
	unsold := trueSurplus - sold
	if unsold < 0 {
		unsold = 0
	}
	return (honest.Price - params.GridSellPrice) * unsold
}

// IndividualRationality compares every agent's PEM payoff with the
// grid-only baseline and returns the IDs of any agents worse off (empty
// for a correct market — Theorem 2 part 1).
func IndividualRationality(agents []market.Agent, inputs []market.WindowInput, params market.Params) ([]string, error) {
	pem, err := market.Clear(agents, inputs, params)
	if err != nil {
		return nil, err
	}
	base, err := market.BaselineClear(agents, inputs, params)
	if err != nil {
		return nil, err
	}
	var worse []string
	const tol = 1e-9
	for i := range agents {
		p, b := pem.Outcomes[i], base.Outcomes[i]
		switch p.Role {
		case market.RoleSeller:
			if p.Revenue < b.Revenue-tol {
				worse = append(worse, agents[i].ID)
			}
		case market.RoleBuyer:
			if p.Cost > b.Cost+tol {
				worse = append(worse, agents[i].ID)
			}
		}
	}
	return worse, nil
}
