// Package audit provides post-hoc verification of PEM trading windows and
// empirical incentive experiments.
//
// The paper's threat model (Section II-B) assumes semi-honest agents that
// nevertheless "have the incentive to improve payoff by cheating on data";
// Section VI sketches verifiable, collusion-resistant extensions. This
// package supplies the verification half:
//
//   - VerifyClearing checks a window outcome for internal consistency —
//     price inside the legal corridor, pro-rata allocation shares,
//     conservation of traded energy, payments matching the clearing price —
//     detecting corrupted or tampered results regardless of which party
//     produced them.
//   - Deviation experiments quantify Theorem 2 empirically: they replay a
//     window with one agent misreporting its data and measure the payoff
//     delta, demonstrating individual rationality and incentive
//     compatibility on concrete workloads.
package audit

import (
	"errors"
	"fmt"
	"math"

	"github.com/pem-go/pem/internal/market"
)

// Violation describes one failed consistency check.
type Violation struct {
	// Check names the failed rule.
	Check string
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// Report is the outcome of VerifyClearing.
type Report struct {
	Violations []Violation
}

// OK reports whether no violations were found.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err renders the report as an error (nil if OK).
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("audit: %d violations, first: %s", len(r.Violations), r.Violations[0])
}

func (r *Report) add(check, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// tolerances for floating/fixed-point comparisons.
const (
	energyTol  = 1e-4
	paymentTol = 1e-2
	priceTol   = 1e-6
)

// VerifyClearing audits a clearing (from either the plaintext reference or
// the private engine, converted to a Clearing) against the market rules.
func VerifyClearing(c *market.Clearing, params market.Params) *Report {
	rep := &Report{}
	if err := params.Validate(); err != nil {
		rep.add("params", "%v", err)
		return rep
	}

	// Rule 1: price inside the corridor, or retail for seller-less
	// windows.
	switch {
	case len(c.SellerIDs) == 0:
		if math.Abs(c.Price-params.GridRetailPrice) > priceTol {
			rep.add("price", "seller-less window priced %.6f, want retail %.2f", c.Price, params.GridRetailPrice)
		}
	case c.Kind == market.ExtremeMarket:
		if math.Abs(c.Price-params.PriceFloor) > priceTol {
			rep.add("price", "extreme market priced %.6f, want floor %.2f", c.Price, params.PriceFloor)
		}
	default:
		if c.Price < params.PriceFloor-priceTol || c.Price > params.PriceCeil+priceTol {
			rep.add("price", "general-market price %.6f outside [%.2f, %.2f]", c.Price, params.PriceFloor, params.PriceCeil)
		}
	}

	// Rule 2: regime matches supply/demand.
	if len(c.SellerIDs) > 0 && len(c.BuyerIDs) > 0 {
		wantKind := market.GeneralMarket
		if c.Supply >= c.Demand {
			wantKind = market.ExtremeMarket
		}
		if c.Kind != wantKind {
			rep.add("regime", "kind %v with supply %.6f vs demand %.6f", c.Kind, c.Supply, c.Demand)
		}
	}

	// Rule 3: payments match price.
	for _, tr := range c.Trades {
		if tr.Energy < -energyTol {
			rep.add("trade", "%s->%s negative energy %.6f", tr.Seller, tr.Buyer, tr.Energy)
		}
		if math.Abs(tr.Payment-tr.Energy*c.Price) > paymentTol {
			rep.add("payment", "%s->%s paid %.4f for %.6f kWh at %.4f", tr.Seller, tr.Buyer, tr.Payment, tr.Energy, c.Price)
		}
	}

	// Rule 4: conservation — total traded equals the short side.
	if len(c.SellerIDs) > 0 && len(c.BuyerIDs) > 0 {
		var traded float64
		bySeller := make(map[string]float64)
		byBuyer := make(map[string]float64)
		for _, tr := range c.Trades {
			traded += tr.Energy
			bySeller[tr.Seller] += tr.Energy
			byBuyer[tr.Buyer] += tr.Energy
		}
		short := math.Min(c.Supply, c.Demand)
		if math.Abs(traded-short) > energyTol*float64(len(c.Trades)+1) {
			rep.add("conservation", "traded %.6f, short side %.6f", traded, short)
		}

		// Rule 5: pro-rata shares (Section III-D).
		net := make(map[string]float64, len(c.Outcomes))
		for _, o := range c.Outcomes {
			net[o.ID] = o.Net
		}
		if c.Kind == market.GeneralMarket {
			// Each seller's full surplus is sold.
			for _, id := range c.SellerIDs {
				if math.Abs(bySeller[id]-net[id]) > energyTol*10 {
					rep.add("pro-rata", "seller %s sold %.6f of surplus %.6f", id, bySeller[id], net[id])
				}
			}
			// Buyer j receives E_s·|sn_j|/E_b.
			for _, id := range c.BuyerIDs {
				want := c.Supply * (-net[id]) / c.Demand
				if math.Abs(byBuyer[id]-want) > energyTol*10 {
					rep.add("pro-rata", "buyer %s received %.6f, want %.6f", id, byBuyer[id], want)
				}
			}
		} else {
			// Each buyer's full demand is covered.
			for _, id := range c.BuyerIDs {
				if math.Abs(byBuyer[id]-(-net[id])) > energyTol*10 {
					rep.add("pro-rata", "buyer %s received %.6f of demand %.6f", id, byBuyer[id], -net[id])
				}
			}
			for _, id := range c.SellerIDs {
				want := c.Demand * net[id] / c.Supply
				if math.Abs(bySeller[id]-want) > energyTol*10 {
					rep.add("pro-rata", "seller %s sold %.6f, want %.6f", id, bySeller[id], want)
				}
			}
		}
	}
	return rep
}

// TradesToClearing reconstructs an auditable Clearing from a private
// window result plus the (publicly announced) roster and the auditor's own
// knowledge of the inputs. Experiment harnesses use it to run VerifyClearing
// against engine output.
func TradesToClearing(kind market.Kind, price float64, trades []market.Trade, agents []market.Agent, inputs []market.WindowInput) (*market.Clearing, error) {
	if len(agents) != len(inputs) {
		return nil, errors.New("audit: agents/inputs length mismatch")
	}
	c := &market.Clearing{
		Kind:     kind,
		Price:    price,
		Trades:   append([]market.Trade(nil), trades...),
		Outcomes: make([]market.AgentOutcome, len(agents)),
	}
	for i, in := range inputs {
		net := in.NetEnergy()
		role := market.ClassifyRole(net)
		c.Outcomes[i] = market.AgentOutcome{ID: agents[i].ID, Role: role, Net: net}
		switch role {
		case market.RoleSeller:
			c.Supply += net
			c.SellerIDs = append(c.SellerIDs, agents[i].ID)
		case market.RoleBuyer:
			c.Demand += -net
			c.BuyerIDs = append(c.BuyerIDs, agents[i].ID)
		}
	}
	return c, nil
}
