package market

import (
	"math"
	"testing"
)

func testClearing(t *testing.T) *Clearing {
	t.Helper()
	agents := []Agent{
		{ID: "a", K: 80, Epsilon: 0.9},
		{ID: "b", K: 90, Epsilon: 0.85},
		{ID: "c", K: 100, Epsilon: 0.8},
	}
	inputs := []WindowInput{
		{Generation: 0.5, Load: 0.1}, // seller
		{Generation: 0.0, Load: 0.3}, // buyer
		{Generation: 0.0, Load: 0.4}, // buyer
	}
	c, err := Clear(agents, inputs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAccumulateFlowsBalances(t *testing.T) {
	c := testClearing(t)
	flows := make(map[string]AgentFlows)
	AccumulateFlows(flows, c, DefaultParams())

	var sell, buy, earned, paid float64
	for _, f := range flows {
		sell += f.SellKWh
		buy += f.BuyKWh
		earned += f.EarnedCents
		paid += f.PaidCents
	}
	if math.Abs(sell-buy) > 1e-12 {
		t.Errorf("PEM energy imbalance: sold %v, bought %v", sell, buy)
	}
	if math.Abs(earned-paid) > 1e-9 {
		t.Errorf("PEM payment imbalance: earned %v, paid %v", earned, paid)
	}
	// The clearing's per-agent grid legs must land on the right side.
	for _, o := range c.Outcomes {
		f := flows[o.ID]
		switch o.Role {
		case RoleBuyer:
			if math.Abs(f.GridImportKWh-o.GridEnergy) > 1e-12 {
				t.Errorf("%s grid import %v, want %v", o.ID, f.GridImportKWh, o.GridEnergy)
			}
		case RoleSeller:
			if math.Abs(f.GridExportKWh-o.GridEnergy) > 1e-12 {
				t.Errorf("%s grid export %v, want %v", o.ID, f.GridExportKWh, o.GridEnergy)
			}
		}
	}
}

func TestPositionBookLifecycle(t *testing.T) {
	b, err := NewPositionBook(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := b.Join(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Join("a", 1); err == nil {
		t.Error("double join accepted")
	}

	flows := make(map[string]AgentFlows)
	AccumulateFlows(flows, testClearing(t), DefaultParams())
	if err := b.Apply(0, flows); err != nil {
		t.Fatal(err)
	}
	if e, p := b.Conservation(); math.Abs(e) > 1e-12 || math.Abs(p) > 1e-9 {
		t.Errorf("conservation after apply: energy %v, payments %v", e, p)
	}

	// Depart "a" with a residual surplus: valued at the grid's buy price.
	before, _ := b.Position("a")
	if err := b.Exit("a", 0, "depart", 0, 2.5); err != nil {
		t.Fatal(err)
	}
	after, _ := b.Position("a")
	if after.Active() || after.ExitEpoch != 0 || after.ExitKind != "depart" {
		t.Errorf("exit not recorded: %+v", after)
	}
	wantRev := before.Flows.GridRevenueCents + 2.5*DefaultParams().GridSellPrice
	if math.Abs(after.Flows.GridRevenueCents-wantRev) > 1e-9 {
		t.Errorf("residual export not settled at tariff: %v, want %v", after.Flows.GridRevenueCents, wantRev)
	}

	// Frozen: no more flows, no second exit.
	if err := b.Apply(1, map[string]AgentFlows{"a": {BuyKWh: 1}}); err == nil {
		t.Error("applied flows to frozen position")
	}
	if err := b.Exit("a", 1, "fail", 0, 0); err == nil {
		t.Error("double exit accepted")
	}
	if err := b.Exit("b", 1, "vanish", 0, 0); err == nil {
		t.Error("unknown exit kind accepted")
	}
	if err := b.Apply(1, map[string]AgentFlows{"ghost": {}}); err == nil {
		t.Error("applied flows to unknown agent")
	}

	// The frozen position must not drift as others keep trading.
	if err := b.Apply(1, map[string]AgentFlows{"b": {BuyKWh: 1, PaidCents: 90}}); err != nil {
		t.Fatal(err)
	}
	again, _ := b.Position("a")
	if again.Flows != after.Flows {
		t.Errorf("frozen position drifted: %+v vs %+v", again.Flows, after.Flows)
	}

	pos := b.Positions()
	if len(pos) != 3 || pos[0].ID != "a" || pos[1].ID != "b" || pos[2].ID != "c" {
		t.Errorf("positions not sorted by ID: %+v", pos)
	}
}

func TestPositionBookRejectsBadFlows(t *testing.T) {
	b, err := NewPositionBook(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join("", 0); err == nil {
		t.Error("empty ID accepted")
	}
	if err := b.Join("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(0, map[string]AgentFlows{"a": {BuyKWh: -1}}); err == nil {
		t.Error("negative flow accepted")
	}
	if err := b.Apply(0, map[string]AgentFlows{"a": {SellKWh: math.NaN()}}); err == nil {
		t.Error("NaN flow accepted")
	}
	if err := b.Exit("a", 0, "depart", -1, 0); err == nil {
		t.Error("negative exit residual accepted")
	}
}
