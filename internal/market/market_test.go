package market

import (
	"math"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNetEnergyAndClassification(t *testing.T) {
	cases := []struct {
		in   WindowInput
		net  float64
		role Role
	}{
		{WindowInput{Generation: 5, Load: 3, Battery: 1}, 1, RoleSeller},
		{WindowInput{Generation: 2, Load: 3, Battery: 0}, -1, RoleBuyer},
		{WindowInput{Generation: 3, Load: 3, Battery: 0}, 0, RoleOff},
		{WindowInput{Generation: 3, Load: 2, Battery: -1}, 2, RoleSeller}, // discharge adds supply
	}
	for i, c := range cases {
		if got := c.in.NetEnergy(); !almostEqual(got, c.net, 1e-12) {
			t.Errorf("case %d: net = %v, want %v", i, got, c.net)
		}
		if got := ClassifyRole(c.in.NetEnergy()); got != c.role {
			t.Errorf("case %d: role = %v, want %v", i, got, c.role)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{GridSellPrice: 90, GridRetailPrice: 120, PriceFloor: 80, PriceCeil: 110}, // pl < pbtg
		{GridSellPrice: 80, GridRetailPrice: 100, PriceFloor: 90, PriceCeil: 110}, // ph > pstg
		{GridSellPrice: 80, GridRetailPrice: 120, PriceFloor: 110, PriceCeil: 90}, // floor > ceil
		{GridSellPrice: -1, GridRetailPrice: 120, PriceFloor: 90, PriceCeil: 110}, // negative
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestAgentValidate(t *testing.T) {
	good := Agent{ID: "h1", K: 20, Epsilon: 0.9}
	if err := good.Validate(); err != nil {
		t.Errorf("valid agent rejected: %v", err)
	}
	bad := []Agent{
		{ID: "", K: 20, Epsilon: 0.9},
		{ID: "x", K: 0, Epsilon: 0.9},
		{ID: "x", K: 20, Epsilon: 0},
		{ID: "x", K: 20, Epsilon: 1},
		{ID: "x", K: 20, Epsilon: 0.9, BatteryCapacity: -1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid agent accepted", i)
		}
	}
}

func TestOptimalPriceHandComputed(t *testing.T) {
	// Single seller, k=100, eps=0.5, g=2, b=0:
	// p̂ = sqrt(120·100 / (2+1)) = sqrt(4000) ≈ 63.2456 → clamped to 90.
	params := DefaultParams()
	pHat, pStar, err := OptimalPrice([]SellerParams{{K: 100, Epsilon: 0.5, Gen: 2}}, params)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pHat, math.Sqrt(4000), 1e-9) {
		t.Errorf("pHat = %v", pHat)
	}
	if pStar != 90 {
		t.Errorf("pStar = %v, want clamped 90", pStar)
	}

	// Aggregates that land inside the range: sumK=85, sumTerm=1.05 per
	// seller ⇒ p̂ = sqrt(120·85/1.05) ≈ 98.56.
	pHat, pStar, err = OptimalPrice([]SellerParams{{K: 85, Epsilon: 0.9, Gen: 0.05}}, params)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(120 * 85 / 1.05)
	if !almostEqual(pHat, want, 1e-9) || !almostEqual(pStar, want, 1e-9) {
		t.Errorf("pHat=%v pStar=%v want %v", pHat, pStar, want)
	}
}

func TestClampPrice(t *testing.T) {
	if ClampPrice(50, 90, 110) != 90 {
		t.Error("low clamp failed")
	}
	if ClampPrice(150, 90, 110) != 110 {
		t.Error("high clamp failed")
	}
	if ClampPrice(100, 90, 110) != 100 {
		t.Error("interior value clamped")
	}
}

func TestOptimalPriceErrors(t *testing.T) {
	params := DefaultParams()
	if _, _, err := OptimalPrice(nil, params); err == nil {
		t.Error("no sellers: want error")
	}
	if _, err := RawOptimalPrice(0, 1, 120); err == nil {
		t.Error("zero sumK: want error")
	}
	if _, err := RawOptimalPrice(1, 0, 120); err == nil {
		t.Error("zero denominator: want error")
	}
}

func TestOptimalLoadFirstOrderCondition(t *testing.T) {
	// At an interior optimum, dU/dl = k/(1+l+εb) − p = 0 (the true
	// derivative of Eq. 4; see the OptimalLoad doc comment about the
	// paper's Eq. 9 typo).
	k, eps, b, p := 500.0, 0.8, 0.5, 95.0
	l := OptimalLoad(k, eps, b, p)
	if l <= 0 {
		t.Fatalf("expected interior optimum, got %v", l)
	}
	deriv := k/(1+l+eps*b) - p
	if !almostEqual(deriv, 0, 1e-9) {
		t.Errorf("first-order condition violated: %v", deriv)
	}
}

func TestOptimalLoadClamped(t *testing.T) {
	// k·ε/p − 1 − εb < 0 ⇒ clamp at 0.
	if l := OptimalLoad(20, 0.9, 0, 100); l != 0 {
		t.Errorf("want clamp to 0, got %v", l)
	}
}

func TestOptimalLoadMaximizesUtilityProperty(t *testing.T) {
	// No unilateral deviation of the load improves the seller's utility
	// (Lemma 1: U is concave in l).
	rng := mrand.New(mrand.NewSource(1))
	if err := quick.Check(func(kRaw, epsRaw, bRaw, pRaw uint16) bool {
		k := 50 + float64(kRaw%500)
		eps := 0.1 + 0.8*float64(epsRaw%1000)/1000
		b := float64(bRaw%100) / 100
		p := 90 + float64(pRaw%21)
		gen := 1.0
		lStar := OptimalLoad(k, eps, b, p)
		uStar := SellerUtility(k, eps, lStar, gen, b, p)
		for i := 0; i < 8; i++ {
			dev := lStar + (rng.Float64()*2-1)*0.5
			if dev < 0 || 1+dev+eps*b <= 0 {
				continue
			}
			if SellerUtility(k, eps, dev, gen, b, p) > uStar+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOptimalPriceMinimizesCoalitionCostProperty(t *testing.T) {
	// Γ(p) with the sellers' best-response loads substituted is strictly
	// convex (Eq. 11); the unclamped p̂ must beat any perturbation.
	params := DefaultParams()
	rng := mrand.New(mrand.NewSource(2))
	gamma := func(sellers []SellerParams, p, demand float64) float64 {
		// Γ = p·E_s(p) + pstg·(E_b − E_s(p)), E_s(p) = Σ(g − l*(p) − b).
		var supply float64
		for _, s := range sellers {
			l := s.K/p - 1 - s.Epsilon*s.Battery // unclamped best response
			supply += s.Gen - l - s.Battery
		}
		return p*supply + params.GridRetailPrice*(demand-supply)
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		sellers := make([]SellerParams, n)
		for i := range sellers {
			sellers[i] = SellerParams{
				K:       60 + rng.Float64()*60,
				Epsilon: 0.5 + rng.Float64()*0.4,
				Gen:     rng.Float64() * 0.2,
				Battery: rng.Float64() * 0.05,
			}
		}
		pHat, _, err := OptimalPrice(sellers, params)
		if err != nil {
			t.Fatal(err)
		}
		demand := 100.0
		base := gamma(sellers, pHat, demand)
		for _, delta := range []float64{-5, -1, -0.1, 0.1, 1, 5} {
			p := pHat + delta
			if p <= 0 {
				continue
			}
			if gamma(sellers, p, demand) < base-1e-6 {
				t.Fatalf("trial %d: price %v beats p̂ %v", trial, p, pHat)
			}
		}
	}
}

// fourAgents is a hand-checkable scenario: two sellers, two buyers,
// supply < demand (general market).
func fourAgents() ([]Agent, []WindowInput) {
	agents := []Agent{
		{ID: "s1", K: 85, Epsilon: 0.9},
		{ID: "s2", K: 85, Epsilon: 0.9},
		{ID: "b1", K: 85, Epsilon: 0.9},
		{ID: "b2", K: 85, Epsilon: 0.9},
	}
	inputs := []WindowInput{
		{Generation: 3, Load: 1}, // net +2
		{Generation: 2, Load: 1}, // net +1
		{Generation: 0, Load: 4}, // net −4
		{Generation: 0, Load: 2}, // net −2
	}
	return agents, inputs
}

func TestClearGeneralMarket(t *testing.T) {
	agents, inputs := fourAgents()
	params := DefaultParams()
	c, err := Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != GeneralMarket {
		t.Fatalf("kind = %v", c.Kind)
	}
	if !almostEqual(c.Supply, 3, 1e-12) || !almostEqual(c.Demand, 6, 1e-12) {
		t.Fatalf("supply/demand = %v/%v", c.Supply, c.Demand)
	}
	// All supply is sold: Σ trades = E_s.
	var traded float64
	for _, tr := range c.Trades {
		traded += tr.Energy
	}
	if !almostEqual(traded, c.Supply, 1e-9) {
		t.Errorf("traded %v, want full supply %v", traded, c.Supply)
	}
	// Buyer shares proportional to demand: b1 gets 2/3 of supply.
	var b1got float64
	for _, tr := range c.Trades {
		if tr.Buyer == "b1" {
			b1got += tr.Energy
		}
	}
	if !almostEqual(b1got, 3*4.0/6.0, 1e-9) {
		t.Errorf("b1 received %v, want 2", b1got)
	}
	// Payments consistent with price.
	for _, tr := range c.Trades {
		if !almostEqual(tr.Payment, tr.Energy*c.Price, 1e-9) {
			t.Errorf("trade payment mismatch: %+v price %v", tr, c.Price)
		}
	}
	// Buyers' uncovered demand reaches the grid.
	gi := c.GridInteraction()
	if !almostEqual(gi, c.Demand-c.Supply, 1e-9) {
		t.Errorf("grid interaction %v, want %v", gi, c.Demand-c.Supply)
	}
}

func TestClearExtremeMarket(t *testing.T) {
	agents := []Agent{
		{ID: "s1", K: 85, Epsilon: 0.9},
		{ID: "s2", K: 85, Epsilon: 0.9},
		{ID: "b1", K: 85, Epsilon: 0.9},
	}
	inputs := []WindowInput{
		{Generation: 5, Load: 1}, // +4
		{Generation: 3, Load: 1}, // +2
		{Generation: 0, Load: 3}, // −3
	}
	params := DefaultParams()
	c, err := Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != ExtremeMarket {
		t.Fatalf("kind = %v", c.Kind)
	}
	if c.Price != params.PriceFloor {
		t.Errorf("price = %v, want floor %v", c.Price, params.PriceFloor)
	}
	// All demand covered by the market.
	var traded float64
	for _, tr := range c.Trades {
		traded += tr.Energy
	}
	if !almostEqual(traded, c.Demand, 1e-9) {
		t.Errorf("traded %v, want full demand %v", traded, c.Demand)
	}
	// Seller shares proportional to supply: s1 sells 4/6 of demand.
	var s1sold float64
	for _, tr := range c.Trades {
		if tr.Seller == "s1" {
			s1sold += tr.Energy
		}
	}
	if !almostEqual(s1sold, 3*4.0/6.0, 1e-9) {
		t.Errorf("s1 sold %v, want 2", s1sold)
	}
	// Sellers' surplus feeds the grid.
	if !almostEqual(c.GridInteraction(), c.Supply-c.Demand, 1e-9) {
		t.Errorf("grid interaction %v", c.GridInteraction())
	}
}

func TestClearNoSellers(t *testing.T) {
	agents := []Agent{{ID: "b1", K: 85, Epsilon: 0.9}, {ID: "b2", K: 85, Epsilon: 0.9}}
	inputs := []WindowInput{{Load: 2}, {Load: 1}}
	params := DefaultParams()
	c, err := Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	if c.Price != params.GridRetailPrice {
		t.Errorf("price = %v, want retail", c.Price)
	}
	if len(c.Trades) != 0 {
		t.Error("no trades expected")
	}
	if !almostEqual(c.TotalBuyerCost(), 3*params.GridRetailPrice, 1e-9) {
		t.Errorf("cost = %v", c.TotalBuyerCost())
	}
}

func TestClearNoBuyers(t *testing.T) {
	agents := []Agent{{ID: "s1", K: 85, Epsilon: 0.9}}
	inputs := []WindowInput{{Generation: 2}}
	c, err := Clear(agents, inputs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Trades) != 0 {
		t.Error("no trades expected")
	}
	if !almostEqual(c.Outcomes[0].Revenue, 2*80, 1e-9) {
		t.Errorf("seller revenue = %v, want 160", c.Outcomes[0].Revenue)
	}
}

func TestClearInputMismatch(t *testing.T) {
	if _, err := Clear([]Agent{{ID: "a", K: 1, Epsilon: 0.5}}, nil, DefaultParams()); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestIndividualRationality(t *testing.T) {
	// Theorem 2 part 1: every agent does at least as well with PEM as with
	// the grid-only baseline.
	agents, inputs := fourAgents()
	params := DefaultParams()
	pem, err := Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaselineClear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range agents {
		p, b := pem.Outcomes[i], base.Outcomes[i]
		switch p.Role {
		case RoleSeller:
			if p.Revenue < b.Revenue-1e-9 {
				t.Errorf("seller %s: PEM revenue %v < baseline %v", p.ID, p.Revenue, b.Revenue)
			}
		case RoleBuyer:
			if p.Cost > b.Cost+1e-9 {
				t.Errorf("buyer %s: PEM cost %v > baseline %v", p.ID, p.Cost, b.Cost)
			}
		}
	}
}

func TestIndividualRationalityProperty(t *testing.T) {
	rng := mrand.New(mrand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		agents := make([]Agent, n)
		inputs := make([]WindowInput, n)
		for i := range agents {
			agents[i] = Agent{
				ID:      "h" + string(rune('A'+i)),
				K:       60 + rng.Float64()*60,
				Epsilon: 0.5 + rng.Float64()*0.4,
			}
			inputs[i] = WindowInput{
				Generation: rng.Float64() * 0.2,
				Load:       rng.Float64() * 0.2,
				Battery:    (rng.Float64() - 0.5) * 0.02,
			}
		}
		params := DefaultParams()
		pem, err := Clear(agents, inputs, params)
		if err != nil {
			t.Fatal(err)
		}
		base, err := BaselineClear(agents, inputs, params)
		if err != nil {
			t.Fatal(err)
		}
		for i := range agents {
			p, b := pem.Outcomes[i], base.Outcomes[i]
			if p.Role == RoleSeller && p.Revenue < b.Revenue-1e-9 {
				t.Fatalf("trial %d: seller %s worse off", trial, p.ID)
			}
			if p.Role == RoleBuyer && p.Cost > b.Cost+1e-9 {
				t.Fatalf("trial %d: buyer %s worse off", trial, p.ID)
			}
		}
		// Coalition cost must not exceed the baseline total (Fig 6c).
		if pem.TotalBuyerCost() > base.TotalBuyerCost()+1e-9 {
			t.Fatalf("trial %d: coalition cost grew", trial)
		}
		// Grid interaction must not exceed the baseline (Fig 6d).
		if pem.GridInteraction() > base.GridInteraction()+1e-9 {
			t.Fatalf("trial %d: grid interaction grew", trial)
		}
	}
}

func TestAllocationConservationProperty(t *testing.T) {
	// Σ e_ij equals min(E_s, E_b) side: full supply in general markets,
	// full demand in extreme ones.
	rng := mrand.New(mrand.NewSource(4))
	if err := quick.Check(func(seed int64) bool {
		r := mrand.New(mrand.NewSource(seed))
		n := 2 + r.Intn(8)
		agents := make([]Agent, n)
		inputs := make([]WindowInput, n)
		for i := range agents {
			agents[i] = Agent{ID: "h" + string(rune('a'+i)), K: 70 + r.Float64()*50, Epsilon: 0.6 + r.Float64()*0.3}
			inputs[i] = WindowInput{Generation: r.Float64(), Load: r.Float64()}
		}
		c, err := Clear(agents, inputs, DefaultParams())
		if err != nil {
			return false
		}
		var traded float64
		for _, tr := range c.Trades {
			traded += tr.Energy
		}
		want := math.Min(c.Supply, c.Demand)
		if len(c.SellerIDs) == 0 || len(c.BuyerIDs) == 0 {
			want = 0
		}
		return almostEqual(traded, want, 1e-6)
	}, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSellerUtilityAgainstPaperShape(t *testing.T) {
	// Fig 6b: with-PEM utility ≥ without-PEM utility for any price in
	// [pl, ph] vs selling to grid at pbtg, given the same physical data.
	k, eps := 40.0, 0.9
	gen, load, batt := 0.3, 0.05, 0.0
	params := DefaultParams()
	withPEM := SellerUtility(k, eps, load, gen, batt, 100)
	withoutPEM := SellerUtility(k, eps, load, gen, batt, params.GridSellPrice)
	if withPEM <= withoutPEM {
		t.Errorf("PEM utility %v not above baseline %v", withPEM, withoutPEM)
	}
	// Higher k yields higher utility at fixed price (log term scales).
	u20 := SellerUtility(20, eps, load, gen, batt, 100)
	u40 := SellerUtility(40, eps, load, gen, batt, 100)
	if u40 <= u20 {
		t.Errorf("k=40 utility %v not above k=20 %v", u40, u20)
	}
}

func TestCoalitionCostFormula(t *testing.T) {
	// Eq. 7 must agree with the summed per-buyer costs in a general
	// market clearing.
	agents, inputs := fourAgents()
	params := DefaultParams()
	c, err := Clear(agents, inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	want := CoalitionCost(c.Price, c.Supply, c.Demand, params.GridRetailPrice)
	if !almostEqual(c.TotalBuyerCost(), want, 1e-6) {
		t.Errorf("coalition cost %v, want Eq.7 %v", c.TotalBuyerCost(), want)
	}
}

func TestRoleAndKindStrings(t *testing.T) {
	if RoleSeller.String() != "seller" || RoleBuyer.String() != "buyer" || RoleOff.String() != "off" {
		t.Error("role strings wrong")
	}
	if GeneralMarket.String() != "general" || ExtremeMarket.String() != "extreme" {
		t.Error("kind strings wrong")
	}
	if Role(99).String() == "" || Kind(99).String() == "" {
		t.Error("unknown values must render")
	}
}

func BenchmarkClear200Agents(b *testing.B) {
	rng := mrand.New(mrand.NewSource(5))
	n := 200
	agents := make([]Agent, n)
	inputs := make([]WindowInput, n)
	for i := range agents {
		agents[i] = Agent{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), K: 70 + rng.Float64()*50, Epsilon: 0.8}
		inputs[i] = WindowInput{Generation: rng.Float64() * 0.1, Load: rng.Float64() * 0.1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Clear(agents, inputs, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}
