package market

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Cross-epoch settlement: the live grid (internal/grid/epoch.go) runs many
// trading days over a churning fleet, and an agent's financial history must
// survive re-partitioning — it may trade in coalition c02 one epoch and
// c00 the next, or leave the fleet mid-simulation. This file is the
// carry-over layer: a PositionBook accumulates every agent's cumulative
// energy and payment flows across epochs, keyed by agent ID (stable across
// partitions), and freezes the position when the agent departs or fails.
// The book only ever sees what the settlement harness already observes —
// oracle clearings and grid tariffs — never protocol-private data.

// AgentFlows is one agent's energy and payment flows over some horizon
// (typically one epoch): its PEM-internal trades plus its residual grid
// legs valued at the tariff. All fields are non-negative accumulations;
// the buy/sell and paid/earned pairs are kept separate so fleet-level
// conservation (Σsell = Σbuy, Σearned = Σpaid) stays checkable after any
// aggregation.
type AgentFlows struct {
	// BuyKWh and SellKWh are the agent's PEM-traded energy.
	BuyKWh, SellKWh float64
	// PaidCents and EarnedCents are its PEM-internal payments.
	PaidCents, EarnedCents float64
	// GridImportKWh and GridExportKWh are its residual grid legs.
	GridImportKWh, GridExportKWh float64
	// GridCostCents and GridRevenueCents value the grid legs at the tariff.
	GridCostCents, GridRevenueCents float64
}

// add folds another accumulation into f.
func (f *AgentFlows) add(o AgentFlows) {
	f.BuyKWh += o.BuyKWh
	f.SellKWh += o.SellKWh
	f.PaidCents += o.PaidCents
	f.EarnedCents += o.EarnedCents
	f.GridImportKWh += o.GridImportKWh
	f.GridExportKWh += o.GridExportKWh
	f.GridCostCents += o.GridCostCents
	f.GridRevenueCents += o.GridRevenueCents
}

// AccumulateFlows folds one window's clearing into a per-agent flow map:
// each trade credits the seller and debits the buyer, and each agent's
// residual grid leg is valued at the tariff. Callers accumulate a window
// sequence (a coalition's epoch) into one map and apply it to a
// PositionBook in a single step.
func AccumulateFlows(dst map[string]AgentFlows, c *Clearing, params Params) {
	for _, tr := range c.Trades {
		s := dst[tr.Seller]
		s.SellKWh += tr.Energy
		s.EarnedCents += tr.Payment
		dst[tr.Seller] = s
		b := dst[tr.Buyer]
		b.BuyKWh += tr.Energy
		b.PaidCents += tr.Payment
		dst[tr.Buyer] = b
	}
	for _, o := range c.Outcomes {
		if o.GridEnergy <= 0 {
			continue
		}
		f := dst[o.ID]
		switch o.Role {
		case RoleBuyer:
			f.GridImportKWh += o.GridEnergy
			f.GridCostCents += o.GridEnergy * params.GridRetailPrice
		case RoleSeller:
			f.GridExportKWh += o.GridEnergy
			f.GridRevenueCents += o.GridEnergy * params.GridSellPrice
		}
		dst[o.ID] = f
	}
}

// AgentPosition is one agent's cumulative position across a live-grid
// simulation: its lifetime flows plus its membership interval. Positions
// survive re-partitioning because they are keyed by agent ID, not by
// coalition.
type AgentPosition struct {
	// ID is the agent.
	ID string
	// Flows is the cumulative energy/payment accumulation since JoinEpoch.
	Flows AgentFlows
	// JoinEpoch is the epoch the agent first traded in (0 for the base
	// fleet).
	JoinEpoch int
	// ExitEpoch is the last epoch the agent traded in, or -1 while the
	// agent is active. Once set, the position is frozen: applying further
	// flows to it is an error.
	ExitEpoch int
	// ExitKind records how the agent left ("depart" or "fail"; empty while
	// active). Both freeze the book identically — the grid operator closes
	// the account either way — but harnesses report them separately.
	ExitKind string
}

// Active reports whether the agent is still on the fleet roster.
func (p AgentPosition) Active() bool { return p.ExitEpoch < 0 }

// NetCents is the agent's cumulative cash position: everything earned
// (PEM sales plus grid feed-in) minus everything paid (PEM purchases plus
// grid retail). Negative means the agent paid on balance.
func (p AgentPosition) NetCents() float64 {
	return p.Flows.EarnedCents + p.Flows.GridRevenueCents - p.Flows.PaidCents - p.Flows.GridCostCents
}

// PositionBook tracks per-agent cumulative positions across the epochs of
// a live grid. It is not safe for concurrent use; the epoch supervisor
// applies coalition flows sequentially between epochs, which also keeps
// the floating-point accumulation order — and therefore the book —
// deterministic.
type PositionBook struct {
	params Params
	byID   map[string]*AgentPosition
}

// NewPositionBook creates an empty book settling exits at the given tariff.
func NewPositionBook(params Params) (*PositionBook, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &PositionBook{params: params, byID: make(map[string]*AgentPosition)}, nil
}

// Join opens a position for an agent entering at the given epoch. Joining
// an ID that already has an open or frozen position is an error — IDs are
// unique for the lifetime of a simulation.
func (b *PositionBook) Join(id string, epoch int) error {
	if id == "" {
		return errors.New("market: position for empty agent ID")
	}
	if _, ok := b.byID[id]; ok {
		return fmt.Errorf("market: agent %q already has a position", id)
	}
	b.byID[id] = &AgentPosition{ID: id, JoinEpoch: epoch, ExitEpoch: -1}
	return nil
}

// Apply folds one epoch's flows into the agents' open positions. Flows for
// an unknown or frozen agent are an error: a departed agent must never
// accrue post-exit activity.
func (b *PositionBook) Apply(epoch int, flows map[string]AgentFlows) error {
	ids := make([]string, 0, len(flows))
	for id := range flows {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic accumulation order
	for _, id := range ids {
		p, ok := b.byID[id]
		if !ok {
			return fmt.Errorf("market: flows for unknown agent %q", id)
		}
		if !p.Active() {
			return fmt.Errorf("market: flows for agent %q frozen at epoch %d", id, p.ExitEpoch)
		}
		f := flows[id]
		for _, v := range []float64{f.BuyKWh, f.SellKWh, f.PaidCents, f.EarnedCents,
			f.GridImportKWh, f.GridExportKWh, f.GridCostCents, f.GridRevenueCents} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("market: agent %q epoch %d: flow not a non-negative quantity: %+v", id, epoch, f)
			}
		}
		p.Flows.add(f)
	}
	return nil
}

// Exit freezes an agent's position at its last traded epoch, settling any
// residual energy handed over by the supervisor at the grid tariff:
// residualImportKWh is drawn at retail, residualExportKWh fed in at the
// grid's buy price. The residuals are normally zero — each window's grid
// legs are already valued by AccumulateFlows — and become non-zero only
// when the agent's final energy could not clear through a market at all
// (e.g. it was stranded in a coalition too small to run). kind is "depart"
// (planned) or "fail" (crash); the accounting is identical, the label is
// reporting. A frozen position rejects all further Apply and Exit calls.
func (b *PositionBook) Exit(id string, lastEpoch int, kind string, residualImportKWh, residualExportKWh float64) error {
	p, ok := b.byID[id]
	if !ok {
		return fmt.Errorf("market: exit of unknown agent %q", id)
	}
	if !p.Active() {
		return fmt.Errorf("market: agent %q already exited at epoch %d", id, p.ExitEpoch)
	}
	if kind != exitDepart && kind != exitFail {
		return fmt.Errorf("market: unknown exit kind %q", kind)
	}
	if residualImportKWh < 0 || residualExportKWh < 0 ||
		math.IsNaN(residualImportKWh) || math.IsNaN(residualExportKWh) {
		return fmt.Errorf("market: agent %q exit residual not a non-negative quantity: import=%v export=%v",
			id, residualImportKWh, residualExportKWh)
	}
	p.Flows.GridImportKWh += residualImportKWh
	p.Flows.GridCostCents += residualImportKWh * b.params.GridRetailPrice
	p.Flows.GridExportKWh += residualExportKWh
	p.Flows.GridRevenueCents += residualExportKWh * b.params.GridSellPrice
	p.ExitEpoch = lastEpoch
	p.ExitKind = kind
	return nil
}

// The exit kinds accepted by Exit. They mirror dataset.ChurnDepart and
// dataset.ChurnFail without importing the dataset package (which imports
// this one).
const (
	exitDepart = "depart"
	exitFail   = "fail"
)

// Snapshot returns the book's full per-agent state, sorted by agent ID —
// the durable representation a store checkpoints at epoch boundaries. It
// is Positions under a name that pairs with Restore; the copies share no
// state with the book.
func (b *PositionBook) Snapshot() []AgentPosition { return b.Positions() }

// Restore replaces the book's state with a snapshot, bit-exactly: every
// float lands unchanged, so a resumed simulation accumulates onto exactly
// the state the checkpointed one held. The tariff params are not part of
// the snapshot — the caller reconstructs the book from its configuration
// and restores positions into it. Duplicate or empty IDs are an error and
// leave the book unchanged.
func (b *PositionBook) Restore(positions []AgentPosition) error {
	fresh := make(map[string]*AgentPosition, len(positions))
	for _, p := range positions {
		if p.ID == "" {
			return errors.New("market: restore of position with empty agent ID")
		}
		if _, dup := fresh[p.ID]; dup {
			return fmt.Errorf("market: restore with duplicate position for agent %q", p.ID)
		}
		cp := p
		fresh[p.ID] = &cp
	}
	b.byID = fresh
	return nil
}

// Position returns one agent's position.
func (b *PositionBook) Position(id string) (AgentPosition, bool) {
	p, ok := b.byID[id]
	if !ok {
		return AgentPosition{}, false
	}
	return *p, true
}

// Positions returns every agent's position, frozen and active alike,
// sorted by agent ID.
func (b *PositionBook) Positions() []AgentPosition {
	out := make([]AgentPosition, 0, len(b.byID))
	for _, p := range b.byID {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Conservation returns the book-wide PEM imbalances: traded energy
// (Σsell − Σbuy, kWh) and internal payments (Σearned − Σpaid, cents).
// Both are zero up to floating-point noise for any book built from oracle
// clearings, under every churn mix — energy sold inside the PEM is energy
// bought inside it, and every cent a buyer pays lands with a seller. Grid
// legs are flows against the external grid account and are excluded by
// construction.
func (b *PositionBook) Conservation() (energyKWh, paymentCents float64) {
	// Summed in agent-ID order, not map order: float addition is not
	// associative, and the crash-recovery oracle compares a resumed run's
	// imbalances to the reference's bit for bit.
	for _, p := range b.Positions() {
		energyKWh += p.Flows.SellKWh - p.Flows.BuyKWh
		paymentCents += p.Flows.EarnedCents - p.Flows.PaidCents
	}
	return energyKWh, paymentCents
}
