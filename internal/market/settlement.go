package market

import (
	"errors"
	"fmt"
	"sort"
)

// This file adds the cross-coalition settlement layer used by the sharded
// coalition grid: each coalition trades internally through the private
// protocols, and only its *residual* supply and demand — the energy its
// internal market could not match, which the grid operator observes on the
// feeder meter anyway — is settled against the main grid's buy/sell prices.
// The accounting mirrors the local-energy-market literature (many small
// markets, residuals cleared upstream) and quantifies what a future
// inter-coalition market could recover: residual exports of one coalition
// matched against residual imports of another.

// CoalitionResidual aggregates one coalition's unmatched energy over some
// horizon (typically a trading day): ImportKWh is residual demand drawn
// from the main grid at retail, ExportKWh residual supply fed in at the
// grid's buy price. Both are non-negative; a coalition can have both (its
// general-market windows leave residual demand, its extreme-market windows
// residual supply).
type CoalitionResidual struct {
	// Coalition is the coalition's unique name.
	Coalition string
	// ImportKWh and ExportKWh are the residual demand and supply (kWh).
	ImportKWh, ExportKWh float64
}

// CoalitionSettlement is one coalition's residual position valued at the
// grid tariff.
type CoalitionSettlement struct {
	// Coalition is the coalition's unique name ("fleet" for the total).
	Coalition string
	// ImportKWh and ExportKWh are the settled residual quantities (kWh).
	ImportKWh, ExportKWh float64
	// ImportCost = ImportKWh · GridRetailPrice (cents).
	ImportCost float64
	// ExportRevenue = ExportKWh · GridSellPrice (cents).
	ExportRevenue float64
	// NetCost = ImportCost − ExportRevenue (cents; negative means the
	// coalition earns from the grid on balance).
	NetCost float64
}

// GridSettlement values every coalition's residuals against the grid
// tariff and reports the fleet-wide position, including the cross-coalition
// netting opportunity.
type GridSettlement struct {
	// PerCoalition holds one settlement per input residual, sorted by
	// coalition name.
	PerCoalition []CoalitionSettlement
	// Fleet is the sum over coalitions, settled per coalition (no netting):
	// what the fleet pays today with each coalition alone at its feeder.
	Fleet CoalitionSettlement
	// MatchedKWh is the cross-coalition netting opportunity: energy that
	// residual-exporting coalitions could deliver to residual-importing
	// ones instead of bouncing through the grid — min(total import, total
	// export).
	MatchedKWh float64
	// NettingGainCents is the total welfare released by matching that
	// energy internally: matched · (retail − feed-in), independent of the
	// internal transfer price (buyers save retail−p, sellers gain p−pbtg).
	NettingGainCents float64
}

// SettleResiduals clears the coalitions' residual supply and demand against
// the grid tariff. Residual coalition names must be unique; quantities must
// be non-negative and finite.
func SettleResiduals(residuals []CoalitionResidual, params Params) (*GridSettlement, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(residuals) == 0 {
		return nil, errors.New("market: no coalition residuals to settle")
	}
	seen := make(map[string]bool, len(residuals))
	s := &GridSettlement{
		PerCoalition: make([]CoalitionSettlement, 0, len(residuals)),
		Fleet:        CoalitionSettlement{Coalition: "fleet"},
	}
	for _, r := range residuals {
		if r.Coalition == "" {
			return nil, errors.New("market: residual with empty coalition name")
		}
		if seen[r.Coalition] {
			return nil, fmt.Errorf("market: duplicate coalition %q in residuals", r.Coalition)
		}
		seen[r.Coalition] = true
		if r.ImportKWh < 0 || r.ExportKWh < 0 ||
			r.ImportKWh != r.ImportKWh || r.ExportKWh != r.ExportKWh {
			return nil, fmt.Errorf("market: coalition %q residual not a non-negative quantity: import=%v export=%v",
				r.Coalition, r.ImportKWh, r.ExportKWh)
		}
		cs := CoalitionSettlement{
			Coalition:     r.Coalition,
			ImportKWh:     r.ImportKWh,
			ExportKWh:     r.ExportKWh,
			ImportCost:    r.ImportKWh * params.GridRetailPrice,
			ExportRevenue: r.ExportKWh * params.GridSellPrice,
		}
		cs.NetCost = cs.ImportCost - cs.ExportRevenue
		s.PerCoalition = append(s.PerCoalition, cs)

		s.Fleet.ImportKWh += cs.ImportKWh
		s.Fleet.ExportKWh += cs.ExportKWh
		s.Fleet.ImportCost += cs.ImportCost
		s.Fleet.ExportRevenue += cs.ExportRevenue
		s.Fleet.NetCost += cs.NetCost
	}
	sort.Slice(s.PerCoalition, func(i, j int) bool {
		return s.PerCoalition[i].Coalition < s.PerCoalition[j].Coalition
	})
	s.MatchedKWh = s.Fleet.ImportKWh
	if s.Fleet.ExportKWh < s.MatchedKWh {
		s.MatchedKWh = s.Fleet.ExportKWh
	}
	s.NettingGainCents = s.MatchedKWh * (params.GridRetailPrice - params.GridSellPrice)
	return s, nil
}

// ResidualFromClearing extracts one window's contribution to a coalition's
// residual position from its plaintext clearing: the grid energy of buyers
// is residual import, that of sellers residual export. (The private
// protocols reveal neither; the experiment harness computes residuals from
// the oracle clearing exactly like the trading-performance figures do.)
func ResidualFromClearing(c *Clearing) (importKWh, exportKWh float64) {
	for _, o := range c.Outcomes {
		switch o.Role {
		case RoleBuyer:
			importKWh += o.GridEnergy
		case RoleSeller:
			exportKWh += o.GridEnergy
		}
	}
	return importKWh, exportKWh
}
