package market

import (
	"math"
	mrand "math/rand"
	"testing"
)

// TestSettleTiersFlatIdentity is the 1-tier contract: coalitions attached
// directly to the root settle bit-identically to the flat SettleResiduals
// path — no tiers, no netting, same GridSettlement.
func TestSettleTiersFlatIdentity(t *testing.T) {
	params := DefaultParams()
	residuals := []CoalitionResidual{
		{Coalition: "c00", ImportKWh: 3.25, ExportKWh: 0.5},
		{Coalition: "c01", ImportKWh: 0, ExportKWh: 2.75},
		{Coalition: "c02", ImportKWh: 1.125, ExportKWh: 1.125},
	}
	flat, err := SettleResiduals(residuals, params)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := SettleTiers(&TierNode{Name: "grid", Residuals: residuals}, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiered.Tiers) != 0 || tiered.MatchedKWh != 0 || tiered.NettingGainCents != 0 {
		t.Fatalf("flat hierarchy netted something: %+v", tiered)
	}
	if len(tiered.Grid.PerCoalition) != len(flat.PerCoalition) {
		t.Fatalf("per-coalition counts differ")
	}
	for i := range flat.PerCoalition {
		if tiered.Grid.PerCoalition[i] != flat.PerCoalition[i] {
			t.Errorf("coalition %d settles differently: %+v vs %+v", i, tiered.Grid.PerCoalition[i], flat.PerCoalition[i])
		}
	}
	if tiered.Grid.Fleet != flat.Fleet || tiered.Grid.MatchedKWh != flat.MatchedKWh ||
		tiered.Grid.NettingGainCents != flat.NettingGainCents {
		t.Errorf("grid settlement differs: %+v vs %+v", tiered.Grid, flat)
	}
}

// TestSettleTiersSingletonWrapper: a district holding one coalition must be
// a pure pass-through — zero matched, the coalition's exact quantities
// upward — because a child cannot net against itself.
func TestSettleTiersSingletonWrapper(t *testing.T) {
	params := DefaultParams()
	r := CoalitionResidual{Coalition: "c00", ImportKWh: 2.5, ExportKWh: 1.75}
	tiered, err := SettleTiers(&TierNode{
		Name:     "grid",
		Children: []*TierNode{{Name: "d00", Residuals: []CoalitionResidual{r}}},
	}, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiered.Tiers) != 1 {
		t.Fatalf("want 1 tier, got %d", len(tiered.Tiers))
	}
	d := tiered.Tiers[0]
	if d.MatchedKWh != 0 || d.NettingGainCents != 0 {
		t.Errorf("singleton tier netted %v kWh", d.MatchedKWh)
	}
	if d.UpImportKWh != r.ImportKWh || d.UpExportKWh != r.ExportKWh {
		t.Errorf("singleton tier altered the position: %+v", d)
	}
	// The grid boundary sees the same quantities under the tier's name.
	flat, err := SettleResiduals([]CoalitionResidual{{Coalition: "d00", ImportKWh: r.ImportKWh, ExportKWh: r.ExportKWh}}, params)
	if err != nil {
		t.Fatal(err)
	}
	if tiered.Grid.Fleet != flat.Fleet {
		t.Errorf("wrapped settlement differs from direct: %+v vs %+v", tiered.Grid.Fleet, flat.Fleet)
	}
}

// TestSettleTiersNetsBeforeTariff: a district with one importing and one
// exporting coalition nets internally; only the remainder reaches the
// tariff.
func TestSettleTiersNetsBeforeTariff(t *testing.T) {
	params := DefaultParams()
	tiered, err := SettleTiers(&TierNode{
		Name: "grid",
		Children: []*TierNode{{
			Name: "d00",
			Residuals: []CoalitionResidual{
				{Coalition: "c00", ImportKWh: 5, ExportKWh: 0},
				{Coalition: "c01", ImportKWh: 0, ExportKWh: 3},
			},
		}},
	}, params)
	if err != nil {
		t.Fatal(err)
	}
	d := tiered.Tiers[0]
	if d.MatchedKWh != 3 {
		t.Fatalf("district matched %v, want 3", d.MatchedKWh)
	}
	if d.UpImportKWh != 2 || d.UpExportKWh != 0 {
		t.Fatalf("upward residual (%v, %v), want (2, 0)", d.UpImportKWh, d.UpExportKWh)
	}
	wantGain := 3 * (params.GridRetailPrice - params.GridSellPrice)
	if d.NettingGainCents != wantGain || tiered.NettingGainCents != wantGain {
		t.Errorf("netting gain %v, want %v", d.NettingGainCents, wantGain)
	}
	if tiered.Grid.Fleet.ImportKWh != 2 || tiered.Grid.Fleet.ExportKWh != 0 {
		t.Errorf("tariff saw (%v, %v), want (2, 0)", tiered.Grid.Fleet.ImportKWh, tiered.Grid.Fleet.ExportKWh)
	}
}

// TestSettleTiersConservation is the property test: on random multi-level
// hierarchies, every tier conserves energy (gross = matched + upward per
// side) and the fleet-wide ledger balances — the leaves' total import
// equals the tiers' total matched energy plus what the tariff finally
// settles; likewise for export. The tiered fleet cost equals the flat cost
// minus the released netting gain.
func TestSettleTiersConservation(t *testing.T) {
	params := DefaultParams()
	rng := mrand.New(mrand.NewSource(41))
	const eps = 1e-9

	for trial := 0; trial < 50; trial++ {
		// Random tree: 2–4 regions, each 1–3 districts, each 1–4 coalitions,
		// plus the occasional coalition attached directly to a region or the
		// root (mixed tiers are legal).
		var leaves []CoalitionResidual
		serial := 0
		mkResidual := func() CoalitionResidual {
			r := CoalitionResidual{
				Coalition: "c" + string(rune('a'+serial/26)) + string(rune('a'+serial%26)),
				ImportKWh: rng.Float64() * 10,
				ExportKWh: rng.Float64() * 10,
			}
			serial++
			if rng.Float64() < 0.2 {
				r.ImportKWh = 0
			}
			if rng.Float64() < 0.2 {
				r.ExportKWh = 0
			}
			leaves = append(leaves, r)
			return r
		}
		root := &TierNode{Name: "grid"}
		for ri := 0; ri < 2+rng.Intn(3); ri++ {
			region := &TierNode{Name: "r" + string(rune('0'+ri))}
			for di := 0; di < 1+rng.Intn(3); di++ {
				district := &TierNode{Name: region.Name + "d" + string(rune('0'+di))}
				for ci := 0; ci < 1+rng.Intn(4); ci++ {
					district.Residuals = append(district.Residuals, mkResidual())
				}
				region.Children = append(region.Children, district)
			}
			if rng.Float64() < 0.3 {
				region.Residuals = append(region.Residuals, mkResidual())
			}
			root.Children = append(root.Children, region)
		}
		if rng.Float64() < 0.3 {
			root.Residuals = append(root.Residuals, mkResidual())
		}

		tiered, err := SettleTiers(root, params)
		if err != nil {
			t.Fatal(err)
		}

		var leafImp, leafExp float64
		for _, r := range leaves {
			leafImp += r.ImportKWh
			leafExp += r.ExportKWh
		}
		var matched float64
		for _, tier := range tiered.Tiers {
			if tier.MatchedKWh < -eps || tier.UpImportKWh < -eps || tier.UpExportKWh < -eps {
				t.Fatalf("trial %d: tier %s has negative quantities: %+v", trial, tier.Tier, tier)
			}
			if math.Abs(tier.GrossImportKWh-tier.MatchedKWh-tier.UpImportKWh) > eps ||
				math.Abs(tier.GrossExportKWh-tier.MatchedKWh-tier.UpExportKWh) > eps {
				t.Fatalf("trial %d: tier %s does not conserve: %+v", trial, tier.Tier, tier)
			}
			matched += tier.MatchedKWh
		}
		if math.Abs(matched-tiered.MatchedKWh) > eps {
			t.Fatalf("trial %d: tier matched sum %v != total %v", trial, matched, tiered.MatchedKWh)
		}
		if math.Abs(leafImp-matched-tiered.Grid.Fleet.ImportKWh) > eps {
			t.Fatalf("trial %d: import not conserved: leaves %v, matched %v, tariff %v",
				trial, leafImp, matched, tiered.Grid.Fleet.ImportKWh)
		}
		if math.Abs(leafExp-matched-tiered.Grid.Fleet.ExportKWh) > eps {
			t.Fatalf("trial %d: export not conserved: leaves %v, matched %v, tariff %v",
				trial, leafExp, matched, tiered.Grid.Fleet.ExportKWh)
		}

		// Tiered cost = flat cost − released gain (to rounding).
		flat, err := SettleResiduals(leaves, params)
		if err != nil {
			t.Fatal(err)
		}
		wantCost := flat.Fleet.NetCost - tiered.NettingGainCents
		if math.Abs(tiered.Grid.Fleet.NetCost-wantCost) > 1e-6 {
			t.Fatalf("trial %d: tiered cost %v, want flat %v − gain %v = %v",
				trial, tiered.Grid.Fleet.NetCost, flat.Fleet.NetCost, tiered.NettingGainCents, wantCost)
		}
	}
}

// TestSettleTiersRejects covers the tree-shape errors: duplicate names,
// empty tiers, shared nodes, nil root.
func TestSettleTiersRejects(t *testing.T) {
	params := DefaultParams()
	if _, err := SettleTiers(nil, params); err == nil {
		t.Error("nil root accepted")
	}
	r := CoalitionResidual{Coalition: "c00", ImportKWh: 1}
	if _, err := SettleTiers(&TierNode{Name: "grid", Children: []*TierNode{
		{Name: "d00", Residuals: []CoalitionResidual{r}},
		{Name: "d00", Residuals: []CoalitionResidual{{Coalition: "c01", ImportKWh: 1}}},
	}}, params); err == nil {
		t.Error("duplicate tier name accepted")
	}
	if _, err := SettleTiers(&TierNode{Name: "grid", Children: []*TierNode{
		{Name: "c00", Residuals: []CoalitionResidual{r}},
	}, Residuals: []CoalitionResidual{r}}, params); err == nil {
		t.Error("tier name clashing with coalition name accepted")
	}
	if _, err := SettleTiers(&TierNode{Name: "grid", Children: []*TierNode{{Name: "d00"}}}, params); err == nil {
		t.Error("empty tier accepted")
	}
	shared := &TierNode{Name: "d00", Residuals: []CoalitionResidual{r}}
	if _, err := SettleTiers(&TierNode{Name: "grid", Children: []*TierNode{shared, shared}}, params); err == nil {
		t.Error("shared node accepted")
	}
	if _, err := SettleTiers(&TierNode{Name: "grid"}, params); err == nil {
		t.Error("childless root accepted")
	}
}
