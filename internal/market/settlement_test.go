package market

import (
	"math"
	"testing"
)

func TestSettleResiduals(t *testing.T) {
	params := DefaultParams() // feed-in 80, retail 120
	s, err := SettleResiduals([]CoalitionResidual{
		{Coalition: "c1", ImportKWh: 10, ExportKWh: 0},
		{Coalition: "c0", ImportKWh: 2, ExportKWh: 6},
		{Coalition: "c2", ImportKWh: 0, ExportKWh: 1},
	}, params)
	if err != nil {
		t.Fatal(err)
	}

	if len(s.PerCoalition) != 3 || s.PerCoalition[0].Coalition != "c0" || s.PerCoalition[2].Coalition != "c2" {
		t.Fatalf("per-coalition order: %+v", s.PerCoalition)
	}
	c0 := s.PerCoalition[0]
	if c0.ImportCost != 2*120 || c0.ExportRevenue != 6*80 || c0.NetCost != 240-480 {
		t.Errorf("c0 settlement wrong: %+v", c0)
	}

	if s.Fleet.ImportKWh != 12 || s.Fleet.ExportKWh != 7 {
		t.Errorf("fleet totals: %+v", s.Fleet)
	}
	if s.Fleet.NetCost != 12*120-7*80 {
		t.Errorf("fleet net cost = %v", s.Fleet.NetCost)
	}
	// Netting: min(12, 7) = 7 kWh could trade across coalitions, releasing
	// (120-80) cents/kWh of spread.
	if s.MatchedKWh != 7 || s.NettingGainCents != 7*40 {
		t.Errorf("netting: matched=%v gain=%v", s.MatchedKWh, s.NettingGainCents)
	}
}

func TestSettleResidualsRejectsBadInput(t *testing.T) {
	params := DefaultParams()
	cases := map[string][]CoalitionResidual{
		"empty":     {},
		"noname":    {{Coalition: "", ImportKWh: 1}},
		"duplicate": {{Coalition: "a"}, {Coalition: "a"}},
		"negative":  {{Coalition: "a", ImportKWh: -1}},
		"nan":       {{Coalition: "a", ExportKWh: math.NaN()}},
	}
	for name, in := range cases {
		if _, err := SettleResiduals(in, params); err == nil {
			t.Errorf("%s: accepted %+v", name, in)
		}
	}
}

// TestResidualFromClearing cross-checks the residual extraction against the
// clearing invariants on a concrete mixed window.
func TestResidualFromClearing(t *testing.T) {
	agents := []Agent{
		{ID: "s1", K: 80, Epsilon: 0.9},
		{ID: "b1", K: 70, Epsilon: 0.85},
		{ID: "b2", K: 90, Epsilon: 0.8},
	}
	// Supply 0.5 < demand 0.9: general market; residual import 0.4, no
	// residual export.
	inputs := []WindowInput{
		{Generation: 0.6, Load: 0.1},
		{Generation: 0.0, Load: 0.5},
		{Generation: 0.1, Load: 0.5},
	}
	c, err := Clear(agents, inputs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	imp, exp := ResidualFromClearing(c)
	if math.Abs(imp-(c.Demand-c.Supply)) > 1e-9 {
		t.Errorf("import = %v, want demand-supply = %v", imp, c.Demand-c.Supply)
	}
	if exp != 0 {
		t.Errorf("export = %v, want 0", exp)
	}
	if math.Abs(imp+exp-c.GridInteraction()) > 1e-9 {
		t.Errorf("residuals %v+%v disagree with GridInteraction %v", imp, exp, c.GridInteraction())
	}
}
