// Package market implements the plaintext distributed energy-trading model
// of Section III: net-energy classification, the buyer-led Stackelberg game
// with its closed-form equilibrium price, pro-rata pairwise allocation for
// both the general and the extreme market, seller utility / buyer cost
// accounting, and the paper's grid-only baseline ("without PEM").
//
// The cryptographic engine in internal/core computes exactly these
// quantities privately; the integration tests assert that the private and
// plaintext results agree to fixed-point precision.
package market

import (
	"errors"
	"fmt"
	"math"
)

// Role classifies an agent inside one trading window.
type Role int

// Roles per Section II-A: positive net energy sells, negative buys, zero is
// off-market.
const (
	RoleSeller Role = iota + 1
	RoleBuyer
	RoleOff
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSeller:
		return "seller"
	case RoleBuyer:
		return "buyer"
	case RoleOff:
		return "off"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Kind distinguishes the two market regimes of Section III-C/D.
type Kind int

// Market regimes: general (supply < demand, Stackelberg price) and extreme
// (supply ≥ demand, price pinned to the lower bound).
const (
	GeneralMarket Kind = iota + 1
	ExtremeMarket
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GeneralMarket:
		return "general"
	case ExtremeMarket:
		return "extreme"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params holds the public market constants of Section II-A.
type Params struct {
	// GridSellPrice is pbtg, what the grid pays for fed-in energy
	// (cents/kWh).
	GridSellPrice float64
	// GridRetailPrice is pstg, the grid's retail price (cents/kWh).
	GridRetailPrice float64
	// PriceFloor and PriceCeil are the PEM range [pl, ph] with
	// pbtg < pl ≤ p ≤ ph < pstg (Eq. 3).
	PriceFloor, PriceCeil float64
}

// DefaultParams returns the prices used throughout the paper's evaluation:
// pbtg = 80, pstg = 120, [pl, ph] = [90, 110] cents/kWh.
func DefaultParams() Params {
	return Params{
		GridSellPrice:   80,
		GridRetailPrice: 120,
		PriceFloor:      90,
		PriceCeil:       110,
	}
}

// Validate checks the ordering constraint of Eq. 3.
func (p Params) Validate() error {
	if !(p.GridSellPrice < p.PriceFloor && p.PriceFloor <= p.PriceCeil && p.PriceCeil < p.GridRetailPrice) {
		return fmt.Errorf("market: price ordering violated: pbtg=%.2f pl=%.2f ph=%.2f pstg=%.2f",
			p.GridSellPrice, p.PriceFloor, p.PriceCeil, p.GridRetailPrice)
	}
	if p.GridSellPrice <= 0 {
		return errors.New("market: grid sell price must be positive")
	}
	return nil
}

// Agent is one smart home / microgrid.
type Agent struct {
	// ID is the unique party identifier.
	ID string
	// K is the load-behaviour preference parameter k_i (> 0).
	K float64
	// Epsilon is the battery loss coefficient ε_i ∈ (0, 1).
	Epsilon float64
	// BatteryCapacity is Cap_i in kWh (0 = no battery).
	BatteryCapacity float64
}

// Validate checks the agent parameter domains from Section III-A.
func (a Agent) Validate() error {
	if a.ID == "" {
		return errors.New("market: agent has empty ID")
	}
	if a.K <= 0 {
		return fmt.Errorf("market: agent %s: preference k must be > 0, got %v", a.ID, a.K)
	}
	if a.Epsilon <= 0 || a.Epsilon >= 1 {
		return fmt.Errorf("market: agent %s: epsilon must be in (0,1), got %v", a.ID, a.Epsilon)
	}
	if a.BatteryCapacity < 0 {
		return fmt.Errorf("market: agent %s: battery capacity must be ≥ 0", a.ID)
	}
	return nil
}

// WindowInput is one agent's private data for one trading window.
type WindowInput struct {
	// Generation g_i^t in kWh.
	Generation float64
	// Load l_i^t in kWh.
	Load float64
	// Battery b_i^t in kWh: positive charges, negative discharges.
	Battery float64
}

// NetEnergy computes sn_i^t = g - l - b (Eq. 1).
func (w WindowInput) NetEnergy() float64 {
	return w.Generation - w.Load - w.Battery
}

// ClassifyRole maps net energy to a role. Tiny magnitudes (below epsilon
// in kWh) count as off-market to keep Protocol 4's reciprocal stable.
const offMarketEpsilon = 1e-9

// ClassifyRole returns the role implied by net energy sn.
func ClassifyRole(sn float64) Role {
	switch {
	case sn > offMarketEpsilon:
		return RoleSeller
	case sn < -offMarketEpsilon:
		return RoleBuyer
	default:
		return RoleOff
	}
}

// SellerUtility is U_i^t of Eq. 4:
//
//	U = k·log(1 + l + ε·b) + p·(g − l − b)
//
// The log argument must stay positive; callers clamp loads accordingly.
func SellerUtility(k, epsilon, load, gen, battery, price float64) float64 {
	return k*math.Log(1+load+epsilon*battery) + price*(gen-load-battery)
}

// BuyerCost is C_j^t of Eq. 5: the market purchase x at the trading price
// plus the residual demand bought from the grid at retail.
func BuyerCost(load, gen, battery, marketPurchase, price, gridRetail float64) float64 {
	return price*marketPurchase + gridRetail*(load+battery-gen-marketPurchase)
}

// OptimalLoad is the follower's best response l*_i, clamped to be
// non-negative (loads cannot be negative; the clamp corresponds to the
// boundary optimum of the concave utility).
//
// Reproduction note: the paper's Eq. 9/10/15 write the best response as
// l* = k·ε/p − 1 − ε·b, but that contradicts its own Eq. 4 (whose true
// derivative in l is k/(1+l+εb), without ε), its Eq. 8 second derivative,
// and its Eq. 13 price (whose derivation requires l* = k/p − 1 − ε·b; with
// the ε the numerator of Eq. 13 would be Σk_iε_i rather than Σk_i). We
// implement the self-consistent system — l* = k/p − 1 − ε·b — so that the
// equilibrium properties proved in Lemma 1 actually hold; the property
// tests verify both the first-order condition and the no-profitable-
// deviation guarantee against Eq. 4 as printed.
func OptimalLoad(k, epsilon, battery, price float64) float64 {
	l := k/price - 1 - epsilon*battery
	if l < 0 {
		return 0
	}
	return l
}

// SellerParams bundles the per-seller quantities entering the price formula.
type SellerParams struct {
	// K is the seller's preference parameter k_i.
	K float64
	// Epsilon is its battery loss coefficient ε_i.
	Epsilon float64
	// Gen is its generation g_i for the window (kWh).
	Gen float64
	// Battery is its battery schedule b_i for the window (kWh).
	Battery float64
}

// PriceTerm is the seller's contribution g_i + 1 + ε_i·b_i − b_i to the
// denominator of Eq. 13 (the quantity aggregated in Protocol 3).
func (s SellerParams) PriceTerm() float64 {
	return s.Gen + 1 + s.Epsilon*s.Battery - s.Battery
}

// RawOptimalPrice computes p̂ of Eq. 13 from the two seller aggregates.
func RawOptimalPrice(sumK, sumPriceTerm, gridRetail float64) (float64, error) {
	if sumK <= 0 || sumPriceTerm <= 0 {
		return 0, fmt.Errorf("market: degenerate aggregates sumK=%v sumTerm=%v", sumK, sumPriceTerm)
	}
	return math.Sqrt(gridRetail * sumK / sumPriceTerm), nil
}

// ClampPrice applies Eq. 14.
func ClampPrice(pHat, floor, ceil float64) float64 {
	switch {
	case pHat < floor:
		return floor
	case pHat > ceil:
		return ceil
	default:
		return pHat
	}
}

// OptimalPrice computes the equilibrium price p* for the general market
// from the individual seller parameters (Eqs. 13–14).
func OptimalPrice(sellers []SellerParams, params Params) (pHat, pStar float64, err error) {
	if len(sellers) == 0 {
		return 0, 0, errors.New("market: no sellers")
	}
	var sumK, sumTerm float64
	for _, s := range sellers {
		sumK += s.K
		sumTerm += s.PriceTerm()
	}
	pHat, err = RawOptimalPrice(sumK, sumTerm, params.GridRetailPrice)
	if err != nil {
		return 0, 0, err
	}
	return pHat, ClampPrice(pHat, params.PriceFloor, params.PriceCeil), nil
}

// CoalitionCost is Γ^t of Eq. 7 for the general market: the buyer coalition
// pays p for the whole market supply and retail for the uncovered residue.
func CoalitionCost(price, supply, demand, gridRetail float64) float64 {
	return price*supply + gridRetail*(demand-supply)
}
