package market

import (
	"fmt"
	"sort"
)

// Trade is one pairwise transaction: Seller routes Energy kWh to Buyer who
// pays Payment (cents).
type Trade struct {
	// Seller and Buyer are the counterparties' agent IDs.
	Seller, Buyer string
	// Energy is the delivered quantity (kWh).
	Energy float64
	// Payment is what the buyer pays the seller (cents).
	Payment float64
}

// AgentOutcome summarizes one agent's window result.
type AgentOutcome struct {
	// ID is the agent.
	ID string
	// Role is the agent's classification in this window.
	Role Role
	// Net is sn_i^t.
	Net float64
	// MarketEnergy is the energy traded on the PEM (sold if seller,
	// bought if buyer).
	MarketEnergy float64
	// GridEnergy is the residual routed to/from the main grid (sold if
	// seller, bought if buyer).
	GridEnergy float64
	// Revenue (sellers) and Cost (buyers) in cents, combining market and
	// grid legs.
	Revenue, Cost float64
}

// Clearing is the full plaintext result of one trading window.
type Clearing struct {
	// Kind is the market regime the window cleared under.
	Kind Kind
	// PHat is the unclamped Eq. 13 price (0 if extreme market or no
	// sellers).
	PHat float64
	// Price is the effective trading price p*.
	Price float64
	// Supply and Demand are E_s and E_b.
	Supply, Demand float64
	// Trades are the pairwise allocations.
	Trades []Trade
	// Outcomes indexed by agent position in the input slice.
	Outcomes []AgentOutcome
	// SellerIDs and BuyerIDs hold the coalition rosters (sorted).
	SellerIDs, BuyerIDs []string

	// Reusable clearing scratch (ClearInto): role records and the ID index,
	// retained across windows so a settlement loop allocates only on fleet
	// growth.
	sellers []sellerRec
	buyers  []buyerRec
	params  []SellerParams
	idxByID map[string]int
}

// sellerRec and buyerRec are the per-window role records Clear builds while
// classifying the fleet.
type sellerRec struct {
	idx int
	net float64
}

type buyerRec struct {
	idx    int
	demand float64
}

// Reset empties c for reuse, retaining every slice's backing array (and the
// index map) so ClearInto over a window sequence reuses one Clearing's
// storage instead of reallocating it each window.
func (c *Clearing) Reset() {
	c.Kind = 0
	c.PHat, c.Price, c.Supply, c.Demand = 0, 0, 0, 0
	c.Trades = c.Trades[:0]
	c.Outcomes = c.Outcomes[:0]
	c.SellerIDs = c.SellerIDs[:0]
	c.BuyerIDs = c.BuyerIDs[:0]
	c.sellers = c.sellers[:0]
	c.buyers = c.buyers[:0]
	c.params = c.params[:0]
}

// GridInteraction is the total energy exchanged with the main grid in this
// clearing: residual buyer demand plus residual seller surplus.
func (c *Clearing) GridInteraction() float64 {
	var total float64
	for _, o := range c.Outcomes {
		total += o.GridEnergy
	}
	return total
}

// TotalBuyerCost sums the buyers' costs (Γ^t including grid residue).
func (c *Clearing) TotalBuyerCost() float64 {
	var total float64
	for _, o := range c.Outcomes {
		if o.Role == RoleBuyer {
			total += o.Cost
		}
	}
	return total
}

// Clear computes the plaintext market outcome for one window, the reference
// against which the cryptographic engine is validated.
func Clear(agents []Agent, inputs []WindowInput, params Params) (*Clearing, error) {
	c := new(Clearing)
	if err := ClearInto(c, agents, inputs, params); err != nil {
		return nil, err
	}
	return c, nil
}

// ClearInto is Clear writing into a caller-owned Clearing: c is Reset and
// refilled in place, reusing its trade/outcome/roster storage. Settlement
// loops that clear many windows (the grid's oracle accounting) hold one
// Clearing across the sequence instead of allocating a full result per
// window. The outcome is bit-identical to Clear's.
func ClearInto(c *Clearing, agents []Agent, inputs []WindowInput, params Params) error {
	if len(agents) != len(inputs) {
		return fmt.Errorf("market: %d agents but %d inputs", len(agents), len(inputs))
	}
	if err := params.Validate(); err != nil {
		return err
	}
	for _, a := range agents {
		if err := a.Validate(); err != nil {
			return err
		}
	}

	c.Reset()
	if cap(c.Outcomes) < len(agents) {
		c.Outcomes = make([]AgentOutcome, len(agents))
	} else {
		c.Outcomes = c.Outcomes[:len(agents)]
	}
	sellers, buyers := c.sellers, c.buyers
	for i, in := range inputs {
		net := in.NetEnergy()
		role := ClassifyRole(net)
		c.Outcomes[i] = AgentOutcome{ID: agents[i].ID, Role: role, Net: net}
		switch role {
		case RoleSeller:
			sellers = append(sellers, sellerRec{idx: i, net: net})
			c.Supply += net
			c.SellerIDs = append(c.SellerIDs, agents[i].ID)
		case RoleBuyer:
			buyers = append(buyers, buyerRec{idx: i, demand: -net})
			c.Demand += -net
			c.BuyerIDs = append(c.BuyerIDs, agents[i].ID)
		}
	}
	c.sellers, c.buyers = sellers, buyers
	sort.Strings(c.SellerIDs)
	sort.Strings(c.BuyerIDs)

	// Degenerate windows: no sellers ⇒ everyone buys from the grid at
	// retail (Protocol 1 initialization rule); no buyers ⇒ sellers feed
	// the grid at pbtg.
	if len(sellers) == 0 || len(buyers) == 0 {
		c.Kind = GeneralMarket
		c.Price = params.GridRetailPrice
		if len(buyers) == 0 {
			c.Kind = ExtremeMarket
			c.Price = params.PriceFloor
		}
		for i := range c.Outcomes {
			o := &c.Outcomes[i]
			switch o.Role {
			case RoleBuyer:
				o.GridEnergy = -o.Net
				o.Cost = params.GridRetailPrice * o.GridEnergy
			case RoleSeller:
				o.GridEnergy = o.Net
				o.Revenue = params.GridSellPrice * o.GridEnergy
			}
		}
		return nil
	}

	if c.Supply < c.Demand {
		c.Kind = GeneralMarket
		sellerParams := c.params[:0]
		for _, s := range sellers {
			a := agents[s.idx]
			in := inputs[s.idx]
			sellerParams = append(sellerParams, SellerParams{K: a.K, Epsilon: a.Epsilon, Gen: in.Generation, Battery: in.Battery})
		}
		c.params = sellerParams
		pHat, pStar, err := OptimalPrice(sellerParams, params)
		if err != nil {
			return err
		}
		c.PHat = pHat
		c.Price = pStar

		// General market: the whole supply is sold; buyer j receives the
		// share |sn_j| / E_b of each seller's surplus (Section III-D).
		for _, s := range sellers {
			for _, b := range buyers {
				e := s.net * (b.demand / c.Demand)
				if e <= 0 {
					continue
				}
				c.Trades = append(c.Trades, Trade{
					Seller:  agents[s.idx].ID,
					Buyer:   agents[b.idx].ID,
					Energy:  e,
					Payment: e * c.Price,
				})
			}
		}
	} else {
		c.Kind = ExtremeMarket
		c.Price = params.PriceFloor

		// Extreme market: the whole demand is covered; seller i contributes
		// the share sn_i / E_s of each buyer's demand (Section III-D).
		for _, s := range sellers {
			for _, b := range buyers {
				e := b.demand * (s.net / c.Supply)
				if e <= 0 {
					continue
				}
				c.Trades = append(c.Trades, Trade{
					Seller:  agents[s.idx].ID,
					Buyer:   agents[b.idx].ID,
					Energy:  e,
					Payment: e * c.Price,
				})
			}
		}
	}

	// Aggregate per-agent outcomes. The ID index is part of the reusable
	// scratch: one map serves every window of a settlement loop.
	idxByID := c.idxByID
	if idxByID == nil {
		idxByID = make(map[string]int, len(agents))
		c.idxByID = idxByID
	} else {
		clear(idxByID)
	}
	for i, a := range agents {
		idxByID[a.ID] = i
	}
	for _, tr := range c.Trades {
		si := idxByID[tr.Seller]
		bi := idxByID[tr.Buyer]
		c.Outcomes[si].MarketEnergy += tr.Energy
		c.Outcomes[si].Revenue += tr.Payment
		c.Outcomes[bi].MarketEnergy += tr.Energy
		c.Outcomes[bi].Cost += tr.Payment
	}
	for i := range c.Outcomes {
		o := &c.Outcomes[i]
		switch o.Role {
		case RoleSeller:
			// Unsold surplus goes to the grid at pbtg.
			residual := o.Net - o.MarketEnergy
			if residual > offMarketEpsilon {
				o.GridEnergy = residual
				o.Revenue += params.GridSellPrice * residual
			}
		case RoleBuyer:
			// Uncovered demand comes from the grid at retail.
			residual := -o.Net - o.MarketEnergy
			if residual > offMarketEpsilon {
				o.GridEnergy = residual
				o.Cost += params.GridRetailPrice * residual
			}
		}
	}
	return nil
}

// BaselineClear computes the paper's benchmark: no PEM, every agent trades
// only with the main grid (sellers feed in at pbtg, buyers draw at retail).
func BaselineClear(agents []Agent, inputs []WindowInput, params Params) (*Clearing, error) {
	c := new(Clearing)
	if err := BaselineClearInto(c, agents, inputs, params); err != nil {
		return nil, err
	}
	return c, nil
}

// BaselineClearInto is BaselineClear writing into a caller-owned Clearing,
// mirroring ClearInto's reuse contract.
func BaselineClearInto(c *Clearing, agents []Agent, inputs []WindowInput, params Params) error {
	if len(agents) != len(inputs) {
		return fmt.Errorf("market: %d agents but %d inputs", len(agents), len(inputs))
	}
	if err := params.Validate(); err != nil {
		return err
	}
	c.Reset()
	c.Kind = GeneralMarket
	c.Price = params.GridRetailPrice
	if cap(c.Outcomes) < len(agents) {
		c.Outcomes = make([]AgentOutcome, len(agents))
	} else {
		c.Outcomes = c.Outcomes[:len(agents)]
	}
	for i, in := range inputs {
		net := in.NetEnergy()
		role := ClassifyRole(net)
		o := AgentOutcome{ID: agents[i].ID, Role: role, Net: net}
		switch role {
		case RoleSeller:
			c.Supply += net
			o.GridEnergy = net
			o.Revenue = params.GridSellPrice * net
			c.SellerIDs = append(c.SellerIDs, agents[i].ID)
		case RoleBuyer:
			c.Demand += -net
			o.GridEnergy = -net
			o.Cost = params.GridRetailPrice * -net
			c.BuyerIDs = append(c.BuyerIDs, agents[i].ID)
		}
		c.Outcomes[i] = o
	}
	sort.Strings(c.SellerIDs)
	sort.Strings(c.BuyerIDs)
	return nil
}
