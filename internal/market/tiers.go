package market

import (
	"errors"
	"fmt"
	"sort"
)

// Tiered settlement: the flat grid layer (settlement.go) values every
// coalition's residual directly against the main-grid tariff. Real
// distribution networks are hierarchical — coalitions hang off feeders,
// feeders off districts, districts off regions — and local-energy-market
// designs net surplus against deficit at each aggregation level before
// touching the upstream tariff. This file adds that recursion: a TierNode
// tree whose leaves are coalition residuals, where every intermediate tier
// matches its children's net surplus against their net deficit (releasing
// retail−feed-in per matched kWh, exactly like the flat layer's
// cross-coalition netting opportunity) and passes only the unmatched
// remainder upward. The root is the grid boundary: its children's upward
// residuals are settled by SettleResiduals unchanged, so a 1-tier tree —
// every coalition attached directly to the root — reproduces the flat
// GridSettlement bit for bit.

// TierNode is one node of the settlement hierarchy. Leaves carry coalition
// residuals; intermediate nodes group children (sub-tiers and/or coalitions
// — a mixed district is fine). Names must be unique across the whole tree,
// tiers and coalitions together, because tier names become residual names
// at the parent level.
type TierNode struct {
	// Name identifies the tier ("d03", "r01"); the root's name labels the
	// grid boundary and is conventionally "grid".
	Name string
	// Children are the sub-tiers aggregated under this node.
	Children []*TierNode
	// Residuals are the coalition residuals attached directly to this node.
	Residuals []CoalitionResidual
}

// TierSettlement is one intermediate tier's netting outcome.
type TierSettlement struct {
	// Tier is the tier's unique name.
	Tier string
	// Level is the tier's depth below the root (1 = the root's children).
	Level int
	// GrossImportKWh and GrossExportKWh sum the children's upward residual
	// positions before this tier nets them.
	GrossImportKWh, GrossExportKWh float64
	// MatchedKWh is the energy this tier nets internally: the smaller of
	// its children's total net deficit and total net surplus. A child's
	// simultaneous import and export (morning deficit, midday surplus) is
	// not nettable without storage and never counts.
	MatchedKWh float64
	// NettingGainCents is the welfare this tier releases by matching that
	// energy below the tariff: MatchedKWh · (retail − feed-in).
	NettingGainCents float64
	// UpImportKWh and UpExportKWh are the unmatched remainder this tier
	// passes upward: gross minus matched on both sides.
	UpImportKWh, UpExportKWh float64
}

// TieredSettlement is the outcome of a full hierarchy settlement.
type TieredSettlement struct {
	// Tiers holds one settlement per intermediate tier, sorted by level
	// then name (the root is the grid boundary, not a tier).
	Tiers []TierSettlement
	// Grid settles the root's children — the upward residuals that
	// survived every tier of netting — against the main-grid tariff.
	Grid *GridSettlement
	// MatchedKWh sums the tiers' internally netted energy (the grid
	// settlement's own cross-residual opportunity is reported separately
	// in Grid.MatchedKWh).
	MatchedKWh float64
	// NettingGainCents is the total welfare released across all tiers.
	NettingGainCents float64
}

// SettleTiers settles a hierarchy of coalition residuals: every
// intermediate tier nets its children's surplus against their deficit and
// passes the remainder up; the root's children are settled against the
// grid tariff by SettleResiduals. Conservation holds at every tier (gross
// = matched + upward, per side), and fleet-wide:
//
//	Σ coalition imports = Σ tier MatchedKWh + Grid.Fleet.ImportKWh
//
// and likewise for exports. Names must be unique tree-wide; every node
// needs at least one child or residual; nodes must form a tree.
func SettleTiers(root *TierNode, params Params) (*TieredSettlement, error) {
	if root == nil {
		return nil, errors.New("market: nil tier root")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ts := &TieredSettlement{}
	seenNodes := make(map[*TierNode]bool)
	seenNames := map[string]bool{root.Name: true}
	var residuals []CoalitionResidual
	for _, r := range root.Residuals {
		if seenNames[r.Coalition] {
			return nil, fmt.Errorf("market: duplicate name %q in tier tree", r.Coalition)
		}
		seenNames[r.Coalition] = true
		residuals = append(residuals, r)
	}
	seenNodes[root] = true
	for _, child := range root.Children {
		up, err := ts.settleNode(child, 1, params, seenNodes, seenNames)
		if err != nil {
			return nil, err
		}
		residuals = append(residuals, up)
	}
	sort.Slice(ts.Tiers, func(i, j int) bool {
		if ts.Tiers[i].Level != ts.Tiers[j].Level {
			return ts.Tiers[i].Level < ts.Tiers[j].Level
		}
		return ts.Tiers[i].Tier < ts.Tiers[j].Tier
	})
	grid, err := SettleResiduals(residuals, params)
	if err != nil {
		return nil, err
	}
	ts.Grid = grid
	return ts, nil
}

// settleNode recursively settles one intermediate tier and returns its
// upward residual, named after the tier.
func (ts *TieredSettlement) settleNode(n *TierNode, level int, params Params, seenNodes map[*TierNode]bool, seenNames map[string]bool) (CoalitionResidual, error) {
	var zero CoalitionResidual
	if n == nil {
		return zero, errors.New("market: nil tier node")
	}
	if seenNodes[n] {
		return zero, fmt.Errorf("market: tier %q appears twice in the tree", n.Name)
	}
	seenNodes[n] = true
	if n.Name == "" {
		return zero, errors.New("market: tier with empty name")
	}
	if seenNames[n.Name] {
		return zero, fmt.Errorf("market: duplicate name %q in tier tree", n.Name)
	}
	seenNames[n.Name] = true
	if len(n.Children) == 0 && len(n.Residuals) == 0 {
		return zero, fmt.Errorf("market: tier %q is empty", n.Name)
	}

	// Gather the children's upward positions: coalition residuals verbatim,
	// sub-tiers by recursion.
	var children []CoalitionResidual
	for _, r := range n.Residuals {
		if r.Coalition == "" {
			return zero, fmt.Errorf("market: tier %q holds a residual with empty coalition name", n.Name)
		}
		if seenNames[r.Coalition] {
			return zero, fmt.Errorf("market: duplicate name %q in tier tree", r.Coalition)
		}
		seenNames[r.Coalition] = true
		if r.ImportKWh < 0 || r.ExportKWh < 0 ||
			r.ImportKWh != r.ImportKWh || r.ExportKWh != r.ExportKWh {
			return zero, fmt.Errorf("market: coalition %q residual not a non-negative quantity: import=%v export=%v",
				r.Coalition, r.ImportKWh, r.ExportKWh)
		}
		children = append(children, r)
	}
	for _, child := range n.Children {
		up, err := ts.settleNode(child, level+1, params, seenNodes, seenNames)
		if err != nil {
			return zero, err
		}
		children = append(children, up)
	}

	// Net the children's *net* positions: a child in deficit contributes
	// imp−exp to the tier's demand, one in surplus exp−imp to its supply.
	// min(D, S) is what the tier can move between children instead of
	// bouncing through the tariff; with one child D or S is zero, so a
	// singleton tier is a pure pass-through wrapper.
	set := TierSettlement{Tier: n.Name, Level: level}
	var deficit, surplus float64
	for _, c := range children {
		set.GrossImportKWh += c.ImportKWh
		set.GrossExportKWh += c.ExportKWh
		if net := c.ImportKWh - c.ExportKWh; net > 0 {
			deficit += net
		} else {
			surplus += -net
		}
	}
	set.MatchedKWh = deficit
	if surplus < deficit {
		set.MatchedKWh = surplus
	}
	set.NettingGainCents = set.MatchedKWh * (params.GridRetailPrice - params.GridSellPrice)
	set.UpImportKWh = set.GrossImportKWh - set.MatchedKWh
	set.UpExportKWh = set.GrossExportKWh - set.MatchedKWh

	ts.Tiers = append(ts.Tiers, set)
	ts.MatchedKWh += set.MatchedKWh
	ts.NettingGainCents += set.NettingGainCents
	return CoalitionResidual{Coalition: n.Name, ImportKWh: set.UpImportKWh, ExportKWh: set.UpExportKWh}, nil
}
