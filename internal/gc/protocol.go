package gc

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/pem-go/pem/internal/ot"
	"github.com/pem-go/pem/internal/transport"
)

// Protocol tags (namespaced by a caller-chosen session string).
const (
	tagMaterial = "gc/material"
	tagResult   = "gc/result"
)

// ProtocolOptions configures a two-party garbled-circuit execution.
type ProtocolOptions struct {
	// Group is the DH group used for the label OTs (defaults to
	// ot.DefaultGroup).
	Group *ot.Group
	// Random is the randomness source (defaults to crypto/rand).
	Random io.Reader
	// UseOTExtension transfers evaluator labels via IKNP instead of base
	// OTs. Worthwhile only for wide circuits; the 64-bit comparator in
	// Protocol 2 defaults to base OTs.
	UseOTExtension bool
	// DisableFreeXOR garbles XOR/NOT gates as tables (ablation only).
	DisableFreeXOR bool
	// GRR3 enables garbled row reduction (3 rows per table on the wire).
	GRR3 bool
}

func (o *ProtocolOptions) group() *ot.Group {
	if o.Group != nil {
		return o.Group
	}
	return ot.DefaultGroup()
}

func (o *ProtocolOptions) random() io.Reader {
	if o.Random != nil {
		return o.Random
	}
	return rand.Reader
}

// RunGarbler executes the garbler role of a two-party secure computation of
// circ over conn with the given peer: it garbles the circuit, ships the
// material and its own active input labels, serves the evaluator's labels
// via OT, and receives the (mutually learned) output bits back.
func RunGarbler(ctx context.Context, conn transport.Conn, peer, session string, circ *Circuit, inputBits []bool, opts ProtocolOptions) ([]bool, error) {
	if len(inputBits) != len(circ.GarblerInput) {
		return nil, fmt.Errorf("gc: garbler has %d bits, circuit wants %d", len(inputBits), len(circ.GarblerInput))
	}
	garbled, asg, err := Garble(circ, Options{
		DisableFreeXOR: opts.DisableFreeXOR,
		GRR3:           opts.GRR3,
		Random:         opts.Random,
	})
	if err != nil {
		return nil, fmt.Errorf("gc: garble: %w", err)
	}

	// Ship tables, output permute bits and the garbler's active labels.
	active := make([]Label, len(inputBits))
	for i, bit := range inputBits {
		if bit {
			active[i] = asg.Garbler[i][1]
		} else {
			active[i] = asg.Garbler[i][0]
		}
	}
	material := encodeMaterial(garbled, active, !opts.DisableFreeXOR)
	if err := conn.Send(ctx, peer, session+tagMaterial, material); err != nil {
		return nil, fmt.Errorf("gc: send material: %w", err)
	}

	// Serve the evaluator's input labels obliviously.
	pairs := make([]ot.Pair, len(asg.Evaluator))
	for i, pq := range asg.Evaluator {
		m0 := make([]byte, ot.KeySize)
		m1 := make([]byte, ot.KeySize)
		copy(m0, pq[0][:])
		copy(m1, pq[1][:])
		pairs[i] = ot.Pair{M0: m0, M1: m1}
	}
	if opts.UseOTExtension {
		err = ot.SendExtension(ctx, conn, peer, session+"gc", opts.group(), opts.random(), pairs)
	} else {
		err = ot.SendBase(ctx, conn, peer, session+"gc", opts.group(), opts.random(), pairs)
	}
	if err != nil {
		return nil, fmt.Errorf("gc: label OT: %w", err)
	}

	// The evaluator reports the decoded outputs so both parties learn the
	// result (standard semi-honest output sharing).
	raw, err := conn.Recv(ctx, peer, session+tagResult)
	if err != nil {
		return nil, fmt.Errorf("gc: recv result: %w", err)
	}
	bits, err := unpackBits(raw, len(circ.Outputs))
	if err != nil {
		return nil, err
	}
	return bits, nil
}

// RunEvaluator executes the evaluator role: it receives the garbled
// material, fetches its input labels via OT, evaluates, decodes, reports
// the outputs back to the garbler, and returns them.
func RunEvaluator(ctx context.Context, conn transport.Conn, peer, session string, circ *Circuit, inputBits []bool, opts ProtocolOptions) ([]bool, error) {
	if len(inputBits) != len(circ.EvaluatorInput) {
		return nil, fmt.Errorf("gc: evaluator has %d bits, circuit wants %d", len(inputBits), len(circ.EvaluatorInput))
	}
	raw, err := conn.Recv(ctx, peer, session+tagMaterial)
	if err != nil {
		return nil, fmt.Errorf("gc: recv material: %w", err)
	}
	garbled, garblerLabels, freeXOR, err := decodeMaterial(raw, circ)
	if err != nil {
		return nil, err
	}

	var labelBytes [][]byte
	if opts.UseOTExtension {
		labelBytes, err = ot.RecvExtension(ctx, conn, peer, session+"gc", opts.group(), opts.random(), inputBits)
	} else {
		labelBytes, err = ot.RecvBase(ctx, conn, peer, session+"gc", opts.group(), opts.random(), inputBits)
	}
	if err != nil {
		return nil, fmt.Errorf("gc: label OT: %w", err)
	}
	evalLabels := make([]Label, len(labelBytes))
	for i, b := range labelBytes {
		copy(evalLabels[i][:], b)
	}

	outLabels, err := Evaluate(circ, garbled, garblerLabels, evalLabels, freeXOR)
	if err != nil {
		return nil, fmt.Errorf("gc: evaluate: %w", err)
	}
	bits, err := DecodeOutputs(garbled, outLabels)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ctx, peer, session+tagResult, packBits(bits)); err != nil {
		return nil, fmt.Errorf("gc: send result: %w", err)
	}
	return bits, nil
}

// --- wire encoding of the garbled material ---
//
//	u8  scheme flags: bit0 = free-XOR, bit1 = GRR3
//	u32 numTables | tables (3 or 4 × LabelSize each)
//	u32 numOutputs | permute bits (packed)
//	u32 numGarblerLabels | labels (LabelSize each)

func encodeMaterial(g *Garbled, garblerActive []Label, freeXOR bool) []byte {
	rows := 4
	if g.GRR3 {
		rows = 3
	}
	size := 1 + 4 + len(g.Tables)*rows*LabelSize + 4 + (len(g.OutputPerm)+7)/8 + 4 + len(garblerActive)*LabelSize
	buf := make([]byte, 0, size)
	var flags byte
	if freeXOR {
		flags |= 1
	}
	if g.GRR3 {
		flags |= 2
	}
	buf = append(buf, flags)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(g.Tables)))
	buf = append(buf, u32[:]...)
	for _, t := range g.Tables {
		for _, row := range t {
			buf = append(buf, row[:]...)
		}
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(g.OutputPerm)))
	buf = append(buf, u32[:]...)
	packed := make([]byte, (len(g.OutputPerm)+7)/8)
	for i, b := range g.OutputPerm {
		if b != 0 {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	buf = append(buf, packed...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(garblerActive)))
	buf = append(buf, u32[:]...)
	for _, l := range garblerActive {
		buf = append(buf, l[:]...)
	}
	return buf
}

func decodeMaterial(raw []byte, circ *Circuit) (*Garbled, []Label, bool, error) {
	fail := func(msg string) (*Garbled, []Label, bool, error) {
		return nil, nil, false, errors.New("gc: bad material: " + msg)
	}
	if len(raw) < 1 {
		return fail("empty")
	}
	freeXOR := raw[0]&1 != 0
	grr3 := raw[0]&2 != 0
	raw = raw[1:]
	rows := 4
	if grr3 {
		rows = 3
	}

	if len(raw) < 4 {
		return fail("truncated table count")
	}
	nTables := int(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	if nTables < 0 || len(raw) < nTables*rows*LabelSize {
		return fail("truncated tables")
	}
	g := &Garbled{Tables: make([][]Label, nTables), GRR3: grr3}
	for i := 0; i < nTables; i++ {
		g.Tables[i] = make([]Label, rows)
		for r := 0; r < rows; r++ {
			copy(g.Tables[i][r][:], raw[:LabelSize])
			raw = raw[LabelSize:]
		}
	}

	if len(raw) < 4 {
		return fail("truncated output count")
	}
	nOut := int(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	if nOut != len(circ.Outputs) {
		return fail("output count mismatch")
	}
	packedLen := (nOut + 7) / 8
	if len(raw) < packedLen {
		return fail("truncated output permute bits")
	}
	g.OutputPerm = make([]byte, nOut)
	for i := 0; i < nOut; i++ {
		if raw[i/8]&(1<<(i%8)) != 0 {
			g.OutputPerm[i] = 1
		}
	}
	raw = raw[packedLen:]

	if len(raw) < 4 {
		return fail("truncated garbler label count")
	}
	nLabels := int(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	if nLabels != len(circ.GarblerInput) {
		return fail("garbler label count mismatch")
	}
	if len(raw) != nLabels*LabelSize {
		return fail("truncated garbler labels")
	}
	labels := make([]Label, nLabels)
	for i := 0; i < nLabels; i++ {
		copy(labels[i][:], raw[:LabelSize])
		raw = raw[LabelSize:]
	}

	// Cross-check table count against the circuit and flag.
	want := circ.NonFreeGates()
	if !freeXOR {
		want = len(circ.Gates)
	}
	if nTables != want {
		return fail("table count mismatch with circuit")
	}
	return g, labels, freeXOR, nil
}

// packBits packs booleans LSB-first.
func packBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// unpackBits reverses packBits for a known count.
func unpackBits(raw []byte, n int) ([]bool, error) {
	if len(raw) != (n+7)/8 {
		return nil, fmt.Errorf("gc: packed bits have %d bytes, want %d", len(raw), (n+7)/8)
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return bits, nil
}

// CompareResult is the outcome of a secure comparison.
type CompareResult int

// Comparison outcomes for SecureCompare.
const (
	// LeftGreater means the garbler's value is strictly greater.
	LeftGreater CompareResult = iota + 1
	// NotGreater means the garbler's value is less than or equal.
	NotGreater
)

// SecureCompareGarbler runs the millionaires comparison as the garbler with
// a bits-wide unsigned value, returning LeftGreater iff value > peer's.
func SecureCompareGarbler(ctx context.Context, conn transport.Conn, peer, session string, value uint64, bits int, opts ProtocolOptions) (CompareResult, error) {
	circ, err := BuildGreaterThan(bits)
	if err != nil {
		return 0, err
	}
	out, err := RunGarbler(ctx, conn, peer, session, circ, uintToBits(value, bits), opts)
	if err != nil {
		return 0, err
	}
	if out[0] {
		return LeftGreater, nil
	}
	return NotGreater, nil
}

// SecureCompareEvaluator runs the millionaires comparison as the evaluator.
// It returns LeftGreater iff the GARBLER's value is strictly greater (the
// same orientation as SecureCompareGarbler, so both parties agree).
func SecureCompareEvaluator(ctx context.Context, conn transport.Conn, peer, session string, value uint64, bits int, opts ProtocolOptions) (CompareResult, error) {
	circ, err := BuildGreaterThan(bits)
	if err != nil {
		return 0, err
	}
	out, err := RunEvaluator(ctx, conn, peer, session, circ, uintToBits(value, bits), opts)
	if err != nil {
		return 0, err
	}
	if out[0] {
		return LeftGreater, nil
	}
	return NotGreater, nil
}

// uintToBits expands v into bits booleans, LSB first.
func uintToBits(v uint64, bits int) []bool {
	out := make([]bool, bits)
	for i := 0; i < bits; i++ {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}
