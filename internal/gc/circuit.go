// Package gc implements Yao garbled circuits for the light-weight secure
// computations in PEM — most importantly the secure comparison of the
// masked aggregates Rb and Rs in Private Market Evaluation (Protocol 2),
// which the paper delegates to a FAIRPLAY-style system.
//
// The garbling scheme uses 128-bit wire labels with point-and-permute and
// the free-XOR optimization (XOR and NOT gates cost nothing to garble or
// evaluate); non-XOR gates are four-row tables encrypted under a SHA-256
// based key-derivation of the two input labels. A classic greater-than
// comparator (one AND per bit) is provided as a circuit builder, and
// Garbler/Evaluator runners execute the two-party protocol over a
// transport.Conn with wire labels delivered through the ot package.
package gc

import (
	"errors"
	"fmt"
)

// GateKind enumerates supported gate types.
type GateKind uint8

// Supported gates. XOR and NOT are free under free-XOR garbling; AND and OR
// cost one four-row table each.
const (
	GateXOR GateKind = iota + 1
	GateAND
	GateOR
	GateNOT
)

// String implements fmt.Stringer.
func (k GateKind) String() string {
	switch k {
	case GateXOR:
		return "XOR"
	case GateAND:
		return "AND"
	case GateOR:
		return "OR"
	case GateNOT:
		return "NOT"
	default:
		return fmt.Sprintf("GateKind(%d)", uint8(k))
	}
}

// truthTable returns the gate's output for each (a,b) input combination,
// indexed as a<<1|b. NOT ignores b.
func (k GateKind) truthTable() [4]bool {
	switch k {
	case GateXOR:
		return [4]bool{false, true, true, false}
	case GateAND:
		return [4]bool{false, false, false, true}
	case GateOR:
		return [4]bool{false, true, true, true}
	case GateNOT:
		return [4]bool{true, true, false, false}
	default:
		return [4]bool{}
	}
}

// Gate is one gate. Wires are identified by dense indexes. For NOT gates
// In1 is unused.
type Gate struct {
	Kind     GateKind
	In0, In1 int
	Out      int
}

// Circuit is a boolean circuit with two input bundles: the garbler's bits
// and the evaluator's bits.
type Circuit struct {
	// NumWires is the total number of wires. Wires
	// [0, len(GarblerInputs)+len(EvaluatorInputs)) are inputs.
	NumWires int
	// GarblerInput[i] is the wire carrying the garbler's i-th input bit.
	GarblerInput []int
	// EvaluatorInput[i] is the wire carrying the evaluator's i-th bit.
	EvaluatorInput []int
	// Outputs lists the circuit output wires.
	Outputs []int
	// Gates in topological order.
	Gates []Gate
}

// Validate checks structural sanity: wire indexes in range, gates
// topologically ordered, inputs not driven by gates.
func (c *Circuit) Validate() error {
	if c.NumWires <= 0 {
		return errors.New("gc: circuit has no wires")
	}
	numInputs := len(c.GarblerInput) + len(c.EvaluatorInput)
	driven := make([]bool, c.NumWires)
	seen := make(map[int]bool, numInputs)
	for _, w := range c.GarblerInput {
		if w < 0 || w >= c.NumWires {
			return fmt.Errorf("gc: garbler input wire %d out of range", w)
		}
		if seen[w] {
			return fmt.Errorf("gc: duplicate input wire %d", w)
		}
		seen[w] = true
		driven[w] = true
	}
	for _, w := range c.EvaluatorInput {
		if w < 0 || w >= c.NumWires {
			return fmt.Errorf("gc: evaluator input wire %d out of range", w)
		}
		if seen[w] {
			return fmt.Errorf("gc: duplicate input wire %d", w)
		}
		seen[w] = true
		driven[w] = true
	}
	for i, g := range c.Gates {
		switch g.Kind {
		case GateXOR, GateAND, GateOR, GateNOT:
		default:
			return fmt.Errorf("gc: gate %d has unknown kind %d", i, g.Kind)
		}
		if g.In0 < 0 || g.In0 >= c.NumWires || !driven[g.In0] {
			return fmt.Errorf("gc: gate %d input0 wire %d undriven", i, g.In0)
		}
		if g.Kind != GateNOT {
			if g.In1 < 0 || g.In1 >= c.NumWires || !driven[g.In1] {
				return fmt.Errorf("gc: gate %d input1 wire %d undriven", i, g.In1)
			}
		}
		if g.Out < 0 || g.Out >= c.NumWires {
			return fmt.Errorf("gc: gate %d output wire %d out of range", i, g.Out)
		}
		if driven[g.Out] {
			return fmt.Errorf("gc: gate %d redrives wire %d", i, g.Out)
		}
		driven[g.Out] = true
	}
	for _, w := range c.Outputs {
		if w < 0 || w >= c.NumWires || !driven[w] {
			return fmt.Errorf("gc: output wire %d undriven", w)
		}
	}
	return nil
}

// EvalPlain evaluates the circuit on plaintext bits — the reference
// implementation used by property tests to validate garbled evaluation.
func (c *Circuit) EvalPlain(garblerBits, evaluatorBits []bool) ([]bool, error) {
	if len(garblerBits) != len(c.GarblerInput) {
		return nil, fmt.Errorf("gc: got %d garbler bits, want %d", len(garblerBits), len(c.GarblerInput))
	}
	if len(evaluatorBits) != len(c.EvaluatorInput) {
		return nil, fmt.Errorf("gc: got %d evaluator bits, want %d", len(evaluatorBits), len(c.EvaluatorInput))
	}
	vals := make([]bool, c.NumWires)
	for i, w := range c.GarblerInput {
		vals[w] = garblerBits[i]
	}
	for i, w := range c.EvaluatorInput {
		vals[w] = evaluatorBits[i]
	}
	for _, g := range c.Gates {
		tt := g.Kind.truthTable()
		a, b := vals[g.In0], false
		if g.Kind != GateNOT {
			b = vals[g.In1]
		}
		idx := 0
		if a {
			idx |= 2
		}
		if b {
			idx |= 1
		}
		vals[g.Out] = tt[idx]
	}
	out := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = vals[w]
	}
	return out, nil
}

// NonFreeGates counts the gates that require garbled tables (AND/OR).
func (c *Circuit) NonFreeGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == GateAND || g.Kind == GateOR {
			n++
		}
	}
	return n
}

// builder helps construct circuits programmatically.
type builder struct {
	c Circuit
}

func newBuilder() *builder { return &builder{} }

func (b *builder) wire() int {
	w := b.c.NumWires
	b.c.NumWires++
	return w
}

func (b *builder) garblerInputs(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = b.wire()
	}
	b.c.GarblerInput = append(b.c.GarblerInput, ws...)
	return ws
}

func (b *builder) evaluatorInputs(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = b.wire()
	}
	b.c.EvaluatorInput = append(b.c.EvaluatorInput, ws...)
	return ws
}

func (b *builder) gate2(kind GateKind, in0, in1 int) int {
	out := b.wire()
	b.c.Gates = append(b.c.Gates, Gate{Kind: kind, In0: in0, In1: in1, Out: out})
	return out
}

func (b *builder) xor(a, x int) int { return b.gate2(GateXOR, a, x) }
func (b *builder) and(a, x int) int { return b.gate2(GateAND, a, x) }
func (b *builder) or(a, x int) int  { return b.gate2(GateOR, a, x) }

func (b *builder) not(a int) int {
	out := b.wire()
	b.c.Gates = append(b.c.Gates, Gate{Kind: GateNOT, In0: a, Out: out})
	return out
}

// BuildGreaterThan constructs a comparator computing [A > B] where A is the
// garbler's bits-bit unsigned integer and B the evaluator's. Bit 0 is the
// least significant. The construction scans from LSB to MSB maintaining
// c' = a_i ⊕ ((a_i ⊕ c) ∧ (b_i ⊕ c)), costing exactly one AND per bit
// under free-XOR.
func BuildGreaterThan(bits int) (*Circuit, error) {
	if bits <= 0 || bits > 512 {
		return nil, fmt.Errorf("gc: comparator width %d out of range", bits)
	}
	b := newBuilder()
	a := b.garblerInputs(bits)
	e := b.evaluatorInputs(bits)

	// c starts at 0. We avoid a constant wire by special-casing the first
	// bit: c1 = a0 ⊕ ((a0 ⊕ 0) ∧ (b0 ⊕ 0)) = a0 ⊕ (a0 ∧ b0) — i.e. a0 AND
	// NOT b0, but expressed with the same AND count.
	nb0 := b.not(e[0])
	c := b.and(a[0], nb0) // a0 ∧ ¬b0 = [a0 > b0]
	for i := 1; i < bits; i++ {
		ax := b.xor(a[i], c)
		bx := b.xor(e[i], c)
		t := b.and(ax, bx)
		c = b.xor(a[i], t)
	}
	b.c.Outputs = []int{c}
	circ := b.c
	if err := circ.Validate(); err != nil {
		return nil, err
	}
	return &circ, nil
}

// BuildEquals constructs an equality circuit [A == B] over bits-bit inputs
// (useful for protocol sanity checks): AND over XNORs.
func BuildEquals(bits int) (*Circuit, error) {
	if bits <= 0 || bits > 512 {
		return nil, fmt.Errorf("gc: equality width %d out of range", bits)
	}
	b := newBuilder()
	a := b.garblerInputs(bits)
	e := b.evaluatorInputs(bits)
	var acc int = -1
	for i := 0; i < bits; i++ {
		x := b.xor(a[i], e[i])
		eq := b.not(x)
		if acc < 0 {
			acc = eq
		} else {
			acc = b.and(acc, eq)
		}
	}
	b.c.Outputs = []int{acc}
	circ := b.c
	if err := circ.Validate(); err != nil {
		return nil, err
	}
	return &circ, nil
}

// BuildMillionaires is an alias for BuildGreaterThan kept for readability at
// call sites that implement the Yao millionaires comparison.
func BuildMillionaires(bits int) (*Circuit, error) { return BuildGreaterThan(bits) }
