package gc

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// LabelSize is the wire-label length in bytes (128-bit labels).
const LabelSize = 16

// Label is a garbled wire label. The low bit of byte 0 is the
// point-and-permute select bit.
type Label [LabelSize]byte

func (l Label) permuteBit() int { return int(l[0] & 1) }

func (l Label) xor(o Label) Label {
	var out Label
	for i := range l {
		out[i] = l[i] ^ o[i]
	}
	return out
}

// Options controls garbling behaviour.
type Options struct {
	// DisableFreeXOR garbles XOR and NOT gates as full tables.
	// Used only by the ablation benchmark; keep the default (false).
	DisableFreeXOR bool
	// GRR3 enables garbled row reduction: the table row addressed by
	// select bits (0,0) is defined implicitly as the gate hash, shrinking
	// every non-free gate from four rows to three (25% less material on
	// the wire).
	GRR3 bool
	// Random overrides the label randomness source (defaults to
	// crypto/rand).
	Random io.Reader
}

func (o Options) rowsPerTable() int {
	if o.GRR3 {
		return 3
	}
	return 4
}

// Garbled is the material sent to the evaluator: encrypted gate tables (for
// non-free gates, in gate order) and the output decode bits.
type Garbled struct {
	// Tables holds 4 rows per gate, or 3 with GRR3 (row 0 implicit).
	Tables [][]Label
	// GRR3 records whether row reduction was used (the evaluator needs it).
	GRR3 bool
	// OutputPerm[i] is the permute bit of the FALSE label of output wire i;
	// the evaluator decodes bit = permute(activeLabel) ⊕ OutputPerm[i].
	OutputPerm []byte
}

// Assignment holds the garbler's secret label pairs for the input wires.
type Assignment struct {
	// Garbler[i] is the (false,true) label pair of the garbler's i-th bit.
	Garbler [][2]Label
	// Evaluator[i] is the label pair of the evaluator's i-th bit, to be
	// transferred via OT.
	Evaluator [][2]Label
}

// gateHash derives the row pad H(A, B, gateIndex).
func gateHash(a, b Label, gate int) Label {
	h := sha256.New()
	h.Write(a[:])
	h.Write(b[:])
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(gate))
	h.Write(idx[:])
	var out Label
	copy(out[:], h.Sum(nil))
	return out
}

func randomLabel(random io.Reader) (Label, error) {
	var l Label
	if _, err := io.ReadFull(random, l[:]); err != nil {
		return Label{}, fmt.Errorf("gc: draw label: %w", err)
	}
	return l, nil
}

// Garble garbles the circuit, returning the evaluator material and the
// garbler's input label pairs.
func Garble(c *Circuit, opts Options) (*Garbled, *Assignment, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	random := opts.Random
	if random == nil {
		random = rand.Reader
	}

	// Global free-XOR offset; select bit forced to 1 so the permute bits of
	// a label pair always differ.
	delta, err := randomLabel(random)
	if err != nil {
		return nil, nil, err
	}
	delta[0] |= 1

	false0 := make([]Label, c.NumWires) // FALSE label per wire

	newWireLabel := func(w int) error {
		l, err := randomLabel(random)
		if err != nil {
			return err
		}
		false0[w] = l
		return nil
	}

	for _, w := range c.GarblerInput {
		if err := newWireLabel(w); err != nil {
			return nil, nil, err
		}
	}
	for _, w := range c.EvaluatorInput {
		if err := newWireLabel(w); err != nil {
			return nil, nil, err
		}
	}

	trueLabel := func(w int) Label { return false0[w].xor(delta) }

	g := &Garbled{GRR3: opts.GRR3}
	for gi, gate := range c.Gates {
		free := !opts.DisableFreeXOR && (gate.Kind == GateXOR || gate.Kind == GateNOT)
		if free {
			switch gate.Kind {
			case GateXOR:
				false0[gate.Out] = false0[gate.In0].xor(false0[gate.In1])
			case GateNOT:
				// FALSE of output is TRUE of input.
				false0[gate.Out] = trueLabel(gate.In0)
			}
			continue
		}

		in1 := gate.In1
		if gate.Kind == GateNOT {
			in1 = gate.In0 // degenerate second input; rows still line up
		}
		tt := gate.Kind.truthTable()

		if opts.GRR3 {
			// Garbled row reduction: pick the output labels so the row
			// addressed by select bits (0,0) encrypts to all-zero and can
			// be omitted — the evaluator recomputes it as the bare hash.
			la0, va0 := false0[gate.In0], 0
			if la0.permuteBit() == 1 {
				la0, va0 = trueLabel(gate.In0), 1
			}
			lb0, vb0 := false0[in1], 0
			if lb0.permuteBit() == 1 {
				lb0, vb0 = trueLabel(in1), 1
			}
			h00 := gateHash(la0, lb0, gi)
			if tt[va0<<1|vb0] {
				false0[gate.Out] = h00.xor(delta)
			} else {
				false0[gate.Out] = h00
			}
		} else if err := newWireLabel(gate.Out); err != nil {
			return nil, nil, err
		}

		rows := opts.rowsPerTable()
		table := make([]Label, rows)
		var filled [4]bool
		if opts.GRR3 {
			filled[0] = true // implicit row
		}
		for _, va := range []int{0, 1} {
			for _, vb := range []int{0, 1} {
				if gate.Kind == GateNOT && va != vb {
					continue // unreachable rows for the degenerate input
				}
				la := false0[gate.In0]
				if va == 1 {
					la = trueLabel(gate.In0)
				}
				lb := false0[in1]
				if vb == 1 {
					lb = trueLabel(in1)
				}
				row := la.permuteBit()<<1 | lb.permuteBit()
				if opts.GRR3 && row == 0 {
					continue // implicit
				}
				outLabel := false0[gate.Out]
				if tt[va<<1|vb] {
					outLabel = trueLabel(gate.Out)
				}
				idx := row
				if opts.GRR3 {
					idx = row - 1
				}
				table[idx] = gateHash(la, lb, gi).xor(outLabel)
				filled[row] = true
			}
		}
		// Fill unreachable rows with random junk so tables are
		// indistinguishable from fully used ones.
		for row := 0; row < 4; row++ {
			if filled[row] || (opts.GRR3 && row == 0) {
				continue
			}
			junk, err := randomLabel(random)
			if err != nil {
				return nil, nil, err
			}
			idx := row
			if opts.GRR3 {
				idx = row - 1
			}
			table[idx] = junk
		}
		g.Tables = append(g.Tables, table)
	}

	g.OutputPerm = make([]byte, len(c.Outputs))
	for i, w := range c.Outputs {
		g.OutputPerm[i] = byte(false0[w].permuteBit())
	}

	asg := &Assignment{
		Garbler:   make([][2]Label, len(c.GarblerInput)),
		Evaluator: make([][2]Label, len(c.EvaluatorInput)),
	}
	for i, w := range c.GarblerInput {
		asg.Garbler[i] = [2]Label{false0[w], trueLabel(w)}
	}
	for i, w := range c.EvaluatorInput {
		asg.Evaluator[i] = [2]Label{false0[w], trueLabel(w)}
	}
	return g, asg, nil
}

// Evaluate walks the garbled circuit with the active input labels and
// returns the active output labels. garblerLabels/evaluatorLabels are the
// single active label per input bit, in input order. useFreeXOR must match
// the garbling options; the GRR3 scheme is carried by the material itself.
func Evaluate(c *Circuit, g *Garbled, garblerLabels, evaluatorLabels []Label, useFreeXOR bool) ([]Label, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(garblerLabels) != len(c.GarblerInput) {
		return nil, fmt.Errorf("gc: got %d garbler labels, want %d", len(garblerLabels), len(c.GarblerInput))
	}
	if len(evaluatorLabels) != len(c.EvaluatorInput) {
		return nil, fmt.Errorf("gc: got %d evaluator labels, want %d", len(evaluatorLabels), len(c.EvaluatorInput))
	}

	active := make([]Label, c.NumWires)
	for i, w := range c.GarblerInput {
		active[w] = garblerLabels[i]
	}
	for i, w := range c.EvaluatorInput {
		active[w] = evaluatorLabels[i]
	}

	wantRows := 4
	if g.GRR3 {
		wantRows = 3
	}
	tableIdx := 0
	for gi, gate := range c.Gates {
		free := useFreeXOR && (gate.Kind == GateXOR || gate.Kind == GateNOT)
		if free {
			switch gate.Kind {
			case GateXOR:
				active[gate.Out] = active[gate.In0].xor(active[gate.In1])
			case GateNOT:
				active[gate.Out] = active[gate.In0] // label carries through
			}
			continue
		}
		if tableIdx >= len(g.Tables) {
			return nil, errors.New("gc: garbled material has too few tables")
		}
		table := g.Tables[tableIdx]
		if len(table) != wantRows {
			return nil, fmt.Errorf("gc: table %d has %d rows, want %d", tableIdx, len(table), wantRows)
		}
		in1 := gate.In1
		if gate.Kind == GateNOT {
			in1 = gate.In0
		}
		la, lb := active[gate.In0], active[in1]
		row := la.permuteBit()<<1 | lb.permuteBit()
		pad := gateHash(la, lb, gi)
		switch {
		case g.GRR3 && row == 0:
			active[gate.Out] = pad // implicit all-zero row
		case g.GRR3:
			active[gate.Out] = table[row-1].xor(pad)
		default:
			active[gate.Out] = table[row].xor(pad)
		}
		tableIdx++
	}
	if tableIdx != len(g.Tables) {
		return nil, errors.New("gc: garbled material has too many tables")
	}

	out := make([]Label, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = active[w]
	}
	return out, nil
}

// DecodeOutputs converts active output labels into cleartext bits using the
// garbler-provided permute bits.
func DecodeOutputs(g *Garbled, outLabels []Label) ([]bool, error) {
	if len(outLabels) != len(g.OutputPerm) {
		return nil, fmt.Errorf("gc: got %d output labels, want %d", len(outLabels), len(g.OutputPerm))
	}
	bits := make([]bool, len(outLabels))
	for i, l := range outLabels {
		bits[i] = l.permuteBit() != int(g.OutputPerm[i])
	}
	return bits, nil
}
