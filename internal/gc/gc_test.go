package gc

import (
	"context"
	"encoding/binary"
	"io"
	mrand "math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/pem-go/pem/internal/ot"
	"github.com/pem-go/pem/internal/transport"
)

func TestGreaterThanPlainTruthTable(t *testing.T) {
	circ, err := BuildGreaterThan(4)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			out, err := circ.EvalPlain(uintToBits(a, 4), uintToBits(b, 4))
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != (a > b) {
				t.Errorf("GT(%d, %d) = %v, want %v", a, b, out[0], a > b)
			}
		}
	}
}

func TestEqualsPlainTruthTable(t *testing.T) {
	circ, err := BuildEquals(3)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			out, err := circ.EvalPlain(uintToBits(a, 3), uintToBits(b, 3))
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != (a == b) {
				t.Errorf("EQ(%d, %d) = %v, want %v", a, b, out[0], a == b)
			}
		}
	}
}

func TestGreaterThanAndCount(t *testing.T) {
	// The comparator must cost exactly one AND per bit under free-XOR.
	circ, err := BuildGreaterThan(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := circ.NonFreeGates(); got != 64 {
		t.Errorf("64-bit comparator uses %d non-free gates, want 64", got)
	}
}

func TestCircuitValidateRejectsBadCircuits(t *testing.T) {
	cases := map[string]*Circuit{
		"no wires": {},
		"input out of range": {
			NumWires:     1,
			GarblerInput: []int{5},
		},
		"gate uses undriven wire": {
			NumWires:     3,
			GarblerInput: []int{0},
			Gates:        []Gate{{Kind: GateAND, In0: 0, In1: 1, Out: 2}},
		},
		"gate redrives wire": {
			NumWires:       3,
			GarblerInput:   []int{0},
			EvaluatorInput: []int{1},
			Gates:          []Gate{{Kind: GateAND, In0: 0, In1: 1, Out: 0}},
		},
		"unknown gate kind": {
			NumWires:       3,
			GarblerInput:   []int{0},
			EvaluatorInput: []int{1},
			Gates:          []Gate{{Kind: GateKind(99), In0: 0, In1: 1, Out: 2}},
		},
		"undriven output": {
			NumWires:     2,
			GarblerInput: []int{0},
			Outputs:      []int{1},
		},
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid circuit", name)
		}
	}
}

// garbleEvalLocal garbles and evaluates the circuit in-process for given
// plaintext inputs.
func garbleEvalLocal(t *testing.T, circ *Circuit, gBits, eBits []bool, opts Options) []bool {
	t.Helper()
	garbled, asg, err := Garble(circ, opts)
	if err != nil {
		t.Fatal(err)
	}
	gl := make([]Label, len(gBits))
	for i, b := range gBits {
		if b {
			gl[i] = asg.Garbler[i][1]
		} else {
			gl[i] = asg.Garbler[i][0]
		}
	}
	el := make([]Label, len(eBits))
	for i, b := range eBits {
		if b {
			el[i] = asg.Evaluator[i][1]
		} else {
			el[i] = asg.Evaluator[i][0]
		}
	}
	outLabels, err := Evaluate(circ, garbled, gl, el, !opts.DisableFreeXOR)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := DecodeOutputs(garbled, outLabels)
	if err != nil {
		t.Fatal(err)
	}
	return bits
}

func TestGarbledMatchesPlainProperty(t *testing.T) {
	circ, err := BuildGreaterThan(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(42))
	if err := quick.Check(func(a, b uint16) bool {
		gBits := uintToBits(uint64(a), 16)
		eBits := uintToBits(uint64(b), 16)
		got := garbleEvalLocal(t, circ, gBits, eBits, Options{Random: rng})
		return got[0] == (a > b)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGarbledNoFreeXORMatchesPlain(t *testing.T) {
	circ, err := BuildGreaterThan(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(43))
	for _, pair := range [][2]uint64{{0, 0}, {5, 3}, {3, 5}, {255, 255}, {128, 127}} {
		gBits := uintToBits(pair[0], 8)
		eBits := uintToBits(pair[1], 8)
		got := garbleEvalLocal(t, circ, gBits, eBits, Options{DisableFreeXOR: true, Random: rng})
		if got[0] != (pair[0] > pair[1]) {
			t.Errorf("no-free-xor GT(%d,%d) = %v", pair[0], pair[1], got[0])
		}
	}
}

func TestEqualsGarbled(t *testing.T) {
	circ, err := BuildEquals(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(44))
	for _, pair := range [][2]uint64{{7, 7}, {7, 9}, {0, 0}, {255, 0}} {
		got := garbleEvalLocal(t, circ, uintToBits(pair[0], 8), uintToBits(pair[1], 8), Options{Random: rng})
		if got[0] != (pair[0] == pair[1]) {
			t.Errorf("EQ(%d,%d) = %v", pair[0], pair[1], got[0])
		}
	}
}

func TestEvaluateRejectsWrongLabelCounts(t *testing.T) {
	circ, err := BuildGreaterThan(4)
	if err != nil {
		t.Fatal(err)
	}
	garbled, asg, err := Garble(circ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = asg
	if _, err := Evaluate(circ, garbled, nil, nil, true); err == nil {
		t.Error("Evaluate with missing labels: want error")
	}
}

func TestMaterialRoundTrip(t *testing.T) {
	circ, err := BuildGreaterThan(8)
	if err != nil {
		t.Fatal(err)
	}
	garbled, asg, err := Garble(circ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	active := make([]Label, 8)
	for i := range active {
		active[i] = asg.Garbler[i][0]
	}
	raw := encodeMaterial(garbled, active, true)
	g2, labels, freeXOR, err := decodeMaterial(raw, circ)
	if err != nil {
		t.Fatal(err)
	}
	if !freeXOR {
		t.Error("freeXOR flag lost")
	}
	if len(g2.Tables) != len(garbled.Tables) {
		t.Error("tables lost")
	}
	for i := range labels {
		if labels[i] != active[i] {
			t.Errorf("label %d mismatch", i)
		}
	}
}

func TestDecodeMaterialRejectsCorruption(t *testing.T) {
	circ, err := BuildGreaterThan(4)
	if err != nil {
		t.Fatal(err)
	}
	garbled, asg, err := Garble(circ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	active := make([]Label, 4)
	for i := range active {
		active[i] = asg.Garbler[i][0]
	}
	raw := encodeMaterial(garbled, active, true)
	for _, cut := range []int{0, 1, 3, 10, len(raw) - 1} {
		if _, _, _, err := decodeMaterial(raw[:cut], circ); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Wrong circuit (different width) must be rejected.
	other, err := BuildGreaterThan(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := decodeMaterial(raw, other); err == nil {
		t.Error("material for wrong circuit accepted")
	}
}

// runSecureCompare drives both protocol roles over an in-memory bus. The
// roles run concurrently, so each gets its own PRNG derived from the
// caller's seeded source (math/rand readers are not goroutine-safe).
func runSecureCompare(t *testing.T, a, b uint64, bits int, opts ProtocolOptions) (CompareResult, CompareResult) {
	t.Helper()
	bus := transport.NewBus(nil)
	gConn := bus.MustRegister("garbler")
	eConn := bus.MustRegister("evaluator")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	gOpts, eOpts := opts, opts
	if opts.Random != nil {
		seeded := mrand.New(mrand.NewSource(int64(mustRead64(t, opts.Random))))
		gOpts.Random = mrand.New(mrand.NewSource(seeded.Int63()))
		eOpts.Random = mrand.New(mrand.NewSource(seeded.Int63()))
	}

	type res struct {
		r   CompareResult
		err error
	}
	gc := make(chan res, 1)
	go func() {
		r, err := SecureCompareGarbler(ctx, gConn, "evaluator", "cmp", a, bits, gOpts)
		gc <- res{r, err}
	}()
	er, err := SecureCompareEvaluator(ctx, eConn, "garbler", "cmp", b, bits, eOpts)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	gr := <-gc
	if gr.err != nil {
		t.Fatalf("garbler: %v", gr.err)
	}
	return gr.r, er
}

// mustRead64 draws eight bytes from r as a derivation seed.
func mustRead64(t *testing.T, r io.Reader) uint64 {
	t.Helper()
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint64(buf[:])
}

func TestSecureCompareProtocol(t *testing.T) {
	opts := ProtocolOptions{Group: ot.TestGroup(), Random: mrand.New(mrand.NewSource(7))}
	cases := []struct {
		a, b uint64
		want CompareResult
	}{
		{5, 3, LeftGreater},
		{3, 5, NotGreater},
		{7, 7, NotGreater},
		{0, 0, NotGreater},
		{1 << 40, (1 << 40) - 1, LeftGreater},
	}
	for _, c := range cases {
		gr, er := runSecureCompare(t, c.a, c.b, 48, opts)
		if gr != c.want || er != c.want {
			t.Errorf("compare(%d, %d) = garbler %v / evaluator %v, want %v", c.a, c.b, gr, er, c.want)
		}
	}
}

func TestSecureCompareWithOTExtension(t *testing.T) {
	opts := ProtocolOptions{
		Group:          ot.TestGroup(),
		Random:         mrand.New(mrand.NewSource(8)),
		UseOTExtension: true,
	}
	gr, er := runSecureCompare(t, 100, 42, 32, opts)
	if gr != LeftGreater || er != LeftGreater {
		t.Errorf("compare(100, 42) with IKNP = %v / %v", gr, er)
	}
}

func TestSecureCompareRandomizedAgainstNative(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full protocol rounds")
	}
	opts := ProtocolOptions{Group: ot.TestGroup(), Random: mrand.New(mrand.NewSource(9))}
	rng := mrand.New(mrand.NewSource(10))
	for i := 0; i < 6; i++ {
		a := rng.Uint64() >> 16
		b := rng.Uint64() >> 16
		want := NotGreater
		if a > b {
			want = LeftGreater
		}
		gr, er := runSecureCompare(t, a, b, 48, opts)
		if gr != want || er != want {
			t.Errorf("compare(%d, %d) = %v / %v, want %v", a, b, gr, er, want)
		}
	}
}

func TestGateKindString(t *testing.T) {
	if GateXOR.String() != "XOR" || GateAND.String() != "AND" ||
		GateOR.String() != "OR" || GateNOT.String() != "NOT" {
		t.Error("GateKind strings wrong")
	}
	if GateKind(42).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func BenchmarkGarbleComparator64(b *testing.B) {
	circ, err := BuildGreaterThan(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Garble(circ, Options{Random: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGarbleComparator64NoFreeXOR(b *testing.B) {
	circ, err := BuildGreaterThan(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Garble(circ, Options{Random: rng, DisableFreeXOR: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateComparator64(b *testing.B) {
	circ, err := BuildGreaterThan(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(1))
	garbled, asg, err := Garble(circ, Options{Random: rng})
	if err != nil {
		b.Fatal(err)
	}
	gl := make([]Label, 64)
	el := make([]Label, 64)
	for i := 0; i < 64; i++ {
		gl[i] = asg.Garbler[i][i%2]
		el[i] = asg.Evaluator[i][(i+1)%2]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(circ, garbled, gl, el, true); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGRR3MatchesPlainProperty(t *testing.T) {
	circ, err := BuildGreaterThan(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(45))
	if err := quick.Check(func(a, b uint16) bool {
		gBits := uintToBits(uint64(a), 16)
		eBits := uintToBits(uint64(b), 16)
		got := garbleEvalLocal(t, circ, gBits, eBits, Options{GRR3: true, Random: rng})
		return got[0] == (a > b)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGRR3WithNotGates(t *testing.T) {
	// BuildEquals uses NOT gates; with GRR3 they garble as reduced tables
	// when free-XOR is disabled and stay free otherwise.
	circ, err := BuildEquals(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(46))
	for _, disableFX := range []bool{false, true} {
		for _, pair := range [][2]uint64{{9, 9}, {9, 10}, {0, 255}} {
			got := garbleEvalLocal(t, circ,
				uintToBits(pair[0], 8), uintToBits(pair[1], 8),
				Options{GRR3: true, DisableFreeXOR: disableFX, Random: rng})
			if got[0] != (pair[0] == pair[1]) {
				t.Errorf("freeXOR-off=%v EQ(%d,%d) = %v", disableFX, pair[0], pair[1], got[0])
			}
		}
	}
}

func TestGRR3ShrinksTables(t *testing.T) {
	circ, err := BuildGreaterThan(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(47))
	g4, _, err := Garble(circ, Options{Random: rng})
	if err != nil {
		t.Fatal(err)
	}
	g3, _, err := Garble(circ, Options{GRR3: true, Random: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(g4.Tables) != len(g3.Tables) {
		t.Fatal("table count differs")
	}
	for i := range g4.Tables {
		if len(g4.Tables[i]) != 4 || len(g3.Tables[i]) != 3 {
			t.Fatalf("row counts: %d vs %d", len(g4.Tables[i]), len(g3.Tables[i]))
		}
	}
}

func TestGRR3ProtocolEndToEnd(t *testing.T) {
	opts := ProtocolOptions{
		Group:  ot.TestGroup(),
		Random: mrand.New(mrand.NewSource(48)),
		GRR3:   true,
	}
	gr, er := runSecureCompare(t, 1000, 999, 32, opts)
	if gr != LeftGreater || er != LeftGreater {
		t.Errorf("GRR3 compare(1000, 999) = %v / %v", gr, er)
	}
	gr, er = runSecureCompare(t, 999, 1000, 32, opts)
	if gr != NotGreater || er != NotGreater {
		t.Errorf("GRR3 compare(999, 1000) = %v / %v", gr, er)
	}
}

func TestGRR3MaterialSmallerOnWire(t *testing.T) {
	circ, err := BuildGreaterThan(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(49))
	g4, asg4, err := Garble(circ, Options{Random: rng})
	if err != nil {
		t.Fatal(err)
	}
	g3, asg3, err := Garble(circ, Options{GRR3: true, Random: rng})
	if err != nil {
		t.Fatal(err)
	}
	active4 := make([]Label, 64)
	active3 := make([]Label, 64)
	for i := 0; i < 64; i++ {
		active4[i] = asg4.Garbler[i][0]
		active3[i] = asg3.Garbler[i][0]
	}
	raw4 := encodeMaterial(g4, active4, true)
	raw3 := encodeMaterial(g3, active3, true)
	saved := len(raw4) - len(raw3)
	want := 64 * LabelSize // one row per AND gate
	if saved != want {
		t.Errorf("GRR3 saved %d bytes, want %d", saved, want)
	}
}

func BenchmarkGarbleComparator64GRR3(b *testing.B) {
	circ, err := BuildGreaterThan(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Garble(circ, Options{GRR3: true, Random: rng}); err != nil {
			b.Fatal(err)
		}
	}
}
