package ot

import (
	"bytes"
	"context"
	"math/big"
	mrand "math/rand"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/transport"
)

func testConnPair(t *testing.T) (transport.Conn, transport.Conn) {
	t.Helper()
	bus := transport.NewBus(nil)
	s := bus.MustRegister("sender")
	r := bus.MustRegister("receiver")
	t.Cleanup(func() {
		s.Close()
		r.Close()
	})
	return s, r
}

func randomPairs(rng *mrand.Rand, n int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		m0 := make([]byte, KeySize)
		m1 := make([]byte, KeySize)
		rng.Read(m0)
		rng.Read(m1)
		pairs[i] = Pair{M0: m0, M1: m1}
	}
	return pairs
}

func randomChoices(rng *mrand.Rand, n int) []bool {
	choices := make([]bool, n)
	for i := range choices {
		choices[i] = rng.Intn(2) == 1
	}
	return choices
}

// runOT drives both sides concurrently and verifies the receiver got
// exactly the chosen messages.
func runOT(t *testing.T, send func(ctx context.Context) error, recv func(ctx context.Context) ([][]byte, error), pairs []Pair, choices []bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- send(ctx) }()
	got, err := recv(ctx)
	if err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("sender: %v", err)
	}
	if len(got) != len(choices) {
		t.Fatalf("got %d messages, want %d", len(got), len(choices))
	}
	for i, c := range choices {
		want := pairs[i].M0
		other := pairs[i].M1
		if c {
			want, other = other, want
		}
		if !bytes.Equal(got[i], want) {
			t.Errorf("transfer %d: wrong message", i)
		}
		if bytes.Equal(got[i], other) {
			t.Errorf("transfer %d: received the non-chosen message", i)
		}
	}
}

func TestBaseOT(t *testing.T) {
	sConn, rConn := testConnPair(t)
	grp := TestGroup()
	rng := mrand.New(mrand.NewSource(1))
	pairs := randomPairs(rng, 8)
	choices := randomChoices(rng, 8)

	runOT(t,
		func(ctx context.Context) error {
			return SendBase(ctx, sConn, "receiver", "s1", grp, mrand.New(mrand.NewSource(2)), pairs)
		},
		func(ctx context.Context) ([][]byte, error) {
			return RecvBase(ctx, rConn, "sender", "s1", grp, mrand.New(mrand.NewSource(3)), choices)
		},
		pairs, choices)
}

func TestBaseOTAllZeroAndAllOneChoices(t *testing.T) {
	for name, bit := range map[string]bool{"zeros": false, "ones": true} {
		t.Run(name, func(t *testing.T) {
			sConn, rConn := testConnPair(t)
			grp := TestGroup()
			rng := mrand.New(mrand.NewSource(4))
			pairs := randomPairs(rng, 4)
			choices := make([]bool, 4)
			for i := range choices {
				choices[i] = bit
			}
			runOT(t,
				func(ctx context.Context) error {
					return SendBase(ctx, sConn, "receiver", "s2", grp, mrand.New(mrand.NewSource(5)), pairs)
				},
				func(ctx context.Context) ([][]byte, error) {
					return RecvBase(ctx, rConn, "sender", "s2", grp, mrand.New(mrand.NewSource(6)), choices)
				},
				pairs, choices)
		})
	}
}

func TestBaseOTRejectsBadMessageLength(t *testing.T) {
	sConn, _ := testConnPair(t)
	grp := TestGroup()
	bad := []Pair{{M0: []byte("short"), M1: make([]byte, KeySize)}}
	if err := SendBase(context.Background(), sConn, "receiver", "s3", grp, nil, bad); err == nil {
		t.Error("want error for short message")
	}
}

func TestIKNPExtension(t *testing.T) {
	sConn, rConn := testConnPair(t)
	grp := TestGroup()
	rng := mrand.New(mrand.NewSource(7))
	const n = 300 // more transfers than base OTs, exercising the extension
	pairs := randomPairs(rng, n)
	choices := randomChoices(rng, n)

	runOT(t,
		func(ctx context.Context) error {
			return SendExtension(ctx, sConn, "receiver", "x1", grp, mrand.New(mrand.NewSource(8)), pairs)
		},
		func(ctx context.Context) ([][]byte, error) {
			return RecvExtension(ctx, rConn, "sender", "x1", grp, mrand.New(mrand.NewSource(9)), choices)
		},
		pairs, choices)
}

func TestIKNPSmallBatch(t *testing.T) {
	// Fewer transfers than kappa still works (m < 128).
	sConn, rConn := testConnPair(t)
	grp := TestGroup()
	rng := mrand.New(mrand.NewSource(10))
	pairs := randomPairs(rng, 3)
	choices := randomChoices(rng, 3)

	runOT(t,
		func(ctx context.Context) error {
			return SendExtension(ctx, sConn, "receiver", "x2", grp, mrand.New(mrand.NewSource(11)), pairs)
		},
		func(ctx context.Context) ([][]byte, error) {
			return RecvExtension(ctx, rConn, "sender", "x2", grp, mrand.New(mrand.NewSource(12)), choices)
		},
		pairs, choices)
}

func TestMultipleSessionsShareConn(t *testing.T) {
	// Two OT batches with different session prefixes over the same Conn
	// must not interfere.
	sConn, rConn := testConnPair(t)
	grp := TestGroup()
	rng := mrand.New(mrand.NewSource(13))
	pairsA := randomPairs(rng, 4)
	choicesA := randomChoices(rng, 4)
	pairsB := randomPairs(rng, 4)
	choicesB := randomChoices(rng, 4)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	errc := make(chan error, 2)
	go func() {
		errc <- SendBase(ctx, sConn, "receiver", "A", grp, mrand.New(mrand.NewSource(14)), pairsA)
	}()
	go func() {
		errc <- SendBase(ctx, sConn, "receiver", "B", grp, mrand.New(mrand.NewSource(15)), pairsB)
	}()

	gotB, err := RecvBase(ctx, rConn, "sender", "B", grp, mrand.New(mrand.NewSource(16)), choicesB)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := RecvBase(ctx, rConn, "sender", "A", grp, mrand.New(mrand.NewSource(17)), choicesA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range choicesA {
		want := pairsA[i].M0
		if c {
			want = pairsA[i].M1
		}
		if !bytes.Equal(gotA[i], want) {
			t.Errorf("session A transfer %d wrong", i)
		}
	}
	for i, c := range choicesB {
		want := pairsB[i].M0
		if c {
			want = pairsB[i].M1
		}
		if !bytes.Equal(gotB[i], want) {
			t.Errorf("session B transfer %d wrong", i)
		}
	}
}

func TestDefaultGroupSanity(t *testing.T) {
	grp := DefaultGroup()
	if grp.P.BitLen() != 2048 {
		t.Errorf("default group modulus is %d bits, want 2048", grp.P.BitLen())
	}
	if !grp.P.ProbablyPrime(20) {
		t.Error("default group modulus is not prime")
	}
}

func TestTestGroupSanity(t *testing.T) {
	grp := TestGroup()
	if !grp.P.ProbablyPrime(20) {
		t.Error("test group modulus is not prime")
	}
	// Safe prime: (p-1)/2 is prime too.
	q := new(big.Int).Rsh(new(big.Int).Sub(grp.P, big.NewInt(1)), 1)
	if !q.ProbablyPrime(20) {
		t.Error("test group modulus is not a safe prime")
	}
}

func TestSplitBigsErrors(t *testing.T) {
	if _, err := splitBigs([]byte{1, 2}, 1); err == nil {
		t.Error("truncated batch: want error")
	}
	payload := appendBig(nil, big.NewInt(5))
	payload = append(payload, 0xaa)
	if _, err := splitBigs(payload, 1); err == nil {
		t.Error("trailing bytes: want error")
	}
}

func BenchmarkBaseOT64(b *testing.B) {
	benchOT(b, 64, func(ctx context.Context, s transport.Conn, pairs []Pair) error {
		return SendBase(ctx, s, "receiver", "b", DefaultGroup(), nil, pairs)
	}, func(ctx context.Context, r transport.Conn, choices []bool) ([][]byte, error) {
		return RecvBase(ctx, r, "sender", "b", DefaultGroup(), nil, choices)
	})
}

func BenchmarkIKNP64(b *testing.B) {
	benchOT(b, 64, func(ctx context.Context, s transport.Conn, pairs []Pair) error {
		return SendExtension(ctx, s, "receiver", "b", DefaultGroup(), nil, pairs)
	}, func(ctx context.Context, r transport.Conn, choices []bool) ([][]byte, error) {
		return RecvExtension(ctx, r, "sender", "b", DefaultGroup(), nil, choices)
	})
}

func benchOT(b *testing.B, n int, send func(context.Context, transport.Conn, []Pair) error, recv func(context.Context, transport.Conn, []bool) ([][]byte, error)) {
	rng := mrand.New(mrand.NewSource(1))
	pairs := randomPairs(rng, n)
	choices := randomChoices(rng, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus := transport.NewBus(nil)
		s := bus.MustRegister("sender")
		r := bus.MustRegister("receiver")
		ctx := context.Background()
		errc := make(chan error, 1)
		go func() { errc <- send(ctx, s, pairs) }()
		if _, err := recv(ctx, r, choices); err != nil {
			b.Fatal(err)
		}
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}
}
