// Package ot implements 1-out-of-2 oblivious transfer, the primitive that
// lets the garbled-circuit evaluator in Private Market Evaluation
// (Protocol 2) obtain wire labels for its secret input bits without the
// garbler learning which labels were fetched.
//
// Two constructions are provided, both semi-honest:
//
//   - Base OT in the style of Chou–Orlandi ("the simplest OT"), instantiated
//     over the RFC 3526 2048-bit MODP Diffie–Hellman group using math/big.
//   - IKNP OT extension (Ishai–Kilian–Nissim–Petrank), which stretches κ=128
//     base OTs into arbitrarily many transfers using only symmetric
//     primitives (AES-CTR as PRG, SHA-256 as correlation-robust hash).
//
// Both run over a transport.Conn so they compose with the rest of the PEM
// stack, and both have in-process variants used heavily by the tests.
package ot

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/pem-go/pem/internal/transport"
)

// KeySize is the byte length of the symmetric keys/messages carried by a
// single OT (matches the garbled-circuit wire-label length).
const KeySize = 16

// Group is a prime-order-ish multiplicative DH group (Z_p^*, generator g).
type Group struct {
	P *big.Int
	G *big.Int
	// ExpBits is the exponent length drawn for secrets.
	ExpBits int
}

// modp2048 is the RFC 3526 group 14 prime.
const modp2048Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

// DefaultGroup returns the RFC 3526 2048-bit MODP group with generator 2.
func DefaultGroup() *Group {
	p, ok := new(big.Int).SetString(modp2048Hex, 16)
	if !ok {
		panic("ot: bad built-in modulus literal")
	}
	return &Group{P: p, G: big.NewInt(2), ExpBits: 256}
}

// TestGroup returns the RFC 2409 Oakley Group 1 (768-bit MODP safe prime)
// for fast tests. It is too small for real deployments.
func TestGroup() *Group {
	const hex768 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
		"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
		"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
		"E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF"
	p, ok := new(big.Int).SetString(hex768, 16)
	if !ok {
		panic("ot: bad test modulus literal")
	}
	return &Group{P: p, G: big.NewInt(2), ExpBits: 160}
}

func (g *Group) randomExponent(random io.Reader) (*big.Int, error) {
	limit := new(big.Int).Lsh(big.NewInt(1), uint(g.ExpBits))
	e, err := rand.Int(random, limit)
	if err != nil {
		return nil, fmt.Errorf("ot: draw exponent: %w", err)
	}
	return e, nil
}

// hashPoint derives a KeySize-byte key from a group element, bound to the
// transfer index.
func hashPoint(index uint64, pt *big.Int) []byte {
	h := sha256.New()
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], index)
	h.Write(idx[:])
	h.Write(pt.Bytes())
	return h.Sum(nil)[:KeySize]
}

// xorBytes returns a ⊕ b; the slices must be the same length.
func xorBytes(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("ot: xorBytes length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Pair is one OT instance from the sender's perspective: two messages of
// exactly KeySize bytes.
type Pair struct {
	M0, M1 []byte
}

// validatePairs checks message lengths.
func validatePairs(pairs []Pair) error {
	for i, p := range pairs {
		if len(p.M0) != KeySize || len(p.M1) != KeySize {
			return fmt.Errorf("ot: pair %d: messages must be %d bytes", i, KeySize)
		}
	}
	return nil
}

// --- Base OT over a transport ---

// Protocol tags.
const (
	tagBaseA   = "ot/base/A"
	tagBaseB   = "ot/base/B"
	tagBaseCts = "ot/base/cts"
)

// SendBase runs the sender side of len(pairs) base OTs with the given peer.
// session namespaces the tags so multiple OT batches can share a Conn.
func SendBase(ctx context.Context, conn transport.Conn, peer, session string, grp *Group, random io.Reader, pairs []Pair) error {
	if err := validatePairs(pairs); err != nil {
		return err
	}
	if random == nil {
		random = rand.Reader
	}
	// One exponent a and A = g^a reused across the batch (standard batching
	// for Chou–Orlandi; per-index hashing separates the derived keys).
	a, err := grp.randomExponent(random)
	if err != nil {
		return err
	}
	bigA := new(big.Int).Exp(grp.G, a, grp.P)
	if err := conn.Send(ctx, peer, session+tagBaseA, bigA.Bytes()); err != nil {
		return fmt.Errorf("ot: send A: %w", err)
	}

	// A^a is needed to peel the receiver's masking for choice bit 1.
	bigAa := new(big.Int).Exp(bigA, a, grp.P)
	bigAaInv := new(big.Int).ModInverse(bigAa, grp.P)
	if bigAaInv == nil {
		return errors.New("ot: degenerate group element")
	}

	payload, err := conn.Recv(ctx, peer, session+tagBaseB)
	if err != nil {
		return fmt.Errorf("ot: recv B batch: %w", err)
	}
	bs, err := splitBigs(payload, len(pairs))
	if err != nil {
		return err
	}

	out := make([]byte, 0, len(pairs)*2*KeySize)
	for i, bigB := range bs {
		if bigB.Sign() <= 0 || bigB.Cmp(grp.P) >= 0 {
			return fmt.Errorf("ot: receiver point %d out of range", i)
		}
		// k0 = H(B^a), k1 = H((B/A)^a) = H(B^a · A^{-a}).
		ba := new(big.Int).Exp(bigB, a, grp.P)
		k0 := hashPoint(uint64(i), ba)
		ba.Mul(ba, bigAaInv)
		ba.Mod(ba, grp.P)
		k1 := hashPoint(uint64(i), ba)
		out = append(out, xorBytes(pairs[i].M0, k0)...)
		out = append(out, xorBytes(pairs[i].M1, k1)...)
	}
	if err := conn.Send(ctx, peer, session+tagBaseCts, out); err != nil {
		return fmt.Errorf("ot: send ciphertexts: %w", err)
	}
	return nil
}

// RecvBase runs the receiver side of len(choices) base OTs and returns the
// chosen messages.
func RecvBase(ctx context.Context, conn transport.Conn, peer, session string, grp *Group, random io.Reader, choices []bool) ([][]byte, error) {
	if random == nil {
		random = rand.Reader
	}
	raw, err := conn.Recv(ctx, peer, session+tagBaseA)
	if err != nil {
		return nil, fmt.Errorf("ot: recv A: %w", err)
	}
	bigA := new(big.Int).SetBytes(raw)
	if bigA.Sign() <= 0 || bigA.Cmp(grp.P) >= 0 {
		return nil, errors.New("ot: sender point out of range")
	}

	exps := make([]*big.Int, len(choices))
	var payload []byte
	for i, c := range choices {
		b, err := grp.randomExponent(random)
		if err != nil {
			return nil, err
		}
		exps[i] = b
		bigB := new(big.Int).Exp(grp.G, b, grp.P)
		if c {
			bigB.Mul(bigB, bigA)
			bigB.Mod(bigB, grp.P)
		}
		payload = appendBig(payload, bigB)
	}
	if err := conn.Send(ctx, peer, session+tagBaseB, payload); err != nil {
		return nil, fmt.Errorf("ot: send B batch: %w", err)
	}

	raw, err = conn.Recv(ctx, peer, session+tagBaseCts)
	if err != nil {
		return nil, fmt.Errorf("ot: recv ciphertexts: %w", err)
	}
	if len(raw) != len(choices)*2*KeySize {
		return nil, fmt.Errorf("ot: ciphertext batch has %d bytes, want %d", len(raw), len(choices)*2*KeySize)
	}

	out := make([][]byte, len(choices))
	for i, c := range choices {
		// k_c = H(A^b).
		kc := hashPoint(uint64(i), new(big.Int).Exp(bigA, exps[i], grp.P))
		ct := raw[i*2*KeySize : (i+1)*2*KeySize]
		if c {
			out[i] = xorBytes(ct[KeySize:], kc)
		} else {
			out[i] = xorBytes(ct[:KeySize], kc)
		}
	}
	return out, nil
}

// --- big.Int batch framing helpers ---

func appendBig(dst []byte, x *big.Int) []byte {
	b := x.Bytes()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	dst = append(dst, lenBuf[:]...)
	return append(dst, b...)
}

func splitBigs(src []byte, n int) ([]*big.Int, error) {
	out := make([]*big.Int, 0, n)
	for i := 0; i < n; i++ {
		if len(src) < 4 {
			return nil, errors.New("ot: truncated batch")
		}
		l := binary.BigEndian.Uint32(src)
		src = src[4:]
		if uint32(len(src)) < l {
			return nil, errors.New("ot: truncated batch element")
		}
		out = append(out, new(big.Int).SetBytes(src[:l]))
		src = src[l:]
	}
	if len(src) != 0 {
		return nil, errors.New("ot: trailing bytes in batch")
	}
	return out, nil
}
