package ot

import (
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/pem-go/pem/internal/transport"
)

// kappa is the computational security parameter of the IKNP extension: the
// number of base OTs and the width (in bits) of the correlation vector s.
const kappa = 128

// Protocol tags for the extension phase.
const (
	tagExtU = "ot/iknp/u"
	tagExtY = "ot/iknp/y"
)

// SendExtension runs the sender side of an IKNP OT extension transferring
// len(pairs) messages. Internally the roles of the base OT are reversed:
// the extension sender acts as base-OT receiver with a random correlation
// vector s.
func SendExtension(ctx context.Context, conn transport.Conn, peer, session string, grp *Group, random io.Reader, pairs []Pair) error {
	if err := validatePairs(pairs); err != nil {
		return err
	}
	if random == nil {
		random = rand.Reader
	}
	m := len(pairs)
	colBytes := (m + 7) / 8

	// Draw the secret correlation vector s.
	sBits := make([]bool, kappa)
	var sRow [kappa / 8]byte
	if _, err := io.ReadFull(random, sRow[:]); err != nil {
		return fmt.Errorf("ot: draw s: %w", err)
	}
	for i := 0; i < kappa; i++ {
		sBits[i] = sRow[i/8]&(1<<(i%8)) != 0
	}

	// Base OTs, reversed roles: we receive seeds k_i^{s_i}.
	seeds, err := RecvBase(ctx, conn, peer, session+"/base", grp, random, sBits)
	if err != nil {
		return fmt.Errorf("ot: extension base phase: %w", err)
	}

	// Receive the masked columns u_i and build Q column by column:
	// q_i = PRG(k_i^{s_i}) ⊕ s_i·u_i  (so q_i = t_i ⊕ s_i·r).
	uRaw, err := conn.Recv(ctx, peer, session+tagExtU)
	if err != nil {
		return fmt.Errorf("ot: recv u columns: %w", err)
	}
	if len(uRaw) != kappa*colBytes {
		return fmt.Errorf("ot: u matrix has %d bytes, want %d", len(uRaw), kappa*colBytes)
	}
	qCols := make([][]byte, kappa)
	for i := 0; i < kappa; i++ {
		col, err := prg(seeds[i], colBytes)
		if err != nil {
			return err
		}
		if sBits[i] {
			u := uRaw[i*colBytes : (i+1)*colBytes]
			for b := range col {
				col[b] ^= u[b]
			}
		}
		qCols[i] = col
	}
	qRows := transposeToRows(qCols, m)

	// y_j^0 = m_j^0 ⊕ H(j, q_j); y_j^1 = m_j^1 ⊕ H(j, q_j ⊕ s).
	out := make([]byte, 0, m*2*KeySize)
	for j := 0; j < m; j++ {
		h0 := rowHash(uint64(j), qRows[j])
		qs := xorBytes(qRows[j], sRow[:])
		h1 := rowHash(uint64(j), qs)
		out = append(out, xorBytes(pairs[j].M0, h0)...)
		out = append(out, xorBytes(pairs[j].M1, h1)...)
	}
	if err := conn.Send(ctx, peer, session+tagExtY, out); err != nil {
		return fmt.Errorf("ot: send y pairs: %w", err)
	}
	return nil
}

// RecvExtension runs the receiver side of the IKNP OT extension for the
// given choice bits and returns the chosen messages.
func RecvExtension(ctx context.Context, conn transport.Conn, peer, session string, grp *Group, random io.Reader, choices []bool) ([][]byte, error) {
	if random == nil {
		random = rand.Reader
	}
	m := len(choices)
	colBytes := (m + 7) / 8

	// Choice bits packed as the r column.
	rCol := make([]byte, colBytes)
	for j, c := range choices {
		if c {
			rCol[j/8] |= 1 << (j % 8)
		}
	}

	// Seed pairs for the reversed base OTs.
	basePairs := make([]Pair, kappa)
	for i := range basePairs {
		k0 := make([]byte, KeySize)
		k1 := make([]byte, KeySize)
		if _, err := io.ReadFull(random, k0); err != nil {
			return nil, fmt.Errorf("ot: draw seed: %w", err)
		}
		if _, err := io.ReadFull(random, k1); err != nil {
			return nil, fmt.Errorf("ot: draw seed: %w", err)
		}
		basePairs[i] = Pair{M0: k0, M1: k1}
	}
	if err := SendBase(ctx, conn, peer, session+"/base", grp, random, basePairs); err != nil {
		return nil, fmt.Errorf("ot: extension base phase: %w", err)
	}

	// t_i = PRG(k_i^0); u_i = t_i ⊕ PRG(k_i^1) ⊕ r.
	tCols := make([][]byte, kappa)
	uOut := make([]byte, 0, kappa*colBytes)
	for i := 0; i < kappa; i++ {
		t, err := prg(basePairs[i].M0, colBytes)
		if err != nil {
			return nil, err
		}
		tCols[i] = t
		g1, err := prg(basePairs[i].M1, colBytes)
		if err != nil {
			return nil, err
		}
		u := make([]byte, colBytes)
		for b := 0; b < colBytes; b++ {
			u[b] = t[b] ^ g1[b] ^ rCol[b]
		}
		uOut = append(uOut, u...)
	}
	if err := conn.Send(ctx, peer, session+tagExtU, uOut); err != nil {
		return nil, fmt.Errorf("ot: send u columns: %w", err)
	}

	yRaw, err := conn.Recv(ctx, peer, session+tagExtY)
	if err != nil {
		return nil, fmt.Errorf("ot: recv y pairs: %w", err)
	}
	if len(yRaw) != m*2*KeySize {
		return nil, fmt.Errorf("ot: y batch has %d bytes, want %d", len(yRaw), m*2*KeySize)
	}

	tRows := transposeToRows(tCols, m)
	out := make([][]byte, m)
	for j := 0; j < m; j++ {
		h := rowHash(uint64(j), tRows[j])
		ct := yRaw[j*2*KeySize : (j+1)*2*KeySize]
		if choices[j] {
			out[j] = xorBytes(ct[KeySize:], h)
		} else {
			out[j] = xorBytes(ct[:KeySize], h)
		}
	}
	return out, nil
}

// prg expands a KeySize seed into n pseudorandom bytes with AES-128-CTR.
func prg(seed []byte, n int) ([]byte, error) {
	block, err := aes.NewCipher(seed)
	if err != nil {
		return nil, fmt.Errorf("ot: prg: %w", err)
	}
	out := make([]byte, n)
	var iv [aes.BlockSize]byte
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, out)
	return out, nil
}

// transposeToRows converts kappa columns of m bits into m rows of kappa
// bits (kappa/8 bytes each).
func transposeToRows(cols [][]byte, m int) [][]byte {
	rows := make([][]byte, m)
	rowLen := kappa / 8
	backing := make([]byte, m*rowLen)
	for j := 0; j < m; j++ {
		rows[j] = backing[j*rowLen : (j+1)*rowLen]
	}
	for i := 0; i < kappa; i++ {
		col := cols[i]
		for j := 0; j < m; j++ {
			if col[j/8]&(1<<(j%8)) != 0 {
				rows[j][i/8] |= 1 << (i % 8)
			}
		}
	}
	return rows
}

// rowHash is the correlation-robust hash H(j, row) truncated to KeySize.
func rowHash(j uint64, row []byte) []byte {
	h := sha256.New()
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], j)
	h.Write(idx[:])
	h.Write(row)
	return h.Sum(nil)[:KeySize]
}
