package dataset

import (
	"reflect"
	"testing"
)

func testFleetConfig() FleetConfig {
	return FleetConfig{
		Coalitions:        4,
		HomesPerCoalition: 6,
		Windows:           240,
		Seed:              77,
	}
}

func TestGenerateFleetShapeAndIDs(t *testing.T) {
	tr, err := GenerateFleet(testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Homes) != 24 || tr.Windows != 240 {
		t.Fatalf("fleet shape: %d homes, %d windows", len(tr.Homes), tr.Windows)
	}
	ids := make(map[string]bool)
	for _, h := range tr.Homes {
		if ids[h.ID] {
			t.Fatalf("duplicate fleet ID %q", h.ID)
		}
		ids[h.ID] = true
	}
	if tr.Homes[0].ID != "c00-home-000" || tr.Homes[23].ID != "c03-home-005" {
		t.Errorf("block IDs: first=%q last=%q", tr.Homes[0].ID, tr.Homes[23].ID)
	}
	// The default rotation labels each block.
	want := DefaultFleetScenarios()
	for b := 0; b < 4; b++ {
		if got := tr.Homes[b*6].Scenario; got != want[b] {
			t.Errorf("block %d scenario = %q, want %q", b, got, want[b])
		}
	}
	// Agents derived from the fleet must validate (the engine will).
	for _, a := range tr.Agents() {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateFleetDeterministic(t *testing.T) {
	a, err := GenerateFleet(testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFleet(testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same fleet seed produced different fleets")
	}
	cfg := testFleetConfig()
	cfg.Seed++
	c, err := GenerateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Gen, c.Gen) {
		t.Fatal("different fleet seeds produced identical generation")
	}
}

// TestScenarioContrast checks the presets actually differentiate the
// blocks: the sunny block generates more than the overcast and winter
// blocks, and the storage block has (near-)universal batteries.
func TestScenarioContrast(t *testing.T) {
	tr, err := GenerateFleet(testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	blockGen := make([]float64, 4)
	for b := 0; b < 4; b++ {
		for h := b * 6; h < (b+1)*6; h++ {
			for w := 0; w < tr.Windows; w++ {
				blockGen[b] += tr.Gen[h][w]
			}
		}
	}
	sunny, overcast, winter := blockGen[0], blockGen[1], blockGen[2]
	if sunny <= overcast || sunny <= winter {
		t.Errorf("sunny block should out-generate overcast/winter: %v", blockGen)
	}
	batteries := 0
	for h := 18; h < 24; h++ {
		if tr.Homes[h].BatteryCapKWh > 0 {
			batteries++
		}
	}
	if batteries < 4 {
		t.Errorf("storage block has only %d/6 batteries", batteries)
	}
}

func TestGenerateFleetRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]FleetConfig{
		"no-coalitions": {HomesPerCoalition: 2, Windows: 4},
		"no-homes":      {Coalitions: 2, Windows: 4},
		"bad-scenario":  {Coalitions: 1, HomesPerCoalition: 2, Windows: 4, Scenarios: []Scenario{"monsoon"}},
	} {
		if _, err := GenerateFleet(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTraceSelect(t *testing.T) {
	tr, err := Generate(Config{Homes: 5, Windows: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tr.Select([]int{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Homes) != 2 || sub.Homes[0].ID != tr.Homes[4].ID || sub.Homes[1].ID != tr.Homes[1].ID {
		t.Fatalf("selection order wrong: %+v", sub.Homes)
	}
	if &sub.Gen[0][0] != &tr.Gen[4][0] {
		t.Error("Select copied trace data instead of sharing slices")
	}
	in, err := sub.WindowInputs(3)
	if err != nil {
		t.Fatal(err)
	}
	if in[1].Generation != tr.Gen[1][3] {
		t.Error("selected window inputs disagree with source trace")
	}
	for _, bad := range [][]int{nil, {5}, {-1}, {1, 1}} {
		if _, err := tr.Select(bad); err == nil {
			t.Errorf("Select(%v) accepted", bad)
		}
	}
}
