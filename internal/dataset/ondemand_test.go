package dataset

import (
	"testing"
)

// sameTrace asserts two traces carry identical rosters and day data,
// materializing b as needed.
func sameTrace(t *testing.T, label string, a, b *Trace) {
	t.Helper()
	b.Materialize()
	if len(a.Homes) != len(b.Homes) || a.Windows != b.Windows || a.StartHour != b.StartHour {
		t.Fatalf("%s: shape differs: %d/%d homes, %d/%d windows", label, len(a.Homes), len(b.Homes), a.Windows, b.Windows)
	}
	for h := range a.Homes {
		if a.Homes[h] != b.Homes[h] {
			t.Fatalf("%s: home %d statics differ: %+v vs %+v", label, h, a.Homes[h], b.Homes[h])
		}
		for w := 0; w < a.Windows; w++ {
			if a.Gen[h][w] != b.Gen[h][w] || a.Load[h][w] != b.Load[h][w] || a.Battery[h][w] != b.Battery[h][w] {
				t.Fatalf("%s: home %d window %d day data differs", label, h, w)
			}
		}
	}
}

// TestOnDemandBitIdentical is the lazy-synthesis contract: an OnDemand
// trace materializes to exactly the eager trace of the same config, for
// plain Generate, fleet synthesis, and a full churn evolution.
func TestOnDemandBitIdentical(t *testing.T) {
	cfg := Config{Homes: 12, Windows: 40, Seed: 7}
	eager, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OnDemand = true
	lazy, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.Lazy() {
		t.Fatal("OnDemand trace reports eager")
	}
	sameTrace(t, "generate", eager, lazy)
	if lazy.Lazy() {
		t.Error("materialized trace still reports lazy")
	}

	fc := FleetConfig{Coalitions: 3, HomesPerCoalition: 4, Windows: 24, Seed: 11, StartHour: 11}
	eagerFleet, err := GenerateFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	fc.OnDemand = true
	lazyFleet, err := GenerateFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "fleet", eagerFleet, lazyFleet)

	cc := ChurnConfig{Epochs: 3, JoinRate: 0.2, DepartRate: 0.1, FailRate: 0.05}
	fc.OnDemand = false
	eagerEvo, err := Evolve(fc, cc)
	if err != nil {
		t.Fatal(err)
	}
	fc.OnDemand = true
	lazyEvo, err := Evolve(fc, cc)
	if err != nil {
		t.Fatal(err)
	}
	if len(eagerEvo.Epochs) != len(lazyEvo.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(eagerEvo.Epochs), len(lazyEvo.Epochs))
	}
	for e := range eagerEvo.Epochs {
		sameTrace(t, "evolve", eagerEvo.Epochs[e].Trace, lazyEvo.Epochs[e].Trace)
	}
}

// TestOnDemandSelectIsolation checks the streaming memory model: a
// Select-ed sub-trace materializes into itself, leaving the parent lazy, so
// day data lives only as long as the coalition sub-traces using it.
func TestOnDemandSelectIsolation(t *testing.T) {
	cfg := Config{Homes: 10, Windows: 16, Seed: 3, OnDemand: true}
	lazy, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OnDemand = false
	eager, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sub, err := lazy.Select([]int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	in, err := sub.WindowInputs(5)
	if err != nil {
		t.Fatal(err)
	}
	if in[0].Generation != eager.Gen[4][5] || in[1].Load != eager.Load[2][5] {
		t.Error("sub-trace day data does not match the eager counterpart")
	}
	if !lazy.Lazy() {
		t.Error("parent materialized as a side effect of the sub-trace")
	}
	for h, row := range lazy.Gen {
		if row != nil {
			t.Errorf("parent home %d materialized", h)
		}
	}
}
