package dataset

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Fleet synthesis: the coalition grid trades a heterogeneous fleet, not one
// uniform neighborhood. Each coalition-sized block of homes is generated
// under a scenario preset (see scenarios.go) — a weather/equipment profile
// — from a seed derived from the single fleet seed, so one int64 reproduces
// the whole fleet bit-for-bit while coalitions still differ qualitatively:
// a sunny solar suburb exports at noon while a winter block imports all
// day, which is exactly what gives cross-coalition settlement something to
// net.

// DefaultFleetScenarios is the rotation GenerateFleet assigns when the
// caller does not pick presets per block: one exporter-leaning preset, two
// importer-leaning ones and a storage-heavy mix, so a default fleet has
// residuals on both sides to settle.
func DefaultFleetScenarios() []Scenario {
	return []Scenario{ScenarioSunny, ScenarioOvercast, ScenarioWinter, ScenarioStorageHeavy}
}

// FleetConfig controls heterogeneous fleet synthesis.
type FleetConfig struct {
	// Coalitions is the number of scenario blocks.
	Coalitions int
	// HomesPerCoalition is the block size.
	HomesPerCoalition int
	// Windows is the number of trading windows (shared by every block).
	Windows int
	// Seed drives all randomness; per-block seeds are derived from it.
	Seed int64
	// StartHour is the local hour of window 0 (default 7). Short
	// benchmark fleets set it near noon so the few windows they run have
	// sun to trade.
	StartHour float64
	// Scenarios assigns a preset per block, cycling when shorter than
	// Coalitions. Defaults to DefaultFleetScenarios().
	Scenarios []Scenario
	// OnDemand defers every home's day synthesis (see Config.OnDemand):
	// the fleet trace carries only statics until homes are materialized,
	// which is how the scale benchmarks hold 100k+-home fleets.
	OnDemand bool
}

// GenerateFleet synthesizes a fleet of Coalitions × HomesPerCoalition homes
// as one combined trace. Block b occupies home indices [b·H, (b+1)·H) with
// IDs "c<b>-home-<i>", so the grid's fixed partitioner recovers the
// scenario-pure blocks while the random and balanced partitioners remix
// them. Fully deterministic given Seed.
func GenerateFleet(cfg FleetConfig) (*Trace, error) {
	if cfg.Coalitions <= 0 {
		return nil, errors.New("dataset: Coalitions must be positive")
	}
	if cfg.HomesPerCoalition <= 0 {
		return nil, errors.New("dataset: HomesPerCoalition must be positive")
	}
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = DefaultFleetScenarios()
	}

	var fleet *Trace
	for b := 0; b < cfg.Coalitions; b++ {
		blockCfg, err := ScenarioConfig(scenarios[b%len(scenarios)], cfg.HomesPerCoalition, cfg.Windows, deriveSeed(cfg.Seed, b))
		if err != nil {
			return nil, err
		}
		blockCfg.IDPrefix = fmt.Sprintf("c%02d-home-", b)
		blockCfg.StartHour = cfg.StartHour
		blockCfg.OnDemand = cfg.OnDemand
		block, err := Generate(blockCfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: block %d (%s): %w", b, blockCfg.Scenario, err)
		}
		if fleet == nil {
			fleet = block
			continue
		}
		if block.StartHour != fleet.StartHour || block.Windows != fleet.Windows {
			return nil, fmt.Errorf("dataset: block %d day shape diverges from block 0", b)
		}
		fleet.Homes = append(fleet.Homes, block.Homes...)
		fleet.Gen = append(fleet.Gen, block.Gen...)
		fleet.Load = append(fleet.Load, block.Load...)
		fleet.Battery = append(fleet.Battery, block.Battery...)
		fleet.synth = append(fleet.synth, block.synth...)
	}
	return fleet, nil
}

// deriveSeed expands the fleet seed into one independent stream per block.
// FNV over (seed, block) keeps the mapping stable across runs and platforms
// without pulling in crypto for what is test-data synthesis.
func deriveSeed(seed int64, block int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "pem/fleet/%d/%d", seed, block)
	return int64(h.Sum64())
}
