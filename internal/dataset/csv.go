package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the trace as CSV with one row per (home, window):
//
//	home_id,solar_cap_kw,base_load_kw,k,epsilon,battery_cap_kwh,window,gen_kwh,load_kwh,battery_kwh
//
// This matches the flat layout of the UMass Smart* per-home exports, so
// downstream users can swap in the real dataset.
func (t *Trace) WriteCSV(w io.Writer) error {
	t.Materialize()
	cw := csv.NewWriter(w)
	header := []string{"home_id", "solar_cap_kw", "base_load_kw", "k", "epsilon", "battery_cap_kwh", "window", "gen_kwh", "load_kwh", "battery_kwh"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for h, home := range t.Homes {
		for win := 0; win < t.Windows; win++ {
			rec := []string{
				home.ID,
				f(home.SolarCapKW),
				f(home.BaseLoadKW),
				f(home.K),
				f(home.Epsilon),
				f(home.BatteryCapKWh),
				strconv.Itoa(win),
				f(t.Gen[h][win]),
				f(t.Load[h][win]),
				f(t.Battery[h][win]),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("dataset: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or an equivalently shaped
// real-data export).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("dataset: csv has no data rows")
	}
	if len(records[0]) != 10 {
		return nil, fmt.Errorf("dataset: csv has %d columns, want 10", len(records[0]))
	}

	tr := &Trace{StartHour: 7}
	homeIdx := make(map[string]int)
	type row struct {
		home   int
		window int
		gen    float64
		load   float64
		batt   float64
	}
	var rows []row
	maxWindow := -1

	for lineNo, rec := range records[1:] {
		parse := func(col int) (float64, error) {
			v, err := strconv.ParseFloat(rec[col], 64)
			if err != nil {
				return 0, fmt.Errorf("dataset: line %d col %d: %w", lineNo+2, col+1, err)
			}
			return v, nil
		}
		id := rec[0]
		h, ok := homeIdx[id]
		if !ok {
			solar, err := parse(1)
			if err != nil {
				return nil, err
			}
			base, err := parse(2)
			if err != nil {
				return nil, err
			}
			k, err := parse(3)
			if err != nil {
				return nil, err
			}
			eps, err := parse(4)
			if err != nil {
				return nil, err
			}
			cap, err := parse(5)
			if err != nil {
				return nil, err
			}
			h = len(tr.Homes)
			homeIdx[id] = h
			tr.Homes = append(tr.Homes, Home{
				ID: id, SolarCapKW: solar, BaseLoadKW: base, K: k, Epsilon: eps, BatteryCapKWh: cap,
			})
		}
		win, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad window: %w", lineNo+2, err)
		}
		if win > maxWindow {
			maxWindow = win
		}
		gen, err := parse(7)
		if err != nil {
			return nil, err
		}
		load, err := parse(8)
		if err != nil {
			return nil, err
		}
		batt, err := parse(9)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{home: h, window: win, gen: gen, load: load, batt: batt})
	}

	tr.Windows = maxWindow + 1
	tr.Gen = make([][]float64, len(tr.Homes))
	tr.Load = make([][]float64, len(tr.Homes))
	tr.Battery = make([][]float64, len(tr.Homes))
	for h := range tr.Homes {
		tr.Gen[h] = make([]float64, tr.Windows)
		tr.Load[h] = make([]float64, tr.Windows)
		tr.Battery[h] = make([]float64, tr.Windows)
	}
	for _, rw := range rows {
		if rw.window < 0 || rw.window >= tr.Windows {
			return nil, fmt.Errorf("dataset: window %d out of range", rw.window)
		}
		tr.Gen[rw.home][rw.window] = rw.gen
		tr.Load[rw.home][rw.window] = rw.load
		tr.Battery[rw.home][rw.window] = rw.batt
	}
	return tr, nil
}
