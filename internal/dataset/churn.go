package dataset

import (
	"errors"
	"fmt"
	"hash/fnv"
	mrand "math/rand"
)

// Churn synthesis: the live grid (internal/grid/epoch.go) runs a multi-day
// simulation split into epochs, and real distributed-energy fleets are
// dynamic — prosumers join, leave and fail between days. This file
// synthesizes that dynamism as a deterministic evolution: a base fleet plus
// a seeded schedule of churn events per epoch boundary, with a fresh day of
// trace data per epoch for every agent present in it. Surviving agents keep
// their static parameters (ID, panel nameplate, preference, battery) across
// epochs; only their weather and load are redrawn, from a per-(epoch, home)
// stream so the whole evolution is bit-reproducible from one seed no matter
// how rosters shift around an agent.

// ChurnEventKind classifies a fleet-membership change at an epoch boundary.
type ChurnEventKind string

// The churn event kinds.
const (
	// ChurnJoin marks a new prosumer entering the fleet at an epoch
	// boundary, with freshly synthesized static parameters under one of the
	// configured scenario presets.
	ChurnJoin ChurnEventKind = "join"
	// ChurnDepart marks a planned departure: the agent announces it is
	// leaving, finishes its current epoch, and settles its cumulative
	// position on exit.
	ChurnDepart ChurnEventKind = "depart"
	// ChurnFail marks a crash-style failure: the agent vanishes at the
	// boundary without announcement. Settlement-wise it is frozen exactly
	// like a departure — the grid operator closes the book either way — but
	// harnesses report the two separately.
	ChurnFail ChurnEventKind = "fail"
)

// ChurnEvent is one fleet-membership change, applied at the boundary
// entering Epoch (so Epoch ≥ 1; the base fleet of epoch 0 has no events).
type ChurnEvent struct {
	// Epoch is the epoch the event takes effect in: a joined agent first
	// trades in Epoch, a departed or failed agent last traded in Epoch−1.
	Epoch int
	// Kind is the membership change.
	Kind ChurnEventKind
	// ID is the affected agent.
	ID string
}

// ChurnConfig controls the churn model of an Evolve run. All rates are
// per-agent-per-boundary probabilities drawn from a seeded stream, so the
// same config always produces the same schedule.
type ChurnConfig struct {
	// Epochs is the total number of epochs to simulate, including the base
	// epoch 0 (required, ≥ 1). Churn applies at the Epochs−1 boundaries.
	Epochs int
	// JoinRate is the expected number of joins per present agent per
	// boundary (e.g. 0.1 grows a 20-home fleet by ~2 homes per epoch).
	JoinRate float64
	// DepartRate is the per-agent probability of a planned departure at
	// each boundary.
	DepartRate float64
	// FailRate is the per-agent probability of a crash-style failure at
	// each boundary. DepartRate+FailRate must stay below 1.
	FailRate float64
	// MinHomes is the roster floor (default 4): departures and failures are
	// vetoed, deterministically and in roster order, when they would drop
	// the fleet below it — a live market needs counterparties.
	MinHomes int
	// Seed drives the churn schedule and the joining agents' synthesis
	// (default: the fleet seed). Per-boundary and per-join streams are
	// derived from it.
	Seed int64
	// Scenarios assigns presets to joining agents, cycling in join order
	// (default DefaultFleetScenarios()).
	Scenarios []Scenario
}

// Validate checks the churn configuration.
func (c ChurnConfig) Validate() error {
	if c.Epochs < 1 {
		return fmt.Errorf("dataset: churn Epochs must be ≥ 1, got %d", c.Epochs)
	}
	if c.JoinRate < 0 || c.DepartRate < 0 || c.FailRate < 0 {
		return errors.New("dataset: churn rates must be non-negative")
	}
	if c.DepartRate+c.FailRate >= 1 {
		return fmt.Errorf("dataset: DepartRate+FailRate = %v leaves no survivors", c.DepartRate+c.FailRate)
	}
	if c.MinHomes < 0 {
		return fmt.Errorf("dataset: negative MinHomes %d", c.MinHomes)
	}
	return nil
}

// EpochFleet is one epoch of an evolution: the roster present for that
// epoch's trading day with a full day of per-window data, plus the
// membership changes applied at the boundary entering it.
type EpochFleet struct {
	// Epoch is the epoch index (0 = the base fleet).
	Epoch int
	// Trace holds the epoch's roster and its day of per-window data.
	// Surviving homes keep their static parameters from earlier epochs but
	// get a fresh day of generation/load/battery.
	Trace *Trace
	// Joined, Departed and Failed list the agent IDs whose join/depart/fail
	// events took effect at this epoch's boundary (all empty for epoch 0).
	// Departed and Failed agents were present in the previous epoch and are
	// absent from this one.
	Joined, Departed, Failed []string
}

// Evolution is a deterministic multi-epoch fleet history: one EpochFleet
// per epoch and the flattened churn schedule. It is the input to the live
// grid's epoch loop.
type Evolution struct {
	// Epochs holds one entry per epoch, in order.
	Epochs []EpochFleet
	// Events is the full churn schedule, ordered by epoch and, within an
	// epoch, joins after departures/failures in roster order.
	Events []ChurnEvent
}

// Evolve synthesizes a multi-epoch fleet: epoch 0 is GenerateFleet(fleet),
// and each later epoch applies seeded churn (joins, planned departures,
// crash failures) to the previous roster and redraws every present home's
// day of trace data. Fully deterministic given the two configs: the churn
// schedule derives from the churn seed, each epoch's day data from
// per-(epoch, home) streams, and each joining agent's static parameters
// from a per-(boundary, join) stream — so any (epoch, home) slice of the
// evolution is independent of everything else that happened.
func Evolve(fleet FleetConfig, churn ChurnConfig) (*Evolution, error) {
	if err := churn.Validate(); err != nil {
		return nil, err
	}
	if churn.MinHomes == 0 {
		churn.MinHomes = 4
	}
	if churn.Seed == 0 {
		churn.Seed = fleet.Seed
	}
	scenarios := churn.Scenarios
	if len(scenarios) == 0 {
		scenarios = DefaultFleetScenarios()
	}

	base, err := GenerateFleet(fleet)
	if err != nil {
		return nil, err
	}
	evo := &Evolution{Epochs: make([]EpochFleet, 0, churn.Epochs)}
	evo.Epochs = append(evo.Epochs, EpochFleet{Epoch: 0, Trace: base})

	roster := append([]Home(nil), base.Homes...)
	joinSerial := 0 // total joins so far, cycles the scenario rotation
	for e := 1; e < churn.Epochs; e++ {
		rng := mrand.New(mrand.NewSource(deriveChurnSeed(churn.Seed, fmt.Sprintf("boundary/%d", e))))

		// Draw leavers in roster order: one uniform per agent decides
		// depart / fail / stay, so the schedule is stable under any later
		// change to the join model.
		leaving := make(map[string]ChurnEventKind, len(roster))
		for _, h := range roster {
			switch u := rng.Float64(); {
			case u < churn.DepartRate:
				leaving[h.ID] = ChurnDepart
			case u < churn.DepartRate+churn.FailRate:
				leaving[h.ID] = ChurnFail
			}
		}
		// Join count: expectation JoinRate·|roster| with probabilistic
		// rounding from the same stream.
		expect := churn.JoinRate * float64(len(roster))
		nJoin := int(expect)
		if rng.Float64() < expect-float64(nJoin) {
			nJoin++
		}
		// Roster floor: veto leavers in roster order until the surviving
		// fleet (plus joins) stays at or above MinHomes.
		for _, h := range roster {
			if len(roster)-len(leaving)+nJoin >= churn.MinHomes {
				break
			}
			delete(leaving, h.ID)
		}

		ef := EpochFleet{Epoch: e}
		var next []Home
		for _, h := range roster {
			switch leaving[h.ID] {
			case ChurnDepart:
				ef.Departed = append(ef.Departed, h.ID)
				evo.Events = append(evo.Events, ChurnEvent{Epoch: e, Kind: ChurnDepart, ID: h.ID})
			case ChurnFail:
				ef.Failed = append(ef.Failed, h.ID)
				evo.Events = append(evo.Events, ChurnEvent{Epoch: e, Kind: ChurnFail, ID: h.ID})
			default:
				next = append(next, h)
			}
		}
		for j := 0; j < nJoin; j++ {
			home, err := synthesizeJoin(churn.Seed, e, j, scenarios[joinSerial%len(scenarios)])
			if err != nil {
				return nil, err
			}
			joinSerial++
			next = append(next, home)
			ef.Joined = append(ef.Joined, home.ID)
			evo.Events = append(evo.Events, ChurnEvent{Epoch: e, Kind: ChurnJoin, ID: home.ID})
		}
		roster = next

		tr, err := epochTrace(churn.Seed, e, roster, base.Windows, base.StartHour, fleet.OnDemand)
		if err != nil {
			return nil, err
		}
		ef.Trace = tr
		evo.Epochs = append(evo.Epochs, ef)
	}
	return evo, nil
}

// synthesizeJoin generates the static parameters of the j-th agent joining
// at the boundary entering epoch e, under the given scenario preset, from
// its own derived stream. Its day data is drawn later by epochTrace like
// any other roster member's.
func synthesizeJoin(seed int64, e, j int, s Scenario) (Home, error) {
	cfg, err := ScenarioConfig(s, 1, 1, deriveChurnSeed(seed, fmt.Sprintf("join/%d/%d", e, j)))
	if err != nil {
		return Home{}, err
	}
	one, err := Generate(cfg)
	if err != nil {
		return Home{}, fmt.Errorf("dataset: join %d at epoch %d (%s): %w", j, e, s, err)
	}
	home := one.Homes[0]
	home.ID = fmt.Sprintf("e%02d-home-%02d", e, j)
	return home, nil
}

// epochTrace draws a fresh day of per-window data for every roster member
// from its per-(epoch, home) stream, under the day shape of the home's own
// scenario preset. Static parameters are carried over unchanged. With
// onDemand the days stay unmaterialized synthesizers (see Config.OnDemand)
// — the streams were per-(epoch, home) already, so a lazy evolution is
// bit-identical to an eager one.
func epochTrace(seed int64, e int, roster []Home, windows int, startHour float64, onDemand bool) (*Trace, error) {
	tr := &Trace{
		Homes:     append([]Home(nil), roster...),
		Windows:   windows,
		StartHour: startHour,
		Gen:       make([][]float64, len(roster)),
		Load:      make([][]float64, len(roster)),
		Battery:   make([][]float64, len(roster)),
	}
	if onDemand {
		tr.synth = make([]synthFn, len(roster))
	}
	for i, h := range roster {
		cfg, err := ScenarioConfig(h.Scenario, 1, windows, 0)
		if err != nil {
			return nil, err
		}
		cfg.StartHour = startHour
		cfg = cfg.withDefaults()
		h, daySeed := h, deriveChurnSeed(seed, fmt.Sprintf("day/%d/%s", e, h.ID))
		synth := func() (gen, load, batt []float64) {
			return cfg.synthesizeDay(h, mrand.New(mrand.NewSource(daySeed)))
		}
		if onDemand {
			tr.synth[i] = synth
		} else {
			tr.Gen[i], tr.Load[i], tr.Battery[i] = synth()
		}
	}
	return tr, nil
}

// deriveChurnSeed expands the evolution seed into independent streams keyed
// by a domain string ("boundary/3", "day/2/c00-home-001", …), FNV-hashed
// like deriveSeed so the mapping is stable across runs and platforms.
func deriveChurnSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "pem/evolve/%d/%s", seed, key)
	return int64(h.Sum64())
}
