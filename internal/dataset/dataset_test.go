package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/pem-go/pem/internal/market"
)

func smallTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Generate(Config{Homes: 20, Windows: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateShapes(t *testing.T) {
	tr := smallTrace(t)
	if len(tr.Homes) != 20 {
		t.Fatalf("homes = %d", len(tr.Homes))
	}
	if tr.Windows != 120 {
		t.Fatalf("windows = %d", tr.Windows)
	}
	for h := range tr.Homes {
		if len(tr.Gen[h]) != 120 || len(tr.Load[h]) != 120 || len(tr.Battery[h]) != 120 {
			t.Fatalf("home %d has ragged series", h)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Homes: 5, Windows: 60, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Homes: 5, Windows: 60, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 5; h++ {
		for w := 0; w < 60; w++ {
			if a.Gen[h][w] != b.Gen[h][w] || a.Load[h][w] != b.Load[h][w] {
				t.Fatalf("seed 42 not deterministic at (%d,%d)", h, w)
			}
		}
	}
	c, err := Generate(Config{Homes: 5, Windows: 60, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for w := 0; w < 60 && same; w++ {
		if a.Gen[0][w] != c.Gen[0][w] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical generation")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Homes: 0, Windows: 10}); err == nil {
		t.Error("zero homes accepted")
	}
	if _, err := Generate(Config{Homes: 10, Windows: 0}); err == nil {
		t.Error("zero windows accepted")
	}
}

func TestPhysicalPlausibility(t *testing.T) {
	tr, err := Generate(Config{Homes: 30, Windows: 720, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for h, home := range tr.Homes {
		level := 0.0
		for w := 0; w < tr.Windows; w++ {
			if tr.Gen[h][w] < 0 {
				t.Fatalf("negative generation at (%d,%d)", h, w)
			}
			if tr.Load[h][w] <= 0 {
				t.Fatalf("non-positive load at (%d,%d)", h, w)
			}
			// Per-minute energy bounded by capacity.
			if tr.Gen[h][w] > home.SolarCapKW/60+1e-9 {
				t.Fatalf("generation exceeds panel capacity at (%d,%d)", h, w)
			}
			level += tr.Battery[h][w]
			if level < -1e-9 || level > home.BatteryCapKWh+1e-9 {
				t.Fatalf("battery level %v outside [0,%v] at (%d,%d)", level, home.BatteryCapKWh, h, w)
			}
			if home.BatteryCapKWh == 0 && tr.Battery[h][w] != 0 {
				t.Fatalf("batteryless home charges at (%d,%d)", h, w)
			}
		}
	}
}

func TestDayEdgeGenerationNearZero(t *testing.T) {
	// The first and last windows must have far less generation than
	// midday — this is what pins the Fig 6a price to retail at the edges.
	tr, err := Generate(Config{Homes: 50, Windows: 720, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sumAt := func(w int) float64 {
		var s float64
		for h := range tr.Homes {
			s += tr.Gen[h][w]
		}
		return s
	}
	edge := sumAt(0) + sumAt(tr.Windows-1)
	mid := sumAt(tr.Windows / 2)
	if edge > mid/4 {
		t.Errorf("edge generation %v not well below midday %v", edge, mid)
	}
}

func TestCoalitionChurn(t *testing.T) {
	// Fig 4 shape: more buyers than sellers early, sellers grow by midday.
	tr, err := Generate(Config{Homes: 100, Windows: 720, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	count := func(w int) (sellers, buyers int) {
		ins, err := tr.WindowInputs(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range ins {
			switch market.ClassifyRole(in.NetEnergy()) {
			case market.RoleSeller:
				sellers++
			case market.RoleBuyer:
				buyers++
			}
		}
		return
	}
	s0, b0 := count(0)
	sMid, _ := count(tr.Windows / 2)
	if s0 >= b0 {
		t.Errorf("window 0: %d sellers vs %d buyers; expected buyer-dominated", s0, b0)
	}
	if sMid <= s0 {
		t.Errorf("midday sellers %d not above morning %d", sMid, s0)
	}
}

func TestAgentsConversion(t *testing.T) {
	tr := smallTrace(t)
	agents := tr.Agents()
	if len(agents) != len(tr.Homes) {
		t.Fatal("agent count mismatch")
	}
	for i, a := range agents {
		if err := a.Validate(); err != nil {
			t.Errorf("agent %d invalid: %v", i, err)
		}
		if a.ID != tr.Homes[i].ID {
			t.Errorf("agent %d ID mismatch", i)
		}
	}
}

func TestWindowInputsBounds(t *testing.T) {
	tr := smallTrace(t)
	if _, err := tr.WindowInputs(-1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := tr.WindowInputs(tr.Windows); err == nil {
		t.Error("out-of-range window accepted")
	}
	ins, err := tr.WindowInputs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != len(tr.Homes) {
		t.Error("inputs length mismatch")
	}
}

func TestSubset(t *testing.T) {
	tr := smallTrace(t)
	sub, err := tr.Subset(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Homes) != 5 || len(sub.Gen) != 5 {
		t.Error("subset shapes wrong")
	}
	if _, err := tr.Subset(0); err == nil {
		t.Error("zero subset accepted")
	}
	if _, err := tr.Subset(100); err == nil {
		t.Error("oversized subset accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := Generate(Config{Homes: 4, Windows: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Homes) != 4 || back.Windows != 10 {
		t.Fatalf("round trip shapes: %d homes, %d windows", len(back.Homes), back.Windows)
	}
	for h := range tr.Homes {
		if back.Homes[h].ID != tr.Homes[h].ID {
			t.Errorf("home %d id mismatch", h)
		}
		if math.Abs(back.Homes[h].K-tr.Homes[h].K) > 1e-12 {
			t.Errorf("home %d K mismatch", h)
		}
		for w := 0; w < tr.Windows; w++ {
			if math.Abs(back.Gen[h][w]-tr.Gen[h][w]) > 1e-12 {
				t.Errorf("gen mismatch at (%d,%d)", h, w)
			}
			if math.Abs(back.Battery[h][w]-tr.Battery[h][w]) > 1e-12 {
				t.Errorf("battery mismatch at (%d,%d)", h, w)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"header only": "home_id,solar_cap_kw,base_load_kw,k,epsilon,battery_cap_kwh,window,gen_kwh,load_kwh,battery_kwh\n",
		"wrong width": "a,b\n1,2\n",
		"bad number":  "home_id,solar_cap_kw,base_load_kw,k,epsilon,battery_cap_kwh,window,gen_kwh,load_kwh,battery_kwh\nh1,x,1,1,0.9,0,0,0.1,0.1,0\n",
		"bad window":  "home_id,solar_cap_kw,base_load_kw,k,epsilon,battery_cap_kwh,window,gen_kwh,load_kwh,battery_kwh\nh1,1,1,1,0.9,0,zz,0.1,0.1,0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestScenarios(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			tr, err := GenerateScenario(s, 40, 240, 17)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Homes) != 40 || tr.Windows != 240 {
				t.Fatal("shape wrong")
			}
		})
	}
	if _, err := GenerateScenario("volcanic", 10, 10, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestScenarioMarketRegimes(t *testing.T) {
	// The presets must actually produce distinct market regimes: sunny
	// days push supply past demand (extreme markets); overcast days stay
	// demand-dominated.
	count := func(s Scenario) (extremeish, generalish int) {
		tr, err := GenerateScenario(s, 60, 720, 23)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < tr.Windows; w++ {
			var supply, demand float64
			ins, err := tr.WindowInputs(w)
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range ins {
				net := in.NetEnergy()
				if net > 0 {
					supply += net
				} else {
					demand += -net
				}
			}
			if supply == 0 || demand == 0 {
				continue
			}
			if supply >= demand {
				extremeish++
			} else {
				generalish++
			}
		}
		return
	}
	sunnyExtreme, sunnyGeneral := count(ScenarioSunny)
	overcastExtreme, overcastGeneral := count(ScenarioOvercast)
	if sunnyExtreme < 50 || sunnyExtreme < sunnyGeneral {
		t.Errorf("sunny scenario not supply-dominated: %d extreme vs %d general", sunnyExtreme, sunnyGeneral)
	}
	if overcastExtreme > overcastGeneral {
		t.Errorf("overcast scenario extreme-dominated: %d vs %d", overcastExtreme, overcastGeneral)
	}
}

func TestSolarFraction(t *testing.T) {
	tr, err := Generate(Config{Homes: 200, Windows: 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	withPanels := 0
	for _, h := range tr.Homes {
		if h.SolarCapKW > 0 {
			withPanels++
		}
	}
	// Default fraction 0.85 ± sampling noise.
	if withPanels < 150 || withPanels > 195 {
		t.Errorf("%d/200 homes have panels, want ≈170", withPanels)
	}
	// Panel-less homes never generate.
	for h, home := range tr.Homes {
		if home.SolarCapKW != 0 {
			continue
		}
		for w := 0; w < tr.Windows; w++ {
			if tr.Gen[h][w] != 0 {
				t.Fatalf("panel-less home %d generated at window %d", h, w)
			}
		}
	}
}
