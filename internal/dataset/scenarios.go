package dataset

// Scenario presets. The paper evaluates a single day of traces; these
// presets vary the weather and fleet composition so the benchmark harness
// and tests can exercise market regimes the base day rarely reaches —
// notably sustained extreme markets (supply ≥ demand), which only occur
// when generation strongly dominates load.

// Scenario identifies a preset configuration.
type Scenario string

// Available scenarios.
const (
	// ScenarioBase matches the paper's setting: modest solar penetration,
	// demand-dominated (general markets with occasional extremes midday).
	ScenarioBase Scenario = "base"
	// ScenarioSunny is a clear high-generation day with oversized panels:
	// extreme markets dominate the midday hours.
	ScenarioSunny Scenario = "sunny"
	// ScenarioOvercast is a heavily clouded day: generation rarely covers
	// load, so nearly every window is a general market or seller-less.
	ScenarioOvercast Scenario = "overcast"
	// ScenarioWinter has a short daylight span and high evening load:
	// long seller-less stretches at both ends of the trading day.
	ScenarioWinter Scenario = "winter"
	// ScenarioStorageHeavy equips every home with a battery, shifting
	// midday surplus into the evening.
	ScenarioStorageHeavy Scenario = "storage-heavy"
)

// Scenarios lists all presets.
func Scenarios() []Scenario {
	return []Scenario{ScenarioBase, ScenarioSunny, ScenarioOvercast, ScenarioWinter, ScenarioStorageHeavy}
}

// ScenarioConfig returns a generator config for the preset.
func ScenarioConfig(s Scenario, homes, windows int, seed int64) (Config, error) {
	cfg := Config{Homes: homes, Windows: windows, Seed: seed, Scenario: s}
	switch s {
	case ScenarioBase, "":
		// Defaults.
	case ScenarioSunny:
		cfg.SolarCapMinKW = 6
		cfg.SolarCapMaxKW = 14
		cfg.BaseLoadMinKW = 0.2
		cfg.BaseLoadMaxKW = 0.8
		cfg.SolarFraction = 0.999 // effectively everyone has panels
		cfg.CloudFloor = 0.7      // clear sky: attenuation stays high
	case ScenarioOvercast:
		cfg.SolarCapMinKW = 0.8
		cfg.SolarCapMaxKW = 2.5
		cfg.BaseLoadMinKW = 0.7
		cfg.BaseLoadMaxKW = 2.0
		cfg.SolarFraction = 0.7
		cfg.CloudFloor = 0.15 // heavy deck: attenuation pinned low
		cfg.CloudCeil = 0.45
	case ScenarioWinter:
		cfg.SunriseHour = 8.2
		cfg.SunsetHour = 16.8
		cfg.SolarCapMinKW = 2
		cfg.SolarCapMaxKW = 6
		cfg.BaseLoadMinKW = 0.6
		cfg.BaseLoadMaxKW = 1.8
		cfg.CloudCeil = 0.75 // low sun never reaches clear-sky yield
	case ScenarioStorageHeavy:
		cfg.BatteryFraction = 0.95
		cfg.BatteryCapMinKWh = 6
		cfg.BatteryCapMaxKWh = 16
	default:
		return Config{}, &UnknownScenarioError{Scenario: s}
	}
	return cfg, nil
}

// GenerateScenario synthesizes a trace for a named preset.
func GenerateScenario(s Scenario, homes, windows int, seed int64) (*Trace, error) {
	cfg, err := ScenarioConfig(s, homes, windows, seed)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// UnknownScenarioError is returned for unrecognized preset names.
type UnknownScenarioError struct {
	// Scenario is the unrecognized preset name.
	Scenario Scenario
}

// Error implements the error interface.
func (e *UnknownScenarioError) Error() string {
	return "dataset: unknown scenario " + string(e.Scenario)
}
