package dataset

import (
	"math"
	"testing"
)

func testEvolution(t *testing.T, churn ChurnConfig) *Evolution {
	t.Helper()
	evo, err := Evolve(FleetConfig{
		Coalitions:        3,
		HomesPerCoalition: 4,
		Windows:           3,
		Seed:              77,
	}, churn)
	if err != nil {
		t.Fatal(err)
	}
	return evo
}

func TestEvolveDeterministic(t *testing.T) {
	churn := ChurnConfig{Epochs: 4, JoinRate: 0.2, DepartRate: 0.15, FailRate: 0.1}
	a := testEvolution(t, churn)
	b := testEvolution(t, churn)
	if len(a.Epochs) != 4 {
		t.Fatalf("%d epochs, want 4", len(a.Epochs))
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts diverge: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	for e := range a.Epochs {
		ta, tb := a.Epochs[e].Trace, b.Epochs[e].Trace
		if len(ta.Homes) != len(tb.Homes) {
			t.Fatalf("epoch %d roster sizes diverge", e)
		}
		for h := range ta.Homes {
			if ta.Homes[h] != tb.Homes[h] {
				t.Fatalf("epoch %d home %d diverged", e, h)
			}
			for w := 0; w < ta.Windows; w++ {
				if ta.Gen[h][w] != tb.Gen[h][w] || ta.Load[h][w] != tb.Load[h][w] || ta.Battery[h][w] != tb.Battery[h][w] {
					t.Fatalf("epoch %d home %d window %d trace diverged", e, h, w)
				}
			}
		}
	}
}

// TestEvolveChurnApplied: with aggressive rates over several epochs, the
// evolution must actually produce all three event kinds, remove leavers
// from later rosters, keep IDs unique, and preserve survivors' static
// parameters while redrawing their day data.
func TestEvolveChurnApplied(t *testing.T) {
	evo := testEvolution(t, ChurnConfig{Epochs: 5, JoinRate: 0.3, DepartRate: 0.2, FailRate: 0.15})
	var joins, departs, fails int
	for _, ev := range evo.Events {
		switch ev.Kind {
		case ChurnJoin:
			joins++
		case ChurnDepart:
			departs++
		case ChurnFail:
			fails++
		}
	}
	if joins == 0 || departs == 0 || fails == 0 {
		t.Fatalf("churn mix incomplete: %d joins, %d departs, %d fails", joins, departs, fails)
	}

	for e := 1; e < len(evo.Epochs); e++ {
		prev, cur := evo.Epochs[e-1].Trace, evo.Epochs[e].Trace
		prevByID := make(map[string]int, len(prev.Homes))
		for i, h := range prev.Homes {
			prevByID[h.ID] = i
		}
		seen := make(map[string]bool, len(cur.Homes))
		for i, h := range cur.Homes {
			if seen[h.ID] {
				t.Fatalf("epoch %d: duplicate ID %s", e, h.ID)
			}
			seen[h.ID] = true
			if j, ok := prevByID[h.ID]; ok {
				if prev.Homes[j] != h {
					t.Errorf("epoch %d: survivor %s static params changed", e, h.ID)
				}
				same := true
				for w := 0; w < cur.Windows; w++ {
					if cur.Gen[i][w] != prev.Gen[j][w] || cur.Load[i][w] != prev.Load[j][w] {
						same = false
					}
				}
				if same {
					t.Errorf("epoch %d: survivor %s day data not redrawn", e, h.ID)
				}
			}
		}
		for _, id := range append(evo.Epochs[e].Departed, evo.Epochs[e].Failed...) {
			if seen[id] {
				t.Errorf("epoch %d: leaver %s still on roster", e, id)
			}
			if _, ok := prevByID[id]; !ok {
				t.Errorf("epoch %d: leaver %s was not present before", e, id)
			}
		}
		for _, id := range evo.Epochs[e].Joined {
			if !seen[id] {
				t.Errorf("epoch %d: join %s missing from roster", e, id)
			}
			if _, ok := prevByID[id]; ok {
				t.Errorf("epoch %d: join %s already present before", e, id)
			}
		}
	}
}

// TestEvolveRosterFloor: brutal departure rates must not shrink the fleet
// below MinHomes — leavers are vetoed deterministically instead.
func TestEvolveRosterFloor(t *testing.T) {
	evo := testEvolution(t, ChurnConfig{Epochs: 6, DepartRate: 0.45, FailRate: 0.4, MinHomes: 5})
	for _, ef := range evo.Epochs {
		if len(ef.Trace.Homes) < 5 {
			t.Fatalf("epoch %d roster %d below floor 5", ef.Epoch, len(ef.Trace.Homes))
		}
	}
}

// TestEvolveTraceSane: every epoch's trace must produce valid market agents
// and finite window inputs end to end.
func TestEvolveTraceSane(t *testing.T) {
	evo := testEvolution(t, ChurnConfig{Epochs: 3, JoinRate: 0.25, DepartRate: 0.2})
	for _, ef := range evo.Epochs {
		for _, a := range ef.Trace.Agents() {
			if err := a.Validate(); err != nil {
				t.Fatalf("epoch %d: %v", ef.Epoch, err)
			}
		}
		for w := 0; w < ef.Trace.Windows; w++ {
			inputs, err := ef.Trace.WindowInputs(w)
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range inputs {
				if math.IsNaN(in.Generation) || math.IsInf(in.Generation, 0) || in.Generation < 0 {
					t.Fatalf("epoch %d home %d window %d: bad generation %v", ef.Epoch, i, w, in.Generation)
				}
			}
		}
	}
}

func TestEvolveRejectsBadConfig(t *testing.T) {
	fleet := FleetConfig{Coalitions: 1, HomesPerCoalition: 4, Windows: 2, Seed: 1}
	if _, err := Evolve(fleet, ChurnConfig{Epochs: 0}); err == nil {
		t.Error("accepted zero epochs")
	}
	if _, err := Evolve(fleet, ChurnConfig{Epochs: 2, DepartRate: 0.6, FailRate: 0.5}); err == nil {
		t.Error("accepted depart+fail ≥ 1")
	}
	if _, err := Evolve(fleet, ChurnConfig{Epochs: 2, JoinRate: -0.1}); err == nil {
		t.Error("accepted negative join rate")
	}
}
