// Package dataset synthesizes the workload substrate for the evaluation.
//
// The paper uses one day of real solar generation and household load traces
// for 300 smart homes from the UMass Trace Repository (Smart*), sampled per
// minute from 07:00 to 19:00 (720 trading windows). That dataset is not
// redistributable here, so this package generates a synthetic equivalent
// that exercises the same code paths and produces the same qualitative
// market dynamics (DESIGN.md §4):
//
//   - solar output follows a clear-sky bell curve between sunrise and
//     sunset, scaled by a per-home panel capacity and modulated by an AR(1)
//     cloud process, so generation is ≈0 at the edges of the trading day
//     (price pinned at the retail rate, Fig 6a) and peaks midday;
//   - household load is a base level plus morning and evening Gaussian
//     peaks plus noise, so most homes are buyers early and late, and the
//     seller coalition grows toward midday (coalition churn, Fig 4);
//   - an optional battery policy charges a fraction of midday surplus and
//     discharges against evening deficit, bounded by per-home capacity.
//
// Generation is fully deterministic given the seed.
package dataset

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	mrand "math/rand"

	"github.com/pem-go/pem/internal/market"
)

// Config controls trace synthesis.
type Config struct {
	// Homes is the number of smart homes (the paper sweeps 100–300).
	Homes int
	// Windows is the number of one-minute trading windows (720 = 07:00
	// to 19:00).
	Windows int
	// Seed drives all randomness.
	Seed int64

	// StartHour is the local hour of window 0 (default 7).
	StartHour float64
	// SunriseHour and SunsetHour bound solar production (defaults
	// 6.5/19.5).
	SunriseHour, SunsetHour float64

	// SolarCapMinKW and SolarCapMaxKW bound per-home panel capacity
	// (defaults 2 and 9 kW).
	SolarCapMinKW, SolarCapMaxKW float64

	// CloudFloor and CloudCeil bound the AR(1) cloud-attenuation process
	// (defaults 0.25 and 1.0). A scenario preset narrows the band: an
	// overcast day lives near the floor, a clear one near the ceiling.
	CloudFloor, CloudCeil float64

	// SolarFraction is the share of homes with panels (default 0.85).
	// Panel-less homes remain buyers all day, which keeps the buyer
	// coalition populated through the midday surplus — the Fig. 4 shape —
	// and gives the Fig. 6(c) savings a demand side to act on. Set to a
	// tiny positive value (not 0, which means "default") to disable.
	SolarFraction float64

	// BaseLoadMinKW and BaseLoadMaxKW bound the per-home base load
	// (defaults 0.3 and 1.2 kW).
	BaseLoadMinKW, BaseLoadMaxKW float64

	// KMin and KMax bound the preference parameter k_i (defaults 60 and
	// 110, which places the unclamped Stackelberg price near the paper's
	// [90,110] band; the Fig 6b experiment overrides k per tracked
	// seller).
	KMin, KMax float64

	// EpsilonMin and EpsilonMax bound the battery loss coefficient
	// (defaults 0.75 and 0.95).
	EpsilonMin, EpsilonMax float64

	// BatteryFraction of homes have a battery (default 0.3); capacities
	// are drawn in [BatteryCapMinKWh, BatteryCapMaxKWh] (defaults 2 and
	// 10 kWh).
	BatteryFraction float64
	// BatteryCapMinKWh and BatteryCapMaxKWh bound per-home battery
	// capacity (defaults 2 and 10 kWh).
	BatteryCapMinKWh, BatteryCapMaxKWh float64

	// IDPrefix prefixes home IDs (default "home-"); fleet synthesis gives
	// each coalition its own prefix so IDs stay unique fleet-wide.
	IDPrefix string

	// OnDemand defers day synthesis: Generate returns a lazy trace whose
	// Gen/Load/Battery rows stay nil until a home is materialized (by
	// WindowInputs, Materialize, or a Select-ed sub-trace's first use).
	// Static parameters are always synthesized eagerly — partitioners need
	// them — and each home's day comes from its own derived stream, so a
	// lazy trace is bit-identical to its eager counterpart no matter which
	// homes materialize in which order. This is what lets a streaming grid
	// hold a million-home day as O(homes) statics plus O(in-flight
	// coalitions) day data.
	OnDemand bool

	// Scenario labels the homes generated under this config (informational;
	// see the scenario presets in fleet.go).
	Scenario Scenario
}

func (c Config) withDefaults() Config {
	if c.StartHour == 0 {
		c.StartHour = 7
	}
	if c.SunriseHour == 0 {
		c.SunriseHour = 6.5
	}
	if c.SunsetHour == 0 {
		c.SunsetHour = 19.5
	}
	if c.SolarCapMinKW == 0 {
		c.SolarCapMinKW = 2
	}
	if c.SolarCapMaxKW == 0 {
		c.SolarCapMaxKW = 9
	}
	if c.SolarFraction == 0 {
		c.SolarFraction = 0.85
	}
	if c.BaseLoadMinKW == 0 {
		c.BaseLoadMinKW = 0.3
	}
	if c.BaseLoadMaxKW == 0 {
		c.BaseLoadMaxKW = 1.2
	}
	if c.KMin == 0 {
		c.KMin = 60
	}
	if c.KMax == 0 {
		c.KMax = 110
	}
	if c.EpsilonMin == 0 {
		c.EpsilonMin = 0.75
	}
	if c.EpsilonMax == 0 {
		c.EpsilonMax = 0.95
	}
	if c.BatteryFraction == 0 {
		c.BatteryFraction = 0.3
	}
	if c.CloudFloor == 0 {
		c.CloudFloor = 0.25
	}
	if c.CloudCeil == 0 {
		c.CloudCeil = 1
	}
	if c.BatteryCapMinKWh == 0 {
		c.BatteryCapMinKWh = 2
	}
	if c.BatteryCapMaxKWh == 0 {
		c.BatteryCapMaxKWh = 10
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "home-"
	}
	return c
}

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.Homes <= 0 {
		return errors.New("dataset: Homes must be positive")
	}
	if c.Windows <= 0 {
		return errors.New("dataset: Windows must be positive")
	}
	if c.CloudFloor < 0 || c.CloudFloor > c.CloudCeil || c.CloudCeil > 1 {
		return fmt.Errorf("dataset: cloud band [%v, %v] outside 0 ≤ floor ≤ ceil ≤ 1", c.CloudFloor, c.CloudCeil)
	}
	if c.BatteryCapMinKWh > c.BatteryCapMaxKWh {
		return fmt.Errorf("dataset: battery capacity band [%v, %v] inverted", c.BatteryCapMinKWh, c.BatteryCapMaxKWh)
	}
	return nil
}

// Home describes one smart home's static parameters. The first five fields
// are public metadata (a grid partitioner may read them; see internal/grid);
// the per-window trace data stays private to the protocols.
type Home struct {
	// ID is the home's unique agent identifier.
	ID string
	// SolarCapKW is the panel nameplate capacity (0 = no panels).
	SolarCapKW float64
	// BaseLoadKW is the contracted base load.
	BaseLoadKW float64
	// K is the utility preference parameter k_i (private).
	K float64
	// Epsilon is the battery loss coefficient ε_i (private).
	Epsilon float64
	// BatteryCapKWh is the battery capacity (0 = no battery).
	BatteryCapKWh float64
	// Scenario is the weather/equipment preset the home was synthesized
	// under (empty for plain Generate calls).
	Scenario Scenario
}

// NetCapacityKW is the home's public production-minus-baseload rating — the
// only net-balance signal a privacy-preserving partitioner is allowed to
// use (panel nameplate and contracted base load are public; actual
// generation and load are not).
func (h Home) NetCapacityKW() float64 { return h.SolarCapKW - h.BaseLoadKW }

// synthFn materializes one home's day of generation, load and battery data
// from that home's private derived stream.
type synthFn func() (gen, load, batt []float64)

// Trace is a full day of per-window data for a fleet of homes.
type Trace struct {
	// Homes is the fleet roster with static parameters.
	Homes []Home
	// Windows is the number of trading windows in the day.
	Windows int
	// StartHour is the local time of window 0.
	StartHour float64
	// Gen[h][w], Load[h][w] and Battery[h][w] are home h's generation,
	// load and battery schedule in window w (kWh per window). On a lazy
	// trace (Config.OnDemand) a home's rows are nil until materialized.
	Gen, Load, Battery [][]float64

	// synth holds the pending per-home day synthesizers of a lazy trace
	// (nil entries once materialized; nil slice for eager traces). Entries
	// are self-contained closures over the home's statics and derived
	// stream, so Select can hand them to sub-traces that materialize
	// independently of the parent.
	synth []synthFn
}

// Lazy reports whether the trace still has unmaterialized homes.
func (t *Trace) Lazy() bool {
	for _, s := range t.synth {
		if s != nil {
			return true
		}
	}
	return false
}

// materialize fills home h's day rows if they are still pending.
// Materialization is not synchronized: lazy traces are single-owner by
// design (each coalition materializes its own Select-ed sub-trace).
func (t *Trace) materialize(h int) {
	if t.synth == nil || t.synth[h] == nil {
		return
	}
	t.Gen[h], t.Load[h], t.Battery[h] = t.synth[h]()
	t.synth[h] = nil
}

// Materialize synthesizes every still-pending home's day data, turning a
// lazy trace into its eager, bit-identical counterpart.
func (t *Trace) Materialize() {
	for h := range t.synth {
		t.materialize(h)
	}
	t.synth = nil
}

// Generate synthesizes a trace.
func Generate(cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := mrand.New(mrand.NewSource(cfg.Seed))

	tr := &Trace{
		Homes:     make([]Home, cfg.Homes),
		Windows:   cfg.Windows,
		StartHour: cfg.StartHour,
		Gen:       make([][]float64, cfg.Homes),
		Load:      make([][]float64, cfg.Homes),
		Battery:   make([][]float64, cfg.Homes),
	}

	// Statics come first, all from the root stream; each home's day is then
	// drawn from its own derived stream (deriveHomeSeed). Splitting the
	// streams this way is what makes lazy synthesis possible: any home's
	// day can be materialized on demand without replaying anyone else's
	// draws, and eager and lazy traces are bit-identical by construction.
	for h := 0; h < cfg.Homes; h++ {
		home := Home{
			ID:         fmt.Sprintf("%s%03d", cfg.IDPrefix, h),
			BaseLoadKW: uniform(rng, cfg.BaseLoadMinKW, cfg.BaseLoadMaxKW),
			K:          uniform(rng, cfg.KMin, cfg.KMax),
			Epsilon:    uniform(rng, cfg.EpsilonMin, cfg.EpsilonMax),
			Scenario:   cfg.Scenario,
		}
		if rng.Float64() < cfg.SolarFraction {
			home.SolarCapKW = uniform(rng, cfg.SolarCapMinKW, cfg.SolarCapMaxKW)
		}
		if rng.Float64() < cfg.BatteryFraction {
			home.BatteryCapKWh = uniform(rng, cfg.BatteryCapMinKWh, cfg.BatteryCapMaxKWh)
		}
		tr.Homes[h] = home
	}
	if cfg.OnDemand {
		tr.synth = make([]synthFn, cfg.Homes)
	}
	for h := 0; h < cfg.Homes; h++ {
		home, daySeed := tr.Homes[h], deriveHomeSeed(cfg.Seed, h)
		synth := func() (gen, load, batt []float64) {
			return cfg.synthesizeDay(home, mrand.New(mrand.NewSource(daySeed)))
		}
		if cfg.OnDemand {
			tr.synth[h] = synth
		} else {
			tr.Gen[h], tr.Load[h], tr.Battery[h] = synth()
		}
	}
	return tr, nil
}

// deriveHomeSeed expands the trace seed into one independent day stream per
// home, FNV-hashed like fleet.go's deriveSeed so the mapping is stable
// across runs and platforms.
func deriveHomeSeed(seed int64, home int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "pem/home/%d/%d", seed, home)
	return int64(h.Sum64())
}

// synthesizeDay generates one home's day of per-window generation, load and
// battery data from the given randomness stream. The home's static
// parameters are fixed inputs; only the weather, load jitter and battery
// schedule are drawn. Generate feeds it each home's share of the trace
// stream; the churn layer (churn.go) re-invokes it with a per-(epoch, home)
// stream so a surviving agent gets a fresh day per epoch while its static
// parameters persist. The receiver must have defaults applied.
func (cfg Config) synthesizeDay(home Home, rng *mrand.Rand) (gen, load, batt []float64) {
	gen = make([]float64, cfg.Windows)
	load = make([]float64, cfg.Windows)
	batt = make([]float64, cfg.Windows)

	// AR(1) cloud attenuation in [CloudFloor, CloudCeil], starting in
	// the upper part of the band.
	cloudBand := cfg.CloudCeil - cfg.CloudFloor
	cloud := cfg.CloudFloor + cloudBand*(0.6+0.4*rng.Float64())
	// Morning/evening load peaks with per-home jitter.
	morning := 7.5 + rng.NormFloat64()*0.4
	evening := 18.2 + rng.NormFloat64()*0.5
	morningAmp := home.BaseLoadKW * (1.0 + rng.Float64())
	eveningAmp := home.BaseLoadKW * (1.5 + rng.Float64())
	level := 0.0 // battery state of charge (kWh)

	for w := 0; w < cfg.Windows; w++ {
		hour := cfg.StartHour + float64(w)/60

		// Solar: clear-sky bell shaped by daylight fraction.
		var sunKW float64
		if hour > cfg.SunriseHour && hour < cfg.SunsetHour {
			frac := (hour - cfg.SunriseHour) / (cfg.SunsetHour - cfg.SunriseHour)
			sunKW = home.SolarCapKW * math.Pow(math.Sin(math.Pi*frac), 1.4)
		}
		cloud = clamp(0.92*cloud+0.08*(cfg.CloudFloor+cloudBand*rng.Float64()), cfg.CloudFloor, cfg.CloudCeil)
		genKW := sunKW * cloud

		// Load: base + peaks + noise, never negative.
		loadKW := home.BaseLoadKW +
			morningAmp*gauss(hour, morning, 0.8) +
			eveningAmp*gauss(hour, evening, 1.1) +
			rng.NormFloat64()*0.05*home.BaseLoadKW
		if loadKW < 0.05 {
			loadKW = 0.05
		}

		genKWh := genKW / 60
		loadKWh := loadKW / 60
		gen[w] = genKWh
		load[w] = loadKWh

		// Battery policy: charge 30% of surplus, discharge 30% of
		// deficit, within capacity.
		var b float64
		if home.BatteryCapKWh > 0 {
			surplus := genKWh - loadKWh
			if surplus > 0 {
				b = math.Min(0.3*surplus, home.BatteryCapKWh-level)
			} else {
				b = -math.Min(0.3*-surplus, level)
			}
			level += b
		}
		batt[w] = b
	}
	return gen, load, batt
}

func uniform(rng *mrand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func gauss(x, mean, sigma float64) float64 {
	d := (x - mean) / sigma
	return math.Exp(-0.5 * d * d)
}

// Agents converts the homes into market agents.
func (t *Trace) Agents() []market.Agent {
	out := make([]market.Agent, len(t.Homes))
	for i, h := range t.Homes {
		out[i] = market.Agent{
			ID:              h.ID,
			K:               h.K,
			Epsilon:         h.Epsilon,
			BatteryCapacity: h.BatteryCapKWh,
		}
	}
	return out
}

// WindowInputs returns every home's private data for window w. On a lazy
// trace it materializes every home's full day first (a day is one stream
// per home, not per window) — callers wanting bounded memory should Select
// the homes they need and call WindowInputs on the sub-trace.
func (t *Trace) WindowInputs(w int) ([]market.WindowInput, error) {
	if w < 0 || w >= t.Windows {
		return nil, fmt.Errorf("dataset: window %d out of range [0,%d)", w, t.Windows)
	}
	t.Materialize()
	out := make([]market.WindowInput, len(t.Homes))
	for h := range t.Homes {
		out[h] = market.WindowInput{
			Generation: t.Gen[h][w],
			Load:       t.Load[h][w],
			Battery:    t.Battery[h][w],
		}
	}
	return out, nil
}

// Select returns a trace restricted to the listed home indices, in the
// given order (sharing the underlying per-home slices; do not mutate). It
// is how a coalition grid carves one fleet trace into per-coalition traces.
// On a lazy trace the sub-trace inherits the pending synthesizers and
// materializes into itself: the parent stays lazy, so a streaming grid's
// day data lives only as long as the coalition sub-traces that use it.
func (t *Trace) Select(indices []int) (*Trace, error) {
	if len(indices) == 0 {
		return nil, errors.New("dataset: empty home selection")
	}
	sub := &Trace{
		Homes:     make([]Home, len(indices)),
		Windows:   t.Windows,
		StartHour: t.StartHour,
		Gen:       make([][]float64, len(indices)),
		Load:      make([][]float64, len(indices)),
		Battery:   make([][]float64, len(indices)),
	}
	if t.synth != nil {
		sub.synth = make([]synthFn, len(indices))
	}
	seen := make(map[int]bool, len(indices))
	for i, h := range indices {
		if h < 0 || h >= len(t.Homes) {
			return nil, fmt.Errorf("dataset: home index %d out of range [0,%d)", h, len(t.Homes))
		}
		if seen[h] {
			return nil, fmt.Errorf("dataset: home index %d selected twice", h)
		}
		seen[h] = true
		sub.Homes[i] = t.Homes[h]
		sub.Gen[i] = t.Gen[h]
		sub.Load[i] = t.Load[h]
		sub.Battery[i] = t.Battery[h]
		if t.synth != nil {
			sub.synth[i] = t.synth[h]
		}
	}
	return sub, nil
}

// Subset returns a trace restricted to the first n homes (sharing the
// underlying slices; do not mutate). Like Select, a lazy trace's subset
// inherits the pending synthesizers.
func (t *Trace) Subset(n int) (*Trace, error) {
	if n <= 0 || n > len(t.Homes) {
		return nil, fmt.Errorf("dataset: subset of %d from %d homes", n, len(t.Homes))
	}
	sub := &Trace{
		Homes:     t.Homes[:n],
		Windows:   t.Windows,
		StartHour: t.StartHour,
		Gen:       t.Gen[:n],
		Load:      t.Load[:n],
		Battery:   t.Battery[:n],
	}
	if t.synth != nil {
		sub.synth = append([]synthFn(nil), t.synth[:n]...)
	}
	return sub, nil
}
