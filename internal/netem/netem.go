// Package netem is a deterministic network-emulation layer for the PEM
// transports: it wraps any transport.Conn with per-link latency, jitter,
// bandwidth and loss models so the round-trip-bound protocols can be priced
// on a LAN, a metro utility network, a cross-region WAN or a cellular
// uplink — without a single wall-clock sleep.
//
// # The virtual clock
//
// Emulated time is message-driven. Every (scope, window, party) triple owns
// a virtual-clock lane starting at zero when its trading window begins.
// Sending a message timestamps it with the sender's lane clock plus the
// link's delay (propagation + seeded jitter + serialization + seeded
// retransmissions); receiving one advances the receiver's lane clock to the
// message's delivery time if it is later (a Lamport-style max). The lane
// maxima trace exactly the longest chain of message dependencies through
// the window — the critical path an identical deployment would wait out on
// a real network — while the messages themselves still deliver at memory
// speed. A parallel hop counter measures the protocol's round structure:
// each message carries its sender's dependency depth plus one, and the
// window's round count is the deepest chain any party observed.
//
// Determinism is unconditional: all jitter and loss realizations are drawn
// by hashing the network seed with the message identity (link, tag,
// per-link sequence number) rather than from a shared stream, and lanes of
// different windows share no state. Seeded runs therefore report
// bit-identical virtual latency and round counts at any window, coalition
// or crypto-worker concurrency, and with any real-time arrival order.
//
// Concurrent sub-exchanges inside one window (Protocol 4's pairwise
// route-and-pay) would race a single per-party lane, so senders there fork
// the lane into per-goroutine branches: Conn.ForkLane snapshots the lane
// under the caller's control-flow, Branch clones the snapshot per
// concurrent exchange, and replies are timestamped only against the
// messages their own exchange actually received.
package netem

import (
	"context"
	"sync"
	"time"

	"github.com/pem-go/pem/internal/transport"
)

// Network holds the emulated topology and all virtual-clock state shared by
// the wrapped connections of one engine. It records per-window virtual
// latency and round counts into the transport metrics sink, next to the
// byte accounting.
type Network struct {
	topo    Topology
	seed    int64
	metrics *transport.Metrics

	mu    sync.Mutex
	lanes map[laneKey]*lane
	links map[linkKey]*link
	pairs map[pairKey]LinkParams
}

// laneKey names one party's virtual-clock lane within one trading window.
type laneKey struct {
	scope  string
	window int
	party  string
}

// lane is the per-(scope, window, party) virtual clock: the latest message
// delivery this party has observed in the window, and the longest message
// dependency chain ending at it.
type lane struct {
	clock time.Duration
	depth int
}

// linkKey names one directed message stream: all messages from one party to
// another under one tag. Streams are the FIFO unit (matching the mailbox's
// per-(from, tag) queues) and the unit of the seeded delay draws.
type linkKey struct {
	from, to, tag string
}

// link carries one stream's state: the send sequence counter feeding the
// seeded draws, the link-occupancy and FIFO floors, and the queue of
// in-flight delivery metadata the receiver consumes. Each stream has its
// own lock so pricing a message on one link never serializes the others.
type link struct {
	mu sync.Mutex
	// seq numbers this stream's transmissions; it feeds the seeded draws.
	seq int64
	// freeAt is when the link finishes serializing the previous message:
	// back-to-back sends queue behind each other's transmission time, like
	// frames on a real interface.
	freeAt time.Duration
	// lastD keeps deliveries FIFO even when jitter would reorder them,
	// matching the mailbox's per-(from, tag) queue semantics.
	lastD time.Duration
	fifo  []meta
}

// pairKey memoizes resolved per-pair link parameters.
type pairKey struct {
	from, to string
}

// meta is the emulation metadata of one in-flight message.
type meta struct {
	d     time.Duration // virtual delivery time
	depth int           // dependency-chain length including this hop
}

// New builds a network over the given topology. The seed drives every
// jitter, loss and per-pair-spread draw; metrics receives the per-window
// virtual-latency and round records (it is typically the wrapped bus's
// sink, so bytes and virtual time land side by side). A nil metrics sink
// disables recording but keeps the lane accounting intact.
func New(topo Topology, seed int64, metrics *transport.Metrics) (*Network, error) {
	if err := topo.validate(); err != nil {
		return nil, err
	}
	return &Network{
		topo:    topo,
		seed:    seed,
		metrics: metrics,
		lanes:   make(map[laneKey]*lane),
		links:   make(map[linkKey]*link),
		pairs:   make(map[pairKey]LinkParams),
	}, nil
}

// Topology returns the emulated topology.
func (n *Network) Topology() Topology { return n.topo }

// Wrap layers the emulation over one party's endpoint. All endpoints of one
// protocol instance must be wrapped by the same Network, since delivery
// metadata travels through it from sender to receiver.
func (n *Network) Wrap(c transport.Conn) *Conn {
	return &Conn{net: n, inner: c}
}

// WindowStats returns one window's critical-path virtual latency and round
// count as observed so far: the maxima across the window's lanes. The scan
// is O(live lanes), which ReleaseWindow keeps bounded by the windows
// actually in flight.
func (n *Network) WindowStats(scope string, window int) (latency time.Duration, rounds int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k, l := range n.lanes {
		if k.scope != scope || k.window != window {
			continue
		}
		if l.clock > latency {
			latency = l.clock
		}
		if l.depth > rounds {
			rounds = l.depth
		}
	}
	return latency, rounds
}

// ReleaseWindow drops one completed window's lane and stream state. The
// engine calls it after reading the window's stats, which keeps a
// long-lived network's memory bounded by the windows in flight — and means
// a caller reusing a window number later starts that window's virtual
// clocks from zero again instead of inheriting the previous run's.
func (n *Network) ReleaseWindow(scope string, window int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k := range n.lanes {
		if k.scope == scope && k.window == window {
			delete(n.lanes, k)
		}
	}
	for k := range n.links {
		if s, w, _, ok := transport.ParseScopedWindowTag(k.tag); ok && s == scope && w == window {
			delete(n.links, k)
		}
	}
}

// pairParams resolves (and memoizes) the directed pair's link parameters.
func (n *Network) pairParams(from, to string) (LinkParams, error) {
	k := pairKey{from: from, to: to}
	n.mu.Lock()
	if p, ok := n.pairs[k]; ok {
		n.mu.Unlock()
		return p, nil
	}
	n.mu.Unlock()
	// Resolve outside the lock: a custom Link function is caller code.
	p := n.topo.link(n.seed, from, to)
	if err := p.validate(); err != nil {
		return LinkParams{}, err
	}
	n.mu.Lock()
	n.pairs[k] = p
	n.mu.Unlock()
	return p, nil
}

// laneSnapshot reads one lane's current clock and depth.
func (n *Network) laneSnapshot(scope string, window int, party string) (time.Duration, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.lanes[laneKey{scope: scope, window: window, party: party}]
	if !ok {
		return 0, 0
	}
	return l.clock, l.depth
}

// laneAdvance folds one delivery into a lane (Lamport max) and records the
// lane's new maxima into the metrics sink.
func (n *Network) laneAdvance(scope string, window int, party string, m meta) {
	n.mu.Lock()
	k := laneKey{scope: scope, window: window, party: party}
	l, ok := n.lanes[k]
	if !ok {
		l = &lane{}
		n.lanes[k] = l
	}
	if m.d > l.clock {
		l.clock = m.d
	}
	if m.depth > l.depth {
		l.depth = m.depth
	}
	clock, depth := l.clock, l.depth
	n.mu.Unlock()
	if n.metrics != nil {
		n.metrics.RecordVirtual(scope, window, clock, depth)
	}
}

// price splits one transmission's cost into link occupancy (serialization
// against the bandwidth plus one RTO per seeded loss — the time the stream
// is busy with this message, which back-to-back sends queue behind) and
// pipelined delay (propagation plus seeded jitter, which consecutive
// messages overlap).
func (n *Network) price(p LinkParams, from, to, tag string, seq int64, size int) (occupancy, pipelined time.Duration) {
	if p.Bandwidth > 0 {
		occupancy = time.Duration(int64(size) * int64(time.Second) / p.Bandwidth)
	}
	for attempt := int64(0); attempt < maxRetransmits; attempt++ {
		if p.Loss == 0 || unitFloat(hashDraw(n.seed, "loss", from, to, tag, seq, attempt)) >= p.Loss {
			break
		}
		occupancy += p.RTO
	}
	pipelined = p.Latency
	if p.Jitter > 0 {
		u := unitFloat(hashDraw(n.seed, "jitter", from, to, tag, seq, 0))
		pipelined += time.Duration((u*2 - 1) * float64(p.Jitter))
	}
	if pipelined < 0 {
		pipelined = 0
	}
	return occupancy, pipelined
}

// Conn wraps one party's endpoint with the network emulation. Session-
// scoped tags (outside any window namespace) pass through unmodeled; all
// window-tagged protocol traffic is priced and tracked.
type Conn struct {
	net   *Network
	inner transport.Conn
}

var _ transport.Conn = (*Conn)(nil)

// Inner returns the wrapped endpoint, so diagnostics and the virtual-time
// fork helpers can unwrap conn stacks (fault injectors, secure channels)
// down to the emulation layer.
func (c *Conn) Inner() transport.Conn { return c.inner }

// Party implements transport.Conn.
func (c *Conn) Party() string { return c.inner.Party() }

// Send implements transport.Conn: it timestamps the message off the
// sender's virtual clock (or the context's forked branch), prices the link
// delay from the seeded model, enqueues the delivery metadata for the
// receiver and forwards the payload unchanged.
func (c *Conn) Send(ctx context.Context, to, tag string, payload []byte) error {
	scope, window, _, ok := transport.ParseScopedWindowTag(tag)
	if !ok {
		return c.inner.Send(ctx, to, tag, payload)
	}
	from := c.inner.Party()
	params, err := c.net.pairParams(from, to)
	if err != nil {
		return err
	}

	var t0 time.Duration
	var depth int
	if tk, ok := ctx.Value(tokenKeyType{}).(*token); ok {
		t0, depth = tk.snapshot()
	} else {
		t0, depth = c.net.laneSnapshot(scope, window, from)
	}

	// The stream lock is held across both the metadata enqueue and the
	// inner send, so the FIFO of metas stays aligned with the mailbox's
	// message queue even under concurrent senders.
	st := c.net.stream(linkKey{from: from, to: to, tag: tag})
	st.mu.Lock()
	defer st.mu.Unlock()
	seq := st.seq
	st.seq++
	occ, pipe := c.net.price(params, from, to, tag, seq, transport.WireSize(from, to, tag, payload))
	start := t0
	if start < st.freeAt {
		start = st.freeAt
	}
	st.freeAt = start + occ
	d := st.freeAt + pipe
	if d < st.lastD {
		d = st.lastD
	}
	st.lastD = d
	st.fifo = append(st.fifo, meta{d: d, depth: depth + 1})
	if err := c.inner.Send(ctx, to, tag, payload); err != nil {
		// The message never entered the mailbox; retract its metadata so
		// the FIFO stays aligned. The sequence number stays burned, which
		// is fine: draws only need to be unique, not dense.
		st.fifo = st.fifo[:len(st.fifo)-1]
		return err
	}
	return nil
}

// Recv implements transport.Conn: it forwards the blocking receive, then
// folds the message's delivery time and hop depth into the receiving lane
// (and the context's fork branch, when present).
func (c *Conn) Recv(ctx context.Context, from, tag string) ([]byte, error) {
	payload, err := c.inner.Recv(ctx, from, tag)
	if err != nil {
		return nil, err
	}
	c.arrived(ctx, from, tag)
	return payload, nil
}

// RecvAny implements transport.Conn, with the same lane accounting as Recv
// applied to whichever sender's message arrived.
func (c *Conn) RecvAny(ctx context.Context, tag string, froms []string) (string, []byte, error) {
	from, payload, err := c.inner.RecvAny(ctx, tag, froms)
	if err != nil {
		return "", nil, err
	}
	c.arrived(ctx, from, tag)
	return from, payload, nil
}

// Close implements transport.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// arrived pops the oldest in-flight metadata of the (from, self, tag)
// stream and advances the receiver's lane. Messages without metadata (sent
// by an unwrapped endpoint, or session-scoped) leave the clocks untouched.
func (c *Conn) arrived(ctx context.Context, from, tag string) {
	scope, window, _, ok := transport.ParseScopedWindowTag(tag)
	if !ok {
		return
	}
	to := c.inner.Party()
	st := c.net.stream(linkKey{from: from, to: to, tag: tag})
	st.mu.Lock()
	if len(st.fifo) == 0 {
		st.mu.Unlock()
		return
	}
	m := st.fifo[0]
	st.fifo = st.fifo[1:]
	st.mu.Unlock()

	c.net.laneAdvance(scope, window, to, m)
	if tk, ok := ctx.Value(tokenKeyType{}).(*token); ok {
		tk.advance(m)
	}
}

// stream returns (lazily creating) one directed stream's state.
func (n *Network) stream(k linkKey) *link {
	n.mu.Lock()
	st, ok := n.links[k]
	if !ok {
		st = &link{}
		n.links[k] = st
	}
	n.mu.Unlock()
	return st
}

// hashDraw derives one deterministic 64-bit draw from the seed and a
// message identity. Draws are pure functions of their inputs — no shared
// stream, no ordering sensitivity — and run on the Send hot path, so the
// hash is an allocation-free FNV-1a (the dataset's seed-derivation
// convention) with a splitmix64 finalizer to spread FNV's weak avalanche
// across the high bits unitFloat consumes. Statistical quality, not
// cryptographic strength, is all the delay model needs.
func hashDraw(seed int64, domain, from, to, tag string, seq, attempt int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mixInt := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		h = (h ^ 0xff) * prime64 // separator: "ab","c" != "a","bc"
	}
	mixInt(uint64(seed))
	mixStr(domain)
	mixStr(from)
	mixStr(to)
	mixStr(tag)
	mixInt(uint64(seq))
	mixInt(uint64(attempt))

	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// unitFloat maps a 64-bit draw onto [0, 1) with 53-bit precision.
func unitFloat(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// tokenKeyType keys the virtual-time branch carried by a context.
type tokenKeyType struct{}

// token is a forked virtual-time branch: a private (clock, depth) line for
// one concurrent exchange inside a window, isolated from the party's shared
// lane so interleaving with sibling exchanges cannot perturb timestamps.
type token struct {
	mu    sync.Mutex
	t     time.Duration
	depth int
}

func (tk *token) snapshot() (time.Duration, int) {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.t, tk.depth
}

func (tk *token) advance(m meta) {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if m.d > tk.t {
		tk.t = m.d
	}
	if m.depth > tk.depth {
		tk.depth = m.depth
	}
}

// ForkLane returns a context carrying a fresh virtual-time branch seeded
// from the party's current (scope, window) lane. Call it once at a
// deterministic point (before spawning concurrent exchanges), then Branch
// the result per goroutine. Sends through the returned context are
// timestamped against the branch instead of the shared lane; receives
// advance both.
func (c *Conn) ForkLane(ctx context.Context, scope string, window int) context.Context {
	t, depth := c.net.laneSnapshot(scope, window, c.inner.Party())
	return context.WithValue(ctx, tokenKeyType{}, &token{t: t, depth: depth})
}

// Branch clones the context's virtual-time branch at its current value,
// giving one concurrent exchange its own isolated line. Contexts without a
// branch pass through unchanged (emulation disabled, or never forked).
func Branch(ctx context.Context) context.Context {
	tk, ok := ctx.Value(tokenKeyType{}).(*token)
	if !ok {
		return ctx
	}
	t, depth := tk.snapshot()
	return context.WithValue(ctx, tokenKeyType{}, &token{t: t, depth: depth})
}
