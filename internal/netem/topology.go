package netem

import (
	"fmt"
	"sort"
	"time"
)

// LinkParams describe one directed party-pair link of an emulated network.
// The zero value means "ideal wire": no latency, no jitter, infinite
// bandwidth, no loss.
type LinkParams struct {
	// Latency is the one-way propagation delay of the link.
	Latency time.Duration
	// Jitter is the maximum deviation applied around Latency. Each message
	// draws a deterministic offset in (−Jitter, +Jitter) from the network's
	// seeded stream, so two runs see the very same jitter realizations.
	Jitter time.Duration
	// Bandwidth is the link throughput in bytes per second; every message
	// additionally pays wireSize/Bandwidth of serialization delay. Zero
	// means infinite bandwidth.
	Bandwidth int64
	// Loss is the per-transmission loss probability in [0, 1). The PEM
	// protocols are not loss-tolerant, so a loss is modeled as a reliable-
	// transport retransmission: the message still arrives, delayed by one
	// RTO per lost attempt (capped at maxRetransmits), exactly like TCP
	// under light loss.
	Loss float64
	// RTO is the retransmission timeout charged per lost attempt. Zero
	// derives the classic estimate 3·Latency + 4·Jitter (floored at 1ms).
	RTO time.Duration
}

// maxRetransmits caps the retransmission tail so a pathological Loss value
// cannot stall virtual time unboundedly.
const maxRetransmits = 4

// withDefaults resolves derived fields (currently only RTO).
func (p LinkParams) withDefaults() LinkParams {
	if p.RTO == 0 {
		p.RTO = 3*p.Latency + 4*p.Jitter
		if p.RTO < time.Millisecond {
			p.RTO = time.Millisecond
		}
	}
	return p
}

// validate rejects parameter combinations the delay model cannot price.
func (p LinkParams) validate() error {
	if p.Latency < 0 || p.Jitter < 0 || p.Bandwidth < 0 || p.RTO < 0 {
		return fmt.Errorf("netem: negative link parameter %+v", p)
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("netem: loss probability %g outside [0, 1)", p.Loss)
	}
	return nil
}

// Topology assigns link parameters to party pairs. Preset builds the five
// named presets; tests and custom experiments may fill the struct directly.
type Topology struct {
	// Name labels the topology in reports and CSV output.
	Name string
	// Base is the nominal link every pair starts from.
	Base LinkParams
	// Spread is the relative per-pair latency variation: each unordered
	// party pair scales Base.Latency by a deterministic factor in
	// [1−Spread, 1+Spread] drawn from the network seed, so a "40ms WAN" is
	// a cloud of 30–50ms links rather than a perfectly uniform star.
	Spread float64
	// Link, when non-nil, overrides Base/Spread entirely: it is consulted
	// per directed pair and must be deterministic.
	Link func(from, to string) LinkParams
}

// Topology preset names accepted by Preset (and by the public
// pem.Config.Network knob).
const (
	// TopologyLAN models a switched local network: 100µs links, gigabit
	// bandwidth, no loss. The natural baseline — virtually indistinguishable
	// from the in-memory bus.
	TopologyLAN = "lan"
	// TopologyMetro models a metropolitan-area utility network: 5ms links,
	// 200 Mbit/s.
	TopologyMetro = "metro"
	// TopologyWAN models a wide-area deployment across regions: 40ms links,
	// 50 Mbit/s, light loss.
	TopologyWAN = "wan"
	// TopologyCellular models smart meters on a cellular uplink: 80ms links
	// with heavy jitter, 20 Mbit/s, moderate loss.
	TopologyCellular = "cellular"
	// TopologyLossy models a degraded long-haul path: WAN-like delay with
	// 3% loss, so retransmission cost dominates.
	TopologyLossy = "lossy"
)

// presets maps each preset name to its nominal link. Bandwidths are in
// bytes/second (the wire accounting is in bytes).
var presets = map[string]Topology{
	TopologyLAN: {
		Name:   TopologyLAN,
		Base:   LinkParams{Latency: 100 * time.Microsecond, Jitter: 20 * time.Microsecond, Bandwidth: 125_000_000},
		Spread: 0.10,
	},
	TopologyMetro: {
		Name:   TopologyMetro,
		Base:   LinkParams{Latency: 5 * time.Millisecond, Jitter: 500 * time.Microsecond, Bandwidth: 25_000_000, Loss: 0.0001},
		Spread: 0.15,
	},
	TopologyWAN: {
		Name:   TopologyWAN,
		Base:   LinkParams{Latency: 40 * time.Millisecond, Jitter: 5 * time.Millisecond, Bandwidth: 6_250_000, Loss: 0.001},
		Spread: 0.25,
	},
	TopologyCellular: {
		Name:   TopologyCellular,
		Base:   LinkParams{Latency: 80 * time.Millisecond, Jitter: 15 * time.Millisecond, Bandwidth: 2_500_000, Loss: 0.005},
		Spread: 0.25,
	},
	TopologyLossy: {
		Name:   TopologyLossy,
		Base:   LinkParams{Latency: 40 * time.Millisecond, Jitter: 10 * time.Millisecond, Bandwidth: 2_500_000, Loss: 0.03},
		Spread: 0.25,
	},
}

// Preset returns the named topology preset. The empty name is an error:
// callers gate emulation on the name before resolving it.
func Preset(name string) (Topology, error) {
	t, ok := presets[name]
	if !ok {
		return Topology{}, fmt.Errorf("netem: unknown topology %q (have %v)", name, Presets())
	}
	return t, nil
}

// Presets lists the preset names in stable order.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ValidPreset reports whether name is a known topology preset.
func ValidPreset(name string) bool {
	_, ok := presets[name]
	return ok
}

// link resolves the directed pair's parameters: the custom Link function if
// set, otherwise Base scaled by the pair's deterministic latency spread.
// The spread factor is symmetric (hashing the sorted pair) so both
// directions of a link share one propagation delay, like a real circuit.
func (t Topology) link(seed int64, from, to string) LinkParams {
	if t.Link != nil {
		return t.Link(from, to).withDefaults()
	}
	p := t.Base
	if t.Spread > 0 {
		a, b := from, to
		if a > b {
			a, b = b, a
		}
		u := hashDraw(seed, "spread", a, b, "", 0, 0)
		f := 1 + t.Spread*(unitFloat(u)*2-1)
		p.Latency = time.Duration(float64(p.Latency) * f)
		p.Jitter = time.Duration(float64(p.Jitter) * f)
	}
	return p.withDefaults()
}

// validate checks the topology's base link (custom Link functions are
// validated per pair as they are consulted).
func (t Topology) validate() error {
	if t.Link != nil {
		return nil
	}
	if t.Spread < 0 || t.Spread >= 1 {
		return fmt.Errorf("netem: latency spread %g outside [0, 1)", t.Spread)
	}
	return t.Base.validate()
}
