package netem

import (
	"context"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/transport"
)

func TestPresets(t *testing.T) {
	names := Presets()
	if len(names) != 5 {
		t.Fatalf("presets = %v, want 5", names)
	}
	for _, name := range names {
		topo, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if topo.Name != name {
			t.Errorf("preset %q has Name %q", name, topo.Name)
		}
		if err := topo.validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if !ValidPreset(name) {
			t.Errorf("ValidPreset(%q) = false", name)
		}
	}
	if _, err := Preset("dialup"); err == nil {
		t.Error("unknown preset accepted")
	}
	if ValidPreset("") || ValidPreset("dialup") {
		t.Error("ValidPreset accepted a non-preset")
	}
}

func TestLinkParamsDefaults(t *testing.T) {
	p := LinkParams{Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond}.withDefaults()
	if want := 38 * time.Millisecond; p.RTO != want {
		t.Errorf("derived RTO = %v, want %v", p.RTO, want)
	}
	if p := (LinkParams{}).withDefaults(); p.RTO != time.Millisecond {
		t.Errorf("zero-link RTO = %v, want 1ms floor", p.RTO)
	}
	if err := (LinkParams{Loss: 1}).validate(); err == nil {
		t.Error("loss = 1 accepted")
	}
	if err := (LinkParams{Latency: -1}).validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestPairSpreadSymmetricAndSeeded(t *testing.T) {
	topo, err := Preset(TopologyWAN)
	if err != nil {
		t.Fatal(err)
	}
	ab := topo.link(7, "a", "b")
	ba := topo.link(7, "b", "a")
	if ab.Latency != ba.Latency {
		t.Errorf("asymmetric pair latency: %v vs %v", ab.Latency, ba.Latency)
	}
	if again := topo.link(7, "a", "b"); again != ab {
		t.Errorf("same seed resolved different params: %+v vs %+v", again, ab)
	}
	lo := time.Duration(float64(topo.Base.Latency) * (1 - topo.Spread))
	hi := time.Duration(float64(topo.Base.Latency) * (1 + topo.Spread))
	if ab.Latency < lo || ab.Latency > hi {
		t.Errorf("pair latency %v outside spread [%v, %v]", ab.Latency, lo, hi)
	}
	// Different pairs should (with these names and seed) land on different
	// latencies — the point of the spread.
	cd := topo.link(7, "c", "d")
	if cd.Latency == ab.Latency {
		t.Errorf("distinct pairs share latency %v", ab.Latency)
	}
}

// wire builds a wrapped two-party (plus extras) bus for conn-level tests.
func wire(t *testing.T, topo Topology, seed int64, parties ...string) (*Network, map[string]*Conn, *transport.Metrics) {
	t.Helper()
	metrics := transport.NewMetrics()
	bus := transport.NewBus(metrics)
	n, err := New(topo, seed, metrics)
	if err != nil {
		t.Fatal(err)
	}
	conns := make(map[string]*Conn, len(parties))
	for _, p := range parties {
		conns[p] = n.Wrap(bus.MustRegister(p))
	}
	return n, conns, metrics
}

// fixedTopo is a spread-free topology for exact-arithmetic tests.
func fixedTopo(latency time.Duration, bandwidth int64) Topology {
	return Topology{
		Name: "test",
		Link: func(from, to string) LinkParams {
			return LinkParams{Latency: latency, Bandwidth: bandwidth}
		},
	}
}

func TestVirtualChainAccumulates(t *testing.T) {
	const hop = 10 * time.Millisecond
	n, conns, metrics := wire(t, fixedTopo(hop, 0), 1, "a", "b", "c")
	ctx := context.Background()
	tag := transport.WindowTag(0, "ring")

	// a -> b -> c: each hop relays after receiving, so virtual time adds up
	// along the chain while wall-clock time stays at memory speed.
	if err := conns["a"].Send(ctx, "b", tag, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := conns["b"].Recv(ctx, "a", tag); err != nil {
		t.Fatal(err)
	}
	if err := conns["b"].Send(ctx, "c", tag, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := conns["c"].Recv(ctx, "b", tag); err != nil {
		t.Fatal(err)
	}

	lat, rounds := n.WindowStats("", 0)
	if lat != 2*hop {
		t.Errorf("chain latency = %v, want %v", lat, 2*hop)
	}
	if rounds != 2 {
		t.Errorf("chain rounds = %d, want 2", rounds)
	}
	if got := metrics.WindowVirtualLatency("", 0); got != lat {
		t.Errorf("metrics latency = %v, want %v", got, lat)
	}
	if got := metrics.WindowRounds("", 0); got != 2 {
		t.Errorf("metrics rounds = %d, want 2", got)
	}
	if got := metrics.ScopeVirtualLatency(""); got != lat {
		t.Errorf("scope latency = %v, want %v", got, lat)
	}
}

func TestSerializationDelay(t *testing.T) {
	// 1 kB/s link: a message of wireSize w takes w ms of serialization on
	// top of zero propagation.
	n, conns, _ := wire(t, fixedTopo(0, 1000), 1, "a", "b")
	ctx := context.Background()
	tag := transport.WindowTag(3, "bulk")
	payload := make([]byte, 100)
	if err := conns["a"].Send(ctx, "b", tag, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := conns["b"].Recv(ctx, "a", tag); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(transport.WireSize("a", "b", tag, payload)) * time.Millisecond
	if lat, _ := n.WindowStats("", 3); lat != want {
		t.Errorf("serialization latency = %v, want %v", lat, want)
	}
}

func TestWindowsAreIndependentLanes(t *testing.T) {
	const hop = 5 * time.Millisecond
	n, conns, _ := wire(t, fixedTopo(hop, 0), 1, "a", "b")
	ctx := context.Background()
	for w := 0; w < 3; w++ {
		if err := conns["a"].Send(ctx, "b", transport.WindowTag(w, "t"), []byte{1}); err != nil {
			t.Fatal(err)
		}
		if _, err := conns["b"].Recv(ctx, "a", transport.WindowTag(w, "t")); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 3; w++ {
		if lat, rounds := n.WindowStats("", w); lat != hop || rounds != 1 {
			t.Errorf("window %d: latency %v rounds %d, want %v/1 (lanes leaked across windows)", w, lat, rounds, hop)
		}
	}
}

func TestSessionTagsUnmodeled(t *testing.T) {
	n, conns, _ := wire(t, fixedTopo(time.Second, 0), 1, "a", "b")
	ctx := context.Background()
	if err := conns["a"].Send(ctx, "b", "keys/paillier", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := conns["b"].Recv(ctx, "a", "keys/paillier"); err != nil {
		t.Fatal(err)
	}
	if lat, rounds := n.WindowStats("", 0); lat != 0 || rounds != 0 {
		t.Errorf("session traffic advanced the virtual clock: %v/%d", lat, rounds)
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	// High jitter could reorder same-stream deliveries; the FIFO floor must
	// keep them monotone, matching the mailbox's queue semantics.
	topo := Topology{
		Name: "jittery",
		Link: func(from, to string) LinkParams {
			return LinkParams{Latency: 10 * time.Millisecond, Jitter: 9 * time.Millisecond}
		},
	}
	n, conns, _ := wire(t, topo, 42, "a", "b")
	ctx := context.Background()
	tag := transport.WindowTag(0, "seq")
	var prev time.Duration
	for i := 0; i < 50; i++ {
		if err := conns["a"].Send(ctx, "b", tag, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := conns["b"].Recv(ctx, "a", tag); err != nil {
			t.Fatal(err)
		}
		lat, _ := n.WindowStats("", 0)
		if lat < prev {
			t.Fatalf("delivery %d regressed virtual time: %v < %v", i, lat, prev)
		}
		prev = lat
	}
}

func TestSeededDrawsAreDeterministic(t *testing.T) {
	run := func() (time.Duration, int) {
		topo, err := Preset(TopologyCellular)
		if err != nil {
			t.Fatal(err)
		}
		n, conns, _ := wire(t, topo, 99, "a", "b", "c")
		ctx := context.Background()
		for w := 0; w < 2; w++ {
			for i := 0; i < 10; i++ {
				tag := transport.WindowTag(w, "t")
				if err := conns["a"].Send(ctx, "b", tag, make([]byte, 64)); err != nil {
					t.Fatal(err)
				}
				if _, err := conns["b"].Recv(ctx, "a", tag); err != nil {
					t.Fatal(err)
				}
				if err := conns["b"].Send(ctx, "c", tag, make([]byte, 64)); err != nil {
					t.Fatal(err)
				}
				if _, err := conns["c"].Recv(ctx, "b", tag); err != nil {
					t.Fatal(err)
				}
			}
		}
		lat, rounds := n.WindowStats("", 1)
		return lat, rounds
	}
	lat1, r1 := run()
	lat2, r2 := run()
	if lat1 != lat2 || r1 != r2 {
		t.Errorf("re-run diverged: %v/%d vs %v/%d", lat1, r1, lat2, r2)
	}
	// Ten independent a→b→c relays: the dependency chain stays 2 deep (a
	// never waits on anyone), and the critical path is bounded by the last
	// relay's two hops plus queueing.
	if lat1 == 0 || r1 != 2 {
		t.Errorf("implausible stats: latency %v rounds %d (want 2 rounds)", lat1, r1)
	}
}

func TestBackToBackSendsQueueOnBandwidth(t *testing.T) {
	// 1 kB/s, zero propagation: five equal frames sent back to back must
	// serialize one after another, so the last delivery lands at 5× the
	// per-frame transmission time.
	n, conns, _ := wire(t, fixedTopo(0, 1000), 1, "a", "b")
	ctx := context.Background()
	tag := transport.WindowTag(0, "bulk")
	payload := make([]byte, 100)
	for i := 0; i < 5; i++ {
		if err := conns["a"].Send(ctx, "b", tag, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := conns["b"].Recv(ctx, "a", tag); err != nil {
			t.Fatal(err)
		}
	}
	perFrame := time.Duration(transport.WireSize("a", "b", tag, payload)) * time.Millisecond
	if lat, _ := n.WindowStats("", 0); lat != 5*perFrame {
		t.Errorf("queued latency = %v, want %v", lat, 5*perFrame)
	}
}

func TestLossChargesRetransmissions(t *testing.T) {
	lossy := Topology{
		Name: "drop",
		Link: func(from, to string) LinkParams {
			return LinkParams{Latency: time.Millisecond, Loss: 0.95, RTO: time.Second}
		},
	}
	n, err := New(lossy, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := lossy.Link("a", "b").withDefaults()
	// With 95% loss nearly every message pays at least one RTO; across 20
	// identities at least one must (and none may exceed the retransmit cap).
	var penalized bool
	for seq := int64(0); seq < 20; seq++ {
		occ, pipe := n.price(p, "a", "b", "w0/t", seq, 10)
		if occ > time.Duration(maxRetransmits)*p.RTO || pipe != p.Latency {
			t.Fatalf("price %v/%v out of model bounds", occ, pipe)
		}
		if occ >= p.RTO {
			penalized = true
		}
		occ2, pipe2 := n.price(p, "a", "b", "w0/t", seq, 10)
		if occ2 != occ || pipe2 != pipe {
			t.Fatalf("price draw not deterministic: %v/%v vs %v/%v", occ2, pipe2, occ, pipe)
		}
	}
	if !penalized {
		t.Error("95% loss never charged an RTO across 20 messages")
	}
}

func TestForkBranchIsolation(t *testing.T) {
	const hop = 10 * time.Millisecond
	n, conns, _ := wire(t, fixedTopo(hop, 0), 1, "hub", "x", "y")
	ctx := context.Background()
	tagReq := transport.WindowTag(0, "req")
	tagRep := transport.WindowTag(0, "rep")

	// x and y both message the hub; the hub answers each through its own
	// branch. Each reply must be timestamped off only its own request —
	// 2 hops end to end — not off whichever other request happened to have
	// advanced the hub's shared lane first.
	if err := conns["x"].Send(ctx, "hub", tagReq, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := conns["y"].Send(ctx, "hub", tagReq, []byte{2}); err != nil {
		t.Fatal(err)
	}
	forked := conns["hub"].ForkLane(ctx, "", 0)
	for _, peer := range []string{"x", "y"} {
		bctx := Branch(forked)
		if _, err := conns["hub"].Recv(bctx, peer, tagReq); err != nil {
			t.Fatal(err)
		}
		if err := conns["hub"].Send(bctx, peer, tagRep, []byte{3}); err != nil {
			t.Fatal(err)
		}
		if _, err := conns[peer].Recv(ctx, "hub", tagRep); err != nil {
			t.Fatal(err)
		}
	}
	if lat, rounds := n.WindowStats("", 0); lat != 2*hop || rounds != 2 {
		t.Errorf("request/reply latency = %v rounds %d, want %v/2 (branches leaked)", lat, rounds, 2*hop)
	}
}

func TestBranchWithoutForkPassesThrough(t *testing.T) {
	ctx := context.Background()
	if got := Branch(ctx); got != ctx {
		t.Error("Branch invented a token on an unforked context")
	}
}

func TestSendFailureRetractsMeta(t *testing.T) {
	const hop = 10 * time.Millisecond
	n, conns, _ := wire(t, fixedTopo(hop, 0), 1, "a", "b")
	ctx := context.Background()
	tag := transport.WindowTag(0, "t")

	// Sending to an unknown party fails below the emulation layer; its
	// metadata must not linger and desynchronize the next delivery.
	if err := conns["a"].Send(ctx, "ghost", tag, []byte{1}); err == nil {
		t.Fatal("send to unknown party succeeded")
	}
	if err := conns["a"].Send(ctx, "b", tag, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := conns["b"].Recv(ctx, "a", tag); err != nil {
		t.Fatal(err)
	}
	if lat, _ := n.WindowStats("", 0); lat != hop {
		t.Errorf("latency = %v, want %v (stale meta from failed send?)", lat, hop)
	}
}
