package secchan

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/transport"
)

// setupPair wires two secure endpoints over an in-memory bus.
func setupPair(t *testing.T) (*Conn, *Conn, *transport.Bus) {
	t.Helper()
	bus := transport.NewBus(nil)
	dir := NewDirectory()

	idA, err := NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	dir.Register("a", idA.PublicKey())
	dir.Register("b", idB.PublicKey())

	a := New(bus.MustRegister("a"), idA, dir)
	b := New(bus.MustRegister("b"), idB, dir)
	return a, b, bus
}

func TestSealedRoundTrip(t *testing.T) {
	a, b, _ := setupPair(t)
	ctx := context.Background()

	msg := []byte("private net energy: -1.25 kWh")
	if err := a.Send(ctx, "b", "window/1", msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx, "a", "window/1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestBothDirections(t *testing.T) {
	a, b, _ := setupPair(t)
	ctx := context.Background()
	if err := a.Send(ctx, "b", "x", []byte("to b")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ctx, "a", "y", []byte("to a")); err != nil {
		t.Fatal(err)
	}
	gb, err := b.Recv(ctx, "a", "x")
	if err != nil {
		t.Fatal(err)
	}
	ga, err := a.Recv(ctx, "b", "y")
	if err != nil {
		t.Fatal(err)
	}
	if string(gb) != "to b" || string(ga) != "to a" {
		t.Errorf("got %q / %q", gb, ga)
	}
}

func TestCiphertextOnWire(t *testing.T) {
	// Inspect the raw bus traffic: plaintext must not appear.
	bus := transport.NewBus(nil)
	dir := NewDirectory()
	idA, _ := NewIdentity(nil)
	idB, _ := NewIdentity(nil)
	dir.Register("a", idA.PublicKey())
	dir.Register("b", idB.PublicKey())

	rawB := bus.MustRegister("b")
	a := New(bus.MustRegister("a"), idA, dir)
	ctx := context.Background()

	secret := []byte("household load profile 07:00-08:00")
	if err := a.Send(ctx, "b", "t", secret); err != nil {
		t.Fatal(err)
	}
	raw, err := rawB.Recv(ctx, "a", "t")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Error("plaintext visible on the wire")
	}
	if len(raw) <= len(secret) {
		t.Error("sealed message should carry nonce+tag overhead")
	}
}

func TestTamperedMessageRejected(t *testing.T) {
	// Relay through a raw endpoint that flips a bit.
	bus := transport.NewBus(nil)
	dir := NewDirectory()
	idA, _ := NewIdentity(nil)
	idB, _ := NewIdentity(nil)
	dir.Register("a", idA.PublicKey())
	dir.Register("b", idB.PublicKey())

	innerA := transport.NewFaultConn(bus.MustRegister("a"))
	a := New(innerA, idA, dir)
	b := New(bus.MustRegister("b"), idB, dir)
	ctx := context.Background()

	innerA.CorruptNext("t", 1)
	if err := a.Send(ctx, "b", "t", []byte("integrity matters")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx, "a", "t"); err == nil {
		t.Error("tampered message accepted")
	}
}

func TestWrongTagRejected(t *testing.T) {
	// AAD binds the tag: delivering a ciphertext under a different tag via
	// a raw relay must fail to authenticate.
	bus := transport.NewBus(nil)
	dir := NewDirectory()
	idA, _ := NewIdentity(nil)
	idB, _ := NewIdentity(nil)
	dir.Register("a", idA.PublicKey())
	dir.Register("b", idB.PublicKey())

	rawA := bus.MustRegister("a")
	a := New(rawA, idA, dir)
	rawB := bus.MustRegister("b")
	b := New(rawB, idB, dir)
	ctx := context.Background()

	if err := a.Send(ctx, "b", "tag1", []byte("bound")); err != nil {
		t.Fatal(err)
	}
	sealed, err := rawB.Recv(ctx, "a", "tag1")
	if err != nil {
		t.Fatal(err)
	}
	// Re-inject under a different tag.
	rawReinject := bus.MustRegister("a2")
	_ = rawReinject
	if err := rawA.Send(ctx, "b", "tag2", sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx, "a", "tag2"); err == nil {
		t.Error("cross-tag replay accepted")
	}
}

func TestUnknownPeer(t *testing.T) {
	bus := transport.NewBus(nil)
	dir := NewDirectory()
	id, _ := NewIdentity(nil)
	dir.Register("a", id.PublicKey())
	a := New(bus.MustRegister("a"), id, dir)
	bus.MustRegister("stranger")
	if err := a.Send(context.Background(), "stranger", "t", []byte("x")); err == nil {
		t.Error("send to peer without registered key: want error")
	} else if !strings.Contains(err.Error(), "no public key") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestNonceUniqueness(t *testing.T) {
	// Two seals of the same message must differ on the wire.
	bus := transport.NewBus(nil)
	dir := NewDirectory()
	idA, _ := NewIdentity(nil)
	idB, _ := NewIdentity(nil)
	dir.Register("a", idA.PublicKey())
	dir.Register("b", idB.PublicKey())
	rawB := bus.MustRegister("b")
	a := New(bus.MustRegister("a"), idA, dir)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if err := a.Send(ctx, "b", "t", []byte("same")); err != nil {
			t.Fatal(err)
		}
	}
	m1, _ := rawB.Recv(ctx, "a", "t")
	m2, _ := rawB.Recv(ctx, "a", "t")
	if bytes.Equal(m1, m2) {
		t.Error("two seals of the same plaintext are identical")
	}
}

func TestOverTCP(t *testing.T) {
	dir := NewDirectory()
	idA, _ := NewIdentity(nil)
	idB, _ := NewIdentity(nil)
	dir.Register("a", idA.PublicKey())
	dir.Register("b", idB.PublicKey())

	nodeA, err := transport.ListenTCP("a", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := transport.ListenTCP("b", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA.SetPeer("b", nodeB.Addr())

	a := New(nodeA, idA, dir)
	b := New(nodeB, idB, dir)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Send(ctx, "b", "enc", []byte("tcp+aead")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx, "a", "enc")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tcp+aead" {
		t.Errorf("got %q", got)
	}
}
