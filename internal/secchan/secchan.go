// Package secchan implements the secure pairwise channels the paper assumes
// ("all the messages in the framework are assumed to be transmitted in a
// secure channel", Section II-B).
//
// Each agent holds a static X25519 key pair whose public half is published
// in the market roster, exactly like the Paillier public keys in
// Protocol 1. A channel key for an (i, j) pair is derived with
// HKDF-SHA256 from the static-static Diffie–Hellman shared secret, salted
// with the sorted party identifiers so both ends derive the same key. Every
// payload is then sealed with AES-256-GCM under a random nonce, with the
// (from, to, tag) triple bound as additional authenticated data so messages
// cannot be replayed across conversations.
package secchan

import (
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/pem-go/pem/internal/transport"
)

// Errors surfaced by the package.
var (
	ErrUnknownPeerKey = errors.New("secchan: no public key registered for peer")
	ErrDecrypt        = errors.New("secchan: message authentication failed")
)

// Identity is an agent's static X25519 key pair.
type Identity struct {
	priv *ecdh.PrivateKey
}

// NewIdentity generates a static key pair from the given randomness source
// (crypto/rand if nil).
func NewIdentity(random io.Reader) (*Identity, error) {
	if random == nil {
		random = rand.Reader
	}
	priv, err := ecdh.X25519().GenerateKey(random)
	if err != nil {
		return nil, fmt.Errorf("secchan: generate identity: %w", err)
	}
	return &Identity{priv: priv}, nil
}

// PublicKey returns the shareable public half (32 bytes).
func (id *Identity) PublicKey() []byte {
	return id.priv.PublicKey().Bytes()
}

// Directory maps party IDs to their static public keys.
type Directory struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{keys: make(map[string][]byte)}
}

// Register stores a party's public key (copying the slice).
func (d *Directory) Register(party string, pub []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[party] = append([]byte(nil), pub...)
}

// Lookup returns a party's public key.
func (d *Directory) Lookup(party string) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[party]
	return k, ok
}

// Conn wraps a transport.Conn, sealing every payload end-to-end.
type Conn struct {
	inner transport.Conn
	id    *Identity
	dir   *Directory

	mu    sync.Mutex
	aeads map[string]cipher.AEAD // peer -> sealed channel
}

var _ transport.Conn = (*Conn)(nil)

// New wraps inner with encryption under the local identity and the peer
// directory.
func New(inner transport.Conn, id *Identity, dir *Directory) *Conn {
	return &Conn{
		inner: inner,
		id:    id,
		dir:   dir,
		aeads: make(map[string]cipher.AEAD),
	}
}

// Party implements transport.Conn.
func (c *Conn) Party() string { return c.inner.Party() }

// aead returns (building if needed) the AEAD for a peer.
func (c *Conn) aead(peer string) (cipher.AEAD, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.aeads[peer]; ok {
		return a, nil
	}
	pubBytes, ok := c.dir.Lookup(peer)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeerKey, peer)
	}
	pub, err := ecdh.X25519().NewPublicKey(pubBytes)
	if err != nil {
		return nil, fmt.Errorf("secchan: bad public key for %q: %w", peer, err)
	}
	shared, err := c.id.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("secchan: ECDH with %q: %w", peer, err)
	}
	key := deriveKey(shared, c.Party(), peer)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secchan: cipher: %w", err)
	}
	a, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secchan: gcm: %w", err)
	}
	c.aeads[peer] = a
	return a, nil
}

// deriveKey runs HKDF-SHA256 (extract+expand, one block) over the shared
// secret, salted with the sorted pair of party IDs so both directions agree.
func deriveKey(shared []byte, a, b string) []byte {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	salt := sha256.Sum256([]byte("pem/secchan/v1|" + lo + "|" + hi))

	// HKDF-Extract(salt, ikm).
	ext := hmac.New(sha256.New, salt[:])
	ext.Write(shared)
	prk := ext.Sum(nil)

	// HKDF-Expand(prk, info, 32) — single block suffices for 32 bytes.
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte("pem/secchan/aes256gcm"))
	exp.Write([]byte{1})
	return exp.Sum(nil)[:32]
}

// Send seals payload and forwards it.
func (c *Conn) Send(ctx context.Context, to, tag string, payload []byte) error {
	a, err := c.aead(to)
	if err != nil {
		return err
	}
	nonce := make([]byte, a.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("secchan: nonce: %w", err)
	}
	aad := aadFor(c.Party(), to, tag)
	sealed := a.Seal(nonce, nonce, payload, aad)
	return c.inner.Send(ctx, to, tag, sealed)
}

// Recv receives and opens a sealed payload.
func (c *Conn) Recv(ctx context.Context, from, tag string) ([]byte, error) {
	sealed, err := c.inner.Recv(ctx, from, tag)
	if err != nil {
		return nil, err
	}
	return c.open(from, tag, sealed)
}

// RecvAny receives the first sealed payload to arrive from any of the
// listed peers and opens it under that peer's channel.
func (c *Conn) RecvAny(ctx context.Context, tag string, froms []string) (string, []byte, error) {
	from, sealed, err := c.inner.RecvAny(ctx, tag, froms)
	if err != nil {
		return "", nil, err
	}
	plain, err := c.open(from, tag, sealed)
	if err != nil {
		return "", nil, err
	}
	return from, plain, nil
}

// open unseals a received payload under the channel with from.
func (c *Conn) open(from, tag string, sealed []byte) ([]byte, error) {
	a, err := c.aead(from)
	if err != nil {
		return nil, err
	}
	ns := a.NonceSize()
	if len(sealed) < ns {
		return nil, ErrDecrypt
	}
	aad := aadFor(from, c.Party(), tag)
	plain, err := a.Open(nil, sealed[:ns], sealed[ns:], aad)
	if err != nil {
		return nil, fmt.Errorf("%w (from %q tag %q)", ErrDecrypt, from, tag)
	}
	return plain, nil
}

// aadFor binds direction and tag into the AEAD.
func aadFor(from, to, tag string) []byte {
	return []byte(from + "\x00" + to + "\x00" + tag)
}

// Close implements transport.Conn.
func (c *Conn) Close() error { return c.inner.Close() }
