// Package ledger provides a hash-chained, append-only transaction ledger
// for PEM trades, realizing the paper's "Blockchain Deployment" discussion
// (Section VI): the final distribution and payment between sellers and
// buyers is committed to a tamper-evident log so integrity and truthfulness
// of completed transactions can be audited after the fact.
//
// The ledger is deliberately lightweight — a linear chain of blocks, each
// holding the trades of one trading window, linked by SHA-256 — matching
// the role a permissioned chain (e.g. one Fabric channel) would play for a
// neighborhood market. Consensus is out of scope: PEM's trust model already
// has all agents observing the same protocol transcript.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/pem-go/pem/internal/market"
)

// TradeRecord is one pairwise transaction committed to the chain.
type TradeRecord struct {
	// Seller is the delivering agent's ID.
	Seller string
	// Buyer is the receiving agent's ID.
	Buyer string
	// EnergyKWh routed from Seller to Buyer.
	EnergyKWh float64
	// PaymentCents paid by Buyer to Seller.
	PaymentCents float64
}

// RecordsFromTrades converts one window's market trades into ledger
// records — the single mapping shared by the solo-market ledger and the
// grid settlement paths, so the two chains can never drift apart on field
// semantics.
func RecordsFromTrades(trades []market.Trade) []TradeRecord {
	records := make([]TradeRecord, len(trades))
	for i, tr := range trades {
		records[i] = TradeRecord{
			Seller:       tr.Seller,
			Buyer:        tr.Buyer,
			EnergyKWh:    tr.Energy,
			PaymentCents: tr.Payment,
		}
	}
	return records
}

// Block holds all trades of one trading window.
type Block struct {
	// Index is the block height (0 = genesis).
	Index int
	// Window is the trading-window number the trades belong to.
	Window int
	// PriceCentsPerKWh is the clearing price of the window.
	PriceCentsPerKWh float64
	// Trades in deterministic order.
	Trades []TradeRecord
	// PrevHash links to the previous block.
	PrevHash [32]byte
	// Hash commits to all the fields above.
	Hash [32]byte
}

// Errors returned by the package.
var (
	ErrCorrupted = errors.New("ledger: chain verification failed")
	ErrBadValue  = errors.New("ledger: non-finite trade value")
)

// Ledger is a thread-safe hash chain.
type Ledger struct {
	mu     sync.RWMutex
	blocks []Block
}

// New creates a ledger with a genesis block.
func New() *Ledger {
	l := &Ledger{}
	genesis := Block{Index: 0, Window: -1}
	genesis.Hash = genesis.computeHash()
	l.blocks = []Block{genesis}
	return l
}

// computeHash hashes the block contents (excluding Hash itself).
func (b *Block) computeHash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(b.Index))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(int64(b.Window)))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(b.PriceCentsPerKWh))
	h.Write(buf[:])
	for _, t := range b.Trades {
		h.Write([]byte(t.Seller))
		h.Write([]byte{0})
		h.Write([]byte(t.Buyer))
		h.Write([]byte{0})
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(t.EnergyKWh))
		h.Write(buf[:])
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(t.PaymentCents))
		h.Write(buf[:])
	}
	h.Write(b.PrevHash[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Append commits the trades of one window as a new block and returns it.
func (l *Ledger) Append(window int, price float64, trades []TradeRecord) (Block, error) {
	for _, t := range trades {
		if math.IsNaN(t.EnergyKWh) || math.IsInf(t.EnergyKWh, 0) ||
			math.IsNaN(t.PaymentCents) || math.IsInf(t.PaymentCents, 0) {
			return Block{}, ErrBadValue
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.blocks[len(l.blocks)-1]
	blk := Block{
		Index:            prev.Index + 1,
		Window:           window,
		PriceCentsPerKWh: price,
		Trades:           append([]TradeRecord(nil), trades...),
		PrevHash:         prev.Hash,
	}
	blk.Hash = blk.computeHash()
	l.blocks = append(l.blocks, blk)
	return blk, nil
}

// FromBlocks reconstructs a ledger from a persisted chain — genesis first,
// in append order — verifying every hash and link before accepting it, so
// a store-recovered chain is exactly as trustworthy as a live one. Returns
// ErrCorrupted (wrapped) when the chain does not verify.
func FromBlocks(blocks []Block) (*Ledger, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrCorrupted)
	}
	l := &Ledger{blocks: append([]Block(nil), blocks...)}
	if err := l.Verify(); err != nil {
		return nil, err
	}
	return l, nil
}

// Len returns the chain height including genesis.
func (l *Ledger) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.blocks)
}

// Block returns the block at the given height.
func (l *Ledger) Block(i int) (Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.blocks) {
		return Block{}, fmt.Errorf("ledger: block %d out of range [0,%d)", i, len(l.blocks))
	}
	return l.blocks[i], nil
}

// Head returns the latest block.
func (l *Ledger) Head() Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.blocks[len(l.blocks)-1]
}

// Verify walks the chain, recomputing hashes and links. It returns
// ErrCorrupted (wrapped with the offending height) on any mismatch.
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i, b := range l.blocks {
		if b.Index != i {
			return fmt.Errorf("%w: block %d has index %d", ErrCorrupted, i, b.Index)
		}
		if b.computeHash() != b.Hash {
			return fmt.Errorf("%w: block %d hash mismatch", ErrCorrupted, i)
		}
		if i > 0 && b.PrevHash != l.blocks[i-1].Hash {
			return fmt.Errorf("%w: block %d prev-link broken", ErrCorrupted, i)
		}
	}
	return nil
}

// TamperForTest mutates a block in place so tests can exercise Verify.
// It must never be used outside tests.
func (l *Ledger) TamperForTest(i int, mutate func(*Block)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.blocks) {
		return fmt.Errorf("ledger: block %d out of range", i)
	}
	mutate(&l.blocks[i])
	return nil
}

// EnergyBySeller aggregates total energy sold per seller across the chain,
// a typical audit query.
func (l *Ledger) EnergyBySeller() map[string]float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]float64)
	for _, b := range l.blocks {
		for _, t := range b.Trades {
			out[t.Seller] += t.EnergyKWh
		}
	}
	return out
}

// HashString renders a block hash for logs.
func HashString(h [32]byte) string { return hex.EncodeToString(h[:8]) }
