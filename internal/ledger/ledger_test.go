package ledger

import (
	"math"
	"sync"
	"testing"
)

func TestGenesis(t *testing.T) {
	l := New()
	if l.Len() != 1 {
		t.Fatalf("new ledger height = %d, want 1", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("fresh ledger fails verification: %v", err)
	}
}

func TestAppendAndVerify(t *testing.T) {
	l := New()
	for w := 0; w < 5; w++ {
		_, err := l.Append(w, 95.5, []TradeRecord{
			{Seller: "s1", Buyer: "b1", EnergyKWh: 0.5, PaymentCents: 47.75},
			{Seller: "s1", Buyer: "b2", EnergyKWh: 0.25, PaymentCents: 23.88},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 6 {
		t.Fatalf("height = %d", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	head := l.Head()
	if head.Window != 4 {
		t.Errorf("head window = %d", head.Window)
	}
}

func TestChainLinks(t *testing.T) {
	l := New()
	b1, err := l.Append(0, 90, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := l.Append(1, 91, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b2.PrevHash != b1.Hash {
		t.Error("prev link broken at append time")
	}
}

func TestVerifyDetectsTamperedTrade(t *testing.T) {
	l := New()
	if _, err := l.Append(0, 95, []TradeRecord{{Seller: "s", Buyer: "b", EnergyKWh: 1, PaymentCents: 95}}); err != nil {
		t.Fatal(err)
	}
	if err := l.TamperForTest(1, func(b *Block) { b.Trades[0].PaymentCents = 1 }); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err == nil {
		t.Error("tampered payment not detected")
	}
}

func TestVerifyDetectsBrokenLink(t *testing.T) {
	l := New()
	l.Append(0, 95, nil)
	l.Append(1, 95, nil)
	if err := l.TamperForTest(1, func(b *Block) {
		b.Trades = append(b.Trades, TradeRecord{Seller: "evil", Buyer: "x", EnergyKWh: 99})
		b.Hash = b.computeHash() // recompute own hash to fake consistency
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err == nil {
		t.Error("re-hashed block with broken successor link not detected")
	}
}

func TestAppendRejectsNonFinite(t *testing.T) {
	l := New()
	if _, err := l.Append(0, 95, []TradeRecord{{Seller: "s", Buyer: "b", EnergyKWh: math.NaN()}}); err == nil {
		t.Error("NaN energy accepted")
	}
	if _, err := l.Append(0, 95, []TradeRecord{{Seller: "s", Buyer: "b", PaymentCents: math.Inf(1)}}); err == nil {
		t.Error("infinite payment accepted")
	}
}

func TestBlockAccess(t *testing.T) {
	l := New()
	l.Append(7, 99, nil)
	b, err := l.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Window != 7 {
		t.Errorf("window = %d", b.Window)
	}
	if _, err := l.Block(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := l.Block(99); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestEnergyBySeller(t *testing.T) {
	l := New()
	l.Append(0, 95, []TradeRecord{
		{Seller: "s1", Buyer: "b1", EnergyKWh: 1},
		{Seller: "s2", Buyer: "b1", EnergyKWh: 2},
	})
	l.Append(1, 95, []TradeRecord{
		{Seller: "s1", Buyer: "b2", EnergyKWh: 3},
	})
	agg := l.EnergyBySeller()
	if agg["s1"] != 4 || agg["s2"] != 2 {
		t.Errorf("aggregation wrong: %v", agg)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := l.Append(w, 95, nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 21 {
		t.Fatalf("height = %d, want 21", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHashString(t *testing.T) {
	l := New()
	s := HashString(l.Head().Hash)
	if len(s) != 16 {
		t.Errorf("HashString length = %d", len(s))
	}
}
