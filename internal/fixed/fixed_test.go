package fixed

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []struct {
		in   float64
		want Value
	}{
		{0, 0},
		{1, Scale},
		{-1, -Scale},
		{0.5, Scale / 2},
		{123.456789, 123_456_789},
		{-0.000001, -1},
		{0.0000004, 0},   // rounds down
		{0.0000006, 1},   // rounds up
		{-0.0000006, -1}, // rounds away from zero
	}
	for _, c := range cases {
		got, err := FromFloat(c.in)
		if err != nil {
			t.Fatalf("FromFloat(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("FromFloat(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFromFloatErrors(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := FromFloat(f); err == nil {
			t.Errorf("FromFloat(%v): want error", f)
		}
	}
	if _, err := FromFloat(1e19); err == nil {
		t.Error("FromFloat(1e19): want overflow error")
	}
}

func TestFloatInverse(t *testing.T) {
	if err := quick.Check(func(raw int64) bool {
		v := Value(raw % (1 << 50))
		back, err := FromFloat(v.Float())
		return err == nil && back == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBigRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw int64) bool {
		v := Value(raw)
		back, err := FromBig(v.Big())
		return err == nil && back == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBigOverflow(t *testing.T) {
	huge := new(big.Int).Lsh(big.NewInt(1), 80)
	if _, err := FromBig(huge); err == nil {
		t.Error("FromBig(2^80): want overflow error")
	}
}

func TestMul(t *testing.T) {
	cases := []struct {
		a, b, want Value
	}{
		{Scale, Scale, Scale},               // 1 * 1 = 1
		{2 * Scale, 3 * Scale, 6 * Scale},   // 2 * 3 = 6
		{Scale / 2, Scale / 2, Scale / 4},   // 0.5 * 0.5 = 0.25
		{-2 * Scale, 3 * Scale, -6 * Scale}, // sign handling
		{-2 * Scale, -3 * Scale, 6 * Scale},
		{0, 12345, 0},
	}
	for _, c := range cases {
		got, err := Mul(c.a, c.b)
		if err != nil {
			t.Fatalf("Mul(%d, %d): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Mul(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulOverflow(t *testing.T) {
	big := Value(math.MaxInt64 / 2)
	if _, err := Mul(big, big); err == nil {
		t.Error("Mul(huge, huge): want overflow error")
	}
}

func TestDiv(t *testing.T) {
	got, err := Div(6*Scale, 3*Scale)
	if err != nil || got != 2*Scale {
		t.Errorf("Div(6, 3) = %d, %v; want 2", got, err)
	}
	got, err = Div(Scale, 3*Scale)
	if err != nil {
		t.Fatal(err)
	}
	if got != 333_333 {
		t.Errorf("Div(1, 3) = %d, want 333333", got)
	}
	if _, err := Div(Scale, 0); err == nil {
		t.Error("Div by zero: want error")
	}
}

func TestMulDivInverseProperty(t *testing.T) {
	// (a*b)/b ≈ a within 1 micro-unit for moderate magnitudes.
	if err := quick.Check(func(ra, rb int32) bool {
		a := Value(ra)
		b := Value(rb)
		if b == 0 {
			return true
		}
		prod, err := Mul(a, b)
		if err != nil {
			return true
		}
		back, err := Div(prod, b)
		if err != nil {
			return true
		}
		diff := back - a
		if diff < 0 {
			diff = -diff
		}
		// Rounding in Mul can lose up to 0.5 micro-unit, amplified by
		// Scale/|b| in Div.
		tol := Value(Scale/int64(b.Abs())) + 1
		return diff <= tol
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestReciprocalExponent(t *testing.T) {
	exp, err := ReciprocalExponent(Value(2 * Scale)) // 1/2
	if err != nil {
		t.Fatal(err)
	}
	want := big.NewInt(RecipScale / (2 * Scale))
	if exp.Cmp(want) != 0 {
		t.Errorf("ReciprocalExponent(2) = %s, want %s", exp, want)
	}
	if _, err := ReciprocalExponent(0); err == nil {
		t.Error("ReciprocalExponent(0): want error")
	}
	if _, err := ReciprocalExponent(-1); err == nil {
		t.Error("ReciprocalExponent(-1): want error")
	}
}

func TestRecipRoundTripProperty(t *testing.T) {
	// For positive sn and E_b, the Protocol 4 pipeline
	//   exp = round(S/sn); masked = E_b * exp; ratio = S/masked
	// must recover sn/E_b with small relative error.
	if err := quick.Check(func(snRaw, ebRaw uint32) bool {
		sn := Value(int64(snRaw%100_000_000) + 100) // 100 micro .. 100 units
		eb := Value(int64(ebRaw%1_000_000_000) + int64(sn))
		exp, err := ReciprocalExponent(sn)
		if err != nil {
			return false
		}
		masked := new(big.Int).Mul(eb.Big(), exp)
		ratio, err := RatioFromMasked(masked)
		if err != nil {
			return false
		}
		want := float64(sn) / float64(eb)
		relErr := math.Abs(ratio-want) / want
		return relErr < 1e-3
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioFromMaskedErrors(t *testing.T) {
	if _, err := RatioFromMasked(big.NewInt(0)); err == nil {
		t.Error("RatioFromMasked(0): want error")
	}
	if _, err := RatioFromMasked(big.NewInt(-5)); err == nil {
		t.Error("RatioFromMasked(-5): want error")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{0, "0.000000"},
		{Scale, "1.000000"},
		{-Scale, "-1.000000"},
		{1_500_000, "1.500000"},
		{-1, "-0.000001"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAbs(t *testing.T) {
	if Value(-5).Abs() != 5 || Value(5).Abs() != 5 || Value(0).Abs() != 0 {
		t.Error("Abs is wrong")
	}
}
