// Package fixed provides fixed-point arithmetic for energy quantities and
// prices exchanged in the PEM protocols.
//
// All protocol-visible quantities (net energy, generation, load, battery
// schedules, utility parameters) are represented as integers in micro-units
// (1e-6 of the base unit, e.g. micro-kWh or micro-cents) so that they can be
// encrypted under Paillier, which operates on integers. The package also
// implements the reciprocal scaling used by Private Distribution
// (Protocol 4), where a buyer homomorphically multiplies Enc(E_b) by an
// integer approximation of 1/|sn_j|.
package fixed

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

const (
	// Scale is the number of micro-units per base unit.
	Scale = 1_000_000

	// RecipScale is the scaling constant S used to turn the reciprocal
	// 1/|sn_j| into the integer exponent round(S/|sn_j|) in Protocol 4.
	RecipScale = 1_000_000_000_000 // 1e12
)

// Value is a fixed-point quantity in micro-units.
type Value int64

// Errors returned by conversions.
var (
	ErrOverflow  = errors.New("fixed: value overflows int64 micro-units")
	ErrNotFinite = errors.New("fixed: value is NaN or infinite")
)

// FromFloat converts a float64 base-unit quantity to a Value, rounding to
// the nearest micro-unit.
func FromFloat(f float64) (Value, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, ErrNotFinite
	}
	scaled := f * Scale
	if scaled >= math.MaxInt64 || scaled <= math.MinInt64 {
		return 0, ErrOverflow
	}
	return Value(math.Round(scaled)), nil
}

// MustFromFloat is FromFloat for known-safe constants; it panics on error.
// Intended for package-level defaults and tests only.
func MustFromFloat(f float64) Value {
	v, err := FromFloat(f)
	if err != nil {
		panic(fmt.Sprintf("fixed: MustFromFloat(%v): %v", f, err))
	}
	return v
}

// Float converts v back to a float64 base-unit quantity.
func (v Value) Float() float64 {
	return float64(v) / Scale
}

// Big returns v as a big.Int in micro-units.
func (v Value) Big() *big.Int {
	return big.NewInt(int64(v))
}

// FromBig converts a micro-unit big.Int back to a Value.
func FromBig(b *big.Int) (Value, error) {
	if !b.IsInt64() {
		return 0, ErrOverflow
	}
	return Value(b.Int64()), nil
}

// Abs returns the absolute value of v.
func (v Value) Abs() Value {
	if v < 0 {
		return -v
	}
	return v
}

// String renders v with six decimal places.
func (v Value) String() string {
	neg := v < 0
	a := v.Abs()
	whole := int64(a) / Scale
	frac := int64(a) % Scale
	sign := ""
	if neg {
		sign = "-"
	}
	return fmt.Sprintf("%s%d.%06d", sign, whole, frac)
}

// Mul returns a*b in micro-units, i.e. (a*b)/Scale with round-to-nearest.
// It uses 128-bit intermediate arithmetic, so it cannot silently overflow
// the intermediate product; it returns ErrOverflow if the result does not
// fit in a Value.
func Mul(a, b Value) (Value, error) {
	return mulDiv(a, b, Scale)
}

// Div returns a/b in micro-units, i.e. (a*Scale)/b with round-to-nearest.
func Div(a, b Value) (Value, error) {
	if b == 0 {
		return 0, errors.New("fixed: division by zero")
	}
	return mulDiv(a, Scale, int64(b))
}

// mulDiv computes round(a*b/den) using 128-bit intermediates.
func mulDiv(a, b Value, den int64) (Value, error) {
	neg := false
	ua, ub, uden := uint64(a), uint64(b), uint64(den)
	if a < 0 {
		neg = !neg
		ua = uint64(-a)
	}
	if b < 0 {
		neg = !neg
		ub = uint64(-b)
	}
	if den < 0 {
		neg = !neg
		uden = uint64(-den)
	}
	hi, lo := bits.Mul64(ua, ub)
	if hi >= uden {
		return 0, ErrOverflow
	}
	q, r := bits.Div64(hi, lo, uden)
	// Round to nearest, ties away from zero.
	if r >= uden-r {
		q++
	}
	if q > math.MaxInt64 {
		return 0, ErrOverflow
	}
	if neg {
		return Value(-int64(q)), nil
	}
	return Value(int64(q)), nil
}

// ReciprocalExponent returns the integer exponent k = round(RecipScale/v)
// used in Protocol 4 to homomorphically compute Enc(E_b * RecipScale / v).
// v must be strictly positive.
func ReciprocalExponent(v Value) (*big.Int, error) {
	if v <= 0 {
		return nil, fmt.Errorf("fixed: reciprocal of non-positive value %d", v)
	}
	num := big.NewInt(RecipScale)
	den := big.NewInt(int64(v))
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	// Round to nearest.
	r.Lsh(r, 1)
	if r.Cmp(den) >= 0 {
		q.Add(q, big.NewInt(1))
	}
	return q, nil
}

// RatioFromMasked recovers the demand ratio |sn_j| / E_b from the decrypted
// masked product m = E_b * round(RecipScale/|sn_j|). The chosen seller in
// Protocol 4 calls this to derive the allocation ratios it broadcasts.
func RatioFromMasked(masked *big.Int) (float64, error) {
	if masked.Sign() <= 0 {
		return 0, fmt.Errorf("fixed: masked ratio must be positive, got %s", masked)
	}
	f := new(big.Float).SetInt(masked)
	s := new(big.Float).SetInt64(RecipScale)
	ratio, _ := new(big.Float).Quo(s, f).Float64()
	return ratio, nil
}
