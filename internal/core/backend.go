package core

import (
	"context"
	"fmt"
	"math/big"

	"github.com/pem-go/pem/internal/fixed"
	"github.com/pem-go/pem/internal/market"
)

// Crypto backends (Config.CryptoBackend).
const (
	// BackendPaillier runs every phase of Protocols 2–4 on Paillier
	// homomorphic encryption, the paper's construction.
	BackendPaillier = "paillier"
	// BackendHybrid runs the aggregation phases of Protocols 2–3 and the
	// Rb/Rs comparison on seeded additive masking over fixed-point integers,
	// keeping Paillier only where a single party must decrypt (Protocol 4's
	// masked-ratio step). Outcomes are bit-identical to BackendPaillier; the
	// leakage differences are documented in DESIGN.md §12.
	BackendHybrid = "hybrid"
)

// cryptoBackend is the pluggable window crypto layer: the phase operations
// Protocols 2–4 actually perform, abstracted over how the intermediate
// values are protected in transit. protocol{2,3,4}.go orchestrate *who*
// performs each phase; a backend decides *how* a phase's values are hidden
// (Paillier ciphertexts vs pairwise additive masks) and moves the bytes.
//
// Every implementation must preserve two invariants the rest of the engine
// relies on: phase outcomes are bit-identical to the plaintext oracle for
// honest inputs, and every wire frame has a size independent of the values
// carried (fixed-width ciphertexts or fixed-width masked words), so netem's
// byte and message accounting stays exact across backends.
type cryptoBackend interface {
	// name reports the Config.CryptoBackend constant this backend serves.
	name() string

	// aggregateSum is the member side of a Protocol 2 masked sum: fold this
	// party's contribution into the running total along the configured
	// topology (ring or tree) over order, delivering the result to sink —
	// who is also the party allowed to learn the total.
	aggregateSum(ctx context.Context, r *windowRun, order []string, sink, tag string, contribution *big.Int) error
	// collectSum is the sink side of aggregateSum: recover the plaintext
	// total of the members' contributions.
	collectSum(ctx context.Context, r *windowRun, order []string, tag string) (*big.Int, error)

	// compareTotals decides the market kind from the nonce-masked totals:
	// Hr1 supplies Rb, Hr2 supplies Rs (masked is this party's own total;
	// zero for everyone else), and all parties return the same one-bit
	// outcome: general iff Rb > Rs.
	compareTotals(ctx context.Context, r *windowRun, masked uint64) (market.Kind, error)

	// pricingFold is one seller's step of the fused Protocol 3 pass: fold
	// the pair (k_i, g_i+1+ε_i·b_i−b_i) into the running pair along the
	// seller ring toward Hb.
	pricingFold(ctx context.Context, r *windowRun, tag string, k, term *big.Int) error
	// collectPair is Hb's side of pricingFold: recover (Σk_i, Σterm_i).
	collectPair(ctx context.Context, r *windowRun, tag string) (*big.Int, *big.Int, error)

	// distributionTotal is the demand side of Protocol 4 step 1: aggregate
	// Enc_hs(|sn|) and broadcast the encrypted total within the demand side.
	distributionTotal(ctx context.Context, r *windowRun, demandSide []string, hs, tagRing, tagTotal string, absSn fixed.Value) error
	// maskedReciprocal is Protocol 4 step 2: ship Enc(total)^round(S/|sn|)
	// to Hs.
	maskedReciprocal(ctx context.Context, r *windowRun, hs, tagTotal, tagMasked string, absSn fixed.Value) error
	// ratios is Hs's side of Protocol 4 step 3: decrypt the masked values,
	// recover the allocation ratios and broadcast them to the supply side.
	ratios(ctx context.Context, r *windowRun, demandSide, supplySide []string, tagMasked, tagRatios string) (map[string]float64, error)
}

// Backend singletons: backends are stateless (all per-party and per-window
// state lives on Party and windowRun), so one instance serves every party.
var (
	thePaillierBackend = &paillierBackend{}
	theHybridBackend   = &hybridBackend{}
)

// newBackend maps a validated Config.CryptoBackend to its implementation.
func newBackend(name string) (cryptoBackend, error) {
	switch name {
	case BackendPaillier:
		return thePaillierBackend, nil
	case BackendHybrid:
		return theHybridBackend, nil
	default:
		return nil, fmt.Errorf("core: unknown crypto backend %q", name)
	}
}

// parseKindByte validates a one-byte market-kind announcement.
func parseKindByte(raw []byte) (market.Kind, error) {
	if len(raw) != 1 {
		return 0, fmt.Errorf("bad market-kind announcement")
	}
	kind := market.Kind(raw[0])
	if kind != market.GeneralMarket && kind != market.ExtremeMarket {
		return 0, fmt.Errorf("invalid market kind %d", raw[0])
	}
	return kind, nil
}
