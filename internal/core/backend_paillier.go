package core

import (
	"context"
	"fmt"
	"math/big"

	"github.com/pem-go/pem/internal/fixed"
	"github.com/pem-go/pem/internal/gc"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// paillierBackend is the paper's construction: every aggregation folds
// Paillier ciphertexts under the sink's key (rings.go), the Rb/Rs decision
// runs the garbled-circuit comparator between Hr1 and Hr2, and Protocol 4
// uses the encrypted reciprocal trick. It delegates to the windowRun
// helpers that implement those mechanics.
type paillierBackend struct{}

var _ cryptoBackend = (*paillierBackend)(nil)

func (*paillierBackend) name() string { return BackendPaillier }

func (*paillierBackend) aggregateSum(ctx context.Context, r *windowRun, order []string, sink, tag string, contribution *big.Int) error {
	return r.aggregate(ctx, order, sink, sink, tag, contribution)
}

func (*paillierBackend) collectSum(ctx context.Context, r *windowRun, order []string, tag string) (*big.Int, error) {
	return r.collect(ctx, order, tag)
}

// compareTotals runs the secure comparison between Hr1 (garbler, input Rb)
// and Hr2 (evaluator, input Rs): general market iff Rb > Rs ⇔ E_b > E_s.
// Hr1 then announces the public one-bit outcome to everyone except Hr2, who
// learned it inside the comparison.
func (*paillierBackend) compareTotals(ctx context.Context, r *windowRun, masked uint64) (market.Kind, error) {
	ros := r.ros
	opts := gc.ProtocolOptions{
		Group:          r.cfg.OTGroup,
		Random:         r.random,
		UseOTExtension: r.cfg.UseOTExtension,
		DisableFreeXOR: r.cfg.DisableFreeXOR,
		GRR3:           r.cfg.GRR3,
	}
	session := r.tag("pme/cmp")
	kindTag := r.tag("pme/kind")

	switch r.ID() {
	case ros.hr1:
		res, err := gc.SecureCompareGarbler(ctx, r.conn, ros.hr2, session, masked, r.cfg.CompareBits, opts)
		if err != nil {
			return 0, fmt.Errorf("secure comparison: %w", err)
		}
		kind := market.ExtremeMarket
		if res == gc.LeftGreater {
			kind = market.GeneralMarket
		}
		msg := []byte{byte(kind)}
		for _, id := range ros.all {
			if id == r.ID() || id == ros.hr2 {
				continue
			}
			if err := r.conn.Send(ctx, id, kindTag, msg); err != nil {
				return 0, err
			}
		}
		return kind, nil

	case ros.hr2:
		res, err := gc.SecureCompareEvaluator(ctx, r.conn, ros.hr1, session, masked, r.cfg.CompareBits, opts)
		if err != nil {
			return 0, fmt.Errorf("secure comparison: %w", err)
		}
		if res == gc.LeftGreater {
			return market.GeneralMarket, nil
		}
		return market.ExtremeMarket, nil

	default:
		raw, err := r.conn.Recv(ctx, ros.hr1, kindTag)
		if err != nil {
			return 0, err
		}
		kind, err := parseKindByte(raw)
		transport.PutFrame(raw)
		return kind, err
	}
}

func (*paillierBackend) pricingFold(ctx context.Context, r *windowRun, tag string, k, term *big.Int) error {
	return r.pricingRingStep(ctx, tag, k, term)
}

// collectPair receives the fused pair aggregate from the last seller in the
// pricing ring and decrypts both sums across the shared worker pool.
func (*paillierBackend) collectPair(ctx context.Context, r *windowRun, tag string) (*big.Int, *big.Int, error) {
	ros := r.ros
	last := ros.sellers[len(ros.sellers)-1]
	raw, err := r.conn.Recv(ctx, last, tag)
	if err != nil {
		return nil, nil, fmt.Errorf("pricing: recv aggregate: %w", err)
	}
	ctK, ctT, err := decodeCipherPair(raw)
	transport.PutFrame(raw)
	if err != nil {
		return nil, nil, err
	}
	sums, err := r.key.DecryptBatch(r.workers, []*paillier.Ciphertext{ctK, ctT})
	if err != nil {
		return nil, nil, fmt.Errorf("pricing: decrypt aggregates: %w", err)
	}
	return sums[0], sums[1], nil
}

func (*paillierBackend) distributionTotal(ctx context.Context, r *windowRun, demandSide []string, hs, tagRing, tagTotal string, absSn fixed.Value) error {
	return r.distributionAggregate(ctx, demandSide, hs, tagRing, tagTotal, absSn)
}

func (*paillierBackend) maskedReciprocal(ctx context.Context, r *windowRun, hs, tagTotal, tagMasked string, absSn fixed.Value) error {
	return r.sendMaskedReciprocal(ctx, hs, tagTotal, tagMasked, absSn)
}

func (*paillierBackend) ratios(ctx context.Context, r *windowRun, demandSide, supplySide []string, tagMasked, tagRatios string) (map[string]float64, error) {
	return r.collectRatios(ctx, demandSide, supplySide, tagMasked, tagRatios)
}
