package core

import (
	"context"
	"fmt"
	"math/big"

	"github.com/pem-go/pem/internal/paillier"
)

// encryptUnder encrypts m under the public key of holder, using the
// pre-computed blinding-factor pool when enabled (the paper's idle-time
// encryption). The pool is session-scoped and shared by concurrent
// windows; the inline fallback draws from this window's own stream.
func (r *windowRun) encryptUnder(ctx context.Context, holder string, m *big.Int) (*paillier.Ciphertext, error) {
	pk, ok := r.dir[holder]
	if !ok {
		return nil, fmt.Errorf("no public key for %s", holder)
	}
	if !r.cfg.PreEncrypt {
		return pk.Encrypt(r.random, m)
	}
	pool := r.poolFor(holder, pk)
	factor, err := pool.Take(ctx)
	if err != nil {
		return nil, err
	}
	return pk.EncryptWithFactor(m, factor)
}

// ringAggregate implements the sequential homomorphic accumulation used by
// Protocols 2–4: the parties in order each fold their encrypted
// contribution into a running ciphertext, and the final product is sent to
// sink. Exactly one of the ring members starts the chain.
//
// order lists the ring members; every member must call ringAggregate with
// identical arguments. contribution is this party's plaintext (already
// fixed-point encoded); keyHolder identifies whose public key encrypts the
// chain; tag scopes the messages. Members not in order (and the sink)
// receive the result via ringCollect instead.
func (r *windowRun) ringAggregate(ctx context.Context, order []string, keyHolder, sink, tag string, contribution *big.Int) error {
	pos := -1
	for i, id := range order {
		if id == r.ID() {
			pos = i
			break
		}
	}
	if pos == -1 {
		return fmt.Errorf("party %s not in ring %s", r.ID(), tag)
	}

	enc, err := r.encryptUnder(ctx, keyHolder, contribution)
	if err != nil {
		return fmt.Errorf("ring %s: encrypt: %w", tag, err)
	}

	acc := enc
	if pos > 0 {
		raw, err := r.conn.Recv(ctx, order[pos-1], tag)
		if err != nil {
			return fmt.Errorf("ring %s: recv: %w", tag, err)
		}
		var incoming paillier.Ciphertext
		if err := incoming.UnmarshalBinary(raw); err != nil {
			return fmt.Errorf("ring %s: decode: %w", tag, err)
		}
		pk := r.dir[keyHolder]
		acc, err = pk.Add(&incoming, enc)
		if err != nil {
			return fmt.Errorf("ring %s: fold: %w", tag, err)
		}
	}

	next := sink
	if pos+1 < len(order) {
		next = order[pos+1]
	}
	out, err := acc.MarshalBinary()
	if err != nil {
		return err
	}
	if err := r.conn.Send(ctx, next, tag, out); err != nil {
		return fmt.Errorf("ring %s: send: %w", tag, err)
	}
	return nil
}

// ringCollect is the sink side of ringAggregate: receive the final
// ciphertext from the last ring member and decrypt it.
func (r *windowRun) ringCollect(ctx context.Context, order []string, tag string) (*big.Int, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("ring %s: empty ring", tag)
	}
	raw, err := r.conn.Recv(ctx, order[len(order)-1], tag)
	if err != nil {
		return nil, fmt.Errorf("ring %s: recv final: %w", tag, err)
	}
	var ct paillier.Ciphertext
	if err := ct.UnmarshalBinary(raw); err != nil {
		return nil, fmt.Errorf("ring %s: decode final: %w", tag, err)
	}
	m, err := r.key.Decrypt(&ct)
	if err != nil {
		return nil, fmt.Errorf("ring %s: decrypt: %w", tag, err)
	}
	return m, nil
}

// without returns order with the given id removed (order is not mutated).
func without(order []string, id string) []string {
	out := make([]string, 0, len(order))
	for _, x := range order {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// broadcast sends payload to every listed party except self.
func (r *windowRun) broadcast(ctx context.Context, to []string, tag string, payload []byte) error {
	for _, id := range to {
		if id == r.ID() {
			continue
		}
		if err := r.conn.Send(ctx, id, tag, payload); err != nil {
			return err
		}
	}
	return nil
}
