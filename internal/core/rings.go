package core

import (
	"context"
	"fmt"
	"math/big"
	"sync"

	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// encryptUnder encrypts m under the public key of holder, using the
// pre-computed blinding-factor pool when enabled (the paper's idle-time
// encryption). The pool is session-scoped and shared by concurrent
// windows; the inline fallback draws from this window's own stream.
func (r *windowRun) encryptUnder(ctx context.Context, holder string, m *big.Int) (*paillier.Ciphertext, error) {
	pk, ok := r.dir[holder]
	if !ok {
		return nil, fmt.Errorf("no public key for %s", holder)
	}
	if !r.cfg.PreEncrypt {
		return pk.Encrypt(r.random, m)
	}
	pool := r.poolFor(holder, pk)
	factor, err := pool.Take(ctx)
	if err != nil {
		return nil, err
	}
	return pk.EncryptWithFactor(m, factor)
}

// ringAggregate implements the sequential homomorphic accumulation used by
// Protocols 2–4: the parties in order each fold their encrypted
// contribution into a running ciphertext, and the final product is sent to
// sink. Exactly one of the ring members starts the chain.
//
// order lists the ring members; every member must call ringAggregate with
// identical arguments. contribution is this party's plaintext (already
// fixed-point encoded); keyHolder identifies whose public key encrypts the
// chain; tag scopes the messages. Members not in order (and the sink)
// receive the result via collect instead.
func (r *windowRun) ringAggregate(ctx context.Context, order []string, keyHolder, sink, tag string, contribution *big.Int) error {
	pos := -1
	for i, id := range order {
		if id == r.ID() {
			pos = i
			break
		}
	}
	if pos == -1 {
		return fmt.Errorf("party %s not in ring %s", r.ID(), tag)
	}

	enc, err := r.encryptUnder(ctx, keyHolder, contribution)
	if err != nil {
		return fmt.Errorf("ring %s: encrypt: %w", tag, err)
	}

	acc := enc
	if pos > 0 {
		raw, err := r.conn.Recv(ctx, order[pos-1], tag)
		if err != nil {
			return fmt.Errorf("ring %s: recv: %w", tag, err)
		}
		var incoming paillier.Ciphertext
		err = incoming.UnmarshalBinary(raw)
		transport.PutFrame(raw)
		if err != nil {
			return fmt.Errorf("ring %s: decode: %w", tag, err)
		}
		if err := r.dir[keyHolder].AddInPlace(&incoming, enc); err != nil {
			return fmt.Errorf("ring %s: fold: %w", tag, err)
		}
		acc = &incoming
	}

	next := sink
	if pos+1 < len(order) {
		next = order[pos+1]
	}
	if err := r.sendCipher(ctx, r.dir[keyHolder], acc, next, tag); err != nil {
		return fmt.Errorf("ring %s: send: %w", tag, err)
	}
	return nil
}

// sendCipher serializes ct fixed-width into a pooled frame, sends it and
// recycles the frame (Send leaves buffer ownership with the caller).
func (r *windowRun) sendCipher(ctx context.Context, pk *paillier.PublicKey, ct *paillier.Ciphertext, to, tag string) error {
	buf := transport.GetFrame(pk.FixedLen())
	out, err := ct.AppendFixed(buf[:0], pk)
	if err != nil {
		transport.PutFrame(buf)
		return err
	}
	err = r.conn.Send(ctx, to, tag, out)
	transport.PutFrame(out)
	return err
}

// aggregate folds the ring members' encrypted contributions into a single
// ciphertext delivered to sink, using the configured topology: the paper's
// sequential ring (O(n) message latency) or a log-depth binary reduction
// tree. Every member must call it with identical arguments; the sink calls
// collect instead. Both topologies expose exactly the same information —
// every intermediate value is a partial sum encrypted under the sink's key.
func (r *windowRun) aggregate(ctx context.Context, order []string, keyHolder, sink, tag string, contribution *big.Int) error {
	if r.cfg.Aggregation == AggregationTree {
		acc, isRoot, err := r.foldTree(ctx, order, keyHolder, tag, contribution)
		if err != nil {
			return err
		}
		if !isRoot {
			return nil
		}
		if err := r.sendCipher(ctx, r.dir[keyHolder], acc, sink, tag); err != nil {
			return fmt.Errorf("tree %s: send: %w", tag, err)
		}
		return nil
	}
	return r.ringAggregate(ctx, order, keyHolder, sink, tag, contribution)
}

// collect is the sink side of aggregate: receive the final ciphertext from
// the topology's root member and decrypt it.
func (r *windowRun) collect(ctx context.Context, order []string, tag string) (*big.Int, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("agg %s: empty member set", tag)
	}
	raw, err := r.conn.Recv(ctx, r.aggregationRoot(order), tag)
	if err != nil {
		return nil, fmt.Errorf("agg %s: recv final: %w", tag, err)
	}
	var ct paillier.Ciphertext
	err = ct.UnmarshalBinary(raw)
	transport.PutFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("agg %s: decode final: %w", tag, err)
	}
	m, err := r.key.Decrypt(&ct)
	if err != nil {
		return nil, fmt.Errorf("agg %s: decrypt: %w", tag, err)
	}
	return m, nil
}

// aggregationRoot returns the member holding the final aggregate: the last
// member of a ring chain, the first leaf of a reduction tree.
func (r *windowRun) aggregationRoot(order []string) string {
	if r.cfg.Aggregation == AggregationTree {
		return order[0]
	}
	return order[len(order)-1]
}

// foldTree is one member's side of the binary reduction tree: at stride s
// the members still active are the multiples of s; those at odd multiples
// send their partial to the even-multiple neighbour s positions below and
// drop out, the rest fold the received partial and continue. After
// ceil(log2 n) rounds member 0 holds the total and reports isRoot = true
// (with the accumulated ciphertext); everyone else has already forwarded.
func (r *windowRun) foldTree(ctx context.Context, order []string, keyHolder, tag string, contribution *big.Int) (*paillier.Ciphertext, bool, error) {
	pos := -1
	for i, id := range order {
		if id == r.ID() {
			pos = i
			break
		}
	}
	if pos == -1 {
		return nil, false, fmt.Errorf("party %s not in tree %s", r.ID(), tag)
	}
	n := len(order)

	acc, err := r.encryptUnder(ctx, keyHolder, contribution)
	if err != nil {
		return nil, false, fmt.Errorf("tree %s: encrypt: %w", tag, err)
	}
	pk := r.dir[keyHolder]
	var incoming paillier.Ciphertext // reused across strides
	for stride := 1; stride < n; stride *= 2 {
		if pos%(2*stride) == stride {
			// Odd multiple of stride: forward the partial downhill, done.
			if err := r.sendCipher(ctx, pk, acc, order[pos-stride], tag); err != nil {
				return nil, false, fmt.Errorf("tree %s: send: %w", tag, err)
			}
			return nil, false, nil
		}
		// Even multiple: fold the uphill neighbour's partial, if it exists.
		partner := pos + stride
		if partner >= n {
			continue
		}
		raw, err := r.conn.Recv(ctx, order[partner], tag)
		if err != nil {
			return nil, false, fmt.Errorf("tree %s: recv: %w", tag, err)
		}
		err = incoming.UnmarshalBinary(raw)
		transport.PutFrame(raw)
		if err != nil {
			return nil, false, fmt.Errorf("tree %s: decode: %w", tag, err)
		}
		if err := pk.AddInPlace(acc, &incoming); err != nil {
			return nil, false, fmt.Errorf("tree %s: fold: %w", tag, err)
		}
	}
	return acc, true, nil
}

// without returns order with the given id removed (order is not mutated).
func without(order []string, id string) []string {
	out := make([]string, 0, len(order))
	for _, x := range order {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// broadcast fans payload out to every listed party except self. Sends to
// distinct peers are independent, so they run concurrently — with the TCP
// transport's per-connection write locks no single slow peer delays the
// others. The first failure (by roster order) is returned after all sends
// settle.
//
// When the transport's Send provably never blocks (the in-memory bus, with
// or without fault/netem wrappers), the fan-out runs as a plain sequential
// loop instead: no goroutines, no error slice, no filtered roster copy.
// Outcomes are identical — netem draws its delay realizations per link, so
// sends to distinct peers carry the same virtual timestamps in any order.
func (r *windowRun) broadcast(ctx context.Context, to []string, tag string, payload []byte) error {
	if transport.SendNeverBlocks(r.conn) {
		for _, id := range to {
			if id == r.ID() {
				continue
			}
			if err := r.conn.Send(ctx, id, tag, payload); err != nil {
				return err
			}
		}
		return nil
	}
	peers := without(to, r.ID())
	switch len(peers) {
	case 0:
		return nil
	case 1:
		return r.conn.Send(ctx, peers[0], tag, payload)
	}
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, id := range peers {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			errs[i] = r.conn.Send(ctx, id, tag, payload)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
