package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// This file supports standalone deployments where each party runs in its
// own process (cmd/pem-agent) over TCP, rather than inside an Engine.
// Protocol 1 line 2 — "Hi generates key pair and shares pki" — is realized
// by ExchangeKeys.

// keyExchangeTag is the tag for the Paillier public-key broadcast.
const keyExchangeTag = "keys/paillier"

// NewStandaloneParty creates a self-contained party: it generates its own
// Paillier key pair and will discover peers' keys via ExchangeKeys.
func NewStandaloneParty(cfg Config, agent market.Agent, conn transport.Conn) (*Party, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := agent.Validate(); err != nil {
		return nil, err
	}
	if conn == nil {
		return nil, errors.New("core: nil transport")
	}
	if conn.Party() != agent.ID {
		return nil, fmt.Errorf("core: transport party %q != agent %q", conn.Party(), agent.ID)
	}
	if cfg.CryptoBackend == BackendHybrid {
		// The hybrid backend's pairwise mask seeds are engine-provisioned;
		// a standalone fleet would need a pairwise DH handshake grafted
		// onto ExchangeKeys to establish them. Until that exists, fail
		// loudly instead of running a window that deadlocks on missing
		// seeds.
		return nil, errors.New("core: hybrid backend not supported for standalone parties (mask seeds are engine-provisioned); use the paillier backend")
	}
	key, err := paillier.GenerateKey(partyRandom(cfg, agent.ID, "keygen"), cfg.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("core: keygen: %w", err)
	}
	dir := map[string]*paillier.PublicKey{agent.ID: &key.PublicKey}
	return newParty(cfg, agent, conn, key, dir, paillier.NewWorkers(cfg.CryptoWorkers), nil), nil
}

// ExchangeKeys broadcasts this party's Paillier public key to every peer
// and collects theirs, populating the key directory. All parties must call
// it with the same peer roster (excluding themselves is allowed; the local
// ID is skipped).
func (p *Party) ExchangeKeys(ctx context.Context, peers []string) error {
	raw, err := p.key.PublicKey.MarshalBinary()
	if err != nil {
		return err
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for _, id := range sorted {
		if id == p.ID() {
			continue
		}
		if err := p.conn.Send(ctx, id, keyExchangeTag, raw); err != nil {
			return fmt.Errorf("core: send key to %s: %w", id, err)
		}
	}
	for _, id := range sorted {
		if id == p.ID() {
			continue
		}
		data, err := p.conn.Recv(ctx, id, keyExchangeTag)
		if err != nil {
			return fmt.Errorf("core: recv key from %s: %w", id, err)
		}
		var pk paillier.PublicKey
		if err := pk.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("core: bad key from %s: %w", id, err)
		}
		if pk.Bits() < p.cfg.KeyBits-1 {
			return fmt.Errorf("core: %s offered a %d-bit key, expected ≥%d", id, pk.Bits(), p.cfg.KeyBits-1)
		}
		p.dir[id] = &pk
	}
	// The key directory just grew: refresh the cached fleet roster the
	// role-announcement phase iterates every window.
	p.allSorted = sortedRoster(p.dir)
	return nil
}

// PartyOutcome is the public result of one window as seen by a standalone
// party, plus the trades it participated in as the initiating side.
type PartyOutcome struct {
	// Window is the trading-window number.
	Window int
	// Kind is the evaluated market regime.
	Kind market.Kind
	// Price is the effective trading price in cents/kWh.
	Price float64
	// Degenerate marks windows with an empty coalition (no protocols run).
	Degenerate bool
	// SellerCount is the seller-coalition size.
	SellerCount int
	// BuyerCount is the buyer-coalition size.
	BuyerCount int
	// Trades are the allocations this party initiated as a seller.
	Trades []market.Trade
}

// RunTradingWindow executes Protocol 1 for one window from this party's
// side. Every party in the key directory must call it with the same window
// number concurrently.
func (p *Party) RunTradingWindow(ctx context.Context, window int, input market.WindowInput) (*PartyOutcome, error) {
	if len(p.dir) < 2 {
		return nil, errors.New("core: key directory not populated; call ExchangeKeys first")
	}
	rep, err := p.runWindow(ctx, window, input)
	if err != nil {
		return nil, err
	}
	return &PartyOutcome{
		Window:      window,
		Kind:        rep.kind,
		Price:       rep.price,
		Degenerate:  rep.degenerate,
		SellerCount: rep.sellerCount,
		BuyerCount:  rep.buyerCount,
		Trades:      rep.sellerTrades,
	}, nil
}
