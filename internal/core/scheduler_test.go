package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/transport"
)

// traceJobs builds one WindowJob per window of a synthetic trace.
func traceJobs(t *testing.T, tr *dataset.Trace) []WindowJob {
	t.Helper()
	jobs := make([]WindowJob, tr.Windows)
	for w := 0; w < tr.Windows; w++ {
		inputs, err := tr.WindowInputs(w)
		if err != nil {
			t.Fatal(err)
		}
		jobs[w] = WindowJob{Window: w, Inputs: inputs}
	}
	return jobs
}

// TestPipelinedWindowsMatchSequential runs the same seeded day twice —
// strictly sequentially and with four windows in flight over the shared
// bus — and requires bit-identical public outcomes per window, plus
// agreement with the plaintext reference. Any tag cross-talk between
// concurrent windows would corrupt an aggregate and trip these checks.
func TestPipelinedWindowsMatchSequential(t *testing.T) {
	// This slice of the evening mixes general-market windows (full
	// protocol stack) with degenerate seller-less ones that finish almost
	// instantly — maximal out-of-order completion stress for the
	// in-order delivery guarantee.
	tr, err := dataset.Generate(dataset.Config{Homes: 6, Windows: 8, Seed: 13, StartHour: 18})
	if err != nil {
		t.Fatal(err)
	}
	agents := tr.Agents()

	run := func(inflight int) []*WindowResult {
		cfg := testConfig(77)
		cfg.MaxInflightWindows = inflight
		eng, err := NewEngine(cfg, agents)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
		defer cancel()
		results, err := eng.RunWindows(ctx, traceJobs(t, tr))
		if err != nil {
			t.Fatalf("inflight=%d: %v", inflight, err)
		}
		return results
	}

	seq := run(1)
	pipe := run(4)
	if len(seq) != len(pipe) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(pipe))
	}
	for w := range seq {
		s, p := seq[w], pipe[w]
		if s.Window != w || p.Window != w {
			t.Fatalf("window %d: results out of order (%d, %d)", w, s.Window, p.Window)
		}
		if s.Kind != p.Kind || s.Degenerate != p.Degenerate {
			t.Errorf("window %d: regime differs: %v/%v vs %v/%v", w, s.Kind, s.Degenerate, p.Kind, p.Degenerate)
		}
		if s.Price != p.Price || s.PHat != p.PHat {
			t.Errorf("window %d: price differs: %v/%v vs %v/%v", w, s.Price, s.PHat, p.Price, p.PHat)
		}
		if s.SellerCount != p.SellerCount || s.BuyerCount != p.BuyerCount {
			t.Errorf("window %d: coalition sizes differ", w)
		}
		if len(s.Trades) != len(p.Trades) {
			t.Fatalf("window %d: trade counts differ: %d vs %d", w, len(s.Trades), len(p.Trades))
		}
		for i := range s.Trades {
			if s.Trades[i] != p.Trades[i] {
				t.Errorf("window %d trade %d differs: %+v vs %+v", w, i, s.Trades[i], p.Trades[i])
			}
		}
		// Per-window byte accounting is namespace-exact, so pipelining must
		// not change what a window puts on the wire — except that pooled
		// blinding factors are handed out in scheduling order, and a
		// different factor can shift a ciphertext's marshaled length by a
		// byte. Allow that jitter, nothing more.
		if diff := s.BytesOnWire - p.BytesOnWire; diff > 64 || diff < -64 {
			t.Errorf("window %d: bytes differ: %d vs %d", w, s.BytesOnWire, p.BytesOnWire)
		}
		if !p.Degenerate {
			inputs, err := tr.WindowInputs(w)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesPlaintext(t, p, agents, inputs)
		}
	}
}

// TestFaultWindowCancelsOnlyItself pipelines four windows and kills one of
// them with a window-scoped transport fault: only that window may fail,
// and its neighbours must still produce correct outcomes.
func TestFaultWindowCancelsOnlyItself(t *testing.T) {
	agents := testAgents(4)
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.2, Load: 0.1},
	}
	cfg := testConfig(31)
	cfg.MaxInflightWindows = 4
	eng, err := NewEngine(cfg, agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	p := eng.Parties()[1]
	fc := transport.NewFaultConn(partyConn(p))
	fc.FailWindow(2)
	p.ReplaceConn(fc)

	jobs := make([]WindowJob, 4)
	for w := range jobs {
		jobs[w] = WindowJob{Window: w, Inputs: inputs}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, err := eng.RunWindows(ctx, jobs)
	if err == nil {
		t.Fatal("faulted window succeeded")
	}
	var werr *WindowError
	if !errors.As(err, &werr) || werr.Window != 2 {
		t.Fatalf("error does not identify window 2: %v", err)
	}
	if results[2] != nil {
		t.Error("faulted window produced a result")
	}
	for _, w := range []int{0, 1, 3} {
		if results[w] == nil {
			t.Fatalf("healthy window %d cancelled by window 2's fault", w)
		}
		assertMatchesPlaintext(t, results[w], agents, inputs)
	}
}

// TestFailFastStopsLaunchingWindows drives a deep day through a depth-1
// pipeline with an early fault and checks the scheduler does not execute
// the windows after the failure.
func TestFailFastStopsLaunchingWindows(t *testing.T) {
	agents := testAgents(3)
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
	}
	eng, err := NewEngine(testConfig(33), agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	p := eng.Parties()[0]
	fc := transport.NewFaultConn(partyConn(p))
	fc.FailWindow(1)
	p.ReplaceConn(fc)

	jobs := make([]WindowJob, 6)
	for w := range jobs {
		jobs[w] = WindowJob{Window: w, Inputs: inputs}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, err := eng.RunWindows(ctx, jobs)
	var werr *WindowError
	if !errors.As(err, &werr) || werr.Window != 1 {
		t.Fatalf("error does not identify window 1: %v", err)
	}
	if results[0] == nil {
		t.Error("window 0 missing")
	}
	// With depth 1, nothing past the failed window may have been launched.
	startBytes := eng.Metrics().WindowBytes(3)
	for w := 2; w < 6; w++ {
		if results[w] != nil {
			t.Errorf("window %d ran after fail-fast", w)
		}
	}
	if startBytes != 0 {
		t.Error("window 3 put traffic on the wire after fail-fast")
	}
}

// TestCloseDrainsInflightWindows closes the engine while a window is mid-
// flight: the window must complete normally (its parties keep their nonce
// pools), Close must block until it has drained, and windows scheduled
// after Close must be refused.
func TestCloseDrainsInflightWindows(t *testing.T) {
	agents := testAgents(4)
	eng, err := NewEngine(testConfig(35), agents)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.2, Load: 0.1},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	type outcome struct {
		res *WindowResult
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := eng.RunWindow(ctx, 0, inputs)
		resCh <- outcome{res, err}
	}()

	// Wait until the window is demonstrably in flight, then close.
	for eng.Metrics().WindowBytes(0) == 0 {
		select {
		case out := <-resCh:
			t.Fatalf("window finished before close raced it: %v", out.err)
		case <-time.After(time.Millisecond):
		}
	}
	eng.Close()

	out := <-resCh
	if out.err != nil {
		t.Fatalf("in-flight window broken by Close: %v", out.err)
	}
	assertMatchesPlaintext(t, out.res, agents, inputs)

	if _, err := eng.RunWindow(ctx, 1, inputs); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-Close window error = %v, want ErrEngineClosed", err)
	}
	eng.Close() // idempotent
}

// TestRunWindowsEmpty covers the zero-job edge.
func TestRunWindowsEmpty(t *testing.T) {
	eng, err := NewEngine(testConfig(37), testAgents(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	results, err := eng.RunWindows(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v, %d results", err, len(results))
	}
}

// TestRunWindowCancelledContext guards against the scheduler returning
// neither a result nor an error when the caller's context is already
// cancelled (jobs skipped by the launcher must still surface ctx.Err()).
func TestRunWindowCancelledContext(t *testing.T) {
	eng, err := NewEngine(testConfig(39), testAgents(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
	}
	res, err := eng.RunWindow(ctx, 0, inputs)
	if res != nil {
		t.Fatal("cancelled context produced a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWindowsRejectsDuplicateNumbers: a window number names its
// transport tag namespace, so scheduling the same number twice in one call
// must be refused up front rather than allowed to cross-talk.
func TestRunWindowsRejectsDuplicateNumbers(t *testing.T) {
	eng, err := NewEngine(testConfig(41), testAgents(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
	}
	jobs := []WindowJob{{Window: 5, Inputs: inputs}, {Window: 5, Inputs: inputs}}
	if _, err := eng.RunWindows(context.Background(), jobs); err == nil {
		t.Fatal("duplicate window numbers accepted")
	}
}
