package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"sync"

	"github.com/pem-go/pem/internal/fixed"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/netem"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// roster is the public per-window view every party derives identically:
// the sorted coalition membership and the hash-selected special parties.
type roster struct {
	window  int
	all     []string // every party, sorted
	sellers []string // sorted seller coalition
	buyers  []string // sorted buyer coalition

	hr1 string // random seller decrypting Rb (Protocol 2)
	hr2 string // random buyer decrypting Rs (Protocol 2)
	hb  string // random buyer computing the price (Protocol 3)
	hs  string // random counterparty decrypting ratios (Protocol 4);
	// a seller in general markets, a buyer in extreme ones (chosen lazily).
}

func (r *roster) isSeller(id string) bool { return contains(r.sellers, id) }
func (r *roster) isBuyer(id string) bool  { return contains(r.buyers, id) }

func contains(sorted []string, id string) bool {
	i := sort.SearchStrings(sorted, id)
	return i < len(sorted) && sorted[i] == id
}

// coinFree recycles the public-coin hash input buffers across windows.
var coinFree = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// publicCoin derives a deterministic index from the window, the rosters and
// a domain separator — the shared randomness replacing the paper's
// "randomly choose H…" without a trusted dealer. The hash input is built
// in a recycled buffer and digested with sha256.Sum256, byte-identical to
// the original fmt/hash.Hash formulation.
func publicCoin(window int, domain string, sellers, buyers []string, n int) int {
	bp := coinFree.Get().(*[]byte)
	b := append((*bp)[:0], "pem/coin/"...)
	b = append(b, domain...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(window), 10)
	for _, s := range sellers {
		b = append(b, 0)
		b = append(b, s...)
	}
	for _, s := range buyers {
		b = append(b, 1)
		b = append(b, s...)
	}
	sum := sha256.Sum256(b)
	*bp = b
	coinFree.Put(bp)
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(n))
}

// fillRoster populates a (possibly recycled) roster in place once coalition
// membership is known.
func fillRoster(r *roster, window int, all, sellers, buyers []string) *roster {
	r.window = window
	r.all = all
	r.sellers = sellers
	r.buyers = buyers
	r.hr1, r.hr2, r.hb, r.hs = "", "", "", ""
	if len(sellers) > 0 {
		r.hr1 = sellers[publicCoin(window, "hr1", sellers, buyers, len(sellers))]
	}
	if len(buyers) > 0 {
		r.hr2 = buyers[publicCoin(window, "hr2", sellers, buyers, len(buyers))]
		r.hb = buyers[publicCoin(window, "hb", sellers, buyers, len(buyers))]
	}
	return r
}

// buildRoster fills the selection fields on a fresh roster.
func buildRoster(window int, all, sellers, buyers []string) *roster {
	return fillRoster(new(roster), window, all, sellers, buyers)
}

// windowRun is one party's protocol-run object for a single trading
// window: its private view of the window, the window-scoped randomness
// stream and the window's tag namespace. It embeds the session layer
// (*Party) for keys, directory, transport and nonce pools, but owns no
// state shared with other windows — which is what makes it safe for the
// scheduler to keep several windows in flight on the same party.
type windowRun struct {
	*Party
	window int
	// random is this window's derived randomness stream (see
	// Party.windowRandom); never shared across windows.
	random io.Reader
	input  market.WindowInput
	// snFixed is the fixed-point net energy sn_i^t.
	snFixed fixed.Value
	role    market.Role
	// nonce is the Protocol 2 masking nonce r_i, drawn once per window.
	nonce uint64
	ros   *roster

	// Protocol 4 scratch: the demand-side roster for this window and, for
	// the ring broadcaster, its own copy of the encrypted total.
	demandSide []string
	encTotal   *paillier.Ciphertext

	// Recycled scratch, reused across the windows this run object serves
	// (see Party.getRun): the role-collection slices backing the roster,
	// the roster itself, the Protocol 2 ring orders, the hybrid backend's
	// mask-derivation buffer and two big.Int contribution scratches.
	sellersBuf, buyersBuf []string
	ringABuf, ringBBuf    []string
	rosBuf                roster
	hashBuf               []byte
	contribBuf            [2]big.Int
}

// getRun acquires a protocol-run object for one window, recycled from the
// party's pool when available. The recycled scratch buffers keep their
// capacity; every window-scoped field is reset here.
func (p *Party) getRun(window int, input market.WindowInput, snFixed fixed.Value) *windowRun {
	r, _ := p.runFree.Get().(*windowRun)
	if r == nil {
		r = &windowRun{Party: p}
	}
	r.window = window
	r.random = p.windowRandom(window)
	r.input = input
	r.snFixed = snFixed
	r.role = market.RoleOff
	r.nonce = 0
	r.ros = nil
	r.demandSide = nil
	r.encTotal = nil
	return r
}

// putRun returns a finished run object to the party's pool, releasing its
// seeded PRNG stream and dropping every reference that must not outlive
// the window. Safe only once the window has fully joined (runWindow defers
// it after all per-window goroutines are waited out).
func (p *Party) putRun(r *windowRun) {
	releasePRNG(r.random)
	r.random = nil
	r.input = market.WindowInput{}
	r.ros = nil
	r.demandSide = nil
	r.encTotal = nil
	p.runFree.Put(r)
}

// tag scopes a message tag under this window's transport namespace — and,
// for engines inside a coalition grid, under the engine's coalition
// namespace on top of it.
func (r *windowRun) tag(parts string) string {
	return transport.ScopedWindowTag(r.cfg.Namespace, r.window, parts)
}

// forkVirtual snapshots this window's virtual-time lane into the context —
// the fork point for phases that run concurrent sub-exchanges on one party
// (see netem.Conn.ForkLane). Callers Branch the result per goroutine, so
// each exchange's send timestamps depend only on the messages it received,
// keeping virtual-latency accounting deterministic under any interleaving.
// Without network emulation the context passes through unchanged.
func (r *windowRun) forkVirtual(ctx context.Context) context.Context {
	c := r.conn
	for {
		switch v := c.(type) {
		case *netem.Conn:
			return v.ForkLane(ctx, r.cfg.Namespace, r.window)
		case interface{ Inner() transport.Conn }:
			c = v.Inner()
		default:
			return ctx
		}
	}
}

// runWindow is Protocol 1 from one party's perspective.
func (p *Party) runWindow(ctx context.Context, window int, input market.WindowInput) (*partyReport, error) {
	snFixed, err := fixed.FromFloat(input.NetEnergy())
	if err != nil {
		return nil, fmt.Errorf("window %d: net energy: %w", window, err)
	}
	r := p.getRun(window, input, snFixed)
	defer p.putRun(r)
	switch {
	case snFixed > 0:
		r.role = market.RoleSeller
	case snFixed < 0:
		r.role = market.RoleBuyer
	default:
		r.role = market.RoleOff
	}
	r.nonce, err = r.drawNonce()
	if err != nil {
		return nil, err
	}

	// Phase 0: role announcement — coalition membership is public.
	if err := r.announceRoles(ctx); err != nil {
		return nil, fmt.Errorf("window %d: roles: %w", window, err)
	}
	rep := &partyReport{
		sellerCount: len(r.ros.sellers),
		buyerCount:  len(r.ros.buyers),
	}

	// Degenerate coalitions: no protocols; grid handles everything
	// (Protocol 1 initialization rule).
	if len(r.ros.sellers) == 0 {
		rep.kind = market.GeneralMarket
		rep.price = p.cfg.Params.GridRetailPrice
		rep.degenerate = true
		return rep, nil
	}
	if len(r.ros.buyers) == 0 {
		rep.kind = market.ExtremeMarket
		rep.price = p.cfg.Params.PriceFloor
		rep.degenerate = true
		return rep, nil
	}

	// Phase 1: Private Market Evaluation (Protocol 2).
	kind, err := r.privateMarketEvaluation(ctx)
	if err != nil {
		return nil, fmt.Errorf("window %d: market evaluation: %w", window, err)
	}
	rep.kind = kind

	// Phase 2: price discovery.
	if kind == market.GeneralMarket {
		price, pHat, err := r.privatePricing(ctx)
		if err != nil {
			return nil, fmt.Errorf("window %d: pricing: %w", window, err)
		}
		rep.price = price
		rep.pHat = pHat
	} else {
		rep.price = p.cfg.Params.PriceFloor
	}

	// Phase 3: Private Distribution (Protocol 4).
	trades, err := r.privateDistribution(ctx, kind, rep.price)
	if err != nil {
		return nil, fmt.Errorf("window %d: distribution: %w", window, err)
	}
	rep.sellerTrades = trades
	return rep, nil
}

// drawNonce samples the Protocol 2 masking nonce in [0, 2^NonceBits).
func (r *windowRun) drawNonce() (uint64, error) {
	var buf [8]byte
	if _, err := r.random.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("draw nonce: %w", err)
	}
	return binary.BigEndian.Uint64(buf[:]) >> (64 - uint(r.cfg.NonceBits)), nil
}

// announceRoles broadcasts this party's role and collects everyone else's,
// then builds the deterministic roster. The fleet roster is the session's
// cached sorted copy, and the coalition slices and roster object are this
// run's recycled scratch, so a steady-state window allocates nothing here.
func (r *windowRun) announceRoles(ctx context.Context) error {
	tag := r.tag("role")
	msg := [1]byte{byte(r.role)}
	all := r.allSorted

	if err := r.broadcast(ctx, all, tag, msg[:]); err != nil {
		return err
	}
	sellers, buyers := r.sellersBuf[:0], r.buyersBuf[:0]
	switch r.role {
	case market.RoleSeller:
		sellers = append(sellers, r.ID())
	case market.RoleBuyer:
		buyers = append(buyers, r.ID())
	}
	for _, id := range all {
		if id == r.ID() {
			continue
		}
		raw, err := r.conn.Recv(ctx, id, tag)
		if err != nil {
			return err
		}
		if len(raw) != 1 {
			return fmt.Errorf("bad role announcement from %s", id)
		}
		role := market.Role(raw[0])
		transport.PutFrame(raw)
		switch role {
		case market.RoleSeller:
			sellers = append(sellers, id)
		case market.RoleBuyer:
			buyers = append(buyers, id)
		case market.RoleOff:
		default:
			return fmt.Errorf("invalid role %d from %s", role, id)
		}
	}
	sort.Strings(sellers)
	sort.Strings(buyers)
	r.sellersBuf, r.buyersBuf = sellers, buyers
	r.ros = fillRoster(&r.rosBuf, r.window, all, sellers, buyers)
	return nil
}
