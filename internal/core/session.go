package core

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"sort"
	"strconv"
	"sync"

	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// This file is the session layer of the engine's three-layer split:
//
//	session (Party)  — long-lived per-party state, independent of any window
//	protocol run     — one window's roster, randomness and tags (window.go)
//	scheduler        — bounded-parallel window execution (scheduler.go)
//
// A Party owns exactly the state that outlives a trading window: its
// Paillier key pair, the fleet key directory, its transport endpoint and
// the idle-time pre-encryption pools. Everything window-scoped — roster,
// masking nonce, message tags, the randomness stream feeding the garbled
// circuit — lives in a windowRun, so several windows can be in flight on
// the same Party without sharing any mutable state.

// Party is one agent's protocol endpoint.
type Party struct {
	agent market.Agent
	cfg   Config

	conn transport.Conn
	key  *paillier.PrivateKey
	dir  map[string]*paillier.PublicKey // all parties' Paillier keys

	// allSorted is the sorted fleet roster, derived once from dir: coalition
	// membership changes every window, the fleet does not, so the role
	// announcement never rebuilds or re-sorts it.
	allSorted []string

	// runFree recycles windowRun objects (and the scratch buffers they
	// carry: role slices, roster backing store, hash inputs) across the
	// windows this party executes, so the scheduler pipeline reuses
	// per-window state instead of reallocating it each window.
	runFree sync.Pool

	// workers is the shared batch-crypto pool (see Config.CryptoWorkers).
	// Engine parties share one pool fleet-wide; standalone parties own
	// theirs.
	workers *paillier.Workers

	// backend is the window crypto layer selected by Config.CryptoBackend;
	// stateless and shared by every window in flight.
	backend cryptoBackend

	// maskSeeds holds the engine-provisioned pairwise masking seeds of the
	// hybrid backend (peer -> 32-byte shared seed); nil under the paillier
	// backend and for standalone parties.
	maskSeeds map[string][]byte

	poolMu sync.Mutex
	pools  map[string]*paillier.NoncePool // peer -> blinding-factor pool
}

// newParty assembles a session from provisioned key material. cfg must have
// passed Validate, so the backend lookup cannot fail.
func newParty(cfg Config, agent market.Agent, conn transport.Conn, key *paillier.PrivateKey, dir map[string]*paillier.PublicKey, workers *paillier.Workers, maskSeeds map[string][]byte) *Party {
	backend, err := newBackend(cfg.CryptoBackend)
	if err != nil {
		panic(err) // unreachable: Validate gates CryptoBackend
	}
	return &Party{
		agent:     agent,
		cfg:       cfg,
		conn:      conn,
		key:       key,
		dir:       dir,
		allSorted: sortedRoster(dir),
		workers:   workers,
		backend:   backend,
		maskSeeds: maskSeeds,
		pools:     make(map[string]*paillier.NoncePool),
	}
}

// sortedRoster derives the sorted fleet roster from a key directory.
func sortedRoster(dir map[string]*paillier.PublicKey) []string {
	all := make([]string, 0, len(dir))
	for id := range dir {
		all = append(all, id)
	}
	sort.Strings(all)
	return all
}

// ID returns the party identifier.
func (p *Party) ID() string { return p.agent.ID }

// ReplaceConn swaps a party's transport (tests wrap it in a FaultConn).
func (p *Party) ReplaceConn(c transport.Conn) { p.conn = c }

// windowRandom derives the randomness stream for one window's protocol run.
// Each (party, window) pair gets an independent stream, which serves two
// purposes: concurrent windows never contend on a shared (non-thread-safe)
// PRNG, and a seeded engine produces bit-identical outcomes no matter how
// the scheduler interleaves windows.
//
// The derivation key is byte-identical to
// partyRandom(cfg, id, fmt.Sprintf("protocol/w%d", window)) — "pem/
// protocol/w<window>/<seed>/<id>" — built without the fmt round trips, and
// the PRNG itself is recycled through the pool in core.go (putRun returns
// it), so a steady-state window draws its stream allocation-free.
func (p *Party) windowRandom(window int) io.Reader {
	if p.cfg.Seed == nil {
		return rand.Reader
	}
	var arr [96]byte
	b := append(arr[:0], "pem/protocol/w"...)
	b = strconv.AppendInt(b, int64(window), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, *p.cfg.Seed, 10)
	b = append(b, '/')
	b = append(b, p.agent.ID...)
	h := sha256.Sum256(b)
	return seededPRNG(int64(binary.BigEndian.Uint64(h[:8])))
}

// poolTarget is the per-pool stock of precomputed blinding factors. With
// refill dispatched across the shared worker pool, a deeper stock costs
// idle time rather than protocol latency, so whole windows can run off
// precomputed factors.
const poolTarget = 8

// poolFor returns (lazily creating) the blinding-factor pool for a peer
// key. Pools are session-scoped: they persist across windows and are shared
// by every window in flight (NoncePool is safe for concurrent Take). Each
// pool draws from its own derived randomness stream so background refills
// never race the protocol-path readers; the refill exponentiations run
// across the fleet-wide crypto worker pool, converting idle time between
// windows into ready factors without unbounded goroutine growth.
func (p *Party) poolFor(holder string, pk *paillier.PublicKey) *paillier.NoncePool {
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	if pool, ok := p.pools[holder]; ok {
		return pool
	}
	pool := paillier.NewNoncePool(pk, paillier.PoolConfig{
		Target:  poolTarget,
		Workers: 1,
		Shared:  p.workers,
		Random:  partyRandom(p.cfg, p.agent.ID, "pool/"+holder),
	})
	p.pools[holder] = pool
	return pool
}

// PoolStats aggregates the health counters of this party's pre-encryption
// pools. A growing Misses count signals the critical path is paying full
// encryptions inline; Retries counts transient randomness failures the
// refill workers recovered from.
func (p *Party) PoolStats() paillier.PoolStats {
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	var agg paillier.PoolStats
	for _, pool := range p.pools {
		st := pool.Stats()
		agg.Ready += st.Ready
		agg.Target += st.Target
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.IdleRefills += st.IdleRefills
		agg.Retries += st.Retries
	}
	return agg
}

// closePools stops the pre-encryption workers. Called by the engine once no
// window is in flight; a standalone party may call it via Close.
func (p *Party) closePools() {
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	for _, pool := range p.pools {
		pool.Close()
	}
	p.pools = make(map[string]*paillier.NoncePool)
}

// Close releases the standalone party's background resources, including
// its reference on the crypto worker pool (a standalone party owns its
// pool). Parties inside an Engine are closed by Engine.Close, which first
// drains in-flight windows and then drops the engine's single pool
// reference — so Close must not be called on engine parties.
func (p *Party) Close() {
	p.closePools()
	p.workers.Release()
}
