package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/pem-go/pem/internal/market"
)

// The scheduler is the third layer of the engine split (see session.go):
// it executes trading windows through the session layer with bounded
// parallelism. Each window is an independent protocol instance — its
// message tags live in their own transport namespace and its randomness is
// derived per (party, window) — so up to Config.MaxInflightWindows windows
// can be in flight at once without cross-talk. Results are delivered in
// job order regardless of completion order, and a seeded engine produces
// bit-identical outcomes at any pipeline depth.

// WindowJob pairs a window number with the fleet's private inputs for it.
type WindowJob struct {
	// Window is the trading-window number the job runs as.
	Window int
	// Inputs are the fleet's private inputs, one per agent in roster order.
	Inputs []market.WindowInput
}

// WindowError wraps a failure with the window it occurred in.
type WindowError struct {
	// Window is the trading window that failed.
	Window int
	// Err is the underlying failure.
	Err error
}

// Error formats the failure with its window number.
func (e *WindowError) Error() string { return fmt.Sprintf("core: window %d: %v", e.Window, e.Err) }

// Unwrap supports errors.Is/As.
func (e *WindowError) Unwrap() error { return e.Err }

// RunWindow executes Protocol 1 for one window — the depth-1 special case
// of the scheduler.
func (e *Engine) RunWindow(ctx context.Context, window int, inputs []market.WindowInput) (*WindowResult, error) {
	results, err := e.StreamWindows(ctx, []WindowJob{{Window: window, Inputs: inputs}}, nil)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunWindows executes the jobs with up to Config.MaxInflightWindows
// windows in flight. results[i] corresponds to jobs[i].
func (e *Engine) RunWindows(ctx context.Context, jobs []WindowJob) ([]*WindowResult, error) {
	return e.StreamWindows(ctx, jobs, nil)
}

// StreamWindows is the scheduler: it pipelines the jobs with bounded
// parallelism and invokes sink (when non-nil) for each result in strict
// job order as soon as that window — and every window before it — has
// completed.
//
// Window numbers must be unique within one call: the number names the
// window's transport tag namespace, so two instances of the same number in
// flight would share queues and cross-talk. For the same reason, callers
// issuing concurrent scheduling calls against one engine must keep their
// window numbers disjoint.
//
// Failure semantics: a failing window cancels only itself. The scheduler
// then stops launching new windows, lets the ones already in flight drain,
// and returns the failed window's error (the earliest by job order when
// several fail). Results of windows that completed are still filled in;
// sink is never called for jobs at or after the first failure. A sink
// error aborts the whole run, cancelling the in-flight windows.
func (e *Engine) StreamWindows(ctx context.Context, jobs []WindowJob, sink func(*WindowResult) error) ([]*WindowResult, error) {
	n := len(jobs)
	results := make([]*WindowResult, n)
	if n == 0 {
		return results, nil
	}
	seen := make(map[int]bool, n)
	for _, job := range jobs {
		if seen[job.Window] {
			return results, fmt.Errorf("core: duplicate window %d in schedule", job.Window)
		}
		seen[job.Window] = true
	}
	maxInflight := e.cfg.MaxInflightWindows
	if maxInflight < 1 {
		maxInflight = 1
	}

	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	var (
		mu     sync.Mutex
		failed bool
		errs   = make([]error, n)
		done   = make([]chan struct{}, n)
		wg     sync.WaitGroup
	)
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, maxInflight)

	// Launcher: admit jobs in order as pipeline slots free up, stopping at
	// the first observed failure. Unlaunched jobs have their done channels
	// closed with neither a result nor an error ("skipped").
	go func() {
		for i := range jobs {
			sem <- struct{}{}
			mu.Lock()
			stop := failed
			mu.Unlock()
			if stop || runCtx.Err() != nil {
				<-sem
				for j := i; j < n; j++ {
					close(done[j])
				}
				return
			}
			wg.Add(1)
			go func(i int, job WindowJob) {
				defer wg.Done()
				defer func() { <-sem }()
				defer close(done[i])
				res, err := e.runScheduled(runCtx, job)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					errs[i] = err
					failed = true
					return
				}
				results[i] = res
			}(i, jobs[i])
		}
	}()

	// Waiter: deliver results in job order; remember the earliest failure.
	var firstErr error
	for i := 0; i < n; i++ {
		<-done[i]
		mu.Lock()
		res, err := results[i], errs[i]
		mu.Unlock()
		if firstErr != nil {
			continue
		}
		switch {
		case err != nil:
			firstErr = err
		case res != nil && sink != nil:
			if err := sink(res); err != nil {
				firstErr = err
				cancelAll() // caller aborted: tear down the in-flight windows
			}
		}
	}
	wg.Wait()
	if firstErr == nil {
		// Jobs the launcher skipped carry neither a result nor an error;
		// that only happens without a window failure when the caller's
		// context was cancelled — surface it rather than returning nil
		// results with a nil error.
		firstErr = ctx.Err()
	}
	return results, firstErr
}

// runScheduled wraps one window execution with session-lifecycle
// accounting and window-tagged errors.
func (e *Engine) runScheduled(ctx context.Context, job WindowJob) (*WindowResult, error) {
	if err := e.beginWindow(); err != nil {
		return nil, &WindowError{Window: job.Window, Err: err}
	}
	defer e.endWindow()
	res, err := e.runOne(ctx, job.Window, job.Inputs)
	if err != nil {
		return nil, &WindowError{Window: job.Window, Err: err}
	}
	return res, nil
}
