package core

import (
	"context"
	"fmt"
	"math"
	mrand "math/rand"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/ot"
	"github.com/pem-go/pem/internal/transport"
)

// testConfig returns a fast deterministic config for unit tests.
func testConfig(seed int64) Config {
	return Config{
		KeyBits:    256,
		OTGroup:    ot.TestGroup(),
		PreEncrypt: true,
		Seed:       &seed,
	}
}

// testAgents builds n agents with ids a00, a01, ...
func testAgents(n int) []market.Agent {
	agents := make([]market.Agent, n)
	for i := range agents {
		agents[i] = market.Agent{
			ID:      "a" + string(rune('0'+i/10)) + string(rune('0'+i%10)),
			K:       70 + float64(i*7%50),
			Epsilon: 0.8,
		}
	}
	return agents
}

func runOneWindow(t *testing.T, cfg Config, agents []market.Agent, inputs []market.WindowInput) *WindowResult {
	t.Helper()
	eng, err := NewEngine(cfg, agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := eng.RunWindow(ctx, 0, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertMatchesPlaintext checks the private outcome against market.Clear.
func assertMatchesPlaintext(t *testing.T, res *WindowResult, agents []market.Agent, inputs []market.WindowInput) {
	t.Helper()
	ref, err := market.Clear(agents, inputs, market.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ref.Kind {
		t.Fatalf("kind: private %v, plaintext %v", res.Kind, ref.Kind)
	}
	if math.Abs(res.Price-ref.Price) > 1e-4 {
		t.Fatalf("price: private %v, plaintext %v", res.Price, ref.Price)
	}
	if res.SellerCount != len(ref.SellerIDs) || res.BuyerCount != len(ref.BuyerIDs) {
		t.Fatalf("coalitions: private %d/%d, plaintext %d/%d",
			res.SellerCount, res.BuyerCount, len(ref.SellerIDs), len(ref.BuyerIDs))
	}
	// Compare trades pairwise (both sorted by seller, buyer).
	if len(res.Trades) != len(ref.Trades) {
		t.Fatalf("trade count: private %d, plaintext %d", len(res.Trades), len(ref.Trades))
	}
	type key struct{ s, b string }
	refTrades := make(map[key]market.Trade, len(ref.Trades))
	for _, tr := range ref.Trades {
		refTrades[key{tr.Seller, tr.Buyer}] = tr
	}
	for _, tr := range res.Trades {
		want, ok := refTrades[key{tr.Seller, tr.Buyer}]
		if !ok {
			t.Fatalf("unexpected trade %s->%s", tr.Seller, tr.Buyer)
		}
		if math.Abs(tr.Energy-want.Energy) > 1e-4 {
			t.Errorf("trade %s->%s energy %v, want %v", tr.Seller, tr.Buyer, tr.Energy, want.Energy)
		}
		if math.Abs(tr.Payment-want.Payment) > 1e-2 {
			t.Errorf("trade %s->%s payment %v, want %v", tr.Seller, tr.Buyer, tr.Payment, want.Payment)
		}
	}
}

func TestGeneralMarketMatchesPlaintext(t *testing.T) {
	agents := testAgents(6)
	inputs := []market.WindowInput{
		{Generation: 0.30, Load: 0.10}, // seller +0.20
		{Generation: 0.25, Load: 0.10}, // seller +0.15
		{Generation: 0.00, Load: 0.30}, // buyer −0.30
		{Generation: 0.05, Load: 0.25}, // buyer −0.20
		{Generation: 0.02, Load: 0.32}, // buyer −0.30
		{Generation: 0.10, Load: 0.10}, // off
	}
	res := runOneWindow(t, testConfig(1), agents, inputs)
	if res.Kind != market.GeneralMarket {
		t.Fatalf("kind = %v", res.Kind)
	}
	if res.Degenerate {
		t.Fatal("window marked degenerate")
	}
	assertMatchesPlaintext(t, res, agents, inputs)
}

func TestExtremeMarketMatchesPlaintext(t *testing.T) {
	agents := testAgents(5)
	inputs := []market.WindowInput{
		{Generation: 0.50, Load: 0.10}, // seller +0.40
		{Generation: 0.40, Load: 0.10}, // seller +0.30
		{Generation: 0.30, Load: 0.05}, // seller +0.25
		{Generation: 0.00, Load: 0.20}, // buyer −0.20
		{Generation: 0.00, Load: 0.15}, // buyer −0.15
	}
	res := runOneWindow(t, testConfig(2), agents, inputs)
	if res.Kind != market.ExtremeMarket {
		t.Fatalf("kind = %v", res.Kind)
	}
	if res.Price != market.DefaultParams().PriceFloor {
		t.Fatalf("price = %v, want floor", res.Price)
	}
	assertMatchesPlaintext(t, res, agents, inputs)
}

func TestDegenerateNoSellers(t *testing.T) {
	agents := testAgents(3)
	inputs := []market.WindowInput{
		{Load: 0.2}, {Load: 0.1}, {Load: 0.3},
	}
	res := runOneWindow(t, testConfig(3), agents, inputs)
	if !res.Degenerate {
		t.Fatal("expected degenerate window")
	}
	if res.Price != market.DefaultParams().GridRetailPrice {
		t.Fatalf("price = %v, want retail", res.Price)
	}
	if len(res.Trades) != 0 {
		t.Fatal("no trades expected")
	}
}

func TestDegenerateNoBuyers(t *testing.T) {
	agents := testAgents(3)
	inputs := []market.WindowInput{
		{Generation: 0.2}, {Generation: 0.1}, {Generation: 0.3},
	}
	res := runOneWindow(t, testConfig(4), agents, inputs)
	if !res.Degenerate {
		t.Fatal("expected degenerate window")
	}
	if res.Price != market.DefaultParams().PriceFloor {
		t.Fatalf("price = %v, want floor", res.Price)
	}
}

func TestPriceClampedToFloor(t *testing.T) {
	// Tiny k values force p̂ below the floor.
	agents := testAgents(4)
	for i := range agents {
		agents[i].K = 10
	}
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},  // seller
		{Generation: 0.0, Load: 0.3},  // buyer
		{Generation: 0.0, Load: 0.2},  // buyer
		{Generation: 0.0, Load: 0.25}, // buyer
	}
	res := runOneWindow(t, testConfig(5), agents, inputs)
	if res.Kind != market.GeneralMarket {
		t.Fatalf("kind = %v", res.Kind)
	}
	if res.Price != market.DefaultParams().PriceFloor {
		t.Fatalf("price = %v, want clamped to floor", res.Price)
	}
	if res.PHat >= market.DefaultParams().PriceFloor {
		t.Fatalf("pHat = %v, expected below floor", res.PHat)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	agents := testAgents(5)
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.0, Load: 0.15},
		{Generation: 0.25, Load: 0.1},
		{Generation: 0.0, Load: 0.18},
	}
	r1 := runOneWindow(t, testConfig(7), agents, inputs)
	r2 := runOneWindow(t, testConfig(7), agents, inputs)
	if r1.Kind != r2.Kind || math.Abs(r1.Price-r2.Price) > 1e-12 {
		t.Fatal("same seed produced different outcomes")
	}
	if len(r1.Trades) != len(r2.Trades) {
		t.Fatal("same seed produced different trade counts")
	}
	for i := range r1.Trades {
		if r1.Trades[i] != r2.Trades[i] {
			t.Fatalf("trade %d differs across runs", i)
		}
	}
}

func TestPreEncryptEquivalence(t *testing.T) {
	agents := testAgents(4)
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.2, Load: 0.1},
	}
	cfgOn := testConfig(8)
	cfgOff := testConfig(8)
	cfgOff.PreEncrypt = false
	rOn := runOneWindow(t, cfgOn, agents, inputs)
	rOff := runOneWindow(t, cfgOff, agents, inputs)
	if rOn.Kind != rOff.Kind || math.Abs(rOn.Price-rOff.Price) > 1e-9 {
		t.Fatal("PreEncrypt changed the outcome")
	}
}

func TestMultiWindowFromDataset(t *testing.T) {
	tr, err := dataset.Generate(dataset.Config{Homes: 8, Windows: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	agents := tr.Agents()
	eng, err := NewEngine(testConfig(9), agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	for w := 0; w < tr.Windows; w++ {
		inputs, err := tr.WindowInputs(w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunWindow(ctx, w, inputs)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if !res.Degenerate {
			assertMatchesPlaintext(t, res, agents, inputs)
		}
		if res.BytesOnWire <= 0 {
			t.Fatalf("window %d: no traffic recorded", w)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(testConfig(1), nil); err == nil {
		t.Error("no agents accepted")
	}
	dup := []market.Agent{
		{ID: "x", K: 10, Epsilon: 0.5},
		{ID: "x", K: 10, Epsilon: 0.5},
	}
	if _, err := NewEngine(testConfig(1), dup); err == nil {
		t.Error("duplicate IDs accepted")
	}
	bad := testConfig(1)
	bad.KeyBits = 16
	if _, err := NewEngine(bad, testAgents(2)); err == nil {
		t.Error("tiny key accepted")
	}
	bad = testConfig(1)
	bad.CompareBits = 32 // < NonceBits+10 with 40-bit nonces
	if _, err := NewEngine(bad, testAgents(2)); err == nil {
		t.Error("incompatible comparator width accepted")
	}
}

func TestRunWindowInputMismatch(t *testing.T) {
	eng, err := NewEngine(testConfig(1), testAgents(3))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.RunWindow(context.Background(), 0, nil); err == nil {
		t.Error("input length mismatch accepted")
	}
}

func TestFaultInjectionFailAll(t *testing.T) {
	agents := testAgents(4)
	eng, err := NewEngine(testConfig(12), agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Party 2's sends all fail: the window must error out, not hang or
	// return bogus trades.
	p := eng.Parties()[2]
	fc := transport.NewFaultConn(partyConn(p))
	fc.FailAll()
	p.ReplaceConn(fc)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.2, Load: 0.1},
	}
	if _, err := eng.RunWindow(ctx, 0, inputs); err == nil {
		t.Fatal("window with dead party succeeded")
	}
}

func TestFaultInjectionCorruptedRole(t *testing.T) {
	agents := testAgents(4)
	eng, err := NewEngine(testConfig(13), agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	p := eng.Parties()[1]
	fc := transport.NewFaultConn(partyConn(p))
	fc.CorruptNext("w0/role", 3) // corrupt all role announcements
	p.ReplaceConn(fc)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.2, Load: 0.1},
	}
	if _, err := eng.RunWindow(ctx, 0, inputs); err == nil {
		t.Fatal("window with corrupted roles succeeded")
	}
}

// partyConn exposes the party's transport for wrapping in tests.
func partyConn(p *Party) transport.Conn { return p.conn }

func TestRosterSelectionDeterministic(t *testing.T) {
	sellers := []string{"s1", "s2", "s3"}
	buyers := []string{"b1", "b2"}
	r1 := buildRoster(5, nil, sellers, buyers)
	r2 := buildRoster(5, nil, sellers, buyers)
	if r1.hr1 != r2.hr1 || r1.hr2 != r2.hr2 || r1.hb != r2.hb {
		t.Error("roster selection not deterministic")
	}
	if !contains(sellers, r1.hr1) {
		t.Error("hr1 not a seller")
	}
	if !contains(buyers, r1.hr2) || !contains(buyers, r1.hb) {
		t.Error("hr2/hb not buyers")
	}
	// Different windows should (eventually) choose different parties.
	diff := false
	for w := 0; w < 20 && !diff; w++ {
		r := buildRoster(w, nil, sellers, buyers)
		if r.hr1 != r1.hr1 {
			diff = true
		}
	}
	if !diff {
		t.Error("hr1 never rotates across windows")
	}
}

func TestRatioCodec(t *testing.T) {
	in := map[string]float64{"b1": 0.25, "b2": 0.5, "long-name-buyer": 0.25}
	raw, err := encodeRatios(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeRatios(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatal("ratio count mismatch")
	}
	for k, v := range in {
		if out[k] != v {
			t.Errorf("ratio %s: %v != %v", k, out[k], v)
		}
	}
	// Truncations must error.
	for _, cut := range []int{1, 3, 5, len(raw) - 1} {
		if cut < len(raw) {
			if _, err := decodeRatios(raw[:cut]); err == nil {
				t.Errorf("truncated ratios at %d accepted", cut)
			}
		}
	}
}

func TestRandomizedWindowsMatchPlaintext(t *testing.T) {
	// Property-style integration test: random fleets and inputs, private
	// outcome must match the plaintext reference in every regime.
	if testing.Short() {
		t.Skip("slow: many protocol rounds")
	}
	rng := mrand.New(mrand.NewSource(4242))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(5)
		agents := make([]market.Agent, n)
		inputs := make([]market.WindowInput, n)
		for i := range agents {
			agents[i] = market.Agent{
				ID:      fmt.Sprintf("r%d-%d", trial, i),
				K:       60 + rng.Float64()*60,
				Epsilon: 0.6 + rng.Float64()*0.3,
			}
			inputs[i] = market.WindowInput{
				Generation: rng.Float64() * 0.4,
				Load:       rng.Float64() * 0.4,
				Battery:    (rng.Float64() - 0.5) * 0.05,
			}
		}
		res := runOneWindow(t, testConfig(int64(5000+trial)), agents, inputs)
		if !res.Degenerate {
			assertMatchesPlaintext(t, res, agents, inputs)
		}
	}
}

func TestWindowWithGRR3AndOTExtension(t *testing.T) {
	cfg := testConfig(6060)
	cfg.GRR3 = true
	cfg.UseOTExtension = true
	agents := testAgents(4)
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.25, Load: 0.1},
	}
	res := runOneWindow(t, cfg, agents, inputs)
	if res.Kind != market.GeneralMarket {
		t.Fatalf("kind = %v", res.Kind)
	}
	assertMatchesPlaintext(t, res, agents, inputs)
}

func TestWindowWithFreeXORDisabled(t *testing.T) {
	cfg := testConfig(6161)
	cfg.DisableFreeXOR = true
	agents := testAgents(3)
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
	}
	res := runOneWindow(t, cfg, agents, inputs)
	assertMatchesPlaintext(t, res, agents, inputs)
}

func TestMetricsAccumulateAcrossWindows(t *testing.T) {
	agents := testAgents(4)
	eng, err := NewEngine(testConfig(6262), agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	inputs := []market.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.3},
		{Generation: 0.0, Load: 0.2},
		{Generation: 0.25, Load: 0.1},
	}
	r1, err := eng.RunWindow(ctx, 0, inputs)
	if err != nil {
		t.Fatal(err)
	}
	total1 := eng.Metrics().TotalBytes()
	r2, err := eng.RunWindow(ctx, 1, inputs)
	if err != nil {
		t.Fatal(err)
	}
	total2 := eng.Metrics().TotalBytes()
	if total2 <= total1 {
		t.Error("metrics did not accumulate")
	}
	if r1.BytesOnWire <= 0 || r2.BytesOnWire <= 0 {
		t.Error("per-window byte accounting missing")
	}
	// Comparable windows should cost comparable traffic.
	ratio := float64(r2.BytesOnWire) / float64(r1.BytesOnWire)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("window traffic ratio %v suspicious", ratio)
	}
}
