package core

import (
	"context"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/netem"
)

// netemConfig is testConfig over an emulated topology.
func netemConfig(seed int64, topology string) Config {
	cfg := testConfig(seed)
	cfg.Network = topology
	return cfg
}

// netemInputs is a mixed coalition large enough that both the aggregations
// and the pairwise distribution have real fan-out.
func netemInputs(n int) []market.WindowInput {
	inputs := make([]market.WindowInput, n)
	for i := range inputs {
		if i%2 == 0 {
			inputs[i] = market.WindowInput{Generation: 0.30 + float64(i)*0.01, Load: 0.10}
		} else {
			inputs[i] = market.WindowInput{Generation: 0.00, Load: 0.20 + float64(i)*0.01}
		}
	}
	return inputs
}

// windowFingerprint compresses everything a seeded emulated run must
// reproduce bit-identically: market outcome and virtual-network metrics.
type windowFingerprint struct {
	kind     market.Kind
	price    float64
	trades   int
	bytes    int64
	messages int64
	latency  time.Duration
	rounds   int
}

func fingerprint(res *WindowResult) windowFingerprint {
	return windowFingerprint{
		kind:     res.Kind,
		price:    res.Price,
		trades:   len(res.Trades),
		bytes:    res.BytesOnWire,
		messages: res.Messages,
		latency:  res.VirtualLatency,
		rounds:   res.Rounds,
	}
}

// runEmulatedDay runs `windows` windows under the given config and returns
// the per-window fingerprints.
func runEmulatedDay(t *testing.T, cfg Config, nAgents, windows int) []windowFingerprint {
	t.Helper()
	agents := testAgents(nAgents)
	eng, err := NewEngine(cfg, agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	jobs := make([]WindowJob, windows)
	for w := range jobs {
		jobs[w] = WindowJob{Window: w, Inputs: netemInputs(nAgents)}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	results, err := eng.RunWindows(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	prints := make([]windowFingerprint, len(results))
	for i, res := range results {
		prints[i] = fingerprint(res)
	}
	return prints
}

// TestEmulatedRunBitIdenticalAcrossConcurrency is the netem determinism
// guarantee at the engine level: a seeded run over an emulated WAN reports
// identical market outcomes *and* identical virtual-latency/round metrics
// no matter how deep the window pipeline or how many crypto workers run.
func TestEmulatedRunBitIdenticalAcrossConcurrency(t *testing.T) {
	base := netemConfig(42, netem.TopologyWAN)

	sequential := runEmulatedDay(t, base, 6, 3)
	for _, w := range sequential {
		if w.latency == 0 || w.rounds == 0 || w.messages == 0 {
			t.Fatalf("emulated window missing virtual metrics: %+v", w)
		}
	}

	piped := base
	piped.MaxInflightWindows = 3
	piped.CryptoWorkers = 4
	pipelined := runEmulatedDay(t, piped, 6, 3)

	for w := range sequential {
		if sequential[w] != pipelined[w] {
			t.Errorf("window %d diverged across concurrency:\n  seq  %+v\n  pipe %+v",
				w, sequential[w], pipelined[w])
		}
	}
}

// TestEmulatedOutcomeMatchesUnemulated: emulation prices the network but
// must never change what the market decides.
func TestEmulatedOutcomeMatchesUnemulated(t *testing.T) {
	agents := testAgents(6)
	inputs := netemInputs(6)
	plain := runOneWindow(t, testConfig(7), agents, inputs)
	emulated := runOneWindow(t, netemConfig(7, netem.TopologyCellular), agents, inputs)
	if plain.Kind != emulated.Kind || plain.Price != emulated.Price || len(plain.Trades) != len(emulated.Trades) {
		t.Fatalf("emulation changed the market: %v/%v/%d vs %v/%v/%d",
			plain.Kind, plain.Price, len(plain.Trades), emulated.Kind, emulated.Price, len(emulated.Trades))
	}
	for i := range plain.Trades {
		if plain.Trades[i] != emulated.Trades[i] {
			t.Fatalf("trade %d changed under emulation: %+v vs %+v", i, plain.Trades[i], emulated.Trades[i])
		}
	}
	if plain.VirtualLatency != 0 || plain.Rounds != 0 {
		t.Errorf("unemulated run reported virtual metrics: %v/%d", plain.VirtualLatency, plain.Rounds)
	}
	assertMatchesPlaintext(t, emulated, agents, inputs)
}

// TestTreeBeatsRingOnWAN is the headline communication-cost result: on a
// high-latency topology the log-depth aggregation tree must show a shorter
// critical path (fewer rounds, less virtual latency) than the paper's
// sequential ring, with the market outcome unchanged.
func TestTreeBeatsRingOnWAN(t *testing.T) {
	const n = 8
	agents := testAgents(n)
	inputs := netemInputs(n)

	ringCfg := netemConfig(11, netem.TopologyWAN)
	ringCfg.Aggregation = AggregationRing
	ring := runOneWindow(t, ringCfg, agents, inputs)

	treeCfg := netemConfig(11, netem.TopologyWAN)
	treeCfg.Aggregation = AggregationTree
	tree := runOneWindow(t, treeCfg, agents, inputs)

	if ring.Kind != tree.Kind || ring.Price != tree.Price || len(ring.Trades) != len(tree.Trades) {
		t.Fatalf("topologies disagree on the market: %v/%v vs %v/%v", ring.Kind, ring.Price, tree.Kind, tree.Price)
	}
	if tree.Rounds >= ring.Rounds {
		t.Errorf("tree rounds %d not below ring rounds %d", tree.Rounds, ring.Rounds)
	}
	if tree.VirtualLatency >= ring.VirtualLatency {
		t.Errorf("tree latency %v not below ring latency %v", tree.VirtualLatency, ring.VirtualLatency)
	}
}

// TestVirtualClockDoesNotSleep: an emulated-WAN window owes seconds of
// virtual latency but must complete in wall-clock time comparable to the
// in-memory bus — the whole point of the event-time clock.
func TestVirtualClockDoesNotSleep(t *testing.T) {
	res := runOneWindow(t, netemConfig(3, netem.TopologyWAN), testAgents(6), netemInputs(6))
	if res.VirtualLatency < 100*time.Millisecond {
		t.Fatalf("WAN window virtual latency %v implausibly low", res.VirtualLatency)
	}
	if res.Duration > res.VirtualLatency {
		t.Errorf("wall clock %v exceeded virtual latency %v: emulation appears to really sleep",
			res.Duration, res.VirtualLatency)
	}
}

// TestEmulatedWindowNumberReuse: the engine releases a window's virtual-
// clock lanes when it completes, so a caller reusing a window number gets
// that run's own metrics — not clocks inherited (and inflated) from the
// previous run under the same number.
func TestEmulatedWindowNumberReuse(t *testing.T) {
	agents := testAgents(4)
	inputs := netemInputs(4)
	eng, err := NewEngine(netemConfig(5, netem.TopologyWAN), agents)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	first, err := eng.RunWindow(ctx, 0, inputs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.RunWindow(ctx, 0, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if first.VirtualLatency != second.VirtualLatency || first.Rounds != second.Rounds {
		t.Errorf("window-number reuse changed virtual metrics: %v/%d vs %v/%d",
			first.VirtualLatency, first.Rounds, second.VirtualLatency, second.Rounds)
	}
}

// TestNetworkValidation: unknown topologies fail before any key material is
// generated.
func TestNetworkValidation(t *testing.T) {
	cfg := netemConfig(1, "dialup")
	if _, err := NewEngine(cfg, testAgents(3)); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
