package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/pem-go/pem/internal/fixed"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/netem"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// privateDistribution is Protocol 4: allocate the pairwise trading amounts
// e_ij in proportion to demand (general market) or supply (extreme market)
// without revealing E_b, E_s or any |sn| value.
//
// General market mechanics (extreme market swaps the coalitions):
//
//  1. the buyers aggregate Enc_pks(|sn_j|) under the chosen seller Hs's key
//     (ring or tree topology, Config.Aggregation); the aggregation root
//     broadcasts the encrypted total Enc(E_b) to the whole buyer coalition;
//  2. every buyer homomorphically computes
//     Enc(E_b)^round(S/|sn_j|) = Enc(E_b·S/|sn_j|) — the fixed-point
//     reciprocal trick that sidesteps Paillier's lack of division — and
//     sends it to Hs;
//  3. Hs drains the masked values in arrival order, decrypts them
//     concurrently across the shared crypto worker pool, recovers the
//     demand ratios |sn_j|/E_b = S / (E_b·S/|sn_j|), and broadcasts the
//     ratio vector to the seller coalition (the designed leakage of
//     Lemma 4);
//  4. every seller i routes e_ij = sn_i · ratio_j to each buyer j, who pays
//     m_ji = p·e_ij back; the pairwise exchanges run concurrently per peer.
func (r *windowRun) privateDistribution(ctx context.Context, kind market.Kind, price float64) ([]market.Trade, error) {
	ros := r.ros

	// The "demand side" aggregates its shares; the "supply side" receives
	// the ratios and routes energy. In the extreme market the roles swap.
	demandSide, supplySide := ros.buyers, ros.sellers
	if kind == market.ExtremeMarket {
		demandSide, supplySide = ros.sellers, ros.buyers
	}

	// Hs: hash-chosen member of the supply side.
	hs := supplySide[publicCoin(r.window, "hs", ros.sellers, ros.buyers, len(supplySide))]
	r.ros.hs = hs

	onDemandSide := contains(demandSide, r.ID())
	onSupplySide := contains(supplySide, r.ID())
	r.demandSide = demandSide

	tagRing := r.tag("pd/ring")
	tagTotal := r.tag("pd/total")
	tagMasked := r.tag("pd/masked")
	tagRatios := r.tag("pd/ratios")

	absSn := r.snFixed.Abs()

	// --- Step 1: demand-side aggregation of Enc_hs(|sn|). ---
	if onDemandSide {
		if err := r.backend.distributionTotal(ctx, r, demandSide, hs, tagRing, tagTotal, absSn); err != nil {
			return nil, err
		}
	}

	// --- Steps 2–3: masked reciprocals to Hs; Hs broadcasts ratios. ---
	var ratios map[string]float64
	switch {
	case r.ID() == hs:
		var err error
		ratios, err = r.backend.ratios(ctx, r, demandSide, supplySide, tagMasked, tagRatios)
		if err != nil {
			return nil, err
		}
	case onDemandSide:
		if err := r.backend.maskedReciprocal(ctx, r, hs, tagTotal, tagMasked, absSn); err != nil {
			return nil, err
		}
	}
	if onSupplySide && r.ID() != hs {
		raw, err := r.conn.Recv(ctx, hs, tagRatios)
		if err != nil {
			return nil, fmt.Errorf("distribution: recv ratios: %w", err)
		}
		ratios, err = decodeRatios(raw)
		transport.PutFrame(raw)
		if err != nil {
			return nil, err
		}
	}

	// --- Step 4: pairwise energy routing and payment. ---
	return r.routeAndPay(ctx, kind, price, demandSide, supplySide, ratios)
}

// distributionAggregate folds Enc_hs(|sn|) across the demand side using the
// configured topology; the aggregation root broadcasts the encrypted total
// to the whole demand side (Protocol 4 line 5) and keeps its own copy in
// r.encTotal for sendMaskedReciprocal.
func (r *windowRun) distributionAggregate(ctx context.Context, demandSide []string, hs, tagRing, tagTotal string, absSn fixed.Value) error {
	var (
		acc    *paillier.Ciphertext
		isRoot bool
		err    error
	)
	if r.cfg.Aggregation == AggregationTree {
		acc, isRoot, err = r.foldTree(ctx, demandSide, hs, tagRing, r.contribBuf[0].SetInt64(int64(absSn)))
		if err != nil {
			return fmt.Errorf("distribution: %w", err)
		}
	} else {
		acc, isRoot, err = r.distributionRingFold(ctx, demandSide, hs, tagRing, absSn)
		if err != nil {
			return err
		}
	}
	if !isRoot {
		return nil
	}

	// Root: broadcast the encrypted total within the demand side; its own
	// copy is handed to sendMaskedReciprocal through the window state. The
	// broadcast settles before it returns, so the pooled frame can be
	// recycled immediately after.
	buf := transport.GetFrame(r.dir[hs].FixedLen())
	out, err := acc.AppendFixed(buf[:0], r.dir[hs])
	if err != nil {
		transport.PutFrame(buf)
		return err
	}
	err = r.broadcast(ctx, demandSide, tagTotal, out)
	transport.PutFrame(out)
	if err != nil {
		return err
	}
	r.encTotal = acc
	return nil
}

// distributionRingFold is the paper's sequential chain: each member folds
// its encrypted share and forwards; the last member ends up holding the
// total (isRoot = true) instead of sending it to an external sink.
func (r *windowRun) distributionRingFold(ctx context.Context, demandSide []string, hs, tagRing string, absSn fixed.Value) (*paillier.Ciphertext, bool, error) {
	pos := -1
	for i, id := range demandSide {
		if id == r.ID() {
			pos = i
			break
		}
	}
	if pos == -1 {
		return nil, false, fmt.Errorf("distribution: %s not on demand side", r.ID())
	}

	enc, err := r.encryptUnder(ctx, hs, r.contribBuf[0].SetInt64(int64(absSn)))
	if err != nil {
		return nil, false, fmt.Errorf("distribution: encrypt share: %w", err)
	}
	acc := enc
	if pos > 0 {
		raw, err := r.conn.Recv(ctx, demandSide[pos-1], tagRing)
		if err != nil {
			return nil, false, fmt.Errorf("distribution ring recv: %w", err)
		}
		var in paillier.Ciphertext
		err = in.UnmarshalBinary(raw)
		transport.PutFrame(raw)
		if err != nil {
			return nil, false, fmt.Errorf("distribution ring decode: %w", err)
		}
		if err := r.dir[hs].AddInPlace(&in, enc); err != nil {
			return nil, false, err
		}
		acc = &in
	}

	if pos+1 < len(demandSide) {
		return nil, false, r.sendCipher(ctx, r.dir[hs], acc, demandSide[pos+1], tagRing)
	}
	return acc, true, nil
}

// sendMaskedReciprocal computes Enc(total)^round(S/|sn|) and ships it to Hs
// together with its identity.
func (r *windowRun) sendMaskedReciprocal(ctx context.Context, hs, tagTotal, tagMasked string, absSn fixed.Value) error {
	total := r.encTotal
	if total == nil {
		// Everyone but the aggregation root receives the broadcast total.
		root := r.aggregationRoot(r.demandSide)
		raw, err := r.conn.Recv(ctx, root, tagTotal)
		if err != nil {
			return fmt.Errorf("distribution: recv total: %w", err)
		}
		var ct paillier.Ciphertext
		err = ct.UnmarshalBinary(raw)
		transport.PutFrame(raw)
		if err != nil {
			return fmt.Errorf("distribution: decode total: %w", err)
		}
		total = &ct
	}

	exp, err := fixed.ReciprocalExponent(absSn)
	if err != nil {
		return fmt.Errorf("distribution: reciprocal: %w", err)
	}
	masked, err := r.dir[hs].ScalarMul(total, exp)
	if err != nil {
		return fmt.Errorf("distribution: scalar mul: %w", err)
	}
	return r.sendCipher(ctx, r.dir[hs], masked, hs, tagMasked)
}

// collectRatios is Hs's side: drain each demand-side member's masked value
// in arrival order, decrypt the ciphertexts concurrently across the shared
// crypto worker pool, recover the allocation ratios and broadcast the
// vector to the supply side. Decryption of already-arrived ciphertexts
// overlaps the wait for stragglers, so a slow sender no longer serializes
// the whole collection.
func (r *windowRun) collectRatios(ctx context.Context, demandSide, supplySide []string, tagMasked, tagRatios string) (map[string]float64, error) {
	n := len(demandSide)
	ids := make([]string, n)
	vals := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		from, raw, err := r.conn.RecvAny(ctx, tagMasked, demandSide)
		if err != nil {
			wg.Wait()
			return nil, fmt.Errorf("distribution: recv masked: %w", err)
		}
		i, from, raw := i, from, raw
		ids[i] = from
		r.workers.Go(&wg, func() {
			var ct paillier.Ciphertext
			err := ct.UnmarshalBinary(raw)
			transport.PutFrame(raw)
			if err != nil {
				errs[i] = fmt.Errorf("distribution: decode masked from %s: %w", from, err)
				return
			}
			m, err := r.key.Decrypt(&ct)
			if err != nil {
				errs[i] = fmt.Errorf("distribution: decrypt masked from %s: %w", from, err)
				return
			}
			ratio, err := fixed.RatioFromMasked(m)
			if err != nil {
				errs[i] = fmt.Errorf("distribution: ratio from %s: %w", from, err)
				return
			}
			if err := checkRatio(ratio); err != nil {
				errs[i] = fmt.Errorf("distribution: ratio from %s: %w", from, err)
				return
			}
			vals[i] = ratio
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	ratios := make(map[string]float64, n)
	for i, id := range ids {
		ratios[id] = vals[i]
	}
	if len(ratios) != n {
		return nil, fmt.Errorf("distribution: duplicate masked sender")
	}

	payload, err := encodeRatios(ratios)
	if err != nil {
		return nil, err
	}
	if err := r.broadcast(ctx, supplySide, tagRatios, payload); err != nil {
		return nil, err
	}
	return ratios, nil
}

// routeAndPay is step 4: every supply-side member initiates one exchange
// with every demand-side member; the per-peer exchanges are independent
// request/reply pairs on distinct (peer, tag) queues, so they run
// concurrently.
//
// General market: the initiator is a seller; it routes e_ij =
// sn_i·(|sn_j|/E_b) to buyer j, who replies with the payment m_ji = p·e_ij
// (validated by the seller).
//
// Extreme market: the initiator is a buyer; it requests e_ij =
// |sn_j|·(sn_i/E_s) from seller i and pays m_ji = p·e_ij; the seller
// confirms by echoing the routed amount.
func (r *windowRun) routeAndPay(ctx context.Context, kind market.Kind, price float64, demandSide, supplySide []string, ratios map[string]float64) ([]market.Trade, error) {
	tagEnergy := r.tag("pd/energy")
	tagReply := r.tag("pd/reply")

	// Fork the virtual clock once, at this deterministic point, and give
	// every concurrent exchange its own branch: a reply's virtual timestamp
	// then depends only on the request that exchange received, never on how
	// sibling exchanges happened to interleave in real time.
	forked := r.forkVirtual(ctx)

	switch {
	case contains(supplySide, r.ID()):
		myShare := r.snFixed.Abs().Float()
		ids := demandSide // already sorted (coalition rosters are)
		trades := make([]market.Trade, len(ids))
		errs := make([]error, len(ids))
		var wg sync.WaitGroup
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string, ctx context.Context) {
				defer wg.Done()
				ratio, ok := ratios[id]
				if !ok {
					errs[i] = fmt.Errorf("distribution: missing ratio for %s", id)
					return
				}
				trades[i], errs[i] = r.exchangeAsSupplier(ctx, kind, price, id, myShare, ratio, tagEnergy, tagReply)
			}(i, id, netem.Branch(forked))
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return trades, nil

	case contains(demandSide, r.ID()):
		errs := make([]error, len(supplySide))
		var wg sync.WaitGroup
		for i, id := range supplySide {
			wg.Add(1)
			go func(i int, id string, ctx context.Context) {
				defer wg.Done()
				errs[i] = r.exchangeAsDemander(ctx, kind, price, id, tagEnergy, tagReply)
			}(i, id, netem.Branch(forked))
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// exchangeAsSupplier runs one supply-side pairwise exchange: route the
// energy share to peer, await and validate its reply.
func (r *windowRun) exchangeAsSupplier(ctx context.Context, kind market.Kind, price float64, peer string, myShare, ratio float64, tagEnergy, tagReply string) (market.Trade, error) {
	ev, err := fixed.FromFloat(myShare * ratio)
	if err != nil {
		return market.Trade{}, err
	}
	var msg [8]byte
	binary.BigEndian.PutUint64(msg[:], uint64(int64(ev)))
	if err := r.conn.Send(ctx, peer, tagEnergy, msg[:]); err != nil {
		return market.Trade{}, err
	}
	raw, err := r.conn.Recv(ctx, peer, tagReply)
	if err != nil {
		return market.Trade{}, fmt.Errorf("distribution: reply from %s: %w", peer, err)
	}
	if len(raw) != 8 {
		return market.Trade{}, fmt.Errorf("distribution: bad reply from %s", peer)
	}
	reply := fixed.Value(int64(binary.BigEndian.Uint64(raw))).Float()
	transport.PutFrame(raw)

	e := ev.Float() // what was actually put on the wire
	if kind == market.GeneralMarket {
		// Seller initiated; the reply is the buyer's payment.
		if diff := reply - e*price; diff > paymentTolerance || diff < -paymentTolerance {
			return market.Trade{}, fmt.Errorf("distribution: %s paid %.6f for %.6f kWh at %.4f", peer, reply, e, price)
		}
		return market.Trade{Seller: r.ID(), Buyer: peer, Energy: e, Payment: reply}, nil
	}
	// Buyer initiated; the reply confirms the routed energy.
	if diff := reply - e; diff > paymentTolerance || diff < -paymentTolerance {
		return market.Trade{}, fmt.Errorf("distribution: %s confirmed %.6f of %.6f kWh", peer, reply, e)
	}
	return market.Trade{Seller: peer, Buyer: r.ID(), Energy: e, Payment: e * price}, nil
}

// exchangeAsDemander runs one demand-side pairwise exchange: await the
// routed energy from peer and answer with the payment (general market) or
// the routing confirmation (extreme market).
func (r *windowRun) exchangeAsDemander(ctx context.Context, kind market.Kind, price float64, peer, tagEnergy, tagReply string) error {
	raw, err := r.conn.Recv(ctx, peer, tagEnergy)
	if err != nil {
		return fmt.Errorf("distribution: energy from %s: %w", peer, err)
	}
	if len(raw) != 8 {
		return fmt.Errorf("distribution: bad energy from %s", peer)
	}
	e := fixed.Value(int64(binary.BigEndian.Uint64(raw))).Float()
	transport.PutFrame(raw)
	if e < 0 {
		return fmt.Errorf("distribution: negative energy from %s", peer)
	}
	var replyVal float64
	if kind == market.GeneralMarket {
		replyVal = e * price // buyer pays
	} else {
		replyVal = e // seller confirms routing
	}
	rv, err := fixed.FromFloat(replyVal)
	if err != nil {
		return err
	}
	var msg [8]byte
	binary.BigEndian.PutUint64(msg[:], uint64(int64(rv)))
	return r.conn.Send(ctx, peer, tagReply, msg[:])
}

// paymentTolerance absorbs fixed-point rounding in the pay/confirm checks.
const paymentTolerance = 1e-4

// ratioSlack bounds how far above 1 a decoded allocation ratio may land.
// Ratios are |sn_j|/E_b ∈ (0, 1] exactly, but the reciprocal trick rounds
// round(S/|sn_j|) to an integer, which can push the recovered ratio above 1
// by up to |sn_j|/(2S) ≈ 2.5e-4 at the largest representable shares.
const ratioSlack = 1e-3

// checkRatio rejects allocation ratios that cannot come from an honest
// Protocol 4 run: NaN, ±Inf, negative, or above 1 beyond rounding slack.
// Values outside this range would flow straight into routeAndPay trade
// amounts.
func checkRatio(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("non-finite allocation ratio")
	}
	if v < 0 || v > 1+ratioSlack {
		return fmt.Errorf("allocation ratio %g outside [0, 1]", v)
	}
	return nil
}

// encodeRatios serializes a ratio vector as count | (idLen|id|f64)*.
func encodeRatios(ratios map[string]float64) ([]byte, error) {
	ids := make([]string, 0, len(ratios))
	for id := range ratios {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf := make([]byte, 0, 4+len(ids)*16)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(ids)))
	buf = append(buf, u32[:]...)
	for _, id := range ids {
		if len(id) > 0xffff {
			return nil, fmt.Errorf("distribution: party ID too long")
		}
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], uint16(len(id)))
		buf = append(buf, u16[:]...)
		buf = append(buf, id...)
		var f [8]byte
		binary.BigEndian.PutUint64(f[:], math.Float64bits(ratios[id]))
		buf = append(buf, f[:]...)
	}
	return buf, nil
}

// ratioEntryMin is the smallest possible wire size of one ratio entry: a
// 2-byte id length (empty id) plus the 8-byte float.
const ratioEntryMin = 2 + 8

// decodeRatios reverses encodeRatios. The entry count is bounded by the
// remaining payload before any allocation — a corrupt header cannot demand
// a multi-GB map — and every ratio must pass checkRatio before it can
// reach routeAndPay.
func decodeRatios(raw []byte) (map[string]float64, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("distribution: truncated ratios")
	}
	n := int(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	if n > len(raw)/ratioEntryMin {
		return nil, fmt.Errorf("distribution: ratio count %d exceeds payload", n)
	}
	out := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		if len(raw) < 2 {
			return nil, fmt.Errorf("distribution: truncated ratio id length")
		}
		idLen := int(binary.BigEndian.Uint16(raw))
		raw = raw[2:]
		if len(raw) < idLen+8 {
			return nil, fmt.Errorf("distribution: truncated ratio entry")
		}
		id := string(raw[:idLen])
		raw = raw[idLen:]
		v := math.Float64frombits(binary.BigEndian.Uint64(raw))
		raw = raw[8:]
		if err := checkRatio(v); err != nil {
			return nil, fmt.Errorf("distribution: %s: %w", id, err)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("distribution: duplicate ratio for %s", id)
		}
		out[id] = v
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("distribution: trailing ratio bytes")
	}
	return out, nil
}

// cipher-pair codec shared with Protocol 3. Encoding is fixed-width under
// the pair's key (see Ciphertext.MarshalFixed) so the frame size never
// depends on the drawn blinding factors. The returned payload is a pooled
// frame: the caller owns it and hands it back with transport.PutFrame once
// sent.
func encodeCipherPair(pk *paillier.PublicKey, a, b *paillier.Ciphertext) ([]byte, error) {
	n := pk.FixedLen()
	buf := transport.GetFrame(4 + 2*n)
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	out, err := a.AppendFixed(buf[:4], pk)
	if err != nil {
		transport.PutFrame(buf)
		return nil, err
	}
	out, err = b.AppendFixed(out, pk)
	if err != nil {
		transport.PutFrame(buf)
		return nil, err
	}
	return out, nil
}

func decodeCipherPair(raw []byte) (*paillier.Ciphertext, *paillier.Ciphertext, error) {
	if len(raw) < 4 {
		return nil, nil, fmt.Errorf("truncated ciphertext pair")
	}
	alen := int(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	if len(raw) < alen {
		return nil, nil, fmt.Errorf("truncated first ciphertext")
	}
	var a, b paillier.Ciphertext
	if err := a.UnmarshalBinary(raw[:alen]); err != nil {
		return nil, nil, err
	}
	if err := b.UnmarshalBinary(raw[alen:]); err != nil {
		return nil, nil, err
	}
	return &a, &b, nil
}
