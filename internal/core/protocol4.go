package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/pem-go/pem/internal/fixed"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/paillier"
)

// privateDistribution is Protocol 4: allocate the pairwise trading amounts
// e_ij in proportion to demand (general market) or supply (extreme market)
// without revealing E_b, E_s or any |sn| value.
//
// General market mechanics (extreme market swaps the coalitions):
//
//  1. the buyers ring-aggregate Enc_pks(|sn_j|) under the chosen seller
//     Hs's key; the last buyer broadcasts the encrypted total Enc(E_b) to
//     the whole buyer coalition;
//  2. every buyer homomorphically computes
//     Enc(E_b)^round(S/|sn_j|) = Enc(E_b·S/|sn_j|) — the fixed-point
//     reciprocal trick that sidesteps Paillier's lack of division — and
//     sends it to Hs;
//  3. Hs decrypts each masked value, recovers the demand ratio
//     |sn_j|/E_b = S / (E_b·S/|sn_j|), and broadcasts the ratio vector to
//     the seller coalition (the designed leakage of Lemma 4);
//  4. every seller i routes e_ij = sn_i · ratio_j to each buyer j, who pays
//     m_ji = p·e_ij back.
func (r *windowRun) privateDistribution(ctx context.Context, kind market.Kind, price float64) ([]market.Trade, error) {
	ros := r.ros

	// The "demand side" aggregates its shares; the "supply side" receives
	// the ratios and routes energy. In the extreme market the roles swap.
	demandSide, supplySide := ros.buyers, ros.sellers
	if kind == market.ExtremeMarket {
		demandSide, supplySide = ros.sellers, ros.buyers
	}

	// Hs: hash-chosen member of the supply side.
	hs := supplySide[publicCoin(r.window, "hs", ros.sellers, ros.buyers, len(supplySide))]
	r.ros.hs = hs

	onDemandSide := contains(demandSide, r.ID())
	onSupplySide := contains(supplySide, r.ID())
	r.demandSide = demandSide

	tagRing := r.tag("pd/ring")
	tagTotal := r.tag("pd/total")
	tagMasked := r.tag("pd/masked")
	tagRatios := r.tag("pd/ratios")

	absSn := r.snFixed.Abs()

	// --- Step 1: demand-side ring aggregation of Enc_hs(|sn|). ---
	if onDemandSide {
		if err := r.distributionRing(ctx, demandSide, hs, tagRing, tagTotal, absSn); err != nil {
			return nil, err
		}
	}

	// --- Steps 2–3: masked reciprocals to Hs; Hs broadcasts ratios. ---
	var ratios map[string]float64
	switch {
	case r.ID() == hs:
		var err error
		ratios, err = r.collectRatios(ctx, demandSide, supplySide, tagMasked, tagRatios)
		if err != nil {
			return nil, err
		}
	case onDemandSide:
		if err := r.sendMaskedReciprocal(ctx, hs, tagTotal, tagMasked, absSn); err != nil {
			return nil, err
		}
	}
	if onSupplySide && r.ID() != hs {
		raw, err := r.conn.Recv(ctx, hs, tagRatios)
		if err != nil {
			return nil, fmt.Errorf("distribution: recv ratios: %w", err)
		}
		ratios, err = decodeRatios(raw)
		if err != nil {
			return nil, err
		}
	}

	// --- Step 4: pairwise energy routing and payment. ---
	return r.routeAndPay(ctx, kind, price, demandSide, supplySide, ratios)
}

// distributionRing folds Enc_hs(|sn|) along the demand side; the last
// member broadcasts the encrypted total to the whole demand side.
func (r *windowRun) distributionRing(ctx context.Context, demandSide []string, hs, tagRing, tagTotal string, absSn fixed.Value) error {
	pos := -1
	for i, id := range demandSide {
		if id == r.ID() {
			pos = i
			break
		}
	}
	if pos == -1 {
		return fmt.Errorf("distribution: %s not on demand side", r.ID())
	}

	enc, err := r.encryptUnder(ctx, hs, absSn.Big())
	if err != nil {
		return fmt.Errorf("distribution: encrypt share: %w", err)
	}
	acc := enc
	if pos > 0 {
		raw, err := r.conn.Recv(ctx, demandSide[pos-1], tagRing)
		if err != nil {
			return fmt.Errorf("distribution ring recv: %w", err)
		}
		var in paillier.Ciphertext
		if err := in.UnmarshalBinary(raw); err != nil {
			return fmt.Errorf("distribution ring decode: %w", err)
		}
		if acc, err = r.dir[hs].Add(&in, enc); err != nil {
			return err
		}
	}

	if pos+1 < len(demandSide) {
		out, err := acc.MarshalBinary()
		if err != nil {
			return err
		}
		return r.conn.Send(ctx, demandSide[pos+1], tagRing, out)
	}

	// Last member: broadcast the encrypted total within the demand side
	// (Protocol 4 line 5).
	out, err := acc.MarshalBinary()
	if err != nil {
		return err
	}
	for _, id := range demandSide {
		if id == r.ID() {
			continue
		}
		if err := r.conn.Send(ctx, id, tagTotal, out); err != nil {
			return err
		}
	}
	// The broadcaster uses its own copy directly: stash via loopback send
	// is unnecessary — hand it to sendMaskedReciprocal through the state.
	r.encTotal = acc
	return nil
}

// sendMaskedReciprocal computes Enc(total)^round(S/|sn|) and ships it to Hs
// together with its identity.
func (r *windowRun) sendMaskedReciprocal(ctx context.Context, hs, tagTotal, tagMasked string, absSn fixed.Value) error {
	total := r.encTotal
	if total == nil {
		// The broadcaster is the last demand-side member.
		last := r.demandSide[len(r.demandSide)-1]
		raw, err := r.conn.Recv(ctx, last, tagTotal)
		if err != nil {
			return fmt.Errorf("distribution: recv total: %w", err)
		}
		var ct paillier.Ciphertext
		if err := ct.UnmarshalBinary(raw); err != nil {
			return fmt.Errorf("distribution: decode total: %w", err)
		}
		total = &ct
	}

	exp, err := fixed.ReciprocalExponent(absSn)
	if err != nil {
		return fmt.Errorf("distribution: reciprocal: %w", err)
	}
	masked, err := r.dir[hs].ScalarMul(total, exp)
	if err != nil {
		return fmt.Errorf("distribution: scalar mul: %w", err)
	}
	payload, err := masked.MarshalBinary()
	if err != nil {
		return err
	}
	return r.conn.Send(ctx, hs, tagMasked, payload)
}

// collectRatios is Hs's side: decrypt each demand-side member's masked
// value, recover its allocation ratio and broadcast the vector to the
// supply side.
func (r *windowRun) collectRatios(ctx context.Context, demandSide, supplySide []string, tagMasked, tagRatios string) (map[string]float64, error) {
	ratios := make(map[string]float64, len(demandSide))
	for _, id := range demandSide {
		raw, err := r.conn.Recv(ctx, id, tagMasked)
		if err != nil {
			return nil, fmt.Errorf("distribution: recv masked from %s: %w", id, err)
		}
		var ct paillier.Ciphertext
		if err := ct.UnmarshalBinary(raw); err != nil {
			return nil, fmt.Errorf("distribution: decode masked from %s: %w", id, err)
		}
		m, err := r.key.Decrypt(&ct)
		if err != nil {
			return nil, fmt.Errorf("distribution: decrypt masked from %s: %w", id, err)
		}
		ratio, err := fixed.RatioFromMasked(m)
		if err != nil {
			return nil, fmt.Errorf("distribution: ratio from %s: %w", id, err)
		}
		ratios[id] = ratio
	}

	payload, err := encodeRatios(ratios)
	if err != nil {
		return nil, err
	}
	for _, id := range supplySide {
		if id == r.ID() {
			continue
		}
		if err := r.conn.Send(ctx, id, tagRatios, payload); err != nil {
			return nil, err
		}
	}
	return ratios, nil
}

// routeAndPay is step 4: every supply-side member initiates one exchange
// with every demand-side member.
//
// General market: the initiator is a seller; it routes e_ij =
// sn_i·(|sn_j|/E_b) to buyer j, who replies with the payment m_ji = p·e_ij
// (validated by the seller).
//
// Extreme market: the initiator is a buyer; it requests e_ij =
// |sn_j|·(sn_i/E_s) from seller i and pays m_ji = p·e_ij; the seller
// confirms by echoing the routed amount.
func (r *windowRun) routeAndPay(ctx context.Context, kind market.Kind, price float64, demandSide, supplySide []string, ratios map[string]float64) ([]market.Trade, error) {
	tagEnergy := r.tag("pd/energy")
	tagReply := r.tag("pd/reply")

	onSupplySide := contains(supplySide, r.ID())
	onDemandSide := contains(demandSide, r.ID())

	var trades []market.Trade
	switch {
	case onSupplySide:
		myShare := r.snFixed.Abs().Float()
		ids := append([]string(nil), demandSide...)
		sort.Strings(ids)
		for _, id := range ids {
			ratio, ok := ratios[id]
			if !ok {
				return nil, fmt.Errorf("distribution: missing ratio for %s", id)
			}
			e := myShare * ratio
			ev, err := fixed.FromFloat(e)
			if err != nil {
				return nil, err
			}
			var msg [8]byte
			binary.BigEndian.PutUint64(msg[:], uint64(int64(ev)))
			if err := r.conn.Send(ctx, id, tagEnergy, msg[:]); err != nil {
				return nil, err
			}
			raw, err := r.conn.Recv(ctx, id, tagReply)
			if err != nil {
				return nil, fmt.Errorf("distribution: reply from %s: %w", id, err)
			}
			if len(raw) != 8 {
				return nil, fmt.Errorf("distribution: bad reply from %s", id)
			}
			reply := fixed.Value(int64(binary.BigEndian.Uint64(raw))).Float()

			e = ev.Float() // what was actually put on the wire
			if kind == market.GeneralMarket {
				// Seller initiated; the reply is the buyer's payment.
				if diff := reply - e*price; diff > paymentTolerance || diff < -paymentTolerance {
					return nil, fmt.Errorf("distribution: %s paid %.6f for %.6f kWh at %.4f", id, reply, e, price)
				}
				trades = append(trades, market.Trade{Seller: r.ID(), Buyer: id, Energy: e, Payment: reply})
			} else {
				// Buyer initiated; the reply confirms the routed energy.
				if diff := reply - e; diff > paymentTolerance || diff < -paymentTolerance {
					return nil, fmt.Errorf("distribution: %s confirmed %.6f of %.6f kWh", id, reply, e)
				}
				trades = append(trades, market.Trade{Seller: id, Buyer: r.ID(), Energy: e, Payment: e * price})
			}
		}
	case onDemandSide:
		for _, id := range supplySide {
			raw, err := r.conn.Recv(ctx, id, tagEnergy)
			if err != nil {
				return nil, fmt.Errorf("distribution: energy from %s: %w", id, err)
			}
			if len(raw) != 8 {
				return nil, fmt.Errorf("distribution: bad energy from %s", id)
			}
			e := fixed.Value(int64(binary.BigEndian.Uint64(raw))).Float()
			if e < 0 {
				return nil, fmt.Errorf("distribution: negative energy from %s", id)
			}
			var replyVal float64
			if kind == market.GeneralMarket {
				replyVal = e * price // buyer pays
			} else {
				replyVal = e // seller confirms routing
			}
			rv, err := fixed.FromFloat(replyVal)
			if err != nil {
				return nil, err
			}
			var msg [8]byte
			binary.BigEndian.PutUint64(msg[:], uint64(int64(rv)))
			if err := r.conn.Send(ctx, id, tagReply, msg[:]); err != nil {
				return nil, err
			}
		}
	}
	return trades, nil
}

// paymentTolerance absorbs fixed-point rounding in the pay/confirm checks.
const paymentTolerance = 1e-4

// encodeRatios serializes a ratio vector as count | (idLen|id|f64)*.
func encodeRatios(ratios map[string]float64) ([]byte, error) {
	ids := make([]string, 0, len(ratios))
	for id := range ratios {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf := make([]byte, 0, 4+len(ids)*16)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(ids)))
	buf = append(buf, u32[:]...)
	for _, id := range ids {
		if len(id) > 0xffff {
			return nil, fmt.Errorf("distribution: party ID too long")
		}
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], uint16(len(id)))
		buf = append(buf, u16[:]...)
		buf = append(buf, id...)
		var f [8]byte
		binary.BigEndian.PutUint64(f[:], math.Float64bits(ratios[id]))
		buf = append(buf, f[:]...)
	}
	return buf, nil
}

// decodeRatios reverses encodeRatios.
func decodeRatios(raw []byte) (map[string]float64, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("distribution: truncated ratios")
	}
	n := int(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	out := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		if len(raw) < 2 {
			return nil, fmt.Errorf("distribution: truncated ratio id length")
		}
		idLen := int(binary.BigEndian.Uint16(raw))
		raw = raw[2:]
		if len(raw) < idLen+8 {
			return nil, fmt.Errorf("distribution: truncated ratio entry")
		}
		id := string(raw[:idLen])
		raw = raw[idLen:]
		out[id] = math.Float64frombits(binary.BigEndian.Uint64(raw))
		raw = raw[8:]
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("distribution: trailing ratio bytes")
	}
	return out, nil
}

// cipher-pair codec shared with Protocol 3.
func encodeCipherPair(a, b *paillier.Ciphertext) ([]byte, error) {
	ab, err := a.MarshalBinary()
	if err != nil {
		return nil, err
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(ab)))
	out := append(u32[:], ab...)
	return append(out, bb...), nil
}

func decodeCipherPair(raw []byte) (*paillier.Ciphertext, *paillier.Ciphertext, error) {
	if len(raw) < 4 {
		return nil, nil, fmt.Errorf("truncated ciphertext pair")
	}
	alen := int(binary.BigEndian.Uint32(raw))
	raw = raw[4:]
	if len(raw) < alen {
		return nil, nil, fmt.Errorf("truncated first ciphertext")
	}
	var a, b paillier.Ciphertext
	if err := a.UnmarshalBinary(raw[:alen]); err != nil {
		return nil, nil, err
	}
	if err := b.UnmarshalBinary(raw[alen:]); err != nil {
		return nil, nil, err
	}
	return &a, &b, nil
}
