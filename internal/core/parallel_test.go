package core

import (
	"math"
	"strings"
	"testing"

	"github.com/pem-go/pem/internal/market"
)

// windowInputsMixed is a fleet input with populated coalitions on both
// sides, exercising the full Protocol 2–4 stack.
func windowInputsMixed(n int) []market.WindowInput {
	inputs := make([]market.WindowInput, n)
	for i := range inputs {
		switch i % 3 {
		case 0:
			inputs[i] = market.WindowInput{Generation: 0.30 + 0.01*float64(i), Load: 0.10}
		case 1:
			inputs[i] = market.WindowInput{Generation: 0.00, Load: 0.25 + 0.01*float64(i)}
		default:
			inputs[i] = market.WindowInput{Generation: 0.05, Load: 0.20}
		}
	}
	return inputs
}

// TestTreeAggregationMatchesPlaintext validates the log-depth topology
// against the plaintext oracle for both market regimes and for coalition
// sizes around the tree's structural edge cases (1, 2, power of two,
// power of two ± 1 members).
func TestTreeAggregationMatchesPlaintext(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 7, 8, 9} {
		agents := testAgents(n)
		inputs := windowInputsMixed(n)
		cfg := testConfig(700 + int64(n))
		cfg.Aggregation = AggregationTree
		res := runOneWindow(t, cfg, agents, inputs)
		assertMatchesPlaintext(t, res, agents, inputs)
	}
}

func TestTreeAggregationExtremeMarket(t *testing.T) {
	agents := testAgents(5)
	inputs := []market.WindowInput{
		{Generation: 0.50, Load: 0.10}, // seller
		{Generation: 0.40, Load: 0.10}, // seller
		{Generation: 0.45, Load: 0.05}, // seller
		{Generation: 0.00, Load: 0.15}, // buyer
		{Generation: 0.00, Load: 0.10}, // buyer
	}
	cfg := testConfig(711)
	cfg.Aggregation = AggregationTree
	res := runOneWindow(t, cfg, agents, inputs)
	if res.Kind != market.ExtremeMarket {
		t.Fatalf("kind = %v", res.Kind)
	}
	assertMatchesPlaintext(t, res, agents, inputs)
}

// TestWorkerCountBitIdentical is the determinism acceptance check for the
// intra-window parallel engine: a seeded ring-topology run must produce
// bit-identical public outcomes at every crypto worker count.
func TestWorkerCountBitIdentical(t *testing.T) {
	agents := testAgents(7)
	inputs := windowInputsMixed(7)

	run := func(workers int) *WindowResult {
		cfg := testConfig(720)
		cfg.CryptoWorkers = workers
		return runOneWindow(t, cfg, agents, inputs)
	}
	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.Kind != base.Kind || got.Price != base.Price || got.PHat != base.PHat {
			t.Fatalf("workers=%d: outcome differs: %+v vs %+v", workers, got, base)
		}
		if len(got.Trades) != len(base.Trades) {
			t.Fatalf("workers=%d: trade counts differ", workers)
		}
		for i := range base.Trades {
			if got.Trades[i] != base.Trades[i] {
				t.Fatalf("workers=%d trade %d: %+v vs %+v", workers, i, got.Trades[i], base.Trades[i])
			}
		}
	}
}

func TestConfigValidatesParallelKnobs(t *testing.T) {
	cfg := testConfig(1)
	cfg.CryptoWorkers = -1
	if _, err := NewEngine(cfg, testAgents(2)); err == nil {
		t.Error("negative CryptoWorkers accepted")
	}
	cfg = testConfig(1)
	cfg.Aggregation = "star"
	if _, err := NewEngine(cfg, testAgents(2)); err == nil {
		t.Error("unknown aggregation accepted")
	}
}

func TestDecodeRatiosHardening(t *testing.T) {
	valid, err := encodeRatios(map[string]float64{"a": 0.25, "b": 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRatios(valid); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}

	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"count-bomb", []byte{0xff, 0xff, 0xff, 0xff}, "exceeds payload"},
		{"count-exceeds-payload", append([]byte{0, 0, 0, 9}, valid[4:]...), "exceeds payload"},
		{"truncated", valid[:len(valid)-1], "truncated"},
		{"trailing", append(append([]byte(nil), valid...), 0), "trailing"},
	}
	for _, tc := range cases {
		if _, err := decodeRatios(tc.raw); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	for name, v := range map[string]float64{
		"nan":      math.NaN(),
		"inf":      math.Inf(1),
		"neg-inf":  math.Inf(-1),
		"negative": -0.25,
		"above-1":  1.5,
	} {
		raw, err := encodeRatios(map[string]float64{"a": v})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeRatios(raw); err == nil {
			t.Errorf("%s ratio accepted", name)
		}
	}

	// Within rounding slack of 1 is legal.
	raw, err := encodeRatios(map[string]float64{"a": 1 + ratioSlack/2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRatios(raw); err != nil {
		t.Errorf("ratio within slack rejected: %v", err)
	}
}

// FuzzDecodeRatios checks the wire decoder never panics, never accepts a
// non-finite or out-of-range ratio, and that accepted vectors survive an
// encode/decode round trip.
func FuzzDecodeRatios(f *testing.F) {
	seed, _ := encodeRatios(map[string]float64{"alice": 0.25, "bob": 0.75})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ratios, err := decodeRatios(raw)
		if err != nil {
			return
		}
		for id, v := range ratios {
			if err := checkRatio(v); err != nil {
				t.Fatalf("decoder accepted bad ratio %g for %q", v, id)
			}
		}
		re, err := encodeRatios(ratios)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := decodeRatios(re)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if len(back) != len(ratios) {
			t.Fatalf("round trip lost entries: %d vs %d", len(back), len(ratios))
		}
	})
}
