package core

import (
	"context"
	"fmt"
	"math/big"

	"github.com/pem-go/pem/internal/gc"
	"github.com/pem-go/pem/internal/market"
)

// privateMarketEvaluation is Protocol 2: decide general vs extreme market
// without revealing E_b or E_s.
//
// Round A aggregates Rb = Σ_buyers(|sn_j| + r_j) + Σ_sellers r_i under the
// chosen seller Hr1's key; round B aggregates Rs = Σ_sellers(sn_i + r_i) +
// Σ_buyers r_j under the chosen buyer Hr2's key. Because both rounds carry
// the same total nonce mass T, comparing Rb and Rs is equivalent to
// comparing E_b and E_s — which Hr1 and Hr2 do with the garbled-circuit
// comparator, then broadcast the one-bit outcome.
//
// The paper routes the final ciphertext of each round to the decryptor
// without that decryptor's own nonce in the chain; here the decryptor adds
// its own contribution locally after decrypting — identical totals, one
// fewer hop.
func (r *windowRun) privateMarketEvaluation(ctx context.Context) (market.Kind, error) {
	ros := r.ros

	// Round A contributions: buyers fold |sn_j| + r_j, sellers fold r_i.
	// Ring order: buyers, then sellers without Hr1; sink is Hr1.
	ringA := append(append([]string{}, ros.buyers...), without(ros.sellers, ros.hr1)...)
	tagA := r.tag("pme/rb")
	contribA := new(big.Int).SetUint64(r.nonce)
	if r.role == market.RoleBuyer {
		contribA.Add(contribA, new(big.Int).Abs(r.snFixed.Big()))
	}

	var rb uint64
	switch {
	case r.ID() == ros.hr1:
		m, err := r.collect(ctx, ringA, tagA)
		if err != nil {
			return 0, err
		}
		// Fold in Hr1's own nonce locally.
		m.Add(m, new(big.Int).SetUint64(r.nonce))
		if m.Sign() < 0 || !m.IsUint64() {
			return 0, fmt.Errorf("masked demand out of range: %s", m)
		}
		rb = m.Uint64()
	case r.role != market.RoleOff:
		if err := r.aggregate(ctx, ringA, ros.hr1, ros.hr1, tagA, contribA); err != nil {
			return 0, err
		}
	}

	// Round B: sellers fold sn_i + r_i, buyers without Hr2 fold r_j; sink
	// is Hr2.
	ringB := append(append([]string{}, ros.sellers...), without(ros.buyers, ros.hr2)...)
	tagB := r.tag("pme/rs")
	contribB := new(big.Int).SetUint64(r.nonce)
	if r.role == market.RoleSeller {
		contribB.Add(contribB, r.snFixed.Big())
	}

	var rs uint64
	switch {
	case r.ID() == ros.hr2:
		m, err := r.collect(ctx, ringB, tagB)
		if err != nil {
			return 0, err
		}
		m.Add(m, new(big.Int).SetUint64(r.nonce))
		if m.Sign() < 0 || !m.IsUint64() {
			return 0, fmt.Errorf("masked supply out of range: %s", m)
		}
		rs = m.Uint64()
	case r.role != market.RoleOff:
		if err := r.aggregate(ctx, ringB, ros.hr2, ros.hr2, tagB, contribB); err != nil {
			return 0, err
		}
	}

	// Secure comparison between Hr1 (garbler, input Rb) and Hr2
	// (evaluator, input Rs): general market iff Rb > Rs ⇔ E_b > E_s.
	opts := gc.ProtocolOptions{
		Group:          r.cfg.OTGroup,
		Random:         r.random,
		UseOTExtension: r.cfg.UseOTExtension,
		DisableFreeXOR: r.cfg.DisableFreeXOR,
		GRR3:           r.cfg.GRR3,
	}
	session := r.tag("pme/cmp")
	kindTag := r.tag("pme/kind")

	switch r.ID() {
	case ros.hr1:
		res, err := gc.SecureCompareGarbler(ctx, r.conn, ros.hr2, session, rb, r.cfg.CompareBits, opts)
		if err != nil {
			return 0, fmt.Errorf("secure comparison: %w", err)
		}
		kind := market.ExtremeMarket
		if res == gc.LeftGreater {
			kind = market.GeneralMarket
		}
		// Hr1 announces the public one-bit outcome to everyone else
		// except Hr2 (who learned it in the comparison).
		msg := []byte{byte(kind)}
		for _, id := range ros.all {
			if id == r.ID() || id == ros.hr2 {
				continue
			}
			if err := r.conn.Send(ctx, id, kindTag, msg); err != nil {
				return 0, err
			}
		}
		return kind, nil

	case ros.hr2:
		res, err := gc.SecureCompareEvaluator(ctx, r.conn, ros.hr1, session, rs, r.cfg.CompareBits, opts)
		if err != nil {
			return 0, fmt.Errorf("secure comparison: %w", err)
		}
		if res == gc.LeftGreater {
			return market.GeneralMarket, nil
		}
		return market.ExtremeMarket, nil

	default:
		raw, err := r.conn.Recv(ctx, ros.hr1, kindTag)
		if err != nil {
			return 0, err
		}
		if len(raw) != 1 {
			return 0, fmt.Errorf("bad market-kind announcement")
		}
		kind := market.Kind(raw[0])
		if kind != market.GeneralMarket && kind != market.ExtremeMarket {
			return 0, fmt.Errorf("invalid market kind %d", raw[0])
		}
		return kind, nil
	}
}
