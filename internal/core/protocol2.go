package core

import (
	"context"
	"fmt"

	"github.com/pem-go/pem/internal/market"
)

// privateMarketEvaluation is Protocol 2: decide general vs extreme market
// without revealing E_b or E_s.
//
// Round A aggregates Rb = Σ_buyers(|sn_j| + r_j) + Σ_sellers r_i under the
// chosen seller Hr1; round B aggregates Rs = Σ_sellers(sn_i + r_i) +
// Σ_buyers r_j under the chosen buyer Hr2. Because both rounds carry the
// same total nonce mass T, comparing Rb and Rs is equivalent to comparing
// E_b and E_s — which Hr1 and Hr2 do through the backend's compareTotals
// (a garbled-circuit comparison under the paillier backend, a masked
// compare under hybrid), then the one-bit outcome is broadcast.
//
// The paper routes the final ciphertext of each round to the decryptor
// without that decryptor's own nonce in the chain; here the decryptor adds
// its own contribution locally after decrypting — identical totals, one
// fewer hop.
func (r *windowRun) privateMarketEvaluation(ctx context.Context) (market.Kind, error) {
	ros := r.ros

	// Round A contributions: buyers fold |sn_j| + r_j, sellers fold r_i.
	// Ring order: buyers, then sellers without Hr1; sink is Hr1. The ring
	// order and the contribution integers live in this run's recycled
	// scratch — a steady-state window builds them allocation-free.
	ringA := append(r.ringABuf[:0], ros.buyers...)
	for _, id := range ros.sellers {
		if id != ros.hr1 {
			ringA = append(ringA, id)
		}
	}
	r.ringABuf = ringA
	tagA := r.tag("pme/rb")
	contribA := r.contribBuf[0].SetUint64(r.nonce)
	if r.role == market.RoleBuyer {
		sn := r.contribBuf[1].SetInt64(int64(r.snFixed))
		contribA.Add(contribA, sn.Abs(sn))
	}

	var rb uint64
	switch {
	case r.ID() == ros.hr1:
		m, err := r.backend.collectSum(ctx, r, ringA, tagA)
		if err != nil {
			return 0, err
		}
		// Fold in Hr1's own nonce locally.
		m.Add(m, r.contribBuf[1].SetUint64(r.nonce))
		if m.Sign() < 0 || !m.IsUint64() {
			return 0, fmt.Errorf("masked demand out of range: %s", m)
		}
		rb = m.Uint64()
	case r.role != market.RoleOff:
		if err := r.backend.aggregateSum(ctx, r, ringA, ros.hr1, tagA, contribA); err != nil {
			return 0, err
		}
	}

	// Round B: sellers fold sn_i + r_i, buyers without Hr2 fold r_j; sink
	// is Hr2.
	ringB := append(r.ringBBuf[:0], ros.sellers...)
	for _, id := range ros.buyers {
		if id != ros.hr2 {
			ringB = append(ringB, id)
		}
	}
	r.ringBBuf = ringB
	tagB := r.tag("pme/rs")
	contribB := r.contribBuf[0].SetUint64(r.nonce)
	if r.role == market.RoleSeller {
		contribB.Add(contribB, r.contribBuf[1].SetInt64(int64(r.snFixed)))
	}

	var rs uint64
	switch {
	case r.ID() == ros.hr2:
		m, err := r.backend.collectSum(ctx, r, ringB, tagB)
		if err != nil {
			return 0, err
		}
		m.Add(m, r.contribBuf[1].SetUint64(r.nonce))
		if m.Sign() < 0 || !m.IsUint64() {
			return 0, fmt.Errorf("masked supply out of range: %s", m)
		}
		rs = m.Uint64()
	case r.role != market.RoleOff:
		if err := r.backend.aggregateSum(ctx, r, ringB, ros.hr2, tagB, contribB); err != nil {
			return 0, err
		}
	}

	// Backend-specific comparison of the masked totals: Hr1 supplies Rb,
	// Hr2 supplies Rs, everyone learns the same one-bit outcome.
	masked := rb
	if r.ID() == ros.hr2 {
		masked = rs
	}
	return r.backend.compareTotals(ctx, r, masked)
}
