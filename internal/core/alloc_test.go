package core

import (
	"testing"

	"github.com/pem-go/pem/internal/transport"
)

// Allocation-budget tests for the hybrid backend's masking hot path: mask
// derivation and the share encode/decode cycle run per peer per phase per
// window, so they must stay allocation-free in steady state (AllocsPerRun's
// warm-up call absorbs the one-time hash-buffer growth and frame-pool
// priming).

// TestMaskWordsAllocFree pins the pairwise mask derivation: seed||tag is
// assembled in the run's recycled buffer and digested on the stack.
func TestMaskWordsAllocFree(t *testing.T) {
	p := &Party{maskSeeds: map[string][]byte{"peer": make([]byte, 32)}}
	r := &windowRun{Party: p}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := r.maskWords("peer", "c0/w12/pme/sum"); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("maskWords: %.1f allocs/op, want 0", avg)
	}
}

// TestMaskedShareCycleAllocFree pins the hybrid fold's per-hop frame work:
// encode a share into a pooled frame, decode it back, recycle the frame.
func TestMaskedShareCycleAllocFree(t *testing.T) {
	for _, words := range []int{1, 2} {
		avg := testing.AllocsPerRun(100, func() {
			out := encodeShare(maskedShare{3, 7}, words)
			s, err := decodeShare(out, words, "t")
			transport.PutFrame(out)
			if err != nil {
				t.Fatal(err)
			}
			if s[0] != 3 {
				t.Fatal("share corrupted")
			}
		})
		if avg != 0 {
			t.Errorf("encodeShare/decodeShare(words=%d): %.1f allocs/op, want 0", words, avg)
		}
	}
}

// TestPublicCoinAllocFree pins the per-window coin derivation: the hash
// input is assembled in a pooled buffer and digested on the stack, so
// drawing a coin allocates nothing no matter the coalition size.
func TestPublicCoinAllocFree(t *testing.T) {
	sellers := []string{"a1", "a2", "a3"}
	buyers := []string{"b1", "b2"}
	avg := testing.AllocsPerRun(100, func() {
		if idx := publicCoin(7, "hr1", sellers, buyers, len(sellers)); idx < 0 || idx >= len(sellers) {
			t.Fatalf("coin out of range: %d", idx)
		}
	})
	if avg != 0 {
		t.Errorf("publicCoin: %.1f allocs/op, want 0", avg)
	}
}
