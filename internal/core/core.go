// Package core implements the Private Energy Market protocol engine —
// Protocols 1–4 of the paper — on top of the Paillier, garbled-circuit,
// OT and transport substrates.
//
// Each agent is a Party running its own sequential protocol program,
// typically on its own goroutine (mirroring the paper's one-container-per-
// agent deployment). Within a trading window (Protocol 1) the parties:
//
//  1. announce their buyer/seller/off role (coalition membership is public;
//     the underlying net energy is not),
//  2. run Private Market Evaluation (Protocol 2): two nonce-masked Paillier
//     ring aggregations followed by a garbled-circuit comparison of the
//     masked totals Rb and Rs,
//  3. in a general market, run Private Pricing (Protocol 3): ring
//     aggregation of the sellers' k_i and g_i+1+ε_i·b_i−b_i under a random
//     buyer's key, who computes and broadcasts the clamped equilibrium
//     price (Eq. 13–14),
//  4. run Private Distribution (Protocol 4): the demand side aggregates its
//     total under a random counterparty key, each member homomorphically
//     multiplies the encrypted total by the fixed-point reciprocal of its
//     own share, the counterparty decrypts and broadcasts only the
//     allocation ratios, and the pairwise trades e_ij are routed and paid.
//
// The paper "randomly chooses" the special parties Hr1, Hr2, Hb, Hs; this
// implementation derives them from a public coin (SHA-256 over the window
// number and the coalition rosters) so that all parties agree without a
// trusted dealer — equivalent under the semi-honest model.
package core

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/netem"
	"github.com/pem-go/pem/internal/ot"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// Config holds the public protocol parameters shared by every party.
type Config struct {
	// KeyBits is the Paillier modulus size (the paper sweeps 512/1024/2048).
	KeyBits int
	// Params are the public market prices and bounds.
	Params market.Params
	// CompareBits is the width of the Rb/Rs comparator (default 64).
	CompareBits int
	// NonceBits is the masking-nonce width of Protocol 2 (default 40).
	NonceBits int
	// OTGroup is the DH group for wire-label OTs (default: 2048-bit MODP;
	// tests use ot.TestGroup()).
	OTGroup *ot.Group
	// UseOTExtension switches the comparator label transfer to IKNP.
	UseOTExtension bool
	// DisableFreeXOR garbles XOR gates as tables (ablation only).
	DisableFreeXOR bool
	// GRR3 enables garbled row reduction for the comparator tables.
	GRR3 bool
	// PreEncrypt enables background pre-computation of Paillier blinding
	// factors (the paper's idle-time encryption; Fig 5b's key-size
	// insensitivity depends on it).
	PreEncrypt bool
	// MaxInflightWindows is the number of trading windows the scheduler
	// keeps in flight concurrently (default 1: strictly sequential, the
	// paper's deployment). Windows are independent protocol instances with
	// window-namespaced message tags, so raising this pipelines the day
	// without any cross-window interference.
	MaxInflightWindows int
	// CryptoWorkers sizes the shared worker pool for intra-window parallel
	// crypto: Hs's batched decryption of the Protocol 4 masked ciphertexts
	// runs across it (default runtime.NumCPU()). The pool is shared by all
	// parties and all in-flight windows, capping the process's total crypto
	// parallelism. Outcomes are bit-identical at any worker count.
	CryptoWorkers int
	// CryptoBackend selects the window crypto layer: "paillier" (default;
	// the paper's construction — every phase on homomorphic encryption plus
	// the garbled-circuit comparison) or "hybrid" (Protocols 2–3 and the
	// Rb/Rs comparison on seeded additive masking, Paillier kept only for
	// Protocol 4's single-decryptor ratio step). Outcomes are bit-identical;
	// the hybrid backend trades the comparison's privacy (Hr1 learns
	// E_b−E_s) for an order-of-magnitude window speedup — see DESIGN.md §12.
	CryptoBackend string
	// Aggregation selects the encrypted-sum topology for the masked ring
	// aggregations of Protocol 2 and the demand-side total of Protocol 4:
	// "ring" (default; the paper's O(n) sequential chain) or "tree"
	// (log-depth binary reduction — each partial sum stays encrypted under
	// the sink's key, so the leakage profile is unchanged).
	Aggregation string
	// Namespace scopes every window tag this engine emits under an extra
	// transport namespace (see transport.ScopedWindowTag). Empty for solo
	// engines; a coalition grid gives each engine a distinct namespace so
	// concurrent coalitions sharing one bus can reuse window numbers
	// without cross-talk and keep disjoint byte accounting.
	Namespace string
	// CompactWindowMetrics folds each window's per-window transport
	// counters (bytes, messages, virtual latency, rounds) back into their
	// scope aggregates as soon as the window's WindowResult has captured
	// them, keeping the shared metrics sink O(windows in flight) instead of
	// O(windows run). Solo engines leave it off so per-window queries
	// (Metrics().WindowBytes et al.) keep working after a run; the grid
	// supervisor turns it on for coalition engines, whose per-window figures
	// live on in their WindowResults.
	CompactWindowMetrics bool
	// Network selects a network-emulation topology preset (see
	// netem.Presets: "lan", "metro", "wan", "cellular", "lossy"). When set,
	// every endpoint is wrapped in the deterministic emulation layer: all
	// window traffic is priced against seeded per-link latency, jitter,
	// bandwidth and loss models on a virtual clock — no wall-clock sleeps —
	// and each WindowResult reports its critical-path virtual latency and
	// protocol round count. Empty disables emulation.
	Network string
	// Seed, when non-nil, makes the whole engine deterministic: party
	// randomness is derived from it. Production deployments leave it nil
	// (crypto/rand).
	Seed *int64
}

func (c Config) withDefaults() Config {
	if c.KeyBits == 0 {
		c.KeyBits = 1024
	}
	if c.CompareBits == 0 {
		c.CompareBits = 64
	}
	if c.NonceBits == 0 {
		c.NonceBits = 40
	}
	if c.OTGroup == nil {
		c.OTGroup = ot.DefaultGroup()
	}
	if c.Params == (market.Params{}) {
		c.Params = market.DefaultParams()
	}
	if c.MaxInflightWindows == 0 {
		c.MaxInflightWindows = 1
	}
	if c.CryptoWorkers == 0 {
		c.CryptoWorkers = runtime.NumCPU()
	}
	if c.Aggregation == "" {
		c.Aggregation = AggregationRing
	}
	if c.CryptoBackend == "" {
		c.CryptoBackend = BackendPaillier
	}
	return c
}

// Aggregation topologies (Config.Aggregation).
const (
	AggregationRing = "ring"
	AggregationTree = "tree"
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.KeyBits < 64 {
		return fmt.Errorf("core: key size %d too small", c.KeyBits)
	}
	if c.CompareBits < c.NonceBits+10 || c.CompareBits > 128 {
		return fmt.Errorf("core: comparator width %d incompatible with %d-bit nonces", c.CompareBits, c.NonceBits)
	}
	if c.MaxInflightWindows < 0 {
		return fmt.Errorf("core: negative MaxInflightWindows %d", c.MaxInflightWindows)
	}
	if c.CryptoWorkers < 0 {
		return fmt.Errorf("core: negative CryptoWorkers %d", c.CryptoWorkers)
	}
	if c.Aggregation != AggregationRing && c.Aggregation != AggregationTree {
		return fmt.Errorf("core: unknown aggregation topology %q", c.Aggregation)
	}
	if c.CryptoBackend != BackendPaillier && c.CryptoBackend != BackendHybrid {
		return fmt.Errorf("core: unknown crypto backend %q (have %q, %q)", c.CryptoBackend, BackendPaillier, BackendHybrid)
	}
	if c.Namespace != "" && !transport.ValidScope(c.Namespace) {
		return fmt.Errorf("core: invalid namespace %q (letters, digits, '.', '_', '-'; not a w<n> window prefix)", c.Namespace)
	}
	if c.Network != "" && !netem.ValidPreset(c.Network) {
		return fmt.Errorf("core: unknown network topology %q (have %v)", c.Network, netem.Presets())
	}
	return c.Params.Validate()
}

// Engine coordinates a fleet of parties through trading windows. It is the
// experimenter's harness: it provisions keys, owns the transport, launches
// the per-party protocol programs and aggregates the public outcome. It
// never injects private data into the protocols themselves.
//
// The engine is the fleet-wide face of the session layer (see session.go):
// it owns the per-party sessions and their lifecycle. Window execution goes
// through the scheduler (scheduler.go), which runs up to
// Config.MaxInflightWindows windows concurrently.
//
// An engine does not necessarily own its heavyweight infrastructure: it
// *borrows* the transport bus and the crypto worker pool when a caller
// provides them (see Resources and NewEngineWith), which is how a coalition
// grid runs many engines over one bus and one bounded pool. The engine
// always holds its own reference on the pool and releases it on Close, so
// shared and solo lifecycles go through the same code path.
type Engine struct {
	cfg     Config
	bus     *transport.Bus
	network *netem.Network // nil unless Config.Network selects a topology
	workers *paillier.Workers
	parties []*Party
	agents  []market.Agent

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // one unit per window being executed
}

// ErrEngineClosed is returned for windows scheduled after Close.
var ErrEngineClosed = errors.New("core: engine closed")

// Resources are the shared infrastructure an engine can borrow instead of
// provisioning its own. Zero-value fields mean "own it": a nil Bus gives
// the engine a private in-memory bus, a nil Workers a private crypto pool.
type Resources struct {
	// Bus is the transport connecting this engine's parties. When shared by
	// several engines, each engine must have a distinct Config.Namespace
	// (enforced implicitly by party registration: rosters must be disjoint)
	// and registers only its own parties.
	Bus *transport.Bus
	// Workers is the bounded batch-crypto pool. The engine retains its own
	// reference and releases it on Close, so a caller sharing one pool
	// across engines keeps its reference alive independently.
	Workers *paillier.Workers
}

// NewEngine provisions keys and transport endpoints for the agents, owning
// all of its infrastructure — the solo-market configuration.
func NewEngine(cfg Config, agents []market.Agent) (*Engine, error) {
	return NewEngineWith(cfg, agents, Resources{})
}

// NewEngineWith provisions keys for the agents over the given shared
// resources. It is the constructor behind a coalition grid: many engines,
// one bus, one crypto pool, disjoint rosters and namespaces.
func NewEngineWith(cfg Config, agents []market.Agent, res Resources) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(agents) < 2 {
		return nil, errors.New("core: need at least two agents")
	}
	seen := make(map[string]bool, len(agents))
	for _, a := range agents {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if seen[a.ID] {
			return nil, fmt.Errorf("core: duplicate agent ID %q", a.ID)
		}
		seen[a.ID] = true
	}

	bus := res.Bus
	if bus == nil {
		bus = transport.NewBus(nil)
	}
	e := &Engine{
		cfg:    cfg,
		bus:    bus,
		agents: append([]market.Agent(nil), agents...),
	}

	// Network emulation: every endpoint of this engine is wrapped in the
	// virtual-clock layer. The network is engine-owned even over a shared
	// bus — its state is keyed by this engine's tag scope, so sibling
	// coalitions never interact — and it records virtual latency and round
	// counts into the bus's metrics sink next to the byte accounting.
	if cfg.Network != "" {
		topo, err := netem.Preset(cfg.Network)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		var netSeed int64
		if cfg.Seed != nil {
			netSeed = *cfg.Seed
		}
		e.network, err = netem.New(topo, netSeed, bus.Metrics())
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	// One crypto worker pool for the whole fleet: key generation,
	// intra-window parallel decryption and batch scalar multiplication all
	// run across it, so total CPU parallelism stays bounded by the pool
	// size. A borrowed pool is additionally shared with sibling engines —
	// many coalitions provisioning at once still generate keys at the
	// pool's pace, not len(agents)×coalitions goroutines. The engine's own
	// reference is dropped by Close.
	if res.Workers != nil {
		e.workers = res.Workers.Retain()
	} else {
		e.workers = paillier.NewWorkers(cfg.CryptoWorkers)
	}

	// Key generation (each agent generates its own key pair in Protocol 1
	// line 2), parallelized across agents through the shared pool.
	keys := make([]*paillier.PrivateKey, len(agents))
	keyErr := make([]error, len(agents))
	var wg sync.WaitGroup
	for i := range agents {
		i := i
		e.workers.Go(&wg, func() {
			keys[i], keyErr[i] = paillier.GenerateKey(partyRandom(cfg, agents[i].ID, "keygen"), cfg.KeyBits)
		})
	}
	wg.Wait()
	for i, err := range keyErr {
		if err != nil {
			e.workers.Release()
			return nil, fmt.Errorf("core: keygen for %s: %w", agents[i].ID, err)
		}
	}

	dir := make(map[string]*paillier.PublicKey, len(agents))
	for i, a := range agents {
		dir[a.ID] = &keys[i].PublicKey
	}

	// Hybrid backend: provision the pairwise masking seeds. The engine
	// already generates every party's private key (Protocol 1 line 2 run
	// centrally), so central seed provisioning adds no trust the deployment
	// model doesn't assume; a multi-process deployment would derive the
	// seeds from a pairwise DH handshake instead (see standalone.go).
	seeds, err := maskSeedMatrix(cfg, agents)
	if err != nil {
		e.workers.Release()
		return nil, err
	}

	e.parties = make([]*Party, len(agents))
	for i, a := range agents {
		conn, err := bus.Register(a.ID)
		if err != nil {
			e.releaseParties()
			return nil, err
		}
		if e.network != nil {
			conn = e.network.Wrap(conn)
		}
		e.parties[i] = newParty(cfg, a, conn, keys[i], dir, e.workers, seeds[a.ID])
	}
	return e, nil
}

// maskSeedMatrix draws one 32-byte seed per unordered party pair for the
// hybrid backend's PRF masks, returning each party's peer->seed view.
// Under the paillier backend it returns nil: no masking phase exists.
// Seeds come from partyRandom, so a seeded engine derives deterministic
// masks and an unseeded one uses crypto/rand.
func maskSeedMatrix(cfg Config, agents []market.Agent) (map[string]map[string][]byte, error) {
	if cfg.CryptoBackend != BackendHybrid {
		return nil, nil
	}
	ids := make([]string, len(agents))
	for i, a := range agents {
		ids[i] = a.ID
	}
	sort.Strings(ids)
	seeds := make(map[string]map[string][]byte, len(ids))
	for _, id := range ids {
		seeds[id] = make(map[string][]byte, len(ids)-1)
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			var s [32]byte
			if _, err := io.ReadFull(partyRandom(cfg, a+"\x00"+b, "maskseed"), s[:]); err != nil {
				return nil, fmt.Errorf("core: mask seed for (%s, %s): %w", a, b, err)
			}
			seeds[a][b] = s[:]
			seeds[b][a] = s[:]
		}
	}
	return seeds, nil
}

// releaseParties unwinds a partially-constructed or closing engine: it
// deregisters the engine's endpoints from the (possibly shared) bus, stops
// the pre-encryption pools and drops the engine's worker-pool reference.
func (e *Engine) releaseParties() {
	for _, p := range e.parties {
		if p == nil {
			continue
		}
		p.closePools()
		p.conn.Close()
	}
	e.workers.Release()
}

// partyRandom derives a per-party randomness source: crypto/rand in
// production, or a seeded PRNG stream when Config.Seed is set.
func partyRandom(cfg Config, id, domain string) io.Reader {
	if cfg.Seed == nil {
		return rand.Reader
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("pem/%s/%d/%s", domain, *cfg.Seed, id)))
	return seededPRNG(int64(binary.BigEndian.Uint64(h[:8])))
}

// prngFree recycles the seeded per-window PRNG streams. A math/rand source
// carries a multi-kilobyte state array; re-seeding a recycled one is
// bit-identical to mrand.New(mrand.NewSource(n)) (Seed resets both the
// source state and the Read position), so a steady-state window pays no
// PRNG allocation. Long-lived streams (key generation, nonce pools) simply
// never return to the pool.
var prngFree = sync.Pool{New: func() any { return mrand.New(mrand.NewSource(0)) }}

// seededPRNG returns a pooled deterministic stream re-seeded to n.
func seededPRNG(n int64) *mrand.Rand {
	r := prngFree.Get().(*mrand.Rand)
	r.Seed(n)
	return r
}

// releasePRNG returns a window's seeded stream to the pool once its run is
// done; crypto/rand readers pass through. The caller must not retain the
// reader afterwards.
func releasePRNG(r io.Reader) {
	if m, ok := r.(*mrand.Rand); ok {
		prngFree.Put(m)
	}
}

// Metrics exposes the transport byte counters (Table I).
func (e *Engine) Metrics() *transport.Metrics { return e.bus.Metrics() }

// PoolStats aggregates the pre-encryption pool health counters across the
// fleet, so harnesses can detect a degraded pool (misses piling up,
// workers stuck retrying randomness failures).
func (e *Engine) PoolStats() paillier.PoolStats {
	var agg paillier.PoolStats
	for _, p := range e.parties {
		st := p.PoolStats()
		agg.Ready += st.Ready
		agg.Target += st.Target
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.IdleRefills += st.IdleRefills
		agg.Retries += st.Retries
	}
	return agg
}

// Parties returns the party handles (tests use this for fault injection).
func (e *Engine) Parties() []*Party { return e.parties }

// KeyFingerprint identifies one party's provisioned Paillier key material
// by public data only: the SHA-256 of its public modulus. Fingerprints are
// what the durability layer records per (epoch, coalition) — enough to
// audit that every epoch re-keyed to fresh material, while the private
// keys never leave their parties.
type KeyFingerprint struct {
	// Party is the key holder's agent ID.
	Party string
	// Digest is the SHA-256 of the party's public modulus bytes.
	Digest [32]byte
}

// KeyFingerprints returns the engine's provisioned key fingerprints,
// sorted by party ID. A seeded engine's fingerprints are deterministic;
// two epochs of the same coalition never share one (re-keying is real —
// see the live-grid re-key tests).
func (e *Engine) KeyFingerprints() []KeyFingerprint {
	out := make([]KeyFingerprint, len(e.parties))
	for i, p := range e.parties {
		out[i] = KeyFingerprint{Party: p.agent.ID, Digest: sha256.Sum256(p.key.N.Bytes())}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Party < out[j].Party })
	return out
}

// beginWindow registers one window execution with the session lifecycle.
// It fails once Close has been called, so a closing engine stops admitting
// new windows while the ones already in flight drain.
func (e *Engine) beginWindow() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.inflight.Add(1)
	return nil
}

func (e *Engine) endWindow() { e.inflight.Done() }

// Close shuts the session layer down: it stops admitting new windows,
// drains the ones in flight (their parties keep their nonce pools until
// they finish), and only then releases the pre-encryption pools, the
// engine's transport endpoints (deregistering them from a shared bus) and
// its reference on the crypto worker pool. Close is idempotent and safe to
// call concurrently with running windows.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.inflight.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.inflight.Wait()
	e.releaseParties()
}

// WindowResult is the public outcome of one trading window, as observed by
// the experiment harness.
type WindowResult struct {
	// Window is the trading-window number.
	Window int
	// Kind is the evaluated market regime.
	Kind market.Kind
	// Price is the effective trading price in cents/kWh (the grid retail
	// price in seller-less windows).
	Price float64
	// PHat is the unclamped Eq. 13 price (0 when Private Pricing did not
	// run). In a real deployment only the chosen buyer sees it.
	PHat float64
	// Trades are the pairwise allocations routed in Private Distribution.
	Trades []market.Trade
	// Degenerate marks windows with an empty coalition (no protocols run).
	Degenerate bool
	// SellerCount is the seller-coalition size (Fig 4).
	SellerCount int
	// BuyerCount is the buyer-coalition size (Fig 4).
	BuyerCount int
	// Duration is the wall-clock time of the window.
	Duration time.Duration
	// BytesOnWire is the transport traffic generated by the window.
	BytesOnWire int64
	// Messages is the number of protocol messages the window put on the
	// wire, across all parties.
	Messages int64
	// VirtualLatency is the window's critical-path latency on the emulated
	// network (Config.Network): the longest chain of link delays any party
	// waited out, measured on the virtual clock. Zero on unemulated runs.
	VirtualLatency time.Duration
	// Rounds is the window's protocol round count on the emulated network:
	// the longest chain of sequentially dependent messages. Zero on
	// unemulated runs.
	Rounds int
}

// runOne executes Protocol 1 for one window: it hands each party its
// private input and runs all parties concurrently until the window's
// trades complete. The derived context cancels only this window's parties,
// so a failure here never disturbs other windows in flight.
func (e *Engine) runOne(ctx context.Context, window int, inputs []market.WindowInput) (*WindowResult, error) {
	if len(inputs) != len(e.parties) {
		return nil, fmt.Errorf("core: %d inputs for %d parties", len(inputs), len(e.parties))
	}
	startBytes := e.bus.Metrics().ScopedWindowBytes(e.cfg.Namespace, window)
	startMsgs := e.bus.Metrics().ScopedWindowMessages(e.cfg.Namespace, window)
	start := time.Now()
	if e.cfg.CompactWindowMetrics {
		// Fold the window's per-window transport counters into their scope
		// aggregates once the WindowResult below has captured them (the
		// deferred fold fires after the reads), failed windows included:
		// the shared sink stays bounded by the windows in flight.
		defer e.bus.Metrics().FoldWindow(e.cfg.Namespace, window)
	}
	if e.network != nil {
		// Drop the window's virtual-clock state once it completes (stats are
		// read before the deferred release fires), failed windows included:
		// netem memory stays bounded by the windows in flight.
		defer e.network.ReleaseWindow(e.cfg.Namespace, window)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	reports := make([]*partyReport, len(e.parties))
	errs := make([]error, len(e.parties))
	var wg sync.WaitGroup
	for i, p := range e.parties {
		wg.Add(1)
		go func(i int, p *Party) {
			defer wg.Done()
			rep, err := p.runWindow(ctx, window, inputs[i])
			if err != nil {
				errs[i] = fmt.Errorf("party %s: %w", p.ID(), err)
				cancel() // unblock peers waiting on this party
				return
			}
			reports[i] = rep
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &WindowResult{
		Window:      window,
		Duration:    time.Since(start),
		BytesOnWire: e.bus.Metrics().ScopedWindowBytes(e.cfg.Namespace, window) - startBytes,
		Messages:    e.bus.Metrics().ScopedWindowMessages(e.cfg.Namespace, window) - startMsgs,
	}
	if e.network != nil {
		// Read the window's virtual maxima from the live lanes; the
		// deferred release (above) then drops them, so the result reflects
		// only this run even if a caller reuses the window number later.
		// (The metrics sink keeps the recorded maxima for scope-level
		// aggregation, with WindowBytes' re-run caveat.)
		res.VirtualLatency, res.Rounds = e.network.WindowStats(e.cfg.Namespace, window)
	}
	// All parties observed the same public outcome; adopt the first
	// report and cross-check the rest.
	first := reports[0]
	res.Kind = first.kind
	res.Price = first.price
	res.Degenerate = first.degenerate
	res.SellerCount = first.sellerCount
	res.BuyerCount = first.buyerCount
	for _, rep := range reports {
		if rep.kind != first.kind || rep.degenerate != first.degenerate {
			return nil, errors.New("core: parties disagree on market outcome")
		}
		if diff := rep.price - first.price; diff > 1e-9 || diff < -1e-9 {
			return nil, errors.New("core: parties disagree on price")
		}
		if rep.pHat != 0 {
			res.PHat = rep.pHat
		}
		res.Trades = append(res.Trades, rep.sellerTrades...)
	}
	sort.Slice(res.Trades, func(i, j int) bool {
		if res.Trades[i].Seller != res.Trades[j].Seller {
			return res.Trades[i].Seller < res.Trades[j].Seller
		}
		return res.Trades[i].Buyer < res.Trades[j].Buyer
	})
	return res, nil
}

// partyReport is what one party learned from a window (public info only,
// except its own trades).
type partyReport struct {
	kind        market.Kind
	price       float64
	pHat        float64
	degenerate  bool
	sellerCount int
	buyerCount  int
	// sellerTrades holds the trades this party initiated as a seller
	// (general market) — collected so the harness sees each trade once.
	sellerTrades []market.Trade
}
