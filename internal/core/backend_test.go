package core

import (
	"fmt"
	mrand "math/rand"
	"strings"
	"testing"

	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/transport"
)

// assertSameOutcome checks that two backends produced bit-identical public
// outcomes: kind, price (exact — both quantize through the same fixed-point
// wire format) and the full trade list.
func assertSameOutcome(t *testing.T, label string, a, b *WindowResult) {
	t.Helper()
	if a.Kind != b.Kind {
		t.Fatalf("%s: kind %v vs %v", label, a.Kind, b.Kind)
	}
	if a.Price != b.Price {
		t.Fatalf("%s: price %v vs %v", label, a.Price, b.Price)
	}
	if a.Degenerate != b.Degenerate {
		t.Fatalf("%s: degenerate %v vs %v", label, a.Degenerate, b.Degenerate)
	}
	if len(a.Trades) != len(b.Trades) {
		t.Fatalf("%s: %d vs %d trades", label, len(a.Trades), len(b.Trades))
	}
	for i := range a.Trades {
		if a.Trades[i] != b.Trades[i] {
			t.Fatalf("%s: trade %d: %+v vs %+v", label, i, a.Trades[i], b.Trades[i])
		}
	}
}

// TestHybridMatchesPaillierAndPlaintext is the core-level backend
// equivalence check: for both aggregation topologies and both market
// regimes, the hybrid backend's outcome must be bit-identical to the
// paillier backend's and match the plaintext oracle.
func TestHybridMatchesPaillierAndPlaintext(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		inputs func(n int) []market.WindowInput
	}{
		{"general", 6, windowInputsMixed},
		{"extreme", 5, func(n int) []market.WindowInput {
			inputs := make([]market.WindowInput, n)
			for i := range inputs {
				if i < n-1 {
					inputs[i] = market.WindowInput{Generation: 0.40, Load: 0.05}
				} else {
					inputs[i] = market.WindowInput{Generation: 0.00, Load: 0.15}
				}
			}
			return inputs
		}},
	}
	for _, agg := range []string{AggregationRing, AggregationTree} {
		for _, tc := range cases {
			t.Run(agg+"/"+tc.name, func(t *testing.T) {
				agents := testAgents(tc.n)
				inputs := tc.inputs(tc.n)
				cfg := testConfig(900)
				cfg.Aggregation = agg
				pai := runOneWindow(t, cfg, agents, inputs)

				cfg.CryptoBackend = BackendHybrid
				hyb := runOneWindow(t, cfg, agents, inputs)

				assertSameOutcome(t, agg+"/"+tc.name, pai, hyb)
				assertMatchesPlaintext(t, hyb, agents, inputs)
			})
		}
	}
}

// TestHybridRandomizedMatchesPaillier fuzzes fleets and inputs across both
// backends; outcomes must stay bit-identical in every regime the random
// draw lands in (general, extreme, degenerate).
func TestHybridRandomizedMatchesPaillier(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: many protocol rounds")
	}
	rng := mrand.New(mrand.NewSource(777))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(5)
		agents := make([]market.Agent, n)
		inputs := make([]market.WindowInput, n)
		for i := range agents {
			agents[i] = market.Agent{
				ID:      fmt.Sprintf("h%d-%d", trial, i),
				K:       60 + rng.Float64()*60,
				Epsilon: 0.6 + rng.Float64()*0.3,
			}
			inputs[i] = market.WindowInput{
				Generation: rng.Float64() * 0.4,
				Load:       rng.Float64() * 0.4,
				Battery:    (rng.Float64() - 0.5) * 0.05,
			}
		}
		cfg := testConfig(int64(7000 + trial))
		if trial%2 == 1 {
			cfg.Aggregation = AggregationTree
		}
		pai := runOneWindow(t, cfg, agents, inputs)
		cfg.CryptoBackend = BackendHybrid
		hyb := runOneWindow(t, cfg, agents, inputs)
		assertSameOutcome(t, fmt.Sprintf("trial %d", trial), pai, hyb)
		if !hyb.Degenerate {
			assertMatchesPlaintext(t, hyb, agents, inputs)
		}
	}
}

// TestHybridFixedWidthFrames asserts the hybrid wire discipline: every
// masked-fold frame has a width independent of the carried values, so two
// runs with different inputs generate identical byte accounting.
func TestHybridFixedWidthFrames(t *testing.T) {
	run := func(seed int64, inputs []market.WindowInput) int64 {
		agents := testAgents(len(inputs))
		cfg := testConfig(seed)
		cfg.CryptoBackend = BackendHybrid
		res := runOneWindow(t, cfg, agents, inputs)
		if res.Degenerate {
			t.Fatal("unexpected degenerate window")
		}
		return res.BytesOnWire
	}
	a := run(31, windowInputsMixed(6))
	// Same coalition structure, different magnitudes.
	inputs := windowInputsMixed(6)
	for i := range inputs {
		inputs[i].Generation *= 0.7
		inputs[i].Load *= 0.7
	}
	b := run(31, inputs)
	if a != b {
		t.Fatalf("byte accounting depends on values: %d vs %d", a, b)
	}
}

func TestConfigValidatesCryptoBackend(t *testing.T) {
	cfg := testConfig(1).withDefaults()
	if cfg.CryptoBackend != BackendPaillier {
		t.Fatalf("default backend = %q, want %q", cfg.CryptoBackend, BackendPaillier)
	}
	cfg.CryptoBackend = "rot13"
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "crypto backend") {
		t.Fatalf("want crypto-backend validation error, got %v", err)
	}
}

func TestStandaloneRejectsHybrid(t *testing.T) {
	bus := transport.NewBus(nil)
	conn, err := bus.Register("solo")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	cfg.CryptoBackend = BackendHybrid
	if _, err := NewStandaloneParty(cfg, market.Agent{ID: "solo", K: 80, Epsilon: 0.8}, conn); err == nil {
		t.Fatal("want error: hybrid backend has no standalone mask-seed provisioning")
	}
}
