package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/secchan"
	"github.com/pem-go/pem/internal/transport"
)

// TestStandalonePartiesOverTCP runs a full private window across four
// standalone parties communicating via real TCP sockets wrapped in secure
// channels — the cmd/pem-agent deployment shape.
func TestStandalonePartiesOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: TCP + full protocol")
	}
	agents := []market.Agent{
		{ID: "house-a", K: 85, Epsilon: 0.9},
		{ID: "house-b", K: 70, Epsilon: 0.8},
		{ID: "house-c", K: 95, Epsilon: 0.85},
		{ID: "house-d", K: 80, Epsilon: 0.9},
	}
	inputs := []market.WindowInput{
		{Generation: 0.35, Load: 0.10}, // seller
		{Generation: 0.00, Load: 0.25}, // buyer
		{Generation: 0.00, Load: 0.20}, // buyer
		{Generation: 0.30, Load: 0.12}, // seller
	}

	// Transport: one TCP node per agent plus secure channels.
	dir := secchan.NewDirectory()
	nodes := make([]*transport.TCPNode, len(agents))
	ids := make([]*secchan.Identity, len(agents))
	for i, a := range agents {
		node, err := transport.ListenTCP(a.ID, "127.0.0.1:0", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		id, err := secchan.NewIdentity(nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		dir.Register(a.ID, id.PublicKey())
	}
	for i := range nodes {
		for j := range nodes {
			if i != j {
				nodes[i].SetPeer(agents[j].ID, nodes[j].Addr())
			}
		}
	}

	peerIDs := make([]string, len(agents))
	for i, a := range agents {
		peerIDs[i] = a.ID
	}

	seed := int64(42)
	cfg := testConfig(seed)

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	outcomes := make([]*PartyOutcome, len(agents))
	errs := make([]error, len(agents))
	var wg sync.WaitGroup
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a market.Agent) {
			defer wg.Done()
			conn := secchan.New(nodes[i], ids[i], dir)
			party, err := NewStandaloneParty(cfg, a, conn)
			if err != nil {
				errs[i] = err
				return
			}
			if err := party.ExchangeKeys(ctx, peerIDs); err != nil {
				errs[i] = err
				return
			}
			outcomes[i], errs[i] = party.RunTradingWindow(ctx, 0, inputs[i])
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("party %s: %v", agents[i].ID, err)
		}
	}

	// All parties agree on the public outcome...
	for i := 1; i < len(outcomes); i++ {
		if outcomes[i].Kind != outcomes[0].Kind {
			t.Fatalf("kind disagreement: %v vs %v", outcomes[i].Kind, outcomes[0].Kind)
		}
		if math.Abs(outcomes[i].Price-outcomes[0].Price) > 1e-9 {
			t.Fatalf("price disagreement")
		}
	}
	// ...and it matches the plaintext reference.
	ref, err := market.Clear(agents, inputs, market.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].Kind != ref.Kind {
		t.Fatalf("kind %v, want %v", outcomes[0].Kind, ref.Kind)
	}
	if math.Abs(outcomes[0].Price-ref.Price) > 1e-4 {
		t.Fatalf("price %v, want %v", outcomes[0].Price, ref.Price)
	}
	var gotTrades int
	for _, o := range outcomes {
		gotTrades += len(o.Trades)
	}
	if gotTrades != len(ref.Trades) {
		t.Fatalf("trades %d, want %d", gotTrades, len(ref.Trades))
	}
}

func TestStandaloneValidation(t *testing.T) {
	bus := transport.NewBus(nil)
	conn := bus.MustRegister("x")
	cfg := testConfig(1)

	if _, err := NewStandaloneParty(cfg, market.Agent{ID: "x", K: 10, Epsilon: 0.5}, nil); err == nil {
		t.Error("nil conn accepted")
	}
	if _, err := NewStandaloneParty(cfg, market.Agent{ID: "y", K: 10, Epsilon: 0.5}, conn); err == nil {
		t.Error("mismatched transport party accepted")
	}
	p, err := NewStandaloneParty(cfg, market.Agent{ID: "x", K: 10, Epsilon: 0.5}, conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunTradingWindow(context.Background(), 0, market.WindowInput{}); err == nil {
		t.Error("window without key exchange accepted")
	}
}
