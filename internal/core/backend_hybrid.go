package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"

	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/transport"
)

// hybridBackend replaces the Paillier phases that never need a decryption
// by one specific party's key with information-theoretic additive masking:
//
//   - the Protocol 2 sum rounds and the fused Protocol 3 pair pass fold
//     uint64 shares masked by pairwise PRF masks shared with the sink, along
//     exactly the same ring/tree message pattern as the Paillier fold (same
//     senders, same receivers, same message count — only the frame shrinks
//     from a fixed-width ciphertext to a fixed 8- or 16-byte word);
//   - the Rb/Rs decision becomes a masked compare: Hr2 hands its
//     nonce-masked total to Hr1, who compares and broadcasts the one-bit
//     outcome (leaking Rb−Rs = E_b−E_s to Hr1 — the designed trade-off
//     documented in DESIGN.md §12);
//   - Protocol 4 is inherited unchanged from the embedded paillierBackend:
//     its ratio step fundamentally requires one party (Hs) to decrypt
//     values others computed, which masking cannot express.
//
// Masks are derived per (pair, tag) with SHA-256 over the engine-provisioned
// pairwise seed and the scoped window tag, so every window, phase and
// coalition namespace gets independent masks and the netem byte accounting
// of two identically-configured runs stays identical. Arithmetic is mod
// 2^64; sums are decoded as two's-complement int64, which covers every
// protocol total by the same margin as the fixed-point encoding itself.
type hybridBackend struct {
	paillierBackend
}

var _ cryptoBackend = (*hybridBackend)(nil)

func (*hybridBackend) name() string { return BackendHybrid }

// maskWords derives this party's two mask words for a (peer, tag) pair from
// the engine-provisioned pairwise seed. Both endpoints of the pair derive
// identical words; anyone else sees uniformly random shares. The hash input
// seed||tag is assembled in the run's recycled buffer and digested with
// sha256.Sum256 — byte-identical to the streaming-hash formulation, without
// its per-call state allocation.
func (r *windowRun) maskWords(peer, tag string) (uint64, uint64, error) {
	seed, ok := r.maskSeeds[peer]
	if !ok {
		return 0, 0, fmt.Errorf("hybrid: no mask seed for %s (backend requires engine provisioning)", peer)
	}
	b := append(r.hashBuf[:0], seed...)
	b = append(b, tag...)
	r.hashBuf = b
	s := sha256.Sum256(b)
	return binary.BigEndian.Uint64(s[:8]), binary.BigEndian.Uint64(s[8:16]), nil
}

// int64Word bounds a fixed-point contribution to the int64 range and maps
// it onto the mod-2^64 share domain.
func int64Word(v *big.Int, what string) (uint64, error) {
	if !v.IsInt64() {
		return 0, fmt.Errorf("hybrid: %s out of range: %s", what, v)
	}
	return uint64(v.Int64()), nil
}

// maskedShare is a running partial sum of one or two mod-2^64 words (one
// for the Protocol 2 sums, two for the fused Protocol 3 pair).
type maskedShare [2]uint64

func (s maskedShare) add(o maskedShare) maskedShare {
	return maskedShare{s[0] + o[0], s[1] + o[1]}
}

// encodeShare writes the first `words` words as a fixed-width frame: the
// frame size depends only on the phase, never on the values, preserving
// exact netem byte accounting. The frame is pooled — the caller owns it and
// recycles it with transport.PutFrame once sent.
func encodeShare(s maskedShare, words int) []byte {
	out := transport.GetFrame(8 * words)
	for i := 0; i < words; i++ {
		binary.BigEndian.PutUint64(out[8*i:], s[i])
	}
	return out
}

func decodeShare(raw []byte, words int, tag string) (maskedShare, error) {
	var s maskedShare
	if len(raw) != 8*words {
		return s, fmt.Errorf("hybrid %s: bad share frame (%d bytes)", tag, len(raw))
	}
	for i := 0; i < words; i++ {
		s[i] = binary.BigEndian.Uint64(raw[8*i:])
	}
	return s, nil
}

// maskedFold is the member side of a hybrid aggregation: fold this party's
// masked share into the running sum along the configured topology — the
// same message pattern as the Paillier aggregate/foldTree pair in rings.go,
// with sink as the final receiver in both topologies.
func (r *windowRun) maskedFold(ctx context.Context, order []string, sink, tag string, words int, share maskedShare) error {
	pos := -1
	for i, id := range order {
		if id == r.ID() {
			pos = i
			break
		}
	}
	if pos == -1 {
		return fmt.Errorf("hybrid: party %s not in fold %s", r.ID(), tag)
	}

	if r.cfg.Aggregation == AggregationTree {
		return r.maskedFoldTree(ctx, order, pos, sink, tag, words, share)
	}

	acc := share
	if pos > 0 {
		raw, err := r.conn.Recv(ctx, order[pos-1], tag)
		if err != nil {
			return fmt.Errorf("hybrid ring %s: recv: %w", tag, err)
		}
		in, err := decodeShare(raw, words, tag)
		transport.PutFrame(raw)
		if err != nil {
			return err
		}
		acc = acc.add(in)
	}
	next := sink
	if pos+1 < len(order) {
		next = order[pos+1]
	}
	out := encodeShare(acc, words)
	err := r.conn.Send(ctx, next, tag, out)
	transport.PutFrame(out)
	if err != nil {
		return fmt.Errorf("hybrid ring %s: send: %w", tag, err)
	}
	return nil
}

// maskedFoldTree mirrors foldTree's binary reduction strides; the surviving
// member 0 forwards the total to the sink.
func (r *windowRun) maskedFoldTree(ctx context.Context, order []string, pos int, sink, tag string, words int, share maskedShare) error {
	n := len(order)
	acc := share
	for stride := 1; stride < n; stride *= 2 {
		if pos%(2*stride) == stride {
			out := encodeShare(acc, words)
			err := r.conn.Send(ctx, order[pos-stride], tag, out)
			transport.PutFrame(out)
			if err != nil {
				return fmt.Errorf("hybrid tree %s: send: %w", tag, err)
			}
			return nil
		}
		partner := pos + stride
		if partner >= n {
			continue
		}
		raw, err := r.conn.Recv(ctx, order[partner], tag)
		if err != nil {
			return fmt.Errorf("hybrid tree %s: recv: %w", tag, err)
		}
		in, err := decodeShare(raw, words, tag)
		transport.PutFrame(raw)
		if err != nil {
			return err
		}
		acc = acc.add(in)
	}
	out := encodeShare(acc, words)
	err := r.conn.Send(ctx, sink, tag, out)
	transport.PutFrame(out)
	if err != nil {
		return fmt.Errorf("hybrid tree %s: send: %w", tag, err)
	}
	return nil
}

// maskedCollect is the sink side: receive the folded total from the
// topology's root and strip every member's pairwise masks.
func (r *windowRun) maskedCollect(ctx context.Context, order []string, tag string, words int) (maskedShare, error) {
	var total maskedShare
	if len(order) == 0 {
		return total, fmt.Errorf("hybrid %s: empty member set", tag)
	}
	raw, err := r.conn.Recv(ctx, r.aggregationRoot(order), tag)
	if err != nil {
		return total, fmt.Errorf("hybrid %s: recv final: %w", tag, err)
	}
	total, err = decodeShare(raw, words, tag)
	transport.PutFrame(raw)
	if err != nil {
		return total, err
	}
	for _, id := range order {
		m0, m1, err := r.maskWords(id, tag)
		if err != nil {
			return total, err
		}
		total[0] -= m0
		total[1] -= m1
	}
	return total, nil
}

func (*hybridBackend) aggregateSum(ctx context.Context, r *windowRun, order []string, sink, tag string, contribution *big.Int) error {
	w, err := int64Word(contribution, "contribution")
	if err != nil {
		return err
	}
	m0, m1, err := r.maskWords(sink, tag)
	if err != nil {
		return err
	}
	return r.maskedFold(ctx, order, sink, tag, 1, maskedShare{w + m0, m1})
}

func (*hybridBackend) collectSum(ctx context.Context, r *windowRun, order []string, tag string) (*big.Int, error) {
	total, err := r.maskedCollect(ctx, order, tag, 1)
	if err != nil {
		return nil, err
	}
	return big.NewInt(int64(total[0])), nil
}

// compareTotals is the masked compare: Hr2 hands its nonce-masked total Rs
// to Hr1, who decides general iff Rb > Rs and broadcasts the one-bit
// outcome to everyone (Hr2 included — unlike the garbled-circuit path it
// does not learn the bit as a protocol by-product).
func (*hybridBackend) compareTotals(ctx context.Context, r *windowRun, masked uint64) (market.Kind, error) {
	ros := r.ros
	cmpTag := r.tag("pme/cmp")
	kindTag := r.tag("pme/kind")

	switch r.ID() {
	case ros.hr1:
		raw, err := r.conn.Recv(ctx, ros.hr2, cmpTag)
		if err != nil {
			return 0, fmt.Errorf("masked comparison: %w", err)
		}
		rs, err := decodeShare(raw, 1, cmpTag)
		transport.PutFrame(raw)
		if err != nil {
			return 0, err
		}
		kind := market.ExtremeMarket
		if masked > rs[0] {
			kind = market.GeneralMarket
		}
		msg := [1]byte{byte(kind)}
		if err := r.broadcast(ctx, ros.all, kindTag, msg[:]); err != nil {
			return 0, err
		}
		return kind, nil

	default:
		if r.ID() == ros.hr2 {
			out := encodeShare(maskedShare{masked}, 1)
			err := r.conn.Send(ctx, ros.hr1, cmpTag, out)
			transport.PutFrame(out)
			if err != nil {
				return 0, fmt.Errorf("masked comparison: %w", err)
			}
		}
		raw, err := r.conn.Recv(ctx, ros.hr1, kindTag)
		if err != nil {
			return 0, err
		}
		kind, err := parseKindByte(raw)
		transport.PutFrame(raw)
		return kind, err
	}
}

func (*hybridBackend) pricingFold(ctx context.Context, r *windowRun, tag string, k, term *big.Int) error {
	ros := r.ros
	kw, err := int64Word(k, "Σk contribution")
	if err != nil {
		return err
	}
	tw, err := int64Word(term, "price-term contribution")
	if err != nil {
		return err
	}
	m0, m1, err := r.maskWords(ros.hb, tag)
	if err != nil {
		return err
	}
	return r.maskedFold(ctx, ros.sellers, ros.hb, tag, 2, maskedShare{kw + m0, tw + m1})
}

func (*hybridBackend) collectPair(ctx context.Context, r *windowRun, tag string) (*big.Int, *big.Int, error) {
	total, err := r.maskedCollect(ctx, r.ros.sellers, tag, 2)
	if err != nil {
		return nil, nil, err
	}
	return big.NewInt(int64(total[0])), big.NewInt(int64(total[1])), nil
}
