package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/big"

	"github.com/pem-go/pem/internal/fixed"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/transport"
)

// privatePricing is Protocol 3: in a general market, a hash-chosen buyer Hb
// aggregates two seller sums under its own key — Σ k_i and
// Σ (g_i + 1 + ε_i·b_i − b_i) — computes the Stackelberg price p̂ (Eq. 13),
// clamps it to [pl, ph] (Eq. 14) and broadcasts p*.
//
// The two aggregates are the protocol's designed leakage (Lemma 3): Hb
// learns the sums but no individual seller's parameters.
//
// The two ring passes of the paper (lines 2–5 and line 6) are fused into a
// single pass carrying both running ciphertexts, halving latency without
// changing what any party sees.
func (r *windowRun) privatePricing(ctx context.Context) (price, pHat float64, err error) {
	ros := r.ros
	tagRing := r.tag("pp/ring")
	tagPrice := r.tag("pp/price")

	if r.ID() == ros.hb {
		return r.pricingAsHb(ctx, tagRing, tagPrice)
	}

	if r.role == market.RoleSeller {
		// Contribution: k_i (fixed) and the Eq. 13 denominator term.
		kFixed, err := fixed.FromFloat(r.agent.K)
		if err != nil {
			return 0, 0, fmt.Errorf("k out of range: %w", err)
		}
		term := market.SellerParams{
			K:       r.agent.K,
			Epsilon: r.agent.Epsilon,
			Gen:     r.input.Generation,
			Battery: r.input.Battery,
		}.PriceTerm()
		termFixed, err := fixed.FromFloat(term)
		if err != nil {
			return 0, 0, fmt.Errorf("price term out of range: %w", err)
		}
		k := r.contribBuf[0].SetInt64(int64(kFixed))
		t := r.contribBuf[1].SetInt64(int64(termFixed))
		if err := r.backend.pricingFold(ctx, r, tagRing, k, t); err != nil {
			return 0, 0, err
		}
	}

	// Everyone except Hb waits for the broadcast price pair (p*, p̂ is not
	// revealed — only the clamped price goes out; p̂ stays with Hb).
	raw, err := r.conn.Recv(ctx, ros.hb, tagPrice)
	if err != nil {
		return 0, 0, err
	}
	if len(raw) != 8 {
		return 0, 0, fmt.Errorf("bad price broadcast")
	}
	pv := fixed.Value(int64(binary.BigEndian.Uint64(raw)))
	transport.PutFrame(raw)
	price = pv.Float()
	if price < r.cfg.Params.PriceFloor-1e-9 || price > r.cfg.Params.PriceCeil+1e-9 {
		return 0, 0, fmt.Errorf("broadcast price %.4f outside [%v, %v]", price, r.cfg.Params.PriceFloor, r.cfg.Params.PriceCeil)
	}
	return price, 0, nil
}

// pricingRingStep folds this seller's two ciphertexts into the running
// pair and forwards it along the seller ring (sink: Hb).
func (r *windowRun) pricingRingStep(ctx context.Context, tag string, kContrib, termContrib *big.Int) error {
	ros := r.ros
	order := ros.sellers
	pos := -1
	for i, id := range order {
		if id == r.ID() {
			pos = i
			break
		}
	}
	if pos == -1 {
		return fmt.Errorf("seller %s not in pricing ring", r.ID())
	}

	encK, err := r.encryptUnder(ctx, ros.hb, kContrib)
	if err != nil {
		return fmt.Errorf("pricing: encrypt k: %w", err)
	}
	encT, err := r.encryptUnder(ctx, ros.hb, termContrib)
	if err != nil {
		return fmt.Errorf("pricing: encrypt term: %w", err)
	}

	accK, accT := encK, encT
	if pos > 0 {
		raw, err := r.conn.Recv(ctx, order[pos-1], tag)
		if err != nil {
			return fmt.Errorf("pricing ring recv: %w", err)
		}
		inK, inT, err := decodeCipherPair(raw)
		transport.PutFrame(raw)
		if err != nil {
			return err
		}
		pk := r.dir[ros.hb]
		if err := pk.AddInPlace(inK, encK); err != nil {
			return err
		}
		if err := pk.AddInPlace(inT, encT); err != nil {
			return err
		}
		accK, accT = inK, inT
	}

	next := ros.hb
	if pos+1 < len(order) {
		next = order[pos+1]
	}
	payload, err := encodeCipherPair(r.dir[ros.hb], accK, accT)
	if err != nil {
		return err
	}
	err = r.conn.Send(ctx, next, tag, payload)
	transport.PutFrame(payload)
	return err
}

// pricingAsHb is the chosen buyer's side: collect the pair aggregate via
// the backend, compute and broadcast the clamped price.
func (r *windowRun) pricingAsHb(ctx context.Context, tagRing, tagPrice string) (price, pHat float64, err error) {
	ros := r.ros
	sumKBig, sumTBig, err := r.backend.collectPair(ctx, r, tagRing)
	if err != nil {
		return 0, 0, err
	}
	sumK, err := fixed.FromBig(sumKBig)
	if err != nil {
		return 0, 0, fmt.Errorf("pricing: Σk overflow: %w", err)
	}
	sumT, err := fixed.FromBig(sumTBig)
	if err != nil {
		return 0, 0, fmt.Errorf("pricing: Σterm overflow: %w", err)
	}

	pHat, err = market.RawOptimalPrice(sumK.Float(), sumT.Float(), r.cfg.Params.GridRetailPrice)
	if err != nil {
		return 0, 0, fmt.Errorf("pricing: %w", err)
	}
	if math.IsNaN(pHat) {
		return 0, 0, fmt.Errorf("pricing: p̂ is NaN")
	}
	price = market.ClampPrice(pHat, r.cfg.Params.PriceFloor, r.cfg.Params.PriceCeil)

	pv, err := fixed.FromFloat(price)
	if err != nil {
		return 0, 0, err
	}
	var msg [8]byte
	binary.BigEndian.PutUint64(msg[:], uint64(int64(pv)))
	if err := r.broadcast(ctx, ros.all, tagPrice, msg[:]); err != nil {
		return 0, 0, err
	}
	// Adopt the quantized value that went on the wire so every party —
	// including this one — reports bit-identical prices.
	return pv.Float(), pHat, nil
}
