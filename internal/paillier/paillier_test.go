package paillier

import (
	"context"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// testRand returns a deterministic randomness source for repeatable tests.
func testRand(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}

// testKey generates a small (fast) key for unit tests.
func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	key, err := GenerateKey(testRand(1), 256)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return key
}

func TestGenerateKeyRejectsTinyModulus(t *testing.T) {
	if _, err := GenerateKey(testRand(1), 32); err == nil {
		t.Fatal("want error for 32-bit modulus")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := testKey(t)
	rng := testRand(2)
	for _, v := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40)} {
		c, err := key.EncryptInt64(rng, v)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", v, err)
		}
		got, err := key.DecryptInt64(c)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestCRTMatchesTextbookDecrypt(t *testing.T) {
	key := testKey(t)
	rng := testRand(3)
	for i := 0; i < 25; i++ {
		v := big.NewInt(rng.Int63() - (1 << 62))
		c, err := key.Encrypt(rng, v)
		if err != nil {
			t.Fatal(err)
		}
		crt, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		textbook, err := key.DecryptTextbook(c)
		if err != nil {
			t.Fatal(err)
		}
		if crt.Cmp(textbook) != 0 {
			t.Fatalf("CRT %s != textbook %s", crt, textbook)
		}
		if crt.Cmp(v) != 0 {
			t.Fatalf("decrypt %s != plaintext %s", crt, v)
		}
	}
}

func TestHomomorphicAddProperty(t *testing.T) {
	key := testKey(t)
	rng := testRand(4)
	if err := quick.Check(func(a, b int32) bool {
		ca, err := key.EncryptInt64(rng, int64(a))
		if err != nil {
			return false
		}
		cb, err := key.EncryptInt64(rng, int64(b))
		if err != nil {
			return false
		}
		sum, err := key.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := key.DecryptInt64(sum)
		return err == nil && got == int64(a)+int64(b)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHomomorphicScalarMulProperty(t *testing.T) {
	key := testKey(t)
	rng := testRand(5)
	if err := quick.Check(func(a int32, k int16) bool {
		ca, err := key.EncryptInt64(rng, int64(a))
		if err != nil {
			return false
		}
		ck, err := key.ScalarMul(ca, big.NewInt(int64(k)))
		if err != nil {
			return false
		}
		got, err := key.DecryptInt64(ck)
		return err == nil && got == int64(a)*int64(k)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddPlain(t *testing.T) {
	key := testKey(t)
	rng := testRand(6)
	c, err := key.EncryptInt64(rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := key.AddPlain(c, big.NewInt(-250))
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptInt64(c2)
	if err != nil {
		t.Fatal(err)
	}
	if got != -150 {
		t.Errorf("AddPlain: got %d, want -150", got)
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	key := testKey(t)
	rng := testRand(7)
	c, err := key.EncryptInt64(rng, 777)
	if err != nil {
		t.Fatal(err)
	}
	r, err := key.Rerandomize(rng, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.C.Cmp(c.C) == 0 {
		t.Error("Rerandomize returned an identical ciphertext")
	}
	got, err := key.DecryptInt64(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != 777 {
		t.Errorf("Rerandomize changed plaintext: %d", got)
	}
}

func TestSemanticSecuritySmokeTest(t *testing.T) {
	// Two encryptions of the same value must differ (probabilistic
	// encryption).
	key := testKey(t)
	rng := testRand(8)
	c1, _ := key.EncryptInt64(rng, 5)
	c2, _ := key.EncryptInt64(rng, 5)
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("two encryptions of 5 are identical")
	}
}

func TestSignedEncoding(t *testing.T) {
	key := testKey(t)
	max := key.MaxSigned()
	almostMax := new(big.Int).Sub(max, big.NewInt(1))
	for _, v := range []*big.Int{almostMax, new(big.Int).Neg(almostMax)} {
		enc, err := key.EncodeSigned(v)
		if err != nil {
			t.Fatalf("EncodeSigned(%s): %v", v, err)
		}
		dec := key.DecodeSigned(enc)
		if dec.Cmp(v) != 0 {
			t.Errorf("signed round trip %s -> %s", v, dec)
		}
	}
	if _, err := key.EncodeSigned(max); err == nil {
		t.Error("EncodeSigned(n/2): want ErrMessageTooLarge")
	}
}

func TestMessageTooLarge(t *testing.T) {
	key := testKey(t)
	tooBig := new(big.Int).Set(key.N)
	if _, err := key.Encrypt(testRand(9), tooBig); err == nil {
		t.Error("Encrypt(n): want error")
	}
}

func TestInvalidCiphertexts(t *testing.T) {
	key := testKey(t)
	bad := []*Ciphertext{
		nil,
		{C: nil},
		{C: big.NewInt(0)},
		{C: new(big.Int).Set(key.N2)},
		{C: new(big.Int).Neg(big.NewInt(5))},
	}
	for i, c := range bad {
		if _, err := key.Decrypt(c); err == nil {
			t.Errorf("case %d: Decrypt accepted invalid ciphertext", i)
		}
	}
}

func TestEncryptWithFactorMatchesEncrypt(t *testing.T) {
	key := testKey(t)
	rng := testRand(10)
	f, err := key.BlindingFactor(rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := key.EncryptWithFactor(big.NewInt(-31337), f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptInt64(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != -31337 {
		t.Errorf("EncryptWithFactor round trip: got %d", got)
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	key := testKey(t)
	data, err := key.PublicKey.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if pk.N.Cmp(key.N) != 0 || pk.N2.Cmp(key.N2) != 0 {
		t.Error("public key did not round trip")
	}
	// A ciphertext produced under the decoded key must decrypt correctly.
	c, err := pk.EncryptInt64(testRand(11), 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptInt64(c)
	if err != nil || got != 99 {
		t.Errorf("cross-key decrypt: %d, %v", got, err)
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	key := testKey(t)
	data, err := key.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var sk PrivateKey
	if err := sk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	c, err := key.EncryptInt64(testRand(12), 4242)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptInt64(c)
	if err != nil || got != 4242 {
		t.Errorf("restored key decrypt: %d, %v", got, err)
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	key := testKey(t)
	c, err := key.EncryptInt64(testRand(13), 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c2 Ciphertext
	if err := c2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if c2.C.Cmp(c.C) != 0 {
		t.Error("ciphertext did not round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var pk PublicKey
	if err := pk.UnmarshalBinary(nil); err == nil {
		t.Error("UnmarshalBinary(nil): want error")
	}
	if err := pk.UnmarshalBinary([]byte{0, 0, 0, 9, 1}); err == nil {
		t.Error("UnmarshalBinary(truncated): want error")
	}
	var c Ciphertext
	if err := c.UnmarshalBinary([]byte{0, 0}); err == nil {
		t.Error("ciphertext UnmarshalBinary(short): want error")
	}
}

func TestNoncePool(t *testing.T) {
	key := testKey(t)
	pool := NewNoncePool(&key.PublicKey, PoolConfig{Target: 4, Workers: 2, Random: testRand(14)})
	defer pool.Close()

	ctx := context.Background()
	for i := 0; i < 10; i++ {
		f, err := pool.Take(ctx)
		if err != nil {
			t.Fatalf("Take %d: %v", i, err)
		}
		c, err := key.EncryptWithFactor(big.NewInt(int64(i)), f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := key.DecryptInt64(c)
		if err != nil || got != int64(i) {
			t.Fatalf("pool factor %d: decrypt got %d, %v", i, got, err)
		}
	}
}

func TestNoncePoolCanceledContext(t *testing.T) {
	key := testKey(t)
	pool := NewNoncePool(&key.PublicKey, PoolConfig{Target: 1, Workers: 1, Random: testRand(15)})
	// Drain and cancel: inline path must respect ctx.
	pool.Close()
	for pool.Len() > 0 {
		if _, err := pool.Take(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.Take(ctx); err == nil {
		t.Error("Take with canceled ctx on empty pool: want error")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	for _, bits := range []int{512, 1024, 2048} {
		key, err := GenerateKey(testRand(20), bits)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName(bits), func(b *testing.B) {
			rng := testRand(21)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := key.EncryptInt64(rng, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncryptWithFactor(b *testing.B) {
	key, err := GenerateKey(testRand(22), 2048)
	if err != nil {
		b.Fatal(err)
	}
	f, err := key.BlindingFactor(testRand(23))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.EncryptWithFactor(big.NewInt(int64(i)), f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptCRT(b *testing.B) {
	key, err := GenerateKey(testRand(24), 2048)
	if err != nil {
		b.Fatal(err)
	}
	c, err := key.EncryptInt64(testRand(25), 123456)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptTextbook(b *testing.B) {
	key, err := GenerateKey(testRand(24), 2048)
	if err != nil {
		b.Fatal(err)
	}
	c, err := key.EncryptInt64(testRand(25), 123456)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.DecryptTextbook(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(bits int) string {
	switch bits {
	case 512:
		return "512bit"
	case 1024:
		return "1024bit"
	default:
		return "2048bit"
	}
}
