package paillier

import (
	"fmt"
	"math/big"
	"testing"
)

func TestExpWindowedMatchesBigExp(t *testing.T) {
	rng := testRand(11)
	mod := new(big.Int).Lsh(big.NewInt(1), 512)
	mod.Add(mod, big.NewInt(12345)) // non-power-of-two modulus
	for _, bits := range []int{1, 2, 3, 4, 5, 8, 15, 16, 17, 31, 47, 48, 49, 63, 64, 65, 128} {
		for i := 0; i < 20; i++ {
			base := new(big.Int).Rand(rng, mod)
			exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
			got := expWindowed(base, exp, mod)
			want := new(big.Int).Exp(base, exp, mod)
			if got.Cmp(want) != 0 {
				t.Fatalf("expWindowed(%v, %v) = %v, want %v", base, exp, got, want)
			}
		}
	}
}

func TestExpWindowedEdgeCases(t *testing.T) {
	mod := big.NewInt(1_000_003)
	cases := []struct{ base, exp, want int64 }{
		{0, 0, 1},
		{7, 0, 1},
		{7, 1, 7},
		{7, 2, 49},
		{0, 5, 0},
		{1, 1 << 30, 1},
		{2, 19, 1 << 19},
	}
	for _, c := range cases {
		got := expWindowed(big.NewInt(c.base), big.NewInt(c.exp), mod)
		if got.Int64() != c.want {
			t.Errorf("expWindowed(%d, %d) = %v, want %d", c.base, c.exp, got, c.want)
		}
	}
	// Base larger than the modulus must be reduced first.
	got := expWindowed(big.NewInt(1_000_003+5), big.NewInt(3), mod)
	if want := new(big.Int).Exp(big.NewInt(5), big.NewInt(3), mod); got.Cmp(want) != 0 {
		t.Errorf("unreduced base: got %v want %v", got, want)
	}
}

func TestScalarMulFastPaths(t *testing.T) {
	key := testKey(t)
	rng := testRand(12)
	c, err := key.EncryptInt64(rng, 1234)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("zero", func(t *testing.T) {
		out, err := key.ScalarMul(c, big.NewInt(0))
		if err != nil {
			t.Fatal(err)
		}
		if out.C.Cmp(big.NewInt(1)) != 0 {
			t.Errorf("E(m)^0 = %v, want 1", out.C)
		}
		if m, err := key.DecryptInt64(out); err != nil || m != 0 {
			t.Errorf("decrypt(E(m)^0) = %d, %v; want 0", m, err)
		}
	})
	t.Run("one", func(t *testing.T) {
		out, err := key.ScalarMul(c, big.NewInt(1))
		if err != nil {
			t.Fatal(err)
		}
		if out.C.Cmp(c.C) != 0 {
			t.Error("E(m)^1 should preserve the ciphertext value")
		}
		if out.C == c.C {
			t.Error("E(m)^1 must not alias the input ciphertext")
		}
		if m, err := key.DecryptInt64(out); err != nil || m != 1234 {
			t.Errorf("decrypt = %d, %v; want 1234", m, err)
		}
	})
	t.Run("minus-one", func(t *testing.T) {
		out, err := key.ScalarMul(c, big.NewInt(-1))
		if err != nil {
			t.Fatal(err)
		}
		if m, err := key.DecryptInt64(out); err != nil || m != -1234 {
			t.Errorf("decrypt = %d, %v; want -1234", m, err)
		}
	})
	// Boundary scalars around the fast-path cutoffs and the windowed/big.Exp
	// threshold, checked against the plaintext product.
	for _, k := range []int64{2, -2, 3, 15, 16, 17, -17, 1 << 20, -(1 << 20)} {
		out, err := key.ScalarMul(c, big.NewInt(k))
		if err != nil {
			t.Fatalf("ScalarMul(%d): %v", k, err)
		}
		m, err := key.DecryptInt64(out)
		if err != nil {
			t.Fatalf("Decrypt after ScalarMul(%d): %v", k, err)
		}
		if m != 1234*k {
			t.Errorf("ScalarMul(%d) decrypts to %d, want %d", k, m, 1234*k)
		}
	}
	// A scalar above smallExpBits exercises the big.Exp fallback; verify via
	// homomorphism on an encryption of 1.
	cOne, err := key.EncryptInt64(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 70)
	out, err := key.ScalarMul(cOne, huge)
	if err != nil {
		t.Fatal(err)
	}
	m, err := key.Decrypt(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cmp(huge) != 0 {
		t.Errorf("ScalarMul(2^70) decrypts to %v, want 2^70", m)
	}
}

// BenchmarkExpWindowed tracks the 2^k-ary ladder against math/big's Exp
// across the exponent sizes Protocol 4 produces; modExp's routing decision
// (currently: always big.Exp) is based on this comparison.
func BenchmarkExpWindowed(b *testing.B) {
	key := testKey(b)
	rng := testRand(14)
	base := new(big.Int).Rand(rng, key.N2)
	for _, bits := range []int{8, 24, 40, 64} {
		exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		exp.SetBit(exp, bits-1, 1)
		name := fmt.Sprintf("%dbit", bits)
		b.Run("ladder-"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = expWindowed(base, exp, key.N2)
			}
		})
		b.Run("bigexp-"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = new(big.Int).Exp(base, exp, key.N2)
			}
		})
	}
}

func BenchmarkScalarMulSmallExponent(b *testing.B) {
	key := testKey(b)
	rng := testRand(13)
	c, err := key.EncryptInt64(rng, 42)
	if err != nil {
		b.Fatal(err)
	}
	k := big.NewInt(976562500) // a typical ~30-bit Protocol 4 reciprocal
	b.Run("windowed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.ScalarMul(c, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bigexp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = new(big.Int).Exp(c.C, k, key.N2)
		}
	})
}
