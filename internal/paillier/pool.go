package paillier

import (
	"context"
	"crypto/rand"
	"io"
	"math/big"
	"sync"
	"sync/atomic"
	"time"
)

// NoncePool pre-computes Paillier blinding factors r^n mod n² in background
// workers so that encryptions on the protocol's critical path reduce to two
// modular multiplications. This implements the paper's observation
// (Section VII-B) that "encryption and decryption are independently executed
// in parallel during idle time", which is why runtime in Fig. 5(b) is
// insensitive to the key size.
//
// Refill runs in the background whenever the stock is below target — at
// construction, after every Take, and continuously between windows — so idle
// CPU is converted into ready factors rather than waiting for demand. With
// PoolConfig.Shared set, the individual exponentiations are dispatched
// across the shared Workers pool, letting many parties' pools refill in
// parallel under one process-wide concurrency cap.
//
// The pool degrades gracefully: if drained, Take computes a factor inline.
type NoncePool struct {
	pk     *PublicKey
	shared *Workers // optional refill executor (retained until Close)

	randMu sync.Mutex
	random io.Reader

	mu      sync.Mutex
	factors []*big.Int // LIFO of precomputed factors

	refill chan struct{}
	stop   chan struct{}
	done   chan struct{}
	target int

	closeOnce sync.Once

	// Health counters (see Stats).
	hits        atomic.Uint64
	misses      atomic.Uint64
	retries     atomic.Uint64
	idleRefills atomic.Uint64
}

// PoolStats is a snapshot of a pool's health counters. A growing Misses
// count with Ready stuck at zero means encryptions are paying the full
// exponentiation inline — the degradation the paper's idle-time
// pre-computation is meant to avoid; Retries counts transient randomness
// read failures the workers recovered from.
type PoolStats struct {
	// Ready is the number of precomputed factors currently available.
	Ready int
	// Target is the fill level the pool tries to maintain; Ready/Target is
	// the cache fill ratio.
	Target int
	// Hits counts Take calls served from the precomputed stock.
	Hits uint64
	// Misses counts Take calls that fell back to inline computation.
	Misses uint64
	// IdleRefills counts factors computed by the background refill path
	// (as opposed to inline on a miss).
	IdleRefills uint64
	// Retries counts worker randomness-read failures that were retried.
	Retries uint64
}

// PoolConfig configures a NoncePool.
type PoolConfig struct {
	// Target is the number of factors the pool tries to keep ready.
	Target int
	// Workers is the number of background goroutines. Defaults to 1.
	Workers int
	// Shared, when non-nil, is a Workers pool the background refill
	// dispatches its exponentiations to, so refill parallelism is governed
	// by the process-wide crypto cap instead of this pool's private worker
	// count. The pool retains a reference until Close.
	Shared *Workers
	// Random overrides the randomness source (defaults to crypto/rand).
	Random io.Reader
}

// NewNoncePool starts a pool for pk. Call Close to stop the workers.
func NewNoncePool(pk *PublicKey, cfg PoolConfig) *NoncePool {
	if cfg.Target <= 0 {
		cfg.Target = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	random := cfg.Random
	if random == nil {
		random = rand.Reader
	}
	p := &NoncePool{
		pk:     pk,
		shared: cfg.Shared.Retain(),
		random: random,
		refill: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		target: cfg.Target,
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	go func() {
		wg.Wait()
		close(p.done)
	}()
	p.kick()
	return p
}

func (p *NoncePool) kick() {
	select {
	case p.refill <- struct{}{}:
	default:
	}
}

// deficit reports how many factors are missing from the target stock.
func (p *NoncePool) deficit() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target - len(p.factors)
}

// put appends a background-computed factor, unless the pool stopped while it
// was being computed (late factors are dropped so Close leaves nothing
// behind).
func (p *NoncePool) put(f *big.Int) {
	select {
	case <-p.stop:
		f.SetInt64(0)
		return
	default:
	}
	p.mu.Lock()
	p.factors = append(p.factors, f)
	p.mu.Unlock()
	p.idleRefills.Add(1)
}

func (p *NoncePool) worker() {
	var delay time.Duration // current retry backoff; reset on success
	for {
		select {
		case <-p.stop:
			return
		case <-p.refill:
		}
		for p.deficit() > 0 {
			select {
			case <-p.stop:
				return
			default:
			}
			if p.shared != nil {
				if !p.refillShared() {
					if !p.backoff(&delay) {
						return
					}
					continue
				}
				delay = 0
				continue
			}
			f, err := p.pk.BlindingFactor(p.lockedRandom())
			if err != nil {
				// Transient randomness failure: back off and retry rather
				// than silently degrading the pool to inline computation
				// for the rest of the session.
				p.retries.Add(1)
				if !p.backoff(&delay) {
					return
				}
				continue
			}
			delay = 0
			p.put(f)
		}
	}
}

// refillShared dispatches the current deficit across the shared Workers
// pool and waits for the batch; it reports whether any factor was produced
// (false means every draw failed and the caller should back off).
func (p *NoncePool) refillShared() bool {
	n := p.deficit()
	if n <= 0 {
		return true
	}
	var wg sync.WaitGroup
	var produced atomic.Uint64
	for i := 0; i < n; i++ {
		p.shared.Go(&wg, func() {
			f, err := p.pk.BlindingFactor(p.lockedRandom())
			if err != nil {
				p.retries.Add(1)
				return
			}
			p.put(f)
			produced.Add(1)
		})
	}
	wg.Wait()
	return produced.Load() > 0
}

// Backoff bounds for worker randomness-read retries.
const (
	backoffMin = time.Millisecond
	backoffMax = time.Second
)

// backoff sleeps for the current retry delay (doubling it up to backoffMax
// for the next failure) and reports false if the pool was stopped while
// waiting.
func (p *NoncePool) backoff(delay *time.Duration) bool {
	if *delay == 0 {
		*delay = backoffMin
	}
	t := time.NewTimer(*delay)
	defer t.Stop()
	if *delay < backoffMax {
		*delay *= 2
	}
	select {
	case <-p.stop:
		return false
	case <-t.C:
		return true
	}
}

// lockedRandom serializes access to the randomness source across workers.
func (p *NoncePool) lockedRandom() io.Reader {
	return &lockedReader{mu: &p.randMu, r: p.random}
}

type lockedReader struct {
	mu *sync.Mutex
	r  io.Reader
}

var _ io.Reader = (*lockedReader)(nil)

func (l *lockedReader) Read(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(b)
}

// Take returns a precomputed blinding factor, or computes one inline if the
// pool is empty (respecting ctx for cancellation of the inline path).
func (p *NoncePool) Take(ctx context.Context) (*big.Int, error) {
	p.mu.Lock()
	if n := len(p.factors); n > 0 {
		f := p.factors[n-1]
		p.factors = p.factors[:n-1]
		p.mu.Unlock()
		p.hits.Add(1)
		p.kick()
		return f, nil
	}
	p.mu.Unlock()
	p.misses.Add(1)
	p.kick()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.pk.BlindingFactor(p.lockedRandom())
}

// Stats returns a snapshot of the pool's health counters.
func (p *NoncePool) Stats() PoolStats {
	p.mu.Lock()
	ready := len(p.factors)
	p.mu.Unlock()
	return PoolStats{
		Ready:       ready,
		Target:      p.target,
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		IdleRefills: p.idleRefills.Load(),
		Retries:     p.retries.Load(),
	}
}

// Len reports the number of ready factors (for tests and metrics).
func (p *NoncePool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.factors)
}

// Close stops the background workers, waits for them to exit, zeroes and
// drops the precomputed factors (they are key-specific secrets-adjacent
// material with no further use), and releases the shared Workers reference.
// Close is idempotent.
func (p *NoncePool) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
	p.closeOnce.Do(func() {
		p.mu.Lock()
		for _, f := range p.factors {
			f.SetInt64(0)
		}
		p.factors = nil
		p.mu.Unlock()
		p.shared.Release()
		p.shared = nil
	})
}
