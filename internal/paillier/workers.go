package paillier

import (
	"errors"
	"math/big"
	"runtime"
	"sync"
)

// Workers is a shared bounded worker pool for CPU-heavy Paillier batch
// operations (decryption and ciphertext exponentiation). One pool is shared
// by every party of an engine — and by every window in flight — so the
// total crypto parallelism of a process is capped at the pool size no
// matter how many protocol instances run concurrently.
//
// The pool is a pure concurrency limiter: it owns no goroutines of its own,
// so it needs no Close and an idle pool costs nothing. A nil *Workers is
// valid and means "no parallelism": batch operations run inline on the
// caller's goroutine, which keeps single-threaded deployments free of any
// scheduling overhead.
type Workers struct {
	sem chan struct{}
}

// NewWorkers creates a pool admitting up to n concurrent operations.
// n <= 0 selects runtime.NumCPU().
func NewWorkers(n int) *Workers {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Workers{sem: make(chan struct{}, n)}
}

// Size reports the concurrency bound.
func (w *Workers) Size() int {
	if w == nil {
		return 1
	}
	return cap(w.sem)
}

// Go runs f on its own goroutine once a worker slot is free, releasing the
// slot when f returns. wg is incremented before launch and decremented when
// f completes, so callers can wg.Wait() for a whole batch. A nil pool runs
// f synchronously.
func (w *Workers) Go(wg *sync.WaitGroup, f func()) {
	if w == nil {
		f()
		return
	}
	wg.Add(1)
	w.sem <- struct{}{}
	go func() {
		defer func() {
			<-w.sem
			wg.Done()
		}()
		f()
	}()
}

// runBatch executes f(i) for i in [0, n) across the pool, returning the
// first error by index (deterministic regardless of completion order).
func (w *Workers) runBatch(n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if w == nil || cap(w.sem) == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		w.Go(&wg, func() { errs[i] = f(i) })
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DecryptBatch decrypts each ciphertext concurrently across the pool and
// returns the signed plaintexts in input order. It fails on the first
// (lowest-index) invalid ciphertext. A nil pool decrypts sequentially.
func (sk *PrivateKey) DecryptBatch(w *Workers, cts []*Ciphertext) ([]*big.Int, error) {
	out := make([]*big.Int, len(cts))
	err := w.runBatch(len(cts), func(i int) error {
		m, err := sk.Decrypt(cts[i])
		if err != nil {
			return err
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScalarMulBatch computes E(k_i·m_i) for each (ciphertext, scalar) pair
// concurrently across the pool, in input order. len(ks) must equal
// len(cts). A nil pool computes sequentially.
func (pk *PublicKey) ScalarMulBatch(w *Workers, cts []*Ciphertext, ks []*big.Int) ([]*Ciphertext, error) {
	if len(cts) != len(ks) {
		return nil, errors.New("paillier: scalar batch length mismatch")
	}
	out := make([]*Ciphertext, len(cts))
	err := w.runBatch(len(cts), func(i int) error {
		c, err := pk.ScalarMul(cts[i], ks[i])
		if err != nil {
			return err
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
