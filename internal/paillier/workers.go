package paillier

import (
	"errors"
	"math/big"
	"runtime"
	"sync"
)

// Workers is a shared bounded worker pool for CPU-heavy Paillier batch
// operations (decryption and ciphertext exponentiation). One pool is shared
// by every party of an engine — and, when several engines run over shared
// infrastructure (a coalition grid), by every engine — so the total crypto
// parallelism of a process is capped at the pool size no matter how many
// protocol instances run concurrently.
//
// The pool is a pure concurrency limiter: it owns no goroutines of its own,
// and an idle pool costs nothing. A nil *Workers is valid and means "no
// parallelism": batch operations run inline on the caller's goroutine,
// which keeps single-threaded deployments free of any scheduling overhead.
//
// Ownership is explicit and reference-counted. NewWorkers hands the caller
// the first reference; every additional owner (e.g. each engine borrowing a
// grid-wide pool) must Retain before use and Release when done. Releasing
// the last reference retires the pool; scheduling work on a retired pool,
// releasing past zero, or retaining a retired pool panics — these are
// lifecycle bugs of the same severity as a sync.WaitGroup misuse, and a
// loud failure beats silently sharing a pool some owner thinks is dead.
type Workers struct {
	sem chan struct{}

	mu      sync.Mutex
	refs    int
	retired bool
}

// NewWorkers creates a pool admitting up to n concurrent operations, owned
// by the caller (reference count 1). n <= 0 selects runtime.NumCPU().
func NewWorkers(n int) *Workers {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Workers{sem: make(chan struct{}, n), refs: 1}
}

// Retain registers an additional owner and returns the pool for chaining.
// A nil pool is returned unchanged (the no-parallelism pool has no
// lifecycle). Retaining a retired pool panics.
func (w *Workers) Retain() *Workers {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.retired {
		panic("paillier: Retain of retired Workers pool")
	}
	w.refs++
	return w
}

// Release drops one owner's reference; the last Release retires the pool.
// Callers must have drained their in-flight batch operations first (engines
// do: Close waits for in-flight windows before releasing). Releasing a nil
// pool is a no-op; releasing past zero panics.
func (w *Workers) Release() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.retired {
		panic("paillier: Release of retired Workers pool")
	}
	w.refs--
	if w.refs == 0 {
		w.retired = true
	}
}

// Refs reports the current number of owners (0 once retired). A nil pool
// reports 0.
func (w *Workers) Refs() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.refs
}

// checkLive panics if the pool has been retired; called on the scheduling
// paths so use-after-release surfaces at the bug, not as a silent slowdown.
func (w *Workers) checkLive() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.retired {
		panic("paillier: use of retired Workers pool")
	}
}

// Size reports the concurrency bound.
func (w *Workers) Size() int {
	if w == nil {
		return 1
	}
	return cap(w.sem)
}

// Go runs f on its own goroutine once a worker slot is free, releasing the
// slot when f returns. wg is incremented before launch and decremented when
// f completes, so callers can wg.Wait() for a whole batch. A nil pool runs
// f synchronously.
func (w *Workers) Go(wg *sync.WaitGroup, f func()) {
	if w == nil {
		f()
		return
	}
	w.checkLive()
	wg.Add(1)
	w.sem <- struct{}{}
	go func() {
		defer func() {
			<-w.sem
			wg.Done()
		}()
		f()
	}()
}

// runBatch executes f(i) for i in [0, n) across the pool, returning the
// first error by index (deterministic regardless of completion order).
func (w *Workers) runBatch(n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if w != nil {
		w.checkLive()
	}
	if w == nil || cap(w.sem) == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		w.Go(&wg, func() { errs[i] = f(i) })
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DecryptBatch decrypts each ciphertext concurrently across the pool and
// returns the signed plaintexts in input order. It fails on the first
// (lowest-index) invalid ciphertext. A nil pool decrypts sequentially.
func (sk *PrivateKey) DecryptBatch(w *Workers, cts []*Ciphertext) ([]*big.Int, error) {
	out := make([]*big.Int, len(cts))
	err := w.runBatch(len(cts), func(i int) error {
		s := GetScratch()
		defer s.Put()
		m, err := sk.DecryptScratch(s, cts[i])
		if err != nil {
			return err
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScalarMulBatch computes E(k_i·m_i) for each (ciphertext, scalar) pair
// concurrently across the pool, in input order. len(ks) must equal
// len(cts). A nil pool computes sequentially.
func (pk *PublicKey) ScalarMulBatch(w *Workers, cts []*Ciphertext, ks []*big.Int) ([]*Ciphertext, error) {
	if len(cts) != len(ks) {
		return nil, errors.New("paillier: scalar batch length mismatch")
	}
	out := make([]*Ciphertext, len(cts))
	err := w.runBatch(len(cts), func(i int) error {
		c, err := pk.ScalarMul(cts[i], ks[i])
		if err != nil {
			return err
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
