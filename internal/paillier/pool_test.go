package paillier

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// waitForFill polls until the pool reports at least n ready factors.
func waitForFill(t *testing.T, p *NoncePool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached %d ready factors (have %d)", n, p.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNoncePoolSharedWorkersRefill(t *testing.T) {
	key := testKey(t)
	w := NewWorkers(4)
	defer w.Release()

	p := NewNoncePool(&key.PublicKey, PoolConfig{Target: 8, Shared: w, Random: testRand(21)})
	waitForFill(t, p, 8)

	// Drain the stock; the background refill must restore it without any
	// further Take traffic (idle-time refill, not on-demand).
	for i := 0; i < 8; i++ {
		if _, err := p.Take(context.Background()); err != nil {
			t.Fatalf("Take: %v", err)
		}
	}
	waitForFill(t, p, 8)

	st := p.Stats()
	if st.Target != 8 {
		t.Errorf("Stats.Target = %d, want 8", st.Target)
	}
	if st.IdleRefills < 16 {
		t.Errorf("Stats.IdleRefills = %d, want >= 16 (initial fill + refill)", st.IdleRefills)
	}
	if st.Hits != 8 {
		t.Errorf("Stats.Hits = %d, want 8", st.Hits)
	}

	p.Close()
	if got := p.Len(); got != 0 {
		t.Errorf("Len after Close = %d, want 0 (factors drained)", got)
	}
	// The pool must have dropped its shared-workers reference: ours is the
	// only one left.
	if got := w.Refs(); got != 1 {
		t.Errorf("workers refs after pool Close = %d, want 1", got)
	}
}

func TestNoncePoolCloseIdempotent(t *testing.T) {
	key := testKey(t)
	w := NewWorkers(2)
	defer w.Release()
	p := NewNoncePool(&key.PublicKey, PoolConfig{Target: 2, Shared: w, Random: testRand(22)})
	waitForFill(t, p, 2)
	p.Close()
	p.Close() // second Close must not double-release the shared pool
	if got := w.Refs(); got != 1 {
		t.Errorf("workers refs after double Close = %d, want 1", got)
	}
}

// TestNoncePoolGoroutineLeak is the regression test for background workers
// outliving Close: every goroutine a pool starts must be gone once Close
// returns.
func TestNoncePoolGoroutineLeak(t *testing.T) {
	key := testKey(t)
	w := NewWorkers(4)
	defer w.Release()

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		p := NewNoncePool(&key.PublicKey, PoolConfig{Target: 4, Workers: 2, Shared: w, Random: testRand(int64(23 + i))})
		waitForFill(t, p, 1)
		if _, err := p.Take(context.Background()); err != nil {
			t.Fatalf("Take: %v", err)
		}
		p.Close()
	}
	// Give any stray goroutine scheduling slack before counting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
