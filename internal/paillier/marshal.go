package paillier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Wire format: every big.Int is encoded as a uint32 big-endian length
// followed by the magnitude bytes (values are always non-negative on the
// wire). Keys and ciphertexts use this shared primitive.

func appendBig(dst []byte, x *big.Int) []byte {
	b := x.Bytes()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	dst = append(dst, lenBuf[:]...)
	return append(dst, b...)
}

func readBig(src []byte) (*big.Int, []byte, error) {
	if len(src) < 4 {
		return nil, nil, errors.New("paillier: truncated length prefix")
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	if uint32(len(src)) < n {
		return nil, nil, errors.New("paillier: truncated big.Int body")
	}
	return new(big.Int).SetBytes(src[:n]), src[n:], nil
}

// MarshalBinary encodes the public key (just n; n² is recomputed).
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	if pk.N == nil {
		return nil, errors.New("paillier: nil public key")
	}
	return appendBig(nil, pk.N), nil
}

// UnmarshalBinary decodes a public key produced by MarshalBinary.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	n, rest, err := readBig(data)
	if err != nil {
		return fmt.Errorf("decode public key: %w", err)
	}
	if len(rest) != 0 {
		return errors.New("paillier: trailing bytes after public key")
	}
	if n.BitLen() < 8 {
		return errors.New("paillier: implausibly small modulus")
	}
	pk.N = n
	pk.N2 = new(big.Int).Mul(n, n)
	return nil
}

// MarshalBinary encodes the ciphertext value.
func (c *Ciphertext) MarshalBinary() ([]byte, error) {
	if c.C == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	return appendBig(nil, c.C), nil
}

// MarshalFixed encodes the ciphertext like MarshalBinary but left-pads the
// magnitude to pk's canonical ciphertext width — the byte length of n² —
// so every ciphertext under one key has the same wire size. Protocol code
// uses it for on-the-wire ciphertexts: constant-size frames close the
// (harmless but noisy) magnitude-length channel and make byte accounting —
// and the network emulation's serialization pricing — independent of which
// pre-computed blinding factor an encryption happened to draw.
// UnmarshalBinary decodes both forms identically.
func (c *Ciphertext) MarshalFixed(pk *PublicKey) ([]byte, error) {
	return c.AppendFixed(nil, pk)
}

// AppendFixed appends the MarshalFixed encoding to dst and returns the
// extended slice — the allocation-lean form of MarshalFixed: the wire
// encoders pass a pooled frame buffer (see transport.GetFrame) sized with
// FixedLen so steady-state serialization allocates nothing. dst may be nil.
func (c *Ciphertext) AppendFixed(dst []byte, pk *PublicKey) ([]byte, error) {
	if c.C == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	if pk == nil || pk.N2 == nil {
		return nil, errors.New("paillier: nil public key")
	}
	width := (pk.N2.BitLen() + 7) / 8
	if c.C.Sign() < 0 || (c.C.BitLen()+7)/8 > width {
		return nil, errors.New("paillier: ciphertext wider than the key's modulus")
	}
	off := len(dst)
	need := 4 + width
	if cap(dst)-off >= need {
		dst = dst[:off+need]
	} else {
		grown := make([]byte, off+need)
		copy(grown, dst)
		dst = grown
	}
	binary.BigEndian.PutUint32(dst[off:], uint32(width))
	c.C.FillBytes(dst[off+4 : off+need])
	return dst, nil
}

// FixedLen returns the exact encoded size of one AppendFixed/MarshalFixed
// ciphertext under this key: the 4-byte width prefix plus the byte length
// of n². Wire encoders use it to size pooled frame buffers.
func (pk *PublicKey) FixedLen() int {
	return 4 + (pk.N2.BitLen()+7)/8
}

// UnmarshalBinary decodes a ciphertext produced by MarshalBinary,
// MarshalFixed or AppendFixed. A non-nil c.C is reused in place (its
// storage absorbs the decoded value), so a fold loop that decodes into the
// same Ciphertext every hop stops allocating once the integer has grown to
// ciphertext width.
func (c *Ciphertext) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return errors.New("decode ciphertext: paillier: truncated length prefix")
	}
	n := binary.BigEndian.Uint32(data)
	body := data[4:]
	if uint32(len(body)) < n {
		return errors.New("decode ciphertext: paillier: truncated big.Int body")
	}
	if uint32(len(body)) != n {
		return errors.New("paillier: trailing bytes after ciphertext")
	}
	if c.C == nil {
		c.C = new(big.Int)
	}
	c.C.SetBytes(body)
	return nil
}

// MarshalBinary encodes the private key (p and q; everything else is
// recomputed). Intended for checkpointing agents to disk, never the wire.
func (sk *PrivateKey) MarshalBinary() ([]byte, error) {
	if sk.p == nil || sk.q == nil {
		return nil, errors.New("paillier: nil private key")
	}
	return appendBig(appendBig(nil, sk.p), sk.q), nil
}

// UnmarshalBinary decodes a private key produced by MarshalBinary.
func (sk *PrivateKey) UnmarshalBinary(data []byte) error {
	p, rest, err := readBig(data)
	if err != nil {
		return fmt.Errorf("decode private key p: %w", err)
	}
	q, rest, err := readBig(rest)
	if err != nil {
		return fmt.Errorf("decode private key q: %w", err)
	}
	if len(rest) != 0 {
		return errors.New("paillier: trailing bytes after private key")
	}
	key, err := newPrivateKey(p, q)
	if err != nil {
		return err
	}
	*sk = *key
	return nil
}
