package paillier

import "math/big"

// smallExpBits is the exponent bit-length regime the 2^k-ary ladder below
// targets: Protocol 4's reciprocal scalars round(S/|sn|) are ~20–40 bits,
// far below the modulus size that dominates Paillier's other
// exponentiations.
const smallExpBits = 64

// modExp computes base^exp mod m for non-negative exp.
//
// This is the decision point for the ScalarMul hot loop. A 2^k-ary windowed
// ladder with adaptively sized tables (expWindowed) was implemented for the
// small-exponent regime on the expectation that math/big's fixed per-call
// setup — a 16-entry power table plus Montgomery-form conversions — would
// dominate short scalars. Measurement says otherwise: math/big's Exp is
// itself a 4-bit windowed method whose word-level Montgomery (odd moduli)
// and fused reductions beat any ladder built on public big.Int Mul/Mod at
// every exponent size, because each ladder step pays a full long division
// for the reduction. BenchmarkScalarMulSmallExponent and
// BenchmarkExpWindowed keep that comparison honest in CI logs; until the
// ladder wins somewhere, modExp delegates unconditionally.
func modExp(base, exp, m *big.Int) *big.Int {
	return new(big.Int).Exp(base, exp, m)
}

// expWindowBits picks the 2^k-ary window size for an exponent of the given
// bit length: the table costs 2^k - 2 multiplications up front, so short
// exponents get narrow windows.
func expWindowBits(bits int) int {
	switch {
	case bits <= 4:
		return 1
	case bits <= 16:
		return 2
	case bits <= 48:
		return 3
	default:
		return 4
	}
}

// expWindowed is a left-to-right 2^k-ary modular exponentiation for
// non-negative exponents, the measured alternative behind modExp's routing
// decision (see there). Correctness does not depend on the exponent size.
func expWindowed(base, exp, m *big.Int) *big.Int {
	bits := exp.BitLen()
	if bits == 0 {
		return big.NewInt(1)
	}
	b := new(big.Int).Mod(base, m)
	if bits == 1 {
		return b
	}
	k := expWindowBits(bits)

	// table[i] = base^i mod m for i in [0, 2^k).
	table := make([]*big.Int, 1<<uint(k))
	table[0] = big.NewInt(1)
	table[1] = b
	for i := 2; i < len(table); i++ {
		table[i] = new(big.Int).Mul(table[i-1], b)
		table[i].Mod(table[i], m)
	}

	out := big.NewInt(1)
	started := false
	for w := (bits + k - 1) / k; w > 0; w-- {
		if started {
			for i := 0; i < k; i++ {
				out.Mul(out, out)
				out.Mod(out, m)
			}
		}
		digit := 0
		for i := k - 1; i >= 0; i-- {
			digit = digit<<1 | int(exp.Bit((w-1)*k+i))
		}
		if digit != 0 {
			out.Mul(out, table[digit])
			out.Mod(out, m)
			started = true
		}
	}
	return out
}
