package paillier

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
)

// TestSignedEncodingBoundaries pins the edges of the signed embedding:
// values with |v| < n/2 round-trip, |v| = n/2 (and beyond) must be
// rejected — the strict inequality is what makes the encoding injective.
func TestSignedEncodingBoundaries(t *testing.T) {
	key := testKey(t)
	pk := &key.PublicKey
	half := pk.MaxSigned() // floor(n/2); n is odd, so |v| <= half-1 is legal

	maxPos := new(big.Int).Sub(half, big.NewInt(1))
	maxNeg := new(big.Int).Neg(maxPos)
	for _, v := range []*big.Int{maxPos, maxNeg, big.NewInt(0), big.NewInt(1), big.NewInt(-1)} {
		m, err := pk.EncodeSigned(v)
		if err != nil {
			t.Fatalf("EncodeSigned(%v): %v", v, err)
		}
		if back := pk.DecodeSigned(m); back.Cmp(v) != 0 {
			t.Fatalf("round trip %v -> %v", v, back)
		}
		// The boundary values must also survive actual encryption.
		ct, err := pk.Encrypt(testRand(11), v)
		if err != nil {
			t.Fatalf("Encrypt(%v): %v", v, err)
		}
		got, err := key.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(v) != 0 {
			t.Fatalf("decrypt(%v) = %v", v, got)
		}
	}

	for _, v := range []*big.Int{
		half,
		new(big.Int).Neg(half),
		new(big.Int).Add(half, big.NewInt(1)),
		pk.N,
	} {
		if _, err := pk.EncodeSigned(v); !errors.Is(err, ErrMessageTooLarge) {
			t.Fatalf("EncodeSigned(%v): err = %v, want ErrMessageTooLarge", v, err)
		}
	}
}

// TestMarshalFixedWidth pins the fixed-width ciphertext encoding: every
// ciphertext under one key marshals to exactly len(n²) magnitude bytes
// regardless of its leading zeros, and UnmarshalBinary decodes the padded
// form to the same value as the variable-width one.
func TestMarshalFixedWidth(t *testing.T) {
	key := testKey(t)
	pk := &key.PublicKey
	width := (pk.N2.BitLen() + 7) / 8

	values := []*big.Int{big.NewInt(1), big.NewInt(255), new(big.Int).Sub(pk.N2, big.NewInt(1))}
	for i := int64(0); i < 8; i++ {
		ct, err := pk.EncryptInt64(testRand(100+i), i)
		if err != nil {
			t.Fatal(err)
		}
		values = append(values, ct.C)
	}
	for _, v := range values {
		ct := &Ciphertext{C: v}
		fixed, err := ct.MarshalFixed(pk)
		if err != nil {
			t.Fatalf("MarshalFixed(%v): %v", v, err)
		}
		if len(fixed) != 4+width {
			t.Fatalf("fixed encoding of %v is %d bytes, want %d", v, len(fixed), 4+width)
		}
		var back Ciphertext
		if err := back.UnmarshalBinary(fixed); err != nil {
			t.Fatalf("decode fixed: %v", err)
		}
		if back.C.Cmp(v) != 0 {
			t.Fatalf("fixed round trip %v -> %v", v, back.C)
		}
	}

	// A value wider than n² cannot be a ciphertext; the encoder must refuse
	// rather than truncate.
	over := &Ciphertext{C: new(big.Int).Lsh(big.NewInt(1), uint(8*width))}
	if _, err := over.MarshalFixed(pk); err == nil {
		t.Fatal("over-wide ciphertext accepted")
	}
	if _, err := (&Ciphertext{C: big.NewInt(1)}).MarshalFixed(nil); err == nil {
		t.Fatal("nil key accepted")
	}
}

// FuzzCiphertextUnmarshal checks the ciphertext wire decoder never panics
// and that every accepted encoding re-marshals to the same bytes.
func FuzzCiphertextUnmarshal(f *testing.F) {
	key, err := GenerateKey(testRand(12), 128)
	if err != nil {
		f.Fatal(err)
	}
	ct, err := key.EncryptInt64(testRand(13), 42)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := ct.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var c Ciphertext
		if err := c.UnmarshalBinary(raw); err != nil {
			return
		}
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal accepted ciphertext: %v", err)
		}
		var back Ciphertext
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.C.Cmp(c.C) != 0 {
			t.Fatalf("round trip changed value: %v vs %v", back.C, c.C)
		}
	})
}

// FuzzCiphertextRoundTrip drives the encrypt -> marshal -> unmarshal ->
// decrypt path with arbitrary plaintext bytes.
func FuzzCiphertextRoundTrip(f *testing.F) {
	key, err := GenerateKey(testRand(14), 128)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{1}, false)
	f.Add([]byte{0xff, 0xff, 0xff}, true)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, mag []byte, neg bool) {
		m := new(big.Int).SetBytes(mag)
		if neg {
			m.Neg(m)
		}
		ct, err := key.Encrypt(testRand(15), m)
		if err != nil {
			// Out of the signed embedding range: must be the sentinel.
			if !errors.Is(err, ErrMessageTooLarge) {
				t.Fatalf("Encrypt(%v): %v", m, err)
			}
			return
		}
		wire, err := ct.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Ciphertext
		if err := back.UnmarshalBinary(wire); err != nil {
			t.Fatalf("unmarshal own encoding: %v", err)
		}
		wire2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatal("marshal not canonical")
		}
		got, err := key.Decrypt(&back)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("decrypt = %v, want %v", got, m)
		}
	})
}
