package paillier

import (
	"math/big"
	"sync"
)

// Scratch is an arena of big.Int temporaries for the allocation-lean hot
// path. A Scratch is checked out of a process-wide sync.Pool with
// GetScratch, handed integers one at a time by Int, and returned with Put;
// because the pool caches arenas per P, a steady-state window loop reuses
// the same backing storage (and the same math/big nat capacity) instead of
// allocating fresh temporaries per operation.
//
// Ownership rules:
//
//   - the goroutine that calls GetScratch owns the arena until it calls Put;
//     a Scratch must never be shared between goroutines;
//   - integers returned by Int are owned until the next Put and may hold
//     arbitrary stale values — callers must fully overwrite them (every
//     math/big operation with the integer as receiver does);
//   - no integer obtained from a Scratch may escape past Put: results that
//     outlive the operation are allocated normally;
//   - Put must be called exactly once per GetScratch. In race-detector
//     builds (go test -race) a use after Put or a double Put panics; in
//     regular builds the same bug silently corrupts pooled state, which is
//     why the race gate exists.
type Scratch struct {
	ints []*big.Int
	next int
	dead bool
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch checks an arena out of the process-wide pool. The caller must
// return it with Put.
func GetScratch() *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.next = 0
	s.dead = false
	return s
}

// Put returns the arena to the pool. Every integer handed out by Int is
// invalidated; in race builds, further use of the arena (or a second Put)
// panics.
func (s *Scratch) Put() {
	if raceEnabled {
		if s.dead {
			panic("paillier: Scratch.Put called twice")
		}
		s.dead = true
	}
	s.next = 0
	scratchPool.Put(s)
}

// Int returns the next scratch integer. Its value is unspecified — the
// caller must overwrite it before reading. The integer stays valid until
// the arena's Put.
func (s *Scratch) Int() *big.Int {
	if raceEnabled && s.dead {
		panic("paillier: Scratch used after Put")
	}
	if s.next == len(s.ints) {
		s.ints = append(s.ints, new(big.Int))
	}
	x := s.ints[s.next]
	s.next++
	return x
}
