//go:build race

package paillier

// raceEnabled gates the Scratch use-after-put checks: they run only under
// the race detector, keeping the production hot path branch-free while race
// builds (the CI test configuration) turn arena lifecycle bugs into panics.
const raceEnabled = true
