package paillier

import (
	"bytes"
	"math/big"
	"testing"
)

// Allocation-budget tests: the pooled-arena work is only real if the hot
// paths stay allocation-free (or within a pinned constant) release after
// release. testing.AllocsPerRun includes a warm-up call, so one-time buffer
// growth (a reused big.Int reaching ciphertext width, a frame pool priming
// itself) is excluded and the budgets below are steady-state figures.

// TestScalarMulFastPathAllocBudget pins the k ∈ {0, ±1} fast paths that
// skip the exponentiation entirely. They still return a fresh Ciphertext —
// the protocol contract — so the budget is the constant cost of that
// result, never a function of the key size.
func TestScalarMulFastPathAllocBudget(t *testing.T) {
	key := testKey(t)
	pk := &key.PublicKey
	ct, err := pk.EncryptInt64(testRand(31), 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		k      *big.Int
		budget float64
	}{
		{"zero", big.NewInt(0), 4},
		{"one", big.NewInt(1), 4},
		{"minus-one", big.NewInt(-1), 24}, // ModInverse works in fresh storage
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			avg := testing.AllocsPerRun(100, func() {
				if _, err := pk.ScalarMul(ct, tc.k); err != nil {
					t.Fatal(err)
				}
			})
			if avg > tc.budget {
				t.Errorf("ScalarMul(k=%v): %.1f allocs/op, budget %.0f", tc.k, avg, tc.budget)
			}
		})
	}
}

// TestAppendFixedAllocFree pins the zero-copy wire encoding: appending a
// fixed-width ciphertext into a caller-provided buffer of FixedLen capacity
// allocates nothing.
func TestAppendFixedAllocFree(t *testing.T) {
	key := testKey(t)
	pk := &key.PublicKey
	ct, err := pk.EncryptInt64(testRand(32), 1234)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, pk.FixedLen())
	avg := testing.AllocsPerRun(100, func() {
		if _, err := ct.AppendFixed(dst[:0], pk); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("AppendFixed into sized buffer: %.1f allocs/op, want 0", avg)
	}
}

// TestUnmarshalReuseAllocFree pins the decode half of the fold loops: once
// a reused Ciphertext's integer has grown to ciphertext width, decoding
// into it allocates nothing.
func TestUnmarshalReuseAllocFree(t *testing.T) {
	key := testKey(t)
	pk := &key.PublicKey
	ct, err := pk.EncryptInt64(testRand(33), 99)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ct.MarshalFixed(pk)
	if err != nil {
		t.Fatal(err)
	}
	var into Ciphertext
	avg := testing.AllocsPerRun(100, func() {
		if err := into.UnmarshalBinary(wire); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("UnmarshalBinary into reused ciphertext: %.1f allocs/op, want 0", avg)
	}
	if into.C.Cmp(ct.C) != 0 {
		t.Fatal("reused decode changed the value")
	}
}

// TestAppendFixedRoundTrip is the wire-encoder regression: AppendFixed
// appended mid-buffer (the cipher-pair frame layout) is byte-identical to
// a standalone MarshalFixed, and both decode back to the original value.
func TestAppendFixedRoundTrip(t *testing.T) {
	key := testKey(t)
	pk := &key.PublicKey
	for i := int64(0); i < 8; i++ {
		ct, err := pk.EncryptInt64(testRand(40+i), i-4)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ct.MarshalFixed(pk)
		if err != nil {
			t.Fatal(err)
		}
		// Append after a 4-byte prefix, as the pair encoder does.
		buf := make([]byte, 4, 4+2*pk.FixedLen())
		out, err := ct.AppendFixed(buf, pk)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out[4:], ref) {
			t.Fatalf("AppendFixed mid-buffer differs from MarshalFixed")
		}
		var back Ciphertext
		if err := back.UnmarshalBinary(out[4:]); err != nil {
			t.Fatal(err)
		}
		if back.C.Cmp(ct.C) != 0 {
			t.Fatalf("round trip changed ciphertext: %v vs %v", back.C, ct.C)
		}
	}
}

// FuzzAppendFixedPooled drives the pooled marshal path against the
// allocating reference: for arbitrary plaintexts, AppendFixed into a reused
// buffer must produce bytes identical to a fresh MarshalFixed, and both
// must round-trip to the same ciphertext value.
func FuzzAppendFixedPooled(f *testing.F) {
	key, err := GenerateKey(testRand(16), 128)
	if err != nil {
		f.Fatal(err)
	}
	pk := &key.PublicKey
	reused := make([]byte, 0, pk.FixedLen())
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(-1))
	f.Add(int64(1<<40 + 12345))
	f.Fuzz(func(t *testing.T, m int64) {
		ct, err := pk.EncryptInt64(testRand(m^0x5eed), m)
		if err != nil {
			// Out of the signed range for this key size — not this fuzz
			// target's concern.
			return
		}
		ref, err := ct.MarshalFixed(pk)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := ct.AppendFixed(reused[:0], pk)
		if err != nil {
			t.Fatal(err)
		}
		reused = pooled[:0]
		if !bytes.Equal(ref, pooled) {
			t.Fatalf("pooled encoding differs from reference for m=%d", m)
		}
		var a, b Ciphertext
		if err := a.UnmarshalBinary(ref); err != nil {
			t.Fatal(err)
		}
		if err := b.UnmarshalBinary(pooled); err != nil {
			t.Fatal(err)
		}
		if a.C.Cmp(b.C) != 0 || a.C.Cmp(ct.C) != 0 {
			t.Fatalf("round trip diverged for m=%d", m)
		}
	})
}
