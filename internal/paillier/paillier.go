// Package paillier implements the Paillier additively homomorphic public-key
// cryptosystem (Paillier, EUROCRYPT '99), the primary cryptographic building
// block of the PEM protocols (Section IV-A of the paper).
//
// Supported operations:
//
//   - key generation (512/1024/2048-bit moduli, matching the paper's sweep)
//   - encryption with the fast generator g = n+1
//   - decryption, both the textbook L-function path and a CRT-accelerated
//     path (the default)
//   - homomorphic addition of ciphertexts (ciphertext multiplication mod n²),
//     addition of a plaintext constant, and multiplication by a plaintext
//     scalar (ciphertext exponentiation), which Protocol 4 uses for the
//     reciprocal trick
//   - signed plaintext encoding in [-n/2, n/2)
//   - compact binary serialization of keys and ciphertexts for the wire
//
// The package is deterministic given the caller-provided randomness source,
// which the test suite exploits; production callers pass crypto/rand.Reader.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)

	// ErrMessageTooLarge is returned when a plaintext does not fit the
	// signed embedding range of the key.
	ErrMessageTooLarge = errors.New("paillier: message out of range for key")
	// ErrInvalidCiphertext is returned when a ciphertext is not an element
	// of Z*_{n²}.
	ErrInvalidCiphertext = errors.New("paillier: invalid ciphertext")
	// ErrKeyMismatch is returned when combining ciphertexts from different
	// keys.
	ErrKeyMismatch = errors.New("paillier: ciphertexts under different keys")
)

// PublicKey holds the public parameters (n, g=n+1).
type PublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // n²
}

// PrivateKey holds the factorization and precomputed CRT constants.
type PrivateKey struct {
	PublicKey
	p, q *big.Int

	// Textbook parameters.
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod n²))^{-1} mod n

	// CRT acceleration.
	p2, q2    *big.Int // p², q²
	hp, hq    *big.Int // L_p(g^{p-1} mod p²)^{-1} mod p, resp. q
	pInvQ     *big.Int // p^{-1} mod q
	pMinusOne *big.Int
	qMinusOne *big.Int
}

// Ciphertext is a Paillier ciphertext c ∈ Z*_{n²}.
type Ciphertext struct {
	// C is the ciphertext value.
	C *big.Int
}

// GenerateKey creates a Paillier key pair with an n of the given bit length.
// bits must be at least 64 (tiny keys are for tests only; use ≥2048 in any
// real deployment).
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: modulus size %d too small (min 64)", bits)
	}
	if random == nil {
		random = rand.Reader
	}
	for {
		p, err := randomPrime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("generate p: %w", err)
		}
		q, err := randomPrime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("generate q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		key, err := newPrivateKey(p, q)
		if err != nil {
			// Degenerate primes (gcd(n, φ(n)) ≠ 1); retry.
			continue
		}
		return key, nil
	}
}

// randomPrime draws a prime of exactly the given bit length from random by
// rejection sampling, like crypto/rand.Prime but without its deliberate
// MaybeReadByte nondeterminism — that single conditionally-consumed byte
// would make seeded key generation irreproducible, and the durability
// layer's crash-recovery oracle replays runs bit-for-bit, key fingerprints
// included. The top two candidate bits are set so p·q never comes up a bit
// short.
func randomPrime(random io.Reader, bits int) (*big.Int, error) {
	if bits < 2 {
		return nil, errors.New("paillier: prime size must be at least 2-bit")
	}
	b := uint(bits % 8)
	if b == 0 {
		b = 8
	}
	buf := make([]byte, (bits+7)/8)
	p := new(big.Int)
	for {
		if _, err := io.ReadFull(random, buf); err != nil {
			return nil, err
		}
		buf[0] &= uint8(int(1<<b) - 1)
		if b >= 2 {
			buf[0] |= 3 << (b - 2)
		} else {
			// b == 1: the top bit lives alone in buf[0].
			buf[0] |= 1
			if len(buf) > 1 {
				buf[1] |= 0x80
			}
		}
		buf[len(buf)-1] |= 1 // candidates must be odd
		p.SetBytes(buf)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

func newPrivateKey(p, q *big.Int) (*PrivateKey, error) {
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)

	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)

	// g = n+1 ⇒ g^lambda mod n² = 1 + lambda*n, so
	// L(g^lambda) = lambda mod n and mu = lambda^{-1} mod n.
	mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
	if mu == nil {
		return nil, errors.New("paillier: lambda not invertible mod n")
	}

	p2 := new(big.Int).Mul(p, p)
	q2 := new(big.Int).Mul(q, q)

	// h_p = L_p(g^{p-1} mod p²)^{-1} mod p with g = n+1:
	// g^{p-1} mod p² = (1+n)^{p-1} = 1 + (p-1)n mod p², so
	// L_p = ((p-1)n mod p²)/p mod p.
	hp, err := hConstant(n, p, p2, pm1)
	if err != nil {
		return nil, err
	}
	hq, err := hConstant(n, q, q2, qm1)
	if err != nil {
		return nil, err
	}
	pInvQ := new(big.Int).ModInverse(p, q)
	if pInvQ == nil {
		return nil, errors.New("paillier: p not invertible mod q")
	}

	return &PrivateKey{
		PublicKey: PublicKey{N: n, N2: n2},
		p:         p,
		q:         q,
		lambda:    lambda,
		mu:        mu,
		p2:        p2,
		q2:        q2,
		hp:        hp,
		hq:        hq,
		pInvQ:     pInvQ,
		pMinusOne: pm1,
		qMinusOne: qm1,
	}, nil
}

// hConstant computes L_r(g^{r-1} mod r²)^{-1} mod r for r ∈ {p, q}.
func hConstant(n, r, r2, rm1 *big.Int) (*big.Int, error) {
	g := new(big.Int).Add(n, one)
	x := new(big.Int).Exp(g, rm1, r2)
	l := lFunc(x, r)
	h := new(big.Int).ModInverse(l, r)
	if h == nil {
		return nil, errors.New("paillier: CRT constant not invertible")
	}
	return h, nil
}

// lFunc computes L_r(x) = (x-1)/r.
func lFunc(x, r *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(x, one), r)
}

// Bits returns the modulus size in bits.
func (pk *PublicKey) Bits() int { return pk.N.BitLen() }

// MaxSigned returns the largest magnitude representable by the signed
// encoding, i.e. values v with |v| < n/2 round-trip.
func (pk *PublicKey) MaxSigned() *big.Int {
	return new(big.Int).Rsh(pk.N, 1)
}

// EncodeSigned maps a signed integer into Z_n (negative values wrap to
// n - |v|). It returns ErrMessageTooLarge when |v| ≥ n/2.
func (pk *PublicKey) EncodeSigned(v *big.Int) (*big.Int, error) {
	if new(big.Int).Abs(v).Cmp(pk.MaxSigned()) >= 0 {
		return nil, ErrMessageTooLarge
	}
	if v.Sign() >= 0 {
		return new(big.Int).Set(v), nil
	}
	return new(big.Int).Add(pk.N, v), nil
}

// DecodeSigned inverts EncodeSigned: residues above n/2 are interpreted as
// negative.
func (pk *PublicKey) DecodeSigned(m *big.Int) *big.Int {
	if m.Cmp(pk.MaxSigned()) > 0 {
		return new(big.Int).Sub(m, pk.N)
	}
	return new(big.Int).Set(m)
}

// encodeSignedInto is the allocation-lean EncodeSigned: the encoded residue
// lands in dst (typically a Scratch integer). dst must not alias v.
func (pk *PublicKey) encodeSignedInto(dst, v *big.Int) error {
	dst.Rsh(pk.N, 1)
	if v.CmpAbs(dst) >= 0 {
		return ErrMessageTooLarge
	}
	if v.Sign() >= 0 {
		dst.Set(v)
	} else {
		dst.Add(pk.N, v)
	}
	return nil
}

// decodeSignedInPlace is the allocation-lean DecodeSigned: m itself becomes
// the signed plaintext and is returned. half is scratch for the n/2 bound.
func (pk *PublicKey) decodeSignedInPlace(half, m *big.Int) *big.Int {
	half.Rsh(pk.N, 1)
	if m.Cmp(half) > 0 {
		m.Sub(m, pk.N)
	}
	return m
}

// randomUnit draws r uniformly from Z*_n. s provides the GCD temporary.
func (pk *PublicKey) randomUnit(s *Scratch, random io.Reader) (*big.Int, error) {
	gcd := s.Int()
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("draw nonce: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if gcd.GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Encrypt encrypts the signed integer m. With g = n+1 the ciphertext is
// (1 + m·n) · r^n mod n².
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	if random == nil {
		random = rand.Reader
	}
	s := GetScratch()
	defer s.Put()
	r, err := pk.randomUnit(s, random)
	if err != nil {
		return nil, err
	}
	return pk.encryptWithUnit(m, r)
}

// EncryptWithFactor encrypts m using a pre-computed blinding factor
// rn = r^n mod n² (see NoncePool). This is the paper's "encryption executed
// in parallel during idle time" optimization: the expensive exponentiation
// happens ahead of time, leaving only two multiplications per encryption.
func (pk *PublicKey) EncryptWithFactor(m, rn *big.Int) (*Ciphertext, error) {
	s := GetScratch()
	defer s.Put()
	em := s.Int()
	if err := pk.encodeSignedInto(em, m); err != nil {
		return nil, err
	}
	// (1 + em*n) * rn mod n².
	c := new(big.Int).Mul(em, pk.N)
	c.Add(c, one)
	c.Mod(c, pk.N2)
	c.Mul(c, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

func (pk *PublicKey) encryptWithUnit(m, r *big.Int) (*Ciphertext, error) {
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	return pk.EncryptWithFactor(m, rn)
}

// BlindingFactor computes r^n mod n² for a fresh random r. The result can
// be handed to EncryptWithFactor later.
func (pk *PublicKey) BlindingFactor(random io.Reader) (*big.Int, error) {
	if random == nil {
		random = rand.Reader
	}
	s := GetScratch()
	defer s.Put()
	r, err := pk.randomUnit(s, random)
	if err != nil {
		return nil, err
	}
	return new(big.Int).Exp(r, pk.N, pk.N2), nil
}

// validate checks c ∈ [1, n²) with gcd(c, n) = 1.
func (pk *PublicKey) validate(c *Ciphertext) error {
	if c == nil || c.C == nil {
		return ErrInvalidCiphertext
	}
	if c.C.Sign() <= 0 || c.C.Cmp(pk.N2) >= 0 {
		return ErrInvalidCiphertext
	}
	return nil
}

// Add returns a ciphertext encrypting the sum of the two plaintexts
// (E(a)·E(b) mod n²).
func (pk *PublicKey) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := pk.validate(a); err != nil {
		return nil, err
	}
	if err := pk.validate(b); err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// AddInPlace folds b into acc (acc.C ← acc.C·b.C mod n²), mutating the
// accumulator instead of allocating a result — the primitive behind the
// allocation-lean ring/tree fold loops. acc and b must be distinct
// ciphertexts.
func (pk *PublicKey) AddInPlace(acc, b *Ciphertext) error {
	if err := pk.validate(acc); err != nil {
		return err
	}
	if err := pk.validate(b); err != nil {
		return err
	}
	s := GetScratch()
	defer s.Put()
	t := s.Int().Mul(acc.C, b.C)
	acc.C.Mod(t, pk.N2)
	return nil
}

// AddPlain returns a ciphertext encrypting plaintext(c) + m without fresh
// randomness (E(a)·(1+m·n) mod n²).
func (pk *PublicKey) AddPlain(c *Ciphertext, m *big.Int) (*Ciphertext, error) {
	if err := pk.validate(c); err != nil {
		return nil, err
	}
	em, err := pk.EncodeSigned(m)
	if err != nil {
		return nil, err
	}
	g := new(big.Int).Mul(em, pk.N)
	g.Add(g, one)
	g.Mod(g, pk.N2)
	out := new(big.Int).Mul(c.C, g)
	out.Mod(out, pk.N2)
	return &Ciphertext{C: out}, nil
}

// ScalarMul returns a ciphertext encrypting k·plaintext(c) (E(a)^k mod n²).
// Negative scalars are supported through the signed embedding.
//
// The exponentiation is skipped entirely for k ∈ {0, ±1}: E(a)^0 = 1 (a
// valid, deterministic encryption of zero), E(a)^1 = E(a), and E(a)^{-1}
// needs only the modular inverse. Other small scalars — Protocol 4's
// reciprocal multipliers are ~20–40 bits — take a 2^k-ary windowed ladder
// that avoids math/big's fixed Montgomery setup cost (see exp.go).
func (pk *PublicKey) ScalarMul(c *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validate(c); err != nil {
		return nil, err
	}
	if k.Sign() == 0 {
		return &Ciphertext{C: big.NewInt(1)}, nil
	}
	if k.BitLen() == 1 { // k = ±1: nothing to exponentiate
		base := new(big.Int).Set(c.C)
		if k.Sign() < 0 {
			if base.ModInverse(base, pk.N2) == nil {
				return nil, ErrInvalidCiphertext
			}
		}
		return &Ciphertext{C: base}, nil
	}
	s := GetScratch()
	defer s.Put()
	base := c.C
	if k.Sign() < 0 {
		inv := s.Int()
		if inv.ModInverse(c.C, pk.N2) == nil {
			return nil, ErrInvalidCiphertext
		}
		base = inv
	}
	exp := s.Int().Abs(k)
	return &Ciphertext{C: modExp(base, exp, pk.N2)}, nil
}

// Rerandomize multiplies c by a fresh encryption of zero, hiding any link
// to the ciphertext it was derived from.
func (pk *PublicKey) Rerandomize(random io.Reader, c *Ciphertext) (*Ciphertext, error) {
	zero, err := pk.Encrypt(random, big.NewInt(0))
	if err != nil {
		return nil, err
	}
	return pk.Add(c, zero)
}

// Decrypt recovers the signed plaintext using the CRT-accelerated path.
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	s := GetScratch()
	defer s.Put()
	return sk.DecryptScratch(s, c)
}

// DecryptScratch is Decrypt with caller-provided scratch: every temporary
// of the CRT path comes from s, so batch decryption loops holding one
// arena per worker run the whole recovery with a single allocation (the
// returned plaintext, which outlives the arena by design).
func (sk *PrivateKey) DecryptScratch(s *Scratch, c *Ciphertext) (*big.Int, error) {
	if err := sk.validate(c); err != nil {
		return nil, err
	}
	// m_p = L_p(c^{p-1} mod p²)·h_p mod p, likewise mod q, then CRT.
	cp := s.Int().Exp(c.C, sk.pMinusOne, sk.p2)
	mp := s.Int().Sub(cp, one)
	mp.Div(mp, sk.p)
	mp.Mul(mp, sk.hp)
	mp.Mod(mp, sk.p)

	cq := s.Int().Exp(c.C, sk.qMinusOne, sk.q2)
	mq := s.Int().Sub(cq, one)
	mq.Div(mq, sk.q)
	mq.Mul(mq, sk.hq)
	mq.Mod(mq, sk.q)

	// CRT: m = mp + p·((mq - mp)·pInvQ mod q).
	diff := s.Int().Sub(mq, mp)
	diff.Mod(diff, sk.q)
	diff.Mul(diff, sk.pInvQ)
	diff.Mod(diff, sk.q)
	m := new(big.Int).Mul(diff, sk.p)
	m.Add(m, mp)

	return sk.decodeSignedInPlace(s.Int(), m), nil
}

// DecryptTextbook recovers the plaintext via the original L-function method;
// it exists to cross-check the CRT path and for the ablation benchmark.
func (sk *PrivateKey) DecryptTextbook(c *Ciphertext) (*big.Int, error) {
	if err := sk.validate(c); err != nil {
		return nil, err
	}
	x := new(big.Int).Exp(c.C, sk.lambda, sk.N2)
	m := lFunc(x, sk.N)
	m.Mul(m, sk.mu)
	m.Mod(m, sk.N)
	return sk.DecodeSigned(m), nil
}

// EncryptInt64 is a convenience wrapper for fixed-point protocol values.
func (pk *PublicKey) EncryptInt64(random io.Reader, v int64) (*Ciphertext, error) {
	return pk.Encrypt(random, big.NewInt(v))
}

// DecryptInt64 decrypts and narrows to int64, failing loudly on overflow.
func (sk *PrivateKey) DecryptInt64(c *Ciphertext) (int64, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return 0, err
	}
	if !m.IsInt64() {
		return 0, fmt.Errorf("paillier: plaintext %s overflows int64", m)
	}
	return m.Int64(), nil
}
