//go:build !race

package paillier

// raceEnabled is false in regular builds; see arena_race.go.
const raceEnabled = false
