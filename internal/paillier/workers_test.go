package paillier

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"testing"
	"time"
)

func TestDecryptBatch(t *testing.T) {
	key := testKey(t)
	rng := testRand(2)
	const n = 17
	cts := make([]*Ciphertext, n)
	want := make([]int64, n)
	for i := range cts {
		want[i] = int64(i*31 - 200)
		ct, err := key.EncryptInt64(rng, want[i])
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	for _, workers := range []*Workers{nil, NewWorkers(1), NewWorkers(4), NewWorkers(64)} {
		got, err := key.DecryptBatch(workers, cts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("got %d plaintexts", len(got))
		}
		for i, m := range got {
			if m.Int64() != want[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %d", workers.Size(), i, m, want[i])
			}
		}
	}
	if res, err := key.DecryptBatch(NewWorkers(4), nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
}

func TestDecryptBatchPropagatesError(t *testing.T) {
	key := testKey(t)
	rng := testRand(3)
	good, err := key.EncryptInt64(rng, 7)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Ciphertext{C: big.NewInt(0)} // not in Z*_{n²}
	if _, err := key.DecryptBatch(NewWorkers(4), []*Ciphertext{good, bad, good}); !errors.Is(err, ErrInvalidCiphertext) {
		t.Fatalf("err = %v, want ErrInvalidCiphertext", err)
	}
}

func TestScalarMulBatch(t *testing.T) {
	key := testKey(t)
	rng := testRand(4)
	const n = 9
	cts := make([]*Ciphertext, n)
	ks := make([]*big.Int, n)
	want := make([]int64, n)
	for i := range cts {
		v := int64(i + 1)
		k := int64(i*3 - 8)
		want[i] = v * k
		ct, err := key.EncryptInt64(rng, v)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
		ks[i] = big.NewInt(k)
	}
	out, err := key.ScalarMulBatch(NewWorkers(4), cts, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range out {
		m, err := key.DecryptInt64(ct)
		if err != nil {
			t.Fatal(err)
		}
		if m != want[i] {
			t.Fatalf("slot %d = %d, want %d", i, m, want[i])
		}
	}
	if _, err := key.ScalarMulBatch(nil, cts, ks[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestWorkersRefcount exercises the shared-ownership lifecycle: several
// owners over one pool, the pool staying live until the last Release, and
// loud panics on double-release and use-after-retire — the bugs that a
// coalition grid sharing one pool across engines would otherwise hit as
// silent leaks or races.
func TestWorkersRefcount(t *testing.T) {
	w := NewWorkers(2)
	if got := w.Refs(); got != 1 {
		t.Fatalf("fresh pool refs = %d, want 1", got)
	}
	w.Retain().Retain()
	if got := w.Refs(); got != 3 {
		t.Fatalf("after two retains refs = %d, want 3", got)
	}
	w.Release()
	w.Release()
	// Still one owner: the pool must still schedule work.
	if err := w.runBatch(4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	w.Release()
	if got := w.Refs(); got != 0 {
		t.Fatalf("retired pool refs = %d, want 0", got)
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on retired pool did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Release", w.Release)
	mustPanic("Retain", func() { w.Retain() })
	mustPanic("runBatch", func() { _ = w.runBatch(2, func(int) error { return nil }) })
}

func TestWorkersNilLifecycle(t *testing.T) {
	var w *Workers
	if w.Retain() != nil {
		t.Fatal("nil Retain returned non-nil")
	}
	w.Release() // must not panic
	if got := w.Refs(); got != 0 {
		t.Fatalf("nil pool refs = %d, want 0", got)
	}
}

// flakyReader fails its first failures reads, then delegates.
type flakyReader struct {
	failures int
	inner    io.Reader
}

func (f *flakyReader) Read(b []byte) (int, error) {
	if f.failures > 0 {
		f.failures--
		return 0, fmt.Errorf("transient entropy failure")
	}
	return f.inner.Read(b)
}

// TestNoncePoolRecoversFromRandomnessFailure is the regression test for
// the silently-dying refill worker: transient randomness errors must be
// retried (with the failure count visible in Stats) instead of degrading
// the pool to inline computation for the rest of the session.
func TestNoncePoolRecoversFromRandomnessFailure(t *testing.T) {
	key := testKey(t)
	pool := NewNoncePool(&key.PublicKey, PoolConfig{
		Target:  3,
		Workers: 1,
		Random:  &flakyReader{failures: 2, inner: testRand(5)},
	})
	defer pool.Close()

	deadline := time.After(30 * time.Second)
	for pool.Len() < 3 {
		select {
		case <-deadline:
			t.Fatalf("pool never refilled after transient failures; stats: %+v", pool.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	st := pool.Stats()
	if st.Retries == 0 {
		t.Errorf("stats recorded no retries: %+v", st)
	}
	if st.Ready < 3 {
		t.Errorf("stats ready = %d, want >= 3", st.Ready)
	}
}

func TestNoncePoolStatsCounters(t *testing.T) {
	key := testKey(t)
	pool := NewNoncePool(&key.PublicKey, PoolConfig{Target: 2, Workers: 1, Random: testRand(6)})
	defer pool.Close()

	ctx := context.Background()
	deadline := time.After(30 * time.Second)
	for pool.Len() < 2 {
		select {
		case <-deadline:
			t.Fatal("pool never filled")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if _, err := pool.Take(ctx); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Hits == 0 {
		t.Errorf("no hit recorded: %+v", st)
	}

	// Stop the refill workers, drain the stock, and force a miss.
	pool.Close()
	for pool.Len() > 0 {
		if _, err := pool.Take(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.Take(ctx); err != nil {
		t.Fatal(err)
	}
	if st = pool.Stats(); st.Misses == 0 {
		t.Errorf("no miss recorded after drain: %+v", st)
	}
}

func TestNoncePoolCloseDuringBackoff(t *testing.T) {
	key := testKey(t)
	pool := NewNoncePool(&key.PublicKey, PoolConfig{
		Target:  4,
		Workers: 1,
		Random:  &flakyReader{failures: 1 << 30, inner: testRand(7)}, // never recovers
	})
	done := make(chan struct{})
	go func() {
		pool.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a worker stuck in retry backoff")
	}
}

// BenchmarkDecryptBatch isolates the worker-pool speedup of the Protocol 4
// hot path (Hs decrypting one masked ciphertext per demand-side member).
// On a multi-core host the 8-worker batch decrypts the 32-ciphertext batch
// several times faster than the single-worker one.
func BenchmarkDecryptBatch(b *testing.B) {
	key, err := GenerateKey(testRand(8), 1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := testRand(9)
	const n = 32
	cts := make([]*Ciphertext, n)
	for i := range cts {
		ct, err := key.EncryptInt64(rng, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := NewWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := key.DecryptBatch(w, cts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
