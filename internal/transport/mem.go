package transport

import (
	"context"
	"fmt"
	"sync"
)

// Bus is an in-memory transport connecting any number of parties within one
// process. It models the paper's deployment (one container per agent on a
// shared host) without the serialization cost of real sockets, while still
// accounting for the exact number of bytes each party would have sent.
type Bus struct {
	mu      sync.RWMutex
	parties map[string]*memConn
	metrics *Metrics
}

// NewBus creates an empty bus. If metrics is nil, a fresh sink is created.
func NewBus(metrics *Metrics) *Bus {
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &Bus{
		parties: make(map[string]*memConn),
		metrics: metrics,
	}
}

// Metrics returns the byte-accounting sink shared by all endpoints.
func (b *Bus) Metrics() *Metrics { return b.metrics }

// Register creates the endpoint for a party. Registering the same party
// twice is an error.
func (b *Bus) Register(party string) (Conn, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.parties[party]; dup {
		return nil, fmt.Errorf("transport: party %q already registered", party)
	}
	c := &memConn{bus: b, party: party, mbox: newMailbox()}
	b.parties[party] = c
	return c, nil
}

// MustRegister is Register for test and example setup code; it panics on
// duplicate registration.
func (b *Bus) MustRegister(party string) Conn {
	c, err := b.Register(party)
	if err != nil {
		panic(err)
	}
	return c
}

func (b *Bus) lookup(party string) (*memConn, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.parties[party]
	return c, ok
}

func (b *Bus) remove(party string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.parties, party)
}

type memConn struct {
	bus   *Bus
	party string
	mbox  *mailbox

	closeOnce sync.Once
}

var _ Conn = (*memConn)(nil)

// sendNeverBlocks marks the in-memory endpoint for SendNeverBlocks: a bus
// Send is a mailbox push under a briefly-held mutex, never a wait on the
// receiver.
func (c *memConn) sendNeverBlocks() {}

func (c *memConn) Party() string { return c.party }

func (c *memConn) Send(ctx context.Context, to, tag string, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dst, ok := c.bus.lookup(to)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownParty, to)
	}
	// Copy the payload into a pooled frame: senders are free to reuse their
	// buffers the moment Send returns, and the receiver takes ownership of
	// the pooled copy (it may PutFrame it after decoding — see Conn).
	buf := GetFrame(len(payload))
	copy(buf, payload)
	msg := Message{From: c.party, To: to, Tag: tag, Payload: buf}
	if err := dst.mbox.push(msg); err != nil {
		return fmt.Errorf("transport: send to %q: %w", to, err)
	}
	c.bus.metrics.recordSend(c.party, tag, msg.wireSize())
	return nil
}

func (c *memConn) Recv(ctx context.Context, from, tag string) ([]byte, error) {
	return c.mbox.pop(ctx, from, tag)
}

func (c *memConn) RecvAny(ctx context.Context, tag string, froms []string) (string, []byte, error) {
	return c.mbox.popAny(ctx, tag, froms)
}

func (c *memConn) Close() error {
	c.closeOnce.Do(func() {
		c.mbox.close()
		c.bus.remove(c.party)
	})
	return nil
}
