package transport

import "sync"

// windowKey attributes traffic to one window of one scope (coalition). The
// empty scope is the solo-engine namespace of PR 1's WindowTag scheme.
type windowKey struct {
	scope  string
	window int
}

// Metrics accumulates per-party traffic counters. It feeds the Table I
// bandwidth experiment ("average bandwidth over m trading windows of all
// the smart homes"). Messages whose tag carries a window namespace (see
// WindowTag and ScopedWindowTag) are additionally attributed to that
// (scope, window) pair, so that windows executing concurrently — including
// same-numbered windows of different coalitions sharing one bus — still get
// exact per-window byte accounting.
type Metrics struct {
	mu      sync.Mutex
	bytes   map[string]int64
	msgs    map[string]int64
	windowB map[windowKey]int64
	scopeB  map[string]int64
	totalB  int64
	totalM  int64
}

// NewMetrics creates an empty sink.
func NewMetrics() *Metrics {
	return &Metrics{
		bytes:   make(map[string]int64),
		msgs:    make(map[string]int64),
		windowB: make(map[windowKey]int64),
		scopeB:  make(map[string]int64),
	}
}

func (m *Metrics) recordSend(party, tag string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes[party] += int64(n)
	m.msgs[party]++
	if scope, w, _, ok := ParseScopedWindowTag(tag); ok {
		m.windowB[windowKey{scope: scope, window: w}] += int64(n)
		m.scopeB[scope] += int64(n)
	}
	m.totalB += int64(n)
	m.totalM++
}

// WindowBytes returns the bytes sent so far within one window's tag
// namespace (unscoped form), across all parties. Re-running the same window
// number on the same sink accumulates; callers that need a per-run figure
// should diff before/after values.
func (m *Metrics) WindowBytes(window int) int64 {
	return m.ScopedWindowBytes("", window)
}

// ScopedWindowBytes returns the bytes sent within one window of one scope.
// The empty scope reads the unscoped (solo-engine) namespace.
func (m *Metrics) ScopedWindowBytes(scope string, window int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowB[windowKey{scope: scope, window: window}]
}

// ScopeBytes returns the total window-tagged bytes sent under one scope —
// one coalition's protocol traffic on a shared bus. The empty scope covers
// solo-engine traffic.
func (m *Metrics) ScopeBytes(scope string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scopeB[scope]
}

// TotalBytes returns the total bytes sent across all parties.
func (m *Metrics) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalB
}

// TotalMessages returns the total number of messages sent.
func (m *Metrics) TotalMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalM
}

// PartyBytes returns the bytes sent by one party.
func (m *Metrics) PartyBytes(party string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes[party]
}

// Snapshot returns a copy of the per-party byte counters.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.bytes))
	for k, v := range m.bytes {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes = make(map[string]int64)
	m.msgs = make(map[string]int64)
	m.windowB = make(map[windowKey]int64)
	m.scopeB = make(map[string]int64)
	m.totalB = 0
	m.totalM = 0
}
