package transport

import (
	"sync"
	"time"
)

// windowKey attributes traffic to one window of one scope (coalition). The
// empty scope is the solo-engine namespace of PR 1's WindowTag scheme.
type windowKey struct {
	scope  string
	window int
}

// Metrics accumulates per-party traffic counters. It feeds the Table I
// bandwidth experiment ("average bandwidth over m trading windows of all
// the smart homes"). Messages whose tag carries a window namespace (see
// WindowTag and ScopedWindowTag) are additionally attributed to that
// (scope, window) pair, so that windows executing concurrently — including
// same-numbered windows of different coalitions sharing one bus — still get
// exact per-window byte accounting. Message counts mirror the byte counters
// at every granularity (party, window, scope, total).
//
// When a run executes over the network-emulation layer (internal/netem),
// the sink additionally carries each window's virtual-time observations:
// the critical-path latency an identical deployment would wait out on the
// emulated links, and the protocol round count (the longest chain of
// message dependencies). Both are running maxima recorded by the emulation
// as deliveries advance the per-party virtual clocks; they stay zero on
// unemulated runs.
type Metrics struct {
	mu      sync.Mutex
	bytes   map[string]int64
	msgs    map[string]int64
	windowB map[windowKey]int64
	windowM map[windowKey]int64
	scopeB  map[string]int64
	scopeM  map[string]int64
	phaseM  map[string]int64
	winLat  map[windowKey]time.Duration
	winRnd  map[windowKey]int
	// scopeLat mirrors scopeB for virtual time: the running sum of each
	// scope's per-window latency maxima, maintained incrementally as
	// RecordVirtual grows them.
	scopeLat map[string]time.Duration
	totalB   int64
	totalM   int64
}

// NewMetrics creates an empty sink.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.init()
	return m
}

// init allocates the counter maps (shared by NewMetrics and Reset).
func (m *Metrics) init() {
	m.bytes = make(map[string]int64)
	m.msgs = make(map[string]int64)
	m.windowB = make(map[windowKey]int64)
	m.windowM = make(map[windowKey]int64)
	m.scopeB = make(map[string]int64)
	m.scopeM = make(map[string]int64)
	m.phaseM = make(map[string]int64)
	m.winLat = make(map[windowKey]time.Duration)
	m.winRnd = make(map[windowKey]int)
	m.scopeLat = make(map[string]time.Duration)
}

func (m *Metrics) recordSend(party, tag string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes[party] += int64(n)
	m.msgs[party]++
	if scope, w, rest, ok := ParseScopedWindowTag(tag); ok {
		k := windowKey{scope: scope, window: w}
		m.windowB[k] += int64(n)
		m.windowM[k]++
		m.scopeB[scope] += int64(n)
		m.scopeM[scope]++
		m.phaseM[phaseOf(rest)]++
	}
	m.totalB += int64(n)
	m.totalM++
}

// phaseOf maps a bare protocol tag onto its protocol phase — the first path
// segment: "role" (Protocol 1's announcements), "pme" (Protocol 2), "pp"
// (Protocol 3), "pd" (Protocol 4).
func phaseOf(rest string) string {
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[:i]
		}
	}
	return rest
}

// RecordVirtual folds one virtual-clock observation into a window's
// critical-path maxima: the network-emulation layer calls it as message
// deliveries advance the per-party clocks, so the stored values converge to
// the window's longest dependency chain (rounds) and its virtual end time
// (latency).
func (m *Metrics) RecordVirtual(scope string, window int, latency time.Duration, rounds int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := windowKey{scope: scope, window: window}
	if latency > m.winLat[k] {
		m.scopeLat[scope] += latency - m.winLat[k]
		m.winLat[k] = latency
	}
	if rounds > m.winRnd[k] {
		m.winRnd[k] = rounds
	}
}

// WindowBytes returns the bytes sent so far within one window's tag
// namespace (unscoped form), across all parties. Re-running the same window
// number on the same sink accumulates; callers that need a per-run figure
// should diff before/after values.
func (m *Metrics) WindowBytes(window int) int64 {
	return m.ScopedWindowBytes("", window)
}

// ScopedWindowBytes returns the bytes sent within one window of one scope.
// The empty scope reads the unscoped (solo-engine) namespace.
func (m *Metrics) ScopedWindowBytes(scope string, window int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowB[windowKey{scope: scope, window: window}]
}

// ScopedWindowMessages returns the messages sent within one window of one
// scope, mirroring ScopedWindowBytes.
func (m *Metrics) ScopedWindowMessages(scope string, window int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowM[windowKey{scope: scope, window: window}]
}

// WindowVirtualLatency returns one window's critical-path virtual latency
// over the emulated network — the longest chain of link delays any party
// waited out. Zero when the run is not emulated.
func (m *Metrics) WindowVirtualLatency(scope string, window int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.winLat[windowKey{scope: scope, window: window}]
}

// WindowRounds returns one window's protocol round count: the longest
// message dependency chain observed on the emulated network. Zero when the
// run is not emulated.
func (m *Metrics) WindowRounds(scope string, window int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.winRnd[windowKey{scope: scope, window: window}]
}

// ScopeBytes returns the total window-tagged bytes sent under one scope —
// one coalition's protocol traffic on a shared bus. The empty scope covers
// solo-engine traffic.
func (m *Metrics) ScopeBytes(scope string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scopeB[scope]
}

// ScopeMessages returns the total window-tagged messages sent under one
// scope, mirroring ScopeBytes.
func (m *Metrics) ScopeMessages(scope string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scopeM[scope]
}

// ScopeVirtualLatency sums one scope's per-window critical-path latencies —
// the virtual duration of the scope's trading day if its windows ran
// back-to-back on the emulated network. Zero when the run is not emulated.
func (m *Metrics) ScopeVirtualLatency(scope string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scopeLat[scope]
}

// TotalBytes returns the total bytes sent across all parties.
func (m *Metrics) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalB
}

// TotalMessages returns the total number of messages sent.
func (m *Metrics) TotalMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalM
}

// PartyBytes returns the bytes sent by one party.
func (m *Metrics) PartyBytes(party string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes[party]
}

// PartyMessages returns the number of messages sent by one party.
func (m *Metrics) PartyMessages(party string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.msgs[party]
}

// Snapshot returns a copy of the per-party byte counters.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.bytes))
	for k, v := range m.bytes {
		out[k] = v
	}
	return out
}

// PhaseMessages returns a copy of the per-protocol-phase message counters,
// keyed by the first segment of the bare protocol tag ("role", "pme", "pp",
// "pd"). Phases aggregate across all scopes and windows; they expose each
// protocol's share of the message volume, the communication-cost figure's
// round-structure breakdown.
func (m *Metrics) PhaseMessages() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.phaseM))
	for k, v := range m.phaseM {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	m.totalB = 0
	m.totalM = 0
}
