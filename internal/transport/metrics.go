package transport

import "sync"

// Metrics accumulates per-party traffic counters. It feeds the Table I
// bandwidth experiment ("average bandwidth over m trading windows of all
// the smart homes"). Messages whose tag carries a window namespace (see
// WindowTag) are additionally attributed to that window, so that windows
// executing concurrently still get exact per-window byte accounting.
type Metrics struct {
	mu      sync.Mutex
	bytes   map[string]int64
	msgs    map[string]int64
	windowB map[int]int64
	totalB  int64
	totalM  int64
}

// NewMetrics creates an empty sink.
func NewMetrics() *Metrics {
	return &Metrics{
		bytes:   make(map[string]int64),
		msgs:    make(map[string]int64),
		windowB: make(map[int]int64),
	}
}

func (m *Metrics) recordSend(party, tag string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes[party] += int64(n)
	m.msgs[party]++
	if w, _, ok := ParseWindowTag(tag); ok {
		m.windowB[w] += int64(n)
	}
	m.totalB += int64(n)
	m.totalM++
}

// WindowBytes returns the bytes sent so far within one window's tag
// namespace, across all parties. Re-running the same window number on the
// same sink accumulates; callers that need a per-run figure should diff
// before/after values.
func (m *Metrics) WindowBytes(window int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowB[window]
}

// TotalBytes returns the total bytes sent across all parties.
func (m *Metrics) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalB
}

// TotalMessages returns the total number of messages sent.
func (m *Metrics) TotalMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalM
}

// PartyBytes returns the bytes sent by one party.
func (m *Metrics) PartyBytes(party string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes[party]
}

// Snapshot returns a copy of the per-party byte counters.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.bytes))
	for k, v := range m.bytes {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes = make(map[string]int64)
	m.msgs = make(map[string]int64)
	m.windowB = make(map[int]int64)
	m.totalB = 0
	m.totalM = 0
}
