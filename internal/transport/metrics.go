package transport

import (
	"sync"
	"time"
)

// windowCounters holds one (scope, window)'s traffic and virtual-clock
// figures while the window is live. The per-scope aggregates (scopeAgg) are
// maintained incrementally as these grow, so a completed window's counters
// can be folded away (FoldWindow) without losing any scope- or total-level
// figure — that is what keeps the sink O(1) memory per window at scale.
type windowCounters struct {
	bytes, msgs int64
	lat         time.Duration
	rounds      int
}

// scopeAgg accumulates one scope's running totals across its windows. It is
// grown incrementally on every send and virtual-clock observation, never
// recomputed from the per-window counters, so it survives FoldWindow and
// DropScope-style compaction of the per-window state.
type scopeAgg struct {
	bytes, msgs int64
	lat         time.Duration
}

// Metrics accumulates per-party traffic counters. It feeds the Table I
// bandwidth experiment ("average bandwidth over m trading windows of all
// the smart homes"). Messages whose tag carries a window namespace (see
// WindowTag and ScopedWindowTag) are additionally attributed to that
// (scope, window) pair, so that windows executing concurrently — including
// same-numbered windows of different coalitions sharing one bus — still get
// exact per-window byte accounting. Message counts mirror the byte counters
// at every granularity (party, window, scope, total).
//
// When a run executes over the network-emulation layer (internal/netem),
// the sink additionally carries each window's virtual-time observations:
// the critical-path latency an identical deployment would wait out on the
// emulated links, and the protocol round count (the longest chain of
// message dependencies). Both are running maxima recorded by the emulation
// as deliveries advance the per-party virtual clocks; they stay zero on
// unemulated runs.
//
// Memory model: per-window counters are kept in per-scope maps so a caller
// that is done with a window (FoldWindow) or a whole coalition's scope
// (DropScope) can compact them away in O(1) while every aggregate —
// per-scope, per-phase, per-party, total — remains exact. The grid
// supervisor uses this to keep the shared bus's sink bounded by the windows
// in flight rather than the windows ever run; solo engines never compact,
// so the PR 1 per-window queries keep working unchanged.
type Metrics struct {
	mu      sync.Mutex
	bytes   map[string]int64
	msgs    map[string]int64
	windows map[string]map[int]*windowCounters
	scopes  map[string]*scopeAgg
	phaseM  map[string]int64
	totalB  int64
	totalM  int64
}

// NewMetrics creates an empty sink.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.init()
	return m
}

// init allocates the counter maps (shared by NewMetrics and Reset).
func (m *Metrics) init() {
	m.bytes = make(map[string]int64)
	m.msgs = make(map[string]int64)
	m.windows = make(map[string]map[int]*windowCounters)
	m.scopes = make(map[string]*scopeAgg)
	m.phaseM = make(map[string]int64)
}

// window returns (creating if needed) the live counters of one window of
// one scope. Callers hold m.mu.
func (m *Metrics) window(scope string, window int) *windowCounters {
	ws := m.windows[scope]
	if ws == nil {
		ws = make(map[int]*windowCounters)
		m.windows[scope] = ws
	}
	wc := ws[window]
	if wc == nil {
		wc = &windowCounters{}
		ws[window] = wc
	}
	return wc
}

// scope returns (creating if needed) one scope's running aggregates.
// Callers hold m.mu.
func (m *Metrics) scope(scope string) *scopeAgg {
	sa := m.scopes[scope]
	if sa == nil {
		sa = &scopeAgg{}
		m.scopes[scope] = sa
	}
	return sa
}

func (m *Metrics) recordSend(party, tag string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes[party] += int64(n)
	m.msgs[party]++
	if scope, w, rest, ok := ParseScopedWindowTag(tag); ok {
		wc := m.window(scope, w)
		wc.bytes += int64(n)
		wc.msgs++
		sa := m.scope(scope)
		sa.bytes += int64(n)
		sa.msgs++
		m.phaseM[phaseOf(rest)]++
	}
	m.totalB += int64(n)
	m.totalM++
}

// phaseOf maps a bare protocol tag onto its protocol phase — the first path
// segment: "role" (Protocol 1's announcements), "pme" (Protocol 2), "pp"
// (Protocol 3), "pd" (Protocol 4).
func phaseOf(rest string) string {
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[:i]
		}
	}
	return rest
}

// RecordVirtual folds one virtual-clock observation into a window's
// critical-path maxima: the network-emulation layer calls it as message
// deliveries advance the per-party clocks, so the stored values converge to
// the window's longest dependency chain (rounds) and its virtual end time
// (latency). The scope's latency sum is maintained incrementally alongside,
// so it survives later compaction of the window's counters.
func (m *Metrics) RecordVirtual(scope string, window int, latency time.Duration, rounds int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wc := m.window(scope, window)
	if latency > wc.lat {
		m.scope(scope).lat += latency - wc.lat
		wc.lat = latency
	}
	if rounds > wc.rounds {
		wc.rounds = rounds
	}
}

// FoldWindow compacts one completed window's per-window counters. Every
// aggregate the window contributed to — scope bytes/messages/latency, phase
// and party counters, totals — is maintained incrementally and unaffected;
// only the per-(scope, window) queries for that window return zero
// afterwards. The engine calls it (under Config.CompactWindowMetrics) once
// a window's figures have been copied into its WindowResult, which bounds
// the sink's memory by the windows in flight instead of the windows run.
func (m *Metrics) FoldWindow(scope string, window int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ws := m.windows[scope]; ws != nil {
		delete(ws, window)
		if len(ws) == 0 {
			delete(m.windows, scope)
		}
	}
}

// DropScope discards one scope's aggregates and any remaining per-window
// counters. The grid supervisor calls it after folding a coalition's
// figures into its CoalitionRun, so a long live-grid run does not retain
// one map entry per (epoch, coalition) scope forever. Party, phase and
// total counters are unaffected.
func (m *Metrics) DropScope(scope string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.scopes, scope)
	delete(m.windows, scope)
}

// WindowBytes returns the bytes sent so far within one window's tag
// namespace (unscoped form), across all parties. Re-running the same window
// number on the same sink accumulates; callers that need a per-run figure
// should diff before/after values.
func (m *Metrics) WindowBytes(window int) int64 {
	return m.ScopedWindowBytes("", window)
}

// ScopedWindowBytes returns the bytes sent within one window of one scope.
// The empty scope reads the unscoped (solo-engine) namespace. Zero once the
// window has been folded (FoldWindow).
func (m *Metrics) ScopedWindowBytes(scope string, window int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if wc := m.windows[scope][window]; wc != nil {
		return wc.bytes
	}
	return 0
}

// ScopedWindowMessages returns the messages sent within one window of one
// scope, mirroring ScopedWindowBytes.
func (m *Metrics) ScopedWindowMessages(scope string, window int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if wc := m.windows[scope][window]; wc != nil {
		return wc.msgs
	}
	return 0
}

// WindowVirtualLatency returns one window's critical-path virtual latency
// over the emulated network — the longest chain of link delays any party
// waited out. Zero when the run is not emulated.
func (m *Metrics) WindowVirtualLatency(scope string, window int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if wc := m.windows[scope][window]; wc != nil {
		return wc.lat
	}
	return 0
}

// WindowRounds returns one window's protocol round count: the longest
// message dependency chain observed on the emulated network. Zero when the
// run is not emulated.
func (m *Metrics) WindowRounds(scope string, window int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if wc := m.windows[scope][window]; wc != nil {
		return wc.rounds
	}
	return 0
}

// ScopeBytes returns the total window-tagged bytes sent under one scope —
// one coalition's protocol traffic on a shared bus. The empty scope covers
// solo-engine traffic.
func (m *Metrics) ScopeBytes(scope string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sa := m.scopes[scope]; sa != nil {
		return sa.bytes
	}
	return 0
}

// ScopeMessages returns the total window-tagged messages sent under one
// scope, mirroring ScopeBytes.
func (m *Metrics) ScopeMessages(scope string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sa := m.scopes[scope]; sa != nil {
		return sa.msgs
	}
	return 0
}

// ScopeVirtualLatency sums one scope's per-window critical-path latencies —
// the virtual duration of the scope's trading day if its windows ran
// back-to-back on the emulated network. Zero when the run is not emulated.
func (m *Metrics) ScopeVirtualLatency(scope string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sa := m.scopes[scope]; sa != nil {
		return sa.lat
	}
	return 0
}

// TotalBytes returns the total bytes sent across all parties.
func (m *Metrics) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalB
}

// TotalMessages returns the total number of messages sent.
func (m *Metrics) TotalMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalM
}

// PartyBytes returns the bytes sent by one party.
func (m *Metrics) PartyBytes(party string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes[party]
}

// PartyMessages returns the number of messages sent by one party.
func (m *Metrics) PartyMessages(party string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.msgs[party]
}

// Snapshot returns a copy of the per-party byte counters.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.bytes))
	for k, v := range m.bytes {
		out[k] = v
	}
	return out
}

// PhaseMessages returns a copy of the per-protocol-phase message counters,
// keyed by the first segment of the bare protocol tag ("role", "pme", "pp",
// "pd"). Phases aggregate across all scopes and windows; they expose each
// protocol's share of the message volume, the communication-cost figure's
// round-structure breakdown.
func (m *Metrics) PhaseMessages() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.phaseM))
	for k, v := range m.phaseM {
		out[k] = v
	}
	return out
}

// LiveWindows reports how many (scope, window) counter entries the sink
// currently retains — the figure FoldWindow bounds. Tests use it to assert
// the compaction contract; it is not a traffic metric.
func (m *Metrics) LiveWindows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ws := range m.windows {
		n += len(ws)
	}
	return n
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	m.totalB = 0
	m.totalM = 0
}
