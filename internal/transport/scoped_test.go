package transport

import (
	"context"
	"testing"
	"time"
)

func TestScopedWindowTagRoundTrip(t *testing.T) {
	cases := []struct {
		scope  string
		window int
		tag    string
	}{
		{"", 0, "role"},
		{"", 41, "pme/rb"},
		{"c0", 0, "role"},
		{"c17", 311, "pd/ratios"},
		{"shard-2.east", 5, "pp/ring"},
	}
	for _, c := range cases {
		full := ScopedWindowTag(c.scope, c.window, c.tag)
		scope, w, rest, ok := ParseScopedWindowTag(full)
		if !ok || scope != c.scope || w != c.window || rest != c.tag {
			t.Errorf("round trip %+v -> %q -> (%q, %d, %q, %v)", c, full, scope, w, rest, ok)
		}
	}
	// The unscoped form must be byte-identical to PR 1's WindowTag, so solo
	// engines keep their wire format.
	if got, want := ScopedWindowTag("", 7, "role"), WindowTag(7, "role"); got != want {
		t.Errorf("empty scope tag = %q, want %q", got, want)
	}
	for _, bad := range []string{"keys/paillier", "role", "c3/role", "c3/wx/role", "/w1/role", "a b/w1/role", "w2/w1/role"} {
		if scope, w, rest, ok := ParseScopedWindowTag(bad); ok && scope != "" {
			t.Errorf("ParseScopedWindowTag accepted %q as scoped (%q, %d, %q)", bad, scope, w, rest)
		}
	}
}

func TestValidScope(t *testing.T) {
	for _, good := range []string{"c0", "c17", "grid", "shard-2.east", "A_9"} {
		if !ValidScope(good) {
			t.Errorf("ValidScope(%q) = false", good)
		}
	}
	// "w<n>" shapes collide with the window namespace; separators and
	// spaces would break tag parsing.
	for _, bad := range []string{"", "w0", "w17", "a/b", "a b", "ü"} {
		if ValidScope(bad) {
			t.Errorf("ValidScope(%q) = true", bad)
		}
	}
	// "w" followed by non-digits is a fine scope.
	if !ValidScope("west") || !ValidScope("w2x") {
		t.Error("ValidScope rejected w-prefixed non-window scopes")
	}
}

// TestScopedMetricsIsolation is the accounting half of the coalition
// namespace guarantee: two coalitions running the same window number over
// one bus keep disjoint byte counters.
func TestScopedMetricsIsolation(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	bus.MustRegister("b")
	ctx := context.Background()

	send := func(tag string, n int) {
		t.Helper()
		if err := a.Send(ctx, "b", tag, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	send(ScopedWindowTag("c0", 3, "role"), 100)
	send(ScopedWindowTag("c1", 3, "role"), 1000)
	send(WindowTag(3, "role"), 10)
	send("keys/paillier", 7) // session-scoped: counted only in totals

	m := bus.Metrics()
	w0 := m.ScopedWindowBytes("c0", 3)
	w1 := m.ScopedWindowBytes("c1", 3)
	solo := m.WindowBytes(3)
	if w0 == 0 || w1 == 0 || solo == 0 {
		t.Fatalf("missing attribution: c0=%d c1=%d solo=%d", w0, w1, solo)
	}
	if w1-w0 != 900 || w0-solo != int64(90+len("c0/")) {
		t.Errorf("cross-scope counters mixed: c0=%d c1=%d solo=%d", w0, w1, solo)
	}
	if got := m.ScopeBytes("c0"); got != w0 {
		t.Errorf("ScopeBytes(c0) = %d, want %d", got, w0)
	}
	if got := m.ScopeBytes(""); got != solo {
		t.Errorf("ScopeBytes(\"\") = %d, want %d", got, solo)
	}
	if m.TotalBytes() <= w0+w1+solo {
		t.Errorf("total %d should also include session traffic", m.TotalBytes())
	}
}

// TestScopedMailboxIsolation checks the demultiplexing half: same (from,
// window, tag) in two scopes lands in two distinct queues.
func TestScopedMailboxIsolation(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	b := bus.MustRegister("b")
	ctx := context.Background()

	if err := a.Send(ctx, "b", ScopedWindowTag("c1", 0, "role"), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", ScopedWindowTag("c0", 0, "role"), []byte{0}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx, "a", ScopedWindowTag("c0", 0, "role"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("scope c0 received scope c1's message: %v", got)
	}
}

// TestFoldWindowKeepsAggregates is the compaction contract: folding a
// completed window zeroes only that window's per-window queries while every
// aggregate it fed — scope, party, phase, total — stays exact.
func TestFoldWindowKeepsAggregates(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	bus.MustRegister("b")
	ctx := context.Background()

	send := func(tag string, n int) {
		t.Helper()
		if err := a.Send(ctx, "b", tag, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	send(ScopedWindowTag("c0", 1, "role"), 100)
	send(ScopedWindowTag("c0", 2, "pme/x"), 200)
	send(ScopedWindowTag("c1", 1, "role"), 50)

	m := bus.Metrics()
	m.RecordVirtual("c0", 1, 5*time.Second, 3)
	m.RecordVirtual("c0", 2, 7*time.Second, 4)

	scopeB := m.ScopeBytes("c0")
	scopeM := m.ScopeMessages("c0")
	scopeLat := m.ScopeVirtualLatency("c0")
	totalB, totalM := m.TotalBytes(), m.TotalMessages()
	phases := m.PhaseMessages()
	if m.LiveWindows() != 3 {
		t.Fatalf("LiveWindows = %d, want 3", m.LiveWindows())
	}

	m.FoldWindow("c0", 1)

	if got := m.ScopedWindowBytes("c0", 1); got != 0 {
		t.Errorf("folded window still reports %d bytes", got)
	}
	if got := m.WindowVirtualLatency("c0", 1); got != 0 {
		t.Errorf("folded window still reports latency %v", got)
	}
	if got := m.WindowRounds("c0", 1); got != 0 {
		t.Errorf("folded window still reports %d rounds", got)
	}
	if m.LiveWindows() != 2 {
		t.Errorf("LiveWindows = %d after fold, want 2", m.LiveWindows())
	}
	// Unfolded state is untouched.
	if got := m.ScopedWindowBytes("c0", 2); got == 0 {
		t.Error("unfolded window lost its bytes")
	}
	if got := m.ScopedWindowBytes("c1", 1); got == 0 {
		t.Error("other scope lost its bytes")
	}
	// Aggregates survive exactly.
	if m.ScopeBytes("c0") != scopeB || m.ScopeMessages("c0") != scopeM {
		t.Errorf("scope aggregates changed: %d/%d vs %d/%d",
			m.ScopeBytes("c0"), m.ScopeMessages("c0"), scopeB, scopeM)
	}
	if m.ScopeVirtualLatency("c0") != scopeLat {
		t.Errorf("scope latency changed: %v vs %v", m.ScopeVirtualLatency("c0"), scopeLat)
	}
	if m.TotalBytes() != totalB || m.TotalMessages() != totalM {
		t.Error("totals changed across fold")
	}
	for k, v := range phases {
		if m.PhaseMessages()[k] != v {
			t.Errorf("phase %q changed across fold", k)
		}
	}
	// Folding is idempotent and tolerant of unknown keys.
	m.FoldWindow("c0", 1)
	m.FoldWindow("nope", 9)
}

// TestDropScope checks that retiring a coalition's scope discards its
// aggregates and remaining windows without touching other scopes or totals.
func TestDropScope(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	bus.MustRegister("b")
	ctx := context.Background()

	if err := a.Send(ctx, "b", ScopedWindowTag("c0", 1, "role"), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", ScopedWindowTag("c1", 1, "role"), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	m := bus.Metrics()
	totalB := m.TotalBytes()

	m.DropScope("c0")
	if m.ScopeBytes("c0") != 0 || m.ScopedWindowBytes("c0", 1) != 0 {
		t.Error("dropped scope still has counters")
	}
	if m.ScopeBytes("c1") == 0 {
		t.Error("other scope lost its counters")
	}
	if m.TotalBytes() != totalB {
		t.Error("totals changed across DropScope")
	}
	if m.LiveWindows() != 1 {
		t.Errorf("LiveWindows = %d after drop, want 1", m.LiveWindows())
	}
}
