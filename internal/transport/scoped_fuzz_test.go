package transport

import (
	"math"
	"strconv"
	"testing"
)

// TestScopedWindowTagBoundaries pins the parser's edges: extreme window
// numbers, canonicalization of non-canonical digit strings, and the
// scope/window shapes that must never parse.
func TestScopedWindowTagBoundaries(t *testing.T) {
	// Largest representable window survives a round trip in both forms.
	huge := math.MaxInt
	for _, scope := range []string{"", "c99"} {
		full := ScopedWindowTag(scope, huge, "pd/ratios")
		s, w, rest, ok := ParseScopedWindowTag(full)
		if !ok || s != scope || w != huge || rest != "pd/ratios" {
			t.Errorf("max-window round trip failed: %q -> (%q, %d, %q, %v)", full, s, w, rest, ok)
		}
	}

	// Non-canonical digits parse (Atoi semantics) but re-encode to the
	// canonical form; the parse of the re-encoding must be a fixed point.
	for _, tag := range []string{"w007/x", "w+3/x", "c0/w007/x"} {
		s, w, rest, ok := ParseScopedWindowTag(tag)
		if !ok {
			continue // rejecting non-canonical digits is also acceptable
		}
		re := ScopedWindowTag(s, w, rest)
		s2, w2, rest2, ok2 := ParseScopedWindowTag(re)
		if !ok2 || s2 != s || w2 != w || rest2 != rest {
			t.Errorf("canonicalization not a fixed point: %q -> %q -> (%q, %d, %q, %v)", tag, re, s2, w2, rest2, ok2)
		}
	}

	// Shapes that must never parse as window-scoped.
	for _, bad := range []string{
		"",                            // empty
		"w",                           // no window digits, no rest
		"w1",                          // window with no rest separator
		"w-1/x",                       // negative window
		"w1x/y",                       // trailing junk in the window number
		"/w1/x",                       // empty scope
		"a b/w1/x",                    // invalid scope byte
		"c0//x",                       // scope present but no window namespace
		"c0/x",                        // scope with unscoped rest
		"c0/c1/w1/x",                  // two scope segments
		"w999999999999999999999999/x", // overflows Atoi
	} {
		if s, w, rest, ok := ParseScopedWindowTag(bad); ok {
			t.Errorf("ParseScopedWindowTag(%q) accepted as (%q, %d, %q)", bad, s, w, rest)
		}
	}

	// The window-number digits boundary: wN parses for every N the encoder
	// can emit, including 0.
	for _, w := range []int{0, 1, 9, 10, 12345} {
		tag := "w" + strconv.Itoa(w) + "/t"
		if s, got, rest, ok := ParseScopedWindowTag(tag); !ok || s != "" || got != w || rest != "t" {
			t.Errorf("ParseScopedWindowTag(%q) = (%q, %d, %q, %v)", tag, s, got, rest, ok)
		}
	}
}

// FuzzParseScopedWindowTag checks the tag parser never panics, that every
// accepted tag satisfies the parser's own invariants, and that parsing is a
// fixed point under re-encoding — the property the metrics attribution and
// the netem lane keys both rely on.
func FuzzParseScopedWindowTag(f *testing.F) {
	f.Add("w0/role")
	f.Add("w41/pme/rb")
	f.Add("c07/w3/pd/ratios")
	f.Add("e02-c11/w719/pd/energy")
	f.Add("keys/paillier")
	f.Add("w2/w1/role")
	f.Add("w007/x")
	f.Add("")
	f.Add("/w1/x")
	f.Add("w-1/x")
	f.Fuzz(func(t *testing.T, tag string) {
		scope, w, rest, ok := ParseScopedWindowTag(tag)
		if !ok {
			return
		}
		if w < 0 {
			t.Fatalf("accepted negative window %d from %q", w, tag)
		}
		if scope != "" && !ValidScope(scope) {
			t.Fatalf("accepted invalid scope %q from %q", scope, tag)
		}
		re := ScopedWindowTag(scope, w, rest)
		s2, w2, rest2, ok2 := ParseScopedWindowTag(re)
		if !ok2 || s2 != scope || w2 != w || rest2 != rest {
			t.Fatalf("re-encode of %q not a parse fixed point: %q -> (%q, %d, %q, %v)",
				tag, re, s2, w2, rest2, ok2)
		}
		// The two-level parsers must agree: the unscoped parser sees the
		// same (window, rest) once the scope prefix is stripped.
		inner := re
		if scope != "" {
			inner = re[len(scope)+1:]
		}
		if w3, rest3, ok3 := ParseWindowTag(inner); !ok3 || w3 != w || rest3 != rest {
			t.Fatalf("ParseWindowTag disagrees on %q: (%d, %q, %v)", inner, w3, rest3, ok3)
		}
	})
}
