package transport

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines waits for the runtime's goroutine count to stop moving
// and returns it.
func settleGoroutines() int {
	var n int
	for i := 0; i < 100; i++ {
		n = runtime.NumGoroutine()
		time.Sleep(10 * time.Millisecond)
		if runtime.NumGoroutine() == n {
			break
		}
	}
	return n
}

// TestTCPNoGoroutineLeakOnCancelledRecvAny is the transport-lifecycle
// regression test mirroring the paillier.Workers leak test: repeatedly
// standing up a TCP node pair, cancelling a RecvAny mid-wait, exchanging a
// frame and tearing everything down must not accumulate goroutines —
// neither the mailbox waiter nor the accept/read loops may outlive Close.
func TestTCPNoGoroutineLeakOnCancelledRecvAny(t *testing.T) {
	cycle := func() {
		a, err := ListenTCP("a", "127.0.0.1:0", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ListenTCP("b", "127.0.0.1:0", map[string]string{"a": a.Addr()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		a.SetPeer("b", b.Addr())

		// A receiver parked in RecvAny with nothing inbound, killed by
		// context cancellation mid-wait.
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, _, err := a.RecvAny(ctx, "never", []string{"b"})
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err == nil {
				t.Error("cancelled RecvAny returned nil error")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("RecvAny not unblocked by cancellation")
		}

		// The node must still work after the cancelled wait (the abandoned
		// waiter channel may not wedge the mailbox), and a real frame wakes
		// a live RecvAny.
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		if err := b.Send(sctx, "a", "t", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if from, msg, err := a.RecvAny(sctx, "t", []string{"b"}); err != nil || from != "b" || string(msg) != "x" {
			t.Fatalf("post-cancel RecvAny: %q/%q, %v", from, msg, err)
		}

		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cycle() // warm-up: lazily-started runtime goroutines don't count
	before := settleGoroutines()
	for i := 0; i < 5; i++ {
		cycle()
	}
	after := settleGoroutines()
	if after > before+2 {
		t.Errorf("goroutines grew from %d to %d across TCP cancel/close cycles", before, after)
	}
}
