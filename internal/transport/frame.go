package transport

import (
	"math/bits"
	"sync"
)

// Pooled frame buffers: every payload that crosses a Conn in the
// steady-state window loop — masked shares, fixed-width ciphertexts, role
// bytes, ratio vectors — is short-lived and of a handful of recurring
// sizes, which makes per-message make([]byte, …) pure allocator churn. The
// frame pool recycles those buffers through size-classed sync.Pools
// (powers of two from 64 B to 1 MiB), so a window's wire traffic settles
// into zero steady-state allocations.
//
// Ownership contract (the zero-copy hand-off rules documented on Conn):
//
//   - GetFrame(n) hands the caller exclusive ownership of a length-n buffer
//     with UNSPECIFIED contents — callers must overwrite every byte they
//     later read;
//   - PutFrame(b) returns ownership to the pool. It must be called at most
//     once per buffer, only by the current owner, and never while any other
//     reference to the buffer is live — a double put is a data race that
//     `go test -race` will catch at the point of reuse;
//   - PutFrame accepts any slice but silently drops those it does not
//     recognize as pool-shaped (capacity not an exact in-range power of
//     two), so handing it a payload of unknown provenance is always safe:
//     worst case the buffer falls back to the garbage collector, which is
//     exactly the pre-pool behaviour.
const (
	frameClassMin = 6  // 64 B — smaller frames round up
	frameClassMax = 20 // 1 MiB — larger frames bypass the pool
)

// frameBox carries a pooled buffer through sync.Pool without boxing the
// slice header on every Put (a *frameBox is a single word in an interface).
// Empty boxes recirculate through boxPool so the steady state allocates
// neither buffers nor boxes.
type frameBox struct{ buf []byte }

var (
	framePools [frameClassMax + 1]sync.Pool
	boxPool    = sync.Pool{New: func() any { return new(frameBox) }}
)

// GetFrame returns a buffer of length n with unspecified contents, owned
// exclusively by the caller until handed off or returned with PutFrame.
// n ≤ 0 returns nil; oversized requests fall back to a plain allocation
// (PutFrame will ignore them).
func GetFrame(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := frameClassMin
	if n > 1<<frameClassMin {
		c = bits.Len(uint(n - 1))
		if c > frameClassMax {
			return make([]byte, n)
		}
	}
	if v := framePools[c].Get(); v != nil {
		f := v.(*frameBox)
		buf := f.buf
		f.buf = nil
		boxPool.Put(f)
		return buf[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutFrame returns a buffer obtained from GetFrame to the pool. Slices the
// pool does not recognize are dropped for the garbage collector, so calling
// it on any received payload is safe; calling it twice on the same pooled
// buffer is not (see the ownership contract above).
func PutFrame(b []byte) {
	c := cap(b)
	if c < 1<<frameClassMin || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls > frameClassMax {
		return
	}
	f := boxPool.Get().(*frameBox)
	f.buf = b[:0]
	framePools[cls].Put(f)
}
