package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestRecvAnyArrivalOrder(t *testing.T) {
	bus := NewBus(nil)
	sink := bus.MustRegister("sink")
	b := bus.MustRegister("b")
	c := bus.MustRegister("c")
	ctx := context.Background()

	// Only c has sent: RecvAny must return c's message even though b is
	// listed first — no head-of-line blocking on roster order.
	if err := c.Send(ctx, "sink", "t", []byte("from-c")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := sink.RecvAny(ctx, "t", []string{"b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if from != "c" || string(payload) != "from-c" {
		t.Fatalf("got %q/%q", from, payload)
	}

	// Now b's late message is drained by the next call.
	if err := b.Send(ctx, "sink", "t", []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	from, payload, err = sink.RecvAny(ctx, "t", []string{"b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if from != "b" || string(payload) != "from-b" {
		t.Fatalf("got %q/%q", from, payload)
	}
}

func TestRecvAnyBlocksUntilArrival(t *testing.T) {
	bus := NewBus(nil)
	sink := bus.MustRegister("sink")
	b := bus.MustRegister("b")
	ctx := context.Background()

	type result struct {
		from    string
		payload []byte
		err     error
	}
	done := make(chan result, 1)
	go func() {
		from, payload, err := sink.RecvAny(ctx, "t", []string{"b", "c"})
		done <- result{from, payload, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("RecvAny returned early: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}
	if err := b.Send(ctx, "sink", "t", []byte("late")); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil || r.from != "b" || string(r.payload) != "late" {
		t.Fatalf("got %+v", r)
	}
}

func TestRecvAnyIgnoresOtherTagsAndPeers(t *testing.T) {
	bus := NewBus(nil)
	sink := bus.MustRegister("sink")
	b := bus.MustRegister("b")
	c := bus.MustRegister("c")
	ctx := context.Background()

	// Wrong tag, and a peer outside the listed set: both must not satisfy
	// the RecvAny.
	if err := b.Send(ctx, "sink", "other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(ctx, "sink", "t", []byte("y")); err != nil {
		t.Fatal(err)
	}
	tctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if from, _, err := sink.RecvAny(tctx, "t", []string{"b"}); err == nil {
		t.Fatalf("RecvAny matched unexpected message from %q", from)
	}
	// The buffered messages are still available to the right receivers.
	if msg, err := sink.Recv(ctx, "b", "other"); err != nil || string(msg) != "x" {
		t.Fatalf("Recv b/other: %q, %v", msg, err)
	}
	if from, msg, err := sink.RecvAny(ctx, "t", []string{"b", "c"}); err != nil || from != "c" || string(msg) != "y" {
		t.Fatalf("RecvAny: %q/%q, %v", from, msg, err)
	}
}

func TestRecvAnyEmptyPeerSet(t *testing.T) {
	bus := NewBus(nil)
	sink := bus.MustRegister("sink")
	if _, _, err := sink.RecvAny(context.Background(), "t", nil); err == nil {
		t.Fatal("empty peer set accepted")
	}
}

func TestRecvAnyCloseUnblocks(t *testing.T) {
	bus := NewBus(nil)
	sink := bus.MustRegister("sink")
	errc := make(chan error, 1)
	go func() {
		_, _, err := sink.RecvAny(context.Background(), "t", []string{"b"})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sink.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RecvAny not unblocked by Close")
	}
}

func TestTCPRecvAny(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", map[string]string{"a": a.Addr()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	if err := b.Send(ctx, "a", "t", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := a.RecvAny(ctx, "t", []string{"zzz", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if from != "b" || string(payload) != "hi" {
		t.Fatalf("got %q/%q", from, payload)
	}
}

// TestTCPStalledPeerDoesNotBlockHealthySends is the regression test for
// the node-wide write lock: a send blocked on a stalled peer's socket must
// not serialize sends to healthy peers.
func TestTCPStalledPeerDoesNotBlockHealthySends(t *testing.T) {
	node, err := ListenTCP("sender", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	healthy, err := ListenTCP("healthy", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	// The stalled peer accepts connections but never reads from them, so a
	// large enough frame fills the kernel buffers and blocks the writer.
	stalled, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	acceptDone := make(chan net.Conn, 1)
	go func() {
		c, err := stalled.Accept()
		if err == nil {
			acceptDone <- c // held open, never read
		}
	}()

	node.SetPeer("healthy", healthy.Addr())
	node.SetPeer("stalled", stalled.Addr().String())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Saturate the stalled connection in the background: a 32 MB frame
	// cannot fit in the socket buffers, so this Send blocks inside
	// writeFrame.
	stalledErr := make(chan error, 1)
	go func() {
		stalledErr <- node.Send(ctx, "stalled", "bulk", make([]byte, 32<<20))
	}()

	// Give the bulk send time to reach the blocking write.
	time.Sleep(100 * time.Millisecond)

	// A healthy-peer send must complete promptly even while the bulk write
	// is stuck. With the old node-wide write lock this deadlines.
	start := time.Now()
	if err := node.Send(ctx, "healthy", "ping", []byte("x")); err != nil {
		t.Fatalf("healthy send failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("healthy send took %v behind a stalled peer", elapsed)
	}
	if msg, err := healthy.Recv(ctx, "sender", "ping"); err != nil || !bytes.Equal(msg, []byte("x")) {
		t.Fatalf("healthy recv: %q, %v", msg, err)
	}

	// Unblock the stalled writer so the node can shut down cleanly: closing
	// the peer's end of the connection makes the blocked write fail.
	cancel()
	select {
	case c := <-acceptDone:
		c.Close()
	case <-time.After(5 * time.Second):
	}
	select {
	case <-stalledErr:
	case <-time.After(10 * time.Second):
		// node.Close (deferred) tears the connection down regardless.
	}
}

// FuzzReadFrame checks the frame decoder never panics on corrupt input and
// that every accepted frame survives a write/read round trip.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, Message{From: "a", To: "b", Tag: "w1/t", Payload: []byte("payload")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 6, 0, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		msg, err := readFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeFrame(&out, msg); err != nil {
			// A decoded frame is within all field limits by construction.
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		back, err := readFrame(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.From != msg.From || back.To != msg.To || back.Tag != msg.Tag || !bytes.Equal(back.Payload, msg.Payload) {
			t.Fatal("round trip changed frame")
		}
	})
}
