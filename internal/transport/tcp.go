package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// frameHeaderSize is the fixed framing overhead per message: a 4-byte total
// length plus three 2-byte field lengths (from, to, tag).
const frameHeaderSize = 4 + 2 + 2 + 2

// maxFrameSize bounds a single message; PEM messages are ciphertexts and
// garbled-circuit tables, comfortably below this.
const maxFrameSize = 64 << 20

// TCPNode is a Conn implementation backed by real TCP sockets. Each node
// listens on its own address and lazily dials peers from a static roster,
// mirroring how the paper's per-agent Docker containers communicate.
type TCPNode struct {
	party   string
	ln      net.Listener
	roster  map[string]string // party -> address
	mbox    *mailbox
	metrics *Metrics

	mu      sync.Mutex
	conns   map[string]*tcpConn   // outbound connections
	inbound map[net.Conn]struct{} // accepted connections (closed on Close)

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

var _ Conn = (*TCPNode)(nil)

// tcpConn pairs an outbound connection with its own write mutex so that a
// frame in flight to one peer never serializes sends to other peers. Only
// frame writes need the lock: each connection has exactly one writer path
// (Send) and the mutex keeps concurrent frames to the same peer from
// interleaving mid-frame.
type tcpConn struct {
	net.Conn
	wmu sync.Mutex
}

func (c *tcpConn) writeFrame(msg Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.Conn, msg)
}

// ListenTCP starts a node for party on addr (e.g. "127.0.0.1:0"). roster
// maps every peer party to its dialable address; it may include the local
// party (ignored). If metrics is nil a fresh sink is used.
func ListenTCP(party, addr string, roster map[string]string, metrics *Metrics) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if metrics == nil {
		metrics = NewMetrics()
	}
	r := make(map[string]string, len(roster))
	for k, v := range roster {
		r[k] = v
	}
	n := &TCPNode{
		party:   party,
		ln:      ln,
		roster:  r,
		mbox:    newMailbox(),
		metrics: metrics,
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer adds or updates a peer address in the roster.
func (n *TCPNode) SetPeer(party, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.roster[party] = addr
}

// Party implements Conn.
func (n *TCPNode) Party() string { return n.party }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(conn)
		}()
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	for {
		msg, err := readFrame(conn)
		if err != nil {
			return
		}
		if msg.To != n.party {
			continue // misrouted frame; drop
		}
		if n.mbox.push(msg) != nil {
			return
		}
	}
}

// Send implements Conn.
func (n *TCPNode) Send(ctx context.Context, to, tag string, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case <-n.closed:
		return ErrClosed
	default:
	}
	conn, err := n.dial(ctx, to)
	if err != nil {
		return err
	}
	msg := Message{From: n.party, To: to, Tag: tag, Payload: payload}
	// Only this connection's write mutex is held across the (potentially
	// blocking) network write: a stalled peer cannot delay sends to healthy
	// ones.
	if err := conn.writeFrame(msg); err != nil {
		// Connection broke: drop it so the next Send re-dials.
		n.mu.Lock()
		if c, ok := n.conns[to]; ok && c == conn {
			delete(n.conns, to)
			c.Close()
		}
		n.mu.Unlock()
		return fmt.Errorf("transport: send to %q: %w", to, err)
	}
	n.metrics.recordSend(n.party, tag, msg.wireSize())
	return nil
}

func (n *TCPNode) dial(ctx context.Context, to string) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.roster[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownParty, to)
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q (%s): %w", to, addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.conns[to]; ok {
		c.Close()
		return existing, nil
	}
	tc := &tcpConn{Conn: c}
	n.conns[to] = tc
	return tc, nil
}

// Recv implements Conn.
func (n *TCPNode) Recv(ctx context.Context, from, tag string) ([]byte, error) {
	return n.mbox.pop(ctx, from, tag)
}

// RecvAny implements Conn.
func (n *TCPNode) RecvAny(ctx context.Context, tag string, froms []string) (string, []byte, error) {
	return n.mbox.popAny(ctx, tag, froms)
}

// Close implements Conn. It stops the accept loop, closes all connections
// and waits for reader goroutines to exit.
func (n *TCPNode) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.ln.Close()
		n.mu.Lock()
		for _, c := range n.conns {
			c.Close()
		}
		n.conns = make(map[string]*tcpConn)
		// Closing inbound connections unblocks their readLoops; without
		// this, Close deadlocks waiting for readers whose peers close
		// after us.
		for c := range n.inbound {
			c.Close()
		}
		n.mu.Unlock()
		n.mbox.close()
	})
	n.wg.Wait()
	return nil
}

// writeFrame encodes msg as:
//
//	u32 totalLen | u16 fromLen | u16 toLen | u16 tagLen | from | to | tag | payload
func writeFrame(w io.Writer, msg Message) error {
	fromB, toB, tagB := []byte(msg.From), []byte(msg.To), []byte(msg.Tag)
	if len(fromB) > 0xffff || len(toB) > 0xffff || len(tagB) > 0xffff {
		return errors.New("transport: address field too long")
	}
	total := 6 + len(fromB) + len(toB) + len(tagB) + len(msg.Payload)
	if total > maxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	buf := GetFrame(4 + total)
	defer PutFrame(buf)
	binary.BigEndian.PutUint32(buf[0:], uint32(total))
	binary.BigEndian.PutUint16(buf[4:], uint16(len(fromB)))
	binary.BigEndian.PutUint16(buf[6:], uint16(len(toB)))
	binary.BigEndian.PutUint16(buf[8:], uint16(len(tagB)))
	off := 10
	off += copy(buf[off:], fromB)
	off += copy(buf[off:], toB)
	off += copy(buf[off:], tagB)
	copy(buf[off:], msg.Payload)
	_, err := w.Write(buf)
	return err
}

// readFrame decodes one frame from r.
func readFrame(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < 6 || total > maxFrameSize {
		return Message{}, fmt.Errorf("transport: bad frame length %d", total)
	}
	body := GetFrame(int(total))
	defer PutFrame(body)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	fromLen := int(binary.BigEndian.Uint16(body[0:]))
	toLen := int(binary.BigEndian.Uint16(body[2:]))
	tagLen := int(binary.BigEndian.Uint16(body[4:]))
	if 6+fromLen+toLen+tagLen > int(total) {
		return Message{}, errors.New("transport: frame field lengths exceed body")
	}
	off := 6
	from := string(body[off : off+fromLen])
	off += fromLen
	to := string(body[off : off+toLen])
	off += toLen
	tag := string(body[off : off+tagLen])
	off += tagLen
	// The payload gets its own pooled frame (ownership passes to the
	// receiver, who may PutFrame it after decoding); the transient body
	// frame is recycled here.
	payload := GetFrame(len(body) - off)
	copy(payload, body[off:])
	return Message{From: from, To: to, Tag: tag, Payload: payload}, nil
}
