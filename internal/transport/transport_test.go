package transport

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBusSendRecv(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("alice")
	b := bus.MustRegister("bob")
	ctx := context.Background()

	if err := a.Send(ctx, "bob", "greet", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx, "alice", "greet")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestBusDuplicateRegistration(t *testing.T) {
	bus := NewBus(nil)
	if _, err := bus.Register("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("x"); err == nil {
		t.Error("duplicate registration: want error")
	}
}

func TestBusUnknownParty(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	if err := a.Send(context.Background(), "ghost", "t", nil); err == nil {
		t.Error("send to unknown party: want error")
	}
}

func TestBusTagDemux(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	b := bus.MustRegister("b")
	ctx := context.Background()

	// Interleave tags; Recv must pick the matching one regardless of
	// arrival order.
	if err := a.Send(ctx, "b", "t2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", "t1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	got1, err := b.Recv(ctx, "a", "t1")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := b.Recv(ctx, "a", "t2")
	if err != nil {
		t.Fatal(err)
	}
	if string(got1) != "one" || string(got2) != "two" {
		t.Errorf("demux: got %q, %q", got1, got2)
	}
}

func TestBusFIFOPerTag(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	b := bus.MustRegister("b")
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := a.Send(ctx, "b", "seq", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := b.Recv(ctx, "a", "seq")
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("out of order: want %d got %d", i, got[0])
		}
	}
}

func TestBusBlockingRecv(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	b := bus.MustRegister("b")
	ctx := context.Background()

	done := make(chan []byte, 1)
	go func() {
		got, err := b.Recv(ctx, "a", "later")
		if err != nil {
			done <- nil
			return
		}
		done <- got
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Send(ctx, "b", "later", []byte("now")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if string(got) != "now" {
			t.Errorf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv never returned")
	}
}

func TestBusRecvContextCancel(t *testing.T) {
	bus := NewBus(nil)
	b := bus.MustRegister("b")
	bus.MustRegister("a")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx, "a", "never"); err == nil {
		t.Error("Recv past deadline: want error")
	}
}

func TestBusCloseUnblocksRecv(t *testing.T) {
	bus := NewBus(nil)
	b := bus.MustRegister("b")
	bus.MustRegister("a")
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv(context.Background(), "a", "x")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("Recv after close: want error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
}

func TestBusPayloadCopied(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	b := bus.MustRegister("b")
	ctx := context.Background()
	buf := []byte("original")
	if err := a.Send(ctx, "b", "t", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXXX")
	got, err := b.Recv(ctx, "a", "t")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Errorf("payload aliased sender buffer: %q", got)
	}
}

func TestMetricsAccounting(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	bus.MustRegister("b")
	ctx := context.Background()
	payload := bytes.Repeat([]byte{1}, 100)
	if err := a.Send(ctx, "b", "tag", payload); err != nil {
		t.Fatal(err)
	}
	m := bus.Metrics()
	want := int64(100 + 1 + 1 + 3 + frameHeaderSize)
	if got := m.PartyBytes("a"); got != want {
		t.Errorf("PartyBytes = %d, want %d", got, want)
	}
	if m.TotalBytes() != want {
		t.Errorf("TotalBytes = %d, want %d", m.TotalBytes(), want)
	}
	if m.TotalMessages() != 1 {
		t.Errorf("TotalMessages = %d, want 1", m.TotalMessages())
	}
	snap := m.Snapshot()
	if snap["a"] != want {
		t.Errorf("Snapshot[a] = %d", snap["a"])
	}
	m.Reset()
	if m.TotalBytes() != 0 || m.TotalMessages() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestConcurrentSenders(t *testing.T) {
	bus := NewBus(nil)
	recv := bus.MustRegister("sink")
	const senders = 8
	const perSender = 50
	ctx := context.Background()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		conn := bus.MustRegister(fmt.Sprintf("s%d", s))
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := c.Send(ctx, "sink", "load", []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(conn)
	}
	wg.Wait()
	for s := 0; s < senders; s++ {
		for i := 0; i < perSender; i++ {
			if _, err := recv.Recv(ctx, fmt.Sprintf("s%d", s), "load"); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	metrics := NewMetrics()
	nodeA, err := ListenTCP("a", "127.0.0.1:0", nil, metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := ListenTCP("b", "127.0.0.1:0", nil, metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	nodeA.SetPeer("b", nodeB.Addr())
	nodeB.SetPeer("a", nodeA.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if err := nodeA.Send(ctx, "b", "ping", []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := nodeB.Recv(ctx, "a", "ping")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Errorf("got %q", got)
	}

	// Reply on the reverse direction (separate connection).
	if err := nodeB.Send(ctx, "a", "pong", []byte("back")); err != nil {
		t.Fatal(err)
	}
	got, err = nodeA.Recv(ctx, "b", "pong")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "back" {
		t.Errorf("got %q", got)
	}
	if metrics.TotalMessages() != 2 {
		t.Errorf("TotalMessages = %d, want 2", metrics.TotalMessages())
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	node, err := ListenTCP("solo", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Send(context.Background(), "ghost", "t", nil); err == nil {
		t.Error("send to unknown peer: want error")
	}
}

func TestTCPManyMessages(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer("b", b.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const n = 200
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 1+i%97)
		if err := a.Send(ctx, "b", "bulk", payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := b.Recv(ctx, "a", "bulk")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1+i%97 || got[0] != byte(i) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if err := a.Send(context.Background(), "b", "t", nil); err == nil {
		t.Error("send after close: want error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Message{From: "alice", To: "bob", Tag: "tag/1", Payload: []byte{1, 2, 3}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.From != in.From || out.To != in.To || out.Tag != in.Tag || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("frame round trip mismatch: %+v", out)
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Field lengths exceeding body size must error, not panic.
	var buf bytes.Buffer
	in := Message{From: "a", To: "b", Tag: "t", Payload: []byte("xy")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xff // inflate fromLen
	raw[5] = 0xff
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted frame: want error")
	}
}

func TestFaultConnDrop(t *testing.T) {
	bus := NewBus(nil)
	inner := bus.MustRegister("a")
	b := bus.MustRegister("b")
	f := NewFaultConn(inner)
	ctx := context.Background()

	f.DropNext("x", 1)
	if err := f.Send(ctx, "b", "x", []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(ctx, "b", "x", []byte("arrives")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx, "a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "arrives" {
		t.Errorf("drop failed: got %q", got)
	}
}

func TestFaultConnCorrupt(t *testing.T) {
	bus := NewBus(nil)
	inner := bus.MustRegister("a")
	b := bus.MustRegister("b")
	f := NewFaultConn(inner)
	ctx := context.Background()

	f.CorruptNext("x", 1)
	if err := f.Send(ctx, "b", "x", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx, "a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "pristine" {
		t.Error("payload was not corrupted")
	}
}

func TestFaultConnFailAll(t *testing.T) {
	bus := NewBus(nil)
	inner := bus.MustRegister("a")
	bus.MustRegister("b")
	f := NewFaultConn(inner)
	f.FailAll()
	if err := f.Send(context.Background(), "b", "x", nil); err == nil {
		t.Error("FailAll: want error")
	}
}

func TestTCPCloseOrderingNoDeadlock(t *testing.T) {
	// Regression: closing nodes in any order must not deadlock even while
	// peers hold inbound connections open (found by the networked-market
	// example, where LIFO defers closed the dialer last).
	var nodes []*TCPNode
	names := []string{"n0", "n1", "n2"}
	for _, name := range names {
		n, err := ListenTCP(name, "127.0.0.1:0", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := range nodes {
		for j := range nodes {
			if i != j {
				nodes[i].SetPeer(names[j], nodes[j].Addr())
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Full mesh of sends so every node holds inbound connections.
	for i := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			if err := nodes[i].Send(ctx, names[j], "mesh", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Close in creation order: each Close must return even though
		// later nodes still hold connections into this one.
		for _, n := range nodes {
			n.Close()
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Close deadlocked")
	}
}

func TestWindowTagRoundTrip(t *testing.T) {
	cases := []struct {
		window int
		tag    string
	}{
		{0, "role"}, {3, "pme/rb"}, {47, "pd/ring"}, {123456, "x"},
	}
	for _, c := range cases {
		full := WindowTag(c.window, c.tag)
		w, rest, ok := ParseWindowTag(full)
		if !ok || w != c.window || rest != c.tag {
			t.Errorf("round trip %q -> (%d, %q, %v)", full, w, rest, ok)
		}
	}
	for _, bad := range []string{"", "role", "w/x", "wx/y", "w-1/x", "w3", "keys/paillier"} {
		if _, _, ok := ParseWindowTag(bad); ok {
			t.Errorf("ParseWindowTag accepted %q", bad)
		}
	}
}

func TestMetricsWindowBytes(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	bus.MustRegister("b")
	ctx := context.Background()

	payload := []byte("0123456789")
	if err := a.Send(ctx, "b", WindowTag(4, "pme/rb"), payload); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", WindowTag(7, "pme/rb"), payload); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", "keys/paillier", payload); err != nil {
		t.Fatal(err)
	}
	m := bus.Metrics()
	b4, b7 := m.WindowBytes(4), m.WindowBytes(7)
	if b4 <= 0 || b7 <= 0 {
		t.Fatalf("window bytes not recorded: w4=%d w7=%d", b4, b7)
	}
	if b4+b7 >= m.TotalBytes() {
		t.Fatalf("session traffic leaked into window accounting: %d+%d vs total %d", b4, b7, m.TotalBytes())
	}
	if m.WindowBytes(5) != 0 {
		t.Error("untouched window has traffic")
	}
}

func TestFaultConnFailWindow(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	b := bus.MustRegister("b")
	fc := NewFaultConn(a)
	fc.FailWindow(2)
	ctx := context.Background()

	if err := fc.Send(ctx, "b", WindowTag(2, "role"), []byte{1}); err == nil {
		t.Fatal("send in failed window succeeded")
	}
	if err := fc.Send(ctx, "b", WindowTag(1, "role"), []byte{1}); err != nil {
		t.Fatalf("neighbouring window affected: %v", err)
	}
	if err := fc.Send(ctx, "b", "keys/paillier", []byte{1}); err != nil {
		t.Fatalf("session traffic affected: %v", err)
	}
	if _, err := b.Recv(ctx, "a", WindowTag(1, "role")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultConnWindowScopedDropCorrupt(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	b := bus.MustRegister("b")
	fc := NewFaultConn(a)
	fc.DropNextInWindow(3, "role", 1)
	fc.CorruptNextInWindow(5, "role", 1)
	ctx := context.Background()

	// Window 3: dropped; window 4: clean; window 5: corrupted.
	for _, w := range []int{3, 4, 5} {
		if err := fc.Send(ctx, "b", WindowTag(w, "role"), []byte{0xaa}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Recv(ctx, "a", WindowTag(4, "role"))
	if err != nil || len(got) != 1 || got[0] != 0xaa {
		t.Fatalf("clean window payload wrong: %v %v", got, err)
	}
	got, err = b.Recv(ctx, "a", WindowTag(5, "role"))
	if err != nil || len(got) != 1 || got[0] == 0xaa {
		t.Fatalf("corrupted window payload unchanged: %v %v", got, err)
	}
	ctxShort, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctxShort, "a", WindowTag(3, "role")); err == nil {
		t.Fatal("dropped message arrived")
	}
}
