// Package transport provides tag-addressed, party-to-party message passing
// for the PEM protocols. Two implementations are provided: an in-memory bus
// (goroutine-per-agent deployments, the default used by the benchmark
// harness, mirroring the paper's one-Docker-container-per-agent setup) and a
// TCP transport (real multi-process deployments; see cmd/pem-agent).
//
// A Conn belongs to exactly one party. Protocol code sends a payload to a
// peer under a tag (e.g. "pme/ring/4" for round 4 of Private Market
// Evaluation) and receives by (from, tag) pair. Out-of-order arrivals are
// buffered per (from, tag) queue, which lets independent sub-protocols share
// one connection without interfering.
//
// All byte counts that flow through a Conn are recorded in a Metrics sink,
// which the Table I bandwidth experiment reads.
package transport

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// WindowTag scopes tag under the given trading window's namespace,
// producing "w<window>/<tag>". All window-scoped protocol traffic uses this
// form so that two windows in flight over the same Conn can never
// cross-talk: the (from, tag) demultiplexing key differs in the window
// prefix, and out-of-order arrivals from a faster window simply buffer in
// their own queues. Session-scoped traffic (e.g. the Paillier key exchange)
// uses bare tags outside any window namespace.
func WindowTag(window int, tag string) string {
	return "w" + strconv.Itoa(window) + "/" + tag
}

// ParseWindowTag splits a window-scoped tag into its window number and the
// bare protocol tag. ok is false for tags outside any window namespace.
func ParseWindowTag(tag string) (window int, rest string, ok bool) {
	if len(tag) < 3 || tag[0] != 'w' {
		return 0, "", false
	}
	slash := strings.IndexByte(tag, '/')
	if slash < 2 {
		return 0, "", false
	}
	w, err := strconv.Atoi(tag[1:slash])
	if err != nil || w < 0 {
		return 0, "", false
	}
	return w, tag[slash+1:], true
}

// ScopedWindowTag nests a window tag under an additional scope namespace,
// producing "<scope>/w<window>/<tag>" — the coalition-grid extension of the
// WindowTag scheme. Concurrent coalitions over one shared bus reuse window
// numbers freely: the scope prefix keeps their (from, tag) demultiplexing
// keys — and their per-window byte accounting — disjoint even if a party ID
// ever appeared in two rosters. An empty scope degrades to WindowTag, so
// solo engines stay on the PR 1 wire format unchanged.
//
// Scopes must satisfy ValidScope (in particular they may not themselves
// look like a "w<n>" window prefix, which would make parsing ambiguous).
func ScopedWindowTag(scope string, window int, tag string) string {
	if scope == "" {
		return WindowTag(window, tag)
	}
	return scope + "/" + WindowTag(window, tag)
}

// ParseScopedWindowTag splits a tag of either window-scoped form —
// "w<k>/<rest>" or "<scope>/w<k>/<rest>" — into its scope (empty for the
// unscoped form), window number and bare protocol tag. ok is false for
// session-scoped tags outside any window namespace.
func ParseScopedWindowTag(tag string) (scope string, window int, rest string, ok bool) {
	if w, rest, ok := ParseWindowTag(tag); ok {
		return "", w, rest, true
	}
	slash := strings.IndexByte(tag, '/')
	if slash < 1 {
		return "", 0, "", false
	}
	scope = tag[:slash]
	if !ValidScope(scope) {
		return "", 0, "", false
	}
	w, rest, ok := ParseWindowTag(tag[slash+1:])
	if !ok {
		return "", 0, "", false
	}
	return scope, w, rest, true
}

// ValidScope reports whether s can serve as a tag scope: non-empty, made of
// letters, digits, '.', '_' and '-', and not of the "w<n>" shape that names
// a window namespace.
func ValidScope(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	if _, _, ok := ParseWindowTag(s + "/x"); ok {
		return false
	}
	return true
}

// Message is a single protocol datagram.
type Message struct {
	// From is the sender's registered party name.
	From string
	// To is the recipient's registered party name.
	To string
	// Tag routes the message to the recipient's matching Recv and carries
	// the scope namespace (see WindowTag).
	Tag string
	// Payload is the opaque protocol body.
	Payload []byte
}

// wireSize is the accounted size of a message: payload plus addressing
// overhead (the TCP framing encodes exactly these fields).
func (m *Message) wireSize() int {
	return len(m.Payload) + len(m.From) + len(m.To) + len(m.Tag) + frameHeaderSize
}

// WireSize returns the accounted on-wire size of one message — the figure
// the Metrics byte counters record. The network-emulation layer uses it to
// price serialization delay with exactly the accounted size.
func WireSize(from, to, tag string, payload []byte) int {
	m := Message{From: from, To: to, Tag: tag, Payload: payload}
	return m.wireSize()
}

// Conn is one party's endpoint.
//
// Send may be called from any goroutine. Recv must not be called
// concurrently for the same (from, tag) pair; the protocol code in this
// repository always runs a party's control flow on a single goroutine.
//
// Buffer ownership (the zero-copy hand-off rules; see also GetFrame):
//
//   - Send does not take ownership of payload: the sender may reuse or
//     PutFrame its buffer as soon as Send returns. Transports that must
//     retain bytes (the in-memory bus queues, the TCP writer) copy into
//     pooled frames internally.
//   - Recv and RecvAny transfer exclusive ownership of the returned payload
//     to the caller. Once the caller has decoded it, it may hand the buffer
//     back to the frame pool with PutFrame — every transport in this
//     package delivers pool-shaped buffers, which is what keeps the
//     steady-state window loop allocation-free. Dropping the payload
//     without PutFrame is always correct too, just garbage-collected.
type Conn interface {
	// Party returns the ID of the local party.
	Party() string
	// Send delivers payload to the peer under tag. Ownership of payload
	// stays with the caller (see the buffer ownership rules above).
	Send(ctx context.Context, to, tag string, payload []byte) error
	// Recv blocks until a message from the given peer with the given tag
	// arrives (or ctx is done) and returns its payload, whose ownership
	// passes to the caller (it may PutFrame it after decoding).
	Recv(ctx context.Context, from, tag string) ([]byte, error)
	// RecvAny blocks until a message with the given tag arrives from any of
	// the listed peers and returns the sender with its payload — the
	// arrival-order receive primitive: a collector draining n peers takes
	// whichever message lands first instead of head-of-line blocking on a
	// fixed roster order. When several peers already have buffered
	// messages, the earliest peer in froms wins (deterministic drain). The
	// same concurrency rule as Recv applies: no two goroutines may wait on
	// overlapping (from, tag) pairs.
	RecvAny(ctx context.Context, tag string, froms []string) (from string, payload []byte, err error)
	// Close releases the endpoint. Pending and future Recv calls fail.
	Close() error
}

// Errors shared by transports.
var (
	ErrClosed       = errors.New("transport: connection closed")
	ErrUnknownParty = errors.New("transport: unknown destination party")
)

// SendNeverBlocks reports whether the connection's Send path enqueues
// without ever waiting on the peer — true for the in-memory bus (mailbox
// push under a briefly-held lock), false for socket transports, whose
// writes can stall on a slow receiver. Wrapper connections (fault
// injectors, the network-emulation layer — which prices messages on a
// virtual clock without wall-clock sleeps) are unwrapped through their
// Inner method. Callers use this to fan a broadcast out sequentially
// instead of paying one goroutine per peer when no send can block.
func SendNeverBlocks(c Conn) bool {
	for c != nil {
		if _, ok := c.(interface{ sendNeverBlocks() }); ok {
			return true
		}
		w, ok := c.(interface{ Inner() Conn })
		if !ok {
			return false
		}
		c = w.Inner()
	}
	return false
}

// inboxKey identifies a buffered queue.
type inboxKey struct {
	from string
	tag  string
}

// mailbox demultiplexes an incoming message stream into per-(from, tag)
// queues with blocking receive. It is the shared core of both transports.
//
// The steady-state path is allocation-lean: wake-up channels are cap-1
// buffered tokens recycled through a freelist instead of closed-and-remade
// per blocking receive, and drained queue slices are recycled so a
// window's worth of (from, tag) keys reuses the same backing arrays.
type mailbox struct {
	mu     sync.Mutex
	queues map[inboxKey][][]byte
	wait   map[inboxKey]chan struct{} // signalled (token send) on push
	// anyWait is a broadcast channel for popAny waiters, whose wake-up key
	// is not known in advance. It is created lazily when a popAny caller is
	// about to block and closed-and-cleared by the next push, so the
	// ordinary per-message path pays nothing for it.
	anyWait chan struct{}
	closed  bool

	waitFree []chan struct{} // recycled wake-up channels
	qFree    [][][]byte      // recycled empty queue slices
}

func newMailbox() *mailbox {
	return &mailbox{
		queues: make(map[inboxKey][][]byte),
		wait:   make(map[inboxKey]chan struct{}),
	}
}

// Freelist bounds: beyond these, recycled channels and queue slices fall
// back to the garbage collector. Sized for one party's worst-case fan-in
// across the windows in flight.
const (
	mailboxWaitFreeMax  = 32
	mailboxQueueFreeMax = 64
)

func (mb *mailbox) push(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	k := inboxKey{from: m.From, tag: m.Tag}
	q, ok := mb.queues[k]
	if !ok && len(mb.qFree) > 0 {
		q = mb.qFree[len(mb.qFree)-1]
		mb.qFree = mb.qFree[:len(mb.qFree)-1]
	}
	mb.queues[k] = append(q, m.Payload)
	if ch, ok := mb.wait[k]; ok {
		select {
		case ch <- struct{}{}:
		default:
		}
		delete(mb.wait, k)
	}
	if mb.anyWait != nil {
		close(mb.anyWait)
		mb.anyWait = nil
	}
	return nil
}

// takeLocked removes the queue's head. The caller holds mb.mu and has
// checked len(q) > 0. Drained queues are recycled through qFree.
func (mb *mailbox) takeLocked(k inboxKey, q [][]byte) []byte {
	payload := q[0]
	q[0] = nil // release the payload reference from the recycled array
	if len(q) == 1 {
		delete(mb.queues, k)
		if len(mb.qFree) < mailboxQueueFreeMax {
			mb.qFree = append(mb.qFree, q[:0])
		}
	} else {
		mb.queues[k] = q[1:]
	}
	return payload
}

// waitChLocked returns a cap-1 wake-up token channel, recycled when
// possible. The caller holds mb.mu.
func (mb *mailbox) waitChLocked() chan struct{} {
	if n := len(mb.waitFree); n > 0 {
		ch := mb.waitFree[n-1]
		mb.waitFree = mb.waitFree[:n-1]
		return ch
	}
	return make(chan struct{}, 1)
}

// releaseWait deregisters ch from key k (if still registered), drains any
// pending token, and recycles the channel.
func (mb *mailbox) releaseWait(k inboxKey, ch chan struct{}) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.wait[k] == ch {
		delete(mb.wait, k)
	}
	select {
	case <-ch:
	default:
	}
	if len(mb.waitFree) < mailboxWaitFreeMax {
		mb.waitFree = append(mb.waitFree, ch)
	}
}

func (mb *mailbox) pop(ctx context.Context, from, tag string) ([]byte, error) {
	k := inboxKey{from: from, tag: tag}
	var ch chan struct{}
	for {
		mb.mu.Lock()
		if q := mb.queues[k]; len(q) > 0 {
			payload := mb.takeLocked(k, q)
			mb.mu.Unlock()
			if ch != nil {
				mb.releaseWait(k, ch)
			}
			return payload, nil
		}
		if mb.closed {
			mb.mu.Unlock()
			if ch != nil {
				mb.releaseWait(k, ch)
			}
			return nil, ErrClosed
		}
		if ch == nil {
			ch = mb.waitChLocked()
		}
		mb.wait[k] = ch
		mb.mu.Unlock()

		select {
		case <-ch:
		case <-ctx.Done():
			mb.releaseWait(k, ch)
			return nil, fmt.Errorf("transport: recv from %q tag %q: %w", from, tag, ctx.Err())
		}
	}
}

// popAny removes and returns the first available message with the given
// tag from any of the listed senders, blocking until one arrives. When
// several senders have buffered messages, the earliest sender in froms is
// drained first.
func (mb *mailbox) popAny(ctx context.Context, tag string, froms []string) (string, []byte, error) {
	if len(froms) == 0 {
		return "", nil, fmt.Errorf("transport: recv any tag %q: empty peer set", tag)
	}
	for {
		mb.mu.Lock()
		for _, from := range froms {
			k := inboxKey{from: from, tag: tag}
			if q := mb.queues[k]; len(q) > 0 {
				payload := mb.takeLocked(k, q)
				mb.mu.Unlock()
				return from, payload, nil
			}
		}
		if mb.closed {
			mb.mu.Unlock()
			return "", nil, ErrClosed
		}
		if mb.anyWait == nil {
			mb.anyWait = make(chan struct{})
		}
		ch := mb.anyWait
		mb.mu.Unlock()

		select {
		case <-ch:
		case <-ctx.Done():
			return "", nil, fmt.Errorf("transport: recv any tag %q: %w", tag, ctx.Err())
		}
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.closed = true
	for k, ch := range mb.wait {
		select {
		case ch <- struct{}{}:
		default:
		}
		delete(mb.wait, k)
	}
	if mb.anyWait != nil {
		close(mb.anyWait)
		mb.anyWait = nil
	}
}
