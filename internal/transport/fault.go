package transport

import (
	"context"
	"sync"
)

// FaultConn wraps a Conn with programmable failure injection for tests:
// dropping messages, corrupting payloads, or failing sends outright. The
// PEM protocols must detect such faults and abort the trading window rather
// than produce incorrect trades.
type FaultConn struct {
	inner Conn

	mu      sync.Mutex
	dropTag map[string]int // tag -> remaining drops
	corrupt map[string]int // tag -> remaining corruptions
	failAll bool
}

var _ Conn = (*FaultConn)(nil)

// NewFaultConn wraps inner.
func NewFaultConn(inner Conn) *FaultConn {
	return &FaultConn{
		inner:   inner,
		dropTag: make(map[string]int),
		corrupt: make(map[string]int),
	}
}

// DropNext silently discards the next n sends with the given tag.
func (f *FaultConn) DropNext(tag string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropTag[tag] += n
}

// CorruptNext flips bits in the next n sends with the given tag.
func (f *FaultConn) CorruptNext(tag string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupt[tag] += n
}

// FailAll makes every subsequent Send return ErrClosed.
func (f *FaultConn) FailAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAll = true
}

// Party implements Conn.
func (f *FaultConn) Party() string { return f.inner.Party() }

// Send implements Conn with fault injection.
func (f *FaultConn) Send(ctx context.Context, to, tag string, payload []byte) error {
	f.mu.Lock()
	if f.failAll {
		f.mu.Unlock()
		return ErrClosed
	}
	if f.dropTag[tag] > 0 {
		f.dropTag[tag]--
		f.mu.Unlock()
		return nil // silently dropped
	}
	if f.corrupt[tag] > 0 {
		f.corrupt[tag]--
		f.mu.Unlock()
		bad := append([]byte(nil), payload...)
		if len(bad) > 0 {
			bad[len(bad)/2] ^= 0xff
		} else {
			bad = []byte{0xff}
		}
		return f.inner.Send(ctx, to, tag, bad)
	}
	f.mu.Unlock()
	return f.inner.Send(ctx, to, tag, payload)
}

// Recv implements Conn.
func (f *FaultConn) Recv(ctx context.Context, from, tag string) ([]byte, error) {
	return f.inner.Recv(ctx, from, tag)
}

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }
