package transport

import (
	"context"
	"sync"
)

// FaultConn wraps a Conn with programmable failure injection for tests:
// dropping messages, corrupting payloads, or failing sends outright. The
// PEM protocols must detect such faults and abort the trading window rather
// than produce incorrect trades.
//
// Faults can be scoped to a single trading window's tag namespace (see
// WindowTag), which lets the pipelined-scheduler tests kill one in-flight
// window while asserting its neighbours complete untouched.
type FaultConn struct {
	inner Conn

	mu      sync.Mutex
	dropTag map[string]int // tag -> remaining drops
	corrupt map[string]int // tag -> remaining corruptions
	failWin map[int]bool   // window -> fail every send in its namespace
	failAll bool
}

var _ Conn = (*FaultConn)(nil)

// NewFaultConn wraps inner.
func NewFaultConn(inner Conn) *FaultConn {
	return &FaultConn{
		inner:   inner,
		dropTag: make(map[string]int),
		corrupt: make(map[string]int),
		failWin: make(map[int]bool),
	}
}

// DropNext silently discards the next n sends with the given tag.
func (f *FaultConn) DropNext(tag string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropTag[tag] += n
}

// CorruptNext flips bits in the next n sends with the given tag.
func (f *FaultConn) CorruptNext(tag string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupt[tag] += n
}

// DropNextInWindow scopes DropNext to one window's namespace.
func (f *FaultConn) DropNextInWindow(window int, tag string, n int) {
	f.DropNext(WindowTag(window, tag), n)
}

// CorruptNextInWindow scopes CorruptNext to one window's namespace.
func (f *FaultConn) CorruptNextInWindow(window int, tag string, n int) {
	f.CorruptNext(WindowTag(window, tag), n)
}

// FailAll makes every subsequent Send return ErrClosed.
func (f *FaultConn) FailAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAll = true
}

// FailWindow makes every subsequent Send inside the given window's tag
// namespace return ErrClosed, leaving other windows and session traffic
// untouched.
func (f *FaultConn) FailWindow(window int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWin[window] = true
}

// Party implements Conn.
func (f *FaultConn) Party() string { return f.inner.Party() }

// Inner returns the wrapped endpoint, so helpers that need a specific layer
// of a conn stack (e.g. the network-emulation fork API) can unwrap through
// the fault injector.
func (f *FaultConn) Inner() Conn { return f.inner }

// Send implements Conn with fault injection.
func (f *FaultConn) Send(ctx context.Context, to, tag string, payload []byte) error {
	f.mu.Lock()
	if f.failAll {
		f.mu.Unlock()
		return ErrClosed
	}
	if len(f.failWin) > 0 {
		if w, _, ok := ParseWindowTag(tag); ok && f.failWin[w] {
			f.mu.Unlock()
			return ErrClosed
		}
	}
	if f.dropTag[tag] > 0 {
		f.dropTag[tag]--
		f.mu.Unlock()
		return nil // silently dropped
	}
	if f.corrupt[tag] > 0 {
		f.corrupt[tag]--
		f.mu.Unlock()
		bad := append([]byte(nil), payload...)
		if len(bad) > 0 {
			bad[len(bad)/2] ^= 0xff
		} else {
			bad = []byte{0xff}
		}
		return f.inner.Send(ctx, to, tag, bad)
	}
	f.mu.Unlock()
	return f.inner.Send(ctx, to, tag, payload)
}

// Recv implements Conn.
func (f *FaultConn) Recv(ctx context.Context, from, tag string) ([]byte, error) {
	return f.inner.Recv(ctx, from, tag)
}

// RecvAny implements Conn.
func (f *FaultConn) RecvAny(ctx context.Context, tag string, froms []string) (string, []byte, error) {
	return f.inner.RecvAny(ctx, tag, froms)
}

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }
