package transport

import (
	"context"
	"testing"
)

// Allocation-budget tests for the transport hot path: the frame pool and
// the metrics sink's window compaction. testing.AllocsPerRun's warm-up call
// absorbs one-time pool priming, so the budgets are steady-state figures.

// TestFramePoolSteadyStateAllocFree pins the pooled frame cycle: once the
// size class is primed, Get/Put allocates nothing.
func TestFramePoolSteadyStateAllocFree(t *testing.T) {
	for _, n := range []int{64, 1024, 65536} {
		avg := testing.AllocsPerRun(100, func() {
			b := GetFrame(n)
			PutFrame(b)
		})
		if avg != 0 {
			t.Errorf("GetFrame(%d)/PutFrame: %.1f allocs/op, want 0", n, avg)
		}
	}
}

// TestFoldWindowAllocFree pins the metrics compaction the engine runs after
// every window under CompactWindowMetrics: folding a completed window is
// pure map surgery and must never allocate — it runs once per window for
// the lifetime of a grid simulation.
func TestFoldWindowAllocFree(t *testing.T) {
	bus := NewBus(nil)
	a := bus.MustRegister("a")
	bus.MustRegister("b")
	ctx := context.Background()

	const windows = 128 // warm-up + measured runs each fold a distinct window
	for w := 0; w < windows; w++ {
		if err := a.Send(ctx, "b", ScopedWindowTag("c0", w, "role"), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	m := bus.Metrics()
	w := 0
	avg := testing.AllocsPerRun(100, func() {
		m.FoldWindow("c0", w)
		w++
	})
	if avg != 0 {
		t.Errorf("FoldWindow: %.1f allocs/op, want 0", avg)
	}
}
