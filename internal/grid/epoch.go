package grid

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/store"
	"github.com/pem-go/pem/internal/transport"
)

// The epoch layer turns the one-shot grid into a long-running live system.
// A multi-day simulation is split into epochs; at each epoch boundary a
// seeded churn model (dataset.Evolve) updates the fleet — prosumers join,
// depart and fail — the partitioner re-partitions the surviving-plus-new
// agents, and every coalition re-keys: fresh core session key material and
// a fresh transport scope per (epoch, coalition), over the same shared bus
// and crypto worker pool, so re-keying is bounded work rather than a
// restart. Settlement carries across epochs in a market.PositionBook:
// per-agent cumulative positions survive re-partitioning because they are
// keyed by agent ID, and an agent that leaves settles and freezes at its
// exit epoch.

// LiveConfig configures a live (epoched) grid run.
type LiveConfig struct {
	// Grid carries the per-coalition engine configuration and the
	// supervisor budgets, exactly as for a one-shot Run. Engine.Namespace
	// is supervisor-managed; when Engine.Seed is set, a per-epoch seed is
	// derived from it so every epoch re-keys to fresh — but reproducible —
	// key material.
	Grid Config
	// Coalitions is the target coalition count per epoch (required). When
	// churn shrinks the fleet below 2·Coalitions the epoch runs with the
	// largest count the roster can fill.
	Coalitions int
	// Partition selects the per-epoch partition strategy (default
	// StrategyFixed). Every epoch re-partitions from scratch: membership
	// follows the surviving-plus-new roster, not history.
	Partition Strategy
	// PartitionSeed feeds the random strategy; a per-epoch seed is derived
	// from it so consecutive epochs shuffle differently.
	PartitionSeed int64
	// RetainResults keeps every epoch's heavy per-coalition payload —
	// window results, flows, ledgers, rosters — alive in the returned
	// LiveResult. By default the live grid releases each epoch's payload
	// once its flows are folded into the position book, so a long
	// simulation's memory is bounded by one epoch, not the run length;
	// set RetainResults to audit per-window outcomes after the run.
	RetainResults bool
	// Resume, when set, restarts the simulation from a durable checkpoint:
	// the position book is restored bit-exactly from Resume.Positions and
	// every epoch up to and including Resume.Epoch is skipped. The
	// evolution and configuration must match the checkpointed run — the
	// per-epoch engine and partition seeds derive independently from the
	// base seeds, so the remaining epochs replay bit-identically to an
	// uninterrupted run. The returned LiveResult's traffic and timing
	// counters cover only the resumed epochs; positions and conservation
	// cover the whole simulation.
	Resume *store.Checkpoint
	// CheckpointMeta is an opaque caller blob recorded (with its SHA-256)
	// in every checkpoint the run writes. The pem facade serializes its
	// public configuration here so a later Resume can rebuild the run from
	// the store file alone and refuse a mismatched configuration.
	CheckpointMeta []byte
}

// Validate checks the live configuration, including that the partition
// strategy exists. RunLive validates on entry; pem.NewLiveGrid also calls
// it at construction so a statically-bad config fails before the fleet
// evolution or any key material is built.
func (c LiveConfig) Validate() error {
	if err := c.Grid.validate(); err != nil {
		return err
	}
	if c.Coalitions <= 0 {
		return fmt.Errorf("grid: live Coalitions must be positive, got %d", c.Coalitions)
	}
	switch c.Partition {
	case StrategyFixed, StrategyRandom, StrategyBalanced, "":
		return nil
	default:
		return fmt.Errorf("grid: unknown partition strategy %q", c.Partition)
	}
}

// EpochResult is the outcome of one epoch of a live grid: one trading day
// over that epoch's roster and partition.
type EpochResult struct {
	// Epoch is the epoch index.
	Epoch int
	// Agents is the roster size for the epoch.
	Agents int
	// Joined, Departed and Failed list the churn applied at the boundary
	// entering this epoch (all empty for epoch 0).
	Joined, Departed, Failed []string
	// Coalitions holds the per-coalition outcomes, in partition order,
	// named "e<epoch>-c<index>" (also their transport scope).
	Coalitions []CoalitionRun
	// Settlement clears the epoch's coalition residuals — completed and
	// folded alike — against the grid tariff. With Grid.Tiers it is the
	// epoch hierarchy's grid boundary and equals Tiers.Grid.
	Settlement *market.GridSettlement
	// Tiers is the epoch's recursive settlement under Grid.Tiers: the
	// epoch's coalitions roll up through districts and regions before the
	// unmatched remainder touches the tariff. Nil on flat runs.
	Tiers *market.TieredSettlement
	// Windows counts completed trading windows across the epoch.
	Windows int
	// Bytes is the epoch's protocol traffic on the shared bus.
	Bytes int64
	// Msgs is the epoch's protocol message count, mirroring Bytes.
	Msgs int64
	// VirtualLatency is the epoch's virtual duration on the emulated
	// network: the slowest coalition's day, since the epoch's coalitions
	// trade concurrently. Zero on unemulated runs.
	VirtualLatency time.Duration
	// Rekey is the wall-clock time of the epoch's re-keying phase: every
	// coalition provisioning fresh key material and transport scopes,
	// concurrently over the shared crypto pool. Reported separately so
	// churn cost stays distinguishable from trading throughput.
	Rekey time.Duration
	// Trading is the wall-clock time of the epoch's window-execution
	// phase, after all engines were provisioned.
	Trading time.Duration
	// Duration is the epoch's total wall-clock time (re-key, trading and
	// teardown).
	Duration time.Duration
}

// LiveResult is the outcome of a full live-grid simulation.
type LiveResult struct {
	// Epochs holds one entry per executed epoch, in order. On failure the
	// last entry is the partial epoch that failed. Each entry's heavy
	// per-coalition payload (window results, flows, ledgers, rosters) is
	// released once its flows reach the position book unless
	// LiveConfig.RetainResults is set; streaming runs (StreamLive) leave
	// Epochs nil entirely and deliver each epoch to the sink instead.
	Epochs []EpochResult
	// Positions are the per-agent cumulative positions across all epochs,
	// sorted by agent ID; departed and failed agents are frozen at their
	// exit epoch.
	Positions []market.AgentPosition
	// Windows counts completed trading windows across all epochs.
	Windows int
	// Duration is the whole simulation's wall-clock time.
	Duration time.Duration
	// TotalBytes is the fleet's protocol traffic across all epochs.
	TotalBytes int64
	// TotalMessages is the fleet's protocol message count across all
	// epochs.
	TotalMessages int64
	// VirtualLatency is the simulation's virtual duration on the emulated
	// network: the sum of the epochs' virtual durations, since epochs are
	// consecutive trading days. Zero on unemulated runs.
	VirtualLatency time.Duration
	// Rekey sums the epochs' re-keying phases.
	Rekey time.Duration
	// Trading sums the epochs' window-execution phases.
	Trading time.Duration
	// WindowsPerSec is the steady-state throughput — Windows / Trading —
	// with re-keying cost excluded (it is reported in Rekey instead).
	WindowsPerSec float64
	// EnergyImbalanceKWh and PaymentImbalanceCents are the fleet-wide PEM
	// conservation checks over the whole simulation (zero up to float
	// noise): energy sold inside the markets equals energy bought, and
	// every cent paid lands with a counterparty.
	EnergyImbalanceKWh, PaymentImbalanceCents float64
}

// RunLive executes a multi-epoch live-grid simulation over the evolution's
// fleet history. Epochs run in order (they are consecutive trading days);
// within an epoch, re-keying and coalition-days are concurrent exactly like
// a one-shot Run. A genuine coalition failure aborts the simulation after
// draining its epoch; the returned LiveResult keeps all completed epochs
// plus the partial one. With Grid.Engine.Seed set, the whole simulation is
// deterministic: bit-identical per (epoch, coalition) at any coalition
// concurrency.
func RunLive(ctx context.Context, cfg LiveConfig, evo *dataset.Evolution) (*LiveResult, error) {
	return streamLive(ctx, cfg, evo, nil)
}

// StreamLive executes the same simulation as RunLive but delivers each
// epoch's full outcome to sink as soon as its flows are settled into the
// position book, then releases the epoch's heavy payload (unless
// cfg.RetainResults is set) and moves on. The returned LiveResult carries
// the cross-epoch fold — positions, conservation, traffic, throughput —
// with Epochs nil (except on failure, where the partial failing epoch is
// kept for diagnosis), so an unbounded simulation runs in the memory of
// one epoch. The *EpochResult passed to sink is valid only during the call
// (copy what must outlive it); a sink error aborts the simulation. Sink is
// not called for an epoch that failed. A seeded StreamLive is bit-identical
// to the batch RunLive — same per-epoch settlements, positions and ledger
// chain heads — at any sink consumption speed.
func StreamLive(ctx context.Context, cfg LiveConfig, evo *dataset.Evolution, sink func(*EpochResult) error) (*LiveResult, error) {
	if sink == nil {
		return nil, errors.New("grid: StreamLive needs a sink (use RunLive)")
	}
	return streamLive(ctx, cfg, evo, sink)
}

// streamLive is the shared body of RunLive (nil sink: epochs retained on
// the result) and StreamLive (epochs delivered and released).
func streamLive(ctx context.Context, cfg LiveConfig, evo *dataset.Evolution, sink func(*EpochResult) error) (*LiveResult, error) {
	if evo == nil || len(evo.Epochs) == 0 {
		return nil, errors.New("grid: live run needs a non-empty evolution")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	book, err := market.NewPositionBook(cfg.Grid.params())
	if err != nil {
		return nil, err
	}
	if cfg.Resume != nil {
		if err := book.Restore(cfg.Resume.Positions); err != nil {
			return nil, err
		}
	}

	// Shared infrastructure for the whole simulation: one bus, one bounded
	// crypto pool. Epochs re-key over it — fresh keys, fresh scopes — but
	// never tear it down, which is what keeps churn bounded work.
	bus := transport.NewBus(nil)
	workers := paillier.NewWorkers(cfg.Grid.Engine.CryptoWorkers)
	defer workers.Release()

	start := time.Now()
	res := &LiveResult{}
	var firstErr error
	for _, ef := range evo.Epochs {
		// A resumed run replays the evolution from its start — the fleet
		// history is seed-derived — but the checkpointed epochs' effects are
		// already in the restored book, so they are skipped whole: churn,
		// trading and checkpointing alike.
		if cfg.Resume != nil && ef.Epoch <= cfg.Resume.Epoch {
			continue
		}
		if err := applyBoundary(book, &ef); err != nil {
			firstErr = err
			break
		}
		er, err := runEpoch(ctx, cfg, bus, workers, &ef)
		res.Windows += er.Windows
		res.TotalBytes += er.Bytes
		res.TotalMessages += er.Msgs
		res.VirtualLatency += er.VirtualLatency
		res.Rekey += er.Rekey
		res.Trading += er.Trading
		if err == nil {
			err = applyEpochFlows(book, er)
		}
		if err == nil && sink != nil {
			err = sink(er)
		}
		if err == nil {
			err = persistEpochBoundary(cfg, book, &ef, er)
		}
		// The epoch's flows are in the book and the sink has seen the full
		// payload; from here only the fold is needed, so drop the heavy
		// per-coalition state unless the caller wants a post-run audit.
		// (Failed epochs keep theirs — they carry the diagnosis.)
		if err == nil && !cfg.RetainResults {
			for i := range er.Coalitions {
				er.Coalitions[i].releasePayload()
			}
		}
		if sink == nil || err != nil {
			res.Epochs = append(res.Epochs, *er)
		}
		if err != nil {
			firstErr = fmt.Errorf("grid: epoch %d: %w", ef.Epoch, err)
			break
		}
	}

	res.Duration = time.Since(start)
	res.Positions = book.Positions()
	res.EnergyImbalanceKWh, res.PaymentImbalanceCents = book.Conservation()
	if res.Trading > 0 {
		res.WindowsPerSec = float64(res.Windows) / res.Trading.Seconds()
	}
	return res, firstErr
}

// persistEpochBoundary durably checkpoints a completed epoch: the full
// position book first, then the checkpoint record marking the epoch done.
// It runs after the epoch's flows are folded and the sink has delivered,
// but before the payload release, so a crash at any point resumes from the
// last completed epoch with nothing observable lost. PutCheckpoint syncs,
// which makes the write order a commit point — a torn checkpoint write
// leaves the previous epoch's resume point intact. A nil store is a no-op.
func persistEpochBoundary(cfg LiveConfig, book *market.PositionBook, ef *dataset.EpochFleet, er *EpochResult) error {
	st := cfg.Grid.Store
	if st == nil {
		return nil
	}
	positions := book.Snapshot()
	if err := st.UpsertPositions(positions); err != nil {
		return fmt.Errorf("store: epoch %d positions: %w", ef.Epoch, err)
	}
	cp := store.Checkpoint{
		Epoch:     ef.Epoch,
		Roster:    make([]string, len(ef.Trace.Homes)),
		Positions: positions,
		Config:    cfg.CheckpointMeta,
	}
	for i, h := range ef.Trace.Homes {
		cp.Roster[i] = h.ID
	}
	for i := range er.Coalitions {
		if cr := &er.Coalitions[i]; cr.ChainHead != "" {
			cp.ChainHeads = append(cp.ChainHeads, store.ChainHead{Scope: cr.Name, Head: cr.ChainHead})
		}
	}
	if s := cfg.Grid.Engine.Seed; s != nil {
		cp.Seed = *s
	}
	if len(cfg.CheckpointMeta) > 0 {
		sum := sha256.Sum256(cfg.CheckpointMeta)
		cp.ConfigHash = hex.EncodeToString(sum[:])
	}
	if err := st.PutCheckpoint(cp); err != nil {
		return fmt.Errorf("store: epoch %d checkpoint: %w", ef.Epoch, err)
	}
	return nil
}

// applyBoundary applies one epoch's churn events to the position book:
// leavers settle and freeze at their last traded epoch, joiners open fresh
// positions. Epoch 0 only opens the base fleet's positions.
func applyBoundary(book *market.PositionBook, ef *dataset.EpochFleet) error {
	for _, id := range ef.Departed {
		if err := book.Exit(id, ef.Epoch-1, string(dataset.ChurnDepart), 0, 0); err != nil {
			return err
		}
	}
	for _, id := range ef.Failed {
		if err := book.Exit(id, ef.Epoch-1, string(dataset.ChurnFail), 0, 0); err != nil {
			return err
		}
	}
	if ef.Epoch == 0 {
		for _, h := range ef.Trace.Homes {
			if err := book.Join(h.ID, 0); err != nil {
				return err
			}
		}
		return nil
	}
	for _, id := range ef.Joined {
		if err := book.Join(id, ef.Epoch); err != nil {
			return err
		}
	}
	return nil
}

// applyEpochFlows folds every coalition's per-agent flows — completed and
// folded coalitions alike — into the position book, in coalition order so
// the floating-point accumulation is deterministic.
func applyEpochFlows(book *market.PositionBook, er *EpochResult) error {
	for i := range er.Coalitions {
		cr := &er.Coalitions[i]
		if !cr.settleable() {
			continue
		}
		if err := book.Apply(er.Epoch, cr.Flows); err != nil {
			return err
		}
	}
	return nil
}

// runEpoch executes one epoch: re-partition the epoch's roster, re-key
// every coalition (fresh engines over the shared infrastructure), run the
// coalition-days concurrently, and settle the epoch's residuals. The
// returned EpochResult is valid even on error, with per-coalition Err set.
func runEpoch(ctx context.Context, cfg LiveConfig, bus *transport.Bus, workers *paillier.Workers, ef *dataset.EpochFleet) (*EpochResult, error) {
	begin := time.Now()
	er := &EpochResult{
		Epoch:    ef.Epoch,
		Agents:   len(ef.Trace.Homes),
		Joined:   ef.Joined,
		Departed: ef.Departed,
		Failed:   ef.Failed,
	}
	defer func() { er.Duration = time.Since(begin) }()

	// Churn may have shrunk the roster below what the requested coalition
	// count can fill; degrade to the largest count whose coalitions still
	// meet the private-market floor, rather than partition the roster into
	// slivers that would all fold to grid-tariff service.
	k := cfg.Coalitions
	if limit := len(ef.Trace.Homes) / cfg.Grid.minCoalition(); k > limit {
		k = limit
	}
	if k < 1 {
		k = 1
	}
	parts, err := Partition(cfg.Partition, ef.Trace.Homes, k, deriveEpochSeed(cfg.PartitionSeed, ef.Epoch))
	if err != nil {
		return er, err
	}

	// Re-keying gets a per-epoch engine seed so a seeded simulation
	// provisions fresh — but reproducible — key material each epoch; a
	// repeated seed would re-derive the very same keys, which is rotation
	// in name only.
	gcfg := cfg.Grid
	if s := gcfg.Engine.Seed; s != nil {
		es := deriveEpochSeed(*s, ef.Epoch)
		gcfg.Engine.Seed = &es
	}

	er.Coalitions = make([]CoalitionRun, len(parts))
	for i, members := range parts {
		er.Coalitions[i] = CoalitionRun{
			Name:    fmt.Sprintf("e%02d-c%02d", ef.Epoch, i),
			Members: append([]int(nil), members...),
		}
	}

	rekeyed, err := rekeyEpoch(ctx, gcfg, bus, workers, ef.Trace, er)
	defer func() {
		for _, rk := range rekeyed {
			if rk.engine != nil {
				rk.engine.Close()
			}
		}
	}()
	if err != nil {
		return er, err
	}

	tradeStart := time.Now()
	err = tradeEpoch(ctx, gcfg, bus, er, rekeyed)
	er.Trading = time.Since(tradeStart)

	for i := range er.Coalitions {
		cr := &er.Coalitions[i]
		if cr.Err != nil {
			continue
		}
		er.Windows += cr.Windows
		er.Bytes += cr.Bytes
		er.Msgs += cr.Msgs
		if cr.VirtualLatency > er.VirtualLatency {
			er.VirtualLatency = cr.VirtualLatency
		}
	}
	settlement, tiers, serr := settleGrid(gcfg, er.Coalitions)
	if serr != nil && err == nil {
		err = fmt.Errorf("settlement: %w", serr)
	}
	er.Settlement = settlement
	er.Tiers = tiers
	return er, err
}

// rekeyedCoalition is one coalition's provisioned state after the re-key
// phase: its engine (nil for folded or failed slots) and the sub-trace it
// was keyed for, carried into the trading phase so it is selected once.
type rekeyedCoalition struct {
	engine *core.Engine
	sub    *dataset.Trace
}

// rekeyEpoch provisions one engine per runnable coalition — fresh Paillier
// keys for every member, a fresh transport scope — concurrently over the
// shared worker pool, which bounds the total keygen parallelism. Too-small
// coalitions are folded here (they never key). Returns the provisioned
// coalitions indexed like er.Coalitions; on error the caller still closes
// whatever was provisioned.
func rekeyEpoch(ctx context.Context, cfg Config, bus *transport.Bus, workers *paillier.Workers, tr *dataset.Trace, er *EpochResult) ([]rekeyedCoalition, error) {
	rekeyStart := time.Now()
	defer func() { er.Rekey = time.Since(rekeyStart) }()

	rekeyed := make([]rekeyedCoalition, len(er.Coalitions))
	var wg sync.WaitGroup
	for i := range er.Coalitions {
		if ctx.Err() != nil {
			er.Coalitions[i].Err = fmt.Errorf("%w on cancellation", ErrCoalitionSkipped)
			continue
		}
		wg.Add(1)
		go func(i int, cr *CoalitionRun) {
			defer wg.Done()
			begin := time.Now()
			sub, err := tr.Select(cr.Members)
			if err != nil {
				cr.Err = err
				return
			}
			agents := sub.Agents()
			cr.IDs = make([]string, len(agents))
			for j, a := range agents {
				cr.IDs[j] = a.ID
			}
			if len(agents) < cfg.minCoalition() {
				foldCoalition(cfg, sub, cr)
				return
			}
			ecfg := cfg.Engine
			ecfg.Namespace = cr.Name
			// Per-window metrics fold into the scope aggregate as windows
			// complete, so a long-running live grid's shared sink stays
			// bounded by the windows in flight (see coalitionAccounting,
			// which retires the scope itself).
			ecfg.CompactWindowMetrics = true
			eng, err := core.NewEngineWith(ecfg, agents, core.Resources{Bus: bus, Workers: workers})
			if err != nil {
				cr.Err = fmt.Errorf("rekey: %w", err)
				return
			}
			cr.Keys = eng.KeyFingerprints()
			cr.Rekey = time.Since(begin)
			rekeyed[i] = rekeyedCoalition{engine: eng, sub: sub}
		}(i, &er.Coalitions[i])
	}
	wg.Wait()

	for i := range er.Coalitions {
		if cr := &er.Coalitions[i]; cr.failure() {
			return rekeyed, fmt.Errorf("coalition %s: %w", cr.Name, cr.Err)
		}
	}
	return rekeyed, ctx.Err()
}

// tradeEpoch runs every keyed coalition's trading day concurrently under
// the MaxConcurrent budget, through the supervisor's fail-fast launcher: a
// failing coalition cancels only itself, later launches stop, in-flight
// days drain. Folded slots (nil engine) are not eligible for launch but
// still flow through delivery, so with a store attached their grid-tariff
// aggregates persist alongside the completed coalitions' chains, in
// partition order.
func tradeEpoch(ctx context.Context, cfg Config, bus *transport.Bus, er *EpochResult, rekeyed []rekeyedCoalition) error {
	return launchCoalitions(ctx, cfg.MaxConcurrent, er.Coalitions,
		func(i int) bool { return rekeyed[i].engine != nil },
		func(runCtx context.Context, i int, cr *CoalitionRun) {
			tradeCoalition(runCtx, cfg, bus, cr, rekeyed[i])
		},
		func(cr *CoalitionRun) error { return persistCoalition(cfg.Store, cr) })
}

// tradeCoalition runs one keyed coalition's trading day through its
// provisioned engine and folds the oracle accounting, mirroring
// runCoalition minus provisioning (paid during re-key) and trace selection
// (done once at re-key time).
func tradeCoalition(ctx context.Context, cfg Config, bus *transport.Bus, cr *CoalitionRun, rk rekeyedCoalition) {
	begin := time.Now()
	defer func() { cr.Duration = cr.Rekey + time.Since(begin) }()

	jobs := make([]core.WindowJob, rk.sub.Windows)
	for w := 0; w < rk.sub.Windows; w++ {
		inputs, err := rk.sub.WindowInputs(w)
		if err != nil {
			cr.Err = err
			return
		}
		jobs[w] = core.WindowJob{Window: w, Inputs: inputs}
	}
	results, err := rk.engine.RunWindows(ctx, jobs)
	if err != nil {
		cr.Err = err
		return
	}
	cr.Results = results
	if cr.Err = coalitionAccounting(bus, cr); cr.Err != nil {
		return
	}
	cr.Err = oracleAccounting(cfg, rk.sub, jobs, cr)
}

// deriveEpochSeed expands a simulation seed into one independent stream per
// epoch, FNV-hashed like the dataset's seed derivation so the mapping is
// stable across runs and platforms.
func deriveEpochSeed(seed int64, epoch int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "pem/grid/epoch/%d/%d", seed, epoch)
	return int64(h.Sum64())
}
