package grid

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/store"
)

// countingStore wraps a Store to observe the block-append stream: the total
// append count and the count at the moment the first checkpoint committed.
// The live grid writes from a single goroutine, so plain fields suffice.
type countingStore struct {
	store.Store
	appends       int
	atFirstCkpt   int
	haveFirstCkpt bool
}

func (c *countingStore) AppendBlock(scope string, blk ledger.Block) error {
	if err := c.Store.AppendBlock(scope, blk); err != nil {
		return err
	}
	c.appends++
	return nil
}

func (c *countingStore) PutCheckpoint(cp store.Checkpoint) error {
	if err := c.Store.PutCheckpoint(cp); err != nil {
		return err
	}
	if !c.haveFirstCkpt {
		c.haveFirstCkpt = true
		c.atFirstCkpt = c.appends
	}
	return nil
}

// errKilled is the injected crash.
var errKilled = errors.New("injected crash")

// killSwitch wraps a Store and fails the run right after the killAt-th
// block append lands — the write hit the OS, the process died before the
// next one — which is exactly the window-granularity crash the WAL's
// recovery contract is specified against.
type killSwitch struct {
	store.Store
	appends int
	killAt  int
}

func (k *killSwitch) AppendBlock(scope string, blk ledger.Block) error {
	if err := k.Store.AppendBlock(scope, blk); err != nil {
		return err
	}
	k.appends++
	if k.appends == k.killAt {
		return errKilled
	}
	return nil
}

// storeDigest is everything durable a run leaves behind, in comparable
// form; chains are verified (FromBlocks) as they are read.
type storeDigest struct {
	scopes     []string
	heads      map[string]string
	aggregates []store.Aggregate
	keys       []store.KeyRecord
	positions  string
	ckptEpoch  int
}

func digestStore(t *testing.T, st store.Store) storeDigest {
	t.Helper()
	d := storeDigest{heads: make(map[string]string)}
	var err error
	if d.scopes, err = st.Scopes(); err != nil {
		t.Fatal(err)
	}
	for _, s := range d.scopes {
		blocks, err := st.Blocks(s)
		if err != nil {
			t.Fatal(err)
		}
		l, err := ledger.FromBlocks(blocks)
		if err != nil {
			t.Fatalf("scope %s: recovered chain does not verify: %v", s, err)
		}
		d.heads[s] = ledger.HashString(l.Head().Hash)
	}
	if d.aggregates, err = st.Aggregates(); err != nil {
		t.Fatal(err)
	}
	if d.keys, err = st.KeyMaterial(); err != nil {
		t.Fatal(err)
	}
	ps, err := st.Positions()
	if err != nil {
		t.Fatal(err)
	}
	d.positions = fmt.Sprintf("%+v", ps)
	cp, ok, err := st.LastCheckpoint()
	if err != nil || !ok {
		t.Fatalf("no checkpoint: ok=%v err=%v", ok, err)
	}
	d.ckptEpoch = cp.Epoch
	return d
}

// TestLiveStorePersistsRun: a durable live run leaves a complete, verified
// record behind — every coalition's chain and aggregate (folded included),
// per-(epoch, coalition) key material for every member, the final position
// book, and a checkpoint for the last epoch carrying the caller's config
// blob with its hash.
func TestLiveStorePersistsRun(t *testing.T) {
	evo := testEvolution(t, 3, dataset.ChurnConfig{JoinRate: 0.2, DepartRate: 0.15})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	st := store.NewMem()
	cfg := testLiveConfig(45, 0)
	cfg.Grid.Store = st
	cfg.CheckpointMeta = []byte(`{"run":"store-test"}`)
	res, err := RunLive(ctx, cfg, evo)
	if err != nil {
		t.Fatal(err)
	}

	aggs, err := st.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	byScope := make(map[string]store.Aggregate, len(aggs))
	for _, a := range aggs {
		byScope[a.Scope] = a
	}
	keys, err := st.KeyMaterial()
	if err != nil {
		t.Fatal(err)
	}
	keyCount := make(map[string]int)
	for _, k := range keys {
		keyCount[k.Scope]++
		if len(k.Fingerprint) != sha256.Size {
			t.Errorf("%s/%s: fingerprint is %d bytes", k.Scope, k.Party, len(k.Fingerprint))
		}
	}
	for _, er := range res.Epochs {
		for i := range er.Coalitions {
			cr := &er.Coalitions[i]
			agg, ok := byScope[cr.Name]
			if !ok {
				t.Fatalf("%s: no aggregate persisted", cr.Name)
			}
			if agg.Folded != cr.Folded || agg.Windows != cr.Windows ||
				agg.ImportKWh != cr.Residual.ImportKWh || agg.ExportKWh != cr.Residual.ExportKWh ||
				agg.ChainHead != cr.ChainHead {
				t.Errorf("%s: aggregate diverged from run: %+v vs %+v", cr.Name, agg, cr)
			}
			blocks, err := st.Blocks(cr.Name)
			if err != nil {
				t.Fatal(err)
			}
			if cr.Folded {
				if len(blocks) != 0 {
					t.Errorf("folded %s persisted %d blocks", cr.Name, len(blocks))
				}
				continue
			}
			l, err := ledger.FromBlocks(blocks)
			if err != nil {
				t.Fatalf("%s: persisted chain does not verify: %v", cr.Name, err)
			}
			if head := ledger.HashString(l.Head().Hash); head != cr.ChainHead {
				t.Errorf("%s: persisted head %s, run head %s", cr.Name, head, cr.ChainHead)
			}
			if keyCount[cr.Name] != len(cr.IDs) {
				t.Errorf("%s: %d key records for %d members", cr.Name, keyCount[cr.Name], len(cr.IDs))
			}
		}
	}

	ps, err := st.Positions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, res.Positions) {
		t.Error("persisted positions diverged from the run's")
	}
	cp, ok, err := st.LastCheckpoint()
	if err != nil || !ok {
		t.Fatalf("no checkpoint: ok=%v err=%v", ok, err)
	}
	if cp.Epoch != len(res.Epochs)-1 {
		t.Errorf("checkpoint at epoch %d, want %d", cp.Epoch, len(res.Epochs)-1)
	}
	if string(cp.Config) != `{"run":"store-test"}` {
		t.Errorf("checkpoint config blob diverged: %q", cp.Config)
	}
	sum := sha256.Sum256(cp.Config)
	if cp.ConfigHash != hex.EncodeToString(sum[:]) {
		t.Errorf("checkpoint config hash diverged: %s", cp.ConfigHash)
	}
	if !reflect.DeepEqual(cp.Positions, res.Positions) {
		t.Error("checkpoint positions diverged from the run's")
	}
}

// TestLiveCrashResumeBitIdentical is the crash-recovery property test: for
// a table of seeds × churn mixes × backends, a run killed right after a
// seeded random block append — window granularity, mid-epoch — and resumed
// from its last durable checkpoint must converge to the same final state as
// the uninterrupted reference run, bit for bit: positions, conservation,
// every coalition chain (re-verified from the store) and its head, key
// material and aggregates.
func TestLiveCrashResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		churn dataset.ChurnConfig
	}{
		{"join-only", 47, dataset.ChurnConfig{JoinRate: 0.4}},
		{"depart-only", 48, dataset.ChurnConfig{DepartRate: 0.3}},
		{"fail-heavy", 49, dataset.ChurnConfig{FailRate: 0.35, JoinRate: 0.1}},
		{"mixed", 50, dataset.ChurnConfig{JoinRate: 0.25, DepartRate: 0.2, FailRate: 0.15}},
	}
	backends := map[string]func(t *testing.T) store.Store{
		"mem": func(*testing.T) store.Store { return store.NewMem() },
		"wal": func(t *testing.T) store.Store {
			w, err := store.OpenWAL(filepath.Join(t.TempDir(), "live.wal"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			return w
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
	defer cancel()

	for _, tc := range cases {
		for bname, open := range backends {
			t.Run(tc.name+"/"+bname, func(t *testing.T) {
				evo := testEvolution(t, 4, tc.churn)

				// Reference: the uninterrupted durable run, counting the
				// block-append stream so the kill point can be seeded inside
				// the checkpointed region.
				refStore := open(t)
				counter := &countingStore{Store: refStore}
				cfg := testLiveConfig(tc.seed, 0)
				cfg.Grid.Store = counter
				cfg.CheckpointMeta = []byte(`{"case":"` + tc.name + `"}`)
				ref, err := RunLive(ctx, cfg, evo)
				if err != nil {
					t.Fatal(err)
				}
				refDigest := digestStore(t, refStore)
				if !counter.haveFirstCkpt || counter.appends <= counter.atFirstCkpt+1 {
					t.Fatalf("fixture too small to kill mid-run: %d appends, first checkpoint at %d",
						counter.appends, counter.atFirstCkpt)
				}

				// Crash: kill right after a seeded random append past the
				// first checkpoint, so there is always a resume point and
				// always unfinished work.
				rng := rand.New(rand.NewSource(tc.seed))
				killAt := counter.atFirstCkpt + 1 + rng.Intn(counter.appends-counter.atFirstCkpt-1)
				crashStore := open(t)
				kcfg := testLiveConfig(tc.seed, 0)
				kcfg.Grid.Store = &killSwitch{Store: crashStore, killAt: killAt}
				kcfg.CheckpointMeta = cfg.CheckpointMeta
				if _, err := RunLive(ctx, kcfg, evo); !errors.Is(err, errKilled) {
					t.Fatalf("kill after append %d did not surface: %v", killAt, err)
				}

				// Resume from the last durable checkpoint and replay forward.
				cp, ok, err := crashStore.LastCheckpoint()
				if err != nil || !ok {
					t.Fatalf("no checkpoint after crash: ok=%v err=%v", ok, err)
				}
				if cp.Epoch >= len(evo.Epochs)-1 {
					t.Fatalf("crash left nothing to replay: checkpoint at epoch %d", cp.Epoch)
				}
				rcfg := testLiveConfig(tc.seed, 0)
				rcfg.Grid.Store = crashStore
				rcfg.CheckpointMeta = cfg.CheckpointMeta
				rcfg.Resume = &cp
				resumed, err := RunLive(ctx, rcfg, evo)
				if err != nil {
					t.Fatal(err)
				}

				// The resumed run's final state is bit-identical to the
				// reference's — in the result and in the store.
				if len(resumed.Positions) != len(ref.Positions) {
					t.Fatalf("position counts diverge: %d vs %d", len(resumed.Positions), len(ref.Positions))
				}
				for i := range ref.Positions {
					if resumed.Positions[i] != ref.Positions[i] {
						t.Fatalf("position %s diverged after resume:\n%+v\nvs\n%+v",
							ref.Positions[i].ID, resumed.Positions[i], ref.Positions[i])
					}
				}
				if resumed.EnergyImbalanceKWh != ref.EnergyImbalanceKWh ||
					resumed.PaymentImbalanceCents != ref.PaymentImbalanceCents {
					t.Error("conservation figures diverged after resume")
				}
				gotDigest := digestStore(t, crashStore)
				if !reflect.DeepEqual(gotDigest, refDigest) {
					t.Errorf("durable state diverged after resume:\n%+v\nvs\n%+v", gotDigest, refDigest)
				}
			})
		}
	}
}

// TestLiveStoreMemoryBounded is the durability cousin of
// TestLivePayloadRelease: attaching a WAL store to a streaming live run
// must not reintroduce payload retention — the store keeps O(1) in-memory
// state — so the post-run heap stays near the pre-run baseline.
func TestLiveStoreMemoryBounded(t *testing.T) {
	evo := testEvolution(t, 3, dataset.ChurnConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	w, err := store.OpenWAL(filepath.Join(t.TempDir(), "bounded.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var ms runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)
	before := ms.HeapAlloc

	cfg := testLiveConfig(51, 0)
	cfg.RetainResults = false
	cfg.Grid.Store = w
	res, err := StreamLive(ctx, cfg, evo, func(er *EpochResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != nil {
		t.Error("streamed durable run retained epochs")
	}

	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)
	after := ms.HeapAlloc
	runtime.KeepAlive(res)
	// The run's live state is one epoch's worth; 8 MiB of slack absorbs
	// allocator and runtime noise while still catching a store that holds
	// every block or payload it was handed.
	const budget = 8 << 20
	if after > before+budget {
		t.Errorf("durable streaming run grew the heap %d -> %d bytes (budget %d)", before, after, budget)
	}
}
