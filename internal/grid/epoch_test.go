package grid

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/market"
)

func testEvolution(t *testing.T, epochs int, churn dataset.ChurnConfig) *dataset.Evolution {
	t.Helper()
	churn.Epochs = epochs
	evo, err := dataset.Evolve(dataset.FleetConfig{
		Coalitions:        3,
		HomesPerCoalition: 3,
		Windows:           2,
		Seed:              1234,
	}, churn)
	if err != nil {
		t.Fatal(err)
	}
	return evo
}

func testLiveConfig(seed int64, conc int) LiveConfig {
	return LiveConfig{
		Grid:       Config{Engine: testEngineConfig(seed), MaxConcurrent: conc},
		Coalitions: 3,
		Partition:  StrategyBalanced,
		// Most tests here audit per-window payloads after the run; the
		// default-release path is covered by TestLivePayloadRelease.
		RetainResults: true,
	}
}

// TestLiveDeterministicAcrossConcurrency is the headline guarantee of the
// epoch layer: a seeded live grid produces bit-identical per-(epoch,
// coalition) outcomes and identical cumulative positions whether the
// coalition-days run one at a time or all at once.
func TestLiveDeterministicAcrossConcurrency(t *testing.T) {
	evo := testEvolution(t, 3, dataset.ChurnConfig{JoinRate: 0.25, DepartRate: 0.15, FailRate: 0.1})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	var base *LiveResult
	for _, conc := range []int{1, 2, 4} {
		res, err := RunLive(ctx, testLiveConfig(5, conc), evo)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		if len(res.Epochs) != 3 {
			t.Fatalf("concurrency %d: %d epochs", conc, len(res.Epochs))
		}
		if base == nil {
			base = res
			continue
		}
		for e := range res.Epochs {
			a, b := base.Epochs[e], res.Epochs[e]
			if len(a.Coalitions) != len(b.Coalitions) {
				t.Fatalf("concurrency %d epoch %d: coalition counts diverge", conc, e)
			}
			for i := range a.Coalitions {
				ca, cb := a.Coalitions[i], b.Coalitions[i]
				if ca.Name != cb.Name || ca.Folded != cb.Folded || len(ca.Results) != len(cb.Results) {
					t.Fatalf("concurrency %d epoch %d coalition %d diverged structurally", conc, e, i)
				}
				for w := range ca.Results {
					ra, rb := ca.Results[w], cb.Results[w]
					if ra.Kind != rb.Kind || ra.Price != rb.Price || ra.PHat != rb.PHat ||
						ra.SellerCount != rb.SellerCount || ra.BuyerCount != rb.BuyerCount ||
						ra.BytesOnWire != rb.BytesOnWire || len(ra.Trades) != len(rb.Trades) {
						t.Fatalf("concurrency %d: epoch %d coalition %s window %d diverged:\n%+v\nvs\n%+v",
							conc, e, ca.Name, w, ra, rb)
					}
					for k := range ra.Trades {
						if ra.Trades[k] != rb.Trades[k] {
							t.Fatalf("concurrency %d: epoch %d coalition %s window %d trade %d diverged", conc, e, ca.Name, w, k)
						}
					}
				}
			}
		}
		if len(base.Positions) != len(res.Positions) {
			t.Fatalf("concurrency %d: position counts diverge", conc)
		}
		for i := range base.Positions {
			if base.Positions[i] != res.Positions[i] {
				t.Fatalf("concurrency %d: position %s diverged:\n%+v\nvs\n%+v",
					conc, base.Positions[i].ID, base.Positions[i], res.Positions[i])
			}
		}
	}
}

// TestLiveMatchesOracle checks every epoch's private outcomes against the
// plaintext clearing oracle over that epoch's trace and partition.
func TestLiveMatchesOracle(t *testing.T) {
	evo := testEvolution(t, 3, dataset.ChurnConfig{JoinRate: 0.2, DepartRate: 0.2})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := RunLive(ctx, testLiveConfig(9, 0), evo)
	if err != nil {
		t.Fatal(err)
	}
	params := market.DefaultParams()
	for e, er := range res.Epochs {
		if er.Windows == 0 {
			t.Errorf("epoch %d completed no windows", e)
		}
		for _, cr := range er.Coalitions {
			if cr.Folded {
				continue
			}
			if cr.Err != nil {
				t.Fatalf("epoch %d coalition %s: %v", e, cr.Name, cr.Err)
			}
			sub, err := evo.Epochs[e].Trace.Select(cr.Members)
			if err != nil {
				t.Fatal(err)
			}
			for w, got := range cr.Results {
				inputs, err := sub.WindowInputs(w)
				if err != nil {
					t.Fatal(err)
				}
				clr, err := market.Clear(sub.Agents(), inputs, params)
				if err != nil {
					t.Fatal(err)
				}
				if got.Kind != clr.Kind {
					t.Errorf("epoch %d %s w%d: kind %v, oracle %v", e, cr.Name, w, got.Kind, clr.Kind)
				}
				if math.Abs(got.Price-clr.Price) > 1e-4 {
					t.Errorf("epoch %d %s w%d: price %v, oracle %v", e, cr.Name, w, got.Price, clr.Price)
				}
				if len(got.Trades) != len(clr.Trades) {
					t.Errorf("epoch %d %s w%d: %d trades, oracle %d", e, cr.Name, w, len(got.Trades), len(clr.Trades))
				}
			}
		}
	}
}

// TestLiveRekeying: every epoch provisions fresh key material under a fresh
// transport scope — re-key cost is accounted separately from trading, and
// each (epoch, coalition) scope carries its own traffic.
func TestLiveRekeying(t *testing.T) {
	evo := testEvolution(t, 2, dataset.ChurnConfig{JoinRate: 0.2, DepartRate: 0.1})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := RunLive(ctx, testLiveConfig(13, 0), evo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rekey <= 0 || res.Trading <= 0 {
		t.Fatalf("phase accounting missing: rekey %v, trading %v", res.Rekey, res.Trading)
	}
	seen := make(map[string]bool)
	for e, er := range res.Epochs {
		if er.Rekey <= 0 {
			t.Errorf("epoch %d reports no re-key cost", e)
		}
		for _, cr := range er.Coalitions {
			if cr.Err != nil {
				continue
			}
			if seen[cr.Name] {
				t.Errorf("scope %s reused across epochs", cr.Name)
			}
			seen[cr.Name] = true
			if cr.Bytes <= 0 {
				t.Errorf("coalition %s accounted no traffic", cr.Name)
			}
			if cr.Rekey <= 0 {
				t.Errorf("coalition %s accounted no re-key time", cr.Name)
			}
		}
	}
}

// TestLiveConservationAcrossChurn is the cross-epoch settlement property:
// under every churn mix, fleet-wide PEM energy and payments balance to
// zero across epochs, the cumulative grid legs reconcile with the per-epoch
// settlements, and a departed agent's position is frozen at its exit epoch.
func TestLiveConservationAcrossChurn(t *testing.T) {
	mixes := map[string]dataset.ChurnConfig{
		"join-only":   {JoinRate: 0.4},
		"depart-only": {DepartRate: 0.3},
		"fail-heavy":  {FailRate: 0.35, JoinRate: 0.1},
		"mixed":       {JoinRate: 0.25, DepartRate: 0.2, FailRate: 0.15},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
	defer cancel()
	for name, churn := range mixes {
		t.Run(name, func(t *testing.T) {
			evo := testEvolution(t, 3, churn)
			res, err := RunLive(ctx, testLiveConfig(31, 0), evo)
			if err != nil {
				t.Fatal(err)
			}

			// PEM-internal conservation: what sellers sold, buyers bought;
			// what buyers paid, sellers earned.
			if math.Abs(res.EnergyImbalanceKWh) > 1e-9 {
				t.Errorf("PEM energy imbalance %v kWh", res.EnergyImbalanceKWh)
			}
			if math.Abs(res.PaymentImbalanceCents) > 1e-6 {
				t.Errorf("PEM payment imbalance %v cents", res.PaymentImbalanceCents)
			}

			// Grid legs reconcile: the sum of per-agent cumulative grid
			// flows equals the sum of the per-epoch settlements.
			var posImp, posExp, setImp, setExp float64
			for _, p := range res.Positions {
				posImp += p.Flows.GridImportKWh
				posExp += p.Flows.GridExportKWh
			}
			for _, er := range res.Epochs {
				if er.Settlement == nil {
					t.Fatalf("epoch %d has no settlement", er.Epoch)
				}
				setImp += er.Settlement.Fleet.ImportKWh
				setExp += er.Settlement.Fleet.ExportKWh
			}
			if math.Abs(posImp-setImp) > 1e-6 || math.Abs(posExp-setExp) > 1e-6 {
				t.Errorf("grid legs diverge: positions import/export %v/%v, settlements %v/%v",
					posImp, posExp, setImp, setExp)
			}

			// Leavers freeze at their exit epoch; survivors stay active.
			exitEpoch := make(map[string]int)
			exitKind := make(map[string]string)
			for _, ev := range evo.Events {
				switch ev.Kind {
				case dataset.ChurnDepart, dataset.ChurnFail:
					exitEpoch[ev.ID] = ev.Epoch - 1
					exitKind[ev.ID] = string(ev.Kind)
				}
			}
			for _, p := range res.Positions {
				if want, left := exitEpoch[p.ID]; left {
					if p.Active() || p.ExitEpoch != want || p.ExitKind != exitKind[p.ID] {
						t.Errorf("leaver %s not frozen at exit: %+v (want exit epoch %d, kind %s)",
							p.ID, p, want, exitKind[p.ID])
					}
				} else if !p.Active() {
					t.Errorf("survivor %s frozen: %+v", p.ID, p)
				}
			}
		})
	}
}

// TestLiveShrinksCoalitionCount: when churn leaves fewer homes than the
// requested coalitions can fill, the epoch degrades to the largest feasible
// count instead of aborting the day.
func TestLiveShrinksCoalitionCount(t *testing.T) {
	evo, err := dataset.Evolve(dataset.FleetConfig{
		Coalitions:        1,
		HomesPerCoalition: 6,
		Windows:           1,
		Seed:              8,
	}, dataset.ChurnConfig{Epochs: 3, DepartRate: 0.4, MinHomes: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	cfg := LiveConfig{
		Grid:       Config{Engine: testEngineConfig(17), MinCoalition: 2},
		Coalitions: 3,
	}
	res, err := RunLive(ctx, cfg, evo)
	if err != nil {
		t.Fatal(err)
	}
	for e, er := range res.Epochs {
		if max := len(evo.Epochs[e].Trace.Homes) / 2; len(er.Coalitions) > max {
			t.Errorf("epoch %d: %d coalitions for %d homes", e, len(er.Coalitions), len(evo.Epochs[e].Trace.Homes))
		}
		if len(er.Coalitions) == 0 {
			t.Errorf("epoch %d ran no coalitions", e)
		}
	}
}

// TestLiveCoalitionCapRespectsFloor: degrading the coalition count must
// account for MinCoalition — 6 homes under the default floor of 3 must run
// two real 3-agent markets, not fold three 2-agent slivers to the grid.
func TestLiveCoalitionCapRespectsFloor(t *testing.T) {
	evo, err := dataset.Evolve(dataset.FleetConfig{
		Coalitions:        1,
		HomesPerCoalition: 6,
		Windows:           1,
		Seed:              3,
	}, dataset.ChurnConfig{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	cfg := LiveConfig{Grid: Config{Engine: testEngineConfig(19)}, Coalitions: 3, RetainResults: true}
	res, err := RunLive(ctx, cfg, evo)
	if err != nil {
		t.Fatal(err)
	}
	er := res.Epochs[0]
	if len(er.Coalitions) != 2 {
		t.Fatalf("%d coalitions, want 2 (6 homes / floor 3)", len(er.Coalitions))
	}
	for _, cr := range er.Coalitions {
		if cr.Folded || cr.Err != nil || len(cr.Results) != 1 {
			t.Errorf("coalition %s should have run a real market: folded=%v err=%v", cr.Name, cr.Folded, cr.Err)
		}
	}
}

// TestLiveFailureKeepsCompletedEpochs: a poisoned later epoch aborts the
// simulation but the completed epochs' results and positions survive.
func TestLiveFailureKeepsCompletedEpochs(t *testing.T) {
	evo := testEvolution(t, 3, dataset.ChurnConfig{})
	evo.Epochs[1].Trace.Gen[0][0] = math.Inf(1)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	cfg := testLiveConfig(23, 0)
	cfg.Grid.MinCoalition = 2
	res, err := RunLive(ctx, cfg, evo)
	if err == nil {
		t.Fatal("poisoned live grid returned nil error")
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("%d epochs recorded, want 2 (one complete, one partial)", len(res.Epochs))
	}
	if res.Epochs[0].Windows == 0 {
		t.Error("completed epoch lost its windows")
	}
	var anyFailed bool
	for _, cr := range res.Epochs[1].Coalitions {
		if cr.failure() {
			anyFailed = true
		}
	}
	if !anyFailed {
		t.Error("failed epoch records no failing coalition")
	}
}

// TestLiveRejectsBadConfig covers the live-level validation.
func TestLiveRejectsBadConfig(t *testing.T) {
	evo := testEvolution(t, 1, dataset.ChurnConfig{})
	ctx := context.Background()
	if _, err := RunLive(ctx, LiveConfig{Grid: Config{Engine: testEngineConfig(1)}}, evo); err == nil {
		t.Error("accepted zero coalitions")
	}
	cfg := testLiveConfig(1, 0)
	cfg.Grid.Engine.Namespace = "mine"
	if _, err := RunLive(ctx, cfg, evo); err == nil {
		t.Error("accepted caller-set namespace")
	}
	cfg = testLiveConfig(1, 0)
	cfg.Partition = "zodiac"
	if _, err := RunLive(ctx, cfg, evo); err == nil {
		t.Error("accepted unknown partition strategy")
	}
	if _, err := RunLive(ctx, testLiveConfig(1, 0), nil); err == nil {
		t.Error("accepted nil evolution")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := RunLive(cancelled, testLiveConfig(1, 0), evo); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run: err = %v, want context.Canceled", err)
	}
}
