package grid

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/market"
)

// coalitionDigest is the light per-coalition fingerprint used to compare
// streamed deliveries against batch runs bit for bit: everything that
// survives the payload release plus the ledger chain head.
type coalitionDigest struct {
	Name      string
	ChainHead string
	Residual  market.CoalitionResidual
	Bytes     int64
	Msgs      int64
	Windows   int
	Folded    bool
}

func digest(cr *CoalitionRun) coalitionDigest {
	return coalitionDigest{
		Name: cr.Name, ChainHead: cr.ChainHead, Residual: cr.Residual,
		Bytes: cr.Bytes, Msgs: cr.Msgs, Windows: cr.Windows, Folded: cr.Folded,
	}
}

// TestGridTiersSingletonIdentity is the grid-level 1-tier acceptance check:
// wrapping every coalition in its own singleton district (Tiers = [1]) must
// reproduce the flat grid bit for bit — same per-coalition outcomes and
// ledger heads, zero netting at every tier, and an identical fleet
// settlement — because a singleton tier is a pure pass-through wrapper.
func TestGridTiersSingletonIdentity(t *testing.T) {
	tr := testFleet(t, 3, 3, 2)
	parts, err := Partition(StrategyFixed, tr.Homes, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	flat, err := Run(ctx, Config{Engine: testEngineConfig(33)}, tr, parts)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Tiers != nil {
		t.Fatal("flat run reports tiers")
	}
	tiered, err := Run(ctx, Config{Engine: testEngineConfig(33), Tiers: []int{1}}, tr, parts)
	if err != nil {
		t.Fatal(err)
	}
	if tiered.Tiers == nil || len(tiered.Tiers.Tiers) != 3 {
		t.Fatalf("singleton hierarchy missing tiers: %+v", tiered.Tiers)
	}
	for _, ts := range tiered.Tiers.Tiers {
		if ts.MatchedKWh != 0 || ts.NettingGainCents != 0 {
			t.Errorf("singleton tier %s netted %v kWh", ts.Tier, ts.MatchedKWh)
		}
	}
	for i := range flat.Coalitions {
		if da, db := digest(&flat.Coalitions[i]), digest(&tiered.Coalitions[i]); da != db {
			t.Errorf("coalition %d diverged under singleton tiers:\n%+v\nvs\n%+v", i, da, db)
		}
	}
	// The grid boundary sees the exact same quantities (under district
	// names), so the fleet settlement is bit-identical.
	if tiered.Settlement.Fleet != flat.Settlement.Fleet {
		t.Errorf("fleet settlement diverged: %+v vs %+v", tiered.Settlement.Fleet, flat.Settlement.Fleet)
	}
	if tiered.Settlement != tiered.Tiers.Grid {
		t.Error("tiered Settlement is not the hierarchy's grid boundary")
	}
}

// TestGridTiersWithFoldedCoalitions runs a multi-tier hierarchy over a
// partition whose tail coalitions fall below MinCoalition and fold to
// grid-tariff service: their residuals must flow through the tier tree like
// everyone else's, and energy must be conserved from coalition leaves
// through tier netting to the tariff boundary.
func TestGridTiersWithFoldedCoalitions(t *testing.T) {
	tr := testFleet(t, 3, 4, 1) // 12 homes
	// Five coalitions of sizes 3,3,2,2,2 — the last three fold under the
	// default floor of 3. Tiers[0]=2 groups them d00(c0,c1), d01(c2,c3),
	// d02(c4); Tiers[1]=2 wraps the districts r00(d00,d01), r01(d02).
	parts, err := Partition(StrategyFixed, tr.Homes, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{Engine: testEngineConfig(35), Tiers: []int{2, 2}}, tr, parts)
	if err != nil {
		t.Fatal(err)
	}

	folded := 0
	for _, cr := range res.Coalitions {
		if cr.Folded {
			folded++
		}
	}
	if folded != 3 {
		t.Fatalf("%d folded coalitions, want 3", folded)
	}
	if res.Tiers == nil {
		t.Fatal("no tiered settlement")
	}
	// TierSettlement.Level is depth below the root: regions are the root's
	// children (level 1), districts sit beneath them (level 2).
	wantTiers := map[string]int{"d00": 2, "d01": 2, "d02": 2, "r00": 1, "r01": 1}
	if len(res.Tiers.Tiers) != len(wantTiers) {
		t.Fatalf("%d tiers, want %d: %+v", len(res.Tiers.Tiers), len(wantTiers), res.Tiers.Tiers)
	}
	for _, ts := range res.Tiers.Tiers {
		if lvl, ok := wantTiers[ts.Tier]; !ok || lvl != ts.Level {
			t.Errorf("unexpected tier %s at level %d", ts.Tier, ts.Level)
		}
	}

	// Conservation: leaves (folded included) = tier matched + tariff, both
	// sides.
	var leafImp, leafExp float64
	for _, cr := range res.Coalitions {
		if cr.settleable() {
			leafImp += cr.Residual.ImportKWh
			leafExp += cr.Residual.ExportKWh
		}
	}
	const eps = 1e-9
	if math.Abs(leafImp-res.Tiers.MatchedKWh-res.Settlement.Fleet.ImportKWh) > eps {
		t.Errorf("import not conserved: leaves %v, matched %v, tariff %v",
			leafImp, res.Tiers.MatchedKWh, res.Settlement.Fleet.ImportKWh)
	}
	if math.Abs(leafExp-res.Tiers.MatchedKWh-res.Settlement.Fleet.ExportKWh) > eps {
		t.Errorf("export not conserved: leaves %v, matched %v, tariff %v",
			leafExp, res.Tiers.MatchedKWh, res.Settlement.Fleet.ExportKWh)
	}
}

// TestStreamMatchesRun is the streaming determinism guarantee: a seeded
// Stream delivers the same per-coalition outcomes — ledger chain heads,
// residuals, traffic — in partition order and folds to the same settlement
// as the batch Run, at any sink consumption speed and coalition
// concurrency; and the streamed result retains no per-coalition payload.
func TestStreamMatchesRun(t *testing.T) {
	tr := testFleet(t, 3, 3, 2)
	parts, err := Partition(StrategyFixed, tr.Homes, 4, 0) // sizes 3,2,2,2: tail folds
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	cfg := Config{Engine: testEngineConfig(37)}

	batch, err := Run(ctx, cfg, tr, parts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]coalitionDigest, len(batch.Coalitions))
	for i := range batch.Coalitions {
		want[i] = digest(&batch.Coalitions[i])
	}

	delays := map[string]func(int) time.Duration{
		"instant": func(int) time.Duration { return 0 },
		"slow":    func(int) time.Duration { return 5 * time.Millisecond },
		"ragged":  func(i int) time.Duration { return time.Duration(i%3) * 3 * time.Millisecond },
	}
	for name, delay := range delays {
		for _, conc := range []int{0, 1} {
			scfg := cfg
			scfg.MaxConcurrent = conc
			var got []coalitionDigest
			res, err := Stream(ctx, scfg, tr, parts, func(cr *CoalitionRun) error {
				time.Sleep(delay(len(got)))
				if !cr.Folded && (cr.Results == nil || cr.Ledger == nil) {
					t.Errorf("%s/%d: %s delivered without payload", name, conc, cr.Name)
				}
				got = append(got, digest(cr))
				return nil
			})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, conc, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%d: %d deliveries, want %d", name, conc, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s/%d: delivery %d diverged from batch:\n%+v\nvs\n%+v", name, conc, i, got[i], want[i])
				}
			}
			if res.Coalitions != nil {
				t.Errorf("%s/%d: streamed result retained coalition payloads", name, conc)
			}
			if res.Settlement.Fleet != batch.Settlement.Fleet ||
				res.Windows != batch.Windows || res.TotalBytes != batch.TotalBytes ||
				res.TotalMessages != batch.TotalMessages {
				t.Errorf("%s/%d: streamed fold diverged from batch", name, conc)
			}
		}
	}
}

// TestStreamSinkErrorAborts: a sink error cancels the in-flight coalitions
// and surfaces as the run error.
func TestStreamSinkErrorAborts(t *testing.T) {
	tr := testFleet(t, 3, 2, 1)
	parts, err := Partition(StrategyFixed, tr.Homes, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	boom := errors.New("sink full")
	calls := 0
	_, err = Stream(ctx, Config{Engine: testEngineConfig(39), MinCoalition: 2, MaxConcurrent: 1}, tr, parts,
		func(cr *CoalitionRun) error {
			calls++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if calls != 1 {
		t.Errorf("sink called %d times after aborting, want 1", calls)
	}
}

// TestStreamLiveMatchesRunLive: the live-grid streaming variant delivers
// every epoch's settlement and folds to the same positions and conservation
// figures as the batch RunLive, with no epochs retained on the result.
func TestStreamLiveMatchesRunLive(t *testing.T) {
	evo := testEvolution(t, 3, dataset.ChurnConfig{JoinRate: 0.2, DepartRate: 0.15})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	batch, err := RunLive(ctx, testLiveConfig(41, 0), evo)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testLiveConfig(41, 0)
	cfg.RetainResults = false
	type epochDigest struct {
		Epoch   int
		Agents  int
		Windows int
		Fleet   market.CoalitionSettlement
	}
	var got []epochDigest
	res, err := StreamLive(ctx, cfg, evo, func(er *EpochResult) error {
		time.Sleep(2 * time.Millisecond)
		got = append(got, epochDigest{er.Epoch, er.Agents, er.Windows, er.Settlement.Fleet})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != nil {
		t.Error("streamed live result retained epochs")
	}
	if len(got) != len(batch.Epochs) {
		t.Fatalf("%d epoch deliveries, want %d", len(got), len(batch.Epochs))
	}
	for i, er := range batch.Epochs {
		want := epochDigest{er.Epoch, er.Agents, er.Windows, er.Settlement.Fleet}
		if got[i] != want {
			t.Errorf("epoch %d diverged:\n%+v\nvs\n%+v", i, got[i], want)
		}
	}
	if len(res.Positions) != len(batch.Positions) {
		t.Fatal("position counts diverged")
	}
	for i := range res.Positions {
		if res.Positions[i] != batch.Positions[i] {
			t.Errorf("position %s diverged", res.Positions[i].ID)
		}
	}
	if res.EnergyImbalanceKWh != batch.EnergyImbalanceKWh ||
		res.PaymentImbalanceCents != batch.PaymentImbalanceCents ||
		res.Windows != batch.Windows || res.TotalBytes != batch.TotalBytes {
		t.Error("streamed live fold diverged from batch")
	}
	if _, err := StreamLive(ctx, cfg, evo, nil); err == nil {
		t.Error("nil sink accepted")
	}
}

// TestLivePayloadRelease is the memory regression test for the epoch layer:
// by default RunLive must not retain any epoch's heavy per-coalition
// payload once its flows reach the position book — the payloads are real,
// reclaimable memory, verified with runtime.ReadMemStats.
func TestLivePayloadRelease(t *testing.T) {
	evo := testEvolution(t, 3, dataset.ChurnConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	// Default: released. Light aggregates survive.
	cfg := testLiveConfig(43, 0)
	cfg.RetainResults = false
	res, err := RunLive(ctx, cfg, evo)
	if err != nil {
		t.Fatal(err)
	}
	for _, er := range res.Epochs {
		for _, cr := range er.Coalitions {
			if cr.Results != nil || cr.Flows != nil || cr.Ledger != nil || cr.Members != nil || cr.IDs != nil {
				t.Fatalf("%s retained heavy payload by default", cr.Name)
			}
			if !cr.Folded {
				if cr.Windows == 0 || cr.ChainHead == "" {
					t.Errorf("%s lost its light aggregates: windows=%d head=%q", cr.Name, cr.Windows, cr.ChainHead)
				}
			}
		}
	}

	// Retained: the payloads exist, and releasing them frees measurable
	// heap — the regression guard that they never become dark, unreachable-
	// but-held memory again.
	cfg.RetainResults = true
	retained, err := RunLive(ctx, cfg, evo)
	if err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)
	before := ms.HeapAlloc
	for e := range retained.Epochs {
		for i := range retained.Epochs[e].Coalitions {
			retained.Epochs[e].Coalitions[i].releasePayload()
		}
	}
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)
	after := ms.HeapAlloc
	runtime.KeepAlive(retained)
	if after >= before {
		t.Errorf("releasing retained payloads freed no heap: %d -> %d bytes", before, after)
	}
}
