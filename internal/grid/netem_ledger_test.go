package grid

import (
	"context"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/netem"
)

// runTestGrid executes one grid day over the given engine config.
func runTestGrid(t *testing.T, ecfg core.Config, maxConc int) *Result {
	t.Helper()
	tr := testFleet(t, 2, 3, 2)
	parts, err := Partition(StrategyFixed, tr.Homes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{Engine: ecfg, MaxConcurrent: maxConc}, tr, parts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoalitionLedgersVerify is the settlement-path ledger wiring: every
// completed coalition carries a tamper-evident chain whose blocks mirror
// the coalition's window results, and tampering is detected.
func TestCoalitionLedgersVerify(t *testing.T) {
	res := runTestGrid(t, testEngineConfig(5), 0)
	for _, cr := range res.Coalitions {
		if cr.Err != nil {
			t.Fatalf("coalition %s failed: %v", cr.Name, cr.Err)
		}
		if cr.Ledger == nil {
			t.Fatalf("coalition %s has no ledger", cr.Name)
		}
		if err := cr.Ledger.Verify(); err != nil {
			t.Fatalf("coalition %s ledger: %v", cr.Name, err)
		}
		// Genesis + one block per window, in window order, with the
		// window's price and trade count.
		if got, want := cr.Ledger.Len(), len(cr.Results)+1; got != want {
			t.Fatalf("coalition %s chain height %d, want %d", cr.Name, got, want)
		}
		for i, wr := range cr.Results {
			blk, err := cr.Ledger.Block(i + 1)
			if err != nil {
				t.Fatal(err)
			}
			if blk.Window != wr.Window || blk.PriceCentsPerKWh != wr.Price || len(blk.Trades) != len(wr.Trades) {
				t.Errorf("coalition %s block %d = (w%d, %v, %d trades), want (w%d, %v, %d)",
					cr.Name, i+1, blk.Window, blk.PriceCentsPerKWh, len(blk.Trades),
					wr.Window, wr.Price, len(wr.Trades))
			}
		}
	}

	// Tampering with any block must break verification.
	led := res.Coalitions[0].Ledger
	if err := led.TamperForTest(1, func(b *ledger.Block) { b.PriceCentsPerKWh += 1 }); err != nil {
		t.Fatal(err)
	}
	if err := led.Verify(); err == nil {
		t.Error("tampered coalition ledger verified clean")
	}
}

// TestEpochCoalitionLedgersVerify extends the ledger wiring to the live
// grid: chain integrity holds per (epoch, coalition), and folded coalitions
// (which never trade) carry no chain.
func TestEpochCoalitionLedgersVerify(t *testing.T) {
	evo, err := dataset.Evolve(dataset.FleetConfig{
		Coalitions:        2,
		HomesPerCoalition: 3,
		Windows:           1,
		Seed:              42,
	}, dataset.ChurnConfig{Epochs: 3, JoinRate: 0.2, DepartRate: 0.15, FailRate: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := RunLive(ctx, LiveConfig{
		Grid:          Config{Engine: testEngineConfig(5), MinCoalition: 2},
		Coalitions:    2,
		RetainResults: true,
	}, evo)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(res.Epochs))
	}
	for _, er := range res.Epochs {
		for _, cr := range er.Coalitions {
			if cr.Folded {
				if cr.Ledger != nil {
					t.Errorf("%s: folded coalition carries a ledger", cr.Name)
				}
				continue
			}
			if cr.Err != nil {
				t.Fatalf("%s failed: %v", cr.Name, cr.Err)
			}
			if cr.Ledger == nil {
				t.Fatalf("%s has no ledger", cr.Name)
			}
			if err := cr.Ledger.Verify(); err != nil {
				t.Errorf("%s ledger: %v", cr.Name, err)
			}
			if got, want := cr.Ledger.Len(), len(cr.Results)+1; got != want {
				t.Errorf("%s chain height %d, want %d", cr.Name, got, want)
			}
		}
	}
}

// TestEmulatedGridBitIdentical: an emulated grid day reports identical
// per-coalition virtual metrics and ledger head hashes at any coalition
// concurrency — the grid-level netem determinism guarantee.
func TestEmulatedGridBitIdentical(t *testing.T) {
	ecfg := testEngineConfig(9)
	ecfg.Network = netem.TopologyMetro

	serial := runTestGrid(t, ecfg, 1)
	concurrent := runTestGrid(t, ecfg, 0)

	if len(serial.Coalitions) != len(concurrent.Coalitions) {
		t.Fatal("coalition count diverged")
	}
	for i := range serial.Coalitions {
		a, b := &serial.Coalitions[i], &concurrent.Coalitions[i]
		if a.Bytes != b.Bytes || a.Msgs != b.Msgs || a.VirtualLatency != b.VirtualLatency || a.Rounds != b.Rounds {
			t.Errorf("coalition %s metrics diverged: %d/%d/%v/%d vs %d/%d/%v/%d",
				a.Name, a.Bytes, a.Msgs, a.VirtualLatency, a.Rounds,
				b.Bytes, b.Msgs, b.VirtualLatency, b.Rounds)
		}
		if a.Ledger.Head().Hash != b.Ledger.Head().Hash {
			t.Errorf("coalition %s ledger head diverged across concurrency", a.Name)
		}
		if a.VirtualLatency == 0 || a.Rounds == 0 || a.Msgs == 0 {
			t.Errorf("coalition %s missing emulated metrics: %+v/%d/%d", a.Name, a.VirtualLatency, a.Rounds, a.Msgs)
		}
	}
	if serial.TotalMessages == 0 || serial.TotalMessages != concurrent.TotalMessages {
		t.Errorf("total messages diverged: %d vs %d", serial.TotalMessages, concurrent.TotalMessages)
	}
	if serial.VirtualLatency == 0 || serial.VirtualLatency != concurrent.VirtualLatency {
		t.Errorf("grid virtual latency diverged: %v vs %v", serial.VirtualLatency, concurrent.VirtualLatency)
	}
}
