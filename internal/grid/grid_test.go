package grid

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/ot"
)

func testEngineConfig(seed int64) core.Config {
	return core.Config{
		KeyBits:    256,
		OTGroup:    ot.TestGroup(),
		PreEncrypt: true,
		Seed:       &seed,
	}
}

func testFleet(t *testing.T, coalitions, homes, windows int) *dataset.Trace {
	t.Helper()
	tr, err := dataset.GenerateFleet(dataset.FleetConfig{
		Coalitions:        coalitions,
		HomesPerCoalition: homes,
		Windows:           windows,
		Seed:              42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPartitionSizesAndDeterminism(t *testing.T) {
	tr := testFleet(t, 3, 4, 1) // 12 homes
	for _, s := range Strategies() {
		a, err := Partition(s, tr.Homes, 5, 7) // sizes 3,3,2,2,2
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		b, err := Partition(s, tr.Homes, 5, 7)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		wantSizes := []int{3, 3, 2, 2, 2}
		for i, part := range a {
			if len(part) != wantSizes[i] {
				t.Errorf("%s: coalition %d size %d, want %d", s, i, len(part), wantSizes[i])
			}
			for j, h := range part {
				if seen[h] {
					t.Errorf("%s: home %d in two coalitions", s, h)
				}
				seen[h] = true
				if b[i][j] != h {
					t.Errorf("%s: partition not deterministic", s)
				}
			}
		}
		if len(seen) != 12 {
			t.Errorf("%s: %d homes assigned, want 12", s, len(seen))
		}
	}
	// The random strategy must actually depend on the seed.
	a, _ := Partition(StrategyRandom, tr.Homes, 4, 1)
	b, _ := Partition(StrategyRandom, tr.Homes, 4, 2)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("random partition ignored its seed")
	}
}

func TestPartitionErrors(t *testing.T) {
	tr := testFleet(t, 1, 4, 1)
	if _, err := Partition(StrategyFixed, tr.Homes, 0, 0); err == nil {
		t.Error("accepted zero coalitions")
	}
	if _, err := Partition(StrategyFixed, tr.Homes, 3, 0); err == nil {
		t.Error("accepted coalitions of size <2")
	}
	if _, err := Partition("round-robin", tr.Homes, 2, 0); err == nil {
		t.Error("accepted unknown strategy")
	}
}

// TestPartitionBalancedMixes: with half producers and half consumers, every
// balanced coalition must contain at least one of each — the property that
// lets each coalition trade internally at all.
func TestPartitionBalancedMixes(t *testing.T) {
	homes := make([]dataset.Home, 8)
	for i := range homes {
		homes[i] = dataset.Home{ID: string(rune('a' + i)), BaseLoadKW: 1}
		if i < 4 {
			homes[i].SolarCapKW = 5 + float64(i) // producers
		}
	}
	parts, err := Partition(StrategyBalanced, homes, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range parts {
		var producers, consumers int
		for _, h := range part {
			if homes[h].NetCapacityKW() > 0 {
				producers++
			} else {
				consumers++
			}
		}
		if producers == 0 || consumers == 0 {
			t.Errorf("coalition %d not mixed: %d producers, %d consumers", i, producers, consumers)
		}
	}
}

// gridSnapshot strips the non-deterministic fields (durations) from a grid
// result so runs can be compared bit-for-bit.
type windowSnap struct {
	Window      int
	Kind        market.Kind
	Price       float64
	PHat        float64
	Trades      []market.Trade
	Degenerate  bool
	Sellers     int
	Buyers      int
	BytesOnWire int64
}

func snapshot(res *Result) [][]windowSnap {
	out := make([][]windowSnap, len(res.Coalitions))
	for i, cr := range res.Coalitions {
		out[i] = make([]windowSnap, len(cr.Results))
		for w, r := range cr.Results {
			out[i][w] = windowSnap{
				Window: r.Window, Kind: r.Kind, Price: r.Price, PHat: r.PHat,
				Trades: r.Trades, Degenerate: r.Degenerate,
				Sellers: r.SellerCount, Buyers: r.BuyerCount, BytesOnWire: r.BytesOnWire,
			}
		}
	}
	return out
}

// TestGridDeterministicAcrossConcurrency is the headline guarantee: a
// seeded grid produces bit-identical per-coalition outcomes whether the
// coalition-days run one at a time or all at once, partition held fixed.
func TestGridDeterministicAcrossConcurrency(t *testing.T) {
	tr := testFleet(t, 4, 3, 2)
	parts, err := Partition(StrategyBalanced, tr.Homes, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	var base [][]windowSnap
	var baseRes *Result
	for _, conc := range []int{1, 2, 4} {
		res, err := Run(ctx, Config{Engine: testEngineConfig(5), MaxConcurrent: conc}, tr, parts)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		if res.Windows != 4*2 {
			t.Fatalf("concurrency %d: %d windows completed", conc, res.Windows)
		}
		snap := snapshot(res)
		if base == nil {
			base, baseRes = snap, res
			continue
		}
		for i := range snap {
			for w := range snap[i] {
				a, b := base[i][w], snap[i][w]
				if a.Kind != b.Kind || a.Price != b.Price || a.PHat != b.PHat ||
					a.Degenerate != b.Degenerate || a.Sellers != b.Sellers ||
					a.Buyers != b.Buyers || a.BytesOnWire != b.BytesOnWire ||
					len(a.Trades) != len(b.Trades) {
					t.Fatalf("concurrency %d: coalition %d window %d diverged:\n%+v\nvs\n%+v", conc, i, w, a, b)
				}
				for k := range a.Trades {
					if a.Trades[k] != b.Trades[k] {
						t.Fatalf("concurrency %d: coalition %d window %d trade %d diverged", conc, i, w, k)
					}
				}
			}
		}
		if res.Settlement.Fleet != baseRes.Settlement.Fleet {
			t.Fatalf("concurrency %d: settlement diverged: %+v vs %+v", conc, res.Settlement.Fleet, baseRes.Settlement.Fleet)
		}
	}
}

// TestGridMatchesOracle checks every coalition's private outcome against
// the plaintext market.Clear under its mixed scenario, and the settlement
// against hand-computed residuals.
func TestGridMatchesOracle(t *testing.T) {
	tr := testFleet(t, 2, 3, 2)
	parts, err := Partition(StrategyRandom, tr.Homes, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{Engine: testEngineConfig(9)}, tr, parts)
	if err != nil {
		t.Fatal(err)
	}

	params := market.DefaultParams()
	var wantResiduals []market.CoalitionResidual
	for i, cr := range res.Coalitions {
		sub, err := tr.Select(parts[i])
		if err != nil {
			t.Fatal(err)
		}
		agents := sub.Agents()
		want := market.CoalitionResidual{Coalition: cr.Name}
		for w := 0; w < sub.Windows; w++ {
			inputs, err := sub.WindowInputs(w)
			if err != nil {
				t.Fatal(err)
			}
			clr, err := market.Clear(agents, inputs, params)
			if err != nil {
				t.Fatal(err)
			}
			got := cr.Results[w]
			if got.Kind != clr.Kind {
				t.Errorf("%s w%d: kind %v, oracle %v", cr.Name, w, got.Kind, clr.Kind)
			}
			if math.Abs(got.Price-clr.Price) > 1e-4 {
				t.Errorf("%s w%d: price %v, oracle %v", cr.Name, w, got.Price, clr.Price)
			}
			if len(got.Trades) != len(clr.Trades) {
				t.Errorf("%s w%d: %d trades, oracle %d", cr.Name, w, len(got.Trades), len(clr.Trades))
			}
			imp, exp := market.ResidualFromClearing(clr)
			want.ImportKWh += imp
			want.ExportKWh += exp
		}
		if math.Abs(cr.Residual.ImportKWh-want.ImportKWh) > 1e-9 ||
			math.Abs(cr.Residual.ExportKWh-want.ExportKWh) > 1e-9 {
			t.Errorf("%s residual %+v, want %+v", cr.Name, cr.Residual, want)
		}
		wantResiduals = append(wantResiduals, want)
	}
	wantSettle, err := market.SettleResiduals(wantResiduals, params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Settlement.Fleet.NetCost-wantSettle.Fleet.NetCost) > 1e-6 {
		t.Errorf("settlement net cost %v, want %v", res.Settlement.Fleet.NetCost, wantSettle.Fleet.NetCost)
	}
}

// TestGridFailFastIsolation: a poisoned coalition fails alone; coalitions
// already launched complete, unlaunched ones are skipped, and the result
// still carries the completed coalitions' outcomes.
func TestGridFailFastIsolation(t *testing.T) {
	tr := testFleet(t, 3, 2, 1)
	// Poison coalition 1's first home with a net energy the fixed-point
	// encoding must reject.
	tr.Gen[2][0] = math.Inf(1)
	parts, err := Partition(StrategyFixed, tr.Homes, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{Engine: testEngineConfig(3), MaxConcurrent: 1, MinCoalition: 2}, tr, parts)
	if err == nil {
		t.Fatal("poisoned grid returned nil error")
	}
	if res.Coalitions[0].Err != nil || len(res.Coalitions[0].Results) != 1 {
		t.Errorf("coalition 0 should have completed: %+v", res.Coalitions[0].Err)
	}
	if res.Coalitions[1].Err == nil {
		t.Error("poisoned coalition reported no error")
	}
	if !errors.Is(res.Coalitions[2].Err, ErrCoalitionSkipped) {
		t.Errorf("coalition 2 err = %v, want ErrCoalitionSkipped", res.Coalitions[2].Err)
	}
	if res.Settlement == nil || len(res.Settlement.PerCoalition) != 1 {
		t.Errorf("settlement should cover exactly the completed coalition: %+v", res.Settlement)
	}
}

// TestGridNoGoroutineLeak is the regression test for shared-pool ownership:
// after a grid run every engine has released its worker-pool reference and
// closed its nonce-pool goroutines, so repeated runs do not accumulate
// goroutines.
func TestGridNoGoroutineLeak(t *testing.T) {
	tr := testFleet(t, 2, 2, 1)
	parts, err := Partition(StrategyFixed, tr.Homes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	// Warm-up run so lazily-started runtime goroutines don't count.
	if _, err := Run(ctx, Config{Engine: testEngineConfig(7), MinCoalition: 2}, tr, parts); err != nil {
		t.Fatal(err)
	}
	settle := func() int {
		var n int
		for i := 0; i < 100; i++ {
			n = runtime.NumGoroutine()
			time.Sleep(10 * time.Millisecond)
			if runtime.NumGoroutine() == n {
				break
			}
		}
		return n
	}
	before := settle()
	for i := 0; i < 3; i++ {
		if _, err := Run(ctx, Config{Engine: testEngineConfig(7), MinCoalition: 2}, tr, parts); err != nil {
			t.Fatal(err)
		}
	}
	after := settle()
	if after > before+2 {
		t.Errorf("goroutines grew from %d to %d across grid runs", before, after)
	}
}

// TestGridCancelReportsContextError: a clean cancel must surface as the
// context's error, not as a coalition failure — skipped-on-cancel markers
// are bookkeeping, not failures.
func TestGridCancelReportsContextError(t *testing.T) {
	tr := testFleet(t, 2, 2, 1)
	parts, err := Partition(StrategyFixed, tr.Homes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Config{Engine: testEngineConfig(1), MaxConcurrent: 1}, tr, parts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, cr := range res.Coalitions {
		if cr.Err != nil && !errors.Is(cr.Err, ErrCoalitionSkipped) && !errors.Is(cr.Err, context.Canceled) {
			t.Errorf("%s err = %v", cr.Name, cr.Err)
		}
	}
}

func TestGridRejectsBadConfig(t *testing.T) {
	tr := testFleet(t, 2, 2, 1)
	parts, _ := Partition(StrategyFixed, tr.Homes, 2, 0)
	ctx := context.Background()
	cfg := Config{Engine: testEngineConfig(1)}
	cfg.Engine.Namespace = "mine"
	if _, err := Run(ctx, cfg, tr, parts); err == nil {
		t.Error("accepted caller-set namespace")
	}
	if _, err := Run(ctx, Config{Engine: testEngineConfig(1), MaxConcurrent: -1}, tr, parts); err == nil {
		t.Error("accepted negative MaxConcurrent")
	}
	if _, err := Run(ctx, Config{Engine: testEngineConfig(1)}, tr, nil); err == nil {
		t.Error("accepted empty partition")
	}
	if _, err := Run(ctx, Config{Engine: testEngineConfig(1), MinCoalition: 1}, tr, parts); err == nil {
		t.Error("accepted MinCoalition below the engine's two-agent floor")
	}
	if _, err := Run(ctx, Config{Engine: testEngineConfig(1), MinCoalition: -3}, tr, parts); err == nil {
		t.Error("accepted negative MinCoalition")
	}
}

// TestGridFoldsSmallCoalition is the regression test for graceful
// degradation: a coalition below MinCoalition — routine once churn shrinks
// rosters — must not fail the grid. It is folded into grid settlement
// (members trade at the tariff), marked ErrCoalitionSkipped with Folded
// set, and the rest of the grid completes normally.
func TestGridFoldsSmallCoalition(t *testing.T) {
	tr := testFleet(t, 2, 4, 2) // 8 homes
	// Three coalitions of sizes 3, 3, 2: the last is below the default
	// MinCoalition of 3.
	parts, err := Partition(StrategyFixed, tr.Homes, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{Engine: testEngineConfig(21)}, tr, parts)
	if err != nil {
		t.Fatalf("grid with a small coalition failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		if cr := res.Coalitions[i]; cr.Err != nil || len(cr.Results) != 2 {
			t.Errorf("coalition %d should have completed: %+v", i, cr.Err)
		}
	}
	folded := res.Coalitions[2]
	if !folded.Folded {
		t.Fatalf("coalition 2 not folded: %+v", folded)
	}
	if !errors.Is(folded.Err, ErrCoalitionSkipped) {
		t.Errorf("folded coalition err = %v, want ErrCoalitionSkipped", folded.Err)
	}
	if folded.Results != nil {
		t.Error("folded coalition ran protocol windows")
	}

	// The stranded members' residuals are their grid-only baseline and are
	// part of the settlement.
	sub, err := tr.Select(parts[2])
	if err != nil {
		t.Fatal(err)
	}
	params := market.DefaultParams()
	var wantImp, wantExp float64
	for w := 0; w < sub.Windows; w++ {
		inputs, err := sub.WindowInputs(w)
		if err != nil {
			t.Fatal(err)
		}
		base, err := market.BaselineClear(sub.Agents(), inputs, params)
		if err != nil {
			t.Fatal(err)
		}
		imp, exp := market.ResidualFromClearing(base)
		wantImp += imp
		wantExp += exp
	}
	if math.Abs(folded.Residual.ImportKWh-wantImp) > 1e-9 || math.Abs(folded.Residual.ExportKWh-wantExp) > 1e-9 {
		t.Errorf("folded residual %+v, want import %v export %v", folded.Residual, wantImp, wantExp)
	}
	if res.Settlement == nil || len(res.Settlement.PerCoalition) != 3 {
		t.Fatalf("settlement must include the folded coalition: %+v", res.Settlement)
	}
	// MinCoalition 2 runs the same roster as a real market.
	res2, err := Run(ctx, Config{Engine: testEngineConfig(21), MinCoalition: 2}, tr, parts)
	if err != nil {
		t.Fatal(err)
	}
	if cr := res2.Coalitions[2]; cr.Folded || cr.Err != nil || len(cr.Results) != 2 {
		t.Errorf("MinCoalition 2 should run the two-agent coalition: %+v", cr.Err)
	}
}
