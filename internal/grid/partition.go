// Package grid shards a large agent fleet into coalitions and runs them as
// concurrent protocol engines over shared infrastructure — one transport
// bus, one bounded crypto pool — with each coalition's residual supply and
// demand settled against the main grid.
//
// The paper evaluates one coalition; its protocols cost O(n) sequential
// ring rounds per window, so one roster caps fleet size at what a single
// Paillier ring can sustain. Local-energy-market practice partitions large
// fleets into many small markets and clears the residuals upstream; this
// package is that partition. Each coalition is an independent core.Engine
// with a coalition-scoped transport namespace (see transport.ScopedWindowTag),
// so coalitions never cross-talk even though they share the bus, and total
// crypto parallelism stays bounded by the one shared worker pool no matter
// how many coalitions are in flight.
package grid

import (
	"fmt"
	mrand "math/rand"
	"sort"

	"github.com/pem-go/pem/internal/dataset"
)

// Strategy names a partitioning strategy.
type Strategy string

// The built-in strategies. All three are deterministic given their inputs
// and use only public agent metadata (IDs, panel nameplate, contracted base
// load) — a partitioner that read private traces would leak them.
const (
	// StrategyFixed chunks the fleet in roster order: homes [0, H) form
	// coalition 0, [H, 2H) coalition 1, … For a GenerateFleet trace this
	// recovers the scenario-pure blocks.
	StrategyFixed Strategy = "fixed"
	// StrategyRandom shuffles the roster with a seeded permutation before
	// chunking, mixing scenarios uniformly.
	StrategyRandom Strategy = "random"
	// StrategyBalanced greedily mixes producers and consumers: homes are
	// ordered by public net capacity (panel nameplate minus base load) and
	// each is assigned to the open coalition with the lowest running net
	// capacity, so every coalition gets a comparable producer/consumer
	// blend and can actually trade internally.
	StrategyBalanced Strategy = "balanced"
)

// Strategies lists the built-in partition strategies.
func Strategies() []Strategy {
	return []Strategy{StrategyFixed, StrategyRandom, StrategyBalanced}
}

// Partition splits the fleet into the given number of coalitions, returning
// each coalition's member indices into homes. Coalition sizes differ by at
// most one; every coalition has at least two members (an engine needs a
// counterparty), which bounds coalitions at len(homes)/2. seed feeds the
// random strategy only.
func Partition(strategy Strategy, homes []dataset.Home, coalitions int, seed int64) ([][]int, error) {
	n := len(homes)
	if coalitions <= 0 {
		return nil, fmt.Errorf("grid: coalitions must be positive, got %d", coalitions)
	}
	if n < 2*coalitions {
		return nil, fmt.Errorf("grid: %d homes cannot fill %d coalitions of ≥2", n, coalitions)
	}

	sizes := make([]int, coalitions)
	for i := range sizes {
		sizes[i] = n / coalitions
		if i < n%coalitions {
			sizes[i]++
		}
	}

	switch strategy {
	case StrategyFixed, "":
		parts := make([][]int, coalitions)
		next := 0
		for i, size := range sizes {
			parts[i] = make([]int, size)
			for j := range parts[i] {
				parts[i][j] = next
				next++
			}
		}
		return parts, nil

	case StrategyRandom:
		perm := mrand.New(mrand.NewSource(seed)).Perm(n)
		parts := make([][]int, coalitions)
		next := 0
		for i, size := range sizes {
			parts[i] = append([]int(nil), perm[next:next+size]...)
			sort.Ints(parts[i]) // canonical member order within a coalition
			next += size
		}
		return parts, nil

	case StrategyBalanced:
		return partitionBalanced(homes, sizes), nil

	default:
		return nil, fmt.Errorf("grid: unknown partition strategy %q", strategy)
	}
}

// partitionBalanced assigns homes in decreasing public-net-capacity order,
// each to the unfilled coalition with the lowest running capacity sum — the
// classic greedy multiway-balance heuristic. Producers (positive net
// capacity) spread out first, then consumers backfill the emptiest
// coalitions, so no coalition ends up all-sellers or all-buyers if the
// fleet has both. Ties break by ID and coalition index for determinism.
func partitionBalanced(homes []dataset.Home, sizes []int) [][]int {
	order := make([]int, len(homes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ha, hb := homes[order[a]], homes[order[b]]
		if ha.NetCapacityKW() != hb.NetCapacityKW() {
			return ha.NetCapacityKW() > hb.NetCapacityKW()
		}
		return ha.ID < hb.ID
	})

	parts := make([][]int, len(sizes))
	loads := make([]float64, len(sizes))
	for _, h := range order {
		best := -1
		for c := range parts {
			if len(parts[c]) >= sizes[c] {
				continue
			}
			if best == -1 || loads[c] < loads[best] {
				best = c
			}
		}
		parts[best] = append(parts[best], h)
		loads[best] += homes[h].NetCapacityKW()
	}
	for _, p := range parts {
		sort.Ints(p) // canonical member order within a coalition
	}
	return parts
}
