package grid

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/store"
	"github.com/pem-go/pem/internal/transport"
)

// Config configures a grid run.
type Config struct {
	// Engine is the per-coalition protocol configuration. Namespace is
	// managed by the supervisor (each coalition gets its own); setting it
	// here is an error. A non-nil Seed makes every coalition's outcome
	// bit-identical regardless of coalition concurrency, partition held
	// fixed.
	Engine core.Config
	// MaxConcurrent is the global in-flight budget: how many coalition-days
	// run concurrently (default: all of them). Each in-flight coalition may
	// additionally pipeline Engine.MaxInflightWindows windows internally;
	// crypto parallelism stays bounded by the one shared worker pool either
	// way.
	MaxConcurrent int
	// MinCoalition is the smallest roster the supervisor will run a
	// private market for (default 3). A coalition below it — routine once
	// churn shrinks rosters — is not an error: it is folded into grid
	// settlement instead, its stranded agents trading with the main grid
	// at the tariff, and marked with ErrCoalitionSkipped. Set to 2 to run
	// every coalition the partitioner can produce (an engine needs a
	// counterparty, so 2 is the hard floor).
	MinCoalition int
	// Tiers makes the settlement hierarchy recursive: Tiers[0] coalitions
	// roll up into a district, Tiers[1] districts into a region, and so on
	// (consecutive partition indices group together; the last level's nodes
	// attach to the grid boundary). Each tier nets its children's surplus
	// against their deficit before the remainder moves up, so only the
	// unmatched fleet position touches the grid tariff — see
	// market.SettleTiers. Empty means flat: every coalition settles
	// directly at the tariff, bit-identical to the pre-hierarchy grid.
	Tiers []int
	// Store, when set, persists each coalition's outcome as it streams —
	// its ledger blocks, key-material fingerprints and settlement aggregate
	// (folded coalitions persist their grid-tariff aggregate too) — in
	// delivery order, before the streaming payload release. A store error
	// aborts the run like a sink error: durability failures must not pass
	// silently. Nil (the default) keeps runs purely in-memory.
	Store store.Store
}

// DefaultMinCoalition is the default roster floor for running a private
// market: below three agents the paper's protocols degenerate (the ring
// aggregations and pricing game need counterparties beyond the special
// parties), so two-agent coalitions default to grid-tariff settlement.
const DefaultMinCoalition = 3

// minCoalition resolves the configured roster floor.
func (c Config) minCoalition() int {
	if c.MinCoalition == 0 {
		return DefaultMinCoalition
	}
	return c.MinCoalition
}

// validate checks the supervisor-level configuration shared by Run and
// RunLive.
func (c Config) validate() error {
	if c.Engine.Namespace != "" {
		return fmt.Errorf("grid: Engine.Namespace %q is supervisor-managed; leave it empty", c.Engine.Namespace)
	}
	if c.MaxConcurrent < 0 {
		return fmt.Errorf("grid: negative MaxConcurrent %d", c.MaxConcurrent)
	}
	if c.MinCoalition < 0 || c.MinCoalition == 1 {
		return fmt.Errorf("grid: MinCoalition %d out of range (0 = default %d, minimum 2)", c.MinCoalition, DefaultMinCoalition)
	}
	for i, f := range c.Tiers {
		if f < 1 {
			return fmt.Errorf("grid: Tiers[%d] fanout %d must be ≥ 1", i, f)
		}
	}
	return nil
}

// params resolves the market parameters used for oracle accounting.
func (c Config) params() market.Params {
	if c.Engine.Params == (market.Params{}) {
		return market.DefaultParams()
	}
	return c.Engine.Params
}

// CoalitionRun is the outcome of one coalition's trading day.
type CoalitionRun struct {
	// Name is the coalition's supervisor-assigned identifier ("c00", … for
	// one-shot grids, "e01-c00", … for live-grid epochs), which is also its
	// transport tag namespace.
	Name string
	// Members are the coalition's home indices into the fleet trace.
	Members []int
	// IDs are the members' agent IDs.
	IDs []string
	// Results holds the per-window protocol outcomes (nil on failure and
	// for folded coalitions; released after delivery on streaming runs —
	// see Stream).
	Results []*core.WindowResult
	// Windows counts the coalition's completed trading windows. Unlike
	// len(Results) it survives the streaming payload release.
	Windows int
	// Residual is the coalition's day-aggregate unmatched energy, computed
	// from the plaintext oracle clearing exactly like the trading-
	// performance figures (the private protocols reveal neither side). For
	// a folded coalition it is the members' full grid-only position.
	Residual market.CoalitionResidual
	// Flows is the members' per-agent energy and payment accounting over
	// the day, from the same oracle clearings as Residual (grid-only
	// baseline clearings for a folded coalition). The live grid folds it
	// into cross-epoch positions; one-shot callers may ignore it.
	Flows map[string]market.AgentFlows
	// Bytes is the coalition's protocol traffic on the shared bus.
	Bytes int64
	// Msgs is the coalition's protocol message count on the shared bus,
	// mirroring Bytes.
	Msgs int64
	// VirtualLatency is the coalition-day's virtual duration on the
	// emulated network (Engine.Network): the sum of its windows'
	// critical-path latencies, i.e. the time the day would take played
	// back-to-back over the emulated links. Zero on unemulated runs.
	VirtualLatency time.Duration
	// Rounds is the deepest protocol round count any of the coalition's
	// windows reached on the emulated network. Zero on unemulated runs.
	Rounds int
	// Ledger is the coalition's tamper-evident trade log: every completed
	// window's trades and clearing price, hash-chained in window order (nil
	// for folded and failed coalitions). The settlement path commits it
	// before residuals are cleared, so a coalition-day's transactions can
	// be audited per (epoch, coalition) after the fact.
	Ledger *ledger.Ledger
	// ChainHead is the ledger's final chain hash, kept after the streaming
	// payload release so completed streams remain audit-comparable against
	// batch runs without retaining the ledger itself (empty for folded and
	// failed coalitions).
	ChainHead string
	// Keys are the coalition's provisioned key-material fingerprints
	// (public-modulus digests, sorted by party), captured at engine
	// provisioning so the durability layer can record per-(epoch,
	// coalition) re-keying. Nil for folded and failed coalitions; released
	// with the rest of the heavy payload on streaming runs.
	Keys []core.KeyFingerprint
	// Rekey is the time spent provisioning the coalition's engine — fresh
	// Paillier key material for every member plus transport registration.
	// The live grid pays it once per (epoch, coalition); reporting it
	// separately keeps re-keying cost out of steady-state throughput.
	Rekey time.Duration
	// Duration is the coalition-day wall-clock time (engine provisioning
	// included).
	Duration time.Duration
	// Folded marks a coalition that was settled at the grid tariff instead
	// of running a private market because its roster was below
	// Config.MinCoalition. Folded coalitions carry ErrCoalitionSkipped in
	// Err but count as degraded service, not failure: their residuals and
	// flows are real and included in settlement.
	Folded bool
	// Err is the coalition's failure, nil on success. ErrCoalitionSkipped
	// marks coalitions never launched — because an earlier coalition
	// failed, or (with Folded set) because the roster was too small to run.
	Err error
}

// ErrCoalitionSkipped marks coalitions whose private market did not run:
// either the supervisor stopped admitting work after an earlier coalition
// failed, or the roster was below Config.MinCoalition and the coalition was
// folded into grid settlement (distinguished by CoalitionRun.Folded).
var ErrCoalitionSkipped = errors.New("grid: coalition skipped")

// failure reports whether the coalition genuinely failed — skip markers
// (launch-stop bookkeeping and too-small-roster folds) are not failures.
func (cr *CoalitionRun) failure() bool {
	return cr.Err != nil && !errors.Is(cr.Err, ErrCoalitionSkipped)
}

// settleable reports whether the coalition produced a residual position to
// settle: it completed its day, or it was folded to grid-tariff service.
func (cr *CoalitionRun) settleable() bool {
	return cr.Err == nil || cr.Folded
}

// releasePayload drops the coalition's heavy per-window payload — results,
// flows, ledger, roster — keeping only the O(1) aggregates a settlement
// fold needs. Streaming runs call it after the sink has seen the run, which
// is what bounds a 10^5-coalition day to the coalitions in flight.
func (cr *CoalitionRun) releasePayload() {
	cr.Results = nil
	cr.Flows = nil
	cr.Ledger = nil
	cr.Members = nil
	cr.IDs = nil
	cr.Keys = nil
}

// persistCoalition writes one settled coalition's durable records: every
// ledger block in chain order (genesis included — appending it resets the
// scope on a resumed replay), the key-material fingerprints, and the O(1)
// settlement aggregate. Called from the delivery path, so records land in
// partition order and strictly before the streaming payload release. A nil
// store is a no-op.
func persistCoalition(st store.Store, cr *CoalitionRun) error {
	if st == nil {
		return nil
	}
	if cr.Ledger != nil {
		for i := 0; i < cr.Ledger.Len(); i++ {
			blk, err := cr.Ledger.Block(i)
			if err != nil {
				return err
			}
			if err := st.AppendBlock(cr.Name, blk); err != nil {
				return fmt.Errorf("store: coalition %s block %d: %w", cr.Name, i, err)
			}
		}
	}
	for _, fp := range cr.Keys {
		rec := store.KeyRecord{Scope: cr.Name, Party: fp.Party, Fingerprint: append([]byte(nil), fp.Digest[:]...)}
		if err := st.PutKeyMaterial(rec); err != nil {
			return fmt.Errorf("store: coalition %s key material: %w", cr.Name, err)
		}
	}
	agg := store.Aggregate{
		Scope:     cr.Name,
		Windows:   cr.Windows,
		ImportKWh: cr.Residual.ImportKWh,
		ExportKWh: cr.Residual.ExportKWh,
		ChainHead: cr.ChainHead,
		Folded:    cr.Folded,
	}
	if err := st.PutAggregate(agg); err != nil {
		return fmt.Errorf("store: coalition %s aggregate: %w", cr.Name, err)
	}
	return nil
}

// Result is the outcome of a full grid run.
type Result struct {
	// Coalitions holds one entry per partition element, in partition order.
	// Streaming runs leave it nil: per-coalition outcomes are delivered to
	// the sink instead, and only the fold below is retained.
	Coalitions []CoalitionRun
	// Settlement clears the completed and folded coalitions' residuals
	// against the grid tariff (nil when no coalition produced one). With
	// Config.Tiers it is the hierarchy's grid boundary — what survives
	// every tier of netting — and equals Tiers.Grid.
	Settlement *market.GridSettlement
	// Tiers is the recursive settlement under Config.Tiers: one netting
	// outcome per district/region tier plus the grid boundary. Nil on flat
	// runs.
	Tiers *market.TieredSettlement
	// Windows counts completed trading windows across all coalitions.
	Windows int
	// Duration is the whole run's wall-clock time.
	Duration time.Duration
	// TotalBytes is the fleet's protocol traffic.
	TotalBytes int64
	// TotalMessages is the fleet's protocol message count.
	TotalMessages int64
	// VirtualLatency is the grid-day's virtual duration on the emulated
	// network: the slowest coalition's day, since coalition-days run
	// concurrently. Zero on unemulated runs.
	VirtualLatency time.Duration
	// WindowsPerSec is the aggregate throughput: Windows / Duration.
	WindowsPerSec float64
}

// Run executes one trading day for every coalition of the partition over
// shared infrastructure, retaining every coalition's full outcome. Failure
// semantics mirror the window scheduler's: a failing coalition cancels only
// itself; the supervisor then stops launching new coalitions, drains the
// ones in flight, and reports the earliest failed coalition's error.
// Completed coalitions keep their results, and the returned Result is valid
// (with per-coalition Err set) even when err is non-nil. Coalitions below
// Config.MinCoalition are not failures: they are folded into grid
// settlement (see CoalitionRun.Folded).
func Run(ctx context.Context, cfg Config, tr *dataset.Trace, parts [][]int) (*Result, error) {
	return execute(ctx, cfg, tr, parts, nil, true)
}

// Stream executes the same grid day as Run but delivers each coalition's
// full outcome to sink in partition order as soon as that coalition — and
// every coalition before it — has completed, then releases its heavy
// payload. The returned Result carries the fold (settlement, tiers,
// traffic, throughput) with Coalitions nil, so memory stays bounded by the
// coalitions in flight rather than the partition size. The *CoalitionRun
// passed to sink is valid only during the call (copy what must outlive
// it); a sink error cancels the in-flight coalitions and aborts the run.
// Sink is never called for coalitions at or after the first failure. A
// seeded Stream is bit-identical to the batch Run — same per-coalition
// outcomes, ledger chain heads and settlement — at any sink consumption
// speed.
func Stream(ctx context.Context, cfg Config, tr *dataset.Trace, parts [][]int, sink func(*CoalitionRun) error) (*Result, error) {
	return execute(ctx, cfg, tr, parts, sink, false)
}

// execute is the shared body of Run and Stream: launch the partition over
// shared infrastructure, deliver in partition order, fold the settlement.
func execute(ctx context.Context, cfg Config, tr *dataset.Trace, parts [][]int, sink func(*CoalitionRun) error, retain bool) (*Result, error) {
	if len(parts) == 0 {
		return nil, errors.New("grid: empty partition")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	// The shared infrastructure: one bus, one bounded crypto pool. Every
	// engine retains its own pool reference; the supervisor's reference is
	// dropped on return, so the pool retires exactly when the last engine
	// closes.
	bus := transport.NewBus(nil)
	workers := paillier.NewWorkers(cfg.Engine.CryptoWorkers)
	defer workers.Release()

	start := time.Now()
	runs := make([]CoalitionRun, len(parts))
	for i, members := range parts {
		runs[i] = CoalitionRun{
			Name:    fmt.Sprintf("c%02d", i),
			Members: append([]int(nil), members...),
		}
	}

	err := launchCoalitions(ctx, cfg.MaxConcurrent, runs,
		func(int) bool { return true },
		func(runCtx context.Context, _ int, cr *CoalitionRun) {
			runCoalition(runCtx, cfg, bus, workers, tr, cr)
		},
		func(cr *CoalitionRun) error {
			// Durability first: once the sink has seen a coalition, its
			// blocks and aggregate are already down, so a crash after the
			// sink call never loses an observed outcome.
			if err := persistCoalition(cfg.Store, cr); err != nil {
				return err
			}
			if sink != nil {
				if err := sink(cr); err != nil {
					return err
				}
			}
			if !retain {
				cr.releasePayload()
			}
			return nil
		})
	if err != nil {
		err = fmt.Errorf("grid: %w", err)
	}

	res := &Result{}
	if retain {
		res.Coalitions = runs
	}
	res.Duration = time.Since(start)
	for i := range runs {
		cr := &runs[i]
		if cr.Err != nil {
			continue
		}
		res.Windows += cr.Windows
		res.TotalBytes += cr.Bytes
		res.TotalMessages += cr.Msgs
		if cr.VirtualLatency > res.VirtualLatency {
			res.VirtualLatency = cr.VirtualLatency
		}
	}
	settlement, tiers, serr := settleGrid(cfg, runs)
	if serr != nil {
		return res, fmt.Errorf("grid: settlement: %w", serr)
	}
	res.Settlement = settlement
	res.Tiers = tiers
	if res.Duration > 0 {
		res.WindowsPerSec = float64(res.Windows) / res.Duration.Seconds()
	}
	return res, err
}

// settleGrid clears the settleable coalitions' residuals: flat against the
// tariff when cfg.Tiers is empty (the pre-hierarchy path, bit-identical),
// recursively through the tier tree otherwise. Returns (nil, nil, nil)
// when no coalition produced a residual.
func settleGrid(cfg Config, runs []CoalitionRun) (*market.GridSettlement, *market.TieredSettlement, error) {
	var entries []tierEntry
	for i := range runs {
		if cr := &runs[i]; cr.settleable() {
			entries = append(entries, tierEntry{index: i, residual: cr.Residual})
		}
	}
	if len(entries) == 0 {
		return nil, nil, nil
	}
	params := cfg.params()
	if len(cfg.Tiers) == 0 {
		residuals := make([]market.CoalitionResidual, len(entries))
		for i, e := range entries {
			residuals[i] = e.residual
		}
		settlement, err := market.SettleResiduals(residuals, params)
		return settlement, nil, err
	}
	tiers, err := market.SettleTiers(tierTree(cfg.Tiers, entries), params)
	if err != nil {
		return nil, nil, err
	}
	return tiers.Grid, tiers, nil
}

// launchCoalitions runs runOne for every eligible coalition in runs
// concurrently under the maxConc budget (0 = all), filling each entry in
// place, and invokes deliver for each entry in runs order as soon as that
// entry — and every entry before it — has settled (completed, folded, or
// skipped). A failing coalition cancels only itself; after a genuine
// failure the launcher stops admitting coalitions, marks the remaining
// eligible ones skipped, and deliver is not invoked at or after the failed
// index. A deliver error cancels the in-flight coalitions. The returned
// error is the earliest genuine failure ("coalition <name>: …"), a deliver
// error, or ctx.Err() on a clean cancel. Run drives it with
// provision-and-trade bodies, the epoch layer with trade-only bodies over
// pre-keyed engines.
func launchCoalitions(ctx context.Context, maxConc int, runs []CoalitionRun, eligible func(int) bool, runOne func(context.Context, int, *CoalitionRun), deliver func(*CoalitionRun) error) error {
	n := len(runs)
	if n == 0 {
		return nil
	}
	if maxConc <= 0 || maxConc > n {
		maxConc = n
	}

	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	var (
		mu     sync.Mutex
		failed bool
		wg     sync.WaitGroup
		done   = make([]chan struct{}, n)
	)
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, maxConc)

	// Launcher: admit eligible coalitions in order as slots free up,
	// stopping at the first observed failure (ineligible entries — folded
	// or failed during re-key — settle immediately).
	go func() {
		for i := range runs {
			if !eligible(i) {
				close(done[i])
				continue
			}
			sem <- struct{}{}
			mu.Lock()
			stop := failed
			mu.Unlock()
			if stop || runCtx.Err() != nil {
				<-sem
				for j := i; j < n; j++ {
					if eligible(j) {
						runs[j].Err = fmt.Errorf("%w after earlier failure", ErrCoalitionSkipped)
					}
					close(done[j])
				}
				return
			}
			wg.Add(1)
			go func(i int, cr *CoalitionRun) {
				defer wg.Done()
				defer func() { <-sem }()
				defer close(done[i])
				runOne(runCtx, i, cr)
				if cr.failure() {
					mu.Lock()
					failed = true
					mu.Unlock()
				}
			}(i, &runs[i])
		}
	}()

	// Waiter: deliver settled entries in runs order; remember the earliest
	// genuine failure and stop delivering from it on.
	var firstErr error
	for i := 0; i < n; i++ {
		<-done[i]
		cr := &runs[i]
		if firstErr != nil {
			continue
		}
		switch {
		case cr.failure():
			firstErr = fmt.Errorf("coalition %s: %w", cr.Name, cr.Err)
		case deliver != nil:
			if err := deliver(cr); err != nil {
				firstErr = err
				cancelAll() // caller aborted: tear down the in-flight coalitions
			}
		}
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// runCoalition executes one coalition's day: provision an engine over the
// shared resources, run every window through it, and fold the plaintext
// oracle's residuals and per-agent flows. A roster below MinCoalition is
// folded to grid-tariff service instead. All outcomes land in cr.
func runCoalition(ctx context.Context, cfg Config, bus *transport.Bus, workers *paillier.Workers, tr *dataset.Trace, cr *CoalitionRun) {
	begin := time.Now()
	defer func() { cr.Duration = time.Since(begin) }()

	sub, err := tr.Select(cr.Members)
	if err != nil {
		cr.Err = err
		return
	}
	agents := sub.Agents()
	cr.IDs = make([]string, len(agents))
	for i, a := range agents {
		cr.IDs[i] = a.ID
	}

	if len(agents) < cfg.minCoalition() {
		foldCoalition(cfg, sub, cr)
		return
	}

	jobs := make([]core.WindowJob, sub.Windows)
	for w := 0; w < sub.Windows; w++ {
		inputs, err := sub.WindowInputs(w)
		if err != nil {
			cr.Err = err
			return
		}
		jobs[w] = core.WindowJob{Window: w, Inputs: inputs}
	}

	ecfg := cfg.Engine
	ecfg.Namespace = cr.Name
	// The coalition's per-window figures live on in its WindowResults;
	// folding them out of the shared sink as windows complete keeps the
	// bus's metrics bounded by the windows in flight across the whole grid.
	ecfg.CompactWindowMetrics = true
	eng, err := core.NewEngineWith(ecfg, agents, core.Resources{Bus: bus, Workers: workers})
	if err != nil {
		cr.Err = fmt.Errorf("provision: %w", err)
		return
	}
	cr.Keys = eng.KeyFingerprints()
	cr.Rekey = time.Since(begin)
	defer eng.Close()

	results, err := eng.RunWindows(ctx, jobs)
	if err != nil {
		cr.Err = err
		return
	}
	cr.Results = results
	if cr.Err = coalitionAccounting(bus, cr); cr.Err != nil {
		return
	}
	cr.Err = oracleAccounting(cfg, sub, jobs, cr)
}

// coalitionAccounting folds a completed coalition-day's transport and
// virtual-clock figures out of the shared metrics sink — then retires the
// coalition's scope, so a long-running grid does not accumulate one
// aggregate per (epoch, coalition) — and commits the day's trades to the
// coalition's tamper-evident ledger: the settlement-path bookkeeping shared
// by one-shot and live grids.
func coalitionAccounting(bus *transport.Bus, cr *CoalitionRun) error {
	m := bus.Metrics()
	cr.Bytes = m.ScopeBytes(cr.Name)
	cr.Msgs = m.ScopeMessages(cr.Name)
	cr.VirtualLatency = m.ScopeVirtualLatency(cr.Name)
	m.DropScope(cr.Name)
	led := ledger.New()
	for _, res := range cr.Results {
		if res == nil {
			continue
		}
		if res.Rounds > cr.Rounds {
			cr.Rounds = res.Rounds
		}
		if _, err := led.Append(res.Window, res.Price, ledger.RecordsFromTrades(res.Trades)); err != nil {
			return fmt.Errorf("ledger window %d: %w", res.Window, err)
		}
	}
	cr.Ledger = led
	cr.ChainHead = ledger.HashString(led.Head().Hash)
	cr.Windows = len(cr.Results)
	return nil
}

// oracleAccounting computes the coalition's residual position and per-agent
// flows from the plaintext clearing oracle over the already-built window
// jobs — the harness-side accounting used by every trading-performance
// figure; the private protocols reveal neither side's totals.
func oracleAccounting(cfg Config, sub *dataset.Trace, jobs []core.WindowJob, cr *CoalitionRun) error {
	params := cfg.params()
	agents := sub.Agents()
	cr.Residual = market.CoalitionResidual{Coalition: cr.Name}
	cr.Flows = make(map[string]market.AgentFlows, len(agents))
	var clr market.Clearing // one clearing's storage serves the whole day
	for w := range jobs {
		if err := market.ClearInto(&clr, agents, jobs[w].Inputs, params); err != nil {
			return fmt.Errorf("oracle window %d: %w", w, err)
		}
		imp, exp := market.ResidualFromClearing(&clr)
		cr.Residual.ImportKWh += imp
		cr.Residual.ExportKWh += exp
		market.AccumulateFlows(cr.Flows, &clr, params)
	}
	return nil
}

// foldCoalition settles a too-small coalition at the grid tariff: every
// member trades only with the main grid (the paper's "without PEM"
// baseline), the members' grid-only position becomes the coalition
// residual, and the coalition is marked skipped-but-folded so settlement
// includes it while failure handling does not.
func foldCoalition(cfg Config, sub *dataset.Trace, cr *CoalitionRun) {
	params := cfg.params()
	agents := sub.Agents()
	cr.Residual = market.CoalitionResidual{Coalition: cr.Name}
	cr.Flows = make(map[string]market.AgentFlows, len(agents))
	var base market.Clearing // reused across the day's windows
	for w := 0; w < sub.Windows; w++ {
		inputs, err := sub.WindowInputs(w)
		if err != nil {
			cr.Err = err
			return
		}
		if err := market.BaselineClearInto(&base, agents, inputs, params); err != nil {
			cr.Err = fmt.Errorf("baseline window %d: %w", w, err)
			return
		}
		imp, exp := market.ResidualFromClearing(&base)
		cr.Residual.ImportKWh += imp
		cr.Residual.ExportKWh += exp
		market.AccumulateFlows(cr.Flows, &base, params)
	}
	cr.Folded = true
	cr.Err = fmt.Errorf("%w: %d agents below minimum %d, folded into grid settlement",
		ErrCoalitionSkipped, len(agents), cfg.minCoalition())
}
