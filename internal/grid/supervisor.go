package grid

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// Config configures a grid run.
type Config struct {
	// Engine is the per-coalition protocol configuration. Namespace is
	// managed by the supervisor (each coalition gets its own); setting it
	// here is an error. A non-nil Seed makes every coalition's outcome
	// bit-identical regardless of coalition concurrency, partition held
	// fixed.
	Engine core.Config
	// MaxConcurrent is the global in-flight budget: how many coalition-days
	// run concurrently (default: all of them). Each in-flight coalition may
	// additionally pipeline Engine.MaxInflightWindows windows internally;
	// crypto parallelism stays bounded by the one shared worker pool either
	// way.
	MaxConcurrent int
}

// CoalitionRun is the outcome of one coalition's trading day.
type CoalitionRun struct {
	// Name is the coalition's supervisor-assigned identifier ("c00", …),
	// which is also its transport tag namespace.
	Name string
	// Members are the coalition's home indices into the fleet trace.
	Members []int
	// IDs are the members' agent IDs.
	IDs []string
	// Results holds the per-window protocol outcomes (nil on failure).
	Results []*core.WindowResult
	// Residual is the coalition's day-aggregate unmatched energy, computed
	// from the plaintext oracle clearing exactly like the trading-
	// performance figures (the private protocols reveal neither side).
	Residual market.CoalitionResidual
	// Bytes is the coalition's protocol traffic on the shared bus.
	Bytes int64
	// Duration is the coalition-day wall-clock time (engine provisioning
	// included).
	Duration time.Duration
	// Err is the coalition's failure, nil on success. ErrCoalitionSkipped
	// marks coalitions never launched because an earlier one failed.
	Err error
}

// ErrCoalitionSkipped marks coalitions not launched because the supervisor
// stopped admitting work after an earlier coalition failed.
var ErrCoalitionSkipped = errors.New("grid: coalition skipped after earlier failure")

// Result is the outcome of a full grid run.
type Result struct {
	// Coalitions holds one entry per partition element, in partition order.
	Coalitions []CoalitionRun
	// Settlement clears the completed coalitions' residuals against the
	// grid tariff (nil when no coalition completed).
	Settlement *market.GridSettlement
	// Windows counts completed trading windows across all coalitions.
	Windows int
	// Duration is the whole run's wall-clock time.
	Duration time.Duration
	// TotalBytes is the fleet's protocol traffic.
	TotalBytes int64
	// WindowsPerSec is the aggregate throughput: Windows / Duration.
	WindowsPerSec float64
}

// Run executes one trading day for every coalition of the partition over
// shared infrastructure. Failure semantics mirror the window scheduler's:
// a failing coalition cancels only itself; the supervisor then stops
// launching new coalitions, drains the ones in flight, and reports the
// earliest failed coalition's error. Completed coalitions keep their
// results, and the returned Result is valid (with per-coalition Err set)
// even when err is non-nil.
func Run(ctx context.Context, cfg Config, tr *dataset.Trace, parts [][]int) (*Result, error) {
	if len(parts) == 0 {
		return nil, errors.New("grid: empty partition")
	}
	if cfg.Engine.Namespace != "" {
		return nil, fmt.Errorf("grid: Engine.Namespace %q is supervisor-managed; leave it empty", cfg.Engine.Namespace)
	}
	if cfg.MaxConcurrent < 0 {
		return nil, fmt.Errorf("grid: negative MaxConcurrent %d", cfg.MaxConcurrent)
	}
	maxConc := cfg.MaxConcurrent
	if maxConc == 0 || maxConc > len(parts) {
		maxConc = len(parts)
	}
	params := cfg.Engine.Params
	if params == (market.Params{}) {
		params = market.DefaultParams()
	}

	// The shared infrastructure: one bus, one bounded crypto pool. Every
	// engine retains its own pool reference; the supervisor's reference is
	// dropped on return, so the pool retires exactly when the last engine
	// closes.
	bus := transport.NewBus(nil)
	workers := paillier.NewWorkers(cfg.Engine.CryptoWorkers)
	defer workers.Release()

	start := time.Now()
	res := &Result{Coalitions: make([]CoalitionRun, len(parts))}

	var (
		mu     sync.Mutex
		failed bool
		wg     sync.WaitGroup
	)
	sem := make(chan struct{}, maxConc)
	for i, members := range parts {
		res.Coalitions[i] = CoalitionRun{
			Name:    fmt.Sprintf("c%02d", i),
			Members: append([]int(nil), members...),
		}

		sem <- struct{}{}
		mu.Lock()
		stop := failed
		mu.Unlock()
		if stop || ctx.Err() != nil {
			<-sem
			for j := i; j < len(parts); j++ {
				res.Coalitions[j].Name = fmt.Sprintf("c%02d", j)
				res.Coalitions[j].Members = append([]int(nil), parts[j]...)
				res.Coalitions[j].Err = ErrCoalitionSkipped
			}
			break
		}
		wg.Add(1)
		go func(cr *CoalitionRun) {
			defer wg.Done()
			defer func() { <-sem }()
			runCoalition(ctx, cfg, bus, workers, tr, params, cr)
			if cr.Err != nil {
				mu.Lock()
				failed = true
				mu.Unlock()
			}
		}(&res.Coalitions[i])
	}
	wg.Wait()

	res.Duration = time.Since(start)
	var residuals []market.CoalitionResidual
	var firstErr error
	for i := range res.Coalitions {
		cr := &res.Coalitions[i]
		if cr.Err != nil {
			// Skip markers are bookkeeping, not failures: launches stop both
			// after a genuine coalition failure (which, having launched
			// earlier, always precedes the skipped indices and is reported
			// here) and on context cancellation (reported via ctx.Err below,
			// so callers can distinguish a clean cancel).
			if firstErr == nil && !errors.Is(cr.Err, ErrCoalitionSkipped) {
				firstErr = fmt.Errorf("grid: coalition %s: %w", cr.Name, cr.Err)
			}
			continue
		}
		res.Windows += len(cr.Results)
		res.TotalBytes += cr.Bytes
		residuals = append(residuals, cr.Residual)
	}
	if len(residuals) > 0 {
		settlement, err := market.SettleResiduals(residuals, params)
		if err != nil {
			return res, fmt.Errorf("grid: settlement: %w", err)
		}
		res.Settlement = settlement
	}
	if res.Duration > 0 {
		res.WindowsPerSec = float64(res.Windows) / res.Duration.Seconds()
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return res, firstErr
}

// runCoalition executes one coalition's day: provision an engine over the
// shared resources, run every window through it, and fold the plaintext
// oracle's residuals. All outcomes land in cr.
func runCoalition(ctx context.Context, cfg Config, bus *transport.Bus, workers *paillier.Workers, tr *dataset.Trace, params market.Params, cr *CoalitionRun) {
	begin := time.Now()
	defer func() { cr.Duration = time.Since(begin) }()

	sub, err := tr.Select(cr.Members)
	if err != nil {
		cr.Err = err
		return
	}
	agents := sub.Agents()
	cr.IDs = make([]string, len(agents))
	for i, a := range agents {
		cr.IDs[i] = a.ID
	}

	jobs := make([]core.WindowJob, sub.Windows)
	for w := 0; w < sub.Windows; w++ {
		inputs, err := sub.WindowInputs(w)
		if err != nil {
			cr.Err = err
			return
		}
		jobs[w] = core.WindowJob{Window: w, Inputs: inputs}
	}

	ecfg := cfg.Engine
	ecfg.Namespace = cr.Name
	eng, err := core.NewEngineWith(ecfg, agents, core.Resources{Bus: bus, Workers: workers})
	if err != nil {
		cr.Err = fmt.Errorf("provision: %w", err)
		return
	}
	defer eng.Close()

	results, err := eng.RunWindows(ctx, jobs)
	if err != nil {
		cr.Err = err
		return
	}
	cr.Results = results
	cr.Bytes = bus.Metrics().ScopeBytes(cr.Name)

	cr.Residual = market.CoalitionResidual{Coalition: cr.Name}
	for w := 0; w < sub.Windows; w++ {
		clr, err := market.Clear(agents, jobs[w].Inputs, params)
		if err != nil {
			cr.Err = fmt.Errorf("oracle window %d: %w", w, err)
			return
		}
		imp, exp := market.ResidualFromClearing(clr)
		cr.Residual.ImportKWh += imp
		cr.Residual.ExportKWh += exp
	}
}
