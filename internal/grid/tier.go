package grid

import (
	"fmt"

	"github.com/pem-go/pem/internal/market"
)

// Tier-tree construction: Config.Tiers describes the settlement hierarchy as
// a fanout schedule over partition indices — Tiers[0] consecutive coalitions
// per district, Tiers[1] consecutive districts per region, and so on, with
// the last level's nodes attached to the grid boundary. Consecutive grouping
// matches how the partitioners lay out fleets (GenerateFleet blocks are
// contiguous, so a district is a physical neighbourhood of feeders), and it
// keeps the tree a pure function of (partition, fanout): the same grid run
// settles identically whether streamed or batched, at any concurrency.
//
// Coalitions that produced no residual (failed before settlement) simply
// don't appear; a group left with no members at all is skipped rather than
// materialised empty, so churn-shrunken grids still form legal trees.

// tierEntry pairs a settleable coalition's partition index — which decides
// its district — with its residual position.
type tierEntry struct {
	index    int
	residual market.CoalitionResidual
}

// tierName labels a tier group: districts "d00…", regions "r00…", deeper
// levels "t<level>-00…". The namespace is disjoint from coalition names
// ("c00", "e01-c00"), which SettleTiers' tree-wide uniqueness check relies
// on.
func tierName(level, group int) string {
	switch level {
	case 1:
		return fmt.Sprintf("d%02d", group)
	case 2:
		return fmt.Sprintf("r%02d", group)
	default:
		return fmt.Sprintf("t%d-%02d", level, group)
	}
}

// tierTree builds the market.TierNode hierarchy for the settleable
// coalitions under the fanout schedule. With an empty schedule every
// residual attaches directly to the root — the flat grid, which SettleTiers
// reproduces bit-for-bit.
func tierTree(fanout []int, entries []tierEntry) *market.TierNode {
	root := &market.TierNode{Name: "grid"}
	if len(fanout) == 0 {
		for _, e := range entries {
			root.Residuals = append(root.Residuals, e.residual)
		}
		return root
	}

	// Level 1: group coalition indices into districts. Entries arrive in
	// partition order, so groups materialise in ascending order too.
	nodes := make(map[int]*market.TierNode)
	var order []int
	for _, e := range entries {
		g := e.index / fanout[0]
		n, ok := nodes[g]
		if !ok {
			n = &market.TierNode{Name: tierName(1, g)}
			nodes[g] = n
			order = append(order, g)
		}
		n.Residuals = append(n.Residuals, e.residual)
	}

	// Upper levels: regroup the previous level's groups by the next fanout.
	for level := 2; level <= len(fanout); level++ {
		f := fanout[level-1]
		parents := make(map[int]*market.TierNode)
		var porder []int
		for _, g := range order {
			p := g / f
			pn, ok := parents[p]
			if !ok {
				pn = &market.TierNode{Name: tierName(level, p)}
				parents[p] = pn
				porder = append(porder, p)
			}
			pn.Children = append(pn.Children, nodes[g])
		}
		nodes, order = parents, porder
	}

	for _, g := range order {
		root.Children = append(root.Children, nodes[g])
	}
	return root
}
