// Package docscheck enforces the exported-comment policy offline: every
// exported identifier in the public package and the documented internal
// packages must carry a real doc comment (no bare names), and type/function
// comments must start with the identifier they document — the same policy
// the revive `exported` rule enforces in CI. Keeping an AST-based mirror in
// the test suite means doc coverage cannot regress even where CI's
// network-installed linters are unavailable.
package docscheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// packages under the exported-comment policy, relative to the repo root.
var packages = []string{
	".",
	"internal/grid",
	"internal/market",
	"internal/dataset",
	"internal/netem",
	"internal/paillier",
	"internal/core",
	"internal/transport",
	"internal/ledger",
	"internal/store",
}

// repoRoot locates the repository root from this test file's path.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
}

// TestExportedIdentifiersDocumented walks the policy packages and reports
// every exported identifier without a usable doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	root := repoRoot(t)
	var missing []string
	for _, rel := range packages {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				missing = append(missing, checkFile(fset, file)...)
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// checkFile reports undocumented exported declarations in one file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var bad []string
	report := func(pos token.Pos, kind, name, why string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: %s %s %s", filepath.Base(p.Filename), p.Line, kind, name, why))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			switch {
			case emptyDoc(d.Doc):
				report(d.Pos(), "func", d.Name.Name, "has no doc comment")
			case !startsWithName(d.Doc, d.Name.Name):
				report(d.Pos(), "func", d.Name.Name, "doc comment does not start with the identifier")
			}
		case *ast.GenDecl:
			groupDoc := !emptyDoc(d.Doc)
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					doc := s.Doc
					if emptyDoc(doc) {
						doc = d.Doc
					}
					switch {
					case emptyDoc(doc):
						report(s.Pos(), "type", s.Name.Name, "has no doc comment")
					case !startsWithName(doc, s.Name.Name):
						report(s.Pos(), "type", s.Name.Name, "doc comment does not start with the identifier")
					}
					bad = append(bad, checkStructFields(fset, s)...)
				case *ast.ValueSpec:
					// Const/var groups may share one block comment; each
					// exported spec otherwise needs its own.
					specDoc := !emptyDoc(s.Doc) || !emptyDoc(s.Comment)
					for _, name := range s.Names {
						if name.IsExported() && !specDoc && !groupDoc {
							report(name.Pos(), "value", name.Name, "has no doc comment")
						}
					}
				}
			}
		}
	}
	return bad
}

// checkStructFields reports undocumented exported fields of exported
// structs — the config and result surfaces users read most.
func checkStructFields(fset *token.FileSet, s *ast.TypeSpec) []string {
	st, ok := s.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return nil
	}
	var bad []string
	for _, f := range st.Fields.List {
		if emptyDoc(f.Doc) && f.Comment == nil {
			for _, name := range f.Names {
				if name.IsExported() {
					p := fset.Position(name.Pos())
					bad = append(bad, fmt.Sprintf("%s:%d: field %s.%s has no doc comment",
						filepath.Base(p.Filename), p.Line, s.Name.Name, name.Name))
				}
			}
		}
	}
	return bad
}

// exportedReceiver reports whether a method's receiver type is exported
// (free functions count as exported receivers).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

// emptyDoc reports whether a doc comment is missing or blank.
func emptyDoc(cg *ast.CommentGroup) bool {
	return cg == nil || strings.TrimSpace(cg.Text()) == ""
}

// startsWithName reports whether the comment's first word is the
// identifier, optionally preceded by an article or a deprecation marker —
// the classic godoc convention ("Name is …", "A Name holds …").
func startsWithName(cg *ast.CommentGroup, name string) bool {
	text := strings.TrimSpace(cg.Text())
	for _, prefix := range []string{"Deprecated:", "A ", "An ", "The "} {
		text = strings.TrimPrefix(text, prefix)
		text = strings.TrimSpace(text)
	}
	return strings.HasPrefix(text, name)
}
