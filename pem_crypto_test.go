package pem_test

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/pem-go/pem"
)

// cryptoTestAgents returns a mixed six-home fleet whose two windows land in
// a general market (surplus sellers plus deficit buyers).
func cryptoTestAgents() []pem.Agent {
	return []pem.Agent{
		{ID: "h0", K: 85, Epsilon: 0.90},
		{ID: "h1", K: 75, Epsilon: 0.85},
		{ID: "h2", K: 95, Epsilon: 0.90},
		{ID: "h3", K: 70, Epsilon: 0.80},
		{ID: "h4", K: 88, Epsilon: 0.88},
		{ID: "h5", K: 92, Epsilon: 0.75},
	}
}

func cryptoTestWindows() [][]pem.WindowInput {
	return [][]pem.WindowInput{
		{
			{Generation: 0.42, Load: 0.08},
			{Generation: 0.35, Load: 0.05, Battery: 0.01},
			{Generation: 0.00, Load: 0.22},
			{Generation: 0.04, Load: 0.28},
			{Generation: 0.31, Load: 0.02},
			{Generation: 0.02, Load: 0.19, Battery: -0.01},
		},
		{
			{Generation: 0.25, Load: 0.10},
			{Generation: 0.02, Load: 0.24},
			{Generation: 0.38, Load: 0.06},
			{Generation: 0.00, Load: 0.18},
			{Generation: 0.29, Load: 0.04, Battery: 0.02},
			{Generation: 0.05, Load: 0.26},
		},
	}
}

// runCryptoMarket runs the two-window scenario under one backend and
// returns the results plus the ledger for chain comparison.
func runCryptoMarket(t *testing.T, cfg pem.Config) ([]*pem.WindowResult, *pem.Ledger) {
	t.Helper()
	cfg.KeyBits = 256
	cfg.Seed = seedPtr(4242)
	m, err := pem.NewMarket(cfg, cryptoTestAgents())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, err := m.RunWindows(ctx, cryptoTestWindows())
	if err != nil {
		t.Fatal(err)
	}
	return results, m.Ledger()
}

// TestHybridPublicBitIdentical is the public-API property test of the
// hybrid backend: across both aggregation topologies and every network
// preset (plus no emulation), the hybrid backend must produce bit-identical
// clearing prices, allocations and ledger chains to the paillier backend,
// and both must match the plaintext oracle.
func TestHybridPublicBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full preset sweep")
	}
	presets := append([]string{""}, pem.NetworkPresets()...)
	for i, preset := range presets {
		// Alternate the topology so the sweep covers ring and tree folds
		// over emulated links without doubling the matrix.
		agg := pem.AggregationRing
		if i%2 == 1 {
			agg = pem.AggregationTree
		}
		name := preset
		if name == "" {
			name = "direct"
		}
		t.Run(name+"/"+agg, func(t *testing.T) {
			base := pem.Config{Network: preset, Aggregation: agg}

			paiCfg := base
			paiCfg.CryptoBackend = pem.BackendPaillier
			pai, paiLedger := runCryptoMarket(t, paiCfg)

			hybCfg := base
			hybCfg.CryptoBackend = pem.BackendHybrid
			hyb, hybLedger := runCryptoMarket(t, hybCfg)

			windows := cryptoTestWindows()
			for w := range pai {
				if pai[w].Kind != hyb[w].Kind || pai[w].Price != hyb[w].Price {
					t.Fatalf("w%d: kind/price diverge: %v/%v vs %v/%v",
						w, pai[w].Kind, pai[w].Price, hyb[w].Kind, hyb[w].Price)
				}
				if len(pai[w].Trades) != len(hyb[w].Trades) {
					t.Fatalf("w%d: %d vs %d trades", w, len(pai[w].Trades), len(hyb[w].Trades))
				}
				for i := range pai[w].Trades {
					if pai[w].Trades[i] != hyb[w].Trades[i] {
						t.Fatalf("w%d trade %d: %+v vs %+v", w, i, pai[w].Trades[i], hyb[w].Trades[i])
					}
				}
				clr, err := pem.Clear(cryptoTestAgents(), windows[w], pem.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				if hyb[w].Kind != clr.Kind || math.Abs(hyb[w].Price-clr.Price) > 1e-4 {
					t.Fatalf("w%d: oracle kind/price %v/%v, hybrid %v/%v",
						w, clr.Kind, clr.Price, hyb[w].Kind, hyb[w].Price)
				}
			}

			// Identical trades at identical prices must hash to the same
			// chain; both chains must verify.
			if err := paiLedger.Verify(); err != nil {
				t.Fatal(err)
			}
			if err := hybLedger.Verify(); err != nil {
				t.Fatal(err)
			}
			paiHead, hybHead := paiLedger.Head().Hash, hybLedger.Head().Hash
			if paiHead != hybHead {
				t.Fatalf("ledger chains diverge: %x vs %x", paiHead[:8], hybHead[:8])
			}

			// The hybrid fast path must not inflate traffic: fixed-width
			// masked frames are strictly smaller than Paillier ciphertexts.
			if hyb[0].BytesOnWire >= pai[0].BytesOnWire {
				t.Errorf("hybrid wire cost %d ≥ paillier %d", hyb[0].BytesOnWire, pai[0].BytesOnWire)
			}
		})
	}
}

// TestHybridGridMatchesPaillier runs the sharded coalition grid under both
// backends: per-coalition results and the fleet settlement must agree
// exactly.
func TestHybridGridMatchesPaillier(t *testing.T) {
	tr := testFleetTrace(t, 2, 3, 2)
	run := func(backend string) *pem.GridResult {
		t.Helper()
		g, err := pem.NewGrid(pem.GridConfig{
			Market:     pem.Config{KeyBits: 256, Seed: seedPtr(12), CryptoBackend: backend},
			Coalitions: 2,
			Partition:  pem.PartitionBalanced,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
		defer cancel()
		res, err := g.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pai := run(pem.BackendPaillier)
	hyb := run(pem.BackendHybrid)

	if len(pai.Coalitions) != len(hyb.Coalitions) {
		t.Fatalf("coalition counts diverge: %d vs %d", len(pai.Coalitions), len(hyb.Coalitions))
	}
	for i := range pai.Coalitions {
		p, h := pai.Coalitions[i], hyb.Coalitions[i]
		if p.Err != nil || h.Err != nil {
			t.Fatalf("coalition %s errs: %v / %v", p.Name, p.Err, h.Err)
		}
		if len(p.Results) != len(h.Results) {
			t.Fatalf("coalition %s: %d vs %d windows", p.Name, len(p.Results), len(h.Results))
		}
		for w := range p.Results {
			if p.Results[w].Price != h.Results[w].Price || p.Results[w].Kind != h.Results[w].Kind {
				t.Fatalf("%s w%d: outcome diverges", p.Name, w)
			}
			for j := range p.Results[w].Trades {
				if p.Results[w].Trades[j] != h.Results[w].Trades[j] {
					t.Fatalf("%s w%d trade %d diverges", p.Name, w, j)
				}
			}
		}
	}
	if pai.Settlement.Fleet != hyb.Settlement.Fleet {
		t.Fatalf("fleet settlement diverges:\n%+v\nvs\n%+v", pai.Settlement.Fleet, hyb.Settlement.Fleet)
	}
}

// TestHybridLiveGridChurnMatchesPaillier reuses the epoched live-grid
// harness (churn, re-keying, conservation) under both backends: every
// agent's final position must be bit-identical, and conservation must hold
// under the hybrid backend independently.
func TestHybridLiveGridChurnMatchesPaillier(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: multi-epoch churn runs")
	}
	run := func(backend string) *pem.LiveGridResult {
		t.Helper()
		lg, err := pem.NewLiveGrid(pem.LiveGridConfig{
			Market:     pem.Config{KeyBits: 256, Seed: seedPtr(41), CryptoBackend: backend},
			Coalitions: 2,
			Partition:  pem.PartitionBalanced,
			Epochs:     3,
			Churn:      pem.ChurnConfig{JoinRate: 0.25, DepartRate: 0.15, FailRate: 0.1},
		}, pem.FleetConfig{
			Coalitions:        2,
			HomesPerCoalition: 4,
			Windows:           2,
			Seed:              7,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
		defer cancel()
		res, err := lg.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pai := run(pem.BackendPaillier)
	hyb := run(pem.BackendHybrid)

	if math.Abs(hyb.EnergyImbalanceKWh) > 1e-9 || math.Abs(hyb.PaymentImbalanceCents) > 1e-6 {
		t.Errorf("hybrid conservation violated: energy %v kWh, payments %v cents",
			hyb.EnergyImbalanceKWh, hyb.PaymentImbalanceCents)
	}
	if len(pai.Positions) != len(hyb.Positions) {
		t.Fatalf("position counts diverge: %d vs %d", len(pai.Positions), len(hyb.Positions))
	}
	for i := range pai.Positions {
		if pai.Positions[i] != hyb.Positions[i] {
			t.Fatalf("position %s diverged:\n%+v\nvs\n%+v",
				pai.Positions[i].ID, pai.Positions[i], hyb.Positions[i])
		}
	}
	for e := range pai.Epochs {
		if pai.Epochs[e].Windows != hyb.Epochs[e].Windows {
			t.Fatalf("epoch %d window counts diverge", e)
		}
	}
}
