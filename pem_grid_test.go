package pem_test

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/pem-go/pem"
)

func testFleetTrace(t *testing.T, coalitions, homes, windows int) *pem.Trace {
	t.Helper()
	tr, err := pem.GenerateFleet(pem.FleetConfig{
		Coalitions:        coalitions,
		HomesPerCoalition: homes,
		Windows:           windows,
		Seed:              99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGridPublicAPI(t *testing.T) {
	tr := testFleetTrace(t, 2, 3, 2)
	g, err := pem.NewGrid(pem.GridConfig{
		Market:     pem.Config{KeyBits: 256, Seed: seedPtr(12)},
		Coalitions: 2,
		Partition:  pem.PartitionBalanced,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}

	// The partition must cover the fleet exactly once.
	seen := make(map[string]bool)
	parts := g.Partition()
	if len(parts) != 2 {
		t.Fatalf("%d coalitions, want 2", len(parts))
	}
	for _, ids := range parts {
		if len(ids) != 3 {
			t.Fatalf("coalition size %d, want 3", len(ids))
		}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("agent %s in two coalitions", id)
			}
			seen[id] = true
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := g.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 4 || len(res.Coalitions) != 2 {
		t.Fatalf("run shape: %d windows, %d coalitions", res.Windows, len(res.Coalitions))
	}

	// Every coalition's private outcome must match the plaintext oracle
	// under its mixed scenario (the coalition members come from different
	// GenerateFleet scenario blocks after balanced partitioning).
	params := pem.DefaultParams()
	for i, cr := range res.Coalitions {
		if cr.Err != nil {
			t.Fatalf("coalition %s failed: %v", cr.Name, cr.Err)
		}
		agents := make([]pem.Agent, 0, len(parts[i]))
		byID := make(map[string]pem.Agent)
		for _, a := range tr.Agents() {
			byID[a.ID] = a
		}
		for _, id := range parts[i] {
			agents = append(agents, byID[id])
		}
		for w, winRes := range cr.Results {
			inputs := make([]pem.WindowInput, len(cr.Members))
			for j, h := range cr.Members {
				inputs[j] = pem.WindowInput{
					Generation: tr.Gen[h][w],
					Load:       tr.Load[h][w],
					Battery:    tr.Battery[h][w],
				}
			}
			clr, err := pem.Clear(agents, inputs, params)
			if err != nil {
				t.Fatal(err)
			}
			if winRes.Kind != clr.Kind || math.Abs(winRes.Price-clr.Price) > 1e-4 {
				t.Errorf("%s w%d: kind/price %v/%v, oracle %v/%v",
					cr.Name, w, winRes.Kind, winRes.Price, clr.Kind, clr.Price)
			}
			if len(winRes.Trades) != len(clr.Trades) {
				t.Errorf("%s w%d: %d trades, oracle %d", cr.Name, w, len(winRes.Trades), len(clr.Trades))
			}
		}
	}

	if res.Settlement == nil || len(res.Settlement.PerCoalition) != 2 {
		t.Fatalf("settlement missing: %+v", res.Settlement)
	}
	// Fleet is the running sum of per-coalition settlements (each settled
	// alone at its feeder), so cross-check against the exact same sums —
	// not ImportKWh·price, which differs by float non-distributivity.
	fleet := res.Settlement.Fleet
	var impCost, expRev float64
	for _, cs := range res.Settlement.PerCoalition {
		impCost += cs.ImportCost
		expRev += cs.ExportRevenue
	}
	if fleet.ImportCost != impCost || fleet.ExportRevenue != expRev {
		t.Errorf("fleet settlement inconsistent: %+v", fleet)
	}
}

// TestGridBitIdenticalAcrossConcurrency is the public acceptance check:
// with the partition strategy held fixed, a seeded grid run is
// bit-identical per coalition at any coalition concurrency.
func TestGridBitIdenticalAcrossConcurrency(t *testing.T) {
	tr := testFleetTrace(t, 3, 2, 2)
	run := func(conc int) *pem.GridResult {
		t.Helper()
		g, err := pem.NewGrid(pem.GridConfig{
			Market:                  pem.Config{KeyBits: 256, Seed: seedPtr(8)},
			Coalitions:              3,
			Partition:               pem.PartitionFixed,
			MaxConcurrentCoalitions: conc,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
		defer cancel()
		res, err := g.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, conc := range []int{2, 3} {
		res := run(conc)
		for i := range base.Coalitions {
			a, b := base.Coalitions[i], res.Coalitions[i]
			if len(a.Results) != len(b.Results) {
				t.Fatalf("conc %d: coalition %d window counts differ", conc, i)
			}
			for w := range a.Results {
				ra, rb := a.Results[w], b.Results[w]
				if ra.Price != rb.Price || ra.PHat != rb.PHat || ra.Kind != rb.Kind ||
					ra.BytesOnWire != rb.BytesOnWire || len(ra.Trades) != len(rb.Trades) {
					t.Fatalf("conc %d: coalition %d window %d diverged", conc, i, w)
				}
				for k := range ra.Trades {
					if ra.Trades[k] != rb.Trades[k] {
						t.Fatalf("conc %d: coalition %d window %d trade %d diverged", conc, i, w, k)
					}
				}
			}
		}
	}
}

func TestNewGridValidation(t *testing.T) {
	tr := testFleetTrace(t, 2, 2, 1)
	cases := map[string]pem.GridConfig{
		"no-coalitions": {Market: pem.Config{KeyBits: 256}},
		"too-many":      {Market: pem.Config{KeyBits: 256}, Coalitions: 3},
		"unknown-split": {Market: pem.Config{KeyBits: 256}, Coalitions: 2, Partition: "zodiac"},
		"negative-budget": {
			Market: pem.Config{KeyBits: 256}, Coalitions: 2, MaxConcurrentCoalitions: -1,
		},
	}
	for name, cfg := range cases {
		g, err := pem.NewGrid(cfg, tr)
		if err == nil {
			// MaxConcurrentCoalitions is validated at Run.
			if _, err = g.Run(context.Background()); err == nil {
				t.Errorf("%s: accepted", name)
			}
		}
	}
	if _, err := pem.NewGrid(pem.GridConfig{Coalitions: 1}, nil); err == nil {
		t.Error("nil trace accepted")
	}
}

// TestGridStreamAndTiersPublicAPI: the streaming variant delivers every
// coalition in partition order and folds to the same settlement as Run, and
// a tiered grid settles hierarchically with the 1-tier singleton identity
// holding at the public surface.
func TestGridStreamAndTiersPublicAPI(t *testing.T) {
	tr := testFleetTrace(t, 2, 3, 2)
	mk := func(tiers []int) *pem.Grid {
		t.Helper()
		g, err := pem.NewGrid(pem.GridConfig{
			Market:     pem.Config{KeyBits: 256, Seed: seedPtr(12)},
			Coalitions: 2,
			Partition:  pem.PartitionFixed,
			Tiers:      tiers,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	batch, err := mk(nil).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var names []string
	streamed, err := mk(nil).Stream(ctx, func(cr *pem.CoalitionRun) error {
		if cr.Results == nil {
			t.Errorf("%s delivered without results", cr.Name)
		}
		names = append(names, cr.Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "c00" || names[1] != "c01" {
		t.Fatalf("stream order %v, want [c00 c01]", names)
	}
	if streamed.Coalitions != nil {
		t.Error("streamed result retained coalitions")
	}
	if streamed.Settlement.Fleet != batch.Settlement.Fleet || streamed.Windows != batch.Windows {
		t.Error("streamed fold diverged from batch Run")
	}
	if _, err := mk(nil).Stream(ctx, nil); err == nil {
		t.Error("nil sink accepted")
	}

	// Singleton districts are no-op wrappers: the tiered fleet settlement is
	// bit-identical to the flat one, and the per-tier outcomes are exposed.
	tiered, err := mk([]int{1}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tiered.Tiers == nil || len(tiered.Tiers.Tiers) != 2 {
		t.Fatalf("tiered run missing tier outcomes: %+v", tiered.Tiers)
	}
	if tiered.Tiers.MatchedKWh != 0 {
		t.Errorf("singleton districts netted %v kWh", tiered.Tiers.MatchedKWh)
	}
	if tiered.Settlement.Fleet != batch.Settlement.Fleet {
		t.Errorf("1-tier settlement diverged from flat: %+v vs %+v",
			tiered.Settlement.Fleet, batch.Settlement.Fleet)
	}
}
