package pem

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/grid"
	"github.com/pem-go/pem/internal/market"
)

// This file is the public face of the live (epoched) grid: a multi-day
// simulation over a churning fleet. Prosumers join, depart and fail at
// epoch boundaries; each epoch re-partitions the surviving-plus-new roster
// and re-keys every coalition over the shared crypto and transport
// infrastructure, and per-agent settlement carries across epochs. It
// mirrors the Grid API: configure, construct, Run.

// Re-exported live-grid model types.
type (
	// ChurnConfig controls the seeded churn model of a live grid (join,
	// depart and fail rates per epoch boundary).
	ChurnConfig = dataset.ChurnConfig
	// ChurnEvent is one fleet-membership change at an epoch boundary.
	ChurnEvent = dataset.ChurnEvent
	// ChurnEventKind classifies a churn event (join, depart or fail).
	ChurnEventKind = dataset.ChurnEventKind
	// AgentFlows is one agent's cumulative energy and payment flows.
	AgentFlows = market.AgentFlows
	// AgentPosition is one agent's cumulative cross-epoch position,
	// frozen at its exit epoch if it left the fleet.
	AgentPosition = market.AgentPosition
	// EpochResult is one epoch's outcome inside a LiveGridResult.
	EpochResult = grid.EpochResult
	// LiveGridResult is the outcome of a full live-grid simulation.
	LiveGridResult = grid.LiveResult
)

// Churn event kinds (ChurnEvent.Kind).
const (
	// ChurnJoin marks a prosumer entering the fleet at an epoch boundary.
	ChurnJoin = dataset.ChurnJoin
	// ChurnDepart marks a planned departure: the agent finishes its epoch
	// and settles its cumulative position on exit.
	ChurnDepart = dataset.ChurnDepart
	// ChurnFail marks a crash-style failure; settlement freezes the
	// position exactly like a departure.
	ChurnFail = dataset.ChurnFail
)

// DefaultMinCoalition is the smallest roster a coalition needs to run a
// private market; smaller coalitions are folded into grid settlement (see
// GridConfig.MinCoalition).
const DefaultMinCoalition = grid.DefaultMinCoalition

// LiveGridConfig configures a live (epoched) coalition grid.
type LiveGridConfig struct {
	// Market is the per-coalition market configuration, exactly as for
	// GridConfig. When Market.Seed is set the whole simulation is
	// deterministic, with fresh (but reproducible) key material derived
	// per epoch.
	Market Config
	// Coalitions is the target coalition count per epoch (required). When
	// churn shrinks the fleet too far, an epoch runs with the largest
	// count its roster can fill.
	Coalitions int
	// Partition selects the per-epoch partition strategy: PartitionFixed
	// (default), PartitionRandom or PartitionBalanced. Every epoch
	// re-partitions the surviving-plus-new roster from scratch.
	Partition string
	// PartitionSeed feeds PartitionRandom (defaults to *Market.Seed when
	// set); per-epoch seeds are derived from it.
	PartitionSeed int64
	// MaxConcurrentCoalitions is the per-epoch in-flight budget (default:
	// all). Outcomes are bit-identical at any setting when Market.Seed is
	// set.
	MaxConcurrentCoalitions int
	// MinCoalition is the smallest roster that still runs a private
	// market (default DefaultMinCoalition). Coalitions churned below it
	// are folded into grid settlement instead of failing the epoch.
	MinCoalition int
	// Tiers makes each epoch's settlement hierarchical, exactly as
	// GridConfig.Tiers: consecutive coalitions roll up through districts
	// and regions, netting surplus against deficit at every level before
	// the remainder touches the tariff. Empty means flat settlement.
	Tiers []int
	// RetainCoalitionResults keeps every epoch's heavy per-coalition
	// payload — window results, flows, ledgers, rosters — on the returned
	// LiveGridResult. By default the live grid releases each epoch's
	// payload once its flows are settled into the position book, so a long
	// simulation runs in the memory of one epoch; set this to audit
	// per-window outcomes after the run.
	RetainCoalitionResults bool
	// Store, when set, makes the simulation durable: each coalition's
	// blocks, key fingerprints and aggregate persist as it completes
	// (scopes "e00-c00", …), the position book and an epoch checkpoint
	// commit at every epoch boundary, and the run's own configuration is
	// embedded in each checkpoint — so a killed simulation resumes from
	// the last completed epoch with Resume, replaying the remaining epochs
	// bit-identically when Market.Seed is set. A store error aborts the
	// run. Market.Store is ignored in a live grid.
	Store Store `json:"-"`
	// Epochs is the number of trading days to simulate (required, ≥ 1).
	Epochs int
	// Churn configures the churn model applied at each epoch boundary.
	// Its Epochs field is set from the Epochs field above; its Seed
	// defaults to the fleet seed.
	Churn ChurnConfig
}

// LiveGrid is a fleet evolution ready to trade: the churn schedule and
// every epoch's roster and trace are fixed at construction, so the
// simulation's membership history is inspectable before any protocol runs.
type LiveGrid struct {
	cfg grid.LiveConfig
	evo *dataset.Evolution
	// owned is the store Resume opened on the caller's behalf (nil for
	// grids built with NewLiveGrid, whose caller owns its store).
	owned Store
}

// ResumedEpoch returns the checkpoint epoch this grid resumes after, or −1
// for a fresh (non-resumed) simulation. A resumed Run or Stream skips every
// epoch up to and including it.
func (lg *LiveGrid) ResumedEpoch() int {
	if lg.cfg.Resume == nil {
		return -1
	}
	return lg.cfg.Resume.Epoch
}

// Close releases the store a Resume opened for this grid. It is a no-op —
// and the caller keeps ownership of its own store — for grids built with
// NewLiveGrid.
func (lg *LiveGrid) Close() error {
	if lg.owned == nil {
		return nil
	}
	st := lg.owned
	lg.owned = nil
	return st.Close()
}

// NewLiveGrid validates the config and synthesizes the fleet evolution:
// the base fleet from the fleet config, then Epochs−1 seeded churn
// boundaries. The evolution is deterministic given the fleet seed and the
// churn config; a statically-bad config (unknown partition strategy,
// negative budgets) fails here, before any protocol runs.
func NewLiveGrid(cfg LiveGridConfig, fleet FleetConfig) (*LiveGrid, error) {
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("pem: LiveGridConfig.Epochs must be ≥ 1, got %d", cfg.Epochs)
	}
	seed := cfg.PartitionSeed
	if seed == 0 && cfg.Market.Seed != nil {
		seed = *cfg.Market.Seed
	}
	lcfg := grid.LiveConfig{
		Grid: grid.Config{
			Engine:        cfg.Market.coreConfig(),
			MaxConcurrent: cfg.MaxConcurrentCoalitions,
			MinCoalition:  cfg.MinCoalition,
			Tiers:         cfg.Tiers,
		},
		Coalitions:    cfg.Coalitions,
		Partition:     grid.Strategy(cfg.Partition),
		PartitionSeed: seed,
		RetainResults: cfg.RetainCoalitionResults,
	}
	if cfg.Store != nil {
		lcfg.Grid.Store = cfg.Store
		// Embed the run's own configuration in every checkpoint so Resume
		// can rebuild the simulation from the store file alone. Store
		// fields carry `json:"-"`; everything else round-trips exactly.
		meta, err := json.Marshal(resumeMeta{Live: cfg, Fleet: fleet})
		if err != nil {
			return nil, fmt.Errorf("pem: marshal checkpoint config: %w", err)
		}
		lcfg.CheckpointMeta = meta
	}
	if err := lcfg.Validate(); err != nil {
		return nil, fmt.Errorf("pem: %w", err)
	}
	churn := cfg.Churn
	churn.Epochs = cfg.Epochs
	evo, err := dataset.Evolve(fleet, churn)
	if err != nil {
		return nil, fmt.Errorf("pem: %w", err)
	}
	return &LiveGrid{cfg: lcfg, evo: evo}, nil
}

// Events returns the full churn schedule, ordered by epoch: which agents
// join, depart and fail at each boundary. Fixed at construction.
func (lg *LiveGrid) Events() []ChurnEvent {
	return append([]ChurnEvent(nil), lg.evo.Events...)
}

// Rosters returns each epoch's roster as agent IDs, in epoch order.
func (lg *LiveGrid) Rosters() [][]string {
	out := make([][]string, len(lg.evo.Epochs))
	for e, ef := range lg.evo.Epochs {
		out[e] = make([]string, len(ef.Trace.Homes))
		for i, h := range ef.Trace.Homes {
			out[e][i] = h.ID
		}
	}
	return out
}

// Run executes the live simulation: one trading day per epoch, with
// re-partitioning and coalition re-keying at every churn boundary and
// settlement carried across epochs per agent. Epochs run in order; within
// an epoch coalitions run concurrently with the one-shot grid's fail-fast
// semantics. On failure the returned LiveGridResult still carries all
// completed epochs plus the partial one.
func (lg *LiveGrid) Run(ctx context.Context) (*LiveGridResult, error) {
	res, err := grid.RunLive(ctx, lg.cfg, lg.evo)
	if err != nil {
		return res, fmt.Errorf("pem: %w", err)
	}
	return res, nil
}

// Stream executes the same simulation as Run but delivers each epoch's
// full outcome to sink as soon as its flows are settled into the position
// book, then releases the epoch's heavy payload (unless
// RetainCoalitionResults is set). The returned LiveGridResult carries the
// cross-epoch fold — positions, conservation, traffic, throughput — with
// Epochs nil, so an unbounded simulation runs in the memory of one epoch.
// The *EpochResult is valid only during the sink call; a sink error aborts
// the simulation. With Market.Seed set, a Stream is bit-identical to Run
// at any sink consumption speed.
func (lg *LiveGrid) Stream(ctx context.Context, sink func(*EpochResult) error) (*LiveGridResult, error) {
	if sink == nil {
		return nil, errors.New("pem: Stream needs a sink (use Run)")
	}
	res, err := grid.StreamLive(ctx, lg.cfg, lg.evo, sink)
	if err != nil {
		return res, fmt.Errorf("pem: %w", err)
	}
	return res, nil
}
