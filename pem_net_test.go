package pem_test

import (
	"context"
	"testing"
	"time"

	"github.com/pem-go/pem"
)

// TestPublicNetworkEmulation covers the public Config.Network knob: an
// emulated market reports virtual-latency/round/message metrics, the market
// outcome matches the unemulated run, seeded runs are bit-identical, and
// the topology presets are exposed.
func TestPublicNetworkEmulation(t *testing.T) {
	presets := pem.NetworkPresets()
	if len(presets) != 5 {
		t.Fatalf("presets = %v, want 5", presets)
	}

	agents := []pem.Agent{
		{ID: "solar-roof", K: 85, Epsilon: 0.9},
		{ID: "townhouse", K: 75, Epsilon: 0.85},
		{ID: "ev-garage", K: 95, Epsilon: 0.9},
		{ID: "row-house", K: 80, Epsilon: 0.88},
	}
	inputs := []pem.WindowInput{
		{Generation: 0.40, Load: 0.10},
		{Generation: 0.35, Load: 0.12},
		{Generation: 0.00, Load: 0.25},
		{Generation: 0.05, Load: 0.30},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	runOnce := func(network string) *pem.WindowResult {
		t.Helper()
		m, err := pem.NewMarket(pem.Config{
			KeyBits: 256,
			Seed:    seedPtr(3),
			Network: network,
		}, agents)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		res, err := m.RunWindow(ctx, 0, inputs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := runOnce("")
	wan := runOnce(pem.NetworkWAN)
	wan2 := runOnce(pem.NetworkWAN)

	if plain.Kind != wan.Kind || plain.Price != wan.Price || len(plain.Trades) != len(wan.Trades) {
		t.Errorf("emulation changed the market: %v/%v/%d vs %v/%v/%d",
			plain.Kind, plain.Price, len(plain.Trades), wan.Kind, wan.Price, len(wan.Trades))
	}
	if plain.VirtualLatency != 0 || plain.Rounds != 0 {
		t.Errorf("unemulated run carries virtual metrics: %v/%d", plain.VirtualLatency, plain.Rounds)
	}
	if wan.VirtualLatency < 50*time.Millisecond || wan.Rounds == 0 || wan.Messages == 0 {
		t.Errorf("emulated metrics implausible: %v/%d/%d", wan.VirtualLatency, wan.Rounds, wan.Messages)
	}
	if wan.VirtualLatency != wan2.VirtualLatency || wan.Rounds != wan2.Rounds || wan.Messages != wan2.Messages {
		t.Errorf("seeded emulated runs diverged: %v/%d/%d vs %v/%d/%d",
			wan.VirtualLatency, wan.Rounds, wan.Messages, wan2.VirtualLatency, wan2.Rounds, wan2.Messages)
	}

	if _, err := pem.NewMarket(pem.Config{KeyBits: 256, Network: "dialup"}, agents); err == nil {
		t.Error("unknown network preset accepted")
	}
}
