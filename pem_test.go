package pem_test

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/pem-go/pem"
)

func seedPtr(v int64) *int64 { return &v }

func testMarket(t *testing.T, agents []pem.Agent, seed int64) *pem.Market {
	t.Helper()
	m, err := pem.NewMarket(pem.Config{KeyBits: 256, Seed: seedPtr(seed)}, agents)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestPublicAPIWindow(t *testing.T) {
	agents := []pem.Agent{
		{ID: "solar-roof", K: 85, Epsilon: 0.9},
		{ID: "townhouse", K: 75, Epsilon: 0.85},
		{ID: "ev-garage", K: 95, Epsilon: 0.9},
	}
	m := testMarket(t, agents, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := m.RunWindow(ctx, 0, []pem.WindowInput{
		{Generation: 0.40, Load: 0.10},
		{Generation: 0.00, Load: 0.25},
		{Generation: 0.05, Load: 0.30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != pem.GeneralMarket {
		t.Errorf("kind = %v", res.Kind)
	}
	params := pem.DefaultParams()
	if res.Price < params.PriceFloor || res.Price > params.PriceCeil {
		t.Errorf("price %v outside band", res.Price)
	}
	if len(res.Trades) != 2 {
		t.Errorf("trades = %d, want 2", len(res.Trades))
	}
}

func TestLedgerRecordsTrades(t *testing.T) {
	agents := []pem.Agent{
		{ID: "a", K: 85, Epsilon: 0.9},
		{ID: "b", K: 75, Epsilon: 0.85},
	}
	m := testMarket(t, agents, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := m.RunWindow(ctx, 0, []pem.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.4},
	}); err != nil {
		t.Fatal(err)
	}
	l := m.Ledger()
	if l == nil {
		t.Fatal("ledger disabled by default?")
	}
	if l.Len() != 2 { // genesis + window 0
		t.Fatalf("ledger height = %d", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	blk, err := l.Block(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Trades) != 1 {
		t.Fatalf("block has %d trades", len(blk.Trades))
	}
	if blk.Trades[0].Seller != "a" || blk.Trades[0].Buyer != "b" {
		t.Errorf("trade parties wrong: %+v", blk.Trades[0])
	}
}

func TestLedgerDisabled(t *testing.T) {
	off := false
	m, err := pem.NewMarket(pem.Config{
		KeyBits:      256,
		Seed:         seedPtr(3),
		RecordLedger: &off,
	}, []pem.Agent{
		{ID: "a", K: 85, Epsilon: 0.9},
		{ID: "b", K: 75, Epsilon: 0.85},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Ledger() != nil {
		t.Error("ledger should be nil when disabled")
	}
}

func TestNewMarketValidation(t *testing.T) {
	if _, err := pem.NewMarket(pem.Config{}, nil); err == nil {
		t.Error("no agents accepted")
	}
	if _, err := pem.NewMarket(pem.Config{KeyBits: 256}, []pem.Agent{{ID: "only", K: 1, Epsilon: 0.5}}); err == nil {
		t.Error("single agent accepted")
	}
}

func TestSimulateDaySeries(t *testing.T) {
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 30, Windows: 240, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	params := pem.DefaultParams()
	ds, err := pem.SimulateDay(tr, params)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Windows != 240 {
		t.Fatalf("windows = %d", ds.Windows)
	}
	for w := 0; w < ds.Windows; w++ {
		// Price stays within the legal corridor (band or retail).
		p := ds.Price[w]
		inBand := p >= params.PriceFloor-1e-9 && p <= params.PriceCeil+1e-9
		if !inBand && p != params.GridRetailPrice {
			t.Fatalf("window %d: price %v neither in band nor retail", w, p)
		}
		// PEM never costs buyers more than the baseline (Fig 6c).
		if ds.BuyerCostPEM[w] > ds.BuyerCostBase[w]+1e-6 {
			t.Fatalf("window %d: PEM cost above baseline", w)
		}
		// PEM never increases grid interaction (Fig 6d).
		if ds.GridPEM[w] > ds.GridBase[w]+1e-6 {
			t.Fatalf("window %d: PEM grid interaction above baseline", w)
		}
	}
	// The day must include at least one non-degenerate trading window.
	traded := false
	for w := 0; w < ds.Windows; w++ {
		if ds.SellerCount[w] > 0 && ds.BuyerCount[w] > 0 {
			traded = true
			break
		}
	}
	if !traded {
		t.Error("no window had both coalitions non-empty")
	}
}

func TestSellerUtilitySeries(t *testing.T) {
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 20, Windows: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	params := pem.DefaultParams()

	// Pick the home with the most seller windows (mirrors the paper
	// tracking two always-seller agents).
	best, bestCount := 0, -1
	for h := range tr.Homes {
		count := 0
		for w := 0; w < tr.Windows; w++ {
			if tr.Gen[h][w]-tr.Load[h][w]-tr.Battery[h][w] > 0 {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = h, count
		}
	}
	if bestCount == 0 {
		t.Skip("trace has no seller windows")
	}

	with20, without20, err := pem.SellerUtilitySeries(tr, best, 20, params)
	if err != nil {
		t.Fatal(err)
	}
	with40, _, err := pem.SellerUtilitySeries(tr, best, 40, params)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < tr.Windows; w++ {
		if with20[w] < without20[w]-1e-9 {
			t.Fatalf("window %d: PEM utility %v below baseline %v", w, with20[w], without20[w])
		}
		if with20[w] != 0 && with40[w] <= with20[w] {
			t.Fatalf("window %d: k=40 utility %v not above k=20 %v", w, with40[w], with20[w])
		}
	}

	if _, _, err := pem.SellerUtilitySeries(tr, -1, 20, params); err == nil {
		t.Error("negative home index accepted")
	}
	if _, _, err := pem.SellerUtilitySeries(tr, 0, 0, params); err == nil {
		t.Error("zero k accepted")
	}
}

func TestRunDayPrivateMatchesSimulation(t *testing.T) {
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 6, Windows: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := testMarket(t, tr.Agents(), 8)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	day, err := m.RunDay(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pem.SimulateDay(tr, pem.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(day.Results) != sim.Windows {
		t.Fatalf("windows: %d vs %d", len(day.Results), sim.Windows)
	}
	for w, res := range day.Results {
		if math.Abs(res.Price-sim.Price[w]) > 1e-4 {
			t.Errorf("window %d: private price %v, simulated %v", w, res.Price, sim.Price[w])
		}
		if res.SellerCount != sim.SellerCount[w] || res.BuyerCount != sim.BuyerCount[w] {
			t.Errorf("window %d: coalition sizes disagree", w)
		}
	}
	if day.TotalBytes <= 0 {
		t.Error("no bytes accounted")
	}
	// Ledger sanity: one block per window plus genesis.
	if m.Ledger().Len() != tr.Windows+1 {
		t.Errorf("ledger height %d", m.Ledger().Len())
	}
	if err := m.Ledger().Verify(); err != nil {
		t.Error(err)
	}
}

func TestClearAndBaselineExported(t *testing.T) {
	agents := []pem.Agent{
		{ID: "s", K: 85, Epsilon: 0.9},
		{ID: "b", K: 75, Epsilon: 0.85},
	}
	inputs := []pem.WindowInput{
		{Generation: 0.3, Load: 0.1},
		{Generation: 0.0, Load: 0.4},
	}
	clr, err := pem.Clear(agents, inputs, pem.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	base, err := pem.BaselineClear(agents, inputs, pem.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if clr.TotalBuyerCost() > base.TotalBuyerCost() {
		t.Error("PEM cost above baseline")
	}
}

// TestRunWindowsPipelinedBitIdentical is the acceptance check for the
// pipelined scheduler: on a seeded 10-agent, 48-window trace, RunWindows
// with four windows in flight must produce bit-identical per-window
// results (price, kind, trades) to the strictly sequential path.
func TestRunWindowsPipelinedBitIdentical(t *testing.T) {
	// This late-afternoon slice mixes regimes: ~30 general-market and ~18
	// extreme-market windows, every one running the full protocol stack.
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 10, Windows: 48, Seed: 424242, StartHour: 16.3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]pem.WindowInput, tr.Windows)
	for w := 0; w < tr.Windows; w++ {
		if inputs[w], err = tr.WindowInputs(w); err != nil {
			t.Fatal(err)
		}
	}

	run := func(inflight int) []*pem.WindowResult {
		m, err := pem.NewMarket(pem.Config{
			KeyBits:            256,
			Seed:               seedPtr(99),
			MaxInflightWindows: inflight,
		}, tr.Agents())
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
		defer cancel()
		results, err := m.RunWindows(ctx, inputs)
		if err != nil {
			t.Fatalf("inflight=%d: %v", inflight, err)
		}
		if m.Ledger().Len() != tr.Windows+1 {
			t.Fatalf("inflight=%d: ledger height %d", inflight, m.Ledger().Len())
		}
		if err := m.Ledger().Verify(); err != nil {
			t.Fatalf("inflight=%d: %v", inflight, err)
		}
		return results
	}

	seq := run(1)
	pipe := run(4)
	for w := range seq {
		s, p := seq[w], pipe[w]
		if s.Kind != p.Kind || s.Price != p.Price || s.PHat != p.PHat || s.Degenerate != p.Degenerate {
			t.Errorf("window %d: outcome differs: %+v vs %+v", w, s, p)
		}
		if len(s.Trades) != len(p.Trades) {
			t.Fatalf("window %d: trade counts differ", w)
		}
		for i := range s.Trades {
			if s.Trades[i] != p.Trades[i] {
				t.Errorf("window %d trade %d: %+v vs %+v", w, i, s.Trades[i], p.Trades[i])
			}
		}
	}
}

// TestRunWindowParallelCryptoBitIdentical is the determinism acceptance
// check for the intra-window parallel engine: with the default ring
// topology, a seeded run must produce bit-identical per-window results at
// every crypto worker count.
func TestRunWindowParallelCryptoBitIdentical(t *testing.T) {
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 8, Windows: 12, Seed: 171717, StartHour: 16.3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]pem.WindowInput, tr.Windows)
	for w := 0; w < tr.Windows; w++ {
		if inputs[w], err = tr.WindowInputs(w); err != nil {
			t.Fatal(err)
		}
	}

	run := func(workers int) []*pem.WindowResult {
		m, err := pem.NewMarket(pem.Config{
			KeyBits:       256,
			Seed:          seedPtr(55),
			CryptoWorkers: workers,
		}, tr.Agents())
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
		defer cancel()
		results, err := m.RunWindows(ctx, inputs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return results
	}

	seq := run(1)
	for _, workers := range []int{4, 16} {
		par := run(workers)
		for w := range seq {
			s, p := seq[w], par[w]
			if s.Kind != p.Kind || s.Price != p.Price || s.PHat != p.PHat || s.Degenerate != p.Degenerate {
				t.Errorf("workers=%d window %d: outcome differs: %+v vs %+v", workers, w, s, p)
			}
			if len(s.Trades) != len(p.Trades) {
				t.Fatalf("workers=%d window %d: trade counts differ", workers, w)
			}
			for i := range s.Trades {
				if s.Trades[i] != p.Trades[i] {
					t.Errorf("workers=%d window %d trade %d: %+v vs %+v", workers, w, i, s.Trades[i], p.Trades[i])
				}
			}
		}
	}
}

// TestRunDayTreeAggregationMatchesSimulation validates the log-depth tree
// topology against the plaintext oracle over a full (small) trace: every
// window's clearing must match market.Clear to fixed-point precision, as
// with the default ring.
func TestRunDayTreeAggregationMatchesSimulation(t *testing.T) {
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 6, Windows: 6, Seed: 7, StartHour: 16.3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pem.NewMarket(pem.Config{
		KeyBits:            256,
		Seed:               seedPtr(77),
		Aggregation:        pem.AggregationTree,
		MaxInflightWindows: 2,
	}, tr.Agents())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	day, err := m.RunDay(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pem.SimulateDay(tr, pem.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for w, res := range day.Results {
		if math.Abs(res.Price-sim.Price[w]) > 1e-4 {
			t.Errorf("window %d: tree price %v, simulated %v", w, res.Price, sim.Price[w])
		}
		if res.Kind != sim.Kind[w] {
			t.Errorf("window %d: tree kind %v, simulated %v", w, res.Kind, sim.Kind[w])
		}
		if res.SellerCount != sim.SellerCount[w] || res.BuyerCount != sim.BuyerCount[w] {
			t.Errorf("window %d: coalition sizes disagree", w)
		}
		// Per-window traded volume must match the oracle's clearing.
		clr, err := pem.Clear(tr.Agents(), mustInputs(t, tr, w), pem.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var got, want float64
		for _, tr := range res.Trades {
			got += tr.Energy
		}
		for _, tr := range clr.Trades {
			want += tr.Energy
		}
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("window %d: tree volume %v, oracle %v", w, got, want)
		}
	}
	if err := m.Ledger().Verify(); err != nil {
		t.Error(err)
	}
}

func mustInputs(t *testing.T, tr *pem.Trace, w int) []pem.WindowInput {
	t.Helper()
	in, err := tr.WindowInputs(w)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestStreamDayInOrder checks the streaming day path delivers results in
// strict window order while pipelining, and that the ledger matches.
func TestStreamDayInOrder(t *testing.T) {
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 6, Windows: 8, Seed: 9, StartHour: 16.6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pem.NewMarket(pem.Config{
		KeyBits:            256,
		Seed:               seedPtr(10),
		MaxInflightWindows: 4,
	}, tr.Agents())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	var seen []int
	day, err := m.StreamDay(ctx, tr, func(res *pem.WindowResult) error {
		seen = append(seen, res.Window)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != tr.Windows {
		t.Fatalf("sink saw %d windows, want %d", len(seen), tr.Windows)
	}
	for w, got := range seen {
		if got != w {
			t.Fatalf("out-of-order delivery: position %d got window %d", w, got)
		}
	}
	if len(day.Results) != tr.Windows || day.TotalBytes <= 0 {
		t.Fatalf("day result malformed: %d windows, %d bytes", len(day.Results), day.TotalBytes)
	}
	if m.Ledger().Len() != tr.Windows+1 {
		t.Fatalf("ledger height %d", m.Ledger().Len())
	}
	if err := m.Ledger().Verify(); err != nil {
		t.Fatal(err)
	}
}
