// V2G: Vehicle-to-Grid trading, the extension sketched in Section VI of
// the paper ("PEM can be extended to V2G applications by considering
// electrical vehicles as agents with local energy").
//
// A parking structure hosts electric vehicles whose batteries buy cheap
// energy around midday (solar surplus, price at the band floor) and sell
// it back in the evening peak (deficit, price at retail or band ceiling) —
// all without revealing any vehicle's state of charge or schedule.
//
// Run with: go run ./examples/v2g
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

// phase describes one trading window of the scripted scenario.
type phase struct {
	label string
	// evBattery is each EV's battery action: + charging (buying into the
	// pack), − discharging (selling from the pack).
	evBattery float64
	// houseGen / houseLoad describe the neighborhood homes.
	houseGen  float64
	houseLoad float64
}

func main() {
	// Agents: four EVs with 60 kWh packs and six homes with solar.
	var agents []pem.Agent
	for i := 0; i < 4; i++ {
		agents = append(agents, pem.Agent{
			ID:              fmt.Sprintf("ev-%d", i),
			K:               70 + float64(10*i),
			Epsilon:         0.92,
			BatteryCapacity: 60,
		})
	}
	for i := 0; i < 6; i++ {
		agents = append(agents, pem.Agent{
			ID:      fmt.Sprintf("home-%d", i),
			K:       80 + float64(5*i),
			Epsilon: 0.88,
		})
	}

	m, err := pem.NewMarket(pem.Config{KeyBits: 512}, agents)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	phases := []phase{
		// Midday: homes over-generate; EVs charge (buy).
		{label: "midday solar surplus (EVs charge)", evBattery: +0.25, houseGen: 0.40, houseLoad: 0.08},
		// Afternoon: balanced-ish, EVs idle.
		{label: "afternoon (EVs idle)", evBattery: 0, houseGen: 0.18, houseLoad: 0.15},
		// Evening peak: homes draw hard; EVs discharge (sell).
		{label: "evening peak (EVs discharge)", evBattery: -0.30, houseGen: 0.02, houseLoad: 0.35},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	for w, ph := range phases {
		inputs := make([]pem.WindowInput, len(agents))
		for i := range agents {
			if i < 4 { // EVs: no generation or household load, only the pack
				inputs[i] = pem.WindowInput{Battery: ph.evBattery}
			} else {
				inputs[i] = pem.WindowInput{Generation: ph.houseGen, Load: ph.houseLoad}
			}
		}

		res, err := m.RunWindow(ctx, w, inputs)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("window %d — %s\n", w, ph.label)
		fmt.Printf("  %s market, price %.2f cents/kWh, %d sellers / %d buyers\n",
			res.Kind, res.Price, res.SellerCount, res.BuyerCount)
		var evBought, evSold float64
		for _, tr := range res.Trades {
			if isEV(tr.Buyer) {
				evBought += tr.Energy
			}
			if isEV(tr.Seller) {
				evSold += tr.Energy
			}
		}
		fmt.Printf("  EV fleet bought %.3f kWh, sold %.3f kWh (%d trades)\n\n", evBought, evSold, len(res.Trades))
	}

	// The ledger audit works across windows: total energy per seller.
	if err := m.Ledger().Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ledger totals (kWh sold):")
	for id, kwh := range m.Ledger().EnergyBySeller() {
		fmt.Printf("  %-8s %.3f\n", id, kwh)
	}
}

func isEV(id string) bool { return len(id) >= 3 && id[:3] == "ev-" }
