// Live grid: a multi-day simulation over a churning fleet. The day is split
// into epochs; at each epoch boundary prosumers join, depart (planned) or
// fail (crash-style), the partitioner re-partitions the surviving-plus-new
// roster, and every coalition re-keys — fresh Paillier key material and a
// fresh transport scope per (epoch, coalition) — over the same shared
// crypto pool and bus, so churn costs a bounded re-key, not a restart.
//
// Settlement carries across epochs per agent: an agent's cumulative
// position survives re-partitioning (it is keyed by ID, not coalition), and
// an agent that leaves is settled at the grid tariff and frozen at its exit
// epoch. The demo prints the churn schedule, each epoch's re-key cost next
// to its trading throughput, and the frozen position of one departed agent.
//
// Run with: go run ./examples/live-grid
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	seed := int64(2026)
	lg, err := pem.NewLiveGrid(pem.LiveGridConfig{
		Market:     pem.Config{KeyBits: 512, Seed: &seed},
		Coalitions: 3,
		Partition:  pem.PartitionBalanced,
		Epochs:     4,
		Churn: pem.ChurnConfig{
			JoinRate:   0.25, // the fleet grows…
			DepartRate: 0.15, // …while some prosumers leave on notice…
			FailRate:   0.10, // …and some just vanish.
		},
	}, pem.FleetConfig{
		Coalitions:        3,
		HomesPerCoalition: 4,
		Windows:           3,
		Seed:              seed,
		StartHour:         11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The evolution is fixed at construction: inspect the churn schedule
	// before any protocol runs.
	fmt.Println("churn schedule:")
	for _, ev := range lg.Events() {
		fmt.Printf("  epoch %d: %-6s %s\n", ev.Epoch, ev.Kind, ev.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := lg.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nepochs (re-key cost vs steady-state trading):")
	for _, er := range res.Epochs {
		wps := 0.0
		if er.Trading > 0 {
			wps = float64(er.Windows) / er.Trading.Seconds()
		}
		fmt.Printf("  epoch %d: %2d agents in %d markets — re-key %6s, trade %6s (%.1f windows/sec), grid net %+.0fc\n",
			er.Epoch, er.Agents, len(er.Coalitions),
			er.Rekey.Round(time.Millisecond), er.Trading.Round(time.Millisecond),
			wps, er.Settlement.Fleet.NetCost)
	}
	fmt.Printf("total: %d windows; re-key %s vs trading %s — %.1f windows/sec steady state\n",
		res.Windows, res.Rekey.Round(time.Millisecond), res.Trading.Round(time.Millisecond), res.WindowsPerSec)

	// Cross-epoch settlement: positions survive re-partitioning, leavers
	// freeze at their exit epoch, and the books balance fleet-wide.
	var frozen *pem.AgentPosition
	for i, p := range res.Positions {
		if !p.Active() {
			frozen = &res.Positions[i]
			break
		}
	}
	if frozen != nil {
		fmt.Printf("\n%s left at epoch %d (%s): bought %.3f kWh / sold %.3f kWh in the PEM, net %+.0fc — frozen\n",
			frozen.ID, frozen.ExitEpoch, frozen.ExitKind,
			frozen.Flows.BuyKWh, frozen.Flows.SellKWh, frozen.NetCents())
	}
	fmt.Printf("conservation across %d positions: energy %.3g kWh, payments %.3g cents\n",
		len(res.Positions), res.EnergyImbalanceKWh, res.PaymentImbalanceCents)
}
