// Parallel window: one trading window executed by the sequential engine
// (one crypto worker, the paper's ring aggregation) and by the intra-window
// parallel engine (a multi-worker crypto pool and the log-depth tree
// topology), verifying the outcomes are identical and reporting the
// wall-clock difference.
//
// Pipelining (examples/pipelined-day) overlaps whole windows; the knobs
// shown here speed up a single window: the chosen counterparty drains the
// Protocol 4 masked ciphertexts in arrival order and decrypts them across
// the worker pool, broadcasts fan out concurrently, and the pairwise
// settlement exchanges run per peer.
//
// Run with: go run ./examples/parallel-window
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	// Enough homes that the demand coalition gives the worker pool real
	// batches to chew on.
	trace, err := pem.GenerateTrace(pem.TraceConfig{Homes: 16, Windows: 720, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := trace.WindowInputs(trace.Windows / 2) // midday: both coalitions populated
	if err != nil {
		log.Fatal(err)
	}
	seed := int64(7)

	runWindow := func(workers int, agg string) (*pem.WindowResult, time.Duration) {
		m, err := pem.NewMarket(pem.Config{
			KeyBits:       512,
			Seed:          &seed,
			CryptoWorkers: workers,
			Aggregation:   agg,
		}, trace.Agents())
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		start := time.Now()
		res, err := m.RunWindow(ctx, 0, inputs)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	fmt.Println("sequential engine (1 worker, ring aggregation):")
	seq, seqTime := runWindow(1, pem.AggregationRing)
	fmt.Printf("  %s, %.2f cents/kWh, %d trade(s) in %s\n",
		seq.Kind, seq.Price, len(seq.Trades), seqTime.Round(time.Millisecond))

	fmt.Printf("parallel engine (%d workers, tree aggregation):\n", runtime.NumCPU())
	par, parTime := runWindow(runtime.NumCPU(), pem.AggregationTree)
	fmt.Printf("  %s, %.2f cents/kWh, %d trade(s) in %s\n",
		par.Kind, par.Price, len(par.Trades), parTime.Round(time.Millisecond))

	identical := seq.Kind == par.Kind && seq.Price == par.Price && len(seq.Trades) == len(par.Trades)
	for i := range seq.Trades {
		if !identical || seq.Trades[i] != par.Trades[i] {
			identical = false
			break
		}
	}
	fmt.Printf("\noutcomes identical: %v\n", identical)
	fmt.Printf("sequential: %s   parallel: %s   speedup: %.2fx (scales with cores and coalition size)\n",
		seqTime.Round(time.Millisecond), parTime.Round(time.Millisecond),
		float64(seqTime)/float64(parTime))
}
