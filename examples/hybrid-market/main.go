// Hybrid market: the same trading windows executed under the paillier
// backend (the paper's construction — homomorphic aggregation everywhere,
// garbled-circuit comparison) and under the hybrid masking fast path
// (seeded additive masking for the Protocol 2/3 aggregations and the
// comparison, Paillier kept only for Protocol 4's ratio step).
//
// The point of the demo: the two backends produce bit-identical market
// outcomes — same prices, same allocations, and trade ledgers that hash to
// the same chain head — roughly an order of magnitude apart in per-window
// cost. What differs is the trust anchor, not the market; see DESIGN.md
// §12 for the threat-model comparison.
//
// Run with: go run ./examples/hybrid-market
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	trace, err := pem.GenerateTrace(pem.TraceConfig{Homes: 10, Windows: 720, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	// A short midday slice: both coalitions populated, full protocol stack.
	const windows = 3
	inputs := make([][]pem.WindowInput, windows)
	for w := range inputs {
		if inputs[w], err = trace.WindowInputs(trace.Windows/2 + w); err != nil {
			log.Fatal(err)
		}
	}
	seed := int64(7)

	runDay := func(backend string) ([]*pem.WindowResult, *pem.Ledger, time.Duration) {
		m, err := pem.NewMarket(pem.Config{
			KeyBits:       512,
			Seed:          &seed,
			CryptoBackend: backend,
		}, trace.Agents())
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		start := time.Now()
		results, err := m.RunWindows(ctx, inputs)
		if err != nil {
			log.Fatal(err)
		}
		return results, m.Ledger(), time.Since(start)
	}

	fmt.Println("paillier backend (the paper's construction):")
	pai, paiLedger, paiTime := runDay(pem.BackendPaillier)
	for _, res := range pai {
		fmt.Printf("  window %d: %s, %.2f cents/kWh, %d trade(s), %d bytes on wire\n",
			res.Window, res.Kind, res.Price, len(res.Trades), res.BytesOnWire)
	}

	fmt.Println("hybrid backend (masked aggregations, Paillier ratio step):")
	hyb, hybLedger, hybTime := runDay(pem.BackendHybrid)
	for _, res := range hyb {
		fmt.Printf("  window %d: %s, %.2f cents/kWh, %d trade(s), %d bytes on wire\n",
			res.Window, res.Kind, res.Price, len(res.Trades), res.BytesOnWire)
	}

	identical := len(pai) == len(hyb)
	for w := 0; identical && w < len(pai); w++ {
		identical = pai[w].Kind == hyb[w].Kind && pai[w].Price == hyb[w].Price &&
			len(pai[w].Trades) == len(hyb[w].Trades)
		for i := 0; identical && i < len(pai[w].Trades); i++ {
			identical = pai[w].Trades[i] == hyb[w].Trades[i]
		}
	}
	sameChain := paiLedger.Head().Hash == hybLedger.Head().Hash
	if err := hybLedger.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noutcomes identical: %v   ledger chains identical: %v\n", identical, sameChain)
	fmt.Printf("paillier: %s   hybrid: %s   speedup: %.1fx (the comparison and aggregations left the hot path)\n",
		paiTime.Round(time.Millisecond), hybTime.Round(time.Millisecond),
		float64(paiTime)/float64(hybTime))
}
