// WAN market: the same trading window priced on three emulated networks —
// an ideal LAN, a cross-region WAN and a cellular uplink — under both
// aggregation topologies, showing what the protocols' round structure costs
// once real links separate the parties.
//
// The emulation runs on a virtual clock: every message is priced against
// seeded per-link latency/jitter/bandwidth/loss models, but nothing ever
// sleeps, so all six runs finish at in-memory speed while reporting the
// critical-path latency a real deployment would wait out. Seeded runs are
// bit-identical: same outcomes, same virtual metrics, every time.
//
// Run with: go run ./examples/wan-market
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	trace, err := pem.GenerateTrace(pem.TraceConfig{Homes: 12, Windows: 720, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := trace.WindowInputs(trace.Windows / 2) // midday: both coalitions populated
	if err != nil {
		log.Fatal(err)
	}
	seed := int64(41)

	runWindow := func(network, agg string) (*pem.WindowResult, time.Duration) {
		m, err := pem.NewMarket(pem.Config{
			KeyBits:     512,
			Seed:        &seed,
			Network:     network,
			Aggregation: agg,
		}, trace.Agents())
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		start := time.Now()
		res, err := m.RunWindow(ctx, 0, inputs)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	fmt.Printf("%10s %6s %8s %8s %12s %12s   %s\n",
		"network", "agg", "rounds", "msgs", "virtual", "wall", "outcome")
	var price float64
	first := true
	for _, network := range []string{pem.NetworkLAN, pem.NetworkWAN, pem.NetworkCellular} {
		for _, agg := range []string{pem.AggregationRing, pem.AggregationTree} {
			res, wall := runWindow(network, agg)
			fmt.Printf("%10s %6s %8d %8d %12s %12s   %s @ %.2f, %d trade(s)\n",
				network, agg, res.Rounds, res.Messages,
				res.VirtualLatency.Round(time.Millisecond), wall.Round(time.Millisecond),
				res.Kind, res.Price, len(res.Trades))
			if first {
				price, first = res.Price, false
			} else if res.Price != price {
				log.Fatalf("network emulation changed the market price: %v vs %v", res.Price, price)
			}
		}
	}
	fmt.Println("\nsame market on every row — only the network differs; the tree topology")
	fmt.Println("cuts the round count, which is what a WAN actually charges for.")
}
