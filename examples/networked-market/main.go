// Networked-market: four agents in separate goroutines communicate over
// real TCP sockets with end-to-end AES-GCM channels — the same deployment
// shape as running one cmd/pem-agent process per home. No process shares
// state; everything flows through the sockets.
//
// Run with: go run ./examples/networked-market
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/secchan"
	"github.com/pem-go/pem/internal/transport"
)

func main() {
	agents := []market.Agent{
		{ID: "bakery", K: 85, Epsilon: 0.90},
		{ID: "school", K: 75, Epsilon: 0.85},
		{ID: "clinic", K: 95, Epsilon: 0.90},
		{ID: "depot", K: 80, Epsilon: 0.88},
	}
	// Private per-window data: the bakery and depot have rooftop solar
	// surplus; the school and clinic are net consumers.
	inputs := []market.WindowInput{
		{Generation: 0.45, Load: 0.15},
		{Generation: 0.02, Load: 0.35},
		{Generation: 0.00, Load: 0.22},
		{Generation: 0.38, Load: 0.10},
	}

	// One TCP listener per agent, all on loopback.
	nodes := make([]*transport.TCPNode, len(agents))
	for i, a := range agents {
		node, err := transport.ListenTCP(a.ID, "127.0.0.1:0", nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
	}
	for i := range nodes {
		for j := range nodes {
			if i != j {
				nodes[i].SetPeer(agents[j].ID, nodes[j].Addr())
			}
		}
		fmt.Printf("%-8s listening on %s\n", agents[i].ID, nodes[i].Addr())
	}

	// Secure-channel identities (static X25519), published in a directory
	// as the paper publishes the agents' public keys.
	dir := secchan.NewDirectory()
	ids := make([]*secchan.Identity, len(agents))
	for i, a := range agents {
		id, err := secchan.NewIdentity(nil)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
		dir.Register(a.ID, id.PublicKey())
	}

	peerIDs := make([]string, len(agents))
	for i, a := range agents {
		peerIDs[i] = a.ID
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	outcomes := make([]*core.PartyOutcome, len(agents))
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a market.Agent) {
			defer wg.Done()
			conn := secchan.New(nodes[i], ids[i], dir)
			party, err := core.NewStandaloneParty(core.Config{KeyBits: 512}, a, conn)
			if err != nil {
				log.Printf("%s: %v", a.ID, err)
				return
			}
			if err := party.ExchangeKeys(ctx, peerIDs); err != nil {
				log.Printf("%s: key exchange: %v", a.ID, err)
				return
			}
			out, err := party.RunTradingWindow(ctx, 0, inputs[i])
			if err != nil {
				log.Printf("%s: window: %v", a.ID, err)
				return
			}
			outcomes[i] = out
		}(i, a)
	}
	wg.Wait()

	for i, out := range outcomes {
		if out == nil {
			log.Fatalf("agent %s failed", agents[i].ID)
		}
	}
	fmt.Printf("\nall agents agree: %s market at %.2f cents/kWh\n", outcomes[0].Kind, outcomes[0].Price)
	for i, out := range outcomes {
		for _, tr := range out.Trades {
			fmt.Printf("  %s routed %.4f kWh to %s for %.2f cents\n", tr.Seller, tr.Energy, tr.Buyer, tr.Payment)
		}
		_ = i
	}
}
