// Pipelined day: the same synthetic trading day executed strictly
// sequentially (the paper's deployment) and with four windows in flight
// through the scheduler, verifying the outcomes are bit-identical and
// reporting the wall-clock difference.
//
// Run with: go run ./examples/pipelined-day
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	// A small fleet and a late-afternoon slice of the day (both market
	// regimes appear) keep the demo under a minute; scale Homes/Windows
	// up on a big machine to see the pipeline shine.
	trace, err := pem.GenerateTrace(pem.TraceConfig{Homes: 6, Windows: 6, Seed: 2020, StartHour: 16.9})
	if err != nil {
		log.Fatal(err)
	}
	seed := int64(42)

	runDay := func(inflight int) (*pem.DayResult, time.Duration) {
		m, err := pem.NewMarket(pem.Config{
			KeyBits:            512,
			Seed:               &seed,
			MaxInflightWindows: inflight,
		}, trace.Agents())
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()

		start := time.Now()
		// StreamDay delivers each window's outcome in order while later
		// windows are still executing.
		day, err := m.StreamDay(ctx, trace, func(res *pem.WindowResult) error {
			fmt.Printf("  [inflight=%d] window %d: %s, %.2f cents/kWh, %d trade(s)\n",
				inflight, res.Window, res.Kind, res.Price, len(res.Trades))
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return day, time.Since(start)
	}

	fmt.Println("sequential (paper deployment):")
	seqDay, seqTime := runDay(1)
	fmt.Println("pipelined (4 windows in flight):")
	pipeDay, pipeTime := runDay(4)

	// The scheduler guarantees identical outcomes at any pipeline depth:
	// every window has its own transport tag namespace and randomness.
	identical := true
	for w := range seqDay.Results {
		s, p := seqDay.Results[w], pipeDay.Results[w]
		if s.Price != p.Price || s.Kind != p.Kind || len(s.Trades) != len(p.Trades) {
			identical = false
		}
	}
	fmt.Printf("\noutcomes bit-identical: %v\n", identical)
	fmt.Printf("sequential: %s   pipelined: %s   speedup: %.2fx (scales with cores)\n",
		seqTime.Round(time.Millisecond), pipeTime.Round(time.Millisecond),
		float64(seqTime)/float64(pipeTime))
}
