// Quickstart: three smart homes trade one window privately.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	// Three agents: a big solar roof (surplus), and two consumers.
	// K is the load-behaviour preference; Epsilon the battery loss
	// coefficient (Section III-A of the paper).
	agents := []pem.Agent{
		{ID: "solar-roof", K: 85, Epsilon: 0.90},
		{ID: "townhouse", K: 75, Epsilon: 0.85},
		{ID: "ev-garage", K: 95, Epsilon: 0.90},
	}

	// 512-bit keys keep the demo snappy; use 2048 in deployments.
	m, err := pem.NewMarket(pem.Config{KeyBits: 512}, agents)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Each agent's private window data: generation, load, battery (kWh).
	inputs := []pem.WindowInput{
		{Generation: 0.40, Load: 0.10},                 // +0.30 surplus: seller
		{Generation: 0.00, Load: 0.25},                 // −0.25 deficit: buyer
		{Generation: 0.05, Load: 0.30, Battery: -0.05}, // −0.20 deficit: buyer
	}

	res, err := m.RunWindow(ctx, 0, inputs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("market: %s  |  private Stackelberg price: %.2f cents/kWh\n", res.Kind, res.Price)
	fmt.Printf("coalitions: %d seller(s), %d buyer(s)\n", res.SellerCount, res.BuyerCount)
	for _, tr := range res.Trades {
		fmt.Printf("  %s sold %.4f kWh to %s for %.2f cents\n", tr.Seller, tr.Energy, tr.Buyer, tr.Payment)
	}

	// Every trade is committed to a hash-chained ledger.
	l := m.Ledger()
	if err := l.Verify(); err != nil {
		log.Fatal(err)
	}
	head := l.Head()
	fmt.Printf("ledger verified: %d blocks, head %x\n", l.Len(), head.Hash[:8])

	// Compare with what a with-full-information clearing would produce:
	// the private protocols reproduce it without anyone revealing data.
	ref, err := pem.Clear(agents, inputs, pem.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext reference price: %.2f cents/kWh (matches: %v)\n",
		ref.Price, abs(ref.Price-res.Price) < 0.01)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
