// Microgrid-day: a 200-home neighborhood trades across a full day
// (720 one-minute windows, 07:00–19:00), reproducing the shape of the
// paper's Figs. 4 and 6 on synthetic UMass-like traces, then spot-checks
// a few windows through the full cryptographic stack.
//
// Run with: go run ./examples/microgrid-day
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	const homes = 200
	const windows = 720

	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: homes, Windows: windows, Seed: 20200425})
	if err != nil {
		log.Fatal(err)
	}
	params := pem.DefaultParams()

	ds, err := pem.SimulateDay(tr, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %d homes, %d windows (07:00-19:00) ===\n\n", homes, windows)

	// Fig. 4 shape: coalition churn across the day.
	fmt.Println("coalition sizes (sellers/buyers):")
	for _, w := range []int{0, 120, 240, 360, 480, 600, 719} {
		hour := 7 + w/60
		fmt.Printf("  %02d:%02d  sellers %3d   buyers %3d\n", hour, w%60, ds.SellerCount[w], ds.BuyerCount[w])
	}

	// Fig. 6(a) shape: price pinned at retail while generation is ~0,
	// inside (or clamped to) the [90,110] band midday.
	fmt.Println("\ntrading price (cents/kWh):")
	for _, w := range []int{0, 120, 240, 360, 480, 600, 719} {
		hour := 7 + w/60
		fmt.Printf("  %02d:%02d  price %6.2f  (%s market)\n", hour, w%60, ds.Price[w], ds.Kind[w])
	}

	// Fig. 6(c)/(d) aggregates.
	var pemCost, baseCost, gridPEM, gridBase float64
	for w := 0; w < ds.Windows; w++ {
		pemCost += ds.BuyerCostPEM[w]
		baseCost += ds.BuyerCostBase[w]
		gridPEM += ds.GridPEM[w]
		gridBase += ds.GridBase[w]
	}
	fmt.Printf("\nbuyer coalition day cost: %.0f cents with PEM vs %.0f without (%.1f%% saved)\n",
		pemCost, baseCost, 100*(1-pemCost/baseCost))
	fmt.Printf("grid interaction: %.1f kWh with PEM vs %.1f without (%.1f%% reduced)\n",
		gridPEM, gridBase, 100*(1-gridPEM/gridBase))

	// Fig. 6(b) shape: tracked seller utility for k = 20 vs 40.
	best := mostSellerWindows(tr)
	w20, wo20, err := pem.SellerUtilitySeries(tr, best, 20, params)
	if err != nil {
		log.Fatal(err)
	}
	w40, _, err := pem.SellerUtilitySeries(tr, best, 40, params)
	if err != nil {
		log.Fatal(err)
	}
	var sum20, sumBase20, sum40 float64
	for w := range w20 {
		sum20 += w20[w]
		sumBase20 += wo20[w]
		sum40 += w40[w]
	}
	fmt.Printf("\ntracked seller %s day utility: k=20: %.1f with PEM vs %.1f without; k=40: %.1f\n",
		tr.Homes[best].ID, sum20, sumBase20, sum40)

	// Spot-check: run three windows through the real cryptographic stack
	// on a 12-home subset — pipelined, all three in flight — and confirm
	// the private prices match the plaintext simulation.
	sub, err := tr.Subset(12)
	if err != nil {
		log.Fatal(err)
	}
	// RunWindows numbers windows by slice index, which would not match the
	// trace windows being spot-checked — skip the ledger so no mismatched
	// window numbers are committed.
	noLedger := false
	m, err := pem.NewMarket(pem.Config{
		KeyBits:            512,
		MaxInflightWindows: 3,
		RecordLedger:       &noLedger,
	}, sub.Agents())
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	subSim, err := pem.SimulateDay(sub, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nprivate spot-checks (12-home subset, 512-bit keys, 3 windows in flight):")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	spots := []int{240, 360, 480}
	inputs := make([][]pem.WindowInput, len(spots))
	for i, w := range spots {
		if inputs[i], err = sub.WindowInputs(w); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	results, err := m.RunWindows(ctx, inputs)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		w := spots[i]
		fmt.Printf("  window %3d: private price %6.2f vs plaintext %6.2f  (%d trades, %s)\n",
			w, res.Price, subSim.Price[w], len(res.Trades), res.Duration.Round(time.Millisecond))
	}
	fmt.Printf("  all three windows in %s wall-clock\n", time.Since(start).Round(time.Millisecond))
}

// mostSellerWindows picks the home that sells most often (the paper tracks
// agents that are sellers in every window of the real dataset).
func mostSellerWindows(tr *pem.Trace) int {
	best, bestCount := 0, -1
	for h := range tr.Homes {
		c := 0
		for w := 0; w < tr.Windows; w++ {
			if tr.Gen[h][w]-tr.Load[h][w]-tr.Battery[h][w] > 0 {
				c++
			}
		}
		if c > bestCount {
			best, bestCount = h, c
		}
	}
	return best
}
