// Coalition grid: a heterogeneous fleet — a sunny block, an overcast one, a
// winter one and a storage-heavy one — sharded into four coalitions that
// each run a full private market concurrently over shared crypto and
// transport, with every coalition's residual supply/demand settled against
// the main grid.
//
// The same fleet is run under two partition strategies to show why the
// partitioner matters: "fixed" keeps the scenario-pure blocks (the sunny
// coalition exports, the winter one imports — residuals bounce through the
// grid), while "balanced" mixes producers and consumers per coalition using
// only public metadata, so more energy clears inside the private markets.
//
// Run with: go run ./examples/coalition-grid
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	// A late-afternoon slice: the sun is low, so the sunny block still
	// exports while the winter and overcast blocks already import.
	fleet, err := pem.GenerateFleet(pem.FleetConfig{
		Coalitions:        4,
		HomesPerCoalition: 4,
		Windows:           4,
		Seed:              2020,
		StartHour:         16.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, strategy := range []string{pem.PartitionFixed, pem.PartitionBalanced} {
		if err := runGrid(fleet, strategy); err != nil {
			log.Fatal(err)
		}
	}
}

func runGrid(fleet *pem.Trace, strategy string) error {
	seed := int64(7)
	g, err := pem.NewGrid(pem.GridConfig{
		Market:                  pem.Config{KeyBits: 512, Seed: &seed},
		Coalitions:              4,
		Partition:               strategy,
		MaxConcurrentCoalitions: 4,
	}, fleet)
	if err != nil {
		return err
	}

	fmt.Printf("=== %s partition ===\n", strategy)
	for i, ids := range g.Partition() {
		fmt.Printf("  c%02d: %v\n", i, ids)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := g.Run(ctx)
	if err != nil {
		return err
	}

	fmt.Printf("ran %d coalition-days (%d windows) in %s — %.1f windows/sec aggregate\n",
		len(res.Coalitions), res.Windows, time.Since(start).Round(time.Millisecond), res.WindowsPerSec)
	for _, cr := range res.Coalitions {
		var trades int
		var energy float64
		for _, r := range cr.Results {
			trades += len(r.Trades)
			for _, tr := range r.Trades {
				energy += tr.Energy
			}
		}
		fmt.Printf("  %s: %d agents, %d trades (%.3f kWh traded privately), %.1f kB on wire\n",
			cr.Name, len(cr.IDs), trades, energy, float64(cr.Bytes)/1e3)
	}

	// Each coalition's unmatched energy settles against the main grid; the
	// residual exports of one coalition matched against the residual
	// imports of another are the opportunity an inter-coalition market
	// could still capture.
	s := res.Settlement
	fmt.Println("  residual settlement against the grid tariff:")
	for _, cs := range s.PerCoalition {
		fmt.Printf("    %s: import %.3f kWh (%.0fc), export %.3f kWh (%.0fc), net %+.0fc\n",
			cs.Coalition, cs.ImportKWh, cs.ImportCost, cs.ExportKWh, cs.ExportRevenue, cs.NetCost)
	}
	fmt.Printf("    fleet: import %.3f kWh, export %.3f kWh, net cost %+.0fc\n",
		s.Fleet.ImportKWh, s.Fleet.ExportKWh, s.Fleet.NetCost)
	fmt.Printf("    cross-coalition netting opportunity: %.3f kWh (%.0fc of tariff spread)\n\n",
		s.MatchedKWh, s.NettingGainCents)
	return nil
}
