package main

import "testing"

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("a=127.0.0.1:1,b=host:2")
	if err != nil {
		t.Fatal(err)
	}
	if peers["a"] != "127.0.0.1:1" || peers["b"] != "host:2" {
		t.Errorf("parsed %v", peers)
	}
	if len(peers) != 2 {
		t.Errorf("got %d peers", len(peers))
	}
}

func TestParsePeersEmpty(t *testing.T) {
	peers, err := parsePeers("")
	if err != nil || len(peers) != 0 {
		t.Errorf("empty list: %v, %v", peers, err)
	}
}

func TestParsePeersWhitespace(t *testing.T) {
	peers, err := parsePeers(" a=x:1 , b=y:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if peers["a"] != "x:1" || peers["b"] != "y:2" {
		t.Errorf("parsed %v", peers)
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, bad := range []string{"noequals", "=addr", "id=", "a=1,,b=2"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
