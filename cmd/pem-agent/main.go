// Command pem-agent runs a single PEM agent as its own process,
// communicating with peers over TCP with end-to-end encrypted channels.
// It is the multi-process deployment shape of the paper's per-container
// agents: start one pem-agent per smart home, point them at each other,
// and they will exchange keys and trade through the private protocols.
//
// Example three-agent market on one machine:
//
//	pem-agent -id solar  -listen 127.0.0.1:7001 \
//	    -peers 'town=127.0.0.1:7002,ev=127.0.0.1:7003' \
//	    -gen 0.4 -load 0.1 -windows 3
//	pem-agent -id town -listen 127.0.0.1:7002 \
//	    -peers 'solar=127.0.0.1:7001,ev=127.0.0.1:7003' \
//	    -gen 0.0 -load 0.3 -windows 3
//	pem-agent -id ev -listen 127.0.0.1:7003 \
//	    -peers 'solar=127.0.0.1:7001,town=127.0.0.1:7002' \
//	    -gen 0.1 -load 0.2 -windows 3
//
// Secure-channel identities are exchanged over the TCP roster at startup
// (trust-on-first-use); production deployments would pin the directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/secchan"
	"github.com/pem-go/pem/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pem-agent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pem-agent", flag.ContinueOnError)
	id := fs.String("id", "", "this agent's unique ID (required)")
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address")
	peersFlag := fs.String("peers", "", "comma-separated peer list: id=host:port,...")
	gen := fs.Float64("gen", 0, "generation per window (kWh)")
	load := fs.Float64("load", 0, "load per window (kWh)")
	batt := fs.Float64("battery", 0, "battery charge (+) / discharge (-) per window (kWh)")
	k := fs.Float64("k", 85, "preference parameter k")
	epsilon := fs.Float64("epsilon", 0.9, "battery loss coefficient")
	windows := fs.Int("windows", 1, "number of trading windows to run")
	keyBits := fs.Int("keybits", 1024, "Paillier key size")
	plain := fs.Bool("insecure-transport", false, "skip the AES-GCM channel layer (debugging only)")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peers is required (id=addr,...)")
	}

	node, err := transport.ListenTCP(*id, *listen, peers, nil)
	if err != nil {
		return err
	}
	defer node.Close()
	fmt.Printf("[%s] listening on %s\n", *id, node.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// SIGINT/SIGTERM drain rather than kill: the in-flight window runs to
	// completion (dying mid-protocol would strand every peer in the
	// coalition waiting on our ring position), then the agent exits before
	// launching the next one. A second signal force-kills via the default
	// handler, which stopSignals restores as soon as the first arrives.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case <-sigCtx.Done():
			fmt.Fprintf(os.Stderr, "[%s] signal received: draining current window, then exiting (signal again to abort)\n", *id)
			stopSignals()
		case <-finished:
		}
	}()

	peerIDs := make([]string, 0, len(peers)+1)
	peerIDs = append(peerIDs, *id)
	for pid := range peers {
		peerIDs = append(peerIDs, pid)
	}

	var conn transport.Conn = node
	if !*plain {
		identity, err := secchan.NewIdentity(nil)
		if err != nil {
			return err
		}
		dir := secchan.NewDirectory()
		dir.Register(*id, identity.PublicKey())
		if err := exchangeChannelKeys(ctx, node, identity, dir, peerIDs, *id); err != nil {
			return err
		}
		conn = secchan.New(node, identity, dir)
		fmt.Printf("[%s] secure channels established with %d peers\n", *id, len(peers))
	}

	agent := market.Agent{ID: *id, K: *k, Epsilon: *epsilon}
	party, err := core.NewStandaloneParty(core.Config{KeyBits: *keyBits}, agent, conn)
	if err != nil {
		return err
	}
	defer party.Close()
	if err := party.ExchangeKeys(ctx, peerIDs); err != nil {
		return err
	}
	fmt.Printf("[%s] Paillier keys exchanged (%d-bit)\n", *id, *keyBits)

	input := market.WindowInput{Generation: *gen, Load: *load, Battery: *batt}
	for w := 0; w < *windows; w++ {
		if sigCtx.Err() != nil {
			fmt.Printf("[%s] drained: exiting after %d of %d windows\n", *id, w, *windows)
			return nil
		}
		start := time.Now()
		out, err := party.RunTradingWindow(ctx, w, input)
		if err != nil {
			return fmt.Errorf("window %d: %w", w, err)
		}
		fmt.Printf("[%s] window %d: %s market, price %.2f c/kWh, %d sellers / %d buyers (%s)\n",
			*id, w, out.Kind, out.Price, out.SellerCount, out.BuyerCount,
			time.Since(start).Round(time.Millisecond))
		for _, tr := range out.Trades {
			fmt.Printf("[%s]   trade: %s -> %s  %.4f kWh for %.2f cents\n",
				*id, tr.Seller, tr.Buyer, tr.Energy, tr.Payment)
		}
	}
	return nil
}

// parsePeers parses "id=addr,id=addr".
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		peers[kv[0]] = kv[1]
	}
	return peers, nil
}

// exchangeChannelKeys publishes this agent's X25519 public key and collects
// the peers' keys (trust-on-first-use).
func exchangeChannelKeys(ctx context.Context, node *transport.TCPNode, id *secchan.Identity, dir *secchan.Directory, peerIDs []string, self string) error {
	const tag = "keys/x25519"
	for _, pid := range peerIDs {
		if pid == self {
			continue
		}
		// Peers may not be listening yet; retry until the deadline.
		for {
			err := node.Send(ctx, pid, tag, id.PublicKey())
			if err == nil {
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("send channel key to %s: %w", pid, err)
			case <-time.After(500 * time.Millisecond):
			}
		}
	}
	for _, pid := range peerIDs {
		if pid == self {
			continue
		}
		pub, err := node.Recv(ctx, pid, tag)
		if err != nil {
			return fmt.Errorf("recv channel key from %s: %w", pid, err)
		}
		dir.Register(pid, pub)
	}
	return nil
}
