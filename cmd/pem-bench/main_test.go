package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestScaleResolution(t *testing.T) {
	cases := []struct {
		name        string
		opt         options
		wantHomes   int
		wantWindows int
	}{
		{"laptop defaults", options{}, 8, 4},
		{"full scale", options{full: true}, 200, 720},
		{"homes override", options{homes: 42}, 42, 4},
		{"windows override", options{windows: 99}, 8, 99},
		{"full with override", options{full: true, homes: 50}, 50, 720},
	}
	for _, c := range cases {
		homes, windows := c.opt.scale(200, 720, 8, 4)
		if homes != c.wantHomes || windows != c.wantWindows {
			t.Errorf("%s: got %d/%d, want %d/%d", c.name, homes, windows, c.wantHomes, c.wantWindows)
		}
	}
}

func TestRunRejectsBadTargets(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-table", "7"}); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("no target accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	// Smoke-test the plaintext figure paths end to end at tiny scale.
	if err := run([]string{"-fig", "4", "-homes", "10", "-windows", "30", "-sample", "15"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "6a", "-homes", "10", "-windows", "30", "-sample", "15"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyGrid(t *testing.T) {
	// The grid sweep end to end at tiny scale, with CSV output.
	path := filepath.Join(t.TempDir(), "grid.csv")
	err := run([]string{
		"-fig", "grid", "-homes", "8", "-windows", "1", "-keybits", "256",
		"-coalitions", "2", "-partition", "fixed", "-csv", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + one row per swept coalition count (1 and 2).
	if len(rows) != 3 || rows[0][0] != "coalitions" || rows[1][0] != "1" || rows[2][0] != "2" {
		t.Fatalf("csv shape wrong: %v", rows)
	}
	if err := run([]string{"-fig", "grid", "-homes", "8", "-windows", "1", "-partition", "spiral"}); err == nil {
		t.Error("unknown partition strategy accepted")
	}
}

func TestRunTinyNet(t *testing.T) {
	// The communication-cost figure end to end at tiny scale over the wan
	// preset: ring and tree rows with CSV output, and the acceptance check
	// that tree aggregation beats the ring on a high-latency topology in
	// both rounds and virtual latency.
	path := filepath.Join(t.TempDir(), "net.csv")
	err := run([]string{
		"-fig", "net", "-homes", "6", "-windows", "1", "-keybits", "256",
		"-net", "wan", "-csv", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + ring + tree.
	if len(rows) != 3 || rows[0][0] != "topology" || rows[1][1] != "ring" || rows[2][1] != "tree" {
		t.Fatalf("csv shape wrong: %v", rows)
	}
	col := func(name string) int {
		for i, h := range rows[0] {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, rows[0])
		return -1
	}
	num := func(row int, name string) float64 {
		v, err := strconv.ParseFloat(rows[row][col(name)], 64)
		if err != nil {
			t.Fatalf("row %d %s: %v", row, name, err)
		}
		return v
	}
	if num(2, "rounds_max") >= num(1, "rounds_max") {
		t.Errorf("tree rounds %v not below ring rounds %v on wan", num(2, "rounds_max"), num(1, "rounds_max"))
	}
	if num(2, "virt_ms_day") >= num(1, "virt_ms_day") {
		t.Errorf("tree virtual day %v not below ring %v on wan", num(2, "virt_ms_day"), num(1, "virt_ms_day"))
	}
	if num(1, "msgs") == 0 || num(1, "msgs_pd") == 0 {
		t.Error("message-count columns empty")
	}
	if err := run([]string{"-fig", "net", "-net", "dialup", "-homes", "6", "-windows", "1", "-keybits", "256"}); err == nil {
		t.Error("unknown topology preset accepted")
	}
}

func TestRunTinyScale(t *testing.T) {
	// The scale figure end to end at tiny scale: a 3-decade agent sweep ×
	// tier depths (flat, one, two levels), all-folded plaintext coalitions,
	// with CSV output and the RSS budget gate armed high enough to pass.
	path := filepath.Join(t.TempDir(), "scale.csv")
	err := run([]string{
		"-fig", "scale", "-homes", "400", "-windows", "2",
		"-tiers", "4,4", "-rss-budget-mb", "8192", "-csv", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + (3 fleet sizes × 3 tier depths).
	if len(rows) != 10 || rows[0][0] != "agents" || rows[1][2] != "flat" || rows[3][2] != "4,4" {
		t.Fatalf("csv shape wrong: %v", rows)
	}
	col := func(name string) int {
		for i, h := range rows[0] {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, rows[0])
		return -1
	}
	for r := 1; r < len(rows); r++ {
		aps, err := strconv.ParseFloat(rows[r][col("agents_per_sec")], 64)
		if err != nil || aps <= 0 {
			t.Errorf("row %d: agents_per_sec %q not positive", r, rows[r][col("agents_per_sec")])
		}
		hwm, err := strconv.ParseFloat(rows[r][col("rss_hwm_mb")], 64)
		if err != nil || hwm <= 0 {
			t.Errorf("row %d: rss_hwm_mb %q not positive (procfs expected in CI)", r, rows[r][col("rss_hwm_mb")])
		}
	}
	// Tiered rows carry tier nodes; flat rows none.
	if rows[1][col("tier_nodes")] != "0" || rows[3][col("tier_nodes")] == "0" {
		t.Errorf("tier_nodes wrong: flat %q, tiered %q", rows[1][col("tier_nodes")], rows[3][col("tier_nodes")])
	}

	// A malformed tier schedule and a busted budget must both fail hard.
	if err := run([]string{"-fig", "scale", "-homes", "16", "-windows", "1", "-tiers", "4,zero"}); err == nil {
		t.Error("malformed -tiers accepted")
	}
	if err := run([]string{"-fig", "scale", "-homes", "16", "-windows", "1", "-tiers", "2", "-rss-budget-mb", "1"}); err == nil {
		t.Error("1 MiB RSS budget not enforced")
	}
}

func TestRunTinyLive(t *testing.T) {
	// The live (epoched) figure end to end at tiny scale: ≥4 epochs of
	// ≥20% churn with CSV output — one row per epoch.
	path := filepath.Join(t.TempDir(), "live.csv")
	err := run([]string{
		"-fig", "live", "-homes", "8", "-windows", "1", "-keybits", "256",
		"-coalitions", "2", "-epochs", "4", "-churn", "0.25", "-csv", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0][0] != "epoch" || rows[4][0] != "3" {
		t.Fatalf("csv shape wrong: %v", rows)
	}
}
