package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestScaleResolution(t *testing.T) {
	cases := []struct {
		name        string
		opt         options
		wantHomes   int
		wantWindows int
	}{
		{"laptop defaults", options{}, 8, 4},
		{"full scale", options{full: true}, 200, 720},
		{"homes override", options{homes: 42}, 42, 4},
		{"windows override", options{windows: 99}, 8, 99},
		{"full with override", options{full: true, homes: 50}, 50, 720},
	}
	for _, c := range cases {
		homes, windows := c.opt.scale(200, 720, 8, 4)
		if homes != c.wantHomes || windows != c.wantWindows {
			t.Errorf("%s: got %d/%d, want %d/%d", c.name, homes, windows, c.wantHomes, c.wantWindows)
		}
	}
}

func TestRunRejectsBadTargets(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-table", "7"}); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("no target accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	// Smoke-test the plaintext figure paths end to end at tiny scale.
	if err := run([]string{"-fig", "4", "-homes", "10", "-windows", "30", "-sample", "15"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "6a", "-homes", "10", "-windows", "30", "-sample", "15"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyGrid(t *testing.T) {
	// The grid sweep end to end at tiny scale, with CSV output.
	path := filepath.Join(t.TempDir(), "grid.csv")
	err := run([]string{
		"-fig", "grid", "-homes", "8", "-windows", "1", "-keybits", "256",
		"-coalitions", "2", "-partition", "fixed", "-csv", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + one row per swept coalition count (1 and 2).
	if len(rows) != 3 || rows[0][0] != "coalitions" || rows[1][0] != "1" || rows[2][0] != "2" {
		t.Fatalf("csv shape wrong: %v", rows)
	}
	if err := run([]string{"-fig", "grid", "-homes", "8", "-windows", "1", "-partition", "spiral"}); err == nil {
		t.Error("unknown partition strategy accepted")
	}
}

func TestRunTinyLive(t *testing.T) {
	// The live (epoched) figure end to end at tiny scale: ≥4 epochs of
	// ≥20% churn with CSV output — one row per epoch.
	path := filepath.Join(t.TempDir(), "live.csv")
	err := run([]string{
		"-fig", "live", "-homes", "8", "-windows", "1", "-keybits", "256",
		"-coalitions", "2", "-epochs", "4", "-churn", "0.25", "-csv", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0][0] != "epoch" || rows[4][0] != "3" {
		t.Fatalf("csv shape wrong: %v", rows)
	}
}
