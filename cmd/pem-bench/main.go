// Command pem-bench regenerates the tables and figures of the paper's
// evaluation (Section VII).
//
// Usage:
//
//	pem-bench -fig 4            # coalition sizes vs trading windows
//	pem-bench -fig 5a           # avg runtime/window vs #windows, n sweep
//	pem-bench -fig 5b           # total runtime vs #windows, key sweep
//	pem-bench -fig 5c           # runtime vs #agents, key sweep
//	pem-bench -fig 6a|6b|6c|6d  # trading-performance figures
//	pem-bench -fig pipe         # sequential vs pipelined day comparison
//	pem-bench -fig par          # sequential vs parallel window comparison
//	pem-bench -fig grid         # sharded coalition grid throughput sweep
//	pem-bench -fig live         # epoched live grid under agent churn
//	pem-bench -fig net          # communication cost on emulated networks
//	pem-bench -fig crypto       # paillier vs hybrid backend ablation
//	pem-bench -fig scale        # hierarchical grid at 100k+ agents, RSS-gated
//	pem-bench -fig alloc        # allocation profile: allocs, bytes, GC share
//	pem-bench -table 1          # average bandwidth by key size
//	pem-bench -all              # everything
//
// By default the cryptographic experiments (5a/5b/5c/pipe/par/table 1) run
// at a reduced scale that finishes on a laptop; pass -full for the paper's
// scale (hundreds of agents, 720 windows — hours of compute).
//
// -inflight N pipelines the crypto experiments with up to N trading
// windows in flight (default 1, the paper's sequential deployment);
// outcomes are identical at any depth, only wall-clock changes.
//
// -crypto-workers N sizes the intra-window parallel crypto pool (default:
// all cores) and -agg ring|tree selects the coalition aggregation
// topology; outcomes are identical under every combination.
//
// The grid figure shards a heterogeneous fleet into -coalitions coalitions
// under the -partition strategy (fixed, random or balanced) and sweeps the
// coalition count, reporting aggregate windows/sec; -csv FILE additionally
// writes the sweep as CSV.
//
// The live figure runs a multi-day simulation: -epochs trading days with
// -churn fleet turnover per epoch boundary (joins, planned departures and
// crash failures), re-partitioning and re-keying every epoch. Re-key cost
// is reported separately from steady-state window throughput, and the
// cross-epoch settlement conservation checks are printed at the end.
//
// The crypto figure ablates the crypto backend: the same midday day slice
// under the paillier backend (the paper's construction) and the hybrid
// masking fast path, swept over aggregation topology × network preset.
// Every row revalidates the private outcome against the plaintext oracle
// and the ledger hash chain against the paillier baseline, so the headline
// speedup column is only reported for runs whose outcomes are provably
// unchanged. Restrict the preset sweep with -net; -csv writes the table.
//
// The scale figure measures the hierarchical grid's streaming and
// settlement plane at fleet scale: a seeded trading day over fleets up to
// -homes agents (default 100k; 1M with -full), swept against the -tiers
// hierarchy depth. Every coalition is two homes — below the MinCoalition
// floor — so each folds to the plaintext grid-tariff path and the figure
// isolates the supervisor, tier netting and memory machinery from crypto
// cost. Day traces synthesize lazily per coalition and stream through
// Grid.Stream, so resident memory stays bounded by the coalitions in
// flight; the RSS columns come from /proc/self/status, and with
// -rss-budget-mb N the run fails hard when the process high-water mark
// exceeds N MiB — CI uses this as the memory-regression gate.
//
// The alloc figure measures the memory discipline of the private window
// path: heap allocations and bytes per trading window, plus the share of
// wall-clock the run spent in GC stop-the-world pauses, swept over fleet
// size × crypto backend. Key generation and engine provisioning happen
// before the measured interval, so the figure isolates the steady-state
// window loop the pooled-arena work targets; -csv writes the sweep.
//
// Every figure accepts -cpuprofile, -memprofile and -trace, which write a
// CPU profile, a heap profile (taken after a final GC) and a runtime
// execution trace covering the selected figures — the inputs to
// `go tool pprof` / `go tool trace` when hunting a regression the alloc
// figure or the benchgate CI job flags.
//
// The net figure prices the protocols on deterministic emulated networks:
// the same trading-day slice swept over the topology presets (lan, metro,
// wan, cellular, lossy — restrict with -net) × aggregation topology (ring
// vs tree), reporting message counts, bytes, protocol round counts and
// critical-path virtual latency. The emulation runs on an event-time
// virtual clock, so even the WAN rows finish at in-memory-bus speed.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pem-bench:", err)
		os.Exit(1)
	}
}

type options struct {
	fig       string
	table     int
	all       bool
	full      bool
	homes     int
	windows   int
	keyBits   int
	seed      int64
	sample    int
	inflight  int
	cryptoWrk int
	agg       string
	coalition int
	partition string
	csvPath   string
	epochs    int
	churn     float64
	network   string
	tiers     string
	rssBudget int
	storePath string
	cpuProf   string
	memProf   string
	tracePath string
}

func run(args []string) error {
	fs := flag.NewFlagSet("pem-bench", flag.ContinueOnError)
	var opt options
	fs.StringVar(&opt.fig, "fig", "", "figure to regenerate: 4, 5a, 5b, 5c, 6a, 6b, 6c, 6d, pipe, par, grid, live, net, crypto, scale")
	fs.IntVar(&opt.table, "table", 0, "table to regenerate: 1")
	fs.BoolVar(&opt.all, "all", false, "regenerate every figure and table")
	fs.BoolVar(&opt.full, "full", false, "paper scale (slow) instead of laptop scale")
	fs.IntVar(&opt.homes, "homes", 0, "override the number of smart homes")
	fs.IntVar(&opt.windows, "windows", 0, "override the number of trading windows")
	fs.IntVar(&opt.keyBits, "keybits", 0, "override the Paillier key size")
	fs.Int64Var(&opt.seed, "seed", 20200425, "trace and protocol seed")
	fs.IntVar(&opt.sample, "sample", 60, "print every N-th window in series output")
	fs.IntVar(&opt.inflight, "inflight", 1, "trading windows to keep in flight concurrently")
	fs.IntVar(&opt.cryptoWrk, "crypto-workers", 0, "intra-window crypto worker pool size (0 = all cores)")
	fs.StringVar(&opt.agg, "agg", "", "aggregation topology: ring (default) or tree")
	fs.IntVar(&opt.coalition, "coalitions", 4, "max coalition count for the grid sweep")
	fs.StringVar(&opt.partition, "partition", pem.PartitionBalanced, "grid partition strategy: fixed, random or balanced")
	fs.StringVar(&opt.csvPath, "csv", "", "also write the grid/live sweep to this CSV file")
	fs.IntVar(&opt.epochs, "epochs", 4, "trading days to simulate in the live figure")
	fs.Float64Var(&opt.churn, "churn", 0.2, "fleet turnover per epoch boundary in the live figure")
	fs.StringVar(&opt.network, "net", "", "restrict the net figure to one topology preset (lan, metro, wan, cellular, lossy); empty sweeps all")
	fs.StringVar(&opt.tiers, "tiers", "8,4", "tier fanouts for the scale figure (coalitions per district, districts per region, …)")
	fs.IntVar(&opt.rssBudget, "rss-budget-mb", 0, "fail the scale figure when the process RSS high-water mark exceeds this many MiB (0 = no gate)")
	fs.StringVar(&opt.storePath, "store", "", "persist the live figure's run to this WAL file (resumable with pem.Resume)")
	fs.StringVar(&opt.cpuProf, "cpuprofile", "", "write a CPU profile covering the selected figures to this file")
	fs.StringVar(&opt.memProf, "memprofile", "", "write a heap profile (after a final GC) to this file")
	fs.StringVar(&opt.tracePath, "trace", "", "write a runtime execution trace covering the selected figures to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !opt.all && opt.fig == "" && opt.table == 0 {
		fs.Usage()
		return fmt.Errorf("choose -fig, -table or -all")
	}

	runners := map[string]func(options) error{
		"4":      fig4,
		"5a":     fig5a,
		"5b":     fig5b,
		"5c":     fig5c,
		"6a":     fig6a,
		"6b":     fig6b,
		"6c":     fig6c,
		"6d":     fig6d,
		"pipe":   pipeComparison,
		"par":    parComparison,
		"grid":   figGrid,
		"live":   figLive,
		"net":    figNet,
		"crypto": figCrypto,
		"scale":  figScale,
		"alloc":  figAlloc,
		"t1":     table1,
	}
	var targets []string
	switch {
	case opt.all:
		targets = []string{"4", "5a", "5b", "5c", "6a", "6b", "6c", "6d", "pipe", "par", "grid", "live", "net", "crypto", "scale", "alloc", "t1"}
	case opt.table == 1:
		targets = []string{"t1"}
	case opt.table != 0:
		return fmt.Errorf("unknown table %d", opt.table)
	default:
		key := strings.ToLower(opt.fig)
		if _, ok := runners[key]; !ok {
			return fmt.Errorf("unknown figure %q", opt.fig)
		}
		targets = []string{key}
	}
	stopProfiles, err := startProfiles(opt)
	if err != nil {
		return err
	}
	defer stopProfiles()
	for _, tgt := range targets {
		if err := runners[tgt](opt); err != nil {
			return fmt.Errorf("%s: %w", tgt, err)
		}
	}
	return nil
}

// startProfiles arms the -cpuprofile/-trace collectors and returns the stop
// hook that finalizes them and writes the -memprofile heap snapshot. The
// hook runs after the selected figures, so one invocation profiles exactly
// the work it printed.
func startProfiles(o options) (stop func(), err error) {
	var cpuFile, traceFile *os.File
	if o.cpuProf != "" {
		if cpuFile, err = os.Create(o.cpuProf); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if o.tracePath != "" {
		if traceFile, err = os.Create(o.tracePath); err != nil {
			return nil, err
		}
		if err = trace.Start(traceFile); err != nil {
			traceFile.Close()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Printf("wrote %s\n", o.cpuProf)
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
			fmt.Printf("wrote %s\n", o.tracePath)
		}
		if o.memProf != "" {
			f, err := os.Create(o.memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pem-bench: memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the snapshot shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pem-bench: memprofile:", err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", o.memProf)
		}
	}, nil
}

// scale resolves homes/windows/keybits for the crypto experiments.
func (o options) scale(fullHomes, fullWindows, laptopHomes, laptopWindows int) (homes, windows int) {
	homes, windows = laptopHomes, laptopWindows
	if o.full {
		homes, windows = fullHomes, fullWindows
	}
	if o.homes > 0 {
		homes = o.homes
	}
	if o.windows > 0 {
		windows = o.windows
	}
	return homes, windows
}

// keybits resolves the Paillier key size for a figure: the laptop default,
// the -full default, or the -keybits override.
func (o options) keybits(laptop, full int) int {
	bits := laptop
	if o.full {
		bits = full
	}
	if o.keyBits > 0 {
		bits = o.keyBits
	}
	return bits
}

// flushCSV writes a finished sweep to -csv when set, announcing the path.
// Every figure that tabulates rows ends with it.
func (o options) flushCSV(rows [][]string) error {
	if o.csvPath == "" {
		return nil
	}
	if err := writeCSV(o.csvPath, rows); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.csvPath)
	return nil
}

func (o options) trace(homes, windows int) (*pem.Trace, error) {
	return pem.GenerateTrace(pem.TraceConfig{Homes: homes, Windows: windows, Seed: o.seed})
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// fig4: coalition sizes vs trading windows.
func fig4(o options) error {
	homes, windows := o.scale(200, 720, 200, 720) // plaintext: full scale is fine
	tr, err := o.trace(homes, windows)
	if err != nil {
		return err
	}
	ds, err := pem.SimulateDay(tr, pem.DefaultParams())
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Fig. 4 — coalition sizes (%d homes, %d windows)", homes, windows))
	fmt.Printf("%8s %14s %14s\n", "window", "buyers", "sellers")
	for w := 0; w < ds.Windows; w += o.sample {
		fmt.Printf("%8d %14d %14d\n", w, ds.BuyerCount[w], ds.SellerCount[w])
	}
	return nil
}

// runPrivateWindows measures the crypto engine over m windows. The windows
// are drawn from the middle of the trading day so both coalitions are
// populated and every window exercises the full protocol stack (the first
// windows of the day are seller-less and cost almost nothing). With
// -inflight > 1 the windows run through the pipelined scheduler.
func runPrivateWindows(o options, homes, windows, keyBits int) (avgPerWindow time.Duration, total time.Duration, bytesTotal int64, err error) {
	// Always synthesize the full day, then run a midday slice of it.
	tr, err := o.trace(homes, 720)
	if err != nil {
		return 0, 0, 0, err
	}
	inputs, err := middayInputs(tr, windows)
	if err != nil {
		return 0, 0, 0, err
	}
	seed := o.seed
	m, err := pem.NewMarket(pem.Config{
		KeyBits:            keyBits,
		Seed:               &seed,
		MaxInflightWindows: o.inflight,
		CryptoWorkers:      o.cryptoWrk,
		Aggregation:        o.agg,
	}, tr.Agents())
	if err != nil {
		return 0, 0, 0, err
	}
	defer m.Close()
	start := time.Now()
	startBytes := m.Metrics().TotalBytes()
	if _, err := m.RunWindows(context.Background(), inputs); err != nil {
		return 0, 0, 0, err
	}
	total = time.Since(start)
	bytesTotal = m.Metrics().TotalBytes() - startBytes
	// A degraded pre-encryption pool (workers stuck retrying randomness
	// failures) silently skews every timing figure — surface it.
	if st := m.PoolStats(); st.Retries > 0 {
		fmt.Fprintf(os.Stderr, "pem-bench: warning: pre-encryption pool degraded: %+v\n", st)
	}
	return total / time.Duration(windows), total, bytesTotal, nil
}

// pipeComparison runs the same day slice sequentially and at increasing
// pipeline depths, printing the wall-clock speedup of each depth over the
// sequential baseline. Outcomes are bit-identical across depths; only the
// scheduling changes.
func pipeComparison(o options) error {
	homes, windows := o.scale(100, 48, 8, 8)
	keyBits := o.keybits(512, 2048)
	depths := []int{1, 2, 4, 8}
	if o.inflight > 1 && o.inflight != 2 && o.inflight != 4 && o.inflight != 8 {
		depths = append(depths, o.inflight)
	}
	header(fmt.Sprintf("Pipelined scheduler — %d agents, %d windows, %d-bit keys", homes, windows, keyBits))
	fmt.Printf("%10s %16s %16s %10s\n", "inflight", "total runtime", "avg/window", "speedup")
	var baseline time.Duration
	for _, depth := range depths {
		op := o
		op.inflight = depth
		avg, total, _, err := runPrivateWindows(op, homes, windows, keyBits)
		if err != nil {
			return fmt.Errorf("inflight=%d: %w", depth, err)
		}
		if depth == 1 {
			baseline = total
		}
		speedup := float64(baseline) / float64(total)
		fmt.Printf("%10d %16s %16s %9.2fx\n", depth, total.Round(time.Millisecond), avg.Round(time.Millisecond), speedup)
	}
	return nil
}

// parComparison runs one midday window at a sweep of crypto worker counts
// and both aggregation topologies, printing the wall-clock speedup of each
// configuration over the single-worker ring baseline. Outcomes are
// identical under every configuration; only the scheduling changes.
func parComparison(o options) error {
	homes, windows := o.scale(100, 8, 32, 4)
	keyBits := o.keybits(512, 2048)
	workerCounts := []int{1, 2, 4, 8}
	if o.cryptoWrk > 1 && o.cryptoWrk != 2 && o.cryptoWrk != 4 && o.cryptoWrk != 8 {
		workerCounts = append(workerCounts, o.cryptoWrk)
	}
	header(fmt.Sprintf("Parallel window engine — %d agents, %d windows, %d-bit keys", homes, windows, keyBits))
	fmt.Printf("%6s %10s %16s %16s %10s\n", "agg", "workers", "total runtime", "avg/window", "speedup")
	var baseline time.Duration
	for _, agg := range []string{pem.AggregationRing, pem.AggregationTree} {
		for _, workers := range workerCounts {
			op := o
			op.agg = agg
			op.cryptoWrk = workers
			avg, total, _, err := runPrivateWindows(op, homes, windows, keyBits)
			if err != nil {
				return fmt.Errorf("agg=%s workers=%d: %w", agg, workers, err)
			}
			if agg == pem.AggregationRing && workers == 1 {
				baseline = total
			}
			speedup := float64(baseline) / float64(total)
			fmt.Printf("%6s %10d %16s %16s %9.2fx\n", agg, workers, total.Round(time.Millisecond), avg.Round(time.Millisecond), speedup)
		}
	}
	return nil
}

// fig5a: average runtime per window for several agent counts.
func fig5a(o options) error {
	ns := []int{8, 16, 24}
	windowsList := []int{2, 4, 8}
	if o.full {
		ns = []int{100, 200, 300}
		windowsList = []int{60, 360, 720}
	}
	keyBits := o.keybits(512, 2048)
	header(fmt.Sprintf("Fig. 5(a) — avg runtime per window (%d-bit keys)", keyBits))
	fmt.Printf("%8s %8s %20s\n", "agents", "windows", "avg runtime/window")
	for _, n := range ns {
		for _, w := range windowsList {
			avg, _, _, err := runPrivateWindows(o, n, w, keyBits)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %8d %20s\n", n, w, avg.Round(time.Millisecond))
		}
	}
	return nil
}

// fig5b: total runtime vs number of windows for the three key sizes.
func fig5b(o options) error {
	homes, _ := o.scale(200, 0, 8, 0)
	windowsList := []int{2, 4, 8}
	if o.full {
		windowsList = []int{120, 360, 720}
	}
	header(fmt.Sprintf("Fig. 5(b) — total runtime by key size (%d agents)", homes))
	fmt.Printf("%8s %10s %16s\n", "windows", "key bits", "total runtime")
	for _, bits := range []int{512, 1024, 2048} {
		for _, w := range windowsList {
			_, total, _, err := runPrivateWindows(o, homes, w, bits)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %10d %16s\n", w, bits, total.Round(time.Millisecond))
		}
	}
	return nil
}

// fig5c: runtime for a fixed day vs the number of agents.
func fig5c(o options) error {
	ns := []int{6, 10, 14}
	windows := 4
	if o.full {
		ns = []int{100, 150, 200, 250, 300}
		windows = 720
	}
	if o.windows > 0 {
		windows = o.windows
	}
	header(fmt.Sprintf("Fig. 5(c) — runtime over %d windows vs agents", windows))
	fmt.Printf("%8s %10s %16s\n", "agents", "key bits", "total runtime")
	for _, bits := range []int{512, 1024, 2048} {
		for _, n := range ns {
			_, total, _, err := runPrivateWindows(o, n, windows, bits)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %10d %16s\n", n, bits, total.Round(time.Millisecond))
		}
	}
	return nil
}

// fig6a: trading price across the day.
func fig6a(o options) error {
	homes, windows := o.scale(200, 720, 200, 720)
	tr, err := o.trace(homes, windows)
	if err != nil {
		return err
	}
	params := pem.DefaultParams()
	ds, err := pem.SimulateDay(tr, params)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Fig. 6(a) — trading price (%d homes; grid %.0f/%.0f, band %.0f..%.0f)",
		homes, params.GridSellPrice, params.GridRetailPrice, params.PriceFloor, params.PriceCeil))
	fmt.Printf("%8s %12s %12s %10s\n", "window", "price", "p-hat", "market")
	for w := 0; w < ds.Windows; w += o.sample {
		fmt.Printf("%8d %12.2f %12.2f %10s\n", w, ds.Price[w], ds.PHat[w], ds.Kind[w])
	}
	return nil
}

// fig6b: utility of a tracked seller for k = 20 and 40.
func fig6b(o options) error {
	homes, windows := o.scale(200, 720, 200, 720)
	tr, err := o.trace(homes, windows)
	if err != nil {
		return err
	}
	params := pem.DefaultParams()

	// Track the home with the most seller windows (the paper tracks two
	// always-sellers from the real dataset).
	best, bestCount := 0, -1
	for h := range tr.Homes {
		c := 0
		for w := 0; w < tr.Windows; w++ {
			if tr.Gen[h][w]-tr.Load[h][w]-tr.Battery[h][w] > 0 {
				c++
			}
		}
		if c > bestCount {
			best, bestCount = h, c
		}
	}
	header(fmt.Sprintf("Fig. 6(b) — utility of tracked seller %s (%d seller windows)", tr.Homes[best].ID, bestCount))
	fmt.Printf("%8s %14s %14s %14s %14s\n", "window", "k=20 PEM", "k=20 no-PEM", "k=40 PEM", "k=40 no-PEM")
	w20, wo20, err := pem.SellerUtilitySeries(tr, best, 20, params)
	if err != nil {
		return err
	}
	w40, wo40, err := pem.SellerUtilitySeries(tr, best, 40, params)
	if err != nil {
		return err
	}
	for w := 0; w < tr.Windows; w += o.sample {
		fmt.Printf("%8d %14.4f %14.4f %14.4f %14.4f\n", w, w20[w], wo20[w], w40[w], wo40[w])
	}
	return nil
}

// fig6c: buyer-coalition cost with and without PEM for 100 and 200 homes.
func fig6c(o options) error {
	params := pem.DefaultParams()
	header("Fig. 6(c) — buyer coalition total cost (cents/window)")
	fmt.Printf("%8s %8s %16s %16s %10s\n", "homes", "window", "with PEM", "without PEM", "savings")
	for _, homes := range []int{100, 200} {
		tr, err := o.trace(homes, 720)
		if err != nil {
			return err
		}
		ds, err := pem.SimulateDay(tr, params)
		if err != nil {
			return err
		}
		var pemTot, baseTot float64
		for w := 0; w < ds.Windows; w++ {
			pemTot += ds.BuyerCostPEM[w]
			baseTot += ds.BuyerCostBase[w]
		}
		for w := 0; w < ds.Windows; w += o.sample {
			sav := 0.0
			if ds.BuyerCostBase[w] > 0 {
				sav = 100 * (1 - ds.BuyerCostPEM[w]/ds.BuyerCostBase[w])
			}
			fmt.Printf("%8d %8d %16.1f %16.1f %9.1f%%\n", homes, w, ds.BuyerCostPEM[w], ds.BuyerCostBase[w], sav)
		}
		fmt.Printf("%8d %8s %16.1f %16.1f %9.1f%%  (day total)\n",
			homes, "all", pemTot, baseTot, 100*(1-pemTot/baseTot))
	}
	return nil
}

// fig6d: interaction with the main grid.
func fig6d(o options) error {
	homes, windows := o.scale(200, 720, 200, 720)
	tr, err := o.trace(homes, windows)
	if err != nil {
		return err
	}
	ds, err := pem.SimulateDay(tr, pem.DefaultParams())
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Fig. 6(d) — grid interaction, kWh/window (%d homes)", homes))
	fmt.Printf("%8s %14s %14s\n", "window", "with PEM", "without PEM")
	var pemTot, baseTot float64
	for w := 0; w < ds.Windows; w++ {
		pemTot += ds.GridPEM[w]
		baseTot += ds.GridBase[w]
	}
	for w := 0; w < ds.Windows; w += o.sample {
		fmt.Printf("%8d %14.4f %14.4f\n", w, ds.GridPEM[w], ds.GridBase[w])
	}
	fmt.Printf("%8s %14.1f %14.1f  (day total, %.1f%% reduction)\n",
		"all", pemTot, baseTot, 100*(1-pemTot/baseTot))
	return nil
}

// figGrid sweeps the coalition count over one heterogeneous fleet: the same
// homes trade as one big coalition, then sharded 2-way, 4-way, … with all
// coalitions running concurrently over shared crypto and transport. The
// headline column is aggregate windows/sec — sharding turns the O(n)-round
// single-roster day into many small concurrent days, so throughput scales
// with the coalition count on a multicore host. Per-coalition outcomes stay
// bit-identical at any concurrency; across coalition counts the markets
// differ (different rosters), which is the point of the experiment.
func figGrid(o options) error {
	homes, windows := o.scale(192, 48, 16, 4)
	keyBits := o.keybits(512, 1024)
	// One fleet for the whole sweep: four scenario blocks regardless of the
	// coalition count under test, so every k trades the same homes.
	blocks := 4
	if homes/blocks < 2 {
		blocks = 1
	}
	tr, err := pem.GenerateFleet(pem.FleetConfig{
		Coalitions:        blocks,
		HomesPerCoalition: homes / blocks,
		Windows:           windows,
		Seed:              o.seed,
		StartHour:         11, // midday slice: populated coalitions on both sides
	})
	if err != nil {
		return err
	}
	homes = blocks * (homes / blocks)

	maxK := o.coalition
	if maxK < 1 {
		maxK = 1
	}
	// Every coalition needs at least two agents; cap the sweep rather than
	// fail after the smaller counts have already burned their compute.
	if limit := homes / 2; maxK > limit {
		fmt.Fprintf(os.Stderr, "pem-bench: capping -coalitions %d at %d (%d homes, ≥2 per coalition)\n", maxK, limit, homes)
		maxK = limit
	}
	var ks []int
	for k := 1; k <= maxK; k *= 2 {
		ks = append(ks, k)
	}
	if last := ks[len(ks)-1]; last != maxK {
		ks = append(ks, maxK)
	}

	header(fmt.Sprintf("Coalition grid — %d homes, %d windows, %d-bit keys, %s partition",
		homes, windows, keyBits, o.partition))
	fmt.Printf("%10s %14s %14s %10s %12s %12s %14s\n",
		"coalitions", "total runtime", "windows/sec", "speedup", "import kWh", "export kWh", "netting gain")
	rows := [][]string{{
		"coalitions", "partition", "homes", "windows", "keybits",
		"total_ms", "windows_per_sec", "speedup", "bytes", "msgs",
		"import_kwh", "export_kwh", "matched_kwh", "netting_gain_cents",
	}}
	var baseline float64
	for _, k := range ks {
		seed := o.seed
		g, err := pem.NewGrid(pem.GridConfig{
			Market: pem.Config{
				KeyBits:            keyBits,
				Seed:               &seed,
				MaxInflightWindows: o.inflight,
				CryptoWorkers:      o.cryptoWrk,
				Aggregation:        o.agg,
			},
			Coalitions:              k,
			Partition:               o.partition,
			MaxConcurrentCoalitions: k,
		}, tr)
		if err != nil {
			return fmt.Errorf("coalitions=%d: %w", k, err)
		}
		res, err := g.Run(context.Background())
		if err != nil {
			return fmt.Errorf("coalitions=%d: %w", k, err)
		}
		if k == ks[0] {
			baseline = res.WindowsPerSec
		}
		speedup := res.WindowsPerSec / baseline
		fleet := res.Settlement.Fleet
		fmt.Printf("%10d %14s %14.2f %9.2fx %12.2f %12.2f %13.0fc\n",
			k, res.Duration.Round(time.Millisecond), res.WindowsPerSec, speedup,
			fleet.ImportKWh, fleet.ExportKWh, res.Settlement.NettingGainCents)
		rows = append(rows, []string{
			fmt.Sprint(k), o.partition, fmt.Sprint(homes), fmt.Sprint(windows), fmt.Sprint(keyBits),
			fmt.Sprint(res.Duration.Milliseconds()),
			fmt.Sprintf("%.3f", res.WindowsPerSec),
			fmt.Sprintf("%.3f", speedup),
			fmt.Sprint(res.TotalBytes),
			fmt.Sprint(res.TotalMessages),
			fmt.Sprintf("%.4f", fleet.ImportKWh),
			fmt.Sprintf("%.4f", fleet.ExportKWh),
			fmt.Sprintf("%.4f", res.Settlement.MatchedKWh),
			fmt.Sprintf("%.2f", res.Settlement.NettingGainCents),
		})
	}
	fmt.Println("(same fleet at every row; aggregate throughput across concurrent coalition markets)")
	return o.flushCSV(rows)
}

// netDayStats aggregates one emulated trading day for the net figure.
type netDayStats struct {
	msgs, bytes int64
	roundsMax   int
	virtDay     time.Duration
	wall        time.Duration
	phaseMsgs   map[string]int64
	windowsRun  int
}

// runNetworkedDay runs a midday slice of the trading day over one emulated
// topology and aggregation, returning its communication-cost profile. The
// virtual clock prices every message against the topology's seeded link
// models, so the wall-clock column stays at in-memory-bus speed while the
// virtual columns report what a real deployment would wait out.
func runNetworkedDay(o options, homes, windows, keyBits int, topology, agg string) (*netDayStats, error) {
	tr, err := o.trace(homes, 720)
	if err != nil {
		return nil, err
	}
	inputs, err := middayInputs(tr, windows)
	if err != nil {
		return nil, err
	}
	seed := o.seed
	m, err := pem.NewMarket(pem.Config{
		KeyBits:            keyBits,
		Seed:               &seed,
		MaxInflightWindows: o.inflight,
		CryptoWorkers:      o.cryptoWrk,
		Aggregation:        agg,
		Network:            topology,
	}, tr.Agents())
	if err != nil {
		return nil, err
	}
	defer m.Close()
	start := time.Now()
	results, err := m.RunWindows(context.Background(), inputs)
	if err != nil {
		return nil, err
	}
	st := &netDayStats{wall: time.Since(start), windowsRun: len(results)}
	for _, res := range results {
		st.msgs += res.Messages
		st.bytes += res.BytesOnWire
		st.virtDay += res.VirtualLatency
		if res.Rounds > st.roundsMax {
			st.roundsMax = res.Rounds
		}
	}
	st.phaseMsgs = m.Metrics().PhaseMessages()
	return st, nil
}

// figNet prices the protocols on emulated networks: the same midday day
// slice swept over every topology preset × aggregation topology, reporting
// message counts (total and per protocol phase), bytes, critical-path round
// counts and virtual latency. The headline contrast is ring vs tree on the
// high-latency presets — the log-depth tree cuts the round count, so its
// virtual day is far shorter even though both move the same bytes. Virtual
// time is event-driven (no wall-clock sleeps): the wall column stays at
// crypto speed under every topology.
func figNet(o options) error {
	homes, windows := o.scale(48, 8, 8, 2)
	keyBits := o.keybits(512, 1024)
	topologies := pem.NetworkPresets()
	if o.network != "" {
		topologies = []string{o.network}
	}

	header(fmt.Sprintf("Communication cost on emulated networks — %d agents, %d windows, %d-bit keys", homes, windows, keyBits))
	fmt.Printf("%10s %6s %8s %8s %10s %14s %14s %12s\n",
		"topology", "agg", "rounds", "msgs/w", "MB/w", "virt/window", "virt day", "wall")
	rows := [][]string{{
		"topology", "agg", "homes", "windows", "keybits",
		"msgs", "bytes", "rounds_max", "virt_ms_per_window", "virt_ms_day", "wall_ms",
		"msgs_role", "msgs_pme", "msgs_pp", "msgs_pd",
	}}
	for _, topology := range topologies {
		for _, agg := range []string{pem.AggregationRing, pem.AggregationTree} {
			st, err := runNetworkedDay(o, homes, windows, keyBits, topology, agg)
			if err != nil {
				return fmt.Errorf("topology=%s agg=%s: %w", topology, agg, err)
			}
			perWindow := st.virtDay / time.Duration(st.windowsRun)
			fmt.Printf("%10s %6s %8d %8d %10.3f %14s %14s %12s\n",
				topology, agg, st.roundsMax,
				st.msgs/int64(st.windowsRun),
				float64(st.bytes)/float64(st.windowsRun)/1e6,
				perWindow.Round(time.Millisecond), st.virtDay.Round(time.Millisecond),
				st.wall.Round(time.Millisecond))
			rows = append(rows, []string{
				topology, agg, fmt.Sprint(homes), fmt.Sprint(st.windowsRun), fmt.Sprint(keyBits),
				fmt.Sprint(st.msgs), fmt.Sprint(st.bytes), fmt.Sprint(st.roundsMax),
				fmt.Sprintf("%.3f", float64(perWindow)/1e6),
				fmt.Sprintf("%.3f", float64(st.virtDay)/1e6),
				fmt.Sprint(st.wall.Milliseconds()),
				fmt.Sprint(st.phaseMsgs["role"]), fmt.Sprint(st.phaseMsgs["pme"]),
				fmt.Sprint(st.phaseMsgs["pp"]), fmt.Sprint(st.phaseMsgs["pd"]),
			})
		}
	}
	fmt.Println("(virtual columns are event-time over the emulated links; wall is real elapsed time — no sleeps)")
	return o.flushCSV(rows)
}

// middayInputs slices windows consecutive midday windows out of a full
// synthetic day, so both coalitions are populated and every window
// exercises the full protocol stack.
func middayInputs(tr *pem.Trace, windows int) ([][]pem.WindowInput, error) {
	first := 360 - windows/2
	if first < 0 || windows > 720 {
		first = 0
	}
	inputs := make([][]pem.WindowInput, windows)
	for w := 0; w < windows; w++ {
		idx := first + w
		if idx >= tr.Windows {
			idx = tr.Windows - 1
		}
		var err error
		if inputs[w], err = tr.WindowInputs(idx); err != nil {
			return nil, err
		}
	}
	return inputs, nil
}

// cryptoRun is one cell of the backend-ablation matrix.
type cryptoRun struct {
	total       time.Duration
	results     []*pem.WindowResult
	msgs, bytes int64
	ledgerHead  [32]byte
	oracleOK    bool
	ledgerOK    bool
}

// runCryptoDay runs the midday slice under one backend × aggregation ×
// topology cell and revalidates the outcome: every window against the
// plaintext oracle, and the trade ledger against its own hash chain.
func runCryptoDay(o options, homes, windows, keyBits int, backend, agg, topology string) (*cryptoRun, error) {
	tr, err := o.trace(homes, 720)
	if err != nil {
		return nil, err
	}
	inputs, err := middayInputs(tr, windows)
	if err != nil {
		return nil, err
	}
	seed := o.seed
	m, err := pem.NewMarket(pem.Config{
		KeyBits:            keyBits,
		Seed:               &seed,
		MaxInflightWindows: o.inflight,
		CryptoWorkers:      o.cryptoWrk,
		Aggregation:        agg,
		CryptoBackend:      backend,
		Network:            topology,
	}, tr.Agents())
	if err != nil {
		return nil, err
	}
	defer m.Close()

	start := time.Now()
	results, err := m.RunWindows(context.Background(), inputs)
	if err != nil {
		return nil, err
	}
	run := &cryptoRun{total: time.Since(start), results: results, oracleOK: true}
	params := pem.DefaultParams()
	for w, res := range results {
		run.msgs += res.Messages
		run.bytes += res.BytesOnWire
		clr, err := pem.Clear(tr.Agents(), inputs[w], params)
		if err != nil {
			return nil, err
		}
		if res.Kind != clr.Kind || absf(res.Price-clr.Price) > 1e-4 || len(res.Trades) != len(clr.Trades) {
			run.oracleOK = false
		}
	}
	run.ledgerOK = m.Ledger().Verify() == nil
	run.ledgerHead = m.Ledger().Head().Hash
	return run, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// figCrypto ablates the crypto backend: paillier (the paper's construction,
// homomorphic aggregation + garbled-circuit comparison) against the hybrid
// masking fast path, across aggregation topology × network preset. The
// headline column is the per-window wall-clock speedup of hybrid over the
// paillier baseline of the same cell; oracle and ledger columns certify
// that the speedup comes with bit-identical market outcomes (the hybrid
// ledger chain must hash to the paillier chain's head).
func figCrypto(o options) error {
	homes, windows := o.scale(100, 24, 8, 4)
	keyBits := o.keybits(512, 1024)
	topologies := append([]string{""}, pem.NetworkPresets()...)
	if o.network != "" {
		topologies = []string{o.network}
	}

	header(fmt.Sprintf("Crypto backend ablation — %d agents, %d windows, %d-bit keys", homes, windows, keyBits))
	fmt.Printf("%10s %6s %10s %14s %14s %10s %10s %8s %8s\n",
		"topology", "agg", "backend", "total runtime", "avg/window", "speedup", "MB/day", "oracle", "ledger")
	rows := [][]string{{
		"topology", "agg", "backend", "homes", "windows", "keybits",
		"total_ms", "avg_window_ms", "speedup", "msgs", "bytes", "oracle_ok", "ledger_ok",
	}}
	for _, topology := range topologies {
		display := topology
		if display == "" {
			display = "direct"
		}
		for _, agg := range []string{pem.AggregationRing, pem.AggregationTree} {
			var baseline *cryptoRun
			for _, backend := range []string{pem.BackendPaillier, pem.BackendHybrid} {
				run, err := runCryptoDay(o, homes, windows, keyBits, backend, agg, topology)
				if err != nil {
					return fmt.Errorf("topology=%s agg=%s backend=%s: %w", display, agg, backend, err)
				}
				speedup := 1.0
				if backend == pem.BackendPaillier {
					baseline = run
				} else {
					speedup = float64(baseline.total) / float64(run.total)
					// The fast path only counts if the market is unchanged:
					// the hybrid ledger must replay the paillier chain.
					run.ledgerOK = run.ledgerOK && run.ledgerHead == baseline.ledgerHead
				}
				okStr := func(ok bool) string {
					if ok {
						return "ok"
					}
					return "FAIL"
				}
				fmt.Printf("%10s %6s %10s %14s %14s %9.2fx %10.3f %8s %8s\n",
					display, agg, backend,
					run.total.Round(time.Millisecond),
					(run.total / time.Duration(windows)).Round(time.Millisecond),
					speedup, float64(run.bytes)/1e6, okStr(run.oracleOK), okStr(run.ledgerOK))
				rows = append(rows, []string{
					display, agg, backend, fmt.Sprint(homes), fmt.Sprint(windows), fmt.Sprint(keyBits),
					fmt.Sprint(run.total.Milliseconds()),
					fmt.Sprintf("%.3f", float64(run.total)/float64(windows)/1e6),
					fmt.Sprintf("%.3f", speedup),
					fmt.Sprint(run.msgs), fmt.Sprint(run.bytes),
					fmt.Sprint(run.oracleOK), fmt.Sprint(run.ledgerOK),
				})
				if !run.oracleOK || !run.ledgerOK {
					return fmt.Errorf("topology=%s agg=%s backend=%s: outcome validation failed (oracle %v, ledger %v)",
						display, agg, backend, run.oracleOK, run.ledgerOK)
				}
			}
		}
	}
	fmt.Println("(speedup is per-cell vs the paillier baseline; oracle/ledger certify identical market outcomes)")
	return o.flushCSV(rows)
}

// figLive runs the epoched live grid: -epochs trading days over one
// churning fleet, with -churn turnover per epoch boundary (joins at the
// churn rate; departures and failures splitting the other churn-rate
// share). Every epoch re-partitions the surviving-plus-new roster and
// re-keys its coalitions over the shared crypto pool; the table reports
// that re-key cost separately from steady-state window throughput, and the
// run ends with the cross-epoch settlement conservation checks.
func figLive(o options) error {
	homes, windows := o.scale(192, 48, 16, 2)
	keyBits := o.keybits(512, 1024)
	epochs := o.epochs
	if epochs < 1 {
		epochs = 1
	}
	coalitions := o.coalition
	if coalitions < 1 {
		coalitions = 1
	}
	blocks := coalitions
	if homes/blocks < 2 {
		blocks = 1
	}

	var wal *pem.WALStore
	if o.storePath != "" {
		var err error
		if wal, err = pem.OpenWAL(o.storePath); err != nil {
			return err
		}
		defer wal.Close()
		if rec := wal.Recovered(); rec.Truncated {
			fmt.Fprintf(os.Stderr, "pem-bench: store recovery: dropped %d torn bytes, kept %d records\n",
				rec.DroppedBytes, rec.Records)
		}
	}

	seed := o.seed
	lgc := pem.LiveGridConfig{
		Market: pem.Config{
			KeyBits:            keyBits,
			Seed:               &seed,
			MaxInflightWindows: o.inflight,
			CryptoWorkers:      o.cryptoWrk,
			Aggregation:        o.agg,
		},
		Coalitions: coalitions,
		Partition:  o.partition,
		Epochs:     epochs,
		Churn: pem.ChurnConfig{
			JoinRate:   o.churn,
			DepartRate: o.churn * 0.6,
			FailRate:   o.churn * 0.4,
		},
	}
	if wal != nil {
		lgc.Store = wal
	}
	lg, err := pem.NewLiveGrid(lgc, pem.FleetConfig{
		Coalitions:        blocks,
		HomesPerCoalition: homes / blocks,
		Windows:           windows,
		Seed:              o.seed,
		StartHour:         11, // midday slice: populated coalitions on both sides
	})
	if err != nil {
		return err
	}

	header(fmt.Sprintf("Live grid — %d epochs, %.0f%% churn, %d homes at start, %d windows/epoch, %d-bit keys, %s partition",
		epochs, o.churn*100, blocks*(homes/blocks), windows, keyBits, o.partition))
	res, err := lg.Run(context.Background())
	if err != nil {
		return err
	}

	fmt.Printf("%6s %7s %18s %10s %12s %12s %14s %12s\n",
		"epoch", "agents", "churn (+/-/x)", "markets", "rekey", "trading", "windows/sec", "bytes")
	rows := [][]string{{
		"epoch", "agents", "joined", "departed", "failed", "coalitions", "folded",
		"windows", "rekey_ms", "trading_ms", "windows_per_sec", "bytes", "msgs",
	}}
	for _, er := range res.Epochs {
		var folded int
		for _, cr := range er.Coalitions {
			if cr.Folded {
				folded++
			}
		}
		wps := 0.0
		if er.Trading > 0 {
			wps = float64(er.Windows) / er.Trading.Seconds()
		}
		fmt.Printf("%6d %7d %18s %10s %12s %12s %14.2f %12d\n",
			er.Epoch, er.Agents,
			fmt.Sprintf("+%d/-%d/x%d", len(er.Joined), len(er.Departed), len(er.Failed)),
			fmt.Sprintf("%d(%df)", len(er.Coalitions), folded),
			er.Rekey.Round(time.Millisecond), er.Trading.Round(time.Millisecond),
			wps, er.Bytes)
		rows = append(rows, []string{
			fmt.Sprint(er.Epoch), fmt.Sprint(er.Agents),
			fmt.Sprint(len(er.Joined)), fmt.Sprint(len(er.Departed)), fmt.Sprint(len(er.Failed)),
			fmt.Sprint(len(er.Coalitions)), fmt.Sprint(folded),
			fmt.Sprint(er.Windows),
			fmt.Sprint(er.Rekey.Milliseconds()), fmt.Sprint(er.Trading.Milliseconds()),
			fmt.Sprintf("%.3f", wps), fmt.Sprint(er.Bytes), fmt.Sprint(er.Msgs),
		})
	}

	var active, frozen int
	for _, p := range res.Positions {
		if p.Active() {
			active++
		} else {
			frozen++
		}
	}
	fmt.Printf("totals: %d windows; re-key %s, trading %s — steady-state %.2f windows/sec\n",
		res.Windows, res.Rekey.Round(time.Millisecond), res.Trading.Round(time.Millisecond), res.WindowsPerSec)
	fmt.Printf("positions: %d active, %d settled leavers; conservation: energy %.3g kWh, payments %.3g cents\n",
		active, frozen, res.EnergyImbalanceKWh, res.PaymentImbalanceCents)
	fmt.Println("(re-key = per-epoch key provisioning for every coalition; steady-state excludes it)")
	if wal != nil {
		fmt.Printf("store: run persisted to %s (resumable with pem.Resume)\n", wal.Path())
	}
	return o.flushCSV(rows)
}

// parseTiers parses a -tiers fanout list ("8,4" = 8 coalitions per
// district, 4 districts per region) into a tier schedule.
func parseTiers(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -tiers fanout %q (want comma-separated integers ≥ 1)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// procRSS reads the process's current and high-water resident set sizes
// from /proc/self/status, in MiB. Zero on platforms without procfs; the
// high-water mark (VmHWM) is monotonic over the process lifetime, which is
// what makes it a sound budget gate.
func procRSS() (cur, peak float64) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		var kb float64
		if n, _ := fmt.Sscanf(line, "VmRSS: %f kB", &kb); n == 1 {
			cur = kb / 1024
		}
		if n, _ := fmt.Sscanf(line, "VmHWM: %f kB", &kb); n == 1 {
			peak = kb / 1024
		}
	}
	return cur, peak
}

// figScale measures the hierarchical grid's streaming, settlement and
// accounting plane at fleet scale: one seeded trading day per row, swept
// over fleet size (up to -homes agents) × tier-hierarchy depth (prefixes of
// the -tiers schedule, flat first). Every coalition is two homes — below
// the MinCoalition floor — so all of them fold to the plaintext grid-tariff
// path: the crypto engines never run, and the row cost is exactly the
// machinery the hierarchy adds (partitioning, lazy per-coalition day
// synthesis, the streaming supervisor, tier netting, O(1) metric folds).
// Day data is synthesized on demand and every coalition's payload is
// released after the streaming sink sees it, so resident memory is bounded
// by the coalitions in flight, not the fleet; the rss/hwm columns observe
// that from /proc/self/status, and -rss-budget-mb turns the observation
// into a hard failure. Throughput is reported as agents settled per second
// (folded coalitions complete no protocol windows, so windows/sec would
// read zero by construction).
func figScale(o options) error {
	maxAgents, windows := o.scale(1_000_000, 4, 100_000, 2)
	fanout, err := parseTiers(o.tiers)
	if err != nil {
		return err
	}
	// Sweep two decades up to the target fleet, two homes per coalition.
	var sweep []int
	for _, a := range []int{maxAgents / 100, maxAgents / 10, maxAgents} {
		if a < 8 {
			a = 8
		}
		a -= a % 2
		if len(sweep) == 0 || a > sweep[len(sweep)-1] {
			sweep = append(sweep, a)
		}
	}
	// All coalitions fold to plaintext, so concurrency only needs to cover
	// scheduling overhead — an unbounded default would stack one goroutine
	// per coalition, which at 10^5+ coalitions is itself a memory regression.
	maxConc := 4 * runtime.GOMAXPROCS(0)

	header(fmt.Sprintf("Hierarchical grid at scale — up to %d agents, %d windows, tiers %q, seed %d",
		sweep[len(sweep)-1], windows, o.tiers, o.seed))
	fmt.Printf("%10s %10s %10s %8s %14s %14s %12s %14s %10s %10s\n",
		"agents", "coalitions", "tiers", "nodes", "total runtime", "agents/sec", "matched kWh", "netting gain", "rss MiB", "hwm MiB")
	rows := [][]string{{
		"agents", "coalitions", "tiers", "tier_nodes", "windows",
		"total_ms", "agents_per_sec", "coalitions_per_sec",
		"matched_kwh", "netting_gain_cents", "grid_import_kwh", "grid_export_kwh",
		"rss_mb", "rss_hwm_mb",
	}}
	for _, agents := range sweep {
		for depth := 0; depth <= len(fanout); depth++ {
			schedule := fanout[:depth]
			label := "flat"
			if depth > 0 {
				parts := make([]string, depth)
				for i, f := range schedule {
					parts[i] = strconv.Itoa(f)
				}
				label = strings.Join(parts, ",")
			}
			coalitions := agents / 2
			tr, err := pem.GenerateFleet(pem.FleetConfig{
				Coalitions:        coalitions,
				HomesPerCoalition: 2,
				Windows:           windows,
				Seed:              o.seed,
				StartHour:         11,
				OnDemand:          true,
			})
			if err != nil {
				return fmt.Errorf("agents=%d tiers=%s: %w", agents, label, err)
			}
			seed := o.seed
			g, err := pem.NewGrid(pem.GridConfig{
				Market:                  pem.Config{Seed: &seed},
				Coalitions:              coalitions,
				Partition:               pem.PartitionFixed,
				MaxConcurrentCoalitions: maxConc,
				Tiers:                   schedule,
			}, tr)
			if err != nil {
				return fmt.Errorf("agents=%d tiers=%s: %w", agents, label, err)
			}
			var streamed, folded int
			res, err := g.Stream(context.Background(), func(cr *pem.CoalitionRun) error {
				streamed++
				if cr.Folded {
					folded++
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("agents=%d tiers=%s: %w", agents, label, err)
			}
			if streamed != coalitions || folded != coalitions {
				return fmt.Errorf("agents=%d tiers=%s: streamed %d coalitions (%d folded), want %d folded",
					agents, label, streamed, folded, coalitions)
			}
			nodes := 0
			if res.Tiers != nil {
				nodes = len(res.Tiers.Tiers)
			}
			var matched, gain float64
			if res.Tiers != nil {
				matched, gain = res.Tiers.MatchedKWh, res.Tiers.NettingGainCents
			} else if res.Settlement != nil {
				matched, gain = res.Settlement.MatchedKWh, res.Settlement.NettingGainCents
			}
			secs := res.Duration.Seconds()
			agentsPerSec, coalPerSec := 0.0, 0.0
			if secs > 0 {
				agentsPerSec = float64(agents) / secs
				coalPerSec = float64(coalitions) / secs
			}
			// Scavenge before sampling so the current-RSS column reflects
			// live memory, not lazily-returned heap; the high-water mark is
			// untouched by this and stays the honest budget metric.
			debug.FreeOSMemory()
			cur, peak := procRSS()
			fmt.Printf("%10d %10d %10s %8d %14s %14.0f %12.2f %13.0fc %10.0f %10.0f\n",
				agents, coalitions, label, nodes, res.Duration.Round(time.Millisecond),
				agentsPerSec, matched, gain, cur, peak)
			rows = append(rows, []string{
				fmt.Sprint(agents), fmt.Sprint(coalitions), label, fmt.Sprint(nodes), fmt.Sprint(windows),
				fmt.Sprint(res.Duration.Milliseconds()),
				fmt.Sprintf("%.1f", agentsPerSec), fmt.Sprintf("%.1f", coalPerSec),
				fmt.Sprintf("%.4f", matched), fmt.Sprintf("%.2f", gain),
				fmt.Sprintf("%.4f", res.Settlement.Fleet.ImportKWh),
				fmt.Sprintf("%.4f", res.Settlement.Fleet.ExportKWh),
				fmt.Sprintf("%.1f", cur), fmt.Sprintf("%.1f", peak),
			})
			if o.rssBudget > 0 && peak > float64(o.rssBudget) {
				return fmt.Errorf("agents=%d tiers=%s: RSS high-water %.0f MiB exceeds -rss-budget-mb %d",
					agents, label, peak, o.rssBudget)
			}
		}
	}
	fmt.Println("(every coalition folds to the plaintext tariff path: the figure isolates streaming + settlement cost from crypto)")
	return o.flushCSV(rows)
}

// figAlloc measures the memory discipline of the private window path: heap
// allocations and bytes per trading window plus the GC stop-the-world pause
// share of wall-clock, swept over fleet size × crypto backend. Key
// generation and engine provisioning happen before the measured interval
// and a forced GC settles the heap at its start, so the columns isolate the
// steady-state window loop — the figure the pooled scratch arenas, frame
// pools and reusable window state are accountable to. Counters come from
// runtime.ReadMemStats deltas across the RunWindows call (Mallocs,
// TotalAlloc, PauseTotalNs); they cover the whole process, which is the
// point — a pool that merely moves allocations to a background goroutine
// does not improve this figure.
func figAlloc(o options) error {
	agentCounts := []int{8, 16, 32}
	if o.full {
		agentCounts = []int{50, 100, 200}
	}
	if o.homes > 0 {
		agentCounts = []int{o.homes}
	}
	windows := 8
	if o.full {
		windows = 24
	}
	if o.windows > 0 {
		windows = o.windows
	}
	keyBits := o.keybits(512, 1024)

	header(fmt.Sprintf("Allocation profile — %d windows, %d-bit keys", windows, keyBits))
	fmt.Printf("%10s %8s %16s %16s %14s %12s\n",
		"backend", "agents", "allocs/window", "bytes/window", "GC pause", "wall")
	rows := [][]string{{
		"backend", "agents", "windows", "keybits",
		"allocs_per_window", "bytes_per_window", "gc_pause_frac", "wall_ms",
	}}
	for _, backend := range []string{pem.BackendPaillier, pem.BackendHybrid} {
		for _, agents := range agentCounts {
			tr, err := o.trace(agents, 720)
			if err != nil {
				return err
			}
			inputs, err := middayInputs(tr, windows)
			if err != nil {
				return err
			}
			seed := o.seed
			m, err := pem.NewMarket(pem.Config{
				KeyBits:            keyBits,
				Seed:               &seed,
				MaxInflightWindows: o.inflight,
				CryptoWorkers:      o.cryptoWrk,
				Aggregation:        o.agg,
				CryptoBackend:      backend,
			}, tr.Agents())
			if err != nil {
				return fmt.Errorf("backend=%s agents=%d: %w", backend, agents, err)
			}
			runtime.GC() // settle provisioning garbage outside the interval
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if _, err := m.RunWindows(context.Background(), inputs); err != nil {
				m.Close()
				return fmt.Errorf("backend=%s agents=%d: %w", backend, agents, err)
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			m.Close()

			allocsPerWin := float64(after.Mallocs-before.Mallocs) / float64(windows)
			bytesPerWin := float64(after.TotalAlloc-before.TotalAlloc) / float64(windows)
			pauseFrac := 0.0
			if wall > 0 {
				pauseFrac = float64(after.PauseTotalNs-before.PauseTotalNs) / float64(wall.Nanoseconds())
			}
			fmt.Printf("%10s %8d %16.0f %16.0f %13.2f%% %12s\n",
				backend, agents, allocsPerWin, bytesPerWin, 100*pauseFrac, wall.Round(time.Millisecond))
			rows = append(rows, []string{
				backend, fmt.Sprint(agents), fmt.Sprint(windows), fmt.Sprint(keyBits),
				fmt.Sprintf("%.1f", allocsPerWin),
				fmt.Sprintf("%.0f", bytesPerWin),
				fmt.Sprintf("%.5f", pauseFrac),
				fmt.Sprint(wall.Milliseconds()),
			})
		}
	}
	fmt.Println("(process-wide ReadMemStats deltas across the window loop; provisioning and keygen excluded)")
	return o.flushCSV(rows)
}

// writeCSV dumps rows to path.
func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := csv.NewWriter(f).WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// table1: average bandwidth per m windows by key size.
func table1(o options) error {
	homes, _ := o.scale(200, 0, 8, 0)
	ms := []int{2, 4, 6, 8}
	if o.full {
		ms = []int{300, 360, 420, 480, 540, 600, 660, 720}
	}
	header(fmt.Sprintf("Table I — average bandwidth (MB) over m windows (%d agents)", homes))
	fmt.Printf("%10s", "m")
	for _, m := range ms {
		fmt.Printf("%10d", m)
	}
	fmt.Println()
	for _, bits := range []int{512, 1024, 2048} {
		fmt.Printf("%9d-", bits)
		for _, mWin := range ms {
			_, _, bytesTotal, err := runPrivateWindows(o, homes, mWin, bits)
			if err != nil {
				return err
			}
			perWindowMB := float64(bytesTotal) / float64(mWin) / 1e6
			fmt.Printf("%10.3f", perWindowMB)
		}
		fmt.Println()
	}
	fmt.Println("(average MB of protocol traffic per trading window across all agents)")
	return nil
}
