package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPlaintextDay(t *testing.T) {
	if err := run([]string{"-homes", "12", "-windows", "60"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	if err := run([]string{"-homes", "4", "-windows", "10", "-export", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "home_id,") {
		t.Error("export missing CSV header")
	}
	// 4 homes × 10 windows + header.
	if lines := strings.Count(string(data), "\n"); lines != 41 {
		t.Errorf("export has %d lines, want 41", lines)
	}
}

func TestRunPrivateTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full crypto day")
	}
	if err := run([]string{"-homes", "4", "-windows", "2", "-private", "-keybits", "256"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-homes", "0"}); err == nil {
		t.Error("zero homes accepted")
	}
}
