// Command pem-market simulates a full trading day for a fleet of smart
// homes, optionally through the full cryptographic protocol stack.
//
//	pem-market -homes 200 -windows 720            # plaintext day summary
//	pem-market -homes 8 -windows 10 -private      # private protocol day
//	pem-market -homes 50 -export trace.csv        # dump the synthetic trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pem-go/pem"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pem-market:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pem-market", flag.ContinueOnError)
	homes := fs.Int("homes", 200, "number of smart homes")
	windows := fs.Int("windows", 720, "number of one-minute trading windows")
	seed := fs.Int64("seed", 20200425, "synthetic trace seed")
	private := fs.Bool("private", false, "run the cryptographic protocols instead of the plaintext clearing")
	keyBits := fs.Int("keybits", 1024, "Paillier key size for -private")
	storePath := fs.String("store", "", "persist the -private run's ledger and key fingerprints to this WAL file")
	export := fs.String("export", "", "write the synthetic trace to this CSV file and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: *homes, Windows: *windows, Seed: *seed})
	if err != nil {
		return err
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d homes x %d windows to %s\n", *homes, *windows, *export)
		return nil
	}

	if *private {
		return runPrivate(tr, *keyBits, *seed, *storePath)
	}
	if *storePath != "" {
		return errors.New("-store needs -private (the plaintext simulation commits nothing)")
	}
	return runPlaintext(tr)
}

func runPlaintext(tr *pem.Trace) error {
	params := pem.DefaultParams()
	start := time.Now()
	ds, err := pem.SimulateDay(tr, params)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	var pemCost, baseCost, gridPEM, gridBase float64
	var general, extreme, degenerate, inBand int
	for w := 0; w < ds.Windows; w++ {
		pemCost += ds.BuyerCostPEM[w]
		baseCost += ds.BuyerCostBase[w]
		gridPEM += ds.GridPEM[w]
		gridBase += ds.GridBase[w]
		switch {
		case ds.SellerCount[w] == 0 || ds.BuyerCount[w] == 0:
			degenerate++
		case ds.Kind[w] == pem.ExtremeMarket:
			extreme++
		default:
			general++
		}
		if ds.Price[w] >= params.PriceFloor && ds.Price[w] <= params.PriceCeil {
			inBand++
		}
	}

	fmt.Printf("Private Energy Market — plaintext day simulation\n")
	fmt.Printf("  homes: %d   windows: %d   simulated in %s\n", len(tr.Homes), ds.Windows, elapsed.Round(time.Millisecond))
	fmt.Printf("  markets: %d general, %d extreme, %d degenerate (empty coalition)\n", general, extreme, degenerate)
	fmt.Printf("  price in band [%.0f, %.0f]: %d windows\n", params.PriceFloor, params.PriceCeil, inBand)
	fmt.Printf("  buyer coalition cost: %.0f cents with PEM vs %.0f without (%.1f%% saved)\n",
		pemCost, baseCost, 100*(1-pemCost/baseCost))
	fmt.Printf("  grid interaction: %.1f kWh with PEM vs %.1f without (%.1f%% reduced)\n",
		gridPEM, gridBase, 100*(1-gridPEM/gridBase))
	return nil
}

func runPrivate(tr *pem.Trace, keyBits int, seed int64, storePath string) error {
	cfg := pem.Config{KeyBits: keyBits, Seed: &seed}
	var wal *pem.WALStore
	if storePath != "" {
		var err error
		if wal, err = pem.OpenWAL(storePath); err != nil {
			return err
		}
		defer wal.Close()
		if rec := wal.Recovered(); rec.Truncated {
			fmt.Fprintf(os.Stderr, "pem-market: store recovery: dropped %d torn bytes, kept %d records\n",
				rec.DroppedBytes, rec.Records)
		}
		cfg.Store = wal
	}
	m, err := pem.NewMarket(cfg, tr.Agents())
	if err != nil {
		return err
	}
	defer m.Close()

	// SIGINT/SIGTERM drain rather than kill: Close stops admitting new
	// windows and lets the in-flight ones finish (dying mid-protocol would
	// discard their work), then the day run returns ErrMarketClosed, which
	// we report as a clean early exit with the completed windows' summary.
	// A second signal force-kills via the default handler.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case <-sigCtx.Done():
			fmt.Fprintln(os.Stderr, "pem-market: signal received: draining in-flight windows (signal again to abort)")
			stopSignals()
			m.Close()
		case <-finished:
		}
	}()

	fmt.Printf("Private Energy Market — cryptographic day run\n")
	fmt.Printf("  homes: %d   windows: %d   key: %d-bit Paillier\n", len(tr.Homes), tr.Windows, keyBits)

	start := time.Now()
	var windows, trades int
	var bytesTotal int64
	_, err = m.StreamDay(context.Background(), tr, func(res *pem.WindowResult) error {
		windows++
		trades += len(res.Trades)
		bytesTotal += res.BytesOnWire
		return nil
	})
	interrupted := errors.Is(err, pem.ErrMarketClosed)
	if err != nil && !interrupted {
		return err
	}
	elapsed := time.Since(start)

	if interrupted {
		fmt.Printf("  interrupted: drained after %d of %d windows\n", windows, tr.Windows)
	}
	if windows > 0 {
		fmt.Printf("  completed %d windows in %s (%s/window average)\n",
			windows, elapsed.Round(time.Millisecond), (elapsed / time.Duration(windows)).Round(time.Millisecond))
		fmt.Printf("  pairwise trades routed: %d\n", trades)
		fmt.Printf("  protocol traffic: %.2f MB total, %.3f MB/window\n",
			float64(bytesTotal)/1e6, float64(bytesTotal)/float64(windows)/1e6)
	}
	if l := m.Ledger(); l != nil && l.Len() > 0 {
		if err := l.Verify(); err != nil {
			return fmt.Errorf("ledger verification: %w", err)
		}
		fmt.Printf("  ledger: %d blocks, chain verified, head %s\n", l.Len(), headHash(l))
	}
	if wal != nil {
		if err := wal.Sync(); err != nil {
			return err
		}
		fmt.Printf("  store: ledger and key fingerprints persisted to %s\n", wal.Path())
	}
	return nil
}

func headHash(l *pem.Ledger) string {
	h := l.Head().Hash
	return fmt.Sprintf("%x", h[:8])
}
