// Command benchgate compares a `go test -bench -benchmem` run against a
// committed baseline and fails on allocation regressions.
//
// Usage:
//
//	go test -run=NONE -bench 'BenchmarkCryptoBackends|BenchmarkParallelWindow' \
//	  -benchmem -benchtime 3x . > current-bench.txt
//	benchgate -baseline docs/bench-baseline.txt -current current-bench.txt
//
// The gate reads allocs/op — the one benchmark column that is essentially
// deterministic for this codebase (the protocols are seeded and the
// allocation count of a window does not depend on machine speed), which is
// what makes it CI-gateable where ns/op is not. A benchmark regresses when
// its allocs/op exceeds the baseline by more than -max-regress (default
// 10%) plus an absolute slack of -slack allocs (default 16, absorbing
// scheduling jitter in tiny benchmarks). Baseline entries missing from the
// current run fail the gate — a renamed benchmark must refresh the
// baseline (see docs/BENCHMARKS.md) — while extra current benchmarks are
// reported but pass, so new benchmarks can land before being baselined.
//
// ns/op and B/op are parsed and printed for context but never gated.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

// gomaxprocsSuffix strips the trailing -N CPU suffix `go test` appends to
// benchmark names, so baselines recorded on one core count compare against
// runs on another.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts Benchmark lines from `go test -bench -benchmem`
// output. Lines that don't parse (headers, PASS, ok) are skipped.
func parseBench(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]benchResult)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var r benchResult
		for i := 2; i+1 <= len(fields)-1; i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "B/op":
				r.bytesPerOp = v
			case "allocs/op":
				r.allocsPerOp = v
			}
		}
		out[name] = r
	}
	return out, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "docs/bench-baseline.txt", "committed baseline benchmark output")
	currentPath := flag.String("current", "", "benchmark output of the run under test")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional allocs/op growth over baseline")
	slack := flag.Float64("slack", 16, "absolute allocs/op slack added to the budget")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	baseline, err := parseBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: baseline:", err)
		os.Exit(2)
	}
	current, err := parseBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: current:", err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: baseline has no benchmark lines")
		os.Exit(2)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-60s %14s %14s %10s\n", "benchmark", "base allocs/op", "cur allocs/op", "delta")
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-60s %14.0f %14s %10s\n", name, base.allocsPerOp, "MISSING", "FAIL")
			failed = true
			continue
		}
		budget := base.allocsPerOp*(1+*maxRegress) + *slack
		delta := 0.0
		if base.allocsPerOp > 0 {
			delta = 100 * (cur.allocsPerOp - base.allocsPerOp) / base.allocsPerOp
		}
		verdict := "ok"
		if cur.allocsPerOp > budget {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%-60s %14.0f %14.0f %+9.1f%% %s\n", name, base.allocsPerOp, cur.allocsPerOp, delta, verdict)
	}
	for name, cur := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("%-60s %14s %14.0f %10s\n", name, "(new)", cur.allocsPerOp, "ok")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: allocs/op regression over %.0f%%+%.0f budget — if intentional, refresh docs/bench-baseline.txt (see docs/BENCHMARKS.md)\n",
			100**maxRegress, *slack)
		os.Exit(1)
	}
	fmt.Println("benchgate: all benchmarks within allocation budget")
}
